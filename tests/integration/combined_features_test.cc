// Cross-feature integration: hierarchy x trading, drain x trading x crash,
// weights x gangs x churn — the combinations a production deployment hits.
#include <gtest/gtest.h>

#include "analysis/harness.h"
#include "analysis/metrics.h"
#include "sched/gandiva_fair.h"

namespace gfair {
namespace {

using analysis::Experiment;
using analysis::ExperimentConfig;
using cluster::GpuGeneration;

TEST(CombinedTest, HierarchyFeedsTradingEntitlements) {
  // team-fast has two members but only one active; team-slow has one. With
  // hierarchical sharing the active fast member carries weight 2, so its
  // post-trade V100 entitlement must exceed what a flat split would give.
  ExperimentConfig config;
  config.topology = cluster::Topology{{
      {GpuGeneration::kK80, 2, 8},
      {GpuGeneration::kV100, 2, 8},
  }};
  config.seed = 3;
  Experiment exp(config);
  auto& fast_active = exp.users().CreateInGroup("fast-active", "team-fast", 1.0);
  exp.users().CreateInGroup("fast-idle", "team-fast", 1.0);
  auto& slow = exp.users().CreateInGroup("slow", "team-slow", 1.0);
  exp.UseGandivaFair({});
  for (int i = 0; i < 20; ++i) {
    exp.SubmitAt(Minutes(i), fast_active.id, "ResNeXt-50", 1, Hours(300));
    exp.SubmitAt(Minutes(i), slow.id, "VAE", 1, Hours(300));
  }
  exp.Run(Hours(5));
  ASSERT_FALSE(exp.gandiva()->executed_trades().empty());
  // fast-active's effective tickets are 2 vs slow's 1; after trading it
  // should hold well over half of the V100 pool.
  const double fast_v100 = exp.gandiva()->EntitlementGpus(fast_active.id,
                                                          GpuGeneration::kV100);
  EXPECT_GT(fast_v100, 10.0);  // > 10 of 16 V100s
  // Realized allocation follows: the borrower dominates the V100 pool (it
  // pays with K80 entitlement, so TOTAL GPU time is intentionally smaller).
  const double fast_v100_ms =
      exp.ledger().GpuMs(fast_active.id, GpuGeneration::kV100, Hours(1), Hours(5));
  const double slow_v100_ms =
      exp.ledger().GpuMs(slow.id, GpuGeneration::kV100, Hours(1), Hours(5));
  EXPECT_GT(fast_v100_ms, 2.0 * slow_v100_ms);
}

TEST(CombinedTest, DrainDuringTradingKeepsJobsFeasibleAndServed) {
  ExperimentConfig config;
  config.topology = cluster::Topology{{
      {GpuGeneration::kK80, 2, 8},
      {GpuGeneration::kV100, 2, 8},
  }};
  config.seed = 5;
  Experiment exp(config);
  auto& low = exp.users().Create("low");
  auto& high = exp.users().Create("high");
  exp.UseGandivaFair({});
  for (int i = 0; i < 16; ++i) {
    exp.SubmitAt(Minutes(i), low.id, "VAE", 1, Hours(300));
    exp.SubmitAt(Minutes(i), high.id, "MegaLM", 1, Hours(300));  // K80-infeasible
  }
  exp.Run(Hours(2));
  // Drain one V100 server — MegaLM jobs can only go to the other V100 box.
  const ServerId victim = exp.cluster().servers_of(GpuGeneration::kV100)[0];
  exp.gandiva()->DrainServer(victim);
  exp.Run(Hours(4));
  for (const auto* job : exp.jobs().All()) {
    if (job->finished() || !job->server.valid()) {
      continue;
    }
    EXPECT_NE(job->server, victim);
    EXPECT_TRUE(exp.zoo().Get(job->model).FitsGeneration(
        exp.cluster().server(job->server).generation()));
  }
  // high still gets served (on the surviving V100 server).
  EXPECT_GT(exp.ledger().GpuMs(high.id, Hours(3), Hours(4)), 0.0);
}

TEST(CombinedTest, CrashStormDuringTradingConvergesAndStaysFair) {
  ExperimentConfig config;
  config.topology = cluster::Topology{{
      {GpuGeneration::kK80, 1, 8},
      {GpuGeneration::kV100, 1, 8},
  }};
  config.seed = 11;
  Experiment exp(config);
  auto& a = exp.users().Create("a");
  auto& b = exp.users().Create("b");
  exp.UseGandivaFair({});
  std::vector<JobId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(exp.SubmitAt(Minutes(i), a.id, "VAE", 1, Hours(300)));
    ids.push_back(exp.SubmitAt(Minutes(i), b.id, "ResNeXt-50", 1, Hours(300)));
  }
  Rng chaos(13);
  for (int step = 15; step <= 360; step += 15) {
    exp.Run(Minutes(step));
    std::vector<JobId> eligible;
    for (JobId id : ids) {
      const auto& job = exp.jobs().Get(id);
      if (job.state == workload::JobState::kRunning ||
          job.state == workload::JobState::kSuspended) {
        eligible.push_back(id);
      }
    }
    if (!eligible.empty()) {
      exp.exec().InjectCrash(eligible[static_cast<size_t>(
          chaos.UniformInt(0, static_cast<int64_t>(eligible.size()) - 1))]);
    }
  }
  exp.Run(Hours(8));
  // Crashes recorded, cluster still near-fully used, both users served.
  int crashes = 0;
  for (JobId id : ids) {
    crashes += exp.jobs().Get(id).num_crashes;
  }
  EXPECT_GT(crashes, 10);
  const double a_ms = exp.ledger().GpuMs(a.id, Hours(6), Hours(8));
  const double b_ms = exp.ledger().GpuMs(b.id, Hours(6), Hours(8));
  EXPECT_GT(a_ms, 0.0);
  EXPECT_GT(b_ms, 0.0);
  EXPECT_GT((a_ms + b_ms) / (16.0 * Hours(2)), 0.90);
}

TEST(CombinedTest, WeightedGangsUnderChurnKeepUserShares) {
  // One user runs a weighted mix (heavy 4-gang, light singles) while another
  // churns short jobs; inter-user fairness must hold and the intra-user
  // weight ratio must be visible.
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(2, 4);
  config.seed = 17;
  Experiment exp(config);
  auto& steady = exp.users().Create("steady");
  auto& churny = exp.users().Create("churny");
  exp.UseGandivaFair({});
  const JobId heavy = exp.SubmitAt(kTimeZero, steady.id, "ResNet-50", 4, Hours(2000),
                                   /*weight=*/2.0);
  for (int i = 0; i < 4; ++i) {
    exp.SubmitAt(kTimeZero, steady.id, "DCGAN", 1, Hours(2000), /*weight=*/1.0);
  }
  for (int i = 0; i < 48; ++i) {
    exp.SubmitAt(Minutes(10 * i), churny.id, "DCGAN", 1, Minutes(60));
  }
  exp.Run(Hours(8));
  const double steady_ms = exp.ledger().GpuMs(steady.id, Hours(2), Hours(8));
  const double churny_ms = exp.ledger().GpuMs(churny.id, Hours(2), Hours(8));
  // churny's demand (~2 GPUs average) is below its 4-GPU share; steady mops
  // up the rest — fairness means churny gets its full demand served.
  EXPECT_GT(churny_ms / Hours(6), 1.5);
  EXPECT_GT(steady_ms / Hours(6), 4.0);
  // Within steady: the weight-2 4-gang gets 2x the GPU time per demanded GPU
  // of a weight-1 single... i.e. 8x a single job's GPU time.
  const double heavy_ms = exp.jobs().Get(heavy).TotalGpuMs();
  EXPECT_GT(heavy_ms, 4.0 * Hours(6) * 0.5);
}

}  // namespace
}  // namespace gfair
