// Positive side of the phase-capability token contracts
// (common/phase_tokens.h). The negative side — minting outside the friend
// list must not compile — lives in tests/lint/
// shard_token_mint_must_not_compile.cc and
// reduce_accounting_without_token_must_not_compile.cc (WILL_FAIL ctests).
#include "common/phase_tokens.h"

#include <type_traits>

#include <gtest/gtest.h>

namespace gfair::common {
namespace {

// Zero-size: passing a token by value costs nothing at runtime; the whole
// scheme is a compile-time proof that the call site sits in the right phase.
static_assert(std::is_empty_v<ShardToken>, "ShardToken must stay zero-size");
static_assert(std::is_empty_v<ReduceToken>, "ReduceToken must stay zero-size");

// Not mintable from arbitrary code: the default constructor is private, so
// from this (non-friend) context the types are not default-constructible.
static_assert(!std::is_default_constructible_v<ShardToken>,
              "only the scheduler facade may mint a ShardToken");
static_assert(!std::is_default_constructible_v<ReduceToken>,
              "only the facade and the executor may mint a ReduceToken");

// Copyable but not assignable: a granted token flows down the call stack by
// value, and nothing can overwrite one capability with another.
static_assert(std::is_trivially_copy_constructible_v<ShardToken>,
              "a granted ShardToken must pass by value for free");
static_assert(std::is_trivially_copy_constructible_v<ReduceToken>,
              "a granted ReduceToken must pass by value for free");
static_assert(!std::is_copy_assignable_v<ShardToken>,
              "tokens are capabilities, not values — no reassignment");
static_assert(!std::is_copy_assignable_v<ReduceToken>,
              "tokens are capabilities, not values — no reassignment");

TEST(PhaseTokenTest, TokensAreZeroCost) {
  // An empty class still has sizeof 1; anything larger means someone added
  // state to what must remain a pure compile-time capability.
  EXPECT_EQ(sizeof(ShardToken), 1u);
  EXPECT_EQ(sizeof(ReduceToken), 1u);
}

}  // namespace
}  // namespace gfair::common
