#include "common/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace gfair {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    differing += a.Next() != b.Next() ? 1 : 0;
  }
  EXPECT_GT(differing, 28);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const int64_t x = rng.UniformInt(3, 7);
    EXPECT_GE(x, 3);
    EXPECT_LE(x, 7);
    saw_lo |= x == 3;
    saw_hi |= x == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(5.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(10.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 40'000;
  for (int i = 0; i < n; ++i) {
    counts[rng.WeightedIndex(weights)] += 1;
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = values;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(23);
  Rng child = parent.Fork();
  // Child stream must differ from the parent's continued stream.
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    differing += parent.Next() != child.Next() ? 1 : 0;
  }
  EXPECT_GT(differing, 12);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, LogNormalIsPositive) {
  Rng rng(31);
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_GT(rng.LogNormal(0.0, 1.0), 0.0);
  }
}

}  // namespace
}  // namespace gfair
