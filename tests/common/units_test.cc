#include "common/units.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <type_traits>

namespace gfair {
namespace {

// ---------------------------------------------------------------------------
// Compile-time harness: the deleted/never-declared cross-tag operations.
// Each assert here has a negative-compile twin under tests/lint/ proving the
// same property as a hard build failure (WILL_FAIL ctests).
// ---------------------------------------------------------------------------

// Same representation, zero overhead: the wrappers must stay layout- and
// copy-identical to the doubles they replace.
static_assert(sizeof(Tickets) == sizeof(double));
static_assert(sizeof(Pass) == sizeof(double));
static_assert(sizeof(Stride) == sizeof(double));
static_assert(sizeof(Speedup) == sizeof(double));
static_assert(sizeof(PerGpuRate) == sizeof(double));
static_assert(sizeof(GpuSeconds) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Tickets>);
static_assert(std::is_trivially_copyable_v<Pass>);
static_assert(std::is_trivially_copyable_v<Stride>);
static_assert(std::is_trivially_copyable_v<Speedup>);
static_assert(std::is_trivially_copyable_v<PerGpuRate>);
static_assert(std::is_trivially_copyable_v<GpuSeconds>);

// No cross-tag construction or assignment: a tickets-for-pass swap is a
// compile error, not a silent fairness corruption.
static_assert(!std::is_constructible_v<Pass, Tickets>);
static_assert(!std::is_constructible_v<Tickets, Pass>);
static_assert(!std::is_constructible_v<Pass, Stride>);
static_assert(!std::is_constructible_v<Stride, Tickets>);
static_assert(!std::is_constructible_v<Speedup, Stride>);
static_assert(!std::is_constructible_v<Stride, Speedup>);
static_assert(!std::is_constructible_v<GpuSeconds, Tickets>);
static_assert(!std::is_assignable_v<Pass&, Tickets>);
static_assert(!std::is_assignable_v<Tickets&, Pass>);
static_assert(!std::is_assignable_v<Stride&, Speedup>);
static_assert(!std::is_assignable_v<GpuSeconds&, Pass>);

// No unit type silently decays back to double; only Tickets converts *from*
// double (user-facing counts), and Speedup cannot be minted from a bare
// double at all — factories only.
static_assert(!std::is_convertible_v<Pass, double>);
static_assert(!std::is_convertible_v<Tickets, double>);
static_assert(!std::is_convertible_v<Speedup, double>);
static_assert(!std::is_convertible_v<GpuSeconds, double>);
static_assert(!std::is_constructible_v<Speedup, double>);
static_assert(std::is_convertible_v<double, Tickets>);
static_assert(!std::is_convertible_v<double, Pass>);
static_assert(!std::is_convertible_v<double, Stride>);
static_assert(!std::is_convertible_v<double, GpuSeconds>);

// Detection idiom for the absent mixed-tag operators.
template <typename A, typename B>
concept Addable = requires(A a, B b) { a + b; };
template <typename A, typename B>
concept Comparable = requires(A a, B b) { a < b; };
template <typename A, typename B>
concept Divisible = requires(A a, B b) { a / b; };
template <typename A, typename B>
concept Multiplicable = requires(A a, B b) { a* b; };

// Pass advances only by Stride; two passes do not add.
static_assert(Addable<Pass, Stride>);
static_assert(!Addable<Pass, Pass>);
static_assert(!Addable<Pass, Tickets>);
static_assert(!Addable<Stride, Stride>);
// No cross-tag ordering.
static_assert(!Comparable<Pass, Stride>);
static_assert(!Comparable<Pass, Tickets>);
static_assert(!Comparable<Tickets, Speedup>);
static_assert(!Comparable<GpuSeconds, Pass>);
// Speedup never mixes with Stride, and a bare double cannot divide by a
// Speedup (the classic ratio inversion) — use SlowToFast, which names the
// direction.
static_assert(!Multiplicable<Speedup, Stride>);
static_assert(!Addable<Speedup, Stride>);
static_assert(!Divisible<double, Speedup>);
static_assert(!Divisible<Speedup, Speedup>);
// Share ratio and delivery ratio are the sanctioned double-producing
// divisions.
static_assert(std::is_same_v<decltype(Tickets(1.0) / Tickets(2.0)), double>);
static_assert(std::is_same_v<decltype(GpuSeconds(1.0) / GpuSeconds(2.0)), double>);
static_assert(std::is_same_v<decltype(Pass() - Pass()), Stride>);

// ---------------------------------------------------------------------------
// Runtime behavior: the wrappers must reproduce plain double arithmetic
// bit-for-bit (the equivalence suite depends on it).
// ---------------------------------------------------------------------------

TEST(UnitsTest, TicketsArithmetic) {
  Tickets t = 2.0;
  t += Tickets(0.5);
  EXPECT_DOUBLE_EQ(t.raw(), 2.5);
  EXPECT_DOUBLE_EQ((t * 2.0).raw(), 5.0);
  EXPECT_DOUBLE_EQ((t / 2.0).raw(), 1.25);
  EXPECT_DOUBLE_EQ(t / Tickets(5.0), 0.5);  // share ratio
  EXPECT_DOUBLE_EQ(Abs(Tickets(-3.0)).raw(), 3.0);
  EXPECT_LT(Tickets(1.0), Tickets(2.0));
  EXPECT_EQ(std::max(Tickets(1.0), Tickets(2.0)), Tickets(2.0));
}

TEST(UnitsTest, PassAdvancesByStride) {
  Pass p(100.0);
  // Exactly the stride Charge expression: ms * gang / tickets.
  const Stride s = Stride::FromService(60'000.0, 2, Tickets(4.0));
  EXPECT_DOUBLE_EQ(s.raw(), 60'000.0 * 2 / 4.0);
  p += s;
  EXPECT_DOUBLE_EQ(p.raw(), 100.0 + 30'000.0);
  EXPECT_DOUBLE_EQ((p - Pass(100.0)).raw(), 30'000.0);
  EXPECT_LT(Pass(1.0), Pass::Infinity());
  EXPECT_EQ(std::max(Pass(3.0), Pass(7.0)), Pass(7.0));
}

TEST(UnitsTest, PassInfinityIsAbsorbing) {
  const Pass inf = Pass::Infinity();
  EXPECT_TRUE(inf == Pass::Infinity());
  EXPECT_FALSE(inf < Pass::Infinity());
  EXPECT_GT(inf, Pass(1e300));
}

TEST(UnitsTest, SpeedupFromRates) {
  const Speedup s = Speedup::FromRates(PerGpuRate(10.0), PerGpuRate(2.0));
  EXPECT_DOUBLE_EQ(s.raw(), 5.0);
  EXPECT_GT(s, Speedup::Unit());
  // Margin discounting and breakeven slack are dimensionless scalings.
  EXPECT_DOUBLE_EQ((s * 0.95).raw(), 4.75);
  // Trade-volume conversion at rate lambda.
  EXPECT_DOUBLE_EQ(FastToSlow(2.0, s), 10.0);
  EXPECT_DOUBLE_EQ(SlowToFast(10.0, s), 2.0);
}

TEST(UnitsTest, SpeedupWeightedMeanAndQuantize) {
  // The TradeCoordinator::UserSpeedup pipeline: gang-weighted mean, floored
  // to quarter steps, never below 1x.
  Speedup weighted;
  weighted += Speedup::FromRatio(2.0) * 3.0;
  weighted += Speedup::FromRatio(4.0) * 1.0;
  const Speedup mean = weighted / 4.0;
  EXPECT_DOUBLE_EQ(mean.raw(), 2.5);
  EXPECT_EQ(FloorQuantize(Speedup::FromRatio(2.6), 4.0), Speedup::FromRatio(2.5));
  EXPECT_EQ(std::max(Speedup::Unit(), FloorQuantize(Speedup::FromRatio(0.3), 4.0)),
            Speedup::Unit());
}

TEST(UnitsTest, SpeedupGeometricMean) {
  const Speedup geo = GeometricMean(Speedup::FromRatio(1.5), Speedup::FromRatio(6.0));
  EXPECT_NEAR(geo.raw(), 3.0, 1e-12);
}

TEST(UnitsTest, PerGpuRateFromGangRate) {
  const PerGpuRate r = PerGpuRate::FromGangRate(40.0, 8);
  EXPECT_DOUBLE_EQ(r.raw(), 5.0);
}

TEST(UnitsTest, GpuSecondsConversionAndRatio) {
  GpuSeconds total = GpuSeconds::FromMillis(90'000.0);
  EXPECT_DOUBLE_EQ(total.raw(), 90.0);
  total += GpuSeconds(10.0);
  EXPECT_DOUBLE_EQ(total.raw(), 100.0);
  EXPECT_DOUBLE_EQ(total / GpuSeconds(200.0), 0.5);
  EXPECT_LT(GpuSeconds(1.0), GpuSeconds(2.0));
  EXPECT_DOUBLE_EQ((total * 2.0).raw(), 200.0);
}

TEST(UnitsTest, StreamsRawValue) {
  std::ostringstream os;
  os << Tickets(2.5) << " " << Pass(1.5) << " " << Speedup::FromRatio(3.0) << " "
     << GpuSeconds(4.5);
  EXPECT_EQ(os.str(), "2.5 1.5 3 4.5");
}

}  // namespace
}  // namespace gfair
