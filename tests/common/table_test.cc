#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace gfair {
namespace {

TEST(TableTest, PrintsAlignedColumns) {
  Table table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22"});
  std::ostringstream os;
  table.Print(os, "title");
  const std::string out = os.str();
  EXPECT_NE(out.find("== title =="), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
}

TEST(TableTest, CellBuilderTypes) {
  Table table({"s", "d", "i"});
  table.BeginRow().Cell("x").Cell(1.23456, 2).Cell(int64_t{42});
  ASSERT_EQ(table.num_rows(), 1u);
  EXPECT_EQ(table.rows()[0][1], "1.23");
  EXPECT_EQ(table.rows()[0][2], "42");
}

TEST(TableTest, CsvEscapesSpecials) {
  Table table({"a", "b"});
  table.AddRow({"with,comma", "with\"quote"});
  const std::string csv = table.ToCsv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(TableTest, CsvHasHeaderAndRows) {
  Table table({"x", "y"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.ToCsv(), "x,y\n1,2\n");
}

TEST(TableDeathTest, RowWidthMismatchAborts) {
  Table table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "row width");
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

}  // namespace
}  // namespace gfair
