#include "common/sim_time.h"

#include <gtest/gtest.h>

namespace gfair {
namespace {

TEST(SimTimeTest, UnitConversions) {
  EXPECT_EQ(Seconds(1.5), 1500);
  EXPECT_EQ(Minutes(2), 120'000);
  EXPECT_EQ(Hours(1), 3'600'000);
  EXPECT_DOUBLE_EQ(ToSeconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(ToMinutes(kHour), 60.0);
  EXPECT_DOUBLE_EQ(ToHours(kDay), 24.0);
}

TEST(SimTimeTest, RoundTrip) {
  EXPECT_DOUBLE_EQ(ToHours(Hours(3.25)), 3.25);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(0.001)), 0.001);
}

TEST(SimTimeTest, RoundsToNearestMillisecond) {
  // The helpers round (llround semantics) rather than truncate toward zero:
  // a value a hair under the boundary means the boundary, not 1ms less.
  EXPECT_EQ(Seconds(0.9999), 1000);
  EXPECT_EQ(Seconds(0.0004), 0);
  EXPECT_EQ(Seconds(0.0006), 1);
  EXPECT_EQ(Minutes(0.9999999), 60'000);
  EXPECT_EQ(Hours(0.9999999), 3'600'000);
  // Half away from zero, symmetrically for negative durations.
  EXPECT_EQ(Seconds(0.0005), 1);
  EXPECT_EQ(Seconds(-0.0005), -1);
  EXPECT_EQ(Seconds(-0.9999), -1000);
  // Exact products are untouched (the pre-rounding behavior for every
  // existing call site in the tree).
  EXPECT_EQ(Hours(6.25), 22'500'000);
  EXPECT_EQ(Hours(3.125), 11'250'000);
  EXPECT_EQ(Seconds(1.5), 1500);
}

TEST(SimTimeTest, FormatDurationSeconds) { EXPECT_EQ(FormatDuration(Seconds(6.5)), "6.5s"); }

TEST(SimTimeTest, FormatDurationMinutes) {
  EXPECT_EQ(FormatDuration(Minutes(4) + Seconds(5)), "4m05s");
}

TEST(SimTimeTest, FormatDurationHours) {
  EXPECT_EQ(FormatDuration(Hours(1) + Minutes(2) + Seconds(3)), "1h02m03s");
}

TEST(SimTimeTest, FormatDurationNegative) {
  EXPECT_EQ(FormatDuration(-Seconds(2)), "-2.0s");
}

}  // namespace
}  // namespace gfair
