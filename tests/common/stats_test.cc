#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace gfair {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStatsTest, MeanAndVariance) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.Add(x);
  }
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStatsTest, SingleSampleHasZeroVariance) {
  RunningStats stats;
  stats.Add(3.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats stats;
  stats.Add(1.0);
  stats.Reset();
  EXPECT_EQ(stats.count(), 0u);
}

TEST(PercentileSamplerTest, ExactPercentiles) {
  PercentileSampler sampler;
  for (int i = 1; i <= 100; ++i) {
    sampler.Add(i);
  }
  EXPECT_NEAR(sampler.Percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(sampler.Percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(sampler.Median(), 50.5, 1e-9);
  EXPECT_NEAR(sampler.Percentile(99), 99.01, 0.2);
}

TEST(PercentileSamplerTest, EmptyReturnsZero) {
  PercentileSampler sampler;
  EXPECT_DOUBLE_EQ(sampler.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(sampler.Mean(), 0.0);
}

TEST(PercentileSamplerTest, SingleSampleIsEveryPercentile) {
  PercentileSampler sampler;
  sampler.Add(42.0);
  EXPECT_DOUBLE_EQ(sampler.Percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(sampler.Percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(sampler.Percentile(100), 42.0);
  EXPECT_DOUBLE_EQ(sampler.Mean(), 42.0);
}

TEST(PercentileSamplerTest, TwoSamplesInterpolateLinearly) {
  PercentileSampler sampler;
  sampler.Add(10.0);
  sampler.Add(20.0);
  EXPECT_DOUBLE_EQ(sampler.Percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(sampler.Percentile(25), 12.5);
  EXPECT_DOUBLE_EQ(sampler.Percentile(50), 15.0);
  EXPECT_DOUBLE_EQ(sampler.Percentile(75), 17.5);
  EXPECT_DOUBLE_EQ(sampler.Percentile(100), 20.0);
}

TEST(PercentileSamplerTest, BoundaryRanksAreExactSamples) {
  // p landing exactly on a rank must return that sample with no
  // interpolation (frac == 0), including the last rank where hi == lo.
  PercentileSampler sampler;
  for (int i = 0; i < 5; ++i) {
    sampler.Add(i * 10.0);  // ranks 0..4 at p = 0, 25, 50, 75, 100
  }
  EXPECT_DOUBLE_EQ(sampler.Percentile(25), 10.0);
  EXPECT_DOUBLE_EQ(sampler.Percentile(75), 30.0);
  EXPECT_DOUBLE_EQ(sampler.Percentile(100), 40.0);
}

TEST(PercentileSamplerTest, DuplicatesAndUnsortedInsertion) {
  PercentileSampler sampler;
  for (double x : {5.0, 1.0, 5.0, 3.0, 5.0}) {
    sampler.Add(x);
  }
  EXPECT_DOUBLE_EQ(sampler.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(sampler.Median(), 5.0);
  EXPECT_DOUBLE_EQ(sampler.Percentile(100), 5.0);
  EXPECT_EQ(sampler.count(), 5u);
}

TEST(PercentileSamplerTest, AddAfterQueryStaysSorted) {
  PercentileSampler sampler;
  sampler.Add(3.0);
  sampler.Add(1.0);
  EXPECT_DOUBLE_EQ(sampler.Percentile(0), 1.0);
  sampler.Add(0.5);
  EXPECT_DOUBLE_EQ(sampler.Percentile(0), 0.5);
}

TEST(JainIndexTest, PerfectlyFair) {
  EXPECT_DOUBLE_EQ(JainIndex({5.0, 5.0, 5.0, 5.0}), 1.0);
}

TEST(JainIndexTest, MaximallyUnfair) {
  EXPECT_NEAR(JainIndex({10.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
}

TEST(JainIndexTest, EmptyAndZeroAreFair) {
  EXPECT_DOUBLE_EQ(JainIndex({}), 1.0);
  EXPECT_DOUBLE_EQ(JainIndex({0.0, 0.0}), 1.0);
}

TEST(MaxRelativeDeviationTest, MeasuresWorstUser) {
  EXPECT_NEAR(MaxRelativeDeviation({9.0, 11.0}, {10.0, 10.0}), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(MaxRelativeDeviation({10.0, 10.0}, {10.0, 10.0}), 0.0);
}

TEST(MaxRelativeDeviationTest, IgnoresZeroIdeal) {
  EXPECT_DOUBLE_EQ(MaxRelativeDeviation({5.0, 10.0}, {0.0, 10.0}), 0.0);
}

}  // namespace
}  // namespace gfair
