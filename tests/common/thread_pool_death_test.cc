// ThreadPool re-entrancy tripwire: a nested ParallelFor from inside a chunk
// must die loudly instead of deadlocking (the outer span's caller would wait
// forever on the inner span's participants). The worker path carries an
// always-on locked CHECK; the inline path — where the nesting would "work"
// locally and then deadlock the first time the pool has workers — is caught
// by a Debug-only tripwire on the in_span_ flag.
//
// Death tests fork with worker threads alive, which TSan rejects; this
// binary carries the tsan-skip label (the TSan CI job runs `ctest -LE
// tsan-skip`).
#include "common/thread_pool.h"

#include <cstddef>

#include <gtest/gtest.h>

namespace gfair::common {
namespace {

TEST(ThreadPoolDeathTest, NestedSpanAcrossWorkersDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ThreadPool pool(2);
  EXPECT_DEATH(
      pool.ParallelFor(2,
                       [&pool](size_t begin, size_t) {
                         if (begin == 0) {  // nest from the caller's chunk only
                           pool.ParallelFor(2, [](size_t, size_t) {});
                         }
                       }),
      "not re-entrant");
}

#ifndef NDEBUG
TEST(ThreadPoolDeathTest, NestedInlineSpanDiesInDebug) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ThreadPool pool(1);  // no workers: every span runs inline
  EXPECT_DEATH(pool.ParallelFor(4,
                                [&pool](size_t, size_t) {
                                  pool.ParallelFor(4, [](size_t, size_t) {});
                                }),
               "nested span");
}
#endif

}  // namespace
}  // namespace gfair::common
