#include "common/flags.h"

#include <gtest/gtest.h>

namespace gfair {
namespace {

ArgParser Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return ArgParser(static_cast<int>(args.size()), args.data());
}

TEST(ArgParserTest, SpaceSeparatedValues) {
  const auto args = Parse({"--name", "value", "--count", "7"});
  EXPECT_EQ(args.GetString("name"), "value");
  EXPECT_EQ(args.GetInt("count", 0), 7);
}

TEST(ArgParserTest, EqualsSeparatedValues) {
  const auto args = Parse({"--rate=2.5", "--label=x=y"});
  EXPECT_DOUBLE_EQ(args.GetDouble("rate", 0.0), 2.5);
  EXPECT_EQ(args.GetString("label"), "x=y");  // only first '=' splits
}

TEST(ArgParserTest, BooleanFlags) {
  const auto args = Parse({"--verbose", "--next-flag", "--explicit=true", "--off=0"});
  EXPECT_TRUE(args.GetBool("verbose"));
  EXPECT_TRUE(args.GetBool("next-flag"));
  EXPECT_TRUE(args.GetBool("explicit"));
  EXPECT_FALSE(args.GetBool("off"));
  EXPECT_FALSE(args.GetBool("absent"));
  EXPECT_TRUE(args.GetBool("absent", true));
}

TEST(ArgParserTest, FallbacksWhenAbsent) {
  const auto args = Parse({});
  EXPECT_EQ(args.GetString("x", "d"), "d");
  EXPECT_DOUBLE_EQ(args.GetDouble("y", 1.5), 1.5);
  EXPECT_EQ(args.GetInt("z", -3), -3);
  EXPECT_FALSE(args.Has("x"));
}

TEST(ArgParserTest, RepeatableFlags) {
  const auto args = Parse({"--user", "a", "--user", "b", "--user=c"});
  const auto all = args.GetAll("user");
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], "a");
  EXPECT_EQ(all[2], "c");
}

TEST(ArgParserTest, PositionalArguments) {
  const auto args = Parse({"input.csv", "--flag", "v", "other.txt"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.csv");
  EXPECT_EQ(args.positional()[1], "other.txt");
}

TEST(ArgParserTest, TryGettersRejectGarbage) {
  const auto args = Parse({"--num", "12abc", "--ok", "34"});
  int64_t value = 0;
  EXPECT_FALSE(args.TryGetInt("num", &value));
  EXPECT_TRUE(args.TryGetInt("ok", &value));
  EXPECT_EQ(value, 34);
  double real = 0.0;
  EXPECT_FALSE(args.TryGetDouble("num", &real));
}

TEST(ArgParserTest, UnconsumedFlagDetection) {
  const auto args = Parse({"--used", "1", "--typo", "2"});
  args.GetInt("used", 0);
  const auto unconsumed = args.UnconsumedFlags();
  ASSERT_EQ(unconsumed.size(), 1u);
  EXPECT_EQ(unconsumed[0], "typo");
}

TEST(SplitAndTrimTest, Basics) {
  const auto pieces = SplitAndTrim(" a , b,c ,", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "c");
  EXPECT_EQ(pieces[3], "");
}

TEST(SplitAndTrimTest, NoDelimiter) {
  const auto pieces = SplitAndTrim("  solo  ", ',');
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "solo");
}

}  // namespace
}  // namespace gfair
