#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace gfair::common {
namespace {

TEST(ThreadPoolTest, PoolOfOneRunsInlineAndCoversRange) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(hits.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      hits[i] += 1;
    }
  });
  for (int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPoolTest, EveryIndexVisitedExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  constexpr size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ChunkBoundariesAreDeterministic) {
  // The split must depend only on (n, pool size) — record the chunk spans of
  // two identical runs and require them identical (and disjoint, covering).
  ThreadPool pool(3);
  const auto spans_of = [&pool](size_t n) {
    std::mutex mu;
    std::set<std::pair<size_t, size_t>> spans;
    pool.ParallelFor(n, [&](size_t begin, size_t end) {
      std::lock_guard<std::mutex> lock(mu);
      spans.emplace(begin, end);
    });
    return spans;
  };
  for (size_t n : {1u, 2u, 3u, 7u, 64u, 1000u}) {
    const auto first = spans_of(n);
    EXPECT_EQ(first, spans_of(n)) << "n=" << n;
    size_t covered = 0;
    size_t expect_begin = 0;
    for (const auto& [begin, end] : first) {
      EXPECT_EQ(begin, expect_begin) << "n=" << n;
      EXPECT_GE(end, begin);
      covered += end - begin;
      expect_begin = end;
    }
    EXPECT_EQ(covered, n);
  }
}

TEST(ThreadPoolTest, EmptyRangeAndReuseAcrossCalls) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t, size_t) { calls += 1; });
  EXPECT_EQ(calls, 0);
  // The pool must be reusable across many epochs without deadlock or lost
  // wake-ups.
  std::atomic<size_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(17, [&](size_t begin, size_t end) {
      total.fetch_add(end - begin, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 200u * 17u);
}

TEST(ThreadPoolTest, MoreThreadsThanWork) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(hits.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, BoundaryEmptySpanIsNoOpAndPoolStaysUsable) {
  // n == 0: the body must never run, no epoch is published, and a full-width
  // span right after must still behave.
  ThreadPool pool(8);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, [&](size_t, size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(hits.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, BoundaryFewerItemsThanParts) {
  // n < parts leaves some workers with empty chunks — they are skipped
  // entirely, and every index is still visited exactly once. n values that
  // leave *interior* tail chunks empty (e.g. n = 10 with 8 parts → chunk 2,
  // 5 used chunks) must behave the same way.
  ThreadPool pool(8);
  for (size_t n : {1u, 2u, 3u, 5u, 7u, 10u, 12u}) {
    std::vector<std::atomic<int>> hits(n);
    for (int round = 0; round < 50; ++round) {
      pool.ParallelFor(n, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (const auto& h : hits) {
      EXPECT_EQ(h.load(), 50) << "n=" << n;
    }
  }
}

TEST(ThreadPoolTest, ExceptionFromWorkerChunkReachesCaller) {
  ThreadPool pool(4);
  constexpr size_t kN = 8;  // chunk = 2: caller owns [0,2), workers the rest
  std::vector<std::atomic<int>> hits(kN);
  const auto body = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
    if (begin == 4) {
      throw std::runtime_error("chunk-4");
    }
  };
  EXPECT_THROW(pool.ParallelFor(kN, body), std::runtime_error);
  // The failing chunk still did its (pre-throw) work and no other chunk was
  // torn down.
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ExceptionFromCallerChunkReachesCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(8,
                                [&](size_t begin, size_t) {
                                  if (begin == 0) {
                                    throw std::runtime_error("caller chunk");
                                  }
                                }),
               std::runtime_error);
  // Inline execution (pool of one) propagates directly too.
  ThreadPool inline_pool(1);
  EXPECT_THROW(
      inline_pool.ParallelFor(8, [](size_t, size_t) { throw std::runtime_error("inline"); }),
      std::runtime_error);
}

TEST(ThreadPoolTest, LowestChunkErrorWinsAndPoolIsReusableAfter) {
  ThreadPool pool(4);
  constexpr size_t kN = 8;  // chunk = 2: worker chunks begin at 2, 4, 6
  const auto body = [](size_t begin, size_t) {
    if (begin == 2 || begin == 6) {
      throw std::runtime_error("begin=" + std::to_string(begin));
    }
  };
  for (int round = 0; round < 20; ++round) {
    // Two chunks fail every span; the rethrown error must deterministically
    // be the lowest-numbered one no matter which worker recorded first.
    try {
      pool.ParallelFor(kN, body);
      FAIL() << "span did not throw";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "begin=2");
    }
  }
  // A failed span leaves no residue: the next span runs clean.
  std::atomic<size_t> total{0};
  pool.ParallelFor(kN, [&](size_t begin, size_t end) {
    total.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), kN);
}

}  // namespace
}  // namespace gfair::common
