#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <mutex>
#include <numeric>
#include <set>
#include <utility>
#include <vector>

namespace gfair::common {
namespace {

TEST(ThreadPoolTest, PoolOfOneRunsInlineAndCoversRange) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(hits.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      hits[i] += 1;
    }
  });
  for (int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPoolTest, EveryIndexVisitedExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  constexpr size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ChunkBoundariesAreDeterministic) {
  // The split must depend only on (n, pool size) — record the chunk spans of
  // two identical runs and require them identical (and disjoint, covering).
  ThreadPool pool(3);
  const auto spans_of = [&pool](size_t n) {
    std::mutex mu;
    std::set<std::pair<size_t, size_t>> spans;
    pool.ParallelFor(n, [&](size_t begin, size_t end) {
      std::lock_guard<std::mutex> lock(mu);
      spans.emplace(begin, end);
    });
    return spans;
  };
  for (size_t n : {1u, 2u, 3u, 7u, 64u, 1000u}) {
    const auto first = spans_of(n);
    EXPECT_EQ(first, spans_of(n)) << "n=" << n;
    size_t covered = 0;
    size_t expect_begin = 0;
    for (const auto& [begin, end] : first) {
      EXPECT_EQ(begin, expect_begin) << "n=" << n;
      EXPECT_GE(end, begin);
      covered += end - begin;
      expect_begin = end;
    }
    EXPECT_EQ(covered, n);
  }
}

TEST(ThreadPoolTest, EmptyRangeAndReuseAcrossCalls) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t, size_t) { calls += 1; });
  EXPECT_EQ(calls, 0);
  // The pool must be reusable across many epochs without deadlock or lost
  // wake-ups.
  std::atomic<size_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(17, [&](size_t begin, size_t end) {
      total.fetch_add(end - begin, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 200u * 17u);
}

TEST(ThreadPoolTest, MoreThreadsThanWork) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.ParallelFor(hits.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

}  // namespace
}  // namespace gfair::common
