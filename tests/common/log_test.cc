#include "common/log.h"

#include <gtest/gtest.h>

namespace gfair {
namespace {

// The logger writes to stderr; these tests cover level filtering semantics
// (the macro must not evaluate its stream when filtered) and level state.

class LogTest : public ::testing::Test {
 protected:
  void TearDown() override { SetLogLevel(LogLevel::kWarning); }
};

TEST_F(LogTest, LevelRoundTrips) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kOff);
  EXPECT_EQ(GetLogLevel(), LogLevel::kOff);
}

TEST_F(LogTest, FilteredMessagesDoNotEvaluateOperands) {
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return "payload";
  };
  GFAIR_DLOG << expensive();
  GFAIR_ILOG << expensive();
  GFAIR_WLOG << expensive();
  EXPECT_EQ(evaluations, 0);
  GFAIR_ELOG << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, OffSilencesEverything) {
  SetLogLevel(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return 0;
  };
  GFAIR_ELOG << expensive();
  EXPECT_EQ(evaluations, 0);
}

TEST_F(LogTest, DebugLevelPassesAll) {
  SetLogLevel(LogLevel::kDebug);
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return 0;
  };
  GFAIR_DLOG << expensive();
  GFAIR_ELOG << expensive();
  EXPECT_EQ(evaluations, 2);
}

}  // namespace
}  // namespace gfair
