#include "common/types.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace gfair {
namespace {

TEST(StrongIdTest, DefaultConstructedIsInvalid) {
  JobId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, JobId::Invalid());
}

TEST(StrongIdTest, ValueRoundTrips) {
  UserId id(42);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42u);
}

TEST(StrongIdTest, Ordering) {
  EXPECT_LT(JobId(1), JobId(2));
  EXPECT_GT(JobId(3), JobId(2));
  EXPECT_LE(JobId(2), JobId(2));
  EXPECT_NE(JobId(1), JobId(2));
}

TEST(StrongIdTest, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<JobId, UserId>);
  static_assert(!std::is_same_v<ServerId, GpuId>);
}

TEST(StrongIdTest, Hashable) {
  std::unordered_set<JobId> set;
  set.insert(JobId(1));
  set.insert(JobId(1));
  set.insert(JobId(2));
  EXPECT_EQ(set.size(), 2u);
}

TEST(StrongIdTest, InvalidRoundTripsThroughHashContainers) {
  // Invalid() is a legitimate key (e.g. "no home server" sentinels); it must
  // hash and compare like any other value, distinct from every valid id.
  std::unordered_set<ServerId> set;
  set.insert(ServerId::Invalid());
  set.insert(ServerId::Invalid());
  set.insert(ServerId(0));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.count(ServerId::Invalid()), 1u);

  std::unordered_map<JobId, int> map;
  map[JobId::Invalid()] = 7;
  EXPECT_EQ(map.at(JobId::Invalid()), 7);
  EXPECT_EQ(map.count(JobId(3)), 0u);
}

TEST(StrongIdTest, OrderingAtInvalidBoundary) {
  // kInvalidValue is numeric_limits<Rep>::max(), so Invalid() sorts strictly
  // after every valid id — code that orders ids may rely on that.
  EXPECT_LT(JobId(0), JobId::Invalid());
  EXPECT_LT(JobId(std::numeric_limits<uint32_t>::max() - 1), JobId::Invalid());
  EXPECT_LE(JobId::Invalid(), JobId::Invalid());
  EXPECT_GT(JobId::Invalid(), JobId(123));
  EXPECT_FALSE(JobId::Invalid() < JobId::Invalid());
}

TEST(StrongIdTest, StreamsValueOrInvalid) {
  std::ostringstream os;
  os << ServerId(7) << " " << ServerId::Invalid();
  EXPECT_EQ(os.str(), "7 <invalid>");
}

}  // namespace
}  // namespace gfair
