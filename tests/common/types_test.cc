#include "common/types.h"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

namespace gfair {
namespace {

TEST(StrongIdTest, DefaultConstructedIsInvalid) {
  JobId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, JobId::Invalid());
}

TEST(StrongIdTest, ValueRoundTrips) {
  UserId id(42);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42u);
}

TEST(StrongIdTest, Ordering) {
  EXPECT_LT(JobId(1), JobId(2));
  EXPECT_GT(JobId(3), JobId(2));
  EXPECT_LE(JobId(2), JobId(2));
  EXPECT_NE(JobId(1), JobId(2));
}

TEST(StrongIdTest, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<JobId, UserId>);
  static_assert(!std::is_same_v<ServerId, GpuId>);
}

TEST(StrongIdTest, Hashable) {
  std::unordered_set<JobId> set;
  set.insert(JobId(1));
  set.insert(JobId(1));
  set.insert(JobId(2));
  EXPECT_EQ(set.size(), 2u);
}

TEST(StrongIdTest, StreamsValueOrInvalid) {
  std::ostringstream os;
  os << ServerId(7) << " " << ServerId::Invalid();
  EXPECT_EQ(os.str(), "7 <invalid>");
}

}  // namespace
}  // namespace gfair
