#include <gtest/gtest.h>

#include "analysis/harness.h"
#include "baselines/quota.h"
#include "cluster/cluster.h"

namespace gfair::baselines {
namespace {

using analysis::Experiment;
using analysis::ExperimentConfig;
using analysis::Policy;
using cluster::GpuGeneration;

TEST(FifoTest, RunsJobsInArrivalOrder) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(1, 4);
  Experiment exp(config);
  auto& a = exp.users().Create("a");
  exp.UsePolicy(Policy::kFifo);
  const JobId first = exp.SubmitAt(kTimeZero, a.id, "DCGAN", 4, Hours(1));
  const JobId second = exp.SubmitAt(Minutes(1), a.id, "DCGAN", 4, Hours(1));
  exp.Run(Hours(3));
  const auto& job1 = exp.jobs().Get(first);
  const auto& job2 = exp.jobs().Get(second);
  ASSERT_TRUE(job1.finished());
  ASSERT_TRUE(job2.finished());
  EXPECT_LT(job1.finish_time, job2.finish_time);
  // Strictly sequential: second starts only after first finishes.
  EXPECT_GE(job2.finish_time - job1.finish_time, Minutes(15));
}

TEST(FifoTest, HeadOfLineBlocksBackfill) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(1, 4);
  Experiment exp(config);
  auto& a = exp.users().Create("a");
  exp.UsePolicy(Policy::kFifo);
  exp.SubmitAt(kTimeZero, a.id, "DCGAN", 3, Hours(2));     // running, 1 GPU free
  exp.SubmitAt(Minutes(1), a.id, "DCGAN", 2, Hours(2));    // blocked head
  const JobId small = exp.SubmitAt(Minutes(2), a.id, "DCGAN", 1, Minutes(10));
  exp.Run(Minutes(30));
  // Strict FIFO: the 1-GPU job must NOT start ahead of the blocked 2-GPU job.
  EXPECT_FALSE(exp.jobs().Get(small).finished());
  EXPECT_EQ(exp.jobs().Get(small).state, workload::JobState::kQueued);
}

TEST(GreedyTest, BackfillsPastBlockedGang) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(1, 4);
  Experiment exp(config);
  auto& a = exp.users().Create("a");
  exp.UsePolicy(Policy::kEfficiencyGreedy);
  exp.SubmitAt(kTimeZero, a.id, "DCGAN", 3, Hours(2));
  exp.SubmitAt(Minutes(1), a.id, "DCGAN", 2, Hours(2));
  const JobId small = exp.SubmitAt(Minutes(2), a.id, "DCGAN", 1, Minutes(10));
  exp.Run(Minutes(30));
  EXPECT_TRUE(exp.jobs().Get(small).finished());
}

TEST(GreedyTest, IsUnfairAcrossUsers) {
  // Greedy packs small jobs: the many-small-jobs user crowds out the gang
  // user. This unfairness is what E6 quantifies.
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(1, 8);
  Experiment exp(config);
  auto& gang_user = exp.users().Create("gangs");
  auto& small_user = exp.users().Create("smalls");
  exp.UsePolicy(Policy::kEfficiencyGreedy);
  // Smalls arrive first and keep the server full; greedy backfills a new
  // small whenever one finishes, so the 8-GPU gang never assembles.
  for (int i = 0; i < 64; ++i) {
    exp.SubmitAt(kTimeZero, small_user.id, "DCGAN", 1, Hours(8));
  }
  exp.SubmitAt(kTimeZero, gang_user.id, "DCGAN", 8, Hours(400));
  exp.Run(Hours(4));
  const auto& ledger = exp.scheduler().policy_ledger();
  const double gang_ms = ledger.GpuMs(gang_user.id, kTimeZero, Hours(4));
  const double small_ms = ledger.GpuMs(small_user.id, kTimeZero, Hours(4));
  EXPECT_GT(small_ms, gang_ms * 5.0);
}

TEST(QuotaTest, QuotasAreTicketProportional) {
  ExperimentConfig config;
  config.topology = cluster::Topology{{
      {GpuGeneration::kK80, 1, 8},
      {GpuGeneration::kV100, 1, 8},
  }};
  Experiment exp(config);
  auto& a = exp.users().Create("a", 1.0);
  auto& b = exp.users().Create("b", 3.0);
  exp.UsePolicy(Policy::kStaticQuota);
  exp.Run(Minutes(1));  // triggers Start()
  auto* quota = dynamic_cast<StaticQuotaScheduler*>(&exp.scheduler());
  ASSERT_NE(quota, nullptr);
  EXPECT_EQ(quota->QuotaFor(a.id, GpuGeneration::kV100), 2);
  EXPECT_EQ(quota->QuotaFor(b.id, GpuGeneration::kV100), 6);
  EXPECT_EQ(quota->QuotaFor(a.id, GpuGeneration::kK80), 2);
}

TEST(QuotaTest, UserCannotExceedQuota) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(1, 8);
  Experiment exp(config);
  auto& a = exp.users().Create("a", 1.0);
  exp.users().Create("b", 1.0);  // entitled to half, stays idle
  exp.UsePolicy(Policy::kStaticQuota);
  for (int i = 0; i < 8; ++i) {
    exp.SubmitAt(kTimeZero, a.id, "DCGAN", 1, Hours(100));
  }
  exp.Run(Hours(2));
  // No work conservation: a is capped at its 4-GPU quota even though b idles.
  const double a_ms = exp.scheduler().policy_ledger().GpuMs(a.id, kTimeZero, Hours(2));
  EXPECT_NEAR(a_ms / (4.0 * Hours(2)), 1.0, 0.05);
}

TEST(QuotaTest, LargestRemainderDistributesAllGpus) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(1, 8);
  Experiment exp(config);
  auto& a = exp.users().Create("a", 1.0);
  auto& b = exp.users().Create("b", 1.0);
  auto& c = exp.users().Create("c", 1.0);
  exp.UsePolicy(Policy::kStaticQuota);
  exp.Run(Minutes(1));
  auto* quota = dynamic_cast<StaticQuotaScheduler*>(&exp.scheduler());
  const int total = quota->QuotaFor(a.id, GpuGeneration::kV100) +
                    quota->QuotaFor(b.id, GpuGeneration::kV100) +
                    quota->QuotaFor(c.id, GpuGeneration::kV100);
  EXPECT_EQ(total, 8);
}

TEST(BaselinePoliciesTest, AllPoliciesCompleteAWorkload) {
  for (Policy policy : {Policy::kFifo, Policy::kStaticQuota, Policy::kEfficiencyGreedy,
                        Policy::kPlainStride, Policy::kGandivaFairNoTrade}) {
    ExperimentConfig config;
    config.topology = cluster::HomogeneousTopology(2, 4);
    Experiment exp(config);
    auto& a = exp.users().Create("a");
    auto& b = exp.users().Create("b");
    exp.UsePolicy(policy);
    for (int i = 0; i < 6; ++i) {
      exp.SubmitAt(Minutes(i), i % 2 == 0 ? a.id : b.id, "DCGAN", 1 + (i % 2),
                   Minutes(30));
    }
    exp.Run(Hours(6));
    int finished = 0;
    for (const auto* job : exp.jobs().All()) {
      finished += job->finished() ? 1 : 0;
    }
    EXPECT_EQ(finished, 6) << analysis::PolicyName(policy);
  }
}

}  // namespace
}  // namespace gfair::baselines
