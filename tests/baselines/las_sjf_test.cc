// Tests for the SJF and LAS baselines and per-job weights.
#include <gtest/gtest.h>

#include "analysis/harness.h"

namespace gfair::baselines {
namespace {

using analysis::Experiment;
using analysis::ExperimentConfig;
using analysis::Policy;

TEST(SjfTest, ShortestJobDispatchedFirst) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(1, 2);
  Experiment exp(config);
  auto& a = exp.users().Create("a");
  exp.UsePolicy(Policy::kSjf);
  // Occupy the server so the next two queue up; the shorter must go first.
  exp.SubmitAt(kTimeZero, a.id, "DCGAN", 2, Minutes(30));
  const JobId longer = exp.SubmitAt(Minutes(1), a.id, "DCGAN", 2, Hours(2));
  const JobId shorter = exp.SubmitAt(Minutes(2), a.id, "DCGAN", 2, Minutes(20));
  exp.Run(Hours(4));
  EXPECT_LT(exp.jobs().Get(shorter).finish_time, exp.jobs().Get(longer).finish_time);
}

TEST(SjfTest, OracleBeatsFifoOnMeanJct) {
  auto mean_jct = [](Policy policy) {
    ExperimentConfig config;
    config.topology = cluster::HomogeneousTopology(1, 4);
    config.seed = 5;
    Experiment exp(config);
    auto& a = exp.users().Create("a");
    exp.UsePolicy(policy);
    // A short blocker occupies the server; behind it queue a long job and a
    // burst of short ones — FIFO runs the long job first, SJF the shorts.
    exp.SubmitAt(kTimeZero, a.id, "DCGAN", 4, Minutes(30));
    exp.SubmitAt(Minutes(1), a.id, "DCGAN", 4, Hours(10));
    for (int i = 0; i < 9; ++i) {
      exp.SubmitAt(Minutes(2 + i), a.id, "DCGAN", 4, Minutes(20));
    }
    exp.Run(Hours(20));
    double total = 0.0;
    int finished = 0;
    for (const auto* job : exp.jobs().All()) {
      if (job->finished()) {
        total += ToMinutes(job->finish_time - job->submit_time);
        ++finished;
      }
    }
    EXPECT_EQ(finished, 11);
    return total / finished;
  };
  EXPECT_LT(mean_jct(Policy::kSjf), 0.5 * mean_jct(Policy::kFifo));
}

TEST(LasTest, ShortJobsFinishQuicklyUnderLongJobLoad) {
  // 4 long jobs saturate the server; a newcomer short job has zero attained
  // service, so LAS runs it promptly — unlike FIFO, which parks it.
  auto short_jct = [](Policy policy) {
    ExperimentConfig config;
    config.topology = cluster::HomogeneousTopology(1, 4);
    Experiment exp(config);
    auto& a = exp.users().Create("a");
    exp.UsePolicy(policy);
    for (int i = 0; i < 4; ++i) {
      exp.SubmitAt(kTimeZero, a.id, "DCGAN", 1, Hours(50));
    }
    const JobId late_short = exp.SubmitAt(Hours(1), a.id, "DCGAN", 1, Minutes(30));
    exp.Run(Hours(30));
    const auto& job = exp.jobs().Get(late_short);
    return job.finished() ? ToMinutes(job.finish_time - job.submit_time) : 1e9;
  };
  const double las_jct = short_jct(Policy::kLas);
  const double fifo_jct = short_jct(Policy::kFifo);
  EXPECT_LT(las_jct, 30.0);        // ~10 min of work + some slicing
  EXPECT_GT(fifo_jct, 5 * las_jct);
}

TEST(LasTest, EqualAttainedServiceAtSteadyState) {
  // Identical infinite jobs: LAS round-robins them, equalizing service.
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(1, 2);
  Experiment exp(config);
  auto& a = exp.users().Create("a");
  exp.UsePolicy(Policy::kLas);
  std::vector<JobId> ids;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(exp.SubmitAt(kTimeZero, a.id, "DCGAN", 1, Hours(500)));
  }
  exp.Run(Hours(6));
  double min_service = 1e18;
  double max_service = 0.0;
  for (JobId id : ids) {
    const double service = exp.jobs().Get(id).TotalGpuMs();
    min_service = std::min(min_service, service);
    max_service = std::max(max_service, service);
  }
  EXPECT_GT(min_service / max_service, 0.95);
}

TEST(LasTest, IsUnfairAcrossUsers) {
  // User A submits a fresh short job every 30 min; user B has 2 long jobs.
  // LAS always favors the fresh jobs (zero attained service), so A hogs the
  // server — the fairness failure Gandiva_fair fixes.
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(1, 2);
  Experiment exp(config);
  auto& a = exp.users().Create("a");
  auto& b = exp.users().Create("b");
  exp.UsePolicy(Policy::kLas);
  for (int i = 0; i < 16; ++i) {
    exp.SubmitAt(Minutes(30 * i), a.id, "DCGAN", 2, Hours(1.5));
  }
  exp.SubmitAt(kTimeZero, b.id, "DCGAN", 2, Hours(500));
  exp.Run(Hours(8));
  const auto& ledger = exp.scheduler().policy_ledger();
  const double a_ms = ledger.GpuMs(a.id, kTimeZero, Hours(8));
  const double b_ms = ledger.GpuMs(b.id, kTimeZero, Hours(8));
  EXPECT_GT(a_ms, 1.5 * b_ms);
}

TEST(WeightTest, IntraUserWeightsSkewGpuTime) {
  // Two identical infinite jobs of one user, weights 3:1 — GPU time 3:1,
  // while another user's share is untouched (weights are intra-user only).
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(1, 2);
  Experiment exp(config);
  auto& a = exp.users().Create("a");
  auto& b = exp.users().Create("b");
  exp.UseGandivaFair({});
  const JobId heavy = exp.SubmitAt(kTimeZero, a.id, "DCGAN", 1, Hours(500), 3.0);
  const JobId light = exp.SubmitAt(kTimeZero, a.id, "DCGAN", 1, Hours(500), 1.0);
  exp.SubmitAt(kTimeZero, b.id, "DCGAN", 1, Hours(500));
  exp.SubmitAt(kTimeZero, b.id, "DCGAN", 1, Hours(500));
  exp.Run(Hours(8));
  const double heavy_ms = exp.jobs().Get(heavy).TotalGpuMs();
  const double light_ms = exp.jobs().Get(light).TotalGpuMs();
  EXPECT_NEAR(heavy_ms / light_ms, 3.0, 0.25);
  // Inter-user split stays 1:1.
  const double a_ms = exp.ledger().GpuMs(a.id, kTimeZero, Hours(8));
  const double b_ms = exp.ledger().GpuMs(b.id, kTimeZero, Hours(8));
  EXPECT_NEAR(a_ms / b_ms, 1.0, 0.06);
}

}  // namespace
}  // namespace gfair::baselines
