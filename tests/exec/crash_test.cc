// Failure-injection tests: checkpoint-on-suspend, crash rollback, and
// end-to-end scheduler resilience under random crashes.
#include <gtest/gtest.h>

#include "analysis/harness.h"
#include "common/rng.h"
#include "exec/executor.h"

namespace gfair::exec {
namespace {

using workload::Job;
using workload::JobState;

class CrashTest : public ::testing::Test {
 protected:
  CrashTest()
      : cluster_(cluster::HomogeneousTopology(1, 4)),
        exec_(sim_, cluster_, workload::ModelZoo::Default(), jobs_, ExecutorConfig{},
              1) {}

  Job& MakeJob(double minibatches) {
    const auto& model = workload::ModelZoo::Default().GetByName("DCGAN");
    return jobs_.Create(UserId(0), model.id, 1, minibatches, sim_.Now());
  }

  simkit::Simulator sim_;
  cluster::Cluster cluster_;
  workload::JobTable jobs_;
  Executor exec_;
};

TEST_F(CrashTest, CrashRollsBackToLastCheckpoint) {
  Job& job = MakeJob(1e9);
  exec_.MakeResident(job.id, ServerId(0));
  exec_.Resume(job.id);
  sim_.RunUntil(Minutes(10));
  exec_.Suspend(job.id);  // checkpoint here
  const double checkpoint = job.completed_minibatches;
  EXPECT_GT(checkpoint, 0.0);

  exec_.Resume(job.id);
  sim_.RunUntil(Minutes(20));
  exec_.SyncProgress(job.id);
  EXPECT_GT(job.completed_minibatches, checkpoint);

  exec_.InjectCrash(job.id);
  EXPECT_EQ(job.state, JobState::kSuspended);
  EXPECT_DOUBLE_EQ(job.completed_minibatches, checkpoint);
  EXPECT_EQ(job.num_crashes, 1);
  // The GPUs are released...
  EXPECT_EQ(cluster_.server(ServerId(0)).num_free(), 4);
  // ...but the burned GPU time since the checkpoint stays charged.
  EXPECT_NEAR(job.TotalGpuMs(), static_cast<double>(Minutes(20)), 1.0);
}

TEST_F(CrashTest, CrashWithoutCheckpointLosesEverything) {
  Job& job = MakeJob(1e9);
  exec_.MakeResident(job.id, ServerId(0));
  exec_.Resume(job.id);
  sim_.RunUntil(Hours(1));
  exec_.InjectCrash(job.id);
  EXPECT_DOUBLE_EQ(job.completed_minibatches, 0.0);
}

TEST_F(CrashTest, CrashedJobRestartsAndFinishes) {
  Job& job = MakeJob(16.0 * 600);  // 600s of K80 work... on V100: ~192s
  exec_.MakeResident(job.id, ServerId(0));
  exec_.Resume(job.id);
  sim_.RunUntil(Minutes(1));
  exec_.InjectCrash(job.id);
  exec_.Resume(job.id);
  sim_.Run();
  EXPECT_TRUE(job.finished());
  EXPECT_DOUBLE_EQ(job.completed_minibatches, job.total_minibatches);
}

TEST_F(CrashTest, CrashOnSuspendedJobIsLossless) {
  Job& job = MakeJob(1e9);
  exec_.MakeResident(job.id, ServerId(0));
  exec_.Resume(job.id);
  sim_.RunUntil(Minutes(5));
  exec_.Suspend(job.id);
  const double checkpoint = job.completed_minibatches;
  exec_.InjectCrash(job.id);
  EXPECT_DOUBLE_EQ(job.completed_minibatches, checkpoint);
  EXPECT_EQ(job.state, JobState::kSuspended);
}

TEST_F(CrashTest, MigrationCheckpointsProgress) {
  cluster::Cluster hetero(cluster::Topology{{
      {cluster::GpuGeneration::kK80, 1, 2},
      {cluster::GpuGeneration::kV100, 1, 2},
  }});
  workload::JobTable jobs;
  Executor exec(sim_, hetero, workload::ModelZoo::Default(), jobs, ExecutorConfig{}, 2);
  const auto& model = workload::ModelZoo::Default().GetByName("DCGAN");
  Job& job = jobs.Create(UserId(0), model.id, 1, 1e9, sim_.Now());
  exec.MakeResident(job.id, ServerId(0));
  exec.Resume(job.id);
  sim_.RunUntil(Minutes(5));
  exec.Suspend(job.id);
  exec.Migrate(job.id, ServerId(1));
  sim_.RunUntil(Minutes(6));
  ASSERT_EQ(job.state, JobState::kSuspended);
  EXPECT_DOUBLE_EQ(job.checkpointed_minibatches, job.completed_minibatches);
}

TEST_F(CrashTest, DeathOnBadStates) {
  Job& job = MakeJob(16.0);
  EXPECT_DEATH(exec_.InjectCrash(job.id), "running or suspended");  // still queued
  exec_.MakeResident(job.id, ServerId(0));
  exec_.Resume(job.id);
  sim_.Run();
  ASSERT_TRUE(job.finished());
  EXPECT_DEATH(exec_.InjectCrash(job.id), "running or suspended");
}

TEST(CrashIntegrationTest, SchedulerSurvivesRandomCrashes) {
  // Random crashes every few minutes must not wedge the scheduler: all jobs
  // eventually finish, crash counts are visible, fairness holds between the
  // two (identically loaded) users.
  analysis::ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(2, 4);
  analysis::Experiment exp(config);
  auto& a = exp.users().Create("a");
  auto& b = exp.users().Create("b");
  exp.UseGandivaFair({});
  std::vector<JobId> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(exp.SubmitAt(Minutes(i), i % 2 == 0 ? a.id : b.id, "DCGAN", 1 + i % 2,
                               Hours(2)));
  }
  Rng rng(9);
  int crashes = 0;
  for (int step = 1; step <= 240; ++step) {
    exp.Run(Minutes(step));
    if (step % 10 == 0) {
      // Crash a random live job.
      std::vector<JobId> live;
      for (JobId id : ids) {
        const auto& job = exp.jobs().Get(id);
        if (!job.finished() && job.state != workload::JobState::kMigrating &&
            job.state != workload::JobState::kQueued) {
          live.push_back(id);
        }
      }
      if (!live.empty()) {
        exp.exec().InjectCrash(live[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1))]);
        ++crashes;
      }
    }
  }
  exp.Run(Hours(24));
  int finished = 0;
  int total_crashes = 0;
  for (JobId id : ids) {
    finished += exp.jobs().Get(id).finished() ? 1 : 0;
    total_crashes += exp.jobs().Get(id).num_crashes;
  }
  EXPECT_EQ(finished, 6);
  EXPECT_GT(crashes, 3);
  EXPECT_EQ(total_crashes, crashes);
}

}  // namespace
}  // namespace gfair::exec
