#include "exec/executor.h"

#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.h"
#include "simkit/simulator.h"
#include "workload/job.h"
#include "workload/model_zoo.h"

namespace gfair::exec {
namespace {

using cluster::GpuGeneration;
using workload::Job;
using workload::JobState;

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest()
      : cluster_(cluster::Topology{{
            {GpuGeneration::kK80, 1, 4},
            {GpuGeneration::kV100, 1, 4},
        }}),
        exec_(sim_, cluster_, workload::ModelZoo::Default(), jobs_, ExecutorConfig{},
              /*seed=*/1) {
    exec_.set_on_job_finished([this](JobId id) { finished_.push_back(id); });
    exec_.set_on_migration_done([this](JobId id) { migrated_.push_back(id); });
  }

  Job& MakeJob(const char* model_name, int gang, double minibatches) {
    const auto& model = workload::ModelZoo::Default().GetByName(model_name);
    return jobs_.Create(UserId(0), model.id, gang, minibatches, sim_.Now());
  }

  ServerId K80() const { return cluster_.servers_of(GpuGeneration::kK80)[0]; }
  ServerId V100() const { return cluster_.servers_of(GpuGeneration::kV100)[0]; }

  simkit::Simulator sim_;
  cluster::Cluster cluster_;
  workload::JobTable jobs_;
  Executor exec_;
  std::vector<JobId> finished_;
  std::vector<JobId> migrated_;
};

TEST_F(ExecutorTest, JobRunsToCompletionAtModelRate) {
  // DCGAN on K80: 16 mb/s. 1600 mini-batches => 100s of work + resume warmup.
  Job& job = MakeJob("DCGAN", 1, 1600.0);
  exec_.MakeResident(job.id, K80());
  exec_.Resume(job.id);
  EXPECT_TRUE(exec_.IsRunning(job.id));
  sim_.Run();
  EXPECT_EQ(job.state, JobState::kFinished);
  ASSERT_EQ(finished_.size(), 1u);
  const SimDuration expected = Seconds(100) + exec_.ResumeLatency(job.model);
  EXPECT_NEAR(static_cast<double>(job.finish_time), static_cast<double>(expected),
              10.0);  // ceil() rounding
  EXPECT_DOUBLE_EQ(job.completed_minibatches, 1600.0);
}

TEST_F(ExecutorTest, FasterGenerationFinishesSooner) {
  Job& slow = MakeJob("ResNeXt-50", 1, 120.0);
  Job& fast = MakeJob("ResNeXt-50", 1, 120.0);
  exec_.MakeResident(slow.id, K80());
  exec_.MakeResident(fast.id, V100());
  exec_.Resume(slow.id);
  exec_.Resume(fast.id);
  sim_.Run();
  // ResNeXt-50 is ~5.9x faster on V100.
  const double slow_work_time =
      static_cast<double>(slow.finish_time) -
      static_cast<double>(exec_.ResumeLatency(slow.model));
  const double fast_work_time =
      static_cast<double>(fast.finish_time) -
      static_cast<double>(exec_.ResumeLatency(fast.model));
  EXPECT_NEAR(slow_work_time / fast_work_time, 7.1 / 1.2, 0.05);
}

TEST_F(ExecutorTest, SuspendStopsProgressAndFreesGpus) {
  Job& job = MakeJob("DCGAN", 2, 1e9);
  exec_.MakeResident(job.id, K80());
  exec_.Resume(job.id);
  EXPECT_EQ(cluster_.server(K80()).num_free(), 2);
  sim_.RunUntil(Minutes(2));
  exec_.Suspend(job.id);
  EXPECT_EQ(job.state, JobState::kSuspended);
  EXPECT_EQ(cluster_.server(K80()).num_free(), 4);
  const double progress_at_suspend = job.completed_minibatches;
  EXPECT_GT(progress_at_suspend, 0.0);
  sim_.RunUntil(Minutes(10));
  EXPECT_DOUBLE_EQ(job.completed_minibatches, progress_at_suspend);
}

TEST_F(ExecutorTest, ResumeWarmupProducesNoProgress) {
  Job& job = MakeJob("DCGAN", 1, 1e9);
  exec_.MakeResident(job.id, K80());
  exec_.Resume(job.id);
  const SimDuration warmup = exec_.ResumeLatency(job.model);
  sim_.RunUntil(warmup / 2);
  exec_.SyncProgress(job.id);
  EXPECT_DOUBLE_EQ(job.completed_minibatches, 0.0);
  // But GPU time IS charged during warm-up.
  EXPECT_GT(job.TotalGpuMs(), 0.0);
}

TEST_F(ExecutorTest, SuspendResumeCycleCostsOverheadOnly) {
  Job& job = MakeJob("DCGAN", 1, 16.0 * 600);  // 600s of K80 work
  exec_.MakeResident(job.id, K80());
  exec_.Resume(job.id);
  sim_.RunUntil(Minutes(3));
  exec_.Suspend(job.id);
  sim_.RunUntil(Minutes(5));
  exec_.Resume(job.id);
  sim_.Run();
  EXPECT_EQ(job.state, JobState::kFinished);
  EXPECT_EQ(job.num_suspends, 1);
  EXPECT_EQ(job.num_resumes, 2);
  // Finish = 600s work + 5min gap... minus the 3min of first-run progress
  // already done; overhead = 2 resumes' warmup. Just check total overhead.
  EXPECT_EQ(job.overhead_ms,
            2 * exec_.ResumeLatency(job.model) + exec_.SuspendLatency(job.model));
}

TEST_F(ExecutorTest, MigrationMovesJobAfterLatency) {
  Job& job = MakeJob("ResNet-50", 2, 1e9);
  exec_.MakeResident(job.id, K80());
  exec_.Resume(job.id);
  sim_.RunUntil(Minutes(1));
  exec_.Suspend(job.id);
  exec_.Migrate(job.id, V100());
  EXPECT_EQ(job.state, JobState::kMigrating);
  sim_.RunUntil(Minutes(1) + exec_.MigrateLatency(job.model) + kSecond);
  EXPECT_EQ(job.state, JobState::kSuspended);
  EXPECT_EQ(job.server, V100());
  ASSERT_EQ(migrated_.size(), 1u);
  EXPECT_EQ(migrated_[0], job.id);
  EXPECT_EQ(job.num_migrations, 1);
}

TEST_F(ExecutorTest, MigratedJobRunsAtNewGenerationRate) {
  Job& job = MakeJob("ResNet-50", 1, 1e9);
  exec_.MakeResident(job.id, K80());
  exec_.Migrate(job.id, V100());
  sim_.RunUntil(Hours(1));
  exec_.Resume(job.id);
  const SimTime start = sim_.Now();
  sim_.RunUntil(start + Minutes(10));
  exec_.SyncProgress(job.id);
  const double expected =
      exec_.TrueRate(job.id, GpuGeneration::kV100) *
      ToSeconds(Minutes(10) - exec_.ResumeLatency(job.model));
  EXPECT_NEAR(job.completed_minibatches, expected, 1.0);
}

TEST_F(ExecutorTest, GpuTimeAccountingCallback) {
  double total_gpu_ms = 0.0;
  exec_.set_on_gpu_time([&](UserId, GpuGeneration gen, SimTime start, SimTime end,
                            int gpus) {
    EXPECT_EQ(gen, GpuGeneration::kK80);
    total_gpu_ms += static_cast<double>(end - start) * gpus;
  });
  Job& job = MakeJob("DCGAN", 3, 1e9);
  exec_.MakeResident(job.id, K80());
  exec_.Resume(job.id);
  sim_.RunUntil(Minutes(2));
  exec_.Suspend(job.id);
  EXPECT_DOUBLE_EQ(total_gpu_ms, 3.0 * Minutes(2));
  EXPECT_DOUBLE_EQ(job.TotalGpuMs(), total_gpu_ms);
}

TEST_F(ExecutorTest, SyncAllFlushesOpenSegments) {
  Job& job = MakeJob("DCGAN", 2, 1e9);
  exec_.MakeResident(job.id, K80());
  exec_.Resume(job.id);
  sim_.RunUntil(Minutes(5));
  EXPECT_DOUBLE_EQ(job.TotalGpuMs(), 0.0);  // nothing closed yet
  exec_.SyncAll();
  EXPECT_DOUBLE_EQ(job.TotalGpuMs(), 2.0 * Minutes(5));
}

TEST_F(ExecutorTest, SyncTwiceDoesNotDoubleCount) {
  Job& job = MakeJob("DCGAN", 1, 1e9);
  exec_.MakeResident(job.id, K80());
  exec_.Resume(job.id);
  sim_.RunUntil(Minutes(5));
  exec_.SyncProgress(job.id);
  exec_.SyncProgress(job.id);
  EXPECT_DOUBLE_EQ(job.TotalGpuMs(), static_cast<double>(Minutes(5)));
  sim_.RunUntil(Minutes(6));
  exec_.SyncProgress(job.id);
  EXPECT_DOUBLE_EQ(job.TotalGpuMs(), static_cast<double>(Minutes(6)));
}

TEST_F(ExecutorTest, ObservedRateIsNoisyAroundTruth) {
  Job& job = MakeJob("ResNet-50", 1, 1e9);
  exec_.MakeResident(job.id, V100());
  exec_.Resume(job.id);
  const double truth = exec_.TrueRate(job.id, GpuGeneration::kV100);
  double sum = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const double sample = exec_.SampleObservedRate(job.id);
    EXPECT_GT(sample, 0.0);
    sum += sample;
  }
  EXPECT_NEAR(sum / n / truth, 1.0, 0.02);
}

TEST_F(ExecutorTest, LatenciesScaleWithCheckpointSize) {
  const auto& zoo = workload::ModelZoo::Default();
  const auto small = zoo.GetByName("VAE").id;         // 0.2 GB
  const auto large = zoo.GetByName("Transformer").id;  // 2.5 GB
  EXPECT_LT(exec_.SuspendLatency(small), exec_.SuspendLatency(large));
  EXPECT_LT(exec_.ResumeLatency(small), exec_.ResumeLatency(large));
  EXPECT_LT(exec_.MigrateLatency(small), exec_.MigrateLatency(large));
  EXPECT_GT(exec_.MigrateLatency(large),
            exec_.SuspendLatency(large) + exec_.ResumeLatency(large));
}

TEST_F(ExecutorTest, EvictOnlyWithoutProgress) {
  Job& job = MakeJob("DCGAN", 1, 1e9);
  exec_.MakeResident(job.id, K80());
  exec_.EvictResident(job.id);
  EXPECT_EQ(job.state, JobState::kQueued);
  EXPECT_FALSE(job.resident());
}

TEST_F(ExecutorTest, FinishReleasesGpus) {
  Job& job = MakeJob("DCGAN", 4, 16.0);  // 1s of work
  exec_.MakeResident(job.id, K80());
  exec_.Resume(job.id);
  EXPECT_EQ(cluster_.server(K80()).num_free(), 0);
  sim_.Run();
  EXPECT_EQ(cluster_.server(K80()).num_free(), 4);
  EXPECT_FALSE(job.resident());
}

TEST_F(ExecutorTest, DeathOnBadTransitions) {
  Job& job = MakeJob("DCGAN", 1, 100.0);
  EXPECT_DEATH(exec_.Resume(job.id), "suspended");
  exec_.MakeResident(job.id, K80());
  EXPECT_DEATH(exec_.Suspend(job.id), "running");
  exec_.Resume(job.id);
  EXPECT_DEATH(exec_.Migrate(job.id, V100()), "suspend");
}

TEST_F(ExecutorTest, DeathOnOversizedGang) {
  Job& job = MakeJob("DCGAN", 8, 100.0);  // servers have 4 GPUs
  EXPECT_DEATH(exec_.MakeResident(job.id, K80()), "fit");
}

}  // namespace
}  // namespace gfair::exec
