// Server-failure tests: orphaning semantics of FailServer/RecoverServer,
// migration transfers racing with node loss (source, destination, both), and
// crashes during the resume warm-up window.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exec/executor.h"
#include "exec/fault_injector.h"
#include "workload/model_zoo.h"

namespace gfair::exec {
namespace {

using workload::Job;
using workload::JobState;

class ServerFaultTest : public ::testing::Test {
 protected:
  ServerFaultTest()
      : cluster_(cluster::HomogeneousTopology(2, 4)),
        exec_(sim_, cluster_, workload::ModelZoo::Default(), jobs_, ExecutorConfig{},
              1) {}

  Job& MakeJob(double minibatches, int gang_size = 1) {
    const auto& model = workload::ModelZoo::Default().GetByName("DCGAN");
    return jobs_.Create(UserId(0), model.id, gang_size, minibatches, sim_.Now());
  }

  simkit::Simulator sim_;
  cluster::Cluster cluster_;
  workload::JobTable jobs_;
  Executor exec_;
};

TEST_F(ServerFaultTest, FailServerOrphansRunningJob) {
  Job& job = MakeJob(1e9);
  exec_.MakeResident(job.id, ServerId(0));
  exec_.Resume(job.id);
  sim_.RunUntil(Minutes(10));
  exec_.Suspend(job.id);  // checkpoint
  const double checkpoint = job.completed_minibatches;
  ASSERT_GT(checkpoint, 0.0);
  exec_.Resume(job.id);
  sim_.RunUntil(Minutes(20));

  exec_.FailServer(ServerId(0));

  EXPECT_EQ(job.state, JobState::kQueued);
  EXPECT_FALSE(job.server.valid());
  // Rolled back to the checkpoint; the run segment died with the node.
  EXPECT_DOUBLE_EQ(job.completed_minibatches, checkpoint);
  EXPECT_EQ(job.num_crashes, 1);
  EXPECT_EQ(job.num_orphanings, 1);
  // The burned GPU time up to the failure instant stays charged.
  EXPECT_NEAR(job.TotalGpuMs(), static_cast<double>(Minutes(20)), 1.0);
  // Cluster capacity accounting reflects the loss.
  EXPECT_FALSE(cluster_.server(ServerId(0)).up());
  EXPECT_EQ(cluster_.up_gpus(), 4);
  EXPECT_EQ(cluster_.num_up_servers(), 1);
  EXPECT_EQ(exec_.server_failures(), 1);
  EXPECT_EQ(exec_.jobs_orphaned(), 1);
}

TEST_F(ServerFaultTest, SuspendedVictimLosesNothing) {
  Job& job = MakeJob(1e9);
  exec_.MakeResident(job.id, ServerId(0));
  exec_.Resume(job.id);
  sim_.RunUntil(Minutes(10));
  exec_.Suspend(job.id);
  const double checkpoint = job.completed_minibatches;

  exec_.FailServer(ServerId(0));

  EXPECT_EQ(job.state, JobState::kQueued);
  EXPECT_DOUBLE_EQ(job.completed_minibatches, checkpoint);
  // A suspended job has no process to crash; only the orphaning is counted.
  EXPECT_EQ(job.num_crashes, 0);
  EXPECT_EQ(job.num_orphanings, 1);
}

TEST_F(ServerFaultTest, ServerDownFiresBeforeOrphanCallbacks) {
  Job& a = MakeJob(1e9);
  Job& b = MakeJob(1e9);
  exec_.MakeResident(a.id, ServerId(0));
  exec_.MakeResident(b.id, ServerId(0));
  exec_.Resume(a.id);
  sim_.RunUntil(Minutes(1));

  std::vector<std::string> events;
  exec_.set_on_server_down([&](ServerId id) {
    events.push_back("down:" + std::to_string(id.value()));
    // By the time the scheduler hears about the failure, every victim must
    // already be evacuated — re-placement sees a consistent world.
    EXPECT_EQ(a.state, JobState::kQueued);
    EXPECT_EQ(b.state, JobState::kQueued);
  });
  exec_.set_on_job_orphaned(
      [&](JobId id) { events.push_back("orphan:" + std::to_string(id.value())); });

  exec_.FailServer(ServerId(0));
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], "down:0");
  EXPECT_EQ(events[1], "orphan:" + std::to_string(a.id.value()));
  EXPECT_EQ(events[2], "orphan:" + std::to_string(b.id.value()));
}

TEST_F(ServerFaultTest, RecoveredServerHostsJobsAgain) {
  Job& job = MakeJob(16.0 * 60);
  exec_.FailServer(ServerId(0));

  ServerId recovered = ServerId::Invalid();
  exec_.set_on_server_up([&](ServerId id) { recovered = id; });
  exec_.RecoverServer(ServerId(0));
  EXPECT_EQ(recovered, ServerId(0));
  EXPECT_TRUE(cluster_.server(ServerId(0)).up());
  EXPECT_EQ(cluster_.up_gpus(), 8);
  EXPECT_EQ(exec_.server_recoveries(), 1);

  exec_.MakeResident(job.id, ServerId(0));
  exec_.Resume(job.id);
  sim_.Run();
  EXPECT_TRUE(job.finished());
}

TEST_F(ServerFaultTest, DeathOnVerbsAgainstDownServer) {
  Job& job = MakeJob(1e9);
  Job& resident = MakeJob(1e9);
  exec_.MakeResident(resident.id, ServerId(1));
  exec_.FailServer(ServerId(0));

  EXPECT_DEATH(exec_.MakeResident(job.id, ServerId(0)), "down server");
  EXPECT_DEATH(exec_.Migrate(resident.id, ServerId(0)), "down server");
  EXPECT_DEATH(exec_.FailServer(ServerId(0)), "already down");
  EXPECT_DEATH(exec_.RecoverServer(ServerId(1)), "up server");
}

TEST_F(ServerFaultTest, OutboundMigrationSurvivesSourceFailure) {
  // The checkpoint is already in durable storage when the source dies, so an
  // outbound transfer still lands at its destination.
  Job& job = MakeJob(1e9);
  exec_.MakeResident(job.id, ServerId(0));
  exec_.Resume(job.id);
  sim_.RunUntil(Minutes(5));
  exec_.Suspend(job.id);
  exec_.Migrate(job.id, ServerId(1));
  ASSERT_EQ(job.state, JobState::kMigrating);

  exec_.FailServer(ServerId(0));
  EXPECT_EQ(job.state, JobState::kMigrating);  // not orphaned by the sweep
  EXPECT_EQ(job.num_orphanings, 0);

  sim_.RunUntil(Minutes(10));
  EXPECT_EQ(job.state, JobState::kSuspended);
  EXPECT_EQ(job.server, ServerId(1));
  EXPECT_EQ(job.num_migration_failures, 0);
}

TEST_F(ServerFaultTest, InboundMigrationFailsWhenDestinationDies) {
  Job& job = MakeJob(1e9);
  exec_.MakeResident(job.id, ServerId(0));
  exec_.Resume(job.id);
  sim_.RunUntil(Minutes(5));
  exec_.Suspend(job.id);
  const double checkpoint = job.completed_minibatches;
  exec_.Migrate(job.id, ServerId(1));

  JobId failed = JobId::Invalid();
  ServerId failed_dest = ServerId::Invalid();
  exec_.set_on_migration_failed([&](JobId id, ServerId dest) {
    failed = id;
    failed_dest = dest;
  });

  exec_.FailServer(ServerId(1));
  sim_.RunUntil(Minutes(10));

  // The transfer bounced: back on the source, suspended, nothing lost.
  EXPECT_EQ(job.state, JobState::kSuspended);
  EXPECT_EQ(job.server, ServerId(0));
  EXPECT_DOUBLE_EQ(job.completed_minibatches, checkpoint);
  EXPECT_EQ(job.num_migration_failures, 1);
  EXPECT_EQ(exec_.migration_failures(), 1);
  EXPECT_EQ(failed, job.id);
  EXPECT_EQ(failed_dest, ServerId(1));
  EXPECT_EQ(job.num_orphanings, 0);
}

TEST_F(ServerFaultTest, MigrationWithBothEndsDownOrphans) {
  Job& job = MakeJob(1e9);
  exec_.MakeResident(job.id, ServerId(0));
  exec_.Resume(job.id);
  sim_.RunUntil(Minutes(5));
  exec_.Suspend(job.id);
  exec_.Migrate(job.id, ServerId(1));

  JobId orphaned = JobId::Invalid();
  exec_.set_on_job_orphaned([&](JobId id) { orphaned = id; });

  exec_.FailServer(ServerId(1));
  exec_.FailServer(ServerId(0));
  sim_.RunUntil(Minutes(10));

  EXPECT_EQ(job.state, JobState::kQueued);
  EXPECT_FALSE(job.server.valid());
  EXPECT_EQ(job.num_migration_failures, 1);
  EXPECT_EQ(job.num_orphanings, 1);
  EXPECT_EQ(job.num_crashes, 0);  // it was checkpointed, nothing burned
  EXPECT_EQ(orphaned, job.id);
}

TEST_F(ServerFaultTest, FlakyTransferBouncesToSource) {
  ExecutorConfig config;
  config.migrate_failure_prob = 1.0;
  Executor flaky(sim_, cluster_, workload::ModelZoo::Default(), jobs_, config, 1);
  Job& job = MakeJob(1e9);
  flaky.MakeResident(job.id, ServerId(0));
  flaky.Resume(job.id);
  sim_.RunUntil(Minutes(5));
  flaky.Suspend(job.id);
  flaky.Migrate(job.id, ServerId(1));
  sim_.RunUntil(Minutes(10));

  EXPECT_EQ(job.state, JobState::kSuspended);
  EXPECT_EQ(job.server, ServerId(0));  // both servers up; pure network flake
  EXPECT_EQ(job.num_migration_failures, 1);
  EXPECT_EQ(flaky.migrations_in_flight(), 0);
}

TEST_F(ServerFaultTest, CrashDuringWarmupLosesNoProgress) {
  // A crash inside the no-progress resume window must roll back cleanly —
  // the segment has burned GPU time but produced nothing.
  Job& job = MakeJob(1e9);
  exec_.MakeResident(job.id, ServerId(0));
  exec_.Resume(job.id);
  sim_.RunUntil(Seconds(1));  // DCGAN resume latency is > 1s
  exec_.InjectCrash(job.id);
  EXPECT_EQ(job.state, JobState::kSuspended);
  EXPECT_DOUBLE_EQ(job.completed_minibatches, 0.0);
  EXPECT_EQ(job.num_crashes, 1);
  EXPECT_NEAR(job.TotalGpuMs(), static_cast<double>(Seconds(1)), 1.0);
}

TEST_F(ServerFaultTest, ServerFailureDuringWarmupOrphansCleanly) {
  Job& job = MakeJob(1e9);
  exec_.MakeResident(job.id, ServerId(0));
  exec_.Resume(job.id);
  sim_.RunUntil(Minutes(10));
  exec_.Suspend(job.id);
  const double checkpoint = job.completed_minibatches;
  exec_.Resume(job.id);
  sim_.RunUntil(Minutes(10) + Seconds(1));  // still warming up

  exec_.FailServer(ServerId(0));
  EXPECT_EQ(job.state, JobState::kQueued);
  EXPECT_DOUBLE_EQ(job.completed_minibatches, checkpoint);
  EXPECT_EQ(job.num_crashes, 1);
  EXPECT_EQ(cluster_.server(ServerId(0)).num_busy(), 0);
}

TEST(FaultInjectorTest, ScriptedFailureAndRecovery) {
  simkit::Simulator sim;
  cluster::Cluster cluster(cluster::HomogeneousTopology(3, 4));
  workload::JobTable jobs;
  Executor exec(sim, cluster, workload::ModelZoo::Default(), jobs, ExecutorConfig{}, 1);
  FaultInjector injector(sim, cluster, exec, FaultInjectorConfig{});

  injector.FailAt(Minutes(10), ServerId(1));
  injector.RecoverAt(Minutes(30), ServerId(1));
  sim.RunUntil(Minutes(20));
  EXPECT_FALSE(cluster.server(ServerId(1)).up());
  EXPECT_EQ(injector.failures_injected(), 1);
  sim.RunUntil(Hours(1));
  EXPECT_TRUE(cluster.server(ServerId(1)).up());
  EXPECT_EQ(injector.recoveries_injected(), 1);

  // The capacity series integrates the outage exactly: 8/12 GPUs for 20 of
  // the first 60 minutes.
  const double avg = injector.up_gpu_series().AverageOver(kTimeZero, Hours(1));
  EXPECT_NEAR(avg, (12.0 * 40 + 8.0 * 20) / 60.0, 1e-9);
}

TEST(FaultInjectorTest, ChurnSparesLastServerOfPool) {
  simkit::Simulator sim;
  cluster::Cluster cluster(cluster::HomogeneousTopology(2, 4));
  workload::JobTable jobs;
  Executor exec(sim, cluster, workload::ModelZoo::Default(), jobs, ExecutorConfig{}, 1);
  FaultInjectorConfig config;
  config.server_mtbf = Minutes(30);  // aggressive churn
  config.server_mttr = Minutes(60);  // slow repair: failures overlap often
  FaultInjector injector(sim, cluster, exec, config);
  injector.Start();

  // With only two servers and MTTR >> MTBF the guard is exercised
  // constantly; at least one server must be up at every transition.
  sim.RunUntil(Hours(24));
  for (const auto& point : injector.up_gpu_series().points()) {
    EXPECT_GE(point.value, 4.0);
  }
  EXPECT_GT(injector.failures_injected(), 5);
  EXPECT_GT(injector.failures_suppressed(), 0);

  injector.Stop();
  sim.RunUntil(Hours(30));  // pending recoveries drain
  EXPECT_EQ(cluster.num_up_servers(), 2);
}

}  // namespace
}  // namespace gfair::exec
