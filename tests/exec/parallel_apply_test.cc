// ApplyDeltaParallel: per-server slices fanned across a ThreadPool must
// leave the executor in a state bit-identical to applying the same slices
// serially in order — job states, overhead accounting, finish timing and
// progress all match. This test (and the scheduler-level decision-stream
// equivalence in tests/sched/equivalence_test.cc) runs under TSan in CI.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/thread_pool.h"
#include "exec/executor.h"
#include "simkit/simulator.h"
#include "workload/job.h"
#include "workload/model_zoo.h"

namespace gfair::exec {
namespace {

using cluster::GpuGeneration;
using workload::Job;
using workload::JobState;

constexpr int kServers = 4;
constexpr int kJobsPerServer = 4;

struct World {
  World() : World(ExecutorConfig{}) {}
  explicit World(const ExecutorConfig& config)
      : cluster(cluster::Topology{{{GpuGeneration::kK80, kServers, 4}}}),
        exec(sim, cluster, workload::ModelZoo::Default(), jobs, config,
             /*seed=*/7) {}

  // Four jobs per server, the first two running; finite lengths staggered so
  // finish events interleave across servers.
  void Populate() {
    const auto& model = workload::ModelZoo::Default().GetByName("DCGAN");
    const auto servers = cluster.servers_of(GpuGeneration::kK80);
    for (int s = 0; s < kServers; ++s) {
      for (int j = 0; j < kJobsPerServer; ++j) {
        Job& job = jobs.Create(UserId(0), model.id, /*gang_size=*/1,
                               /*minibatches=*/5000.0 + 37.0 * (s * 4 + j),
                               sim.Now());
        exec.MakeResident(job.id, servers[static_cast<size_t>(s)]);
        if (j < 2) {
          exec.Resume(job.id);
        }
      }
    }
    sim.RunUntil(Minutes(1));
  }

  // The flip: per server, suspend the running pair then resume the idle pair.
  std::vector<std::vector<ScheduleOp>> FlipSlices() const {
    std::vector<std::vector<ScheduleOp>> slices;
    const auto servers = cluster.servers_of(GpuGeneration::kK80);
    for (int s = 0; s < kServers; ++s) {
      std::vector<ScheduleOp> ops;
      for (int j = 0; j < kJobsPerServer; ++j) {
        const JobId id(s * kJobsPerServer + j);
        ops.push_back({id, servers[static_cast<size_t>(s)], /*resume=*/j >= 2});
      }
      slices.push_back(std::move(ops));
    }
    return slices;
  }

  simkit::Simulator sim;
  cluster::Cluster cluster;
  workload::JobTable jobs;
  Executor exec;
};

void ExpectWorldsIdentical(const World& a, const World& b) {
  ASSERT_EQ(a.jobs.All().size(), b.jobs.All().size());
  for (size_t i = 0; i < a.jobs.All().size(); ++i) {
    const Job* ja = a.jobs.All()[i];
    const Job* jb = b.jobs.All()[i];
    const std::string ctx = "job " + std::to_string(i);
    EXPECT_EQ(ja->state, jb->state) << ctx;
    EXPECT_EQ(ja->server, jb->server) << ctx;
    EXPECT_EQ(ja->overhead_ms, jb->overhead_ms) << ctx;
    EXPECT_EQ(ja->num_suspends, jb->num_suspends) << ctx;
    EXPECT_EQ(ja->finish_time, jb->finish_time) << ctx;
    // Bit-identical, not approximately equal: the parallel path must not
    // reorder any floating-point accumulation.
    EXPECT_EQ(ja->completed_minibatches,  // gfair-lint: allow(float-eq)
              jb->completed_minibatches)
        << ctx;
  }
  EXPECT_EQ(a.exec.warmup_bubble_ms(), b.exec.warmup_bubble_ms());
  EXPECT_EQ(a.exec.overlap_saved_ms(), b.exec.overlap_saved_ms());
}

// Every global migration accumulator, not just the two the flip scenario
// exercises: the accumulators are ReduceToken-gated serial-commit state
// (exec/executor.h, MigrationAccounting), so the parallel prepare fan-out
// must leave all of them exactly as the serial path does.
void ExpectAccountingIdentical(const MigrationAccounting& a,
                               const MigrationAccounting& b) {
  EXPECT_EQ(a.bytes_gb(), b.bytes_gb());
  EXPECT_EQ(a.bubble_ms(), b.bubble_ms());
  EXPECT_EQ(a.warmup_bubble_ms(), b.warmup_bubble_ms());
  EXPECT_EQ(a.overlap_saved_ms(), b.overlap_saved_ms());
  EXPECT_EQ(a.server_failures(), b.server_failures());
  EXPECT_EQ(a.server_recoveries(), b.server_recoveries());
  EXPECT_EQ(a.failures_dest_down(), b.failures_dest_down());
  EXPECT_EQ(a.failures_flake(), b.failures_flake());
  EXPECT_EQ(a.jobs_orphaned(), b.jobs_orphaned());
  EXPECT_EQ(a.precopies_started(), b.precopies_started());
  EXPECT_EQ(a.precopies_aborted(), b.precopies_aborted());
}

TEST(ParallelApplyTest, MatchesSerialSliceApplicationBitForBit) {
  World serial;
  World parallel;
  serial.Populate();
  parallel.Populate();

  const auto slices = serial.FlipSlices();
  for (const auto& ops : slices) {
    serial.exec.ApplyDelta(ops);
  }

  common::ThreadPool pool(4);
  const auto par_slices = parallel.FlipSlices();
  std::vector<Executor::ApplySlice> slice_views;
  for (const auto& ops : par_slices) {
    slice_views.push_back({ops.data(), ops.size()});
  }
  parallel.exec.ApplyDeltaParallel(slice_views.data(), slice_views.size(), pool);

  ExpectWorldsIdentical(serial, parallel);

  // Let the resumed jobs run to completion: finish events must fire at
  // identical times and the final accounting must match exactly.
  serial.sim.Run();
  parallel.sim.Run();
  EXPECT_EQ(serial.sim.Now(), parallel.sim.Now());
  ExpectWorldsIdentical(serial, parallel);
}

// Regression for the accumulator audit: with warmup overlap on, CommitOp
// flushes warmup-bubble and overlap-saved time into the ReduceToken-gated
// MigrationAccounting. The parallel fan-out only *prepares* — every
// accumulator bump happens in the serial commit pass — so all eleven
// accounting streams must match the serial apply bit for bit, and the
// scenario must actually exercise them (nonzero overlap savings).
TEST(ParallelApplyTest, AccountingMatchesSerialWithOverlapWarmup) {
  ExecutorConfig config;
  config.overlap_warmup = true;
  World serial(config);
  World parallel(config);
  serial.Populate();
  parallel.Populate();

  const auto slices = serial.FlipSlices();
  for (const auto& ops : slices) {
    serial.exec.ApplyDelta(ops);
  }

  common::ThreadPool pool(4);
  const auto par_slices = parallel.FlipSlices();
  std::vector<Executor::ApplySlice> slice_views;
  for (const auto& ops : par_slices) {
    slice_views.push_back({ops.data(), ops.size()});
  }
  parallel.exec.ApplyDeltaParallel(slice_views.data(), slice_views.size(), pool);

  ExpectWorldsIdentical(serial, parallel);
  ExpectAccountingIdentical(serial.exec.accounting(), parallel.exec.accounting());
  // The flip suspends before it resumes within each slice, so the resume
  // warmup hides behind the suspend cost and the overlap stream is nonzero.
  EXPECT_GT(serial.exec.accounting().overlap_saved_ms(), 0);
}

TEST(ParallelApplyTest, SingleSliceAndEmptySlicesAreHandled) {
  World world;
  world.Populate();
  common::ThreadPool pool(2);
  world.exec.ApplyDeltaParallel(nullptr, 0, pool);  // no-op

  const auto slices = world.FlipSlices();
  const Executor::ApplySlice one{slices[0].data(), slices[0].size()};
  world.exec.ApplyDeltaParallel(&one, 1, pool);
  EXPECT_EQ(world.jobs.Get(JobId(0)).state, JobState::kSuspended);
  EXPECT_EQ(world.jobs.Get(JobId(2)).state, JobState::kRunning);
}

}  // namespace
}  // namespace gfair::exec
