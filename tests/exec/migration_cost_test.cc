// Migration cost model: checkpoint compression (ratio + CPU cost knobs),
// pre-copy migration (bulk overlaps continued execution; only the
// stop-and-copy tail bubbles), warm-up overlap at apply edges, the
// bytes/bubble accumulators behind E10/E14, and the split
// dest-down-vs-flake failure attribution. The neutral-default tests pin the
// bit-identity claim: with the knobs at their defaults every formula
// reduces to the pre-compression, stop-and-copy executor.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "cluster/cluster.h"
#include "exec/executor.h"
#include "simkit/simulator.h"
#include "workload/job.h"
#include "workload/model_zoo.h"

namespace gfair::exec {
namespace {

using cluster::GpuGeneration;
using workload::Job;
using workload::JobState;

// DCGAN in the default zoo: checkpoint 0.6 GB, K80 rate 16 mb/s. With the
// default latency model: suspend 620 ms, resume 1180 ms, transfer at 1 GB/s.
constexpr double kCkptGb = 0.6;

class MigrationCostTest : public ::testing::Test {
 protected:
  MigrationCostTest()
      : cluster_(cluster::Topology{{{GpuGeneration::kK80, 2, 4}}}) {}

  void Init(const ExecutorConfig& config) {
    exec_.emplace(sim_, cluster_, workload::ModelZoo::Default(), jobs_, config,
                  /*seed=*/1);
    exec_->set_on_migration_done([this](JobId id) { migrated_.push_back(id); });
    exec_->set_on_migration_failed(
        [this](JobId id, ServerId dest) { failed_.push_back({id, dest}); });
  }

  Job& MakeJob(double minibatches, int gang = 1) {
    const auto& model = workload::ModelZoo::Default().GetByName("DCGAN");
    return jobs_.Create(UserId(0), model.id, gang, minibatches, sim_.Now());
  }

  ServerId Src() const { return cluster_.servers_of(GpuGeneration::kK80)[0]; }
  ServerId Dst() const { return cluster_.servers_of(GpuGeneration::kK80)[1]; }

  simkit::Simulator sim_;
  cluster::Cluster cluster_;
  workload::JobTable jobs_;
  std::optional<Executor> exec_;
  std::vector<JobId> migrated_;
  std::vector<std::pair<JobId, ServerId>> failed_;
};

TEST_F(MigrationCostTest, CompressionDefaultsAreNeutral) {
  Init(ExecutorConfig{});
  const Job& job = MakeJob(1e9);
  // ratio 1 / zero CPU cost: latency is exactly the pre-compression
  // suspend + wire + resume formula.
  const SimDuration expected =
      Seconds(0.5 + 0.2 * kCkptGb) + Seconds(kCkptGb / 1.0) +
      Seconds(1.0 + 0.3 * kCkptGb);
  EXPECT_EQ(exec_->MigrateLatency(job.model), expected);
}

TEST_F(MigrationCostTest, CompressionTradesWireBytesForCpuSeconds) {
  ExecutorConfig config;
  config.compress_ratio = 4.0;
  config.compress_seconds_per_gb = 2.0;
  Init(config);
  Job& job = MakeJob(1e9);
  // Transfer phase = compressed wire time + compression CPU time; the CPU
  // cost scales with the UNcompressed checkpoint.
  const SimDuration expected = Seconds(0.5 + 0.2 * kCkptGb) +
                               Seconds(kCkptGb / 4.0 + 2.0 * kCkptGb) +
                               Seconds(1.0 + 0.3 * kCkptGb);
  EXPECT_EQ(exec_->MigrateLatency(job.model), expected);

  exec_->MakeResident(job.id, Src());
  exec_->Migrate(job.id, Dst());
  sim_.Run();
  EXPECT_EQ(job.server, Dst());
  // Only the compressed bytes hit the migration network.
  EXPECT_DOUBLE_EQ(exec_->migration_bytes_gb(), kCkptGb / 4.0);
}

TEST_F(MigrationCostTest, StopAndCopyAccumulatesBytesAndBubble) {
  Init(ExecutorConfig{});
  Job& job = MakeJob(1e9);
  exec_->MakeResident(job.id, Src());
  exec_->Migrate(job.id, Dst());
  sim_.Run();
  ASSERT_EQ(migrated_.size(), 1u);
  EXPECT_DOUBLE_EQ(exec_->migration_bytes_gb(), kCkptGb);
  // The whole stop-and-copy latency is a bubble (the job is unavailable),
  // and it is exactly what the job was charged as overhead.
  EXPECT_EQ(exec_->migration_bubble_ms(), exec_->MigrateLatency(job.model));
  EXPECT_EQ(job.overhead_ms, exec_->migration_bubble_ms());
}

TEST_F(MigrationCostTest, PrecopyOverlapsBulkWithExecution) {
  ExecutorConfig config;
  config.precopy = true;
  config.precopy_dirty_fraction = 0.25;
  Init(config);
  Job& job = MakeJob(1e9);
  exec_->set_on_precopy_cutover([this](JobId id, ServerId dest) {
    if (exec_->IsRunning(id)) {
      exec_->Suspend(id);
    }
    exec_->MigrateTail(id, dest);
    return true;
  });
  exec_->MakeResident(job.id, Src());
  exec_->Resume(job.id);
  sim_.RunUntil(Seconds(30));

  exec_->StartPreCopy(job.id, Dst());
  // The job keeps running through the bulk transfer (600 ms at 1 GB/s).
  EXPECT_TRUE(exec_->IsRunning(job.id));
  sim_.RunUntil(Seconds(30) + Seconds(0.5));
  EXPECT_TRUE(exec_->IsRunning(job.id));

  sim_.Run();
  ASSERT_EQ(migrated_.size(), 1u);
  EXPECT_EQ(job.server, Dst());
  EXPECT_EQ(job.state, JobState::kSuspended);
  // Progress accrues lazily at segment close; the segment ran ~30.6 s
  // (through the bulk) minus warm-up, at ~16 mb/s ± rate noise.
  EXPECT_GT(job.completed_minibatches, 25.0 * 16.0);
  // Wire bytes: the full bulk plus the dirty-fraction tail.
  EXPECT_DOUBLE_EQ(exec_->migration_bytes_gb(), kCkptGb + 0.25 * kCkptGb);
  // Bubble: ONLY the stop-and-copy tail — suspend, dirty re-send, resume.
  // The bulk transfer cost no availability.
  const SimDuration tail = Seconds(0.5 + 0.2 * kCkptGb) +
                           Seconds(0.25 * kCkptGb) +
                           Seconds(1.0 + 0.3 * kCkptGb);
  EXPECT_EQ(exec_->migration_bubble_ms(), tail);
  // Per-job overhead additionally carries the warm-up of the initial resume
  // and the explicit suspend at cutover.
  EXPECT_EQ(job.overhead_ms,
            Seconds(1.0 + 0.3 * kCkptGb) + Seconds(0.5 + 0.2 * kCkptGb) + tail);
  EXPECT_EQ(exec_->precopies_started(), 1);
  EXPECT_EQ(exec_->precopies_aborted(), 0);
}

TEST_F(MigrationCostTest, PrecopyAbandonedWhenJobLeavesSource) {
  ExecutorConfig config;
  config.precopy = true;
  Init(config);
  Job& job = MakeJob(1e9);
  exec_->set_on_precopy_cutover([](JobId, ServerId) {
    ADD_FAILURE() << "cutover must not fire for a job that left its source";
    return false;
  });
  exec_->MakeResident(job.id, Src());
  exec_->StartPreCopy(job.id, Dst());
  // The job leaves via a plain stop-and-copy before the bulk lands: the
  // shipped checkpoint is stale, the pre-copy is abandoned, no failure.
  exec_->Migrate(job.id, Dst());
  sim_.Run();
  EXPECT_EQ(exec_->precopies_started(), 1);
  EXPECT_EQ(exec_->precopies_aborted(), 1);
  EXPECT_EQ(exec_->migration_failures(), 0);
  EXPECT_EQ(job.server, Dst());
}

TEST_F(MigrationCostTest, PrecopyDestDownIsCheapAttributedFailure) {
  ExecutorConfig config;
  config.precopy = true;
  Init(config);
  Job& job = MakeJob(1e9);
  exec_->set_on_precopy_cutover([](JobId, ServerId) {
    ADD_FAILURE() << "cutover must not fire with the destination down";
    return false;
  });
  exec_->MakeResident(job.id, Src());
  exec_->Resume(job.id);
  exec_->StartPreCopy(job.id, Dst());
  exec_->FailServer(Dst());
  sim_.RunUntil(Seconds(2));
  // Cheap failure: attributed (dest-down) and reported, but the job never
  // stopped running at its source.
  EXPECT_EQ(exec_->migration_failures_dest_down(), 1);
  EXPECT_EQ(exec_->migration_failures_flake(), 0);
  ASSERT_EQ(failed_.size(), 1u);
  EXPECT_EQ(failed_[0].second, Dst());
  EXPECT_TRUE(exec_->IsRunning(job.id));
  EXPECT_EQ(job.server, Src());
  EXPECT_EQ(exec_->precopies_aborted(), 1);
}

TEST_F(MigrationCostTest, FailureCountersSplitByCause) {
  ExecutorConfig config;
  config.migrate_failure_prob = 1.0;  // every landing flakes
  Init(config);
  Job& job = MakeJob(1e9);
  exec_->MakeResident(job.id, Src());
  exec_->Migrate(job.id, Dst());
  sim_.Run();
  EXPECT_EQ(exec_->migration_failures_flake(), 1);
  EXPECT_EQ(exec_->migration_failures_dest_down(), 0);
  EXPECT_EQ(job.server, Src());  // bounced back, suspended

  // Destination death takes attribution priority over a simultaneous flake.
  exec_->Migrate(job.id, Dst());
  exec_->FailServer(Dst());
  sim_.Run();
  EXPECT_EQ(exec_->migration_failures_dest_down(), 1);
  EXPECT_EQ(exec_->migration_failures_flake(), 1);
  EXPECT_EQ(exec_->migration_failures(), 2);
  EXPECT_EQ(job.num_migration_failures, 2);
}

TEST_F(MigrationCostTest, OverlapWarmupHidesResumeBehindSuspendDrain) {
  ExecutorConfig config;
  config.overlap_warmup = true;
  Init(config);
  Job& out = MakeJob(1e9);
  Job& in = MakeJob(1e9);
  exec_->MakeResident(out.id, Src());
  exec_->MakeResident(in.id, Src());
  exec_->Resume(out.id);
  sim_.RunUntil(Minutes(1));

  const std::vector<ScheduleOp> ops = {{out.id, Src(), /*resume=*/false},
                                       {in.id, Src(), /*resume=*/true}};
  exec_->ApplyDelta(ops);
  // The incoming job's warm-up hides behind the outgoing job's drain, capped
  // by the smaller of the two latencies (DCGAN: suspend 620 ms < resume
  // 1180 ms, so 620 ms of the warm-up is hidden).
  EXPECT_EQ(exec_->overlap_saved_ms(), Seconds(0.5 + 0.2 * kCkptGb));
  EXPECT_TRUE(exec_->IsRunning(in.id));
}

TEST_F(MigrationCostTest, OverlapOffKeepsResumeTimingUnchanged) {
  Init(ExecutorConfig{});  // overlap_warmup = false
  Job& out = MakeJob(1e9);
  Job& in = MakeJob(1e9);
  exec_->MakeResident(out.id, Src());
  exec_->MakeResident(in.id, Src());
  exec_->Resume(out.id);
  sim_.RunUntil(Minutes(1));
  const std::vector<ScheduleOp> ops = {{out.id, Src(), /*resume=*/false},
                                       {in.id, Src(), /*resume=*/true}};
  exec_->ApplyDelta(ops);
  EXPECT_EQ(exec_->overlap_saved_ms(), 0);
}

}  // namespace
}  // namespace gfair::exec
