#include "workload/trace_gen.h"

#include <gtest/gtest.h>

#include <map>

namespace gfair::workload {
namespace {

std::vector<UserWorkloadSpec> TwoUserSpecs() {
  std::vector<UserWorkloadSpec> specs(2);
  specs[0].name = "a";
  specs[0].mean_interarrival = Minutes(10);
  specs[0].stop = Hours(10);
  specs[1] = specs[0];
  specs[1].name = "b";
  return specs;
}

TEST(TraceGenTest, DeterministicForSameSeed) {
  const auto specs = TwoUserSpecs();
  TraceGenerator gen_a(ModelZoo::Default(), 99);
  TraceGenerator gen_b(ModelZoo::Default(), 99);
  const auto trace_a = gen_a.Generate(specs, {UserId(0), UserId(1)});
  const auto trace_b = gen_b.Generate(specs, {UserId(0), UserId(1)});
  ASSERT_EQ(trace_a.size(), trace_b.size());
  for (size_t i = 0; i < trace_a.size(); ++i) {
    EXPECT_EQ(trace_a[i].arrival, trace_b[i].arrival);
    EXPECT_EQ(trace_a[i].model, trace_b[i].model);
    EXPECT_EQ(trace_a[i].gang_size, trace_b[i].gang_size);
  }
}

TEST(TraceGenTest, ArrivalsSortedAndWithinWindow) {
  TraceGenerator gen(ModelZoo::Default(), 1);
  auto specs = TwoUserSpecs();
  specs[0].start = Hours(1);
  const auto trace = gen.Generate(specs, {UserId(0), UserId(1)});
  ASSERT_FALSE(trace.empty());
  for (size_t i = 0; i < trace.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(trace[i].arrival, trace[i - 1].arrival);
    }
    EXPECT_LT(trace[i].arrival, Hours(10));
    if (trace[i].user == UserId(0)) {
      EXPECT_GE(trace[i].arrival, Hours(1));
    }
  }
}

TEST(TraceGenTest, ArrivalRateApproximatelyPoisson) {
  TraceGenerator gen(ModelZoo::Default(), 5);
  std::vector<UserWorkloadSpec> specs(1);
  specs[0].name = "a";
  specs[0].mean_interarrival = Minutes(6);
  specs[0].stop = Hours(200);
  const auto trace = gen.Generate(specs, {UserId(0)});
  // Expected jobs = 200h / 6min = 2000; allow 10%.
  EXPECT_NEAR(static_cast<double>(trace.size()), 2000.0, 200.0);
}

TEST(TraceGenTest, RespectsModelMix) {
  TraceGenerator gen(ModelZoo::Default(), 3);
  std::vector<UserWorkloadSpec> specs(1);
  specs[0].name = "a";
  specs[0].model_mix = {{"VAE", 1.0}};
  specs[0].mean_interarrival = Minutes(5);
  specs[0].stop = Hours(20);
  const auto trace = gen.Generate(specs, {UserId(0)});
  const ModelId vae = ModelZoo::Default().GetByName("VAE").id;
  for (const auto& entry : trace) {
    EXPECT_EQ(entry.model, vae);
  }
}

TEST(TraceGenTest, GangSizesFollowDistribution) {
  TraceGenerator gen(ModelZoo::Default(), 17);
  std::vector<UserWorkloadSpec> specs(1);
  specs[0].name = "a";
  specs[0].mean_interarrival = Minutes(1);
  specs[0].stop = Hours(200);
  const auto trace = gen.Generate(specs, {UserId(0)});
  std::map<int, int> counts;
  for (const auto& entry : trace) {
    counts[entry.gang_size] += 1;
  }
  // Typical mix: 60/20/12/8.
  const double n = static_cast<double>(trace.size());
  EXPECT_NEAR(counts[1] / n, 0.60, 0.05);
  EXPECT_NEAR(counts[2] / n, 0.20, 0.05);
  EXPECT_NEAR(counts[4] / n, 0.12, 0.04);
  EXPECT_NEAR(counts[8] / n, 0.08, 0.04);
}

TEST(TraceGenTest, MaxJobsCapsStream) {
  TraceGenerator gen(ModelZoo::Default(), 23);
  std::vector<UserWorkloadSpec> specs(1);
  specs[0].name = "a";
  specs[0].max_jobs = 5;
  specs[0].stop = Hours(1000);
  EXPECT_EQ(gen.Generate(specs, {UserId(0)}).size(), 5u);
}

TEST(TraceGenTest, MinibatchesMatchDurationTimesRate) {
  const auto& model = ModelZoo::Default().GetByName("DCGAN");
  const double work = TraceGenerator::MinibatchesFor(model, 2, Hours(1));
  EXPECT_DOUBLE_EQ(work,
                   model.GangThroughput(cluster::GpuGeneration::kK80, 2) * 3600.0);
}

TEST(TraceGenTest, DiurnalModulationShiftsLoadWithinTheDay) {
  TraceGenerator gen(ModelZoo::Default(), 31);
  std::vector<UserWorkloadSpec> specs(1);
  specs[0].name = "a";
  specs[0].mean_interarrival = Minutes(2);
  specs[0].stop = Hours(240);  // 10 days
  specs[0].diurnal_amplitude = 0.8;
  const auto trace = gen.Generate(specs, {UserId(0)});
  ASSERT_GT(trace.size(), 1000u);
  // Peak quarter of the sine (hours 3-9 of each day) must see far more
  // arrivals than the trough quarter (hours 15-21).
  int peak = 0;
  int trough = 0;
  for (const auto& entry : trace) {
    const double hour_of_day = ToHours(entry.arrival % Hours(24));
    if (hour_of_day >= 3 && hour_of_day < 9) {
      ++peak;
    } else if (hour_of_day >= 15 && hour_of_day < 21) {
      ++trough;
    }
  }
  EXPECT_GT(peak, 3 * trough);
}

TEST(TraceGenTest, ZeroAmplitudeMatchesPlainPoisson) {
  std::vector<UserWorkloadSpec> specs(1);
  specs[0].name = "a";
  specs[0].stop = Hours(50);
  TraceGenerator plain(ModelZoo::Default(), 9);
  const auto base = plain.Generate(specs, {UserId(0)});
  specs[0].diurnal_amplitude = 0.0;
  TraceGenerator modulated(ModelZoo::Default(), 9);
  const auto same = modulated.Generate(specs, {UserId(0)});
  ASSERT_EQ(base.size(), same.size());
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base[i].arrival, same[i].arrival);
  }
}

TEST(TraceGenTest, AddingUserDoesNotPerturbOthers) {
  auto specs1 = TwoUserSpecs();
  std::vector<UserWorkloadSpec> specs2 = specs1;
  UserWorkloadSpec extra = specs1[0];
  extra.name = "c";
  specs2.push_back(extra);

  TraceGenerator gen1(ModelZoo::Default(), 42);
  TraceGenerator gen2(ModelZoo::Default(), 42);
  const auto trace1 = gen1.Generate(specs1, {UserId(0), UserId(1)});
  const auto trace2 = gen2.Generate(specs2, {UserId(0), UserId(1), UserId(2)});

  // User 0's stream must be identical in both traces (per-user RNG forks).
  std::vector<SimTime> arrivals1;
  std::vector<SimTime> arrivals2;
  for (const auto& entry : trace1) {
    if (entry.user == UserId(0)) {
      arrivals1.push_back(entry.arrival);
    }
  }
  for (const auto& entry : trace2) {
    if (entry.user == UserId(0)) {
      arrivals2.push_back(entry.arrival);
    }
  }
  EXPECT_EQ(arrivals1, arrivals2);
}

}  // namespace
}  // namespace gfair::workload
