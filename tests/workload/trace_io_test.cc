#include "workload/trace_io.h"

#include <gtest/gtest.h>

namespace gfair::workload {
namespace {

TEST(TraceIoTest, RoundTrip) {
  const ModelZoo& zoo = ModelZoo::Default();
  UserTable users;
  const UserId alice = users.Create("alice", 2.0).id;
  const UserId bob = users.Create("bob").id;

  std::vector<TraceFileEntry> original;
  original.push_back({TraceEntry{alice, zoo.GetByName("VAE").id, 2, 1234.5, Minutes(5)},
                      1.0});
  original.push_back(
      {TraceEntry{bob, zoo.GetByName("ResNet-50").id, 8, 99.25, Hours(2)}, 3.0});

  const std::string csv = SerializeTrace(original, users, zoo);

  UserTable parsed_users;
  std::vector<TraceFileEntry> parsed;
  std::string error;
  ASSERT_TRUE(ParseTrace(csv, zoo, &parsed_users, &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed_users.Get(parsed[0].entry.user).name, "alice");
  EXPECT_EQ(parsed_users.Get(parsed[1].entry.user).name, "bob");
  EXPECT_EQ(parsed[0].entry.model, zoo.GetByName("VAE").id);
  EXPECT_EQ(parsed[0].entry.gang_size, 2);
  EXPECT_NEAR(parsed[0].entry.total_minibatches, 1234.5, 1e-6);
  EXPECT_EQ(parsed[0].entry.arrival, Minutes(5));
  EXPECT_NEAR(parsed[1].weight, 3.0, 1e-6);
}

TEST(TraceIoTest, ReusesExistingUsers) {
  const ModelZoo& zoo = ModelZoo::Default();
  UserTable users;
  const UserId existing = users.Create("alice", 5.0).id;
  std::vector<TraceFileEntry> parsed;
  std::string error;
  ASSERT_TRUE(ParseTrace(
      "arrival_ms,user,model,gang_size,minibatches\n0,alice,VAE,1,10\n", zoo, &users,
      &parsed, &error))
      << error;
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].entry.user, existing);
  EXPECT_EQ(users.size(), 1u);
  EXPECT_DOUBLE_EQ(users.Get(existing).tickets.raw(), 5.0);  // tickets untouched
}

TEST(TraceIoTest, SkipsCommentsAndBlankLines) {
  const ModelZoo& zoo = ModelZoo::Default();
  UserTable users;
  std::vector<TraceFileEntry> parsed;
  std::string error;
  const std::string csv =
      "# a comment\n"
      "arrival_ms,user,model,gang_size,minibatches,weight\n"
      "\n"
      "0,a,VAE,1,10,1\n"
      "# trailing comment\n";
  ASSERT_TRUE(ParseTrace(csv, zoo, &users, &parsed, &error)) << error;
  EXPECT_EQ(parsed.size(), 1u);
}

TEST(TraceIoTest, HandlesWindowsLineEndings) {
  const ModelZoo& zoo = ModelZoo::Default();
  UserTable users;
  std::vector<TraceFileEntry> parsed;
  std::string error;
  ASSERT_TRUE(ParseTrace(
      "arrival_ms,user,model,gang_size,minibatches\r\n5,a,VAE,1,10\r\n", zoo, &users,
      &parsed, &error))
      << error;
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].entry.arrival, 5);
}

TEST(TraceIoTest, ErrorsCarryLineNumbers) {
  const ModelZoo& zoo = ModelZoo::Default();
  UserTable users;
  std::vector<TraceFileEntry> parsed;
  std::string error;

  EXPECT_FALSE(ParseTrace("arrival_ms,user,model,gang_size,minibatches\n0,a,NoSuchModel,1,10\n",
                          zoo, &users, &parsed, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos);
  EXPECT_NE(error.find("NoSuchModel"), std::string::npos);

  EXPECT_FALSE(ParseTrace("arrival_ms,user,model,gang_size,minibatches\n-5,a,VAE,1,10\n",
                          zoo, &users, &parsed, &error));
  EXPECT_NE(error.find("arrival"), std::string::npos);

  EXPECT_FALSE(ParseTrace("arrival_ms,user,model,gang_size,minibatches\n0,a,VAE,0,10\n",
                          zoo, &users, &parsed, &error));
  EXPECT_NE(error.find("gang_size"), std::string::npos);

  EXPECT_FALSE(ParseTrace("arrival_ms,user,model,gang_size,minibatches\n0,a,VAE,1,-1\n",
                          zoo, &users, &parsed, &error));
  EXPECT_NE(error.find("minibatches"), std::string::npos);

  EXPECT_FALSE(ParseTrace("bad,header\n", zoo, &users, &parsed, &error));
  EXPECT_NE(error.find("header"), std::string::npos);

  EXPECT_FALSE(ParseTrace("", zoo, &users, &parsed, &error));
  EXPECT_NE(error.find("empty"), std::string::npos);
}

TEST(TraceIoTest, WrongFieldCountRejected) {
  const ModelZoo& zoo = ModelZoo::Default();
  UserTable users;
  std::vector<TraceFileEntry> parsed;
  std::string error;
  EXPECT_FALSE(ParseTrace("arrival_ms,user,model,gang_size,minibatches\n0,a,VAE,1\n",
                          zoo, &users, &parsed, &error));
  EXPECT_NE(error.find("fields"), std::string::npos);
}

TEST(TraceIoTest, GeneratorTraceSerializes) {
  const ModelZoo& zoo = ModelZoo::Default();
  UserTable users;
  const UserId a = users.Create("a").id;
  std::vector<UserWorkloadSpec> specs(1);
  specs[0].name = "a";
  specs[0].max_jobs = 20;
  specs[0].stop = Hours(100);
  TraceGenerator gen(zoo, 3);
  const auto trace = gen.Generate(specs, {a});
  const std::string csv = SerializeTrace(trace, users, zoo);

  UserTable users2;
  std::vector<TraceFileEntry> parsed;
  std::string error;
  ASSERT_TRUE(ParseTrace(csv, zoo, &users2, &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), trace.size());
  for (size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].entry.arrival, trace[i].arrival);
    EXPECT_EQ(parsed[i].entry.model, trace[i].model);
    EXPECT_EQ(parsed[i].entry.gang_size, trace[i].gang_size);
    EXPECT_NEAR(parsed[i].entry.total_minibatches, trace[i].total_minibatches, 1e-3);
  }
}

TEST(TraceIoTest, FileRoundTrip) {
  const ModelZoo& zoo = ModelZoo::Default();
  UserTable users;
  const UserId a = users.Create("a").id;
  std::vector<TraceFileEntry> entries = {
      {TraceEntry{a, zoo.GetByName("DCGAN").id, 4, 500.0, 0}, 2.0}};
  const std::string path = ::testing::TempDir() + "/gfair_trace_test.csv";
  ASSERT_TRUE(WriteTraceFile(path, entries, users, zoo));

  UserTable users2;
  std::vector<TraceFileEntry> parsed;
  std::string error;
  ASSERT_TRUE(ReadTraceFile(path, zoo, &users2, &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].entry.gang_size, 4);
  EXPECT_NEAR(parsed[0].weight, 2.0, 1e-6);
}

TEST(TraceIoTest, NonFiniteNumbersRejected) {
  // strtod happily parses "nan" and "inf" — and nan even slips past a
  // `value <= 0` check because every comparison against nan is false. A nan
  // minibatch count would poison every progress comparison downstream.
  const ModelZoo& zoo = ModelZoo::Default();
  const char* bad_minibatches[] = {"nan",  "NaN",  "inf",       "INF",
                                   "-inf", "nan(0x1)", "infinity"};
  for (const char* value : bad_minibatches) {
    UserTable users;
    std::vector<TraceFileEntry> parsed;
    std::string error;
    const std::string csv = std::string("arrival_ms,user,model,gang_size,minibatches\n") +
                            "0,a,VAE,1," + value + "\n";
    EXPECT_FALSE(ParseTrace(csv, zoo, &users, &parsed, &error)) << value;
    EXPECT_NE(error.find("minibatches"), std::string::npos) << error;
  }

  UserTable users;
  std::vector<TraceFileEntry> parsed;
  std::string error;
  EXPECT_FALSE(
      ParseTrace("arrival_ms,user,model,gang_size,minibatches,weight\n0,a,VAE,1,10,nan\n",
                 zoo, &users, &parsed, &error));
  EXPECT_NE(error.find("weight"), std::string::npos) << error;
}

TEST(TraceIoTest, LongNamesRoundTrip) {
  // A row longer than SerializeTrace's 256-byte stack buffer used to be
  // silently truncated mid-field.
  const ModelZoo& zoo = ModelZoo::Default();
  UserTable users;
  const std::string long_name(300, 'u');
  const UserId user = users.Create(long_name).id;
  const std::vector<TraceFileEntry> entries = {
      {TraceEntry{user, zoo.GetByName("ResNet-50").id, 8, 1234.5, Minutes(3)}, 2.5}};

  const std::string csv = SerializeTrace(entries, users, zoo);

  UserTable parsed_users;
  std::vector<TraceFileEntry> parsed;
  std::string error;
  ASSERT_TRUE(ParseTrace(csv, zoo, &parsed_users, &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed_users.Get(parsed[0].entry.user).name, long_name);
  EXPECT_EQ(parsed[0].entry.model, zoo.GetByName("ResNet-50").id);
  EXPECT_EQ(parsed[0].entry.gang_size, 8);
  EXPECT_NEAR(parsed[0].entry.total_minibatches, 1234.5, 1e-6);
  EXPECT_NEAR(parsed[0].weight, 2.5, 1e-6);
}

TEST(TraceIoTest, DelimiterInNameDies) {
  // The format has no quoting, so a user name carrying the delimiter (or a
  // line break) would shift every later column on parse. Serialization must
  // refuse rather than emit a trace that parses into garbage.
  const ModelZoo& zoo = ModelZoo::Default();
  UserTable users;
  const UserId sneaky = users.Create("alice,bob").id;
  const std::vector<TraceFileEntry> entries = {
      {TraceEntry{sneaky, zoo.GetByName("VAE").id, 1, 10.0, 0}, 1.0}};
  EXPECT_DEATH(SerializeTrace(entries, users, zoo), "delimiter");

  UserTable users2;
  const UserId multiline = users2.Create("eve\nmallory").id;
  const std::vector<TraceFileEntry> entries2 = {
      {TraceEntry{multiline, zoo.GetByName("VAE").id, 1, 10.0, 0}, 1.0}};
  EXPECT_DEATH(SerializeTrace(entries2, users2, zoo), "delimiter");
}

TEST(TraceIoTest, MissingFileReportsError) {
  UserTable users;
  std::vector<TraceFileEntry> parsed;
  std::string error;
  EXPECT_FALSE(ReadTraceFile("/no/such/file.csv", workload::ModelZoo::Default(), &users,
                             &parsed, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace gfair::workload
