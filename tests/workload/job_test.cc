#include "workload/job.h"

#include <gtest/gtest.h>

#include "workload/user.h"

namespace gfair::workload {
namespace {

TEST(JobTableTest, CreateAssignsDenseIds) {
  JobTable table;
  const Job& a = table.Create(UserId(0), ModelId(0), 1, 100.0, 0);
  const Job& b = table.Create(UserId(0), ModelId(1), 2, 200.0, 5);
  EXPECT_EQ(a.id, JobId(0));
  EXPECT_EQ(b.id, JobId(1));
  EXPECT_EQ(table.size(), 2u);
}

TEST(JobTableTest, GetReturnsSameObject) {
  JobTable table;
  Job& job = table.Create(UserId(1), ModelId(2), 4, 50.0, 10);
  job.completed_minibatches = 25.0;
  EXPECT_DOUBLE_EQ(table.Get(job.id).completed_minibatches, 25.0);
  EXPECT_DOUBLE_EQ(table.Get(job.id).remaining_minibatches(), 25.0);
}

TEST(JobTableTest, PointersStableAcrossGrowth) {
  JobTable table;
  Job& first = table.Create(UserId(0), ModelId(0), 1, 1.0, 0);
  for (int i = 0; i < 1000; ++i) {
    table.Create(UserId(0), ModelId(0), 1, 1.0, 0);
  }
  EXPECT_EQ(first.id, JobId(0));  // reference still valid
}

TEST(JobTest, InitialState) {
  JobTable table;
  const Job& job = table.Create(UserId(0), ModelId(0), 1, 100.0, 7);
  EXPECT_EQ(job.state, JobState::kQueued);
  EXPECT_FALSE(job.finished());
  EXPECT_FALSE(job.resident());
  EXPECT_EQ(job.submit_time, 7);
  EXPECT_DOUBLE_EQ(job.TotalGpuMs(), 0.0);
}

TEST(JobTest, StateNames) {
  EXPECT_STREQ(JobStateName(JobState::kQueued), "queued");
  EXPECT_STREQ(JobStateName(JobState::kRunning), "running");
  EXPECT_STREQ(JobStateName(JobState::kSuspended), "suspended");
  EXPECT_STREQ(JobStateName(JobState::kMigrating), "migrating");
  EXPECT_STREQ(JobStateName(JobState::kFinished), "finished");
}

TEST(JobTableDeathTest, InvalidLookupsAbort) {
  JobTable table;
  EXPECT_DEATH(table.Get(JobId(0)), "");
  EXPECT_DEATH(table.Create(UserId(0), ModelId(0), 0, 100.0, 0), "");
  EXPECT_DEATH(table.Create(UserId(0), ModelId(0), 1, 0.0, 0), "");
}

TEST(UserTableTest, CreateAndTotals) {
  UserTable table;
  const User& alice = table.Create("alice", 2.0);
  const User& bob = table.Create("bob");
  EXPECT_EQ(alice.id, UserId(0));
  EXPECT_EQ(bob.id, UserId(1));
  EXPECT_DOUBLE_EQ(table.TotalTickets().raw(), 3.0);
  EXPECT_EQ(table.Get(alice.id).name, "alice");
}

TEST(UserTableTest, ReferencesStableAcrossGrowth) {
  UserTable table;
  const User& first = table.Create("first");
  for (int i = 0; i < 100; ++i) {
    table.Create("user" + std::to_string(i));
  }
  EXPECT_EQ(first.name, "first");
}

TEST(UserTableDeathTest, RejectsBadTickets) {
  UserTable table;
  EXPECT_DEATH(table.Create("x", 0.0), "");
  EXPECT_DEATH(table.Create("", 1.0), "");
}

}  // namespace
}  // namespace gfair::workload
