#include "workload/model_zoo.h"

#include <gtest/gtest.h>

namespace gfair::workload {
namespace {

using cluster::GenerationIndex;
using cluster::GpuGeneration;

TEST(ModelZooTest, DefaultZooHasModels) {
  const ModelZoo& zoo = ModelZoo::Default();
  EXPECT_GE(zoo.size(), 10u);
  EXPECT_TRUE(zoo.Contains("VAE"));
  EXPECT_TRUE(zoo.Contains("ResNeXt-50"));
}

TEST(ModelZooTest, SpeedupSpreadMatchesPaperMotivation) {
  // The paper's motivation: V100/K80 speedups range from ~1.2x to ~6x.
  const ModelZoo& zoo = ModelZoo::Default();
  double min_speedup = 1e9;
  double max_speedup = 0.0;
  for (const auto& model : zoo.models()) {
    const double s = model.SpeedupOver(GpuGeneration::kV100, GpuGeneration::kK80);
    min_speedup = std::min(min_speedup, s);
    max_speedup = std::max(max_speedup, s);
  }
  EXPECT_LT(min_speedup, 1.3);
  EXPECT_GT(max_speedup, 5.0);
}

TEST(ModelZooTest, ThroughputMonotoneInGeneration) {
  for (const auto& model : ModelZoo::Default().models()) {
    for (size_t g = 1; g < cluster::kNumGenerations; ++g) {
      EXPECT_GE(model.throughput[g], model.throughput[g - 1]) << model.name;
    }
  }
}

TEST(ModelZooTest, GangThroughputSubLinearScaling) {
  const auto& model = ModelZoo::Default().GetByName("ResNet-50");
  const double one = model.GangThroughput(GpuGeneration::kV100, 1);
  const double eight = model.GangThroughput(GpuGeneration::kV100, 8);
  EXPECT_GT(eight, one);           // more GPUs help...
  EXPECT_LT(eight, 8.0 * one);     // ...but not perfectly
  EXPECT_GT(eight, 5.0 * one);     // and not absurdly badly
}

TEST(ModelZooTest, GangOfOneIsBaseRate) {
  const auto& model = ModelZoo::Default().GetByName("VAE");
  EXPECT_DOUBLE_EQ(model.GangThroughput(GpuGeneration::kK80, 1),
                   model.throughput[GenerationIndex(GpuGeneration::kK80)]);
}

TEST(ModelZooTest, GetByIdMatchesRegistrationOrder) {
  const ModelZoo& zoo = ModelZoo::Default();
  for (const auto& model : zoo.models()) {
    EXPECT_EQ(zoo.Get(model.id).name, model.name);
  }
}

TEST(ModelZooTest, RegisterCustomModel) {
  ModelZoo zoo;
  const ModelId id = zoo.Register("toy", {{1.0, 2.0, 3.0, 4.0}}, 0.5, 2.0);
  EXPECT_EQ(zoo.Get(id).name, "toy");
  EXPECT_DOUBLE_EQ(zoo.Get(id).SpeedupOver(GpuGeneration::kV100, GpuGeneration::kK80), 4.0);
}

TEST(ModelZooDeathTest, RejectsNonMonotoneThroughput) {
  ModelZoo zoo;
  EXPECT_DEATH(zoo.Register("bad", {{2.0, 1.0, 3.0, 4.0}}, 0.5, 2.0), "slower");
}

TEST(ModelZooDeathTest, RejectsDuplicateNames) {
  ModelZoo zoo;
  zoo.Register("dup", {{1.0, 1.0, 1.0, 1.0}}, 0.5, 2.0);
  EXPECT_DEATH(zoo.Register("dup", {{1.0, 1.0, 1.0, 1.0}}, 0.5, 2.0), "duplicate");
}

TEST(ModelZooDeathTest, UnknownNameAborts) {
  EXPECT_DEATH(ModelZoo::Default().GetByName("no-such-model"), "unknown");
}

}  // namespace
}  // namespace gfair::workload
