// Memory-feasibility constraint: jobs whose models do not fit a generation's
// device memory are never placed, migrated, probed, or traded there.
#include <gtest/gtest.h>

#include "analysis/harness.h"
#include "workload/model_zoo.h"

namespace gfair::workload {
namespace {

using analysis::Experiment;
using analysis::ExperimentConfig;
using cluster::GpuGeneration;

TEST(MemoryFeasibilityTest, ZooKnowsWhatFitsWhere) {
  const auto& zoo = ModelZoo::Default();
  const auto& mega = zoo.GetByName("MegaLM");  // 14 GB
  EXPECT_FALSE(mega.FitsGeneration(GpuGeneration::kK80));   // 12 GB
  EXPECT_TRUE(mega.FitsGeneration(GpuGeneration::kP40));    // 24 GB
  EXPECT_TRUE(mega.FitsGeneration(GpuGeneration::kP100));   // 16 GB
  EXPECT_TRUE(mega.FitsGeneration(GpuGeneration::kV100));   // 16 GB
  const auto& small = zoo.GetByName("VAE");
  for (GpuGeneration gen : cluster::kAllGenerations) {
    EXPECT_TRUE(small.FitsGeneration(gen));
  }
}

TEST(MemoryFeasibilityTest, PlacementAvoidsInfeasiblePools) {
  ExperimentConfig config;
  config.topology = cluster::Topology{{
      {GpuGeneration::kK80, 2, 8},
      {GpuGeneration::kV100, 1, 8},
  }};
  Experiment exp(config);
  auto& a = exp.users().Create("a");
  exp.UseGandivaFair({});
  // 12 MegaLM jobs oversubscribe the single V100 server; none may spill
  // onto the (plentiful, idle) K80s.
  for (int i = 0; i < 12; ++i) {
    exp.SubmitAt(Minutes(i), a.id, "MegaLM", 1, Hours(100));
  }
  exp.Run(Hours(3));
  for (const auto* job : exp.jobs().All()) {
    if (job->finished() || job->state == JobState::kMigrating) {
      continue;
    }
    ASSERT_TRUE(job->server.valid());
    EXPECT_EQ(exp.cluster().server(job->server).generation(), GpuGeneration::kV100);
  }
  // And the V100 server is fully used despite the pressure.
  EXPECT_EQ(exp.cluster().FreeGpus(GpuGeneration::kV100), 0);
}

TEST(MemoryFeasibilityTest, BaselinesRespectFeasibilityToo) {
  for (analysis::Policy policy :
       {analysis::Policy::kFifo, analysis::Policy::kEfficiencyGreedy,
        analysis::Policy::kSjf, analysis::Policy::kLas,
        analysis::Policy::kStaticQuota}) {
    ExperimentConfig config;
    config.topology = cluster::Topology{{
        {GpuGeneration::kK80, 1, 8},
        {GpuGeneration::kV100, 1, 8},
    }};
    Experiment exp(config);
    auto& a = exp.users().Create("a");
    exp.UsePolicy(policy);
    const JobId id = exp.SubmitAt(kTimeZero, a.id, "MegaLM", 2, Minutes(30));
    exp.Run(Hours(4));
    const auto& job = exp.jobs().Get(id);
    EXPECT_TRUE(job.finished()) << analysis::PolicyName(policy);
    EXPECT_GT(job.gpu_ms_by_gen[cluster::GenerationIndex(GpuGeneration::kV100)], 0.0)
        << analysis::PolicyName(policy);
    EXPECT_DOUBLE_EQ(job.gpu_ms_by_gen[cluster::GenerationIndex(GpuGeneration::kK80)],
                     0.0)
        << analysis::PolicyName(policy);
  }
}

TEST(MemoryFeasibilityTest, TradingNeverStrandsInfeasibleJobs) {
  // The MegaLM user would love fast GPUs (3.6x if K80 were possible), but it
  // cannot USE K80s — the trading engine must not lend away its V100 share
  // in exchange for K80s it cannot consume, and after hours of trading every
  // MegaLM job must still be on a feasible pool.
  ExperimentConfig config;
  config.topology = cluster::Topology{{
      {GpuGeneration::kK80, 2, 8},
      {GpuGeneration::kV100, 2, 8},
  }};
  config.seed = 7;
  Experiment exp(config);
  auto& mega = exp.users().Create("mega");
  auto& vae = exp.users().Create("vae");
  exp.UseGandivaFair({});
  for (int i = 0; i < 16; ++i) {
    exp.SubmitAt(Minutes(i), mega.id, "MegaLM", 1, Hours(200));
    exp.SubmitAt(Minutes(i), vae.id, "VAE", 1, Hours(200));
  }
  exp.Run(Hours(6));
  const auto& zoo = exp.zoo();
  for (const auto* job : exp.jobs().All()) {
    if (job->finished() || !job->server.valid()) {
      continue;
    }
    EXPECT_TRUE(zoo.Get(job->model).FitsGeneration(
        exp.cluster().server(job->server).generation()))
        << "job " << job->id.value() << " stranded on infeasible pool";
  }
  // mega's GPU time must all be on feasible pools.
  EXPECT_DOUBLE_EQ(
      exp.ledger().GpuMs(mega.id, GpuGeneration::kK80, kTimeZero, Hours(6)), 0.0);
  EXPECT_GT(exp.ledger().GpuMs(mega.id, kTimeZero, Hours(6)), 0.0);
}

TEST(MemoryFeasibilityDeathTest, ExecutorRejectsInfeasiblePlacement) {
  simkit::Simulator sim;
  cluster::Cluster cluster(cluster::HomogeneousTopology(1, 4, GpuGeneration::kK80));
  JobTable jobs;
  exec::Executor exec(sim, cluster, ModelZoo::Default(), jobs, exec::ExecutorConfig{},
                      1);
  auto& job = jobs.Create(UserId(0), ModelZoo::Default().GetByName("MegaLM").id, 1,
                          100.0, 0);
  EXPECT_DEATH(exec.MakeResident(job.id, ServerId(0)), "memory");
}

}  // namespace
}  // namespace gfair::workload
