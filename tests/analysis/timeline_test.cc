#include "analysis/timeline.h"

#include <gtest/gtest.h>

namespace gfair::analysis {
namespace {

TEST(TimelineTest, BucketsAverageGpuTime) {
  sched::FairnessLedger ledger;
  workload::UserTable users;
  const UserId a = users.Create("a").id;
  // 4 GPUs for the first hour, none afterwards.
  ledger.RecordGpuTime(a, cluster::GpuGeneration::kV100, 0, Hours(1), 4);
  const auto rows = ComputeTimeline(ledger, users, 0, Hours(2), /*buckets=*/4);
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].gpus.size(), 4u);
  // The interval is credited at its END, so the whole 4 GPU-hours land in
  // the bucket containing t=1h.
  const double total = rows[0].gpus[0] + rows[0].gpus[1] + rows[0].gpus[2] +
                       rows[0].gpus[3];
  EXPECT_NEAR(total, 8.0, 1e-6);  // 4 GPU-hours over 30-min buckets
  EXPECT_DOUBLE_EQ(rows[0].gpus[3], 0.0);
}

TEST(TimelineTest, FineGrainedLedgerYieldsSmoothBuckets) {
  sched::FairnessLedger ledger;
  workload::UserTable users;
  const UserId a = users.Create("a").id;
  // Minute-granularity accounting, as the scheduler produces.
  for (int m = 0; m < 120; ++m) {
    ledger.RecordGpuTime(a, cluster::GpuGeneration::kV100, Minutes(m), Minutes(m + 1),
                         4);
  }
  const auto rows = ComputeTimeline(ledger, users, 0, Hours(2), 4);
  for (double value : rows[0].gpus) {
    EXPECT_NEAR(value, 4.0, 0.2);
  }
}

TEST(TimelineTest, RenderShowsNamesAndPeaks) {
  sched::FairnessLedger ledger;
  workload::UserTable users;
  const UserId a = users.Create("alice").id;
  users.Create("idle-bob");
  for (int m = 0; m < 60; ++m) {
    ledger.RecordGpuTime(a, cluster::GpuGeneration::kK80, Minutes(m), Minutes(m + 1), 2);
  }
  const auto rows = ComputeTimeline(ledger, users, 0, Hours(1), 12);
  const std::string art = RenderTimeline(rows, 0, Hours(1), 8.0);
  EXPECT_NE(art.find("alice"), std::string::npos);
  EXPECT_NE(art.find("idle-bob"), std::string::npos);
  EXPECT_NE(art.find("peak 2.0 GPUs"), std::string::npos);
  EXPECT_NE(art.find("peak 0.0 GPUs"), std::string::npos);
}

TEST(TimelineTest, EmptyRowsRenderEmpty) {
  EXPECT_EQ(RenderTimeline({}, 0, Hours(1)), "");
}

}  // namespace
}  // namespace gfair::analysis
