// Tests for the Experiment harness itself: phased runs, demand tracking,
// policy-independent ideal shares, weights, determinism.
#include <gtest/gtest.h>

#include "analysis/harness.h"

namespace gfair::analysis {
namespace {

TEST(HarnessTest, PhasedRunsAreEquivalentToOneRun) {
  auto run = [](bool phased) {
    ExperimentConfig config;
    config.topology = cluster::HomogeneousTopology(1, 4);
    Experiment exp(config);
    auto& a = exp.users().Create("a");
    exp.UseGandivaFair({});
    exp.SubmitAt(kTimeZero, a.id, "DCGAN", 2, Hours(1));
    exp.SubmitAt(Minutes(30), a.id, "DCGAN", 1, Hours(1));
    if (phased) {
      for (int m = 10; m <= 240; m += 10) {
        exp.Run(Minutes(m));
      }
    } else {
      exp.Run(Hours(4));
    }
    double total = 0.0;
    for (const auto* job : exp.jobs().All()) {
      total += job->completed_minibatches;
    }
    return total;
  };
  EXPECT_DOUBLE_EQ(run(true), run(false));
}

TEST(HarnessTest, DeterministicAcrossInstances) {
  auto run = [] {
    ExperimentConfig config;
    config.topology = cluster::HomogeneousTopology(2, 4);
    config.seed = 77;
    Experiment exp(config);
    auto& a = exp.users().Create("a");
    auto& b = exp.users().Create("b");
    exp.UseGandivaFair({});
    std::vector<workload::UserWorkloadSpec> specs(2);
    specs[0].name = "a";
    specs[0].stop = Hours(4);
    specs[1] = specs[0];
    specs[1].name = "b";
    workload::TraceGenerator gen(exp.zoo(), 77);
    exp.LoadTrace(gen.Generate(specs, {a.id, b.id}));
    exp.Run(Hours(4));
    return exp.ledger().GpuMs(a.id, kTimeZero, Hours(4));
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(HarnessTest, DemandSeriesTracksSubmissionsAndCompletions) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(1, 8);
  Experiment exp(config);
  auto& a = exp.users().Create("a");
  exp.UseGandivaFair({});
  const JobId id = exp.SubmitAt(Minutes(10), a.id, "DCGAN", 4, Minutes(30));
  exp.Run(Hours(2));
  const auto& series = exp.demand_series(a.id);
  EXPECT_DOUBLE_EQ(series.ValueAt(Minutes(5)), 0.0);
  EXPECT_DOUBLE_EQ(series.ValueAt(Minutes(11)), 4.0);
  const auto& job = exp.jobs().Get(id);
  ASSERT_TRUE(job.finished());
  EXPECT_DOUBLE_EQ(series.ValueAt(job.finish_time + 1), 0.0);
}

TEST(HarnessTest, IdealRespectsTicketsAndDemandCaps) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(1, 8);
  Experiment exp(config);
  auto& a = exp.users().Create("a", 3.0);
  auto& b = exp.users().Create("b", 1.0);
  exp.UseGandivaFair({});
  // a demands only 2 GPUs (below its 6-GPU share); b demands 8.
  exp.SubmitAt(kTimeZero, a.id, "DCGAN", 2, Hours(1000));
  for (int i = 0; i < 8; ++i) {
    exp.SubmitAt(kTimeZero, b.id, "DCGAN", 1, Hours(1000));
  }
  exp.Run(Hours(2));
  const auto ideal = exp.IdealGpuMs(kTimeZero, Hours(2));
  EXPECT_NEAR(ideal[0] / kHour, 4.0, 1e-6);   // capped at demand: 2 GPUs x 2h
  EXPECT_NEAR(ideal[1] / kHour, 12.0, 1e-6);  // absorbs the slack: 6 GPUs x 2h
}

TEST(HarnessTest, PolicySwapKeepsWorkloadSemantics) {
  for (Policy policy : {Policy::kGandivaFair, Policy::kLas, Policy::kFifo}) {
    ExperimentConfig config;
    config.topology = cluster::HomogeneousTopology(1, 4);
    Experiment exp(config);
    auto& a = exp.users().Create("a");
    exp.UsePolicy(policy);
    const JobId id = exp.SubmitAt(kTimeZero, a.id, "DCGAN", 4, Minutes(20));
    exp.Run(Hours(2));
    EXPECT_TRUE(exp.jobs().Get(id).finished()) << PolicyName(policy);
  }
}

TEST(HarnessDeathTest, MisuseIsLoud) {
  ExperimentConfig config;
  Experiment exp(config);
  EXPECT_DEATH(exp.Run(Hours(1)), "UsePolicy");
  auto& a = exp.users().Create("a");
  EXPECT_DEATH(exp.SubmitAt(kTimeZero, a.id, "DCGAN", 1, Hours(1)), "UsePolicy");
  exp.UseGandivaFair({});
  EXPECT_DEATH(exp.SubmitAt(kTimeZero, a.id, "DCGAN", 1, Hours(1), /*weight=*/0.0), "");
}

}  // namespace
}  // namespace gfair::analysis
