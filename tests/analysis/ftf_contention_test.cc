// Tests for finish-time fairness and migration-network contention.
#include <gtest/gtest.h>

#include "analysis/harness.h"
#include "analysis/metrics.h"

namespace gfair {
namespace {

using analysis::Experiment;
using analysis::ExperimentConfig;

TEST(FinishTimeFairnessTest, DedicatedJobHasRhoNearOne) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(1, 4);
  Experiment exp(config);
  auto& a = exp.users().Create("a");
  exp.UseGandivaFair({});
  exp.SubmitAt(kTimeZero, a.id, "DCGAN", 1, Hours(3));
  exp.Run(Hours(4));
  const auto ftf = analysis::ComputeFinishTimeFairness(exp.jobs(), exp.zoo(),
                                                       exp.cluster());
  ASSERT_EQ(ftf.finished, 1);
  EXPECT_NEAR(ftf.mean_rho, 1.0, 0.05);  // alone on V100s: ~no slowdown
}

TEST(FinishTimeFairnessTest, ContendedJobsSlowProportionally) {
  // Two users saturating a server: each job runs at ~half speed -> rho ~2.
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(1, 2);
  Experiment exp(config);
  auto& a = exp.users().Create("a");
  auto& b = exp.users().Create("b");
  exp.UseGandivaFair({});
  for (int i = 0; i < 2; ++i) {
    exp.SubmitAt(kTimeZero, a.id, "DCGAN", 1, Hours(2));
    exp.SubmitAt(kTimeZero, b.id, "DCGAN", 1, Hours(2));
  }
  exp.Run(Hours(10));
  const auto ftf = analysis::ComputeFinishTimeFairness(exp.jobs(), exp.zoo(),
                                                       exp.cluster());
  ASSERT_EQ(ftf.finished, 4);
  EXPECT_NEAR(ftf.mean_rho, 2.0, 0.25);
  // Fair sharing: no job much worse than the mean.
  EXPECT_LT(ftf.max_rho, ftf.mean_rho * 1.3);
}

TEST(FinishTimeFairnessTest, PerUserFilter) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(1, 4);
  Experiment exp(config);
  auto& a = exp.users().Create("a");
  auto& b = exp.users().Create("b");
  exp.UseGandivaFair({});
  exp.SubmitAt(kTimeZero, a.id, "DCGAN", 1, Hours(1));
  exp.SubmitAt(kTimeZero, b.id, "DCGAN", 1, Hours(1));
  exp.Run(Hours(4));
  EXPECT_EQ(analysis::ComputeFinishTimeFairness(exp.jobs(), exp.zoo(), exp.cluster(),
                                                a.id)
                .finished,
            1);
}

TEST(MigrationContentionTest, ConcurrentMigrationsStretchTransfers) {
  simkit::Simulator sim;
  cluster::Cluster cluster(cluster::HomogeneousTopology(2, 8));
  workload::JobTable jobs;
  exec::ExecutorConfig exec_config;
  exec_config.migrate_contention = 1.0;
  exec::Executor exec(sim, cluster, workload::ModelZoo::Default(), jobs, exec_config, 1);

  const auto& model = workload::ModelZoo::Default().GetByName("Transformer");
  std::vector<JobId> ids;
  for (int i = 0; i < 3; ++i) {
    auto& job = jobs.Create(UserId(0), model.id, 1, 1e9, 0);
    exec.MakeResident(job.id, ServerId(0));
    ids.push_back(job.id);
  }
  // Start three migrations back-to-back: in-flight counts 0, 1, 2.
  for (JobId id : ids) {
    exec.Migrate(id, ServerId(1));
  }
  EXPECT_EQ(exec.migrations_in_flight(), 3);
  // First pays the uncontended latency; the third pays the transfer 3x.
  const SimDuration base = exec.MigrateLatency(model.id);
  EXPECT_EQ(jobs.Get(ids[0]).overhead_ms, base);
  EXPECT_GT(jobs.Get(ids[2]).overhead_ms, jobs.Get(ids[1]).overhead_ms);
  EXPECT_GT(jobs.Get(ids[1]).overhead_ms, jobs.Get(ids[0]).overhead_ms);

  sim.Run();
  EXPECT_EQ(exec.migrations_in_flight(), 0);
  for (JobId id : ids) {
    EXPECT_EQ(jobs.Get(id).server, ServerId(1));
    EXPECT_EQ(jobs.Get(id).state, workload::JobState::kSuspended);
  }
}

TEST(MigrationContentionTest, ZeroContentionMatchesBaseLatency) {
  simkit::Simulator sim;
  cluster::Cluster cluster(cluster::HomogeneousTopology(2, 4));
  workload::JobTable jobs;
  exec::ExecutorConfig exec_config;
  exec_config.migrate_contention = 0.0;
  exec::Executor exec(sim, cluster, workload::ModelZoo::Default(), jobs, exec_config, 1);
  const auto& model = workload::ModelZoo::Default().GetByName("DCGAN");
  std::vector<JobId> ids;
  for (int i = 0; i < 2; ++i) {
    auto& job = jobs.Create(UserId(0), model.id, 1, 1e9, 0);
    exec.MakeResident(job.id, ServerId(0));
    exec.Migrate(job.id, ServerId(1));
    ids.push_back(job.id);
  }
  EXPECT_EQ(jobs.Get(ids[0]).overhead_ms, jobs.Get(ids[1]).overhead_ms);
}

}  // namespace
}  // namespace gfair
