#include "analysis/fairshare.h"

#include <gtest/gtest.h>

namespace gfair::analysis {
namespace {

TEST(WaterFillTest, ProportionalWhenUncapped) {
  const auto alloc = WaterFill(12.0, {1.0, 2.0}, {100.0, 100.0});
  EXPECT_DOUBLE_EQ(alloc[0], 4.0);
  EXPECT_DOUBLE_EQ(alloc[1], 8.0);
}

TEST(WaterFillTest, CapsAtDemandAndRedistributes) {
  const auto alloc = WaterFill(12.0, {1.0, 1.0}, {2.0, 100.0});
  EXPECT_DOUBLE_EQ(alloc[0], 2.0);
  EXPECT_DOUBLE_EQ(alloc[1], 10.0);
}

TEST(WaterFillTest, ZeroDemandGetsNothing) {
  const auto alloc = WaterFill(10.0, {5.0, 1.0}, {0.0, 4.0});
  EXPECT_DOUBLE_EQ(alloc[0], 0.0);
  EXPECT_DOUBLE_EQ(alloc[1], 4.0);
}

TEST(WaterFillTest, UndersubscribedGivesEveryoneTheirDemand) {
  const auto alloc = WaterFill(100.0, {1.0, 1.0, 1.0}, {3.0, 5.0, 7.0});
  EXPECT_DOUBLE_EQ(alloc[0], 3.0);
  EXPECT_DOUBLE_EQ(alloc[1], 5.0);
  EXPECT_DOUBLE_EQ(alloc[2], 7.0);
}

TEST(WaterFillTest, CascadingCaps) {
  // tickets equal, capacity 9: proportional = 3 each; user0 capped at 1,
  // excess flows to the others: 1, 4, 4.
  const auto alloc = WaterFill(9.0, {1.0, 1.0, 1.0}, {1.0, 10.0, 10.0});
  EXPECT_DOUBLE_EQ(alloc[0], 1.0);
  EXPECT_DOUBLE_EQ(alloc[1], 4.0);
  EXPECT_DOUBLE_EQ(alloc[2], 4.0);
}

TEST(WaterFillTest, NeverExceedsCapacityOrDemand) {
  const auto alloc = WaterFill(7.0, {1.0, 2.0, 4.0}, {3.0, 3.0, 3.0});
  double total = 0.0;
  for (size_t i = 0; i < alloc.size(); ++i) {
    EXPECT_LE(alloc[i], 3.0 + 1e-9);
    total += alloc[i];
  }
  EXPECT_NEAR(total, 7.0, 1e-9);
}

TEST(IdealGpuMsTest, IntegratesOverDemandChanges) {
  simkit::TimeSeries demand_a;
  simkit::TimeSeries demand_b;
  demand_a.Record(0, 8.0);
  demand_b.Record(Minutes(30), 8.0);  // b joins at t=30min
  const std::vector<UserShareInput> users = {
      {UserId(0), 1.0, &demand_a},
      {UserId(1), 1.0, &demand_b},
  };
  const auto ideal = IdealGpuMs(8.0, 0, Hours(1), users);
  // a: 8 GPUs for 30min + 4 GPUs for 30min = 6 GPU-hours.
  EXPECT_NEAR(ideal[0] / kHour, 6.0, 1e-9);
  EXPECT_NEAR(ideal[1] / kHour, 2.0, 1e-9);
}

TEST(IdealGpuMsTest, EmptyUsersAndWindows) {
  EXPECT_TRUE(IdealGpuMs(8.0, 0, Hours(1), {}).empty());
  simkit::TimeSeries demand;
  demand.Record(0, 1.0);
  const std::vector<UserShareInput> users = {{UserId(0), 1.0, &demand}};
  EXPECT_DOUBLE_EQ(IdealGpuMs(8.0, Minutes(5), Minutes(5), users)[0], 0.0);
}

TEST(IdealClusterGpuMsTest, SumsPools) {
  sched::FairnessLedger ledger;
  ledger.RecordDemandChange(UserId(0), cluster::GpuGeneration::kK80, 0, 4);
  ledger.RecordDemandChange(UserId(0), cluster::GpuGeneration::kV100, 0, 4);
  cluster::Cluster cluster(cluster::Topology{{
      {cluster::GpuGeneration::kK80, 1, 4},
      {cluster::GpuGeneration::kV100, 1, 4},
  }});
  const auto ideal =
      IdealClusterGpuMs(cluster, ledger, {UserId(0)}, {1.0}, 0, Hours(1));
  EXPECT_NEAR(ideal[0] / kHour, 8.0, 1e-9);
}

}  // namespace
}  // namespace gfair::analysis
