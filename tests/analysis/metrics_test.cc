#include "analysis/metrics.h"

#include <gtest/gtest.h>

#include "analysis/harness.h"

namespace gfair::analysis {
namespace {

TEST(MetricsTest, UsefulWorkConvertsAtK80Rate) {
  workload::JobTable jobs;
  const auto& zoo = workload::ModelZoo::Default();
  const auto& model = zoo.GetByName("DCGAN");  // 16 mb/s on K80
  workload::Job& job = jobs.Create(UserId(0), model.id, 1, 16.0 * 3600, 0);
  job.completed_minibatches = 16.0 * 3600;  // one K80-hour of work
  EXPECT_NEAR(UsefulK80GpuHours(job, zoo), 1.0, 1e-9);
  EXPECT_NEAR(TotalUsefulWork(jobs, zoo), 1.0, 1e-9);
}

TEST(MetricsTest, UsefulWorkWeightsGangSize) {
  workload::JobTable jobs;
  const auto& zoo = workload::ModelZoo::Default();
  const auto& model = zoo.GetByName("DCGAN");
  const double gang_rate = model.GangThroughput(cluster::GpuGeneration::kK80, 4);
  workload::Job& job = jobs.Create(UserId(0), model.id, 4, gang_rate * 3600, 0);
  job.completed_minibatches = gang_rate * 3600;  // one hour on a 4-gang
  EXPECT_NEAR(UsefulK80GpuHours(job, zoo), 4.0, 1e-9);
}

TEST(MetricsTest, SummariesFromEndToEndRun) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(1, 4);
  Experiment exp(config);
  auto& a = exp.users().Create("a", 2.0);
  exp.users().Create("idle");
  exp.UseGandivaFair({});
  exp.SubmitAt(kTimeZero, a.id, "DCGAN", 2, Minutes(40));
  exp.Run(Hours(2));
  const auto summaries =
      SummarizeUsers(exp.jobs(), exp.users(), exp.ledger(), exp.zoo(), kTimeZero, Hours(2));
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_EQ(summaries[0].name, "a");
  EXPECT_DOUBLE_EQ(summaries[0].tickets, 2.0);
  EXPECT_EQ(summaries[0].jobs_total, 1);
  EXPECT_EQ(summaries[0].jobs_finished, 1);
  EXPECT_GT(summaries[0].gpu_hours, 0.3);
  EXPECT_GT(summaries[0].mean_jct_minutes, 5.0);
  EXPECT_DOUBLE_EQ(summaries[1].gpu_hours, 0.0);
}

TEST(MetricsTest, PoolUtilizationReflectsHeldTime) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(1, 4);
  Experiment exp(config);
  auto& a = exp.users().Create("a");
  exp.UseGandivaFair({});
  for (int i = 0; i < 4; ++i) {
    exp.SubmitAt(kTimeZero, a.id, "DCGAN", 1, Hours(100));
  }
  exp.Run(Hours(2));
  const auto util = PoolUtilization(exp.ledger(), exp.users(), exp.cluster(), kTimeZero,
                                    Hours(2));
  EXPECT_GT(util[cluster::GenerationIndex(cluster::GpuGeneration::kV100)], 0.97);
  EXPECT_DOUBLE_EQ(util[cluster::GenerationIndex(cluster::GpuGeneration::kK80)], 0.0);
}

}  // namespace
}  // namespace gfair::analysis
