// Pins the compile-time purity contract of ClusterStateView: every accessor
// is deep-const, and no mutating operation of ClusterStateIndex or
// LocalStrideScheduler is reachable through the view. The checks are
// static_asserts (detection idiom) so a mutator leaking into the view breaks
// the BUILD of the test suite, not just a runtime expectation; the matching
// negative-compile proof (a .cc that tries the mutation and must fail) lives
// in tests/lint/const_view_must_not_compile.cc, wired as a WILL_FAIL ctest.
#include "sched/cluster_state_view.h"

#include <type_traits>
#include <utility>

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "sched/cluster_state_index.h"

namespace gfair::sched {
namespace {

// --- detection idiom -------------------------------------------------------
// CanX<T>: is the mutating expression well-formed on a T obtained from the
// view? For the purity contract every one of these must be false.

template <typename T, typename = void>
struct CanAddJob : std::false_type {};
template <typename T>
struct CanAddJob<T, std::void_t<decltype(std::declval<T>().AddJob(
                        std::declval<JobId>(), 1, 1.0))>> : std::true_type {};

template <typename T, typename = void>
struct CanSetTickets : std::false_type {};
template <typename T>
struct CanSetTickets<T, std::void_t<decltype(std::declval<T>().SetTickets(
                            std::declval<JobId>(), 1.0))>> : std::true_type {};

template <typename T, typename = void>
struct CanSetRunnable : std::false_type {};
template <typename T>
struct CanSetRunnable<T, std::void_t<decltype(std::declval<T>().SetRunnable(
                             std::declval<JobId>(), true))>> : std::true_type {};

template <typename T, typename = void>
struct CanCharge : std::false_type {};
template <typename T>
struct CanCharge<T, std::void_t<decltype(std::declval<T>().Charge(
                        std::declval<JobId>(), SimDuration{1}))>>
    : std::true_type {};

// View-level mutators that must simply not exist on ClusterStateView.
template <typename T, typename = void>
struct HasSetDown : std::false_type {};
template <typename T>
struct HasSetDown<T, std::void_t<decltype(std::declval<T>().SetDown(
                         std::declval<ServerId>(), true))>> : std::true_type {};

template <typename T, typename = void>
struct HasClearPlanDirty : std::false_type {};
template <typename T>
struct HasClearPlanDirty<T, std::void_t<decltype(std::declval<T>().ClearPlanDirty(
                                std::declval<ServerId>()))>> : std::true_type {};

// What planning code actually receives from the view.
using StrideThroughView =
    decltype(std::declval<const ClusterStateView&>().stride(std::declval<ServerId>()));
using ServerThroughView =
    decltype(std::declval<const ClusterStateView&>().server(std::declval<ServerId>()));

// The view hands out only const references...
static_assert(std::is_same_v<StrideThroughView, const LocalStrideScheduler&>,
              "view must expose strides as const references");
static_assert(std::is_same_v<ServerThroughView, const cluster::Server&>,
              "view must expose servers as const references");

// ...through which no stride mutation is expressible (deep const, enforced by
// overload resolution: the mutators are non-const member functions).
static_assert(!CanAddJob<StrideThroughView>::value,
              "AddJob must not be callable through the view");
static_assert(!CanSetTickets<StrideThroughView>::value,
              "SetTickets must not be callable through the view");
static_assert(!CanSetRunnable<StrideThroughView>::value,
              "SetRunnable must not be callable through the view");
static_assert(!CanCharge<StrideThroughView>::value,
              "Charge must not be callable through the view");

// Sanity: the same expressions ARE well-formed on a mutable scheduler —
// otherwise the negative asserts above would pass vacuously.
static_assert(CanAddJob<LocalStrideScheduler&>::value);
static_assert(CanSetTickets<LocalStrideScheduler&>::value);
static_assert(CanSetRunnable<LocalStrideScheduler&>::value);
static_assert(CanCharge<LocalStrideScheduler&>::value);

// Index-level mutators do not exist on the view at all.
static_assert(!HasSetDown<const ClusterStateView&>::value,
              "the view must not expose SetDown");
static_assert(!HasClearPlanDirty<const ClusterStateView&>::value,
              "the view must not expose ClearPlanDirty");
static_assert(HasSetDown<ClusterStateIndex&>::value);
static_assert(HasClearPlanDirty<ClusterStateIndex&>::value);

// The view is a value type: two pointers, trivially copyable, cheap to pass
// by value into every planning helper.
static_assert(std::is_trivially_copyable_v<ClusterStateView>);
static_assert(sizeof(ClusterStateView) <= 2 * sizeof(void*));

// Runtime smoke: the view reads the same state the index holds.
TEST(ClusterStateViewTest, ReadsMatchIndex) {
  cluster::Cluster cluster(cluster::HomogeneousTopology(2, 4));
  const ServerId s0(0);
  const ServerId s1(1);
  ClusterStateIndex index(cluster, StrideConfig{});
  index.AddJob(s0, JobId(0), /*gang=*/2, /*tickets=*/10.0);

  const ClusterStateView view(cluster, index);
  EXPECT_EQ(view.num_servers(), index.num_servers());
  EXPECT_EQ(view.stride(s0).num_jobs(), 1u);
  EXPECT_EQ(view.stride(s1).num_jobs(), 0u);
  EXPECT_TRUE(view.plan_dirty(s0));
  EXPECT_FALSE(view.down(s0));
  EXPECT_FALSE(view.draining(s1));
  EXPECT_DOUBLE_EQ(view.NormTicketLoad(s0), index.NormTicketLoad(s0));
  EXPECT_EQ(&view.server(s0), &cluster.server(s0));
  EXPECT_EQ(&view.stride(s0), &index.stride(s0));
}

}  // namespace
}  // namespace gfair::sched
