#include "sched/ticket_matrix.h"

#include <gtest/gtest.h>

#include <vector>

namespace gfair::sched {
namespace {

using cluster::GpuGeneration;

TEST(TicketMatrixTest, RegisterFillsAllPools) {
  TicketMatrix matrix;
  matrix.RegisterUser(UserId(0), 2.5);
  for (GpuGeneration gen : cluster::kAllGenerations) {
    EXPECT_DOUBLE_EQ(matrix.Get(UserId(0), gen).raw(), 2.5);
  }
  EXPECT_DOUBLE_EQ(matrix.base(UserId(0)).raw(), 2.5);
  EXPECT_TRUE(matrix.HasUser(UserId(0)));
  EXPECT_FALSE(matrix.HasUser(UserId(1)));
}

TEST(TicketMatrixTest, SetAndResetToBase) {
  TicketMatrix matrix;
  matrix.RegisterUser(UserId(0), 1.0);
  matrix.Set(UserId(0), GpuGeneration::kV100, 0.0);
  matrix.Set(UserId(0), GpuGeneration::kK80, 5.0);
  EXPECT_DOUBLE_EQ(matrix.Get(UserId(0), GpuGeneration::kV100).raw(), 0.0);
  EXPECT_DOUBLE_EQ(matrix.Get(UserId(0), GpuGeneration::kK80).raw(), 5.0);
  matrix.ResetToBase();
  EXPECT_DOUBLE_EQ(matrix.Get(UserId(0), GpuGeneration::kV100).raw(), 1.0);
  EXPECT_DOUBLE_EQ(matrix.Get(UserId(0), GpuGeneration::kK80).raw(), 1.0);
}

TEST(TicketMatrixTest, PoolTotalOverUsers) {
  TicketMatrix matrix;
  matrix.RegisterUser(UserId(0), 1.0);
  matrix.RegisterUser(UserId(1), 3.0);
  matrix.RegisterUser(UserId(2), 5.0);
  const std::vector<UserId> subset = {UserId(0), UserId(2)};
  EXPECT_DOUBLE_EQ(matrix.PoolTotal(GpuGeneration::kP100, subset).raw(), 6.0);
}

TEST(TicketMatrixTest, ReRegisterResetsRow) {
  TicketMatrix matrix;
  matrix.RegisterUser(UserId(0), 1.0);
  matrix.Set(UserId(0), GpuGeneration::kK80, 7.0);
  matrix.RegisterUser(UserId(0), 2.0);
  EXPECT_DOUBLE_EQ(matrix.Get(UserId(0), GpuGeneration::kK80).raw(), 2.0);
}

TEST(TicketMatrixDeathTest, UnknownUserAborts) {
  TicketMatrix matrix;
  EXPECT_DEATH(matrix.Get(UserId(0), GpuGeneration::kK80), "unknown");
  EXPECT_DEATH(matrix.Set(UserId(0), GpuGeneration::kK80, 1.0), "unknown");
}

TEST(TicketMatrixDeathTest, NegativeTicketsAbort) {
  TicketMatrix matrix;
  matrix.RegisterUser(UserId(0), 1.0);
  EXPECT_DEATH(matrix.Set(UserId(0), GpuGeneration::kK80, -1.0), "negative");
}

}  // namespace
}  // namespace gfair::sched
