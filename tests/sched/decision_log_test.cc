#include "sched/decision_log.h"

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/harness.h"

namespace gfair::sched {
namespace {

TEST(DecisionLogTest, CountsPerType) {
  DecisionLog log;
  log.Record(0, DecisionType::kPlace, JobId(1));
  log.Record(1, DecisionType::kResume, JobId(1));
  log.Record(2, DecisionType::kSuspend, JobId(1));
  log.Record(3, DecisionType::kMigrateSteal, JobId(1), ServerId(0), ServerId(1));
  log.Record(4, DecisionType::kMigrateTrade, JobId(1), ServerId(1), ServerId(0));
  EXPECT_EQ(log.Count(DecisionType::kPlace), 1);
  EXPECT_EQ(log.Count(DecisionType::kResume), 1);
  EXPECT_EQ(log.Count(DecisionType::kMigrateBalance), 0);
  EXPECT_EQ(log.TotalMigrations(), 2);
  EXPECT_EQ(log.entries().size(), 5u);
}

TEST(DecisionLogTest, RingBufferBoundedButCountsUnbounded) {
  DecisionLog log(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    log.Record(i, DecisionType::kResume, JobId(static_cast<uint32_t>(i)));
  }
  EXPECT_EQ(log.entries().size(), 4u);
  EXPECT_EQ(log.Count(DecisionType::kResume), 10);
  // The retained tail is the most recent entries.
  EXPECT_EQ(log.entries().front().job, JobId(6));
  EXPECT_EQ(log.entries().back().job, JobId(9));
}

TEST(DecisionLogTest, DroppedEntriesCountEvictions) {
  DecisionLog log(/*capacity=*/4);
  for (int i = 0; i < 4; ++i) {
    log.Record(i, DecisionType::kResume, JobId(static_cast<uint32_t>(i)));
  }
  EXPECT_EQ(log.dropped_entries(), 0);  // ring not yet full: nothing lost
  for (int i = 4; i < 10; ++i) {
    log.Record(i, DecisionType::kResume, JobId(static_cast<uint32_t>(i)));
  }
  EXPECT_EQ(log.capacity(), 4u);
  EXPECT_EQ(log.dropped_entries(), 6);  // one eviction per wrap-around write
  EXPECT_EQ(log.entries().size(), 4u);
}

TEST(DecisionLogTest, CountOnlyModeKeepsCountersAndReportsDrops) {
  DecisionLog log(/*capacity=*/0);
  for (int i = 0; i < 5; ++i) {
    log.Record(i, DecisionType::kSuspend, JobId(static_cast<uint32_t>(i)));
  }
  EXPECT_TRUE(log.entries().empty());
  EXPECT_EQ(log.Count(DecisionType::kSuspend), 5);
  // Nothing is retained, so every record counts as dropped: a consumer can
  // tell the (empty) tail is not the whole stream.
  EXPECT_EQ(log.dropped_entries(), 5);
}

TEST(DecisionLogTest, DumpIsHumanReadable) {
  DecisionLog log;
  log.Record(Minutes(2), DecisionType::kMigrateProbe, JobId(7), ServerId(1), ServerId(3));
  std::ostringstream os;
  log.Dump(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("migrate/probe"), std::string::npos);
  EXPECT_NE(text.find("job 7"), std::string::npos);
  EXPECT_NE(text.find("1 -> 3"), std::string::npos);
}

TEST(DecisionLogTest, MigrationCauseMapping) {
  EXPECT_EQ(DecisionFor(MigrationCause::kBalance), DecisionType::kMigrateBalance);
  EXPECT_EQ(DecisionFor(MigrationCause::kConserve), DecisionType::kMigrateConserve);
  EXPECT_EQ(DecisionFor(MigrationCause::kSteal), DecisionType::kMigrateSteal);
  EXPECT_EQ(DecisionFor(MigrationCause::kProbe), DecisionType::kMigrateProbe);
  EXPECT_EQ(DecisionFor(MigrationCause::kTrade), DecisionType::kMigrateTrade);
}

TEST(DecisionLogIntegrationTest, SchedulerRecordsItsActions) {
  analysis::ExperimentConfig config;
  config.topology = cluster::Topology{{
      {cluster::GpuGeneration::kK80, 2, 4},
      {cluster::GpuGeneration::kV100, 2, 4},
  }};
  analysis::Experiment exp(config);
  auto& low = exp.users().Create("low");
  auto& high = exp.users().Create("high");
  exp.UseGandivaFair({});
  for (int i = 0; i < 12; ++i) {
    exp.SubmitAt(Minutes(i), low.id, "VAE", 1, Hours(50));
    exp.SubmitAt(Minutes(i), high.id, "ResNeXt-50", 1, Hours(50));
  }
  exp.Run(Hours(4));
  const auto& log = exp.gandiva()->decisions();
  EXPECT_EQ(log.Count(DecisionType::kPlace), 24);
  EXPECT_GT(log.Count(DecisionType::kResume), 0);
  EXPECT_GT(log.Count(DecisionType::kSuspend), 0);
  // Trading fired on this heterogeneous, skewed workload — and its
  // migrations are attributed to their causes.
  EXPECT_GT(log.Count(DecisionType::kTrade), 0);
  EXPECT_GT(log.TotalMigrations(), 0);
  EXPECT_EQ(log.TotalMigrations(), exp.gandiva()->migrations_started());
}

}  // namespace
}  // namespace gfair::sched
