#include "sched/stride.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

namespace gfair::sched {
namespace {

bool Contains(const std::vector<JobId>& jobs, JobId id) {
  return std::find(jobs.begin(), jobs.end(), id) != jobs.end();
}

TEST(StrideTest, SingleJobGetsSelected) {
  LocalStrideScheduler stride(4);
  stride.AddJob(JobId(0), 2, 1.0);
  const auto selected = stride.SelectForQuantum();
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0], JobId(0));
}

TEST(StrideTest, LowestPassWins) {
  LocalStrideScheduler stride(1);
  stride.AddJob(JobId(0), 1, 1.0);
  stride.AddJob(JobId(1), 1, 1.0);
  stride.Charge(JobId(0), 100);
  EXPECT_EQ(stride.SelectForQuantum()[0], JobId(1));
}

TEST(StrideTest, ChargeScalesWithGangAndTickets) {
  LocalStrideScheduler stride(8);
  stride.AddJob(JobId(0), 4, 2.0);
  stride.AddJob(JobId(1), 1, 1.0);
  stride.Charge(JobId(0), 100);  // pass += 4*100/2 = 200
  stride.Charge(JobId(1), 100);  // pass += 1*100/1 = 100
  EXPECT_DOUBLE_EQ(stride.PassOf(JobId(0)).raw(), 200.0);
  EXPECT_DOUBLE_EQ(stride.PassOf(JobId(1)).raw(), 100.0);
}

TEST(StrideTest, GpuTimeProportionalToTickets) {
  // Simulate many quanta on a 1-GPU server with tickets 1:3; GPU time should
  // split 1:3.
  LocalStrideScheduler stride(1);
  stride.AddJob(JobId(0), 1, 1.0);
  stride.AddJob(JobId(1), 1, 3.0);
  std::map<JobId, int> quanta;
  for (int tick = 0; tick < 400; ++tick) {
    const auto selected = stride.SelectForQuantum();
    ASSERT_EQ(selected.size(), 1u);
    quanta[selected[0]] += 1;
    stride.Charge(selected[0], 60'000);
  }
  EXPECT_NEAR(static_cast<double>(quanta[JobId(1)]) / quanta[JobId(0)], 3.0, 0.05);
}

TEST(StrideTest, GangChargedGangTimesFaster) {
  // 4-gang and 4x 1-GPU jobs, equal tickets each, 8 GPUs: the gang gets 4
  // GPUs' worth and each single job ~1 GPU's worth... with 5 jobs of equal
  // tickets on 8 GPUs, stride equalizes GPU time per ticket:
  // gang rate 4 gpus when on; it should run about half the time.
  LocalStrideScheduler stride(8);
  stride.AddJob(JobId(0), 4, 1.0);
  for (int i = 1; i <= 8; ++i) {
    stride.AddJob(JobId(i), 1, 1.0);
  }
  std::map<JobId, double> gpu_time;
  for (int tick = 0; tick < 2000; ++tick) {
    for (JobId id : stride.SelectForQuantum()) {
      gpu_time[id] += stride.GangOf(id);
      stride.Charge(id, 1);
    }
  }
  // 9 jobs, equal tickets, 8 GPUs: each deserves 8/9 GPUs of time.
  const double expected = 2000.0 * 8.0 / 9.0;
  EXPECT_NEAR(gpu_time[JobId(0)], expected, expected * 0.05);
  EXPECT_NEAR(gpu_time[JobId(3)], expected, expected * 0.05);
}

TEST(StrideTest, NewJobEntersAtVirtualTime) {
  LocalStrideScheduler stride(1);
  stride.AddJob(JobId(0), 1, 1.0);
  for (int i = 0; i < 10; ++i) {
    (void)stride.SelectForQuantum();
    stride.Charge(JobId(0), 1000);
  }
  stride.AddJob(JobId(1), 1, 1.0);
  // Newcomer must not owe history: pass = virtual time (job 0's pass floor),
  // not 0 — but also must not leap ahead.
  EXPECT_GT(stride.PassOf(JobId(1)).raw(), 0.0);
  EXPECT_LE(stride.PassOf(JobId(1)), stride.PassOf(JobId(0)));
}

TEST(StrideTest, BigJobFirstWinsTies) {
  StrideConfig config;
  config.big_job_first = true;
  LocalStrideScheduler stride(8, config);
  stride.AddJob(JobId(0), 1, 1.0);
  stride.AddJob(JobId(1), 8, 1.0);  // same pass (both at vt=0)
  const auto selected = stride.SelectForQuantum();
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0], JobId(1));
}

TEST(StrideTest, GangServedFairlyUnderArrivalChurn) {
  // A stream of 1-GPU jobs entering at the virtual time ties with the
  // waiting 8-gang every round. Big-first tie-breaking serves the gang
  // immediately; small-first delays it until the virtual time climbs past
  // its pass — but because virtual time advances with delivered service,
  // neither variant starves it outright (the starvation of the E3 experiment
  // comes from run-to-completion backfill schedulers, and from the
  // unreserved mid-quantum fill path at the facade level).
  for (bool big_first : {false, true}) {
    StrideConfig config;
    config.big_job_first = big_first;
    LocalStrideScheduler stride(8, config);
    stride.AddJob(JobId(1000), 8, 1.0);
    int gang_quanta = 0;
    int first_service_round = -1;
    uint32_t next_id = 0;
    // 8 resident 1-GPU jobs at all times; replace them each round (finish +
    // new arrival), mimicking a continuous stream of short jobs.
    for (uint32_t i = 0; i < 8; ++i) {
      stride.AddJob(JobId(next_id++), 1, 1.0);
    }
    for (int round = 0; round < 90; ++round) {
      const auto selected = stride.SelectForQuantum();
      for (JobId id : selected) {
        stride.Charge(id, 60'000);
        if (id == JobId(1000)) {
          ++gang_quanta;
          if (first_service_round < 0) {
            first_service_round = round;
          }
        } else {
          stride.RemoveJob(id);  // short job finishes
          stride.AddJob(JobId(next_id++), 1, 1.0);
        }
      }
    }
    // Equal tickets for 9 jobs on 8 GPUs: fair share is ~one quantum in nine.
    EXPECT_GE(gang_quanta, 7) << "big_first=" << big_first;
    EXPECT_LE(gang_quanta, 14) << "big_first=" << big_first;
    if (big_first) {
      EXPECT_EQ(first_service_round, 0) << "ties must favor the gang";
    } else {
      EXPECT_GT(first_service_round, 0) << "small-first delays the gang";
    }
  }
}

TEST(StrideTest, BackfillsPastBlockedGang) {
  LocalStrideScheduler stride(8);
  stride.AddJob(JobId(0), 6, 1.0);
  stride.AddJob(JobId(1), 4, 1.0);
  stride.AddJob(JobId(2), 2, 1.0);
  // Ties: big first = job0 (6 GPUs), job1 blocked (4 > 2 free), job2 fits.
  const auto selected = stride.SelectForQuantum();
  EXPECT_TRUE(Contains(selected, JobId(0)));
  EXPECT_FALSE(Contains(selected, JobId(1)));
  EXPECT_TRUE(Contains(selected, JobId(2)));
}

TEST(StrideTest, NonRunnableJobsAreSkipped) {
  LocalStrideScheduler stride(2);
  stride.AddJob(JobId(0), 1, 1.0);
  stride.AddJob(JobId(1), 1, 1.0);
  stride.SetRunnable(JobId(0), false);
  const auto selected = stride.SelectForQuantum();
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0], JobId(1));
  EXPECT_DOUBLE_EQ(stride.TicketLoad().raw(), 1.0);
  EXPECT_EQ(stride.DemandLoad(), 1);
}

TEST(StrideTest, ReenteringJobPassIsFloored) {
  LocalStrideScheduler stride(1);
  stride.AddJob(JobId(0), 1, 1.0);
  stride.AddJob(JobId(1), 1, 1.0);
  stride.SetRunnable(JobId(0), false);
  for (int i = 0; i < 10; ++i) {
    (void)stride.SelectForQuantum();
    stride.Charge(JobId(1), 1000);
  }
  stride.SetRunnable(JobId(0), true);
  // Job 0 must not monopolize: its pass was floored to the virtual time.
  EXPECT_GE(stride.PassOf(JobId(0)), stride.VirtualTime() - Stride(1e-9));
}

TEST(StrideTest, SetTicketsChangesFutureShares) {
  LocalStrideScheduler stride(1);
  stride.AddJob(JobId(0), 1, 1.0);
  stride.AddJob(JobId(1), 1, 1.0);
  stride.SetTickets(JobId(0), 9.0);
  std::map<JobId, int> quanta;
  for (int tick = 0; tick < 500; ++tick) {
    const auto selected = stride.SelectForQuantum();
    quanta[selected[0]] += 1;
    stride.Charge(selected[0], 1000);
  }
  EXPECT_NEAR(static_cast<double>(quanta[JobId(0)]) / quanta[JobId(1)], 9.0, 0.5);
}

TEST(StrideTest, TicketAndDemandLoads) {
  LocalStrideScheduler stride(8);
  stride.AddJob(JobId(0), 4, 2.5);
  stride.AddJob(JobId(1), 2, 0.5);
  EXPECT_DOUBLE_EQ(stride.TicketLoad().raw(), 3.0);
  EXPECT_EQ(stride.DemandLoad(), 6);
  stride.RemoveJob(JobId(0));
  EXPECT_DOUBLE_EQ(stride.TicketLoad().raw(), 0.5);
}

TEST(StrideTest, VirtualTimeMonotone) {
  LocalStrideScheduler stride(1);
  stride.AddJob(JobId(0), 1, 1.0);
  (void)stride.SelectForQuantum();
  stride.Charge(JobId(0), 5000);
  (void)stride.SelectForQuantum();
  const Pass vt = stride.VirtualTime();
  stride.RemoveJob(JobId(0));
  stride.AddJob(JobId(1), 1, 1.0);
  EXPECT_GE(stride.PassOf(JobId(1)), vt);
}

TEST(StrideTest, CachedLoadsTrackMutations) {
  // TicketLoad/DemandLoad are cached; every mutation class must invalidate
  // (or incrementally update) them. In debug builds the cached ticket load is
  // additionally asserted against an incremental shadow sum on every read.
  LocalStrideScheduler stride(8);
  stride.AddJob(JobId(0), 2, 1.5);
  stride.AddJob(JobId(1), 4, 2.5);
  EXPECT_DOUBLE_EQ(stride.TicketLoad().raw(), 4.0);
  EXPECT_EQ(stride.DemandLoad(), 6);

  stride.SetTickets(JobId(0), 3.5);
  EXPECT_DOUBLE_EQ(stride.TicketLoad().raw(), 6.0);

  stride.SetRunnable(JobId(1), false);  // non-runnable jobs leave both loads
  EXPECT_DOUBLE_EQ(stride.TicketLoad().raw(), 3.5);
  EXPECT_EQ(stride.DemandLoad(), 2);
  stride.SetRunnable(JobId(1), true);
  EXPECT_DOUBLE_EQ(stride.TicketLoad().raw(), 6.0);
  EXPECT_EQ(stride.DemandLoad(), 6);

  stride.RemoveJob(JobId(0));
  EXPECT_DOUBLE_EQ(stride.TicketLoad().raw(), 2.5);
  EXPECT_EQ(stride.DemandLoad(), 4);
  stride.RemoveJob(JobId(1));
  EXPECT_DOUBLE_EQ(stride.TicketLoad().raw(), 0.0);
  EXPECT_EQ(stride.DemandLoad(), 0);

  // Charging mutates passes only — loads must be unaffected (and readable
  // between charges without a recompute).
  stride.AddJob(JobId(2), 3, 1.25);
  const Tickets before = stride.TicketLoad();
  stride.Charge(JobId(2), 1000);
  EXPECT_DOUBLE_EQ(stride.TicketLoad().raw(), before.raw());
  EXPECT_EQ(stride.DemandLoad(), 3);
}

TEST(StrideTest, ResidentJobsCachedViewStaysSortedAndFresh) {
  LocalStrideScheduler stride(8);
  stride.AddJob(JobId(5), 1, 1.0);
  stride.AddJob(JobId(1), 1, 1.0);
  stride.AddJob(JobId(9), 1, 1.0);
  const std::vector<JobId> expected{JobId(1), JobId(5), JobId(9)};
  EXPECT_EQ(stride.ResidentJobs(), expected);
  // Repeated reads return the same cached vector (no rebuild).
  const std::vector<JobId>* first = &stride.ResidentJobs();
  EXPECT_EQ(first, &stride.ResidentJobs());

  stride.RemoveJob(JobId(5));
  const std::vector<JobId> after{JobId(1), JobId(9)};
  EXPECT_EQ(stride.ResidentJobs(), after);
  stride.AddJob(JobId(0), 2, 1.0);
  const std::vector<JobId> again{JobId(0), JobId(1), JobId(9)};
  EXPECT_EQ(stride.ResidentJobs(), again);
}

TEST(StrideDeathTest, InvalidOperations) {
  LocalStrideScheduler stride(4);
  EXPECT_DEATH(stride.AddJob(JobId(0), 5, 1.0), "fit");
  EXPECT_DEATH(stride.AddJob(JobId(0), 1, 0.0), "");
  stride.AddJob(JobId(0), 1, 1.0);
  EXPECT_DEATH(stride.AddJob(JobId(0), 1, 1.0), "already");
  EXPECT_DEATH(stride.RemoveJob(JobId(9)), "unknown");
  EXPECT_DEATH(stride.Charge(JobId(9), 1), "unknown");
}

}  // namespace
}  // namespace gfair::sched
