#include "sched/cluster_state_index.h"

#include <gtest/gtest.h>

#include "cluster/cluster.h"

namespace gfair::sched {
namespace {

using cluster::GpuGeneration;

cluster::Cluster MakeCluster() {
  // Servers 0-2: V100 x4 GPUs. Servers 3-4: K80 x8 GPUs.
  cluster::Topology topology{{
      cluster::ServerGroup{GpuGeneration::kV100, 3, 4},
      cluster::ServerGroup{GpuGeneration::kK80, 2, 8},
  }};
  return cluster::Cluster(topology);
}

TEST(ClusterStateIndexTest, LeastLoadedTracksMutationsLazily) {
  const cluster::Cluster cluster = MakeCluster();
  ClusterStateIndex index(cluster, StrideConfig{});

  // All loads zero: ties resolve to the lowest server id.
  EXPECT_EQ(index.LeastLoadedServer(GpuGeneration::kV100, 1), ServerId(0));
  EXPECT_EQ(index.LeastLoadedServer(GpuGeneration::kK80, 1), ServerId(3));

  index.AddJob(ServerId(0), JobId(1), 2, 4.0);  // norm load 1.0
  EXPECT_EQ(index.LeastLoadedServer(GpuGeneration::kV100, 1), ServerId(1));
  index.AddJob(ServerId(1), JobId(2), 1, 1.0);  // norm load 0.25
  EXPECT_EQ(index.LeastLoadedServer(GpuGeneration::kV100, 1), ServerId(2));
  index.AddJob(ServerId(2), JobId(3), 1, 2.0);  // norm load 0.5
  EXPECT_EQ(index.LeastLoadedServer(GpuGeneration::kV100, 1), ServerId(1));

  // Ticket updates reposition (lazily — the query must see the new order).
  index.SetTickets(ServerId(0), JobId(1), 0.4);  // norm load 0.1
  EXPECT_EQ(index.LeastLoadedServer(GpuGeneration::kV100, 1), ServerId(0));
  EXPECT_DOUBLE_EQ(index.NormTicketLoad(ServerId(0)), 0.1);

  // Removal drops the load back to zero.
  index.RemoveJob(ServerId(1), JobId(2));
  EXPECT_EQ(index.LeastLoadedServer(GpuGeneration::kV100, 1), ServerId(1));
}

TEST(ClusterStateIndexTest, QueryFiltersExcludeDrainingAndCapacity) {
  const cluster::Cluster cluster = MakeCluster();
  ClusterStateIndex index(cluster, StrideConfig{});

  // exclude
  EXPECT_EQ(index.LeastLoadedServer(GpuGeneration::kV100, 1, ServerId(0)), ServerId(1));
  // min_gpus: no V100 server has 8 GPUs
  EXPECT_EQ(index.LeastLoadedServer(GpuGeneration::kV100, 8), ServerId::Invalid());
  EXPECT_EQ(index.LeastLoadedServer(GpuGeneration::kK80, 8), ServerId(3));

  // draining servers never qualify
  EXPECT_FALSE(index.AnyDraining());
  index.SetDraining(ServerId(3), true);
  EXPECT_TRUE(index.AnyDraining());
  EXPECT_TRUE(index.draining(ServerId(3)));
  EXPECT_EQ(index.LeastLoadedServer(GpuGeneration::kK80, 1), ServerId(4));
  index.SetDraining(ServerId(4), true);
  EXPECT_EQ(index.LeastLoadedServer(GpuGeneration::kK80, 1), ServerId::Invalid());
  index.SetDraining(ServerId(3), false);
  index.SetDraining(ServerId(4), false);
  EXPECT_FALSE(index.AnyDraining());
  // Repeated SetDraining with the same value must not skew the counter.
  index.SetDraining(ServerId(3), false);
  EXPECT_FALSE(index.AnyDraining());
}

TEST(ClusterStateIndexTest, PoolOrderingStaysSorted) {
  const cluster::Cluster cluster = MakeCluster();
  ClusterStateIndex index(cluster, StrideConfig{});
  index.AddJob(ServerId(0), JobId(1), 1, 8.0);
  index.AddJob(ServerId(1), JobId(2), 1, 2.0);
  index.AddJob(ServerId(2), JobId(3), 1, 4.0);

  const auto& pool = index.pool_by_load(GpuGeneration::kV100);
  ASSERT_EQ(pool.size(), 3u);
  double prev = -1.0;
  for (const auto& [load, id] : pool) {
    EXPECT_GE(load, prev);
    EXPECT_DOUBLE_EQ(load, index.NormTicketLoad(id));
    prev = load;
  }
  EXPECT_EQ(pool.begin()->second, ServerId(1));
}

}  // namespace
}  // namespace gfair::sched
