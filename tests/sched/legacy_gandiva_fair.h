// LegacyGandivaFairScheduler — frozen copy of the pre-refactor monolith.
//
// This is the "seed" implementation of the paper's scheduler, preserved as a
// test oracle: the refactored subsystem-based GandivaFairScheduler must make
// bit-identical decisions, which the equivalence test checks by running both
// implementations over the same fixed-seed scenario and comparing their
// DecisionLog streams entry by entry. Keeping the oracle as live code (rather
// than golden data files) makes the comparison robust to platform differences
// in hash-container iteration order, which both implementations share.
//
// Do not evolve this class; it deliberately retains the old recompute-on-
// demand aggregate structure.
#ifndef GFAIR_TESTS_SCHED_LEGACY_GANDIVA_FAIR_H_
#define GFAIR_TESTS_SCHED_LEGACY_GANDIVA_FAIR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sched/decision_log.h"
#include "sched/gandiva_fair.h"  // GandivaFairConfig
#include "sched/ledger.h"
#include "sched/profiler.h"
#include "sched/scheduler_iface.h"
#include "sched/snapshot.h"
#include "sched/stride.h"
#include "sched/policy/greedy_trade_policy.h"
#include "sched/ticket_matrix.h"
#include "sched/trade.h"

namespace gfair::sched {

class LegacyGandivaFairScheduler : public IScheduler {
 public:
  LegacyGandivaFairScheduler(const SchedulerEnv& env, GandivaFairConfig config);

  void Start() override;
  void Submit(JobId id) override;
  void OnJobFinished(JobId id) override;
  void OnMigrationDone(JobId id) override;
  std::string name() const override { return "LegacyGandivaFair"; }
  FairnessLedger& policy_ledger() override { return ledger_; }

  const std::vector<Trade>& executed_trades() const { return executed_trades_; }
  int64_t migrations_started() const { return migrations_started_; }
  int64_t steals_started() const { return steals_started_; }
  const DecisionLog& decisions() const { return decisions_; }
  const LocalStrideScheduler& stride_for(ServerId server) const;
  double EntitlementGpus(UserId user, cluster::GpuGeneration gen) const;
  double ResidentDemand(UserId user, cluster::GpuGeneration gen) const;

  ClusterSnapshot Snapshot() const;

  void DrainServer(ServerId server);
  void UndrainServer(ServerId server);
  bool IsDraining(ServerId server) const;

 private:
  struct JobInfo {
    ServerId home = ServerId::Invalid();
    SimTime last_charge = kTimeZero;
    SimTime last_migration;
    bool migrating = false;
  };

  LocalStrideScheduler& StrideFor(ServerId server);
  cluster::GpuGeneration GenOf(ServerId server) const;
  JobInfo& InfoFor(JobId id);

  void QuantumTick();
  void BalanceTick();
  void TradeTick();

  void ChargeRunningOn(ServerId server);
  void ApplyTargetSet(ServerId server);
  void FillIdleGpus(ServerId server);
  void CollectSamples(ServerId server);

  ServerId ChoosePlacement(const workload::Job& job) const;
  void StartMigration(JobId id, ServerId dest, MigrationCause cause);
  void TrySteal(ServerId server);
  void AttachResident(JobId id, ServerId server);
  void DetachResident(JobId id);

  void ApplyHierarchy();
  double PerJobTickets(UserId user, cluster::GpuGeneration gen,
                       const workload::Job& job) const;
  double WeightedResidentDemand(UserId user, cluster::GpuGeneration gen) const;
  void RefreshPoolTickets(UserId user, cluster::GpuGeneration gen);
  void RefreshAllTickets();

  void DrainTick();

  std::vector<UserId> ActiveUsers() const;
  bool UserSpeedup(UserId user, cluster::GpuGeneration fast, cluster::GpuGeneration slow,
                   double* out) const;
  void RunProbes();
  void RebalanceResidency(const TradeOutcome& outcome);

  SchedulerEnv env_;
  GandivaFairConfig config_;

  std::vector<LocalStrideScheduler> strides_;
  FairnessLedger ledger_;
  ProfileStore profiles_;
  TicketMatrix ticket_matrix_;
  // The oracle pins the DEFAULT backend: the greedy exchange, held directly
  // (the registry indirection is part of the refactor under test).
  GreedyTradePolicy trading_;
  std::vector<Trade> executed_trades_;

  std::unordered_map<JobId, JobInfo> job_info_;
  std::unordered_map<UserId, cluster::PerGeneration<std::unordered_set<JobId>>>
      user_pool_jobs_;
  std::unordered_map<UserId, int> user_unfinished_jobs_;
  std::unordered_map<UserId, double> user_total_demand_;

  int64_t migrations_started_ = 0;
  int64_t probes_started_ = 0;
  int64_t steals_started_ = 0;
  DecisionLog decisions_;
  std::vector<SimTime> last_steal_;
  std::vector<bool> draining_;
};

}  // namespace gfair::sched

#endif  // GFAIR_TESTS_SCHED_LEGACY_GANDIVA_FAIR_H_
