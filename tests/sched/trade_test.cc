#include "sched/policy/greedy_trade_policy.h"

#include <gtest/gtest.h>

#include <cmath>

namespace gfair::sched {
namespace {

using cluster::GenerationIndex;
using cluster::GpuGeneration;

constexpr size_t kK80 = static_cast<size_t>(GpuGeneration::kK80);
constexpr size_t kV100 = static_cast<size_t>(GpuGeneration::kV100);

// Two-user fixture: a low-speedup lender (1.2x) and a high-speedup borrower
// (6x) sharing 32 K80 + 32 V100.
TradeInputs TwoUserInputs(double lender_speedup = 1.2, double borrower_speedup = 6.0,
                          double lender_demand = 64.0, double borrower_demand = 64.0) {
  TradeInputs inputs;
  inputs.active_users = {UserId(0), UserId(1)};
  inputs.base_tickets[UserId(0)] = 1.0;
  inputs.base_tickets[UserId(1)] = 1.0;
  inputs.total_demand_gpus[UserId(0)] = lender_demand;
  inputs.total_demand_gpus[UserId(1)] = borrower_demand;
  inputs.pool_sizes[kK80] = 32;
  inputs.pool_sizes[kV100] = 32;
  inputs.user_speedup = [=](UserId user, GpuGeneration fast, GpuGeneration slow,
                            Speedup* out) {
    if (fast != GpuGeneration::kV100 || slow != GpuGeneration::kK80) {
      return false;
    }
    *out = Speedup::FromRatio(user == UserId(0) ? lender_speedup : borrower_speedup);
    return true;
  };
  return inputs;
}

// Throughput of a user's entitlement in K80-equivalents given its speedup.
double ValueOf(const cluster::PerGeneration<double>& ent, double speedup) {
  return ent[kK80] + speedup * ent[kV100];
}

TEST(TradeTest, NoUsersNoTrades) {
  GreedyTradePolicy engine(TradeConfig{});
  const TradeOutcome outcome = engine.Allocate(TradeInputs{});
  EXPECT_TRUE(outcome.trades.empty());
  EXPECT_TRUE(outcome.entitlements.empty());
}

TEST(TradeTest, BaseEntitlementsAreTicketProportional) {
  GreedyTradePolicy engine(TradeConfig{});
  TradeInputs inputs = TwoUserInputs();
  inputs.base_tickets[UserId(1)] = 3.0;
  inputs.user_speedup = [](UserId, GpuGeneration, GpuGeneration, Speedup*) {
    return false;  // no profiles -> no trades, pure base split
  };
  const TradeOutcome outcome = engine.Allocate(inputs);
  EXPECT_TRUE(outcome.trades.empty());
  EXPECT_DOUBLE_EQ(outcome.entitlements.at(UserId(0))[kV100], 8.0);
  EXPECT_DOUBLE_EQ(outcome.entitlements.at(UserId(1))[kV100], 24.0);
  EXPECT_DOUBLE_EQ(outcome.entitlements.at(UserId(0))[kK80], 8.0);
}

TEST(TradeTest, WinWinTradeHappens) {
  GreedyTradePolicy engine(TradeConfig{});
  const TradeOutcome outcome = engine.Allocate(TwoUserInputs());
  ASSERT_FALSE(outcome.trades.empty());
  const Trade& trade = outcome.trades[0];
  EXPECT_EQ(trade.lender, UserId(0));
  EXPECT_EQ(trade.borrower, UserId(1));
  EXPECT_EQ(trade.fast, GpuGeneration::kV100);
  EXPECT_EQ(trade.slow, GpuGeneration::kK80);
  // Paper's rate rule: lambda = borrower speedup, less the friction margin.
  EXPECT_DOUBLE_EQ(trade.rate.raw(), 6.0 * 0.95);
  EXPECT_DOUBLE_EQ(trade.slow_gpus, trade.fast_gpus * trade.rate.raw());
}

TEST(TradeTest, NoTradeWhenLenderSpeedupMeetsBorrowers) {
  // With a permissive min_speedup_gap (< 1) the gap check alone no longer
  // rejects pairings where the borrower's speedup is at or below the
  // lender's. RateFor would clamp such a trade's rate to (or past) the
  // borrower's entire speedup — at or below the lender's breakeven — so one
  // side cannot gain; Allocate must skip the pairing entirely.
  TradeConfig config;
  config.min_speedup_gap = 0.5;
  GreedyTradePolicy engine(config);

  // Identical speedups: zero surplus to split, no trade. Without the guard
  // the engine would strike a trade at rate == both speedups, leaving the
  // borrower exactly flat — pointless churn.
  const TradeOutcome identical = engine.Allocate(TwoUserInputs(2.0, 2.0));
  EXPECT_TRUE(identical.trades.empty());

  // Roles come from the speedup ordering, not the argument order: when the
  // "lender" argument has the higher speedup (3.0 vs 2.0) the engine swaps
  // the pair and still finds a genuine win-win trade.
  const TradeOutcome swapped = engine.Allocate(TwoUserInputs(3.0, 2.0));
  ASSERT_FALSE(swapped.trades.empty());
  EXPECT_EQ(swapped.trades[0].lender, UserId(1));
  EXPECT_EQ(swapped.trades[0].borrower, UserId(0));
  EXPECT_GT(swapped.trades[0].rate.raw(), 2.0);
  EXPECT_LE(swapped.trades[0].rate.raw(), 3.0);

  // Sanity: the same permissive config still trades when there is a genuine
  // surplus, and at a rate strictly between the two speedups.
  const TradeOutcome genuine = engine.Allocate(TwoUserInputs(1.2, 6.0));
  ASSERT_FALSE(genuine.trades.empty());
  EXPECT_GT(genuine.trades[0].rate.raw(), 1.2);
  EXPECT_LE(genuine.trades[0].rate.raw(), 6.0);
}

TEST(TradeTest, NoUserWorseOff) {
  // The fairness guarantee: post-trade entitlement value (in each user's own
  // K80-equivalents) must be >= pre-trade value.
  GreedyTradePolicy engine(TradeConfig{});
  const TradeInputs inputs = TwoUserInputs();
  const TradeOutcome outcome = engine.Allocate(inputs);
  ASSERT_FALSE(outcome.trades.empty());
  // Pre-trade: 16 K80 + 16 V100 each.
  const double lender_before = 16.0 + 1.2 * 16.0;
  const double borrower_before = 16.0 + 6.0 * 16.0;
  const double lender_after = ValueOf(outcome.entitlements.at(UserId(0)), 1.2);
  const double borrower_after = ValueOf(outcome.entitlements.at(UserId(1)), 6.0);
  EXPECT_GE(lender_after, lender_before - 1e-9);
  EXPECT_GE(borrower_after, borrower_before - 1e-9);
  // And the lender strictly gains under the borrower-speedup rate rule.
  EXPECT_GT(lender_after, lender_before + 1.0);
}

TEST(TradeTest, AggregateThroughputIncreases) {
  GreedyTradePolicy engine(TradeConfig{});
  const TradeOutcome outcome = engine.Allocate(TwoUserInputs());
  const double before = (16.0 + 1.2 * 16.0) + (16.0 + 6.0 * 16.0);
  const double after = ValueOf(outcome.entitlements.at(UserId(0)), 1.2) +
                       ValueOf(outcome.entitlements.at(UserId(1)), 6.0);
  EXPECT_GT(after, before);
}

TEST(TradeTest, EntitlementsConserveEachPool) {
  GreedyTradePolicy engine(TradeConfig{});
  const TradeOutcome outcome = engine.Allocate(TwoUserInputs());
  for (size_t g : {kK80, kV100}) {
    double total = 0.0;
    for (const auto& [user, ent] : outcome.entitlements) {
      EXPECT_GE(ent[g], -1e-9);
      total += ent[g];
    }
    EXPECT_NEAR(total, 32.0, 1e-9);
  }
}

TEST(TradeTest, NoTradeWithoutSpeedupGap) {
  GreedyTradePolicy engine(TradeConfig{});
  const TradeOutcome outcome =
      engine.Allocate(TwoUserInputs(/*lender=*/3.0, /*borrower=*/3.2));
  EXPECT_TRUE(outcome.trades.empty());  // 3.2 < 3.0 * 1.15
}

TEST(TradeTest, NoTradeWithoutLenderSpareDemand) {
  // Lender demand 20 < its entitlement 32: extra slow GPUs are useless to it,
  // so it should not lend.
  GreedyTradePolicy engine(TradeConfig{});
  const TradeOutcome outcome =
      engine.Allocate(TwoUserInputs(1.2, 6.0, /*lender_demand=*/20.0));
  EXPECT_TRUE(outcome.trades.empty());
}

TEST(TradeTest, NoTradeWithoutBorrowerFastDemand) {
  // Borrower demand 10 < its fast entitlement 16: it has no unmet fast need.
  GreedyTradePolicy engine(TradeConfig{});
  const TradeOutcome outcome =
      engine.Allocate(TwoUserInputs(1.2, 6.0, 64.0, /*borrower_demand=*/10.0));
  EXPECT_TRUE(outcome.trades.empty());
}

TEST(TradeTest, VolumeCappedByBorrowerSlowHoldings) {
  // Borrower pays rate x volume slow GPUs; it only holds 16.
  GreedyTradePolicy engine(TradeConfig{});
  const TradeOutcome outcome = engine.Allocate(TwoUserInputs());
  double borrower_k80 = outcome.entitlements.at(UserId(1))[kK80];
  EXPECT_GE(borrower_k80, -1e-9);
}

TEST(TradeTest, GeometricMeanRateSplitsSurplus) {
  TradeConfig config;
  config.rate_rule = TradeConfig::RateRule::kGeometricMean;
  GreedyTradePolicy engine(config);
  const TradeOutcome outcome = engine.Allocate(TwoUserInputs(1.5, 6.0));
  ASSERT_FALSE(outcome.trades.empty());
  EXPECT_NEAR(outcome.trades[0].rate.raw(), std::sqrt(1.5 * 6.0), 1e-9);
  // Both parties strictly gain under the geometric rule.
  const double lender_after = ValueOf(outcome.entitlements.at(UserId(0)), 1.5);
  const double borrower_after = ValueOf(outcome.entitlements.at(UserId(1)), 6.0);
  EXPECT_GT(lender_after, 16.0 + 1.5 * 16.0);
  EXPECT_GT(borrower_after, 16.0 + 6.0 * 16.0);
}

TEST(TradeTest, MinTradeVolumeFiltersDust) {
  TradeConfig config;
  config.min_trade_gpus = 100.0;  // absurdly high
  GreedyTradePolicy engine(config);
  EXPECT_TRUE(engine.Allocate(TwoUserInputs()).trades.empty());
}

TEST(TradeTest, ThreeUsersBestPairTradesFirst) {
  TradeInputs inputs;
  inputs.active_users = {UserId(0), UserId(1), UserId(2)};
  for (UserId user : inputs.active_users) {
    inputs.base_tickets[user] = 1.0;
    inputs.total_demand_gpus[user] = 90.0;
  }
  inputs.pool_sizes[kK80] = 30;
  inputs.pool_sizes[kV100] = 30;
  inputs.user_speedup = [](UserId user, GpuGeneration fast, GpuGeneration slow,
                           Speedup* out) {
    if (fast != GpuGeneration::kV100 || slow != GpuGeneration::kK80) {
      return false;
    }
    const double speedups[] = {1.2, 3.0, 6.0};
    *out = Speedup::FromRatio(speedups[user.value()]);
    return true;
  };
  GreedyTradePolicy engine(TradeConfig{});
  const TradeOutcome outcome = engine.Allocate(inputs);
  ASSERT_FALSE(outcome.trades.empty());
  // The extreme pair (0 lends to 2) must trade first.
  EXPECT_EQ(outcome.trades[0].lender, UserId(0));
  EXPECT_EQ(outcome.trades[0].borrower, UserId(2));
}

TEST(TradeTest, EmptyPoolPairSkipped) {
  TradeInputs inputs = TwoUserInputs();
  inputs.pool_sizes[kK80] = 0;  // only V100 exists: no pair to trade across
  GreedyTradePolicy engine(TradeConfig{});
  EXPECT_TRUE(engine.Allocate(inputs).trades.empty());
}

}  // namespace
}  // namespace gfair::sched
