#include "sched/hierarchy.h"

#include <gtest/gtest.h>

#include "analysis/harness.h"

namespace gfair::sched {
namespace {

TEST(HierarchyMathTest, UngroupedUsersKeepBaseTickets) {
  workload::UserTable users;
  const UserId a = users.Create("a", 2.0).id;
  const UserId b = users.Create("b", 1.0).id;
  const auto effective = ComputeHierarchicalTickets(users, {a, b});
  EXPECT_DOUBLE_EQ(effective.at(a).raw(), 2.0);
  EXPECT_DOUBLE_EQ(effective.at(b).raw(), 1.0);
}

TEST(HierarchyMathTest, ActiveMemberInheritsIdleTeammatesShare) {
  workload::UserTable users;
  const UserId a1 = users.CreateInGroup("a1", "team-a", 1.0).id;
  users.CreateInGroup("a2", "team-a", 1.0);
  const UserId b1 = users.CreateInGroup("b1", "team-b", 1.0).id;
  // a2 idle: a1 carries team-a's full weight of 2.
  const auto effective = ComputeHierarchicalTickets(users, {a1, b1});
  EXPECT_DOUBLE_EQ(effective.at(a1).raw(), 2.0);
  EXPECT_DOUBLE_EQ(effective.at(b1).raw(), 1.0);
}

TEST(HierarchyMathTest, FullGroupSplitsEvenly) {
  workload::UserTable users;
  const UserId a1 = users.CreateInGroup("a1", "team-a", 1.0).id;
  const UserId a2 = users.CreateInGroup("a2", "team-a", 1.0).id;
  const UserId b1 = users.CreateInGroup("b1", "team-b", 1.0).id;
  const auto effective = ComputeHierarchicalTickets(users, {a1, a2, b1});
  EXPECT_DOUBLE_EQ(effective.at(a1).raw(), 1.0);
  EXPECT_DOUBLE_EQ(effective.at(a2).raw(), 1.0);
  EXPECT_DOUBLE_EQ(effective.at(b1).raw(), 1.0);
}

TEST(HierarchyMathTest, IntraGroupWeightsRespected) {
  workload::UserTable users;
  const UserId a1 = users.CreateInGroup("a1", "team-a", 3.0).id;
  const UserId a2 = users.CreateInGroup("a2", "team-a", 1.0).id;
  const auto effective = ComputeHierarchicalTickets(users, {a1, a2});
  // Group weight 4 split 3:1.
  EXPECT_DOUBLE_EQ(effective.at(a1).raw(), 3.0);
  EXPECT_DOUBLE_EQ(effective.at(a2).raw(), 1.0);
  // a2 alone: carries the whole group weight.
  const auto solo = ComputeHierarchicalTickets(users, {a2});
  EXPECT_DOUBLE_EQ(solo.at(a2).raw(), 4.0);
}

TEST(HierarchyMathTest, MixedGroupedAndUngrouped) {
  workload::UserTable users;
  const UserId solo = users.Create("solo", 2.0).id;
  const UserId a1 = users.CreateInGroup("a1", "team-a", 1.0).id;
  users.CreateInGroup("a2", "team-a", 3.0);
  const auto effective = ComputeHierarchicalTickets(users, {solo, a1});
  EXPECT_DOUBLE_EQ(effective.at(solo).raw(), 2.0);
  EXPECT_DOUBLE_EQ(effective.at(a1).raw(), 4.0);  // whole team-a weight
}

TEST(HierarchyIntegrationTest, GroupShareIndependentOfHeadcount) {
  // team-a has two active users, team-b one; equal provisioned weight per
  // member means team-a's weight is 2 and team-b's 1 — so the three active
  // users split the server 1:1:1 (b1 does NOT get half).
  analysis::ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(1, 6);
  analysis::Experiment exp(config);
  auto& a1 = exp.users().CreateInGroup("a1", "team-a", 1.0);
  auto& a2 = exp.users().CreateInGroup("a2", "team-a", 1.0);
  auto& b1 = exp.users().CreateInGroup("b1", "team-b", 1.0);
  exp.UseGandivaFair({});
  for (int i = 0; i < 6; ++i) {
    exp.SubmitAt(kTimeZero, a1.id, "DCGAN", 1, Hours(1000));
    exp.SubmitAt(kTimeZero, a2.id, "DCGAN", 1, Hours(1000));
    exp.SubmitAt(kTimeZero, b1.id, "DCGAN", 1, Hours(1000));
  }
  exp.Run(Hours(4));
  const double a1_ms = exp.ledger().GpuMs(a1.id, Hours(1), Hours(4));
  const double a2_ms = exp.ledger().GpuMs(a2.id, Hours(1), Hours(4));
  const double b1_ms = exp.ledger().GpuMs(b1.id, Hours(1), Hours(4));
  EXPECT_NEAR(a1_ms / b1_ms, 1.0, 0.08);
  EXPECT_NEAR(a2_ms / b1_ms, 1.0, 0.08);
}

TEST(HierarchyIntegrationTest, LoneActiveMemberCarriesGroupWeight) {
  // Same teams, but a2 never submits: a1 inherits team-a's weight of 2 and
  // gets twice b1's GPU time.
  analysis::ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(1, 6);
  analysis::Experiment exp(config);
  auto& a1 = exp.users().CreateInGroup("a1", "team-a", 1.0);
  exp.users().CreateInGroup("a2", "team-a", 1.0);
  auto& b1 = exp.users().CreateInGroup("b1", "team-b", 1.0);
  exp.UseGandivaFair({});
  for (int i = 0; i < 6; ++i) {
    exp.SubmitAt(kTimeZero, a1.id, "DCGAN", 1, Hours(1000));
    exp.SubmitAt(kTimeZero, b1.id, "DCGAN", 1, Hours(1000));
  }
  exp.Run(Hours(4));
  const double a1_ms = exp.ledger().GpuMs(a1.id, Hours(1), Hours(4));
  const double b1_ms = exp.ledger().GpuMs(b1.id, Hours(1), Hours(4));
  EXPECT_NEAR(a1_ms / b1_ms, 2.0, 0.2);
}

TEST(HierarchyIntegrationTest, SharesAdaptWhenTeammateJoins) {
  analysis::ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(1, 8);
  analysis::Experiment exp(config);
  auto& a1 = exp.users().CreateInGroup("a1", "team-a", 1.0);
  auto& a2 = exp.users().CreateInGroup("a2", "team-a", 1.0);
  auto& b1 = exp.users().CreateInGroup("b1", "team-b", 2.0);
  exp.UseGandivaFair({});
  for (int i = 0; i < 8; ++i) {
    exp.SubmitAt(kTimeZero, a1.id, "DCGAN", 1, Hours(1000));
    exp.SubmitAt(kTimeZero, b1.id, "DCGAN", 1, Hours(1000));
    exp.SubmitAt(Hours(2), a2.id, "DCGAN", 1, Hours(1000));
  }
  exp.Run(Hours(4));
  // Phase 1: a1 carries team-a (weight 2) vs b1 (weight 2) -> 4/4 GPUs.
  const double a1_phase1 = exp.ledger().GpuMs(a1.id, Hours(1), Hours(2)) / kHour;
  EXPECT_NEAR(a1_phase1, 4.0, 0.4);
  // Phase 2: team-a splits into 1+1 vs b1's 2 -> 2/2/4 GPUs.
  const double a1_phase2 = exp.ledger().GpuMs(a1.id, Hours(3), Hours(4)) / kHour;
  const double a2_phase2 = exp.ledger().GpuMs(a2.id, Hours(3), Hours(4)) / kHour;
  const double b1_phase2 = exp.ledger().GpuMs(b1.id, Hours(3), Hours(4)) / kHour;
  EXPECT_NEAR(a1_phase2, 2.0, 0.3);
  EXPECT_NEAR(a2_phase2, 2.0, 0.3);
  EXPECT_NEAR(b1_phase2, 4.0, 0.4);
}

TEST(HierarchyIntegrationTest, DisabledFlagFallsBackToFlatSharing) {
  analysis::ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(1, 6);
  analysis::Experiment exp(config);
  auto& a1 = exp.users().CreateInGroup("a1", "team-a", 1.0);
  exp.users().CreateInGroup("a2", "team-a", 1.0);
  auto& b1 = exp.users().CreateInGroup("b1", "team-b", 1.0);
  sched::GandivaFairConfig sched_config;
  sched_config.enable_hierarchical_sharing = false;
  exp.UseGandivaFair(sched_config);
  for (int i = 0; i < 6; ++i) {
    exp.SubmitAt(kTimeZero, a1.id, "DCGAN", 1, Hours(1000));
    exp.SubmitAt(kTimeZero, b1.id, "DCGAN", 1, Hours(1000));
  }
  exp.Run(Hours(4));
  // Flat: a1 and b1 split evenly despite a2's idle provisioned weight.
  const double a1_ms = exp.ledger().GpuMs(a1.id, Hours(1), Hours(4));
  const double b1_ms = exp.ledger().GpuMs(b1.id, Hours(1), Hours(4));
  EXPECT_NEAR(a1_ms / b1_ms, 1.0, 0.08);
}

}  // namespace
}  // namespace gfair::sched
