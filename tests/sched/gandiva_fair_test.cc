// Integration-level tests of GandivaFairScheduler through the harness.
#include "sched/gandiva_fair.h"

#include <gtest/gtest.h>

#include "analysis/harness.h"
#include "analysis/metrics.h"
#include "common/stats.h"

namespace gfair::sched {
namespace {

using analysis::Experiment;
using analysis::ExperimentConfig;
using cluster::GpuGeneration;

TEST(GandivaFairTest, SingleJobRunsImmediatelyAndFinishes) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(1, 8);
  Experiment exp(config);
  auto& user = exp.users().Create("u");
  exp.UseGandivaFair({});
  const JobId id = exp.SubmitAt(kTimeZero, user.id, "DCGAN", 2, Minutes(30));
  exp.Run(Hours(1));
  const auto& job = exp.jobs().Get(id);
  EXPECT_TRUE(job.finished());
  // DCGAN 3.125x on V100: ~9.6 min of work, plus warmup.
  EXPECT_LT(job.finish_time, Minutes(12));
}

TEST(GandivaFairTest, EqualTicketsEqualGpuTime) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(1, 8);
  Experiment exp(config);
  auto& a = exp.users().Create("a", 1.0);
  auto& b = exp.users().Create("b", 1.0);
  exp.UseGandivaFair({});
  // Both oversubscribe: a with 2x4-GPU gangs, b with 8x1-GPU jobs.
  exp.SubmitAt(kTimeZero, a.id, "ResNet-50", 4, Hours(100));
  exp.SubmitAt(kTimeZero, a.id, "ResNet-50", 4, Hours(100));
  for (int i = 0; i < 8; ++i) {
    exp.SubmitAt(kTimeZero, b.id, "DCGAN", 1, Hours(100));
  }
  exp.Run(Hours(6));
  const double a_ms = exp.ledger().GpuMs(a.id, kTimeZero, Hours(6));
  const double b_ms = exp.ledger().GpuMs(b.id, kTimeZero, Hours(6));
  EXPECT_NEAR(a_ms / b_ms, 1.0, 0.05);
}

TEST(GandivaFairTest, GpuTimeProportionalToTickets) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(1, 8);
  Experiment exp(config);
  auto& a = exp.users().Create("a", 1.0);
  auto& b = exp.users().Create("b", 3.0);
  exp.UseGandivaFair({});
  for (int i = 0; i < 8; ++i) {
    exp.SubmitAt(kTimeZero, a.id, "DCGAN", 1, Hours(100));
    exp.SubmitAt(kTimeZero, b.id, "DCGAN", 1, Hours(100));
  }
  exp.Run(Hours(6));
  const double a_ms = exp.ledger().GpuMs(a.id, kTimeZero, Hours(6));
  const double b_ms = exp.ledger().GpuMs(b.id, kTimeZero, Hours(6));
  EXPECT_NEAR(b_ms / a_ms, 3.0, 0.15);
}

TEST(GandivaFairTest, WorkConservationWhenOtherUserIdle) {
  // A user with demand for the whole cluster gets the whole cluster when
  // alone, regardless of shares.
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(1, 4);
  Experiment exp(config);
  auto& a = exp.users().Create("a", 1.0);
  exp.users().Create("idle-user", 99.0);
  exp.UseGandivaFair({});
  for (int i = 0; i < 4; ++i) {
    exp.SubmitAt(kTimeZero, a.id, "DCGAN", 1, Hours(100));
  }
  exp.Run(Hours(2));
  const double a_ms = exp.ledger().GpuMs(a.id, kTimeZero, Hours(2));
  EXPECT_GT(a_ms / (4.0 * Hours(2)), 0.97);
}

TEST(GandivaFairTest, ShareAdaptsWhenUserJoins) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(1, 8);
  Experiment exp(config);
  auto& a = exp.users().Create("a", 1.0);
  auto& b = exp.users().Create("b", 1.0);
  exp.UseGandivaFair({});
  for (int i = 0; i < 8; ++i) {
    exp.SubmitAt(kTimeZero, a.id, "DCGAN", 1, Hours(200));
  }
  for (int i = 0; i < 8; ++i) {
    exp.SubmitAt(Hours(2), b.id, "DCGAN", 1, Hours(200));
  }
  exp.Run(Hours(4));
  // Phase 1 (0-2h): a alone -> ~16 GPU-hours. Phase 2 (2-4h): split -> ~8 each.
  const double a_phase1 = exp.ledger().GpuMs(a.id, kTimeZero, Hours(2)) / kHour;
  const double a_phase2 = exp.ledger().GpuMs(a.id, Hours(2), Hours(4)) / kHour;
  const double b_phase2 = exp.ledger().GpuMs(b.id, Hours(2), Hours(4)) / kHour;
  EXPECT_NEAR(a_phase1, 16.0, 0.8);
  EXPECT_NEAR(a_phase2, 8.0, 0.8);
  EXPECT_NEAR(b_phase2, 8.0, 0.8);
}

TEST(GandivaFairTest, GangScheduledAtomically) {
  // A 4-GPU gang must always hold exactly 0 or 4 GPUs.
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(1, 8);
  Experiment exp(config);
  auto& a = exp.users().Create("a");
  exp.UseGandivaFair({});
  const JobId gang = exp.SubmitAt(kTimeZero, a.id, "ResNet-50", 4, Hours(50));
  for (int i = 0; i < 6; ++i) {
    exp.SubmitAt(Minutes(i), a.id, "DCGAN", 1, Hours(50));
  }
  for (int step = 1; step <= 120; ++step) {
    exp.Run(Minutes(step));
    int held = 0;
    for (const auto& server : exp.cluster().servers()) {
      held += server.CountHeldBy(gang);
    }
    EXPECT_TRUE(held == 0 || held == 4) << "at minute " << step << ": " << held;
  }
}

TEST(GandivaFairTest, LoadBalancerEvensOutTicketLoad) {
  // Placement spreads arrivals, but staggered finishes skew per-server load;
  // the balancer must migrate jobs to repair it. Jobs finishing in server
  // order (all of server 0's first, etc.) force the skew deterministically.
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(4, 4);
  Experiment exp(config);
  auto& a = exp.users().Create("a");
  GandivaFairConfig sched_config;
  sched_config.min_migration_interval = Minutes(2);
  sched_config.balance_period = Minutes(5);
  exp.UseGandivaFair(sched_config);
  // 16 1-GPU jobs placed round-robin (4 per server). Durations arranged so
  // jobs on low-numbered servers finish early: i-th job lands on server i%4
  // and runs (i%4+1) long blocks.
  for (int i = 0; i < 16; ++i) {
    const int server = i % 4;
    exp.SubmitAt(Seconds(i), a.id, "DCGAN", 1,
                 server < 2 ? Minutes(30) : Hours(200));
  }
  exp.Run(Hours(3));
  // Eight long jobs survive on servers 2-3 unless the balancer spreads them.
  EXPECT_GT(exp.gandiva()->migrations_started(), 0);
  int max_resident = 0;
  int min_resident = 99;
  for (const auto& server : exp.cluster().servers()) {
    int resident = 0;
    for (const auto* job : exp.jobs().All()) {
      if (!job->finished() && job->server == server.id()) {
        ++resident;
      }
    }
    max_resident = std::max(max_resident, resident);
    min_resident = std::min(min_resident, resident);
  }
  EXPECT_LE(max_resident - min_resident, 1);
}

TEST(GandivaFairTest, ProfilerLearnsRatesOnHomeGeneration) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(1, 4);
  Experiment exp(config);
  auto& a = exp.users().Create("a");
  exp.UseGandivaFair({});
  exp.SubmitAt(kTimeZero, a.id, "DCGAN", 1, Hours(50));
  exp.Run(Hours(1));
  const auto& zoo = exp.zoo();
  const auto model = zoo.GetByName("DCGAN").id;
  const auto& profiles = exp.gandiva()->profiles();
  ASSERT_TRUE(profiles.HasEstimate(model, GpuGeneration::kV100));
  EXPECT_NEAR(profiles.EstimatedRate(model, GpuGeneration::kV100).raw(), 50.0, 2.5);
}

TEST(GandivaFairTest, TradingImprovesLenderWithoutHurtingBorrower) {
  auto run = [](bool trading) {
    ExperimentConfig config;
    config.topology = cluster::Topology{{
        {GpuGeneration::kK80, 2, 8},
        {GpuGeneration::kV100, 2, 8},
    }};
    config.seed = 11;
    auto exp = std::make_unique<Experiment>(config);
    auto& vae_user = exp->users().Create("vae", 1.0);
    auto& rex_user = exp->users().Create("rex", 1.0);
    GandivaFairConfig sched_config;
    sched_config.enable_trading = trading;
    exp->UseGandivaFair(sched_config);
    for (int i = 0; i < 24; ++i) {
      exp->SubmitAt(Minutes(2 * i), vae_user.id, "VAE", 1, Hours(60));
      exp->SubmitAt(Minutes(2 * i + 1), rex_user.id, "ResNeXt-50", 1, Hours(60));
    }
    exp->Run(Hours(8));
    const auto summaries = analysis::SummarizeUsers(
        exp->jobs(), exp->users(), exp->ledger(), exp->zoo(), kTimeZero, Hours(8));
    return std::pair<double, double>(summaries[0].useful_k80_gpu_hours,
                                     summaries[1].useful_k80_gpu_hours);
  };
  const auto [vae_no, rex_no] = run(false);
  const auto [vae_yes, rex_yes] = run(true);
  EXPECT_GT(vae_yes, vae_no * 1.1);   // lender gains markedly
  // Borrower trades at its own (noisily profiled) speedup, so it is
  // indifferent in expectation; allow scheduling noise around that.
  EXPECT_GT(rex_yes, rex_no * 0.90);
  // And the cluster as a whole does strictly more useful work.
  EXPECT_GT(vae_yes + rex_yes, (vae_no + rex_no) * 1.05);
}

TEST(GandivaFairTest, NoTradingOnHomogeneousCluster) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(2, 4);
  Experiment exp(config);
  auto& a = exp.users().Create("a");
  exp.UseGandivaFair({});
  exp.SubmitAt(kTimeZero, a.id, "DCGAN", 1, Hours(10));
  exp.Run(Hours(2));
  EXPECT_TRUE(exp.gandiva()->executed_trades().empty());
}

TEST(GandivaFairTest, EntitlementSplitsPoolByTickets) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(2, 8);
  Experiment exp(config);
  auto& a = exp.users().Create("a", 1.0);
  auto& b = exp.users().Create("b", 3.0);
  exp.UseGandivaFair({});
  exp.SubmitAt(kTimeZero, a.id, "DCGAN", 1, Hours(10));
  exp.SubmitAt(kTimeZero, b.id, "DCGAN", 1, Hours(10));
  exp.Run(Minutes(5));
  EXPECT_NEAR(exp.gandiva()->EntitlementGpus(a.id, GpuGeneration::kV100), 4.0, 1e-9);
  EXPECT_NEAR(exp.gandiva()->EntitlementGpus(b.id, GpuGeneration::kV100), 12.0, 1e-9);
}

TEST(GandivaFairTest, FinishedJobsFreeTheirShare) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(1, 4);
  Experiment exp(config);
  auto& a = exp.users().Create("a");
  auto& b = exp.users().Create("b");
  exp.UseGandivaFair({});
  exp.SubmitAt(kTimeZero, a.id, "DCGAN", 2, Minutes(20));  // short
  exp.SubmitAt(kTimeZero, b.id, "DCGAN", 4, Hours(100));   // long
  exp.Run(Hours(2));
  // After a's job finishes, b must hold the whole server.
  const double b_late = exp.ledger().GpuMs(b.id, Hours(1), Hours(2));
  EXPECT_GT(b_late / (4.0 * Hours(1)), 0.97);
}

TEST(GandivaFairTest, OverheadStaysSmallRelativeToQuantum) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(1, 4);
  Experiment exp(config);
  auto& a = exp.users().Create("a");
  exp.UseGandivaFair({});
  // 8 jobs time-slicing 4 GPUs for hours: suspend/resume overhead accrues but
  // must stay a small fraction of total GPU time.
  for (int i = 0; i < 8; ++i) {
    exp.SubmitAt(kTimeZero, a.id, "DCGAN", 1, Hours(100));
  }
  exp.Run(Hours(4));
  double total_overhead_ms = 0.0;
  double total_gpu_ms = 0.0;
  for (const auto* job : exp.jobs().All()) {
    total_overhead_ms += static_cast<double>(job->overhead_ms);
    total_gpu_ms += job->TotalGpuMs();
  }
  EXPECT_LT(total_overhead_ms / total_gpu_ms, 0.10);
}

}  // namespace
}  // namespace gfair::sched
