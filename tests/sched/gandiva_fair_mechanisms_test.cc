// Tests for the facade's supporting mechanisms: gang-proportional ticket
// splitting, work stealing, trading probes, and trade-epoch plumbing.
#include <gtest/gtest.h>

#include "analysis/harness.h"
#include "sched/gandiva_fair.h"
#include "sched/policy/greedy_trade_policy.h"

namespace gfair::sched {
namespace {

using analysis::Experiment;
using analysis::ExperimentConfig;
using cluster::GpuGeneration;

TEST(TicketSplitTest, GangProportionalWithinUser) {
  // One user, one 4-gang + four 1-GPU jobs on the same server: per-job
  // tickets must be proportional to gang size (4:1), summing to the user's
  // pool tickets.
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(1, 8);
  Experiment exp(config);
  auto& a = exp.users().Create("a", 1.0);
  exp.UseGandivaFair({});
  const JobId gang = exp.SubmitAt(kTimeZero, a.id, "ResNet-50", 4, Hours(100));
  JobId single = JobId::Invalid();
  for (int i = 0; i < 4; ++i) {
    single = exp.SubmitAt(kTimeZero, a.id, "DCGAN", 1, Hours(100));
  }
  exp.Run(Minutes(2));
  const auto& stride = exp.gandiva()->stride_for(ServerId(0));
  const double gang_tickets = stride.TicketsOf(gang).raw();
  const double single_tickets = stride.TicketsOf(single).raw();
  EXPECT_NEAR(gang_tickets / single_tickets, 4.0, 1e-9);
  EXPECT_NEAR(gang_tickets + 4 * single_tickets, 1.0, 1e-9);
}

TEST(TicketSplitTest, MixedGangUserNotPenalizedOnBigJob) {
  // User A: one 8-gang + eight 1-GPU jobs (demand 16). User B: sixteen
  // 1-GPU jobs. Equal tickets, 2x8 servers. Under equal per-job splitting
  // A's 8-gang would starve at 1/9th of A's share; gang-proportional
  // splitting keeps A's total GPU time at half the cluster.
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(2, 8);
  Experiment exp(config);
  auto& a = exp.users().Create("a", 1.0);
  auto& b = exp.users().Create("b", 1.0);
  exp.UseGandivaFair({});
  exp.SubmitAt(kTimeZero, a.id, "ResNet-50", 8, Hours(2000));
  for (int i = 0; i < 8; ++i) {
    exp.SubmitAt(kTimeZero, a.id, "DCGAN", 1, Hours(2000));
  }
  for (int i = 0; i < 16; ++i) {
    exp.SubmitAt(kTimeZero, b.id, "DCGAN", 1, Hours(2000));
  }
  exp.Run(Hours(6));
  const double a_ms = exp.ledger().GpuMs(a.id, Hours(1), Hours(6));
  const double b_ms = exp.ledger().GpuMs(b.id, Hours(1), Hours(6));
  EXPECT_NEAR(a_ms / b_ms, 1.0, 0.10);
}

TEST(PrecopyTest, MigrationKeepsJobRunningThroughBulkTransfer) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(2, 4);
  config.exec.precopy = true;
  Experiment exp(config);
  auto& a = exp.users().Create("a");
  exp.UseGandivaFair({});
  const JobId id = exp.SubmitAt(kTimeZero, a.id, "DCGAN", 1, Hours(100));
  exp.Run(Minutes(2));
  ASSERT_TRUE(exp.exec().IsRunning(id));
  const ServerId source = exp.jobs().Get(id).server;

  // Draining the host forces a migration. Under pre-copy the job must KEEP
  // RUNNING at the source while the bulk checkpoint (600 ms at 1 GB/s)
  // ships; stop-and-copy would have suspended it here.
  exp.gandiva()->DrainServer(source);
  EXPECT_TRUE(exp.exec().IsRunning(id));
  EXPECT_TRUE(exp.gandiva()->residency().Info(id).precopying);
  exp.Run(exp.sim().Now() + Seconds(0.3));  // mid-bulk
  EXPECT_TRUE(exp.exec().IsRunning(id));
  EXPECT_EQ(exp.jobs().Get(id).server, source);

  // Past cutover + stop-and-copy tail: landed, re-attached, running again.
  exp.Run(exp.sim().Now() + Minutes(1));
  EXPECT_NE(exp.jobs().Get(id).server, source);
  EXPECT_TRUE(exp.exec().IsRunning(id));
  EXPECT_FALSE(exp.gandiva()->residency().Info(id).precopying);
  EXPECT_EQ(exp.exec().precopies_started(), 1);
  EXPECT_EQ(exp.exec().precopies_aborted(), 0);
  EXPECT_EQ(exp.exec().migration_failures(), 0);
  EXPECT_EQ(exp.gandiva()->migrations_started(), 1);
}

TEST(PrecopyTest, DestDownDuringBulkRetriesElsewhereWithoutStopping) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(3, 4);
  config.exec.precopy = true;
  Experiment exp(config);
  auto& a = exp.users().Create("a");
  exp.UseGandivaFair({});
  const JobId id = exp.SubmitAt(kTimeZero, a.id, "DCGAN", 1, Hours(100));
  exp.Run(Minutes(2));
  const ServerId source = exp.jobs().Get(id).server;

  exp.gandiva()->DrainServer(source);
  ASSERT_TRUE(exp.gandiva()->residency().Info(id).precopying);
  // Kill the chosen destination while the bulk is in flight. The failure is
  // cheap — the job never stops running at its source — and the retry
  // ladder re-targets the remaining up server.
  ServerId first_dest = ServerId::Invalid();
  for (const auto& server : exp.cluster().servers()) {
    if (server.id() != source) {
      // DrainBatch targets the least-loaded non-source server; with both
      // empty that is the lowest id.
      first_dest = server.id();
      break;
    }
  }
  exp.Run(exp.sim().Now() + Seconds(0.2));
  exp.exec().FailServer(first_dest);
  EXPECT_TRUE(exp.exec().IsRunning(id));

  // Cutover fires at +600 ms and attributes a dest-down failure; the retry
  // backs off 30 s, then pre-copies to the surviving server and lands.
  exp.Run(exp.sim().Now() + Minutes(2));
  EXPECT_EQ(exp.exec().migration_failures_dest_down(), 1);
  EXPECT_EQ(exp.exec().migration_failures_flake(), 0);
  EXPECT_EQ(exp.gandiva()->migration_retries_started(), 1);
  const ServerId final_home = exp.jobs().Get(id).server;
  EXPECT_NE(final_home, source);
  EXPECT_NE(final_home, first_dest);
  EXPECT_TRUE(exp.exec().IsRunning(id));
  EXPECT_FALSE(exp.gandiva()->residency().Info(id).precopying);
}

TEST(WorkStealingTest, IdleServerStealsWaitingJob) {
  // Server 0 ends up with a 4-gang plus three 1-GPU long jobs (demand 7 on
  // 4 GPUs) while server 1 drains to empty: placement pins the singles to
  // server 0 because a huge-ticket user saturates server 1's ticket load.
  // Stealing must move waiting singles to server 1's idle GPUs.
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(2, 4);
  Experiment exp(config);
  auto& a = exp.users().Create("a", 1.0);
  auto& heavy = exp.users().Create("heavy", 100.0);
  sched::GandivaFairConfig sched_config;
  sched_config.enable_load_balancing = false;  // isolate stealing
  exp.UseGandivaFair(sched_config);
  exp.SubmitAt(kTimeZero, a.id, "ResNet-50", 4, Hours(2000));   // server 0
  exp.SubmitAt(kTimeZero, heavy.id, "DCGAN", 4, Minutes(30));   // server 1, short
  for (int i = 0; i < 3; ++i) {
    exp.SubmitAt(Minutes(1), a.id, "DCGAN", 1, Hours(2000));    // pile on server 0
  }
  exp.Run(Hours(2));
  // Once the heavy user's job finishes, stealing must spread a's jobs so all
  // four run (8 GPUs, 7 demanded).
  int running = 0;
  for (const auto* job : exp.jobs().All()) {
    if (!job->finished() && exp.exec().IsRunning(job->id)) {
      ++running;
    }
  }
  EXPECT_EQ(running, 4);
  EXPECT_GT(exp.gandiva()->steals_started(), 0);
}

TEST(WorkStealingTest, DisabledMeansNoSteals) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(2, 2);
  Experiment exp(config);
  auto& a = exp.users().Create("a");
  sched::GandivaFairConfig sched_config;
  sched_config.enable_work_stealing = false;
  sched_config.enable_load_balancing = false;
  exp.UseGandivaFair(sched_config);
  exp.SubmitAt(kTimeZero, a.id, "DCGAN", 2, Minutes(30));
  exp.SubmitAt(kTimeZero, a.id, "DCGAN", 2, Minutes(30));
  for (int i = 0; i < 3; ++i) {
    exp.SubmitAt(Minutes(1), a.id, "DCGAN", 1, Hours(100));
  }
  exp.Run(Hours(2));
  EXPECT_EQ(exp.gandiva()->steals_started(), 0);
  EXPECT_EQ(exp.gandiva()->migrations_started(), 0);
}

TEST(ProbeTest, JobsGetProfiledOnGenerationsTheyNeverChose) {
  // A single high-speedup model on a hetero cluster: placement favors V100,
  // so K80 estimates can only come from probe migrations.
  ExperimentConfig config;
  config.topology = cluster::Topology{{
      {GpuGeneration::kK80, 1, 8},
      {GpuGeneration::kV100, 1, 8},
  }};
  Experiment exp(config);
  auto& a = exp.users().Create("a");
  auto& b = exp.users().Create("b");
  exp.UseGandivaFair({});
  for (int i = 0; i < 4; ++i) {
    exp.SubmitAt(kTimeZero, a.id, "ResNeXt-50", 1, Hours(500));
    exp.SubmitAt(kTimeZero, b.id, "VAE", 1, Hours(500));
  }
  exp.Run(Hours(3));
  const auto& profiles = exp.gandiva()->profiles();
  const auto model = exp.zoo().GetByName("ResNeXt-50").id;
  EXPECT_TRUE(profiles.HasEstimate(model, GpuGeneration::kK80));
  EXPECT_TRUE(profiles.HasEstimate(model, GpuGeneration::kV100));
}

TEST(TradeEpochTest, TicketsFollowTrades) {
  // After trading, the VAE user's V100 tickets must be below base and its
  // K80 tickets above base; the ResNeXt user mirrored.
  ExperimentConfig config;
  config.topology = cluster::Topology{{
      {GpuGeneration::kK80, 2, 8},
      {GpuGeneration::kV100, 2, 8},
  }};
  Experiment exp(config);
  auto& vae = exp.users().Create("vae", 1.0);
  auto& rex = exp.users().Create("rex", 1.0);
  exp.UseGandivaFair({});
  for (int i = 0; i < 20; ++i) {
    exp.SubmitAt(Minutes(i), vae.id, "VAE", 1, Hours(500));
    exp.SubmitAt(Minutes(i), rex.id, "ResNeXt-50", 1, Hours(500));
  }
  exp.Run(Hours(4));
  ASSERT_FALSE(exp.gandiva()->executed_trades().empty());
  const auto& tickets = exp.gandiva()->tickets();
  EXPECT_LT(tickets.Get(vae.id, GpuGeneration::kV100),
            tickets.Get(rex.id, GpuGeneration::kV100));
  EXPECT_GT(tickets.Get(vae.id, GpuGeneration::kK80),
            tickets.Get(rex.id, GpuGeneration::kK80));
  // And residency follows on the lender side (the traded volume is capped by
  // the borrower's slow-pool holdings, so the borrower's shift is smaller).
  EXPECT_GT(exp.gandiva()->ResidentDemand(vae.id, GpuGeneration::kK80),
            exp.gandiva()->ResidentDemand(vae.id, GpuGeneration::kV100));
  EXPECT_GE(exp.gandiva()->ResidentDemand(rex.id, GpuGeneration::kV100),
            exp.gandiva()->ResidentDemand(rex.id, GpuGeneration::kK80));
}

TEST(TradeEpochTest, TradesRevokedWhenBorrowerLeaves) {
  // Once the borrower's jobs finish, the next epoch recomputes from base:
  // the lender's V100 tickets return.
  ExperimentConfig config;
  config.topology = cluster::Topology{{
      {GpuGeneration::kK80, 1, 8},
      {GpuGeneration::kV100, 1, 8},
  }};
  Experiment exp(config);
  auto& vae = exp.users().Create("vae", 1.0);
  auto& rex = exp.users().Create("rex", 1.0);
  exp.UseGandivaFair({});
  for (int i = 0; i < 8; ++i) {
    exp.SubmitAt(kTimeZero, vae.id, "VAE", 1, Hours(500));
    exp.SubmitAt(kTimeZero, rex.id, "ResNeXt-50", 1, Hours(3));  // finishes early
  }
  exp.Run(Hours(8));
  // rex's jobs are long gone; vae must hold full base tickets everywhere.
  const auto& tickets = exp.gandiva()->tickets();
  EXPECT_DOUBLE_EQ(tickets.Get(vae.id, GpuGeneration::kV100).raw(), 1.0);
  // And vae's full demand (8 one-GPU jobs) is served (work conservation).
  const double vae_ms = exp.ledger().GpuMs(vae.id, Hours(6), Hours(8));
  EXPECT_GT(vae_ms / (8.0 * Hours(2)), 0.95);
}

TEST(BorrowerMarginTest, RateDiscountedButAboveLenderSpeedup) {
  TradeConfig config;
  config.borrower_margin = 0.10;
  GreedyTradePolicy engine(config);
  // Direct rate check through a synthetic epoch.
  TradeInputs inputs;
  inputs.active_users = {UserId(0), UserId(1)};
  inputs.base_tickets[UserId(0)] = 1.0;
  inputs.base_tickets[UserId(1)] = 1.0;
  inputs.total_demand_gpus[UserId(0)] = 64.0;
  inputs.total_demand_gpus[UserId(1)] = 64.0;
  inputs.pool_sizes[cluster::GenerationIndex(GpuGeneration::kK80)] = 32;
  inputs.pool_sizes[cluster::GenerationIndex(GpuGeneration::kV100)] = 32;
  inputs.user_speedup = [](UserId user, GpuGeneration fast, GpuGeneration slow,
                           Speedup* out) {
    if (fast != GpuGeneration::kV100 || slow != GpuGeneration::kK80) {
      return false;
    }
    *out = Speedup::FromRatio(user == UserId(0) ? 1.2 : 6.0);
    return true;
  };
  const auto outcome = engine.Allocate(inputs);
  ASSERT_FALSE(outcome.trades.empty());
  EXPECT_DOUBLE_EQ(outcome.trades[0].rate.raw(), 6.0 * 0.9);
  EXPECT_GT(outcome.trades[0].rate.raw(), 1.2);
}

}  // namespace
}  // namespace gfair::sched
