// The allocation-policy seam: registry behavior, the --policy flag
// boundary, and the two auction-style backends (Themis finish-time-fairness,
// Gavel weighted max-min) against the contract every backend must honour.
#include "sched/policy/allocation_policy.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/flags.h"
#include "sched/gandiva_fair.h"
#include "sched/policy/gavel_waterfill_policy.h"
#include "sched/policy/greedy_trade_policy.h"
#include "sched/policy/themis_ftf_policy.h"

namespace gfair::sched {
namespace {

using cluster::GenerationIndex;
using cluster::GpuGeneration;
using cluster::kNumGenerations;

constexpr size_t kK80 = static_cast<size_t>(GpuGeneration::kK80);
constexpr size_t kV100 = static_cast<size_t>(GpuGeneration::kV100);

// Two-user fixture shared with trade_test.cc: a low-speedup user (1.2x) and
// a high-speedup user (6x) sharing 32 K80 + 32 V100, both oversubscribed.
TradeInputs TwoUserInputs(double low_speedup = 1.2, double high_speedup = 6.0,
                          double low_demand = 64.0, double high_demand = 64.0) {
  TradeInputs inputs;
  inputs.active_users = {UserId(0), UserId(1)};
  inputs.base_tickets[UserId(0)] = 1.0;
  inputs.base_tickets[UserId(1)] = 1.0;
  inputs.total_demand_gpus[UserId(0)] = low_demand;
  inputs.total_demand_gpus[UserId(1)] = high_demand;
  inputs.pool_sizes[kK80] = 32;
  inputs.pool_sizes[kV100] = 32;
  inputs.user_speedup = [=](UserId user, GpuGeneration fast, GpuGeneration slow,
                            Speedup* out) {
    if (fast != GpuGeneration::kV100 || slow != GpuGeneration::kK80) {
      return false;
    }
    *out = Speedup::FromRatio(user == UserId(0) ? low_speedup : high_speedup);
    return true;
  };
  return inputs;
}

double PoolTotal(const TradeOutcome& outcome, size_t gen) {
  double total = 0.0;
  for (const auto& [user, ent] : outcome.entitlements) {
    total += ent[gen];
  }
  return total;
}

// --- registry ---

TEST(AllocationPolicyRegistryTest, BuiltinsRegistered) {
  auto& registry = AllocationPolicyRegistry::Instance();
  EXPECT_TRUE(registry.Known("greedy"));
  EXPECT_TRUE(registry.Known("themis"));
  EXPECT_TRUE(registry.Known("gavel"));
  EXPECT_FALSE(registry.Known("drf"));
  const auto names = registry.Names();
  EXPECT_EQ(names, (std::vector<std::string>{"gavel", "greedy", "themis"}));
}

TEST(AllocationPolicyRegistryTest, CreateResolvesEachBuiltinToItsName) {
  auto& registry = AllocationPolicyRegistry::Instance();
  for (const std::string& name : registry.Names()) {
    const auto policy = registry.Create(name, TradeConfig{});
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_EQ(policy->name(), name);
  }
  EXPECT_EQ(registry.Create("drf", TradeConfig{}), nullptr);
}

TEST(AllocationPolicyRegistryTest, UnknownMessageListsRegisteredBackends) {
  const std::string message =
      AllocationPolicyRegistry::Instance().UnknownPolicyMessage("drf");
  EXPECT_NE(message.find("'drf'"), std::string::npos);
  EXPECT_NE(message.find("gavel, greedy, themis"), std::string::npos);
}

TEST(AllocationPolicyRegistryTest, ConfigDefaultIsGreedy) {
  // The --policy default must name a registered backend, or every scheduler
  // construction would CHECK-fail out of the box.
  GandivaFairConfig config;
  EXPECT_EQ(config.allocation_policy, "greedy");
  EXPECT_TRUE(AllocationPolicyRegistry::Instance().Known(config.allocation_policy));
}

// --- flag boundary (the plumbing gfairsim/bench_e15 use verbatim) ---

TEST(AllocationPolicyFlagTest, FlagValueFlowsIntoConfig) {
  const char* argv[] = {"tool", "--policy=themis"};
  ArgParser args(2, argv);
  GandivaFairConfig config;
  std::string error;
  const std::string name = args.GetString("policy", "greedy");
  ASSERT_TRUE(ValidateAllocationPolicyName(name, &error)) << error;
  config.allocation_policy = name;
  EXPECT_EQ(config.allocation_policy, "themis");
}

TEST(AllocationPolicyFlagTest, DefaultsToGreedyWhenFlagAbsent) {
  const char* argv[] = {"tool"};
  ArgParser args(1, argv);
  EXPECT_EQ(args.GetString("policy", "greedy"), "greedy");
}

TEST(AllocationPolicyFlagTest, UnknownNameFailsWithRegisteredListing) {
  const char* argv[] = {"tool", "--policy", "srtf"};
  ArgParser args(3, argv);
  std::string error;
  EXPECT_FALSE(ValidateAllocationPolicyName(args.GetString("policy", "greedy"), &error));
  EXPECT_NE(error.find("unknown allocation policy 'srtf'"), std::string::npos);
  EXPECT_NE(error.find("gavel"), std::string::npos);
  EXPECT_NE(error.find("greedy"), std::string::npos);
  EXPECT_NE(error.find("themis"), std::string::npos);
}

// --- contract shared by every registered backend ---

TEST(AllocationPolicyContractTest, AllBackendsConserveEveryPool) {
  auto& registry = AllocationPolicyRegistry::Instance();
  for (const std::string& name : registry.Names()) {
    const auto policy = registry.Create(name, TradeConfig{});
    const TradeOutcome outcome = policy->Allocate(TwoUserInputs());
    ASSERT_EQ(outcome.entitlements.size(), 2u) << name;
    for (size_t g : {kK80, kV100}) {
      EXPECT_NEAR(PoolTotal(outcome, g), 32.0, 1e-9) << name << " pool " << g;
    }
    for (const auto& [user, ent] : outcome.entitlements) {
      for (size_t g = 0; g < kNumGenerations; ++g) {
        EXPECT_GE(ent[g], -1e-9) << name;
      }
    }
  }
}

TEST(AllocationPolicyContractTest, EmptyPoolsGetNoEntitlement) {
  for (const std::string& name : AllocationPolicyRegistry::Instance().Names()) {
    const auto policy =
        AllocationPolicyRegistry::Instance().Create(name, TradeConfig{});
    const TradeOutcome outcome = policy->Allocate(TwoUserInputs());
    for (const auto& [user, ent] : outcome.entitlements) {
      EXPECT_DOUBLE_EQ(ent[GenerationIndex(GpuGeneration::kP40)], 0.0) << name;
      EXPECT_DOUBLE_EQ(ent[GenerationIndex(GpuGeneration::kP100)], 0.0) << name;
    }
  }
}

TEST(AllocationPolicyContractTest, NoUsersNoOutcome) {
  for (const std::string& name : AllocationPolicyRegistry::Instance().Names()) {
    const auto policy =
        AllocationPolicyRegistry::Instance().Create(name, TradeConfig{});
    const TradeOutcome outcome = policy->Allocate(TradeInputs{});
    EXPECT_TRUE(outcome.trades.empty()) << name;
    EXPECT_TRUE(outcome.entitlements.empty()) << name;
  }
}

TEST(AllocationPolicyContractTest, NoProfilesMeansBaseSplitAndNoTrades) {
  for (const std::string& name : AllocationPolicyRegistry::Instance().Names()) {
    const auto policy =
        AllocationPolicyRegistry::Instance().Create(name, TradeConfig{});
    TradeInputs inputs = TwoUserInputs();
    inputs.user_speedup = [](UserId, GpuGeneration, GpuGeneration, Speedup*) {
      return false;
    };
    const TradeOutcome outcome = policy->Allocate(inputs);
    EXPECT_TRUE(outcome.trades.empty()) << name;
    EXPECT_DOUBLE_EQ(outcome.entitlements.at(UserId(0))[kV100], 16.0) << name;
    EXPECT_DOUBLE_EQ(outcome.entitlements.at(UserId(1))[kK80], 16.0) << name;
  }
}

// --- Themis finish-time-fairness auction ---

TEST(ThemisFtfPolicyTest, FtfMaxMinProtectsTheStraggler) {
  ThemisFtfPolicy policy(TradeConfig{});
  const TradeOutcome outcome = policy.Allocate(TwoUserInputs());
  ASSERT_FALSE(outcome.trades.empty());
  // Equalizing rho moves fast GPUs the OPPOSITE way from the greedy
  // exchange: the 1.2x user's delivered value grows slowly per V100, so the
  // max-min keeps granting it fast GPUs to hold its finish-time ratio level
  // with the 6x user (who reaches the same rho on fewer V100s). This is the
  // fairness-vs-efficiency tension the E15 shootout measures.
  EXPECT_GT(outcome.entitlements.at(UserId(0))[kV100], 16.0);
  EXPECT_LT(outcome.entitlements.at(UserId(1))[kV100], 16.0);
  EXPECT_GT(outcome.entitlements.at(UserId(1))[kK80], 16.0);
}

TEST(ThemisFtfPolicyTest, EqualizesFinishTimeFairness) {
  const TradeInputs inputs = TwoUserInputs();
  ThemisFtfPolicy policy(TradeConfig{});
  const TradeOutcome outcome = policy.Allocate(inputs);
  // rho_u = delivered value / value of the ticket-proportional base slice.
  const auto rho = [&](UserId user, double speedup) {
    const auto& ent = outcome.entitlements.at(user);
    const double delivered = ent[kK80] + speedup * ent[kV100];
    const double ideal = 16.0 + speedup * 16.0;
    return delivered / ideal;
  };
  // The discrete auction cannot equalize exactly, but the max-min leaves the
  // two users within one grant (~1 GPU of value) of each other.
  EXPECT_NEAR(rho(UserId(0), 1.2), rho(UserId(1), 6.0), 0.15);
}

TEST(ThemisFtfPolicyTest, LeftoverCapacitySpreadWhenDemandLow) {
  // Total demand (10 + 10) far below the 64-GPU pool: everyone's demand is
  // met and the surplus is spread ticket-proportionally (conservation).
  ThemisFtfPolicy policy(TradeConfig{});
  const TradeOutcome outcome = policy.Allocate(TwoUserInputs(1.2, 6.0, 10.0, 10.0));
  for (size_t g : {kK80, kV100}) {
    EXPECT_NEAR(PoolTotal(outcome, g), 32.0, 1e-9);
  }
}

TEST(ThemisFtfPolicyTest, ZeroTicketUserNeverPreferred) {
  TradeInputs inputs = TwoUserInputs();
  inputs.base_tickets[UserId(1)] = 0.0;
  ThemisFtfPolicy policy(TradeConfig{});
  const TradeOutcome outcome = policy.Allocate(inputs);
  // The funded user absorbs capacity up to its demand before the zero-ticket
  // user sees anything beyond the (zero) proportional leftover share. One
  // grant of slack: at the all-zero start both users tie at rho = 0, so the
  // discrete fill may hand the zero-ticket user a single GPU before its rho
  // explodes and it is never picked again.
  double funded = 0.0;
  for (size_t g = 0; g < kNumGenerations; ++g) {
    funded += outcome.entitlements.at(UserId(0))[g];
  }
  EXPECT_GE(funded, 63.0);  // demand 64, minus at most one tie-break grant
}

// --- Gavel weighted max-min water-filling ---

TEST(GavelWaterFillPolicyTest, EqualizesValuePerTicket) {
  GavelWaterFillPolicy policy(TradeConfig{});
  const TradeOutcome outcome = policy.Allocate(TwoUserInputs());
  ASSERT_FALSE(outcome.trades.empty());
  // Water-filling on value-per-ticket: the 6x user hits any given value level
  // on far fewer V100s, so it cedes fast capacity to the 1.2x user until
  // delivered values meet (within one discrete grant of each other's reach).
  const auto value = [&](UserId user, double speedup) {
    const auto& ent = outcome.entitlements.at(user);
    return ent[kK80] + speedup * ent[kV100];
  };
  EXPECT_LT(outcome.entitlements.at(UserId(1))[kV100], 16.0);
  EXPECT_GT(outcome.entitlements.at(UserId(0))[kV100], 16.0);
  EXPECT_NEAR(value(UserId(0), 1.2), value(UserId(1), 6.0), 6.0);
}

TEST(GavelWaterFillPolicyTest, TicketsWeightTheMaxMin) {
  // Identical speedups, tickets 1:3 — delivered value must track tickets
  // (weighted max-min), not equalize per user.
  TradeInputs inputs = TwoUserInputs(3.0, 3.0);
  inputs.base_tickets[UserId(1)] = 3.0;
  GavelWaterFillPolicy policy(TradeConfig{});
  const TradeOutcome outcome = policy.Allocate(inputs);
  const auto value = [&](UserId user) {
    const auto& ent = outcome.entitlements.at(user);
    return ent[kK80] + 3.0 * ent[kV100];
  };
  // Both users are demand-capped at 64 total GPUs; the heavy user's value
  // per ticket converges on the light user's.
  EXPECT_NEAR(value(UserId(1)) / 3.0, value(UserId(0)), 3.5);
  EXPECT_GT(value(UserId(1)), value(UserId(0)) * 2.0);
}

TEST(GavelWaterFillPolicyTest, DiffersFromThemisWhenSpeedupsDiffer) {
  // Themis folds each user's own speedup into its fairness target; Gavel
  // equalizes value-per-ticket directly. With a wide speedup gap the two
  // backends must not coincide.
  const TradeInputs inputs = TwoUserInputs();
  const TradeOutcome themis = ThemisFtfPolicy(TradeConfig{}).Allocate(inputs);
  const TradeOutcome gavel = GavelWaterFillPolicy(TradeConfig{}).Allocate(inputs);
  const double themis_v100 = themis.entitlements.at(UserId(1))[kV100];
  const double gavel_v100 = gavel.entitlements.at(UserId(1))[kV100];
  EXPECT_GT(std::abs(themis_v100 - gavel_v100), 0.5);
}

TEST(GavelWaterFillPolicyTest, DeterministicAcrossCalls) {
  GavelWaterFillPolicy policy(TradeConfig{});
  const TradeInputs inputs = TwoUserInputs();
  const TradeOutcome a = policy.Allocate(inputs);
  const TradeOutcome b = policy.Allocate(inputs);
  ASSERT_EQ(a.entitlements.size(), b.entitlements.size());
  for (const auto& [user, ent] : a.entitlements) {
    for (size_t g = 0; g < kNumGenerations; ++g) {
      EXPECT_DOUBLE_EQ(ent[g], b.entitlements.at(user)[g]);
    }
  }
  EXPECT_EQ(a.trades.size(), b.trades.size());
}

// --- trade synthesis (what the coordinator keys "did anything move" on) ---

TEST(SynthesizeTradesTest, RecordsNetMovementLenderToBorrower) {
  ThemisFtfPolicy policy(TradeConfig{});
  const TradeOutcome outcome = policy.Allocate(TwoUserInputs());
  ASSERT_FALSE(outcome.trades.empty());
  for (const Trade& trade : outcome.trades) {
    EXPECT_NE(trade.lender, trade.borrower);
    EXPECT_GT(trade.fast_gpus, 0.0);
    // Reallocation, not barter: unit rate, no slow-GPU payment leg.
    EXPECT_EQ(trade.rate, Speedup::Unit());
    EXPECT_DOUBLE_EQ(trade.slow_gpus, 0.0);
  }
}

}  // namespace
}  // namespace gfair::sched
