#include "sched/profiler.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace gfair::sched {
namespace {

using cluster::GpuGeneration;
using workload::ModelId;

TEST(ProfilerTest, NoEstimateUntilMinSamples) {
  ProfileStore store(/*min_samples=*/3);
  const ModelId model(0);
  store.AddSample(model, GpuGeneration::kK80, PerGpuRate(2.0));
  store.AddSample(model, GpuGeneration::kK80, PerGpuRate(2.0));
  EXPECT_FALSE(store.HasEstimate(model, GpuGeneration::kK80));
  store.AddSample(model, GpuGeneration::kK80, PerGpuRate(2.0));
  EXPECT_TRUE(store.HasEstimate(model, GpuGeneration::kK80));
  EXPECT_DOUBLE_EQ(store.EstimatedRate(model, GpuGeneration::kK80).raw(), 2.0);
}

TEST(ProfilerTest, EstimateIsMeanOfSamples) {
  ProfileStore store(2);
  const ModelId model(1);
  store.AddSample(model, GpuGeneration::kV100, PerGpuRate(8.0));
  store.AddSample(model, GpuGeneration::kV100, PerGpuRate(12.0));
  EXPECT_DOUBLE_EQ(store.EstimatedRate(model, GpuGeneration::kV100).raw(), 10.0);
  EXPECT_EQ(store.SampleCount(model, GpuGeneration::kV100), 2u);
}

TEST(ProfilerTest, SpeedupRequiresBothSides) {
  ProfileStore store(1);
  const ModelId model(0);
  gfair::Speedup speedup;
  store.AddSample(model, GpuGeneration::kV100, PerGpuRate(10.0));
  EXPECT_FALSE(store.Speedup(model, GpuGeneration::kV100, GpuGeneration::kK80, &speedup));
  store.AddSample(model, GpuGeneration::kK80, PerGpuRate(2.0));
  ASSERT_TRUE(store.Speedup(model, GpuGeneration::kV100, GpuGeneration::kK80, &speedup));
  EXPECT_DOUBLE_EQ(speedup.raw(), 5.0);
}

TEST(ProfilerTest, UnknownModelHasNothing) {
  ProfileStore store(1);
  EXPECT_FALSE(store.HasEstimate(ModelId(42), GpuGeneration::kK80));
  EXPECT_EQ(store.SampleCount(ModelId(42), GpuGeneration::kK80), 0u);
}

TEST(ProfilerTest, NoisySamplesConvergeToTruth) {
  // Feed samples with 5% multiplicative noise; the estimate must land within
  // 2% of truth — the accuracy property experiment E7 quantifies at scale.
  ProfileStore store(3);
  Rng rng(7);
  const ModelId model(0);
  const double truth = 16.0;
  for (int i = 0; i < 200; ++i) {
    store.AddSample(model, GpuGeneration::kP40, PerGpuRate(truth * rng.Normal(1.0, 0.05)));
  }
  EXPECT_NEAR(store.EstimatedRate(model, GpuGeneration::kP40).raw(), truth, truth * 0.02);
}

TEST(ProfilerTest, ModelsAreIndependent) {
  ProfileStore store(1);
  store.AddSample(ModelId(0), GpuGeneration::kK80, PerGpuRate(1.0));
  store.AddSample(ModelId(1), GpuGeneration::kK80, PerGpuRate(9.0));
  EXPECT_DOUBLE_EQ(store.EstimatedRate(ModelId(0), GpuGeneration::kK80).raw(), 1.0);
  EXPECT_DOUBLE_EQ(store.EstimatedRate(ModelId(1), GpuGeneration::kK80).raw(), 9.0);
}

TEST(ProfilerDeathTest, RejectsBadSamples) {
  ProfileStore store(1);
  EXPECT_DEATH(store.AddSample(ModelId(0), GpuGeneration::kK80, PerGpuRate(0.0)), "");
  EXPECT_DEATH(store.EstimatedRate(ModelId(0), GpuGeneration::kK80).raw(), "estimate");
}

}  // namespace
}  // namespace gfair::sched
