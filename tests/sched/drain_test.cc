// Tests for server draining (maintenance).
#include <gtest/gtest.h>

#include "analysis/harness.h"
#include "sched/gandiva_fair.h"

namespace gfair::sched {
namespace {

using analysis::Experiment;
using analysis::ExperimentConfig;

int ResidentsOn(Experiment& exp, ServerId server) {
  int residents = 0;
  for (const auto* job : exp.jobs().All()) {
    if (!job->finished() && job->server == server) {
      ++residents;
    }
  }
  return residents;
}

TEST(DrainTest, ResidentsEvacuateWithinBalanceTicks) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(3, 4);
  Experiment exp(config);
  auto& a = exp.users().Create("a");
  exp.UseGandivaFair({});
  for (int i = 0; i < 9; ++i) {
    exp.SubmitAt(Seconds(i), a.id, "DCGAN", 1, Hours(1000));
  }
  exp.Run(Minutes(5));
  const ServerId victim(0);
  ASSERT_GT(ResidentsOn(exp, victim), 0);

  exp.gandiva()->DrainServer(victim);
  EXPECT_TRUE(exp.gandiva()->IsDraining(victim));
  exp.Run(Minutes(40));  // several balance ticks + migration latencies
  EXPECT_EQ(ResidentsOn(exp, victim), 0);
  EXPECT_EQ(exp.cluster().server(victim).num_busy(), 0);
  // The jobs kept running elsewhere: all 9 still live and mostly running.
  int running = 0;
  for (const auto* job : exp.jobs().All()) {
    running += exp.exec().IsRunning(job->id) ? 1 : 0;
  }
  EXPECT_GE(running, 8);  // 8 GPUs left across two servers
}

TEST(DrainTest, DrainingServerAttractsNoNewJobs) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(2, 4);
  Experiment exp(config);
  auto& a = exp.users().Create("a");
  exp.UseGandivaFair({});
  exp.Run(Minutes(1));
  exp.gandiva()->DrainServer(ServerId(0));
  for (int i = 0; i < 6; ++i) {
    exp.SubmitAt(Minutes(2 + i), a.id, "DCGAN", 1, Hours(1000));
  }
  exp.Run(Hours(1));
  EXPECT_EQ(ResidentsOn(exp, ServerId(0)), 0);
  EXPECT_EQ(ResidentsOn(exp, ServerId(1)), 6);
}

TEST(DrainTest, UndrainRestoresService) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(2, 4);
  Experiment exp(config);
  auto& a = exp.users().Create("a");
  exp.UseGandivaFair({});
  exp.Run(Minutes(1));
  exp.gandiva()->DrainServer(ServerId(0));
  exp.Run(Minutes(2));
  exp.gandiva()->UndrainServer(ServerId(0));
  EXPECT_FALSE(exp.gandiva()->IsDraining(ServerId(0)));
  // New demand beyond server 1's capacity spills back onto server 0.
  for (int i = 0; i < 8; ++i) {
    exp.SubmitAt(Minutes(3), a.id, "DCGAN", 1, Hours(1000));
  }
  exp.Run(Hours(1));
  EXPECT_GT(ResidentsOn(exp, ServerId(0)), 0);
}

TEST(DrainTest, DrainingWholePoolLeavesJobsInPlace) {
  // Nowhere to evacuate to: jobs stay (with a warning) rather than being
  // lost, and keep running.
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(1, 4);
  Experiment exp(config);
  auto& a = exp.users().Create("a");
  exp.UseGandivaFair({});
  exp.SubmitAt(kTimeZero, a.id, "DCGAN", 2, Hours(100));
  exp.Run(Minutes(2));
  exp.gandiva()->DrainServer(ServerId(0));
  exp.Run(Minutes(30));
  EXPECT_EQ(ResidentsOn(exp, ServerId(0)), 1);
  EXPECT_TRUE(exp.exec().IsRunning(exp.jobs().All()[0]->id));
}

TEST(DrainTest, WorkStealingNeverTargetsDrainingServer) {
  // A draining server's idle GPUs are permanent steal bait: its residents
  // leave, the rest of the pool stays oversubscribed, and every quantum the
  // stealer sees free GPUs next to overflowing peers. The draining guard in
  // TrySteal must hold for the whole drain, or evacuation livelocks (jobs
  // stolen back onto the server being emptied).
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(3, 4);
  Experiment exp(config);
  auto& a = exp.users().Create("a");
  exp.UseGandivaFair({});
  for (int i = 0; i < 20; ++i) {
    exp.SubmitAt(Seconds(i), a.id, "DCGAN", 1, Hours(1000));
  }
  exp.Run(Minutes(5));
  const ServerId victim(0);
  const SimTime drain_start = exp.sim().Now();
  exp.gandiva()->DrainServer(victim);
  exp.Run(Hours(2));

  // The drain completed even though the pool remained oversubscribed...
  EXPECT_EQ(ResidentsOn(exp, victim), 0);
  // ...and no steal ever landed on the draining server.
  for (const Decision& d : exp.gandiva()->decisions().entries()) {
    if (d.type == DecisionType::kMigrateSteal && d.time >= drain_start) {
      EXPECT_NE(d.to, victim) << "steal targeted a draining server at " << d.time;
    }
  }
}

TEST(DrainTest, FairnessHoldsDuringDrain) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(4, 4);
  Experiment exp(config);
  auto& a = exp.users().Create("a");
  auto& b = exp.users().Create("b");
  exp.UseGandivaFair({});
  for (int i = 0; i < 16; ++i) {
    exp.SubmitAt(Seconds(i), i % 2 == 0 ? a.id : b.id, "DCGAN", 1, Hours(1000));
  }
  exp.Run(Hours(1));
  exp.gandiva()->DrainServer(ServerId(0));
  exp.Run(Hours(3));
  // 12 GPUs remain for 16 jobs; both users must still split evenly.
  const double a_ms = exp.ledger().GpuMs(a.id, Hours(1.5), Hours(3));
  const double b_ms = exp.ledger().GpuMs(b.id, Hours(1.5), Hours(3));
  EXPECT_NEAR(a_ms / b_ms, 1.0, 0.08);
}

}  // namespace
}  // namespace gfair::sched
