#include "sched/snapshot.h"

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/harness.h"
#include "sched/gandiva_fair.h"

namespace gfair::sched {
namespace {

TEST(SnapshotTest, ReflectsLiveState) {
  analysis::ExperimentConfig config;
  config.topology = cluster::Topology{{
      {cluster::GpuGeneration::kK80, 1, 4},
      {cluster::GpuGeneration::kV100, 1, 4},
  }};
  analysis::Experiment exp(config);
  auto& a = exp.users().Create("alice");
  exp.UseGandivaFair({});
  exp.SubmitAt(kTimeZero, a.id, "DCGAN", 2, Hours(100));
  exp.Run(Minutes(10));

  const ClusterSnapshot snapshot = exp.gandiva()->Snapshot();
  EXPECT_EQ(snapshot.time, Minutes(10));
  ASSERT_EQ(snapshot.servers.size(), 2u);
  EXPECT_EQ(snapshot.TotalGpus(), 8);
  EXPECT_EQ(snapshot.TotalBusyGpus(), 2);
  ASSERT_EQ(snapshot.users.size(), 1u);
  EXPECT_EQ(snapshot.users[0].name, "alice");
  EXPECT_EQ(snapshot.users[0].unfinished_jobs, 1);
  // The single job is resident on exactly one pool with demand 2.
  double total_resident = 0.0;
  for (double demand : snapshot.users[0].resident_demand) {
    total_resident += demand;
  }
  EXPECT_DOUBLE_EQ(total_resident, 2.0);
}

TEST(SnapshotTest, MarksDrainingServers) {
  analysis::ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(2, 4);
  analysis::Experiment exp(config);
  exp.users().Create("a");
  exp.UseGandivaFair({});
  exp.Run(Minutes(1));
  exp.gandiva()->DrainServer(ServerId(1));
  const ClusterSnapshot snapshot = exp.gandiva()->Snapshot();
  EXPECT_FALSE(snapshot.servers[0].draining);
  EXPECT_TRUE(snapshot.servers[1].draining);
}

TEST(SnapshotTest, PrintIsHumanReadable) {
  analysis::ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(1, 4);
  analysis::Experiment exp(config);
  auto& a = exp.users().Create("alice");
  exp.UseGandivaFair({});
  exp.SubmitAt(kTimeZero, a.id, "DCGAN", 1, Hours(10));
  exp.Run(Minutes(5));
  std::ostringstream os;
  exp.gandiva()->Snapshot().Print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("cluster snapshot at 5m00s"), std::string::npos);
  EXPECT_NE(text.find("alice"), std::string::npos);
  EXPECT_NE(text.find("V100"), std::string::npos);
  EXPECT_NE(text.find("1/4"), std::string::npos);
}

}  // namespace
}  // namespace gfair::sched
