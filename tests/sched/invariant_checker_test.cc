// InvariantChecker: the registered cluster-wide invariants hold throughout
// healthy runs, and each check actually fires when its invariant is broken
// (seeded violations via direct state mutation behind the scheduler's back).
#include "sched/invariant_checker.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/harness.h"
#include "sched/gandiva_fair.h"

namespace gfair::sched {
namespace {

using analysis::Experiment;
using analysis::ExperimentConfig;

std::string Joined(const std::vector<std::string>& violations) {
  std::string all;
  for (const auto& v : violations) {
    all += v;
    all += "; ";
  }
  return all;
}

bool AnyStartsWith(const std::vector<std::string>& violations,
                   const std::string& prefix) {
  for (const auto& v : violations) {
    if (v.rfind(prefix, 0) == 0) {
      return true;
    }
  }
  return false;
}

Experiment MakeBusyCluster() {
  ExperimentConfig config;
  config.topology = cluster::Topology{{
      {cluster::GpuGeneration::kP40, 2, 4},
      {cluster::GpuGeneration::kV100, 2, 4},
  }};
  return Experiment(config);
}

TEST(InvariantCheckerTest, RegistryListsAllInvariants) {
  const std::vector<std::string> names = InvariantChecker::RegisteredNames();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names[0], "gang-residency");
  EXPECT_EQ(names[1], "entitlement-conservation");
  EXPECT_EQ(names[2], "pass-monotonicity");
  EXPECT_EQ(names[3], "delta-ordering");
  EXPECT_EQ(names[4], "down-holds-nothing");
  EXPECT_EQ(names[5], "gpu-time-conservation");
}

TEST(InvariantCheckerTest, CleanThroughoutOversubscribedRun) {
  Experiment exp = MakeBusyCluster();
  const UserId a = exp.users().Create("a", 1.0).id;
  const UserId b = exp.users().Create("b", 3.0).id;
  exp.UseGandivaFair({});
  for (int i = 0; i < 6; ++i) {
    exp.SubmitAt(Minutes(i * 7), i % 2 == 0 ? a : b, "DCGAN",
                 i % 3 == 0 ? 2 : 1, Minutes(60));
  }
  // Sweep at several points mid-run, not just the end: the checker must be
  // clean at every quantum boundary (the Debug post-quantum hook relies on
  // this holding continuously).
  for (SimTime t = Minutes(15); t <= Hours(3); t += Minutes(15)) {
    exp.Run(t);
    const auto violations = exp.gandiva()->CheckInvariants();
    EXPECT_TRUE(violations.empty()) << "at t=" << t << ": " << Joined(violations);
  }
}

TEST(InvariantCheckerTest, DetectsForeignGpuOccupancy) {
  Experiment exp = MakeBusyCluster();
  const UserId a = exp.users().Create("a").id;
  exp.UseGandivaFair({});
  exp.SubmitAt(kTimeZero, a, "DCGAN", 1, Hours(10));
  exp.Run(Minutes(5));
  ASSERT_TRUE(exp.gandiva()->CheckInvariants().empty());

  // Seed a violation behind the scheduler's back: claim GPUs on an idle
  // server for a job the scheduler never placed there.
  const JobId phantom = exp.jobs().Get(JobId(0)).id;
  cluster::Server* idle = nullptr;
  for (auto& server : exp.cluster().servers()) {
    if (server.num_busy() == 0) {
      idle = &server;
      break;
    }
  }
  ASSERT_NE(idle, nullptr);
  idle->Allocate(phantom, 1);

  const auto violations = exp.gandiva()->CheckInvariants();
  EXPECT_TRUE(AnyStartsWith(violations, "gang-residency:")) << Joined(violations);

  idle->Release(phantom);  // restore so teardown stays consistent
}

TEST(InvariantCheckerTest, DetectsDownServerHoldingState) {
  Experiment exp = MakeBusyCluster();
  const UserId a = exp.users().Create("a").id;
  exp.UseGandivaFair({});
  for (int i = 0; i < 8; ++i) {
    exp.SubmitAt(kTimeZero, a, "DCGAN", 1, Hours(10));
  }
  exp.Run(Minutes(5));
  ASSERT_TRUE(exp.gandiva()->CheckInvariants().empty());

  // Flip a busy server down WITHOUT the executor's evacuation mechanics:
  // both the occupancy and the residency invariants must fire.
  cluster::Server* busy = nullptr;
  for (auto& server : exp.cluster().servers()) {
    if (server.num_busy() > 0) {
      busy = &server;
      break;
    }
  }
  ASSERT_NE(busy, nullptr);
  exp.cluster().SetServerUp(busy->id(), false);

  const auto violations = exp.gandiva()->CheckInvariants();
  EXPECT_TRUE(AnyStartsWith(violations, "down-holds-nothing:"))
      << Joined(violations);

  exp.cluster().SetServerUp(busy->id(), true);
}

}  // namespace
}  // namespace gfair::sched
