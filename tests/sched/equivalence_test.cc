// Decision-log equivalence: the refactored subsystem-based scheduler must
// make exactly the decisions the pre-refactor monolith made. Both
// implementations run in-process on the same fixed-seed scenarios and their
// DecisionLog streams are compared entry by entry (plus lifetime counters
// and job completion times). Running the frozen oracle live — instead of
// golden files — keeps the comparison robust; and since the determinism fix
// both sides now iterate their residency hash sets in sorted order on every
// decision path (see common/sorted.h), so the streams are additionally
// stable across platforms and stdlib hash implementations.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "analysis/harness.h"
#include "bench/scenarios.h"
#include "legacy_gandiva_fair.h"
#include "sched/gandiva_fair.h"
#include "workload/trace_gen.h"

namespace gfair::sched {
namespace {

using analysis::Experiment;
using analysis::ExperimentConfig;

struct RunResult {
  std::vector<Decision> entries;
  std::array<int64_t, kNumDecisionTypes> counts{};
  int64_t migrations = 0;
  int64_t steals = 0;
  std::vector<SimTime> finish_times;  // indexed by job id; kTimeZero if unfinished
};

// Runs `scenario(exp, sched)` with a scheduler of type SchedT and collects
// its decision stream. The scenario must be fully deterministic.
template <typename SchedT, typename Scenario>
RunResult RunWith(const ExperimentConfig& config, const GandivaFairConfig& gf_config,
                  Scenario&& scenario) {
  Experiment exp(config);
  SchedT* sched = nullptr;
  exp.UseCustomScheduler([&](const SchedulerEnv& env) {
    auto owned = std::make_unique<SchedT>(env, gf_config);
    sched = owned.get();
    return owned;
  });
  scenario(exp, *sched);

  RunResult result;
  result.entries.assign(sched->decisions().entries().begin(),
                        sched->decisions().entries().end());
  for (size_t t = 0; t < kNumDecisionTypes; ++t) {
    result.counts[t] = sched->decisions().Count(static_cast<DecisionType>(t));
  }
  result.migrations = sched->migrations_started();
  result.steals = sched->steals_started();
  for (const auto* job : exp.jobs().All()) {
    result.finish_times.push_back(job->finished() ? job->finish_time : kTimeZero);
  }
  return result;
}

void ExpectIdentical(const RunResult& legacy, const RunResult& refactored) {
  for (size_t t = 0; t < kNumDecisionTypes; ++t) {
    EXPECT_EQ(legacy.counts[t], refactored.counts[t])
        << "decision count diverged for "
        << DecisionTypeName(static_cast<DecisionType>(t));
  }
  EXPECT_EQ(legacy.migrations, refactored.migrations);
  EXPECT_EQ(legacy.steals, refactored.steals);

  ASSERT_EQ(legacy.entries.size(), refactored.entries.size());
  for (size_t i = 0; i < legacy.entries.size(); ++i) {
    const Decision& a = legacy.entries[i];
    const Decision& b = refactored.entries[i];
    ASSERT_TRUE(a.time == b.time && a.type == b.type && a.job == b.job &&
                a.from == b.from && a.to == b.to)
        << "decision " << i << " diverged: legacy {t=" << a.time << " "
        << DecisionTypeName(a.type) << " job=" << a.job << " from=" << a.from
        << " to=" << a.to << "} vs refactored {t=" << b.time << " "
        << DecisionTypeName(b.type) << " job=" << b.job << " from=" << b.from
        << " to=" << b.to << "}";
  }

  ASSERT_EQ(legacy.finish_times.size(), refactored.finish_times.size());
  for (size_t i = 0; i < legacy.finish_times.size(); ++i) {
    EXPECT_EQ(legacy.finish_times[i], refactored.finish_times[i])
        << "finish time diverged for job " << i;
  }
}

// E2-style single-server scenario: one 8-GPU V100 server, three users with
// 1:1:2 tickets, and a gang mix (one 8-gang, two 4-gangs, eight 1-GPU jobs)
// chosen so the stride scheduler must time-slice across gang boundaries.
// Everything the quantum pipeline does here flows through one stride
// instance, so any selection/tie-break drift shows up immediately.
template <typename ExpT, typename SchedT>
void SingleServerScenario(ExpT& exp, SchedT& /*sched*/) {
  auto& a = exp.users().Create("a", 1.0);
  auto& b = exp.users().Create("b", 1.0);
  auto& c = exp.users().Create("c", 2.0);
  exp.SubmitAt(kTimeZero, a.id, "Transformer", 8, Hours(6));
  exp.SubmitAt(Minutes(1), b.id, "ResNet-50", 4, Hours(5));
  exp.SubmitAt(Minutes(2), c.id, "ResNet-50", 4, Hours(5));
  for (int i = 0; i < 8; ++i) {
    exp.SubmitAt(Minutes(3 + i), (i % 2 == 0 ? a : b).id, "DCGAN", 1,
                 Hours(2 + (i % 3)));
  }
  exp.Run(Hours(8));
}

// E6-style homogeneous scenario: 25x8 V100s, four users with uneven weights
// and gang sizes, arrivals staggered so placements see evolving loads, a
// mid-run drain/undrain cycle, and enough churn (finite jobs) to exercise
// stealing, both balancer passes, and the hierarchy refresh.
template <typename ExpT, typename SchedT>
void HomogeneousScenario(ExpT& exp, SchedT& sched) {
  auto& a = exp.users().Create("a", 2.0);
  auto& b = exp.users().Create("b", 1.0);
  auto& c = exp.users().CreateInGroup("c", "team", 1.0);
  auto& d = exp.users().CreateInGroup("d", "team", 1.0);

  const char* models[] = {"DCGAN", "ResNet-50", "GRU-LM", "Transformer"};
  const int gangs[] = {1, 2, 4, 8, 1, 2, 1, 4};
  const UserId users[] = {a.id, b.id, c.id, d.id};
  for (int i = 0; i < 56; ++i) {
    exp.SubmitAt(Minutes(2 * i), users[i % 4], models[i % 4], gangs[i % 8],
                 Hours(2 + (i % 5)));
  }
  exp.Run(Hours(1));
  sched.DrainServer(ServerId(3));
  sched.DrainServer(ServerId(17));
  exp.Run(Hours(2));
  sched.UndrainServer(ServerId(3));
  sched.UndrainServer(ServerId(17));
  for (int i = 0; i < 24; ++i) {
    exp.SubmitAt(Hours(2) + Minutes(7 * i), users[(i + 1) % 4], models[(i + 2) % 4],
                 gangs[i % 8], Hours(1 + (i % 3)));
  }
  exp.Run(Hours(6));
}

// Heterogeneous paper-scale scenario: trading epochs, probe migrations and
// residency rebalancing all fire (different users concentrated on different
// generations with different model speedup profiles).
template <typename ExpT, typename SchedT>
void HeterogeneousScenario(ExpT& exp, SchedT& /*sched*/) {
  auto& a = exp.users().Create("a", 1.0);
  auto& b = exp.users().Create("b", 1.0);
  auto& c = exp.users().Create("c", 2.0);

  // User a: steep generation speedups (wants fast pools). User b: shallow
  // speedups (happy to lend fast capacity). Both hold long-lived demand so
  // trades persist across epochs; user c adds finite-job churn. Total demand
  // oversubscribes the 200-GPU cluster so pool tickets actually contend.
  for (int i = 0; i < 40; ++i) {
    exp.SubmitAt(Minutes(3 * i), a.id, "ResNeXt-50", 1 + (i % 4), Hours(500));
    exp.SubmitAt(Minutes(3 * i + 1), b.id, "VAE", 1 + (i % 2), Hours(500));
  }
  for (int i = 0; i < 20; ++i) {
    exp.SubmitAt(Minutes(5 * i + 2), c.id, "Transformer", 2 * (1 + (i % 2)),
                 Hours(4 + (i % 3)));
  }
  exp.Run(Hours(6));
}

TEST(EquivalenceTest, HomogeneousDecisionStreamMatchesLegacy) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(25, 8);
  const GandivaFairConfig gf;
  const RunResult legacy = RunWith<LegacyGandivaFairScheduler>(
      config, gf, [](auto& exp, auto& s) { HomogeneousScenario(exp, s); });
  const RunResult refactored = RunWith<GandivaFairScheduler>(
      config, gf, [](auto& exp, auto& s) { HomogeneousScenario(exp, s); });
  // The scenario must actually exercise the mechanisms under test.
  EXPECT_GT(legacy.counts[static_cast<size_t>(DecisionType::kPlace)], 0);
  EXPECT_GT(legacy.counts[static_cast<size_t>(DecisionType::kSuspend)], 0);
  EXPECT_GT(legacy.migrations, 0);
  ExpectIdentical(legacy, refactored);
}

TEST(EquivalenceTest, HeterogeneousTradingDecisionStreamMatchesLegacy) {
  ExperimentConfig config;
  config.topology = cluster::PaperScaleTopology();
  const GandivaFairConfig gf;
  const RunResult legacy = RunWith<LegacyGandivaFairScheduler>(
      config, gf, [](auto& exp, auto& s) { HeterogeneousScenario(exp, s); });
  const RunResult refactored = RunWith<GandivaFairScheduler>(
      config, gf, [](auto& exp, auto& s) { HeterogeneousScenario(exp, s); });
  EXPECT_GT(legacy.counts[static_cast<size_t>(DecisionType::kTrade)], 0);
  EXPECT_GT(legacy.counts[static_cast<size_t>(DecisionType::kMigrateProbe)], 0);
  ExpectIdentical(legacy, refactored);
}

TEST(EquivalenceTest, SingleServerDecisionStreamMatchesLegacy) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(1, 8);
  const GandivaFairConfig gf;
  const RunResult legacy = RunWith<LegacyGandivaFairScheduler>(
      config, gf, [](auto& exp, auto& s) { SingleServerScenario(exp, s); });
  const RunResult refactored = RunWith<GandivaFairScheduler>(
      config, gf, [](auto& exp, auto& s) { SingleServerScenario(exp, s); });
  EXPECT_GT(legacy.counts[static_cast<size_t>(DecisionType::kSuspend)], 0);
  ExpectIdentical(legacy, refactored);
}

// Fault-free E14 configuration: the paper-scale heterogeneous cluster under
// the generated 8-user trace (same specs, generator and seed as the
// availability bench, minus the fault injector). This is the widest surface
// the pipeline refactor touches — trace-driven arrivals and finishes,
// trading, balancing and stealing all interleaved with quantum ticks.
template <typename ExpT, typename SchedT>
void TraceDrivenScenario(ExpT& exp, SchedT& /*sched*/) {
  const SimTime horizon = Hours(6);
  const auto specs = bench::ClusterUserSpecs(horizon, /*load_scale=*/2.5);
  std::vector<UserId> user_ids;
  for (const auto& spec : specs) {
    user_ids.push_back(exp.users().Create(spec.name, spec.tickets).id);
  }
  workload::TraceGenerator gen(exp.zoo(), /*seed=*/2020);
  exp.LoadTrace(gen.Generate(specs, user_ids));
  exp.Run(horizon);
}

// Fault-churn scenario for the parallel-apply cross-check: oversubscribed
// mixed-gang load (every quantum flips schedules on every server) with two
// server failure/recovery cycles mid-run, so apply slices interleave with
// orphan re-placement, migration retries and recovery placements.
template <typename ExpT, typename SchedT>
void FaultChurnScenario(ExpT& exp, SchedT& /*sched*/) {
  auto& a = exp.users().Create("a");
  auto& b = exp.users().Create("b", 2.0);
  const int gangs[] = {1, 2, 1, 4, 1, 2, 8, 1};
  for (int i = 0; i < 96; ++i) {  // ~2x oversubscription on 8x8 GPUs
    exp.SubmitAt(Minutes(i % 7), (i % 2 == 0 ? a : b).id, "DCGAN", gangs[i % 8],
                 Hours(3 + (i % 4)));
  }
  exp.Run(Hours(1));
  exp.exec().FailServer(ServerId(2));
  exp.Run(Hours(1) + Minutes(31));
  exp.exec().FailServer(ServerId(5));
  exp.Run(Hours(2));
  exp.exec().RecoverServer(ServerId(2));
  exp.Run(Hours(2) + Minutes(17));
  exp.exec().RecoverServer(ServerId(5));
  exp.Run(Hours(5));
}

// The tentpole's determinism gate: apply_threads > 1 batches the per-server
// ApplyDelta slices across a thread pool, and the run must stay bit-identical
// to the serial fused pipeline — same decisions, same finish times — even
// with fault churn interleaved. Any hidden cross-slice dependency (shared
// RNG, event-id draw, occupancy coupling) would diverge the streams here.
TEST(EquivalenceTest, ParallelApplyDecisionStreamMatchesSerialUnderFaultChurn) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(8, 8);
  const GandivaFairConfig serial_gf;
  GandivaFairConfig parallel_gf;
  parallel_gf.apply_threads = 4;
  const RunResult serial = RunWith<GandivaFairScheduler>(
      config, serial_gf, [](auto& exp, auto& s) { FaultChurnScenario(exp, s); });
  const RunResult parallel = RunWith<GandivaFairScheduler>(
      config, parallel_gf, [](auto& exp, auto& s) { FaultChurnScenario(exp, s); });
  EXPECT_GT(serial.counts[static_cast<size_t>(DecisionType::kSuspend)], 0);
  EXPECT_GT(serial.counts[static_cast<size_t>(DecisionType::kResume)], 0);
  EXPECT_GT(serial.counts[static_cast<size_t>(DecisionType::kPlace)], 0);
  ExpectIdentical(serial, parallel);
}

// The sharded planner's determinism gate: plan_shards > 1 plans contiguous
// server shards on pool threads with deferred RNG draws, and the merged
// streams must stay bit-identical to the serial fused pipeline under fault
// churn — where orphan re-placements, migration retries and recovery
// placements all cross shard boundaries between ticks. A hidden cross-shard
// dependency in the fan-out (shared scratch, RNG order, dirty-set coupling)
// would diverge the streams here.
TEST(EquivalenceTest, ShardedPlanDecisionStreamMatchesSerialUnderFaultChurn) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(8, 8);
  const GandivaFairConfig serial_gf;
  GandivaFairConfig sharded_gf;
  sharded_gf.plan_shards = 4;
  sharded_gf.plan_threads = 4;
  const RunResult serial = RunWith<GandivaFairScheduler>(
      config, serial_gf, [](auto& exp, auto& s) { FaultChurnScenario(exp, s); });
  const RunResult sharded = RunWith<GandivaFairScheduler>(
      config, sharded_gf, [](auto& exp, auto& s) { FaultChurnScenario(exp, s); });
  EXPECT_GT(serial.counts[static_cast<size_t>(DecisionType::kSuspend)], 0);
  EXPECT_GT(serial.counts[static_cast<size_t>(DecisionType::kResume)], 0);
  ExpectIdentical(serial, sharded);

  // Both fan-outs at once: the sharded plan phase and the parallel apply
  // share one tick pool and must still reproduce the serial streams.
  GandivaFairConfig combined_gf;
  combined_gf.plan_shards = 4;
  combined_gf.plan_threads = 2;
  combined_gf.apply_threads = 4;
  const RunResult combined = RunWith<GandivaFairScheduler>(
      config, combined_gf, [](auto& exp, auto& s) { FaultChurnScenario(exp, s); });
  ExpectIdentical(serial, combined);
}

// Shard-count invariance on the E6-style homogeneous scenario: every fixed
// shard count — including one that exceeds the server count and gets
// clamped — must produce the serial planner's exact decision log. The
// partition is a fixed ascending-id split merged in shard order, so the
// count can only matter if some per-shard state leaks across the cut.
TEST(EquivalenceTest, ShardCountInvarianceOnHomogeneousScenario) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(25, 8);
  const GandivaFairConfig serial_gf;
  const RunResult serial = RunWith<GandivaFairScheduler>(
      config, serial_gf, [](auto& exp, auto& s) { HomogeneousScenario(exp, s); });
  EXPECT_GT(serial.counts[static_cast<size_t>(DecisionType::kSuspend)], 0);
  EXPECT_GT(serial.migrations, 0);
  for (const int shards : {2, 4, 8, 64}) {
    GandivaFairConfig sharded_gf;
    sharded_gf.plan_shards = shards;
    sharded_gf.plan_threads = 2;
    const RunResult sharded = RunWith<GandivaFairScheduler>(
        config, sharded_gf, [](auto& exp, auto& s) { HomogeneousScenario(exp, s); });
    SCOPED_TRACE("plan_shards=" + std::to_string(shards));
    ExpectIdentical(serial, sharded);
  }
}

// Shard-count invariance on the E14-style paper-scale trace: the widest
// surface — trace-driven arrivals/finishes, trading, balancing and stealing
// interleaved with sharded ticks — across 2/4/8 shards.
TEST(EquivalenceTest, ShardCountInvarianceOnTraceDrivenScenario) {
  ExperimentConfig config;
  config.topology = cluster::PaperScaleTopology();
  config.seed = 2020;
  const GandivaFairConfig serial_gf;
  const RunResult serial = RunWith<GandivaFairScheduler>(
      config, serial_gf, [](auto& exp, auto& s) { TraceDrivenScenario(exp, s); });
  EXPECT_GT(serial.counts[static_cast<size_t>(DecisionType::kPlace)], 0);
  for (const int shards : {2, 4, 8}) {
    GandivaFairConfig sharded_gf;
    sharded_gf.plan_shards = shards;
    sharded_gf.plan_threads = 4;
    const RunResult sharded = RunWith<GandivaFairScheduler>(
        config, sharded_gf, [](auto& exp, auto& s) { TraceDrivenScenario(exp, s); });
    SCOPED_TRACE("plan_shards=" + std::to_string(shards));
    ExpectIdentical(serial, sharded);
  }
}

TEST(EquivalenceTest, TraceDrivenPaperScaleDecisionStreamMatchesLegacy) {
  ExperimentConfig config;
  config.topology = cluster::PaperScaleTopology();
  config.seed = 2020;
  const GandivaFairConfig gf;
  const RunResult legacy = RunWith<LegacyGandivaFairScheduler>(
      config, gf, [](auto& exp, auto& s) { TraceDrivenScenario(exp, s); });
  const RunResult refactored = RunWith<GandivaFairScheduler>(
      config, gf, [](auto& exp, auto& s) { TraceDrivenScenario(exp, s); });
  EXPECT_GT(legacy.counts[static_cast<size_t>(DecisionType::kPlace)], 0);
  EXPECT_GT(legacy.counts[static_cast<size_t>(DecisionType::kSuspend)], 0);
  ExpectIdentical(legacy, refactored);
}

// Pipeline safety property: within every per-server slice of a
// ScheduleDelta, suspends come strictly before resumes, and replaying the
// slice against the server's pre-tick occupancy never resumes a gang onto
// GPUs its own suspends have not yet freed. Verified live over an
// oversubscribed mixed-gang cluster where every quantum flips the schedule.
// Balancing/stealing are disabled so occupancy only changes at quantum
// edges and the pre-tick snapshot stays exact.
TEST(QuantumPipelineProperty, DeltaNeverResumesOntoUnfreedGpus) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(4, 8);
  Experiment exp(config);
  auto& a = exp.users().Create("a");
  auto& b = exp.users().Create("b");
  GandivaFairConfig gf;
  gf.enable_load_balancing = false;
  gf.enable_work_stealing = false;
  exp.UseGandivaFair(gf);
  const int gangs[] = {1, 1, 2, 4, 8, 2, 1, 1};
  for (int i = 0; i < 40; ++i) {  // ~2x oversubscription, infinite jobs
    exp.SubmitAt(kTimeZero, (i % 2 == 0 ? a : b).id, "DCGAN", gangs[i % 8],
                 Hours(100000));
  }
  exp.Run(Minutes(2));

  const GandivaFairScheduler* sched = exp.gandiva();
  SimTime now = exp.sim().Now();
  int64_t resumes_checked = 0;
  for (int q = 0; q < 50; ++q) {
    std::vector<int> busy_before;
    for (const auto& server : exp.cluster().servers()) {
      busy_before.push_back(server.num_busy());
    }
    now += Minutes(1);
    exp.Run(now);  // exactly one quantum tick

    const ScheduleDelta& delta = sched->last_delta();
    size_t i = 0;
    ServerId prev_server = ServerId::Invalid();
    while (i < delta.ops.size()) {
      const ServerId server = delta.ops[i].server;
      if (prev_server.valid()) {
        ASSERT_LT(prev_server.value(), server.value())
            << "per-server slices out of plan order";
      }
      prev_server = server;
      const cluster::Server& host = exp.cluster().server(server);
      int free = host.num_gpus() - busy_before[server.value()];
      bool seen_resume = false;
      for (; i < delta.ops.size() && delta.ops[i].server == server; ++i) {
        const exec::ScheduleOp& op = delta.ops[i];
        const int gang = exp.jobs().Get(op.job).gang_size;
        if (op.resume) {
          seen_resume = true;
          ASSERT_GE(free, gang)
              << "resume of job " << op.job << " on server " << server
              << " before its GPUs were freed";
          free -= gang;
          resumes_checked += 1;
        } else {
          ASSERT_FALSE(seen_resume)
              << "suspend after a resume in server " << server << "'s slice";
          free += gang;
        }
      }
      ASSERT_GE(free, 0);
    }
    // Oversubscribed flip: every server must actually have been planned.
    EXPECT_EQ(sched->last_plan().servers.size(), 4u);
    EXPECT_TRUE(sched->last_plan().skipped_vt.empty());
  }
  EXPECT_GT(resumes_checked, 0);
}

// Steady-state counterpart: once demand exactly covers capacity and nothing
// changes, the planner's dirty-set skip must prove every server unchanged —
// no planned servers, no ops, only virtual-time floors.
TEST(QuantumPipelineProperty, SteadyStateSkipsEveryServer) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(4, 8);
  Experiment exp(config);
  auto& a = exp.users().Create("a");
  auto& b = exp.users().Create("b");
  exp.UseGandivaFair({});
  for (int i = 0; i < 32; ++i) {  // demand == capacity
    exp.SubmitAt(kTimeZero, (i % 2 == 0 ? a : b).id, "DCGAN", 1, Hours(100000));
  }
  exp.Run(Minutes(2));

  const GandivaFairScheduler* sched = exp.gandiva();
  SimTime now = exp.sim().Now();
  for (int q = 0; q < 20; ++q) {
    now += Minutes(1);
    exp.Run(now);
    EXPECT_TRUE(sched->last_plan().servers.empty());
    EXPECT_EQ(sched->last_plan().skipped_vt.size(), 4u);
    EXPECT_TRUE(sched->last_delta().empty());
  }
}

}  // namespace
}  // namespace gfair::sched
