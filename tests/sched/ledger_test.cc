#include "sched/ledger.h"

#include <gtest/gtest.h>

namespace gfair::sched {
namespace {

using cluster::GpuGeneration;

TEST(LedgerTest, GpuTimeAccumulatesPerUserAndGen) {
  FairnessLedger ledger;
  ledger.RecordGpuTime(UserId(0), GpuGeneration::kV100, 0, Minutes(10), 4);
  ledger.RecordGpuTime(UserId(0), GpuGeneration::kK80, 0, Minutes(5), 2);
  ledger.RecordGpuTime(UserId(1), GpuGeneration::kV100, 0, Minutes(10), 1);

  EXPECT_DOUBLE_EQ(ledger.GpuMs(UserId(0), GpuGeneration::kV100, 0, Hours(1)),
                   4.0 * Minutes(10));
  EXPECT_DOUBLE_EQ(ledger.GpuMs(UserId(0), 0, Hours(1)),
                   4.0 * Minutes(10) + 2.0 * Minutes(5));
  EXPECT_DOUBLE_EQ(ledger.GpuMs(UserId(1), 0, Hours(1)), 1.0 * Minutes(10));
}

TEST(LedgerTest, WindowedQueries) {
  FairnessLedger ledger;
  // Intervals are credited at their END time.
  ledger.RecordGpuTime(UserId(0), GpuGeneration::kV100, 0, Minutes(10), 1);
  ledger.RecordGpuTime(UserId(0), GpuGeneration::kV100, Minutes(10), Minutes(20), 1);
  EXPECT_DOUBLE_EQ(
      ledger.GpuMs(UserId(0), GpuGeneration::kV100, Minutes(15), Minutes(25)),
      static_cast<double>(Minutes(10)));
}

TEST(LedgerTest, UnknownUserIsZero) {
  FairnessLedger ledger;
  EXPECT_DOUBLE_EQ(ledger.GpuMs(UserId(9), 0, Hours(1)), 0.0);
  EXPECT_DOUBLE_EQ(ledger.DemandAt(UserId(9), GpuGeneration::kK80, Hours(1)), 0.0);
}

TEST(LedgerTest, DemandTracksChanges) {
  FairnessLedger ledger;
  ledger.RecordDemandChange(UserId(0), GpuGeneration::kV100, Minutes(1), +4);
  ledger.RecordDemandChange(UserId(0), GpuGeneration::kV100, Minutes(5), +2);
  ledger.RecordDemandChange(UserId(0), GpuGeneration::kV100, Minutes(9), -4);
  EXPECT_DOUBLE_EQ(ledger.DemandAt(UserId(0), GpuGeneration::kV100, Minutes(0)), 0.0);
  EXPECT_DOUBLE_EQ(ledger.DemandAt(UserId(0), GpuGeneration::kV100, Minutes(3)), 4.0);
  EXPECT_DOUBLE_EQ(ledger.DemandAt(UserId(0), GpuGeneration::kV100, Minutes(7)), 6.0);
  EXPECT_DOUBLE_EQ(ledger.DemandAt(UserId(0), GpuGeneration::kV100, Minutes(20)), 2.0);
  EXPECT_DOUBLE_EQ(ledger.TotalDemandAt(UserId(0), Minutes(7)), 6.0);
}

TEST(LedgerTest, KnownUsersSorted) {
  FairnessLedger ledger;
  ledger.RecordDemandChange(UserId(3), GpuGeneration::kK80, 0, 1);
  ledger.RecordDemandChange(UserId(1), GpuGeneration::kK80, 0, 1);
  const auto users = ledger.KnownUsers();
  ASSERT_EQ(users.size(), 2u);
  EXPECT_EQ(users[0], UserId(1));
  EXPECT_EQ(users[1], UserId(3));
}

TEST(LedgerDeathTest, NegativeDemandAborts) {
  FairnessLedger ledger;
  ledger.RecordDemandChange(UserId(0), GpuGeneration::kK80, 0, 1);
  EXPECT_DEATH(ledger.RecordDemandChange(UserId(0), GpuGeneration::kK80, 1, -2),
               "negative");
}

TEST(LedgerTest, ZeroLengthIntervalIgnored) {
  FairnessLedger ledger;
  ledger.RecordGpuTime(UserId(0), GpuGeneration::kK80, 5, 5, 3);
  EXPECT_DOUBLE_EQ(ledger.GpuMs(UserId(0), 0, Hours(1)), 0.0);
}

}  // namespace
}  // namespace gfair::sched
