// Frozen copy of the pre-refactor GandivaFairScheduler monolith (the "seed"
// implementation), kept ONLY as the oracle for the decision-log equivalence
// test: the refactored subsystem-based scheduler must emit an identical
// DecisionLog sequence on a fixed-seed scenario. Do not modify the behavior
// of this class; it intentionally preserves the old O(jobs^2) recompute-on-
// demand structure (minus the removed ResidentJobs()-by-value API).
//
// One sanctioned behavior change since freezing: loops over the per-user
// unordered residency sets that feed decisions (weighted-demand float sums,
// probe snapshots, rebalance candidate scans, entitlement application order)
// iterate in SORTED order, mirroring the determinism fix in the production
// scheduler — both sides previously leaned on identical hash-iteration
// order, which made the equivalence suite pass while leaving every decision
// platform-dependent. The sorted order is now the specified behavior.
#include "legacy_gandiva_fair.h"

#include "sched/hierarchy.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "common/log.h"
#include "common/sorted.h"

namespace gfair::sched {

using cluster::GenerationIndex;
using cluster::GpuGeneration;
using workload::Job;
using workload::JobState;

namespace internal_legacy {
// "Long ago" sentinel for last_migration so fresh jobs pass the interval check.
constexpr SimTime kLongAgo = -(int64_t{1} << 60);
// Floor for stride tickets (a user whose pool entitlement was traded away
// still needs a positive ticket count; residency rebalancing then moves its
// jobs out of the pool).
constexpr double kMinTickets = 1e-6;
}  // namespace internal_legacy

using internal_legacy::kLongAgo;
using internal_legacy::kMinTickets;

LegacyGandivaFairScheduler::LegacyGandivaFairScheduler(const SchedulerEnv& env,
                                           GandivaFairConfig config)
    : env_(env), config_(config), trading_(config.trade) {
  profiles_ = ProfileStore(config_.profile_min_samples);
  strides_.reserve(static_cast<size_t>(env_.cluster.num_servers()));
  for (const auto& server : env_.cluster.servers()) {
    strides_.emplace_back(server.num_gpus(), config_.stride);
  }
  last_steal_.assign(static_cast<size_t>(env_.cluster.num_servers()),
                     -(int64_t{1} << 60));
  draining_.assign(static_cast<size_t>(env_.cluster.num_servers()), false);
}

LocalStrideScheduler& LegacyGandivaFairScheduler::StrideFor(ServerId server) {
  GFAIR_CHECK(server.valid() && server.value() < strides_.size());
  return strides_[server.value()];
}

const LocalStrideScheduler& LegacyGandivaFairScheduler::stride_for(ServerId server) const {
  GFAIR_CHECK(server.valid() && server.value() < strides_.size());
  return strides_[server.value()];
}

GpuGeneration LegacyGandivaFairScheduler::GenOf(ServerId server) const {
  return env_.cluster.server(server).generation();
}

LegacyGandivaFairScheduler::JobInfo& LegacyGandivaFairScheduler::InfoFor(JobId id) {
  auto it = job_info_.find(id);
  GFAIR_CHECK_MSG(it != job_info_.end(), "unknown job");
  return it->second;
}

void LegacyGandivaFairScheduler::Start() {
  env_.sim.Every(config_.quantum, [this]() { QuantumTick(); });
  if (config_.enable_load_balancing && env_.cluster.num_servers() > 1) {
    env_.sim.Every(config_.balance_period, [this]() { BalanceTick(); });
  }
  if (config_.enable_trading && env_.cluster.heterogeneous()) {
    env_.sim.Every(config_.trade_period, [this]() { TradeTick(); });
  }
}

void LegacyGandivaFairScheduler::Submit(JobId id) {
  Job& job = env_.jobs.Get(id);
  GFAIR_CHECK(job.state == JobState::kQueued);
  if (!ticket_matrix_.HasUser(job.user)) {
    ticket_matrix_.RegisterUser(job.user, env_.users.Get(job.user).tickets);
  }
  user_unfinished_jobs_[job.user] += 1;
  user_total_demand_[job.user] += job.gang_size;
  if (user_unfinished_jobs_[job.user] == 1) {
    ApplyHierarchy();  // active set grew
  }

  JobInfo info;
  info.last_migration = kLongAgo;
  job_info_[id] = info;

  const ServerId dest = ChoosePlacement(job);
  GFAIR_CHECK_MSG(dest.valid(), "no server can host this gang");
  decisions_.Record(env_.sim.Now(), DecisionType::kPlace, id, ServerId::Invalid(), dest);
  env_.exec.MakeResident(id, dest);
  AttachResident(id, dest);
  FillIdleGpus(dest);
}

void LegacyGandivaFairScheduler::OnJobFinished(JobId id) {
  const Job& job = env_.jobs.Get(id);
  JobInfo& info = InfoFor(id);
  const ServerId server = info.home;
  GFAIR_CHECK(server.valid());

  // Account the final partial quantum to the stride pass before removal.
  LocalStrideScheduler& stride = StrideFor(server);
  if (stride.Contains(id)) {
    stride.Charge(id, env_.sim.Now() - info.last_charge);
  }
  DetachResident(id);

  auto it = user_unfinished_jobs_.find(job.user);
  GFAIR_CHECK(it != user_unfinished_jobs_.end() && it->second > 0);
  it->second -= 1;
  user_total_demand_[job.user] -= job.gang_size;
  if (it->second == 0) {
    ApplyHierarchy();  // active set shrank
  }

  info.home = ServerId::Invalid();
  FillIdleGpus(server);
}

void LegacyGandivaFairScheduler::OnMigrationDone(JobId id) {
  JobInfo& info = InfoFor(id);
  GFAIR_CHECK(info.migrating);
  info.migrating = false;
  AttachResident(id, info.home);
  FillIdleGpus(info.home);
}

void LegacyGandivaFairScheduler::QuantumTick() {
  // Flush open run segments first so ledger windows attribute GPU time to
  // the quantum it was actually consumed in (long uninterrupted runs would
  // otherwise credit hours of GPU time at their eventual close).
  env_.exec.SyncAll();
  for (const auto& server : env_.cluster.servers()) {
    ChargeRunningOn(server.id());
    CollectSamples(server.id());
    ApplyTargetSet(server.id());
  }
  if (config_.enable_work_stealing) {
    for (const auto& server : env_.cluster.servers()) {
      if (server.num_free() > 0) {
        TrySteal(server.id());
      }
    }
  }
}

void LegacyGandivaFairScheduler::ChargeRunningOn(ServerId server) {
  LocalStrideScheduler& stride = StrideFor(server);
  const SimTime now = env_.sim.Now();
  for (JobId id : stride.ResidentJobs()) {
    if (env_.exec.IsRunning(id)) {
      JobInfo& info = InfoFor(id);
      stride.Charge(id, now - info.last_charge);
      info.last_charge = now;
    }
  }
}

void LegacyGandivaFairScheduler::CollectSamples(ServerId server) {
  LocalStrideScheduler& stride = StrideFor(server);
  const GpuGeneration gen = GenOf(server);
  for (JobId id : stride.ResidentJobs()) {
    if (env_.exec.IsRunning(id)) {
      const Job& job = env_.jobs.Get(id);
      const double observed = env_.exec.SampleObservedRate(id);
      profiles_.AddSample(job.model, gen,
                          PerGpuRate::FromGangRate(observed, job.gang_size));
    }
  }
}

void LegacyGandivaFairScheduler::ApplyTargetSet(ServerId server) {
  LocalStrideScheduler& stride = StrideFor(server);
  const std::vector<JobId> target = stride.SelectForQuantum();
  const std::unordered_set<JobId> target_set(target.begin(), target.end());

  // Suspend first so the incoming gang's GPUs are free.
  for (JobId id : stride.ResidentJobs()) {
    if (env_.exec.IsRunning(id) && target_set.count(id) == 0) {
      env_.exec.Suspend(id);
      decisions_.Record(env_.sim.Now(), DecisionType::kSuspend, id, server);
    }
  }
  const SimTime now = env_.sim.Now();
  for (JobId id : target) {
    if (!env_.exec.IsRunning(id)) {
      env_.exec.Resume(id);
      decisions_.Record(now, DecisionType::kResume, id, ServerId::Invalid(), server);
      InfoFor(id).last_charge = now;
    }
  }
}

void LegacyGandivaFairScheduler::FillIdleGpus(ServerId server) {
  cluster::Server& host = env_.cluster.server(server);
  if (host.num_free() == 0) {
    return;
  }
  // Work conservation between quantum ticks: start the best waiting jobs
  // that fit the currently idle GPUs, without preempting anyone. Unlike the
  // quantum boundary, GPUs here free up incrementally, so with
  // reserve_blocked_gang we stop at the first waiting gang that does not fit:
  // its GPUs accumulate instead of being nibbled away by jobs behind it.
  LocalStrideScheduler& stride = StrideFor(server);
  const SimTime now = env_.sim.Now();
  for (JobId id : stride.SelectForQuantum()) {
    if (env_.exec.IsRunning(id)) {
      continue;
    }
    const Job& job = env_.jobs.Get(id);
    if (host.CanFit(job.gang_size)) {
      env_.exec.Resume(id);
      decisions_.Record(now, DecisionType::kResume, id, ServerId::Invalid(), server);
      InfoFor(id).last_charge = now;
    } else if (config_.stride.reserve_blocked_gang) {
      break;
    }
  }
  if (host.num_free() > 0 && config_.enable_work_stealing) {
    TrySteal(server);
  }
}

void LegacyGandivaFairScheduler::AttachResident(JobId id, ServerId server) {
  Job& job = env_.jobs.Get(id);
  JobInfo& info = InfoFor(id);
  info.home = server;
  const GpuGeneration gen = GenOf(server);
  auto& pool_jobs = user_pool_jobs_[job.user][GenerationIndex(gen)];
  GFAIR_CHECK(pool_jobs.insert(id).second);
  StrideFor(server).AddJob(id, job.gang_size,
                           PerJobTickets(job.user, gen, job));
  RefreshPoolTickets(job.user, gen);
  ledger_.RecordDemandChange(job.user, gen, env_.sim.Now(), job.gang_size);
}

void LegacyGandivaFairScheduler::DetachResident(JobId id) {
  Job& job = env_.jobs.Get(id);
  JobInfo& info = InfoFor(id);
  GFAIR_CHECK(info.home.valid());
  const GpuGeneration gen = GenOf(info.home);
  auto& pool_jobs = user_pool_jobs_[job.user][GenerationIndex(gen)];
  GFAIR_CHECK(pool_jobs.erase(id) == 1);
  StrideFor(info.home).RemoveJob(id);
  RefreshPoolTickets(job.user, gen);
  ledger_.RecordDemandChange(job.user, gen, env_.sim.Now(), -job.gang_size);
}

double LegacyGandivaFairScheduler::WeightedResidentDemand(UserId user,
                                                    GpuGeneration gen) const {
  auto it = user_pool_jobs_.find(user);
  if (it == user_pool_jobs_.end()) {
    return 0.0;
  }
  double total = 0.0;
  // Sorted: float accumulation feeding tickets (mirrors ResidencyIndex).
  for (JobId id : common::SortedKeys(it->second[GenerationIndex(gen)])) {
    const Job& job = env_.jobs.Get(id);
    total += job.gang_size * job.weight;
  }
  return total;
}

double LegacyGandivaFairScheduler::PerJobTickets(UserId user, GpuGeneration gen,
                                           const Job& job) const {
  // A user's pool tickets are split across its resident jobs proportional to
  // weight x gang size (equal weighted GPU-time per demanded GPU). An equal
  // per-job split would let the user's 1-GPU jobs run continuously while its
  // 8-GPU gang — one job, one share — starved at an eighth of its demand.
  const double pool_tickets =
      std::max(ticket_matrix_.Get(user, gen).raw(), kMinTickets);
  const double share = job.gang_size * job.weight;
  const double demand = std::max(WeightedResidentDemand(user, gen), share);
  return pool_tickets * share / demand;
}

void LegacyGandivaFairScheduler::RefreshPoolTickets(UserId user, GpuGeneration gen) {
  auto it = user_pool_jobs_.find(user);
  if (it == user_pool_jobs_.end()) {
    return;
  }
  const auto& pool_jobs = it->second[GenerationIndex(gen)];
  if (pool_jobs.empty()) {
    return;
  }
  for (JobId id : pool_jobs) {
    const Job& job = env_.jobs.Get(id);
    StrideFor(job_info_.at(id).home)
        .SetTickets(id, PerJobTickets(user, gen, job));
  }
}

void LegacyGandivaFairScheduler::RefreshAllTickets() {
  for (const auto& [user, pools] : user_pool_jobs_) {
    for (GpuGeneration gen : cluster::kAllGenerations) {
      RefreshPoolTickets(user, gen);
    }
  }
}

ClusterSnapshot LegacyGandivaFairScheduler::Snapshot() const {
  ClusterSnapshot snapshot;
  snapshot.time = env_.sim.Now();
  for (const auto& server : env_.cluster.servers()) {
    ServerSnapshot view;
    view.id = server.id();
    view.generation = server.generation();
    view.num_gpus = server.num_gpus();
    view.busy_gpus = server.num_busy();
    const auto& stride = stride_for(server.id());
    view.resident_jobs = static_cast<int>(stride.num_jobs());
    view.demand_load = stride.DemandLoad() / static_cast<double>(server.num_gpus());
    view.ticket_load =
        stride.TicketLoad().raw() / static_cast<double>(server.num_gpus());
    view.draining = draining_[server.id().value()];
    snapshot.servers.push_back(view);
  }
  for (const auto& user : env_.users.users()) {
    UserSnapshot view;
    view.id = user.id;
    view.name = user.name;
    auto it = user_unfinished_jobs_.find(user.id);
    view.unfinished_jobs = it != user_unfinished_jobs_.end() ? it->second : 0;
    for (GpuGeneration gen : cluster::kAllGenerations) {
      const size_t g = GenerationIndex(gen);
      view.entitlement_gpus[g] =
          ticket_matrix_.HasUser(user.id) ? EntitlementGpus(user.id, gen) : 0.0;
      view.resident_demand[g] = ResidentDemand(user.id, gen);
    }
    snapshot.users.push_back(view);
  }
  return snapshot;
}

bool LegacyGandivaFairScheduler::IsDraining(ServerId server) const {
  GFAIR_CHECK(server.valid() && server.value() < draining_.size());
  return draining_[server.value()];
}

void LegacyGandivaFairScheduler::DrainServer(ServerId server) {
  GFAIR_CHECK(server.valid() && server.value() < draining_.size());
  if (draining_[server.value()]) {
    return;
  }
  draining_[server.value()] = true;
  GFAIR_ILOG << "draining server " << server;
  DrainTick();
}

void LegacyGandivaFairScheduler::UndrainServer(ServerId server) {
  GFAIR_CHECK(server.valid() && server.value() < draining_.size());
  draining_[server.value()] = false;
}

void LegacyGandivaFairScheduler::DrainTick() {
  const SimTime now = env_.sim.Now();
  for (size_t s = 0; s < draining_.size(); ++s) {
    if (!draining_[s]) {
      continue;
    }
    const ServerId source(static_cast<uint32_t>(s));
    const cluster::GpuGeneration gen = GenOf(source);
    // Bounded batch: residents leave over successive balance ticks so the
    // migration network is not swamped.
    int budget = config_.max_migrations_per_round;
    // Copy: StartMigration below removes jobs from this stride scheduler,
    // invalidating its cached resident vector.
    const std::vector<JobId> resident = StrideFor(source).ResidentJobs();
    for (JobId id : resident) {
      if (budget <= 0) {
        break;
      }
      const Job& job = env_.jobs.Get(id);
      // Least-loaded non-draining server of the pool that fits the gang.
      ServerId dest = ServerId::Invalid();
      double dest_load = std::numeric_limits<double>::infinity();
      for (ServerId sid : env_.cluster.servers_of(gen)) {
        if (sid == source || draining_[sid.value()]) {
          continue;
        }
        const auto& peer = env_.cluster.server(sid);
        if (peer.num_gpus() < job.gang_size) {
          continue;
        }
        const double load = stride_for(sid).TicketLoad().raw() / peer.num_gpus();
        if (load < dest_load) {
          dest_load = load;
          dest = sid;
        }
      }
      if (!dest.valid()) {
        GFAIR_WLOG << "drain: no destination for job " << id << " at "
                   << FormatDuration(now) << "; leaving it in place";
        continue;
      }
      StartMigration(id, dest, MigrationCause::kBalance);
      --budget;
    }
  }
}

void LegacyGandivaFairScheduler::ApplyHierarchy() {
  if (!config_.enable_hierarchical_sharing) {
    return;
  }
  bool any_grouped = false;
  for (const auto& user : env_.users.users()) {
    if (!user.group.empty()) {
      any_grouped = true;
      break;
    }
  }
  if (!any_grouped) {
    return;
  }
  const std::vector<UserId> active = ActiveUsers();
  if (active.empty()) {
    return;
  }
  // Mirrors the refactored scheduler: sorted for deterministic row insertion.
  for (const auto& [user, tickets] :
       common::SortedItems(ComputeHierarchicalTickets(env_.users, active))) {
    // Resets the user's pool row to the new base; the next trading epoch
    // rebuilds trades on top (activity changes invalidate them anyway).
    ticket_matrix_.RegisterUser(user, tickets);
  }
  RefreshAllTickets();
}

std::vector<UserId> LegacyGandivaFairScheduler::ActiveUsers() const {
  std::vector<UserId> active;
  for (const auto& [user, count] : user_unfinished_jobs_) {
    if (count > 0) {
      active.push_back(user);
    }
  }
  std::sort(active.begin(), active.end());
  return active;
}

double LegacyGandivaFairScheduler::EntitlementGpus(UserId user, GpuGeneration gen) const {
  const int pool = env_.cluster.total_gpus(gen);
  if (pool == 0) {
    return 0.0;
  }
  const std::vector<UserId> active = ActiveUsers();
  if (active.empty()) {
    return static_cast<double>(pool);
  }
  double total = 0.0;
  double mine = 0.0;
  for (UserId v : active) {
    const double tickets = ticket_matrix_.Get(v, gen).raw();
    total += tickets;
    if (v == user) {
      mine = tickets;
    }
  }
  if (total <= 0.0) {
    return static_cast<double>(pool) / static_cast<double>(active.size());
  }
  return mine / total * static_cast<double>(pool);
}

double LegacyGandivaFairScheduler::ResidentDemand(UserId user, GpuGeneration gen) const {
  auto it = user_pool_jobs_.find(user);
  if (it == user_pool_jobs_.end()) {
    return 0.0;
  }
  double demand = 0.0;
  for (JobId id : it->second[GenerationIndex(gen)]) {
    demand += env_.jobs.Get(id).gang_size;
  }
  return demand;
}

}  // namespace gfair::sched
#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/log.h"
#include "legacy_gandiva_fair.h"

namespace gfair::sched {

using cluster::GenerationIndex;
using cluster::GpuGeneration;
using workload::Job;

namespace {
// Entitlement floor when scoring pools so that fully-traded-away pools score
// astronomically bad instead of dividing by zero.
constexpr double kEntitlementFloor = 0.01;
}  // namespace

ServerId LegacyGandivaFairScheduler::ChoosePlacement(const Job& job) const {
  // Pool choice: keep the user's per-pool resident demand proportional to its
  // per-pool entitlement, preferring faster generations on ties (we iterate
  // fastest-first and only accept strictly better scores).
  ServerId best_server = ServerId::Invalid();
  double best_score = std::numeric_limits<double>::infinity();

  const auto& model = env_.zoo.Get(job.model);
  for (size_t g = cluster::kNumGenerations; g-- > 0;) {
    const GpuGeneration gen = cluster::kAllGenerations[g];
    if (env_.cluster.total_gpus(gen) == 0 || !model.FitsGeneration(gen)) {
      continue;
    }
    // Cheapest server of the pool that can ever host the gang; residency is
    // oversubscribed (time slicing), so "fits" means physical GPU count.
    // While the pool has idle capacity, occupancy (resident demand per GPU)
    // is the signal — idle GPUs must attract work. Once every server is
    // saturated, ticket load is the signal: a new job's realized share is
    // its tickets relative to its server's ticket density, so packing by
    // "fewest jobs" would herd heavy-ticket users together and dilute them.
    ServerId candidate = ServerId::Invalid();
    double candidate_demand = std::numeric_limits<double>::infinity();
    double candidate_tickets = std::numeric_limits<double>::infinity();
    for (ServerId id : env_.cluster.servers_of(gen)) {
      const auto& server = env_.cluster.server(id);
      if (server.num_gpus() < job.gang_size || IsDraining(id)) {
        continue;
      }
      const double gpus = server.num_gpus();
      // Saturated servers compare equal on occupancy; below saturation the
      // emptier server wins.
      const double demand_load =
          std::min(1.0, stride_for(id).DemandLoad() / gpus);
      const double ticket_load = stride_for(id).TicketLoad().raw() / gpus;
      if (demand_load < candidate_demand - 1e-9 ||
          (demand_load < candidate_demand + 1e-9 && ticket_load < candidate_tickets)) {
        candidate_demand = demand_load;
        candidate_tickets = ticket_load;
        candidate = id;
      }
    }
    if (!candidate.valid()) {
      continue;
    }
    const double entitlement =
        std::max(EntitlementGpus(job.user, gen), kEntitlementFloor);
    const double demand = ResidentDemand(job.user, gen) + job.gang_size;
    const double score = demand / entitlement;
    if (score < best_score - 1e-12) {
      best_score = score;
      best_server = candidate;
    }
  }
  return best_server;
}

void LegacyGandivaFairScheduler::TrySteal(ServerId server) {
  const SimTime now = env_.sim.Now();
  GFAIR_CHECK(server.value() < last_steal_.size());
  if (now - last_steal_[server.value()] < config_.quantum) {
    return;  // at most one steal per server per quantum
  }
  if (IsDraining(server)) {
    return;  // draining servers must not attract work
  }
  const cluster::Server& host = env_.cluster.server(server);
  const int free = host.num_free();
  if (free <= 0) {
    return;
  }
  const GpuGeneration gen = host.generation();

  // Most oversubscribed peer holding a suspended job that fits our idle
  // GPUs. Same-pool peers first; if none, pull queued work up from SLOWER
  // pools (an upgrade is always throughput-positive given the zoo's
  // monotone rates), respecting memory feasibility.
  JobId best = JobId::Invalid();
  double best_overflow = 0.25;  // require genuine oversubscription
  auto scan_pool = [&](GpuGeneration pool) {
    for (ServerId sid : env_.cluster.servers_of(pool)) {
      if (sid == server) {
        continue;
      }
      const auto& peer = env_.cluster.server(sid);
      const double overflow =
          stride_for(sid).DemandLoad() - static_cast<double>(peer.num_gpus());
      if (overflow <= best_overflow) {
        continue;
      }
      JobId candidate = JobId::Invalid();
      int candidate_gang = 0;
      for (JobId id : stride_for(sid).ResidentJobs()) {
        if (env_.exec.IsRunning(id)) {
          continue;
        }
        const Job& job = env_.jobs.Get(id);
        if (job.gang_size > free || job.gang_size <= candidate_gang) {
          continue;
        }
        if (!env_.zoo.Get(job.model).FitsGeneration(gen)) {
          continue;
        }
        if (now - job_info_.at(id).last_migration < config_.min_migration_interval) {
          continue;
        }
        candidate = id;
        candidate_gang = job.gang_size;
      }
      if (candidate.valid()) {
        best = candidate;
        best_overflow = overflow;
      }
    }
  };
  scan_pool(gen);
  if (!best.valid() && ActiveUsers().size() <= 1) {
    // Cross-pool upgrades are only a pure work-conservation move when a
    // single user is active; with multiple users, cross-pool allocation
    // belongs to the trading engine (stealing here would fight its
    // entitlements and skew shares).
    for (size_t g = 0; g < cluster::GenerationIndex(gen); ++g) {
      scan_pool(cluster::kAllGenerations[g]);
    }
  }
  if (!best.valid()) {
    return;
  }
  last_steal_[server.value()] = now;
  ++steals_started_;
  GFAIR_DLOG << "steal: job " << best << " -> server " << server;
  StartMigration(best, server, MigrationCause::kSteal);
}

void LegacyGandivaFairScheduler::StartMigration(JobId id, ServerId dest,
                                           MigrationCause cause) {
  JobInfo& info = InfoFor(id);
  GFAIR_CHECK(!info.migrating);
  GFAIR_CHECK(dest.valid() && dest != info.home);
  const ServerId source = info.home;
  decisions_.Record(env_.sim.Now(), DecisionFor(cause), id, source, dest);

  if (env_.exec.IsRunning(id)) {
    StrideFor(source).Charge(id, env_.sim.Now() - info.last_charge);
    env_.exec.Suspend(id);
  }
  DetachResident(id);
  info.migrating = true;
  info.last_migration = env_.sim.Now();
  info.home = dest;  // AttachResident uses this when the migration lands
  ++migrations_started_;
  env_.exec.Migrate(id, dest);
  GFAIR_DLOG << "migrating job " << id << " from server " << source << " to " << dest;
  FillIdleGpus(source);
}

}  // namespace gfair::sched
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/log.h"
#include "legacy_gandiva_fair.h"

namespace gfair::sched {

using cluster::GenerationIndex;
using cluster::GpuGeneration;
using cluster::kAllGenerations;
using workload::Job;

// ---------------------------------------------------------------------------
// Load balancing: keep per-server ticket load even within each pool.
// ---------------------------------------------------------------------------

void LegacyGandivaFairScheduler::BalanceTick() {
  const SimTime now = env_.sim.Now();
  DrainTick();  // evacuate draining servers first
  for (GpuGeneration gen : kAllGenerations) {
    const auto& servers = env_.cluster.servers_of(gen);
    if (servers.size() < 2) {
      continue;
    }

    // Pass 1 — work conservation: a server whose residents demand more GPUs
    // than it has, next to a server with spare GPUs, wastes capacity that no
    // amount of local time-slicing can recover. Move waiting (suspended)
    // jobs from oversubscribed servers onto idle GPUs.
    std::unordered_map<ServerId, double> pending_demand;  // in-flight arrivals
    for (int round = 0; round < config_.max_migrations_per_round; ++round) {
      ServerId src = ServerId::Invalid();
      ServerId dst = ServerId::Invalid();
      double worst_overflow = 0.5;  // demand beyond capacity, in GPUs
      double best_spare = 0.999;    // idle GPUs worth of headroom
      for (ServerId id : servers) {
        if (IsDraining(id)) {
          continue;
        }
        const auto& server = env_.cluster.server(id);
        const double demand = stride_for(id).DemandLoad() + pending_demand[id];
        const double overflow = demand - server.num_gpus();
        const double spare = server.num_gpus() - demand;
        if (overflow > worst_overflow) {
          worst_overflow = overflow;
          src = id;
        }
        if (spare > best_spare) {
          best_spare = spare;
          dst = id;
        }
      }
      if (!src.valid() || !dst.valid()) {
        break;
      }
      // Largest suspended gang that fits the destination's headroom.
      JobId candidate = JobId::Invalid();
      int candidate_gang = 0;
      for (JobId id : StrideFor(src).ResidentJobs()) {
        if (env_.exec.IsRunning(id)) {
          continue;
        }
        const Job& job = env_.jobs.Get(id);
        const JobInfo& info = job_info_.at(id);
        if (now - info.last_migration < config_.min_migration_interval) {
          continue;
        }
        if (job.gang_size <= best_spare + 1e-9 && job.gang_size > candidate_gang) {
          candidate = id;
          candidate_gang = job.gang_size;
        }
      }
      if (!candidate.valid()) {
        break;
      }
      pending_demand[dst] += candidate_gang;
      StartMigration(candidate, dst, MigrationCause::kConserve);
    }

    // Pass 2 — fairness: even out per-server ticket load so every resident
    // job's stride share is realizable. Tickets already in flight toward a
    // destination this round:
    std::unordered_map<ServerId, double> pending;

    for (int round = 0; round < config_.max_migrations_per_round; ++round) {
      ServerId max_server = ServerId::Invalid();
      ServerId min_server = ServerId::Invalid();
      double max_load = -std::numeric_limits<double>::infinity();
      double min_load = std::numeric_limits<double>::infinity();
      double sum_load = 0.0;
      for (ServerId id : servers) {
        if (IsDraining(id)) {
          continue;
        }
        const double gpus = env_.cluster.server(id).num_gpus();
        const double load = (stride_for(id).TicketLoad().raw() + pending[id]) / gpus;
        sum_load += load;
        if (load > max_load) {
          max_load = load;
          max_server = id;
        }
        if (load < min_load) {
          min_load = load;
          min_server = id;
        }
      }
      const double avg_load = sum_load / static_cast<double>(servers.size());
      if (max_load - min_load <= config_.balance_threshold * std::max(avg_load, 1e-9)) {
        break;
      }

      // Candidate = resident job on the hottest server whose move shrinks the
      // gap the most and still leaves the destination cooler than the source
      // was.
      const double src_gpus = env_.cluster.server(max_server).num_gpus();
      const double dst_gpus = env_.cluster.server(min_server).num_gpus();
      JobId best = JobId::Invalid();
      double best_gap = max_load - min_load;
      for (JobId id : StrideFor(max_server).ResidentJobs()) {
        const Job& job = env_.jobs.Get(id);
        const JobInfo& info = job_info_.at(id);
        if (now - info.last_migration < config_.min_migration_interval) {
          continue;
        }
        if (env_.cluster.server(min_server).num_gpus() < job.gang_size) {
          continue;
        }
        const double tickets = stride_for(max_server).TicketsOf(id).raw();
        const double new_src = max_load - tickets / src_gpus;
        const double new_dst = min_load + tickets / dst_gpus;
        if (new_dst >= max_load) {
          continue;  // would just swap the hot spot
        }
        const double gap = std::abs(new_src - new_dst);
        if (gap < best_gap) {
          best_gap = gap;
          best = id;
        }
      }
      if (!best.valid()) {
        break;
      }
      pending[min_server] += stride_for(max_server).TicketsOf(best).raw();
      StartMigration(best, min_server, MigrationCause::kBalance);
    }
  }
}

// ---------------------------------------------------------------------------
// Trading epoch: probe coverage, recompute trades, reshape tickets, move jobs
// toward their users' traded entitlements.
// ---------------------------------------------------------------------------

bool LegacyGandivaFairScheduler::UserSpeedup(UserId user, GpuGeneration fast,
                                       GpuGeneration slow, double* out) const {
  GFAIR_CHECK(out != nullptr);
  auto it = user_pool_jobs_.find(user);
  if (it == user_pool_jobs_.end()) {
    return false;
  }
  // Demand-weighted mean over the user's resident jobs with usable profiles.
  double weight_sum = 0.0;
  double weighted = 0.0;
  for (GpuGeneration gen : kAllGenerations) {
    // Sorted: float accumulation (mirrors TradeCoordinator::UserSpeedup).
    for (JobId id : common::SortedKeys(it->second[GenerationIndex(gen)])) {
      const Job& job = env_.jobs.Get(id);
      const auto& model = env_.zoo.Get(job.model);
      if (!model.FitsGeneration(fast) || !model.FitsGeneration(slow)) {
        continue;  // this job could not move between these pools
      }
      gfair::Speedup speedup;
      if (profiles_.Speedup(job.model, fast, slow, &speedup)) {
        weighted += speedup.raw() * job.gang_size;
        weight_sum += job.gang_size;
      }
    }
  }
  if (weight_sum <= 0.0) {
    return false;
  }
  // Quantize to 0.25 steps: profile noise on the raw mean flips the
  // lender/borrower matching between epochs, and every flip costs a round of
  // residency migrations before the new entitlements are realized. Floor
  // rather than round — the trade rate is the borrower's speedup, so any
  // upward bias makes borrowers systematically overpay.
  *out = std::max(1.0, std::floor(weighted / weight_sum * 4.0) / 4.0);
  return true;
}

void LegacyGandivaFairScheduler::RunProbes() {
  int budget = config_.max_probes_per_epoch;
  const SimTime now = env_.sim.Now();

  for (UserId user : ActiveUsers()) {
    if (budget <= 0) {
      break;
    }
    auto it = user_pool_jobs_.find(user);
    if (it == user_pool_jobs_.end()) {
      continue;
    }
    // Snapshot: StartMigration mutates the residency sets. Sorted within
    // each pool (mirrors TradeCoordinator::RunProbes).
    std::vector<JobId> resident;
    for (GpuGeneration gen : kAllGenerations) {
      for (JobId id : common::SortedKeys(it->second[GenerationIndex(gen)])) {
        resident.push_back(id);
      }
    }
    bool probed = false;
    for (JobId id : resident) {
      if (probed) {
        break;
      }
      const Job& job = env_.jobs.Get(id);
      const JobInfo& info = job_info_.at(id);
      if (now - info.last_migration < config_.min_migration_interval) {
        continue;
      }
      const GpuGeneration current = GenOf(info.home);
      for (GpuGeneration missing : kAllGenerations) {
        if (missing == current || env_.cluster.total_gpus(missing) == 0) {
          continue;
        }
        if (!env_.zoo.Get(job.model).FitsGeneration(missing)) {
          continue;  // cannot even load there — nothing to profile
        }
        if (profiles_.HasEstimate(job.model, missing)) {
          continue;
        }
        // Cheapest server of the missing generation that can host the gang.
        ServerId dest = ServerId::Invalid();
        double dest_load = std::numeric_limits<double>::infinity();
        for (ServerId sid : env_.cluster.servers_of(missing)) {
          const auto& server = env_.cluster.server(sid);
          if (server.num_gpus() < job.gang_size || IsDraining(sid)) {
            continue;
          }
          const double load = stride_for(sid).TicketLoad().raw() / server.num_gpus();
          if (load < dest_load) {
            dest_load = load;
            dest = sid;
          }
        }
        if (dest.valid()) {
          GFAIR_DLOG << "probe: job " << id << " -> " << cluster::GenerationName(missing);
          StartMigration(id, dest, MigrationCause::kProbe);
          ++probes_started_;
          --budget;
          probed = true;  // one probe per user per epoch
          break;
        }
      }
    }
  }
}

void LegacyGandivaFairScheduler::TradeTick() {
  if (!config_.enable_trading || !env_.cluster.heterogeneous()) {
    return;
  }
  const std::vector<UserId> active = ActiveUsers();
  if (active.size() < 2) {
    // Nobody to trade with: no probes either (a probe strands the lone
    // user's job on a slower pool with no trade flow to bring it back).
    ticket_matrix_.ResetToBase();
    RefreshAllTickets();
    return;
  }
  RunProbes();

  TradeInputs inputs;
  inputs.active_users = active;
  for (UserId user : active) {
    // Matrix base = hierarchy-adjusted effective tickets (== the user's own
    // tickets when hierarchical sharing is off or the user is ungrouped).
    inputs.base_tickets[user] = ticket_matrix_.base(user);
    inputs.total_demand_gpus[user] = user_total_demand_.at(user);
  }
  for (GpuGeneration gen : kAllGenerations) {
    inputs.pool_sizes[GenerationIndex(gen)] = env_.cluster.total_gpus(gen);
  }
  inputs.user_speedup = [this](UserId user, GpuGeneration fast, GpuGeneration slow,
                               Speedup* out) {
    double raw = 0.0;
    if (!UserSpeedup(user, fast, slow, &raw)) {
      return false;
    }
    *out = Speedup::FromRatio(raw);
    return true;
  };

  const TradeOutcome outcome = trading_.Allocate(inputs);

  ticket_matrix_.ResetToBase();
  if (!outcome.trades.empty()) {
    // Pool tickets become the traded entitlements (stride normalizes within
    // each pool, so entitlement GPUs double as tickets). Sorted like the
    // production coordinator: sets on distinct users commute, but the
    // decision-affecting consumers of `entitlements` all route through
    // common::SortedItems.
    for (const auto& [user, entitlement] : common::SortedItems(outcome.entitlements)) {
      for (GpuGeneration gen : kAllGenerations) {
        ticket_matrix_.Set(user, gen,
                           std::max(entitlement[GenerationIndex(gen)], 0.0));
      }
    }
    executed_trades_.insert(executed_trades_.end(), outcome.trades.begin(),
                            outcome.trades.end());
    for (size_t i = 0; i < outcome.trades.size(); ++i) {
      decisions_.Record(env_.sim.Now(), DecisionType::kTrade, JobId::Invalid());
    }
  }
  RefreshAllTickets();
  if (!outcome.trades.empty()) {
    RebalanceResidency(outcome);
  }
}

void LegacyGandivaFairScheduler::RebalanceResidency(const TradeOutcome& outcome) {
  int budget = config_.max_trade_migrations;
  const SimTime now = env_.sim.Now();

  // Sorted by user (mirrors TradeCoordinator::RebalanceResidency).
  for (const auto& [user, entitlement] : common::SortedItems(outcome.entitlements)) {
    while (budget > 0) {
      cluster::PerGeneration<double> surplus{};
      for (GpuGeneration gen : kAllGenerations) {
        surplus[GenerationIndex(gen)] =
            entitlement[GenerationIndex(gen)] - ResidentDemand(user, gen);
      }
      // Most over-resident pool and most under-used entitlement.
      size_t over = 0;
      size_t under = 0;
      for (size_t g = 1; g < cluster::kNumGenerations; ++g) {
        if (surplus[g] < surplus[over]) {
          over = g;
        }
        if (surplus[g] > surplus[under]) {
          under = g;
        }
      }
      // Deadband: entitlements are fractional while residency moves in whole
      // gangs, so small mismatches are permanent — chasing them would
      // migrate the same jobs back and forth every epoch.
      if (surplus[over] > -1.0 || surplus[under] < 1.0) {
        break;
      }
      auto it = user_pool_jobs_.find(user);
      if (it == user_pool_jobs_.end()) {
        break;
      }

      // Smallest gang that the destination surplus still covers. Sorted:
      // ties break to the lowest job id (mirrors the production scheduler).
      JobId candidate = JobId::Invalid();
      int candidate_gang = INT32_MAX;
      for (JobId id : common::SortedKeys(it->second[over])) {
        const Job& job = env_.jobs.Get(id);
        const JobInfo& info = job_info_.at(id);
        if (now - info.last_migration < config_.min_migration_interval) {
          continue;
        }
        if (!env_.zoo.Get(job.model).FitsGeneration(kAllGenerations[under])) {
          continue;
        }
        if (job.gang_size <= surplus[under] && job.gang_size < candidate_gang) {
          candidate = id;
          candidate_gang = job.gang_size;
        }
      }
      if (!candidate.valid()) {
        break;
      }
      const GpuGeneration dest_gen = kAllGenerations[under];
      ServerId dest = ServerId::Invalid();
      double dest_load = std::numeric_limits<double>::infinity();
      for (ServerId sid : env_.cluster.servers_of(dest_gen)) {
        const auto& server = env_.cluster.server(sid);
        if (server.num_gpus() < candidate_gang || IsDraining(sid)) {
          continue;
        }
        const double load = stride_for(sid).TicketLoad().raw() / server.num_gpus();
        if (load < dest_load) {
          dest_load = load;
          dest = sid;
        }
      }
      if (!dest.valid()) {
        break;
      }
      StartMigration(candidate, dest, MigrationCause::kTrade);
      --budget;
    }
    if (budget <= 0) {
      break;
    }
  }
}

}  // namespace gfair::sched
