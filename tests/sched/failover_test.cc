// Failover tests: GandivaFair's reaction to server loss — orphan re-placement,
// arrivals during an outage, recovery reuse, and the migration retry/backoff
// ladder with its terminal fallback.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/harness.h"

namespace gfair::sched {
namespace {

using analysis::Experiment;
using analysis::ExperimentConfig;
using workload::JobState;

TEST(FailoverTest, RetryBackoffMatchesPlainShiftAtLowAttempts) {
  const SimDuration base = Seconds(30);
  EXPECT_EQ(RetryBackoff(base, 1), base);
  EXPECT_EQ(RetryBackoff(base, 2), base * 2);
  EXPECT_EQ(RetryBackoff(base, 3), base * 4);
}

TEST(FailoverTest, RetryBackoffSaturatesInsteadOfOverflowing) {
  const SimDuration base = Seconds(30);
  // 30s * 2^k crosses one day at k = 12 (30s * 4096 = 34.1h).
  EXPECT_LT(RetryBackoff(base, 12), kDay);
  EXPECT_EQ(RetryBackoff(base, 13), kDay);
  // A plain shift is UB / negative from attempt 63 on; the helper must stay
  // pinned at the cap for arbitrarily high attempt counts.
  for (int attempt : {40, 63, 64, 100, 1000}) {
    EXPECT_EQ(RetryBackoff(base, attempt), kDay) << "attempt " << attempt;
    EXPECT_GT(RetryBackoff(base, attempt), 0) << "attempt " << attempt;
  }
  // Monotone: each attempt waits at least as long as the previous one.
  for (int attempt = 2; attempt <= 70; ++attempt) {
    EXPECT_GE(RetryBackoff(base, attempt), RetryBackoff(base, attempt - 1));
  }
}

TEST(FailoverTest, RetryBackoffHandlesExtremeBases) {
  EXPECT_EQ(RetryBackoff(0, 50), 0);
  EXPECT_EQ(RetryBackoff(Hours(25), 1), kDay);  // base above the cap clamps
  EXPECT_EQ(RetryBackoff(1, 1), 1);
  EXPECT_EQ(RetryBackoff(1, 64), kDay);
}

TEST(FailoverTest, OrphansAreReplacedAndFinish) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(2, 4);
  Experiment exp(config);
  const UserId alice = exp.users().Create("alice").id;
  const UserId bob = exp.users().Create("bob").id;
  exp.UseGandivaFair({});
  for (int i = 0; i < 4; ++i) {
    exp.SubmitAt(Minutes(i), i % 2 == 0 ? alice : bob, "DCGAN", 1, Hours(4));
  }
  exp.Run(Minutes(10));
  // Fail whichever server is actually hosting work (placement may have
  // packed one side); the other one is the survivor.
  ServerId victim = ServerId(0);
  if (exp.cluster().server(victim).num_busy() == 0) {
    victim = ServerId(1);
  }
  const ServerId survivor = victim == ServerId(0) ? ServerId(1) : ServerId(0);
  ASSERT_GT(exp.cluster().server(victim).num_busy(), 0);

  exp.exec().FailServer(victim);
  EXPECT_GE(exp.exec().jobs_orphaned(), 1);
  // Re-placement happens synchronously inside the orphan callback when the
  // surviving server has room (4 GPUs for 4 single-GPU jobs).
  EXPECT_EQ(exp.gandiva()->pending_orphan_count(), 0u);
  EXPECT_GE(exp.gandiva()->orphans_replaced(), 1);
  for (const auto* job : exp.jobs().All()) {
    if (!job->finished()) {
      EXPECT_EQ(job->server, survivor);
    }
  }

  exp.Run(Hours(8));
  for (const auto* job : exp.jobs().All()) {
    EXPECT_TRUE(job->finished()) << "job " << job->id << " lost after failover";
  }
  // The dead server never came back: nothing may have been placed or
  // migrated onto it after the failure.
  EXPECT_FALSE(exp.cluster().server(victim).up());
  EXPECT_EQ(exp.cluster().server(victim).num_busy(), 0);
}

TEST(FailoverTest, ArrivalDuringTotalOutageWaitsForRecovery) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(1, 4);
  Experiment exp(config);
  const UserId alice = exp.users().Create("alice").id;
  exp.UseGandivaFair({});
  exp.Run(Seconds(1));

  exp.exec().FailServer(ServerId(0));
  const JobId id = exp.SubmitAt(Minutes(1), alice, "DCGAN", 1, Minutes(30));
  exp.Run(Minutes(10));
  // Nowhere to go: parked, not dropped, not crashed.
  EXPECT_EQ(exp.jobs().Get(id).state, JobState::kQueued);
  EXPECT_EQ(exp.gandiva()->pending_orphan_count(), 1u);

  exp.exec().RecoverServer(ServerId(0));
  // Recovery re-places the parked job immediately.
  EXPECT_EQ(exp.gandiva()->pending_orphan_count(), 0u);
  EXPECT_EQ(exp.jobs().Get(id).server, ServerId(0));
  exp.Run(Hours(4));
  EXPECT_TRUE(exp.jobs().Get(id).finished());
}

TEST(FailoverTest, DecisionsAvoidDownServerUntilRecovery) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(2, 4);
  Experiment exp(config);
  const UserId alice = exp.users().Create("alice").id;
  exp.UseGandivaFair({});
  exp.Run(Seconds(1));
  exp.exec().FailServer(ServerId(0));

  for (int i = 0; i < 3; ++i) {
    exp.SubmitAt(Minutes(1 + i), alice, "DCGAN", 1, Hours(8));
  }
  exp.Run(Hours(1));
  for (const Decision& decision : exp.gandiva()->decisions().entries()) {
    EXPECT_NE(decision.to, ServerId(0))
        << DecisionTypeName(decision.type) << " targeted the down server";
  }

  // After recovery the server is a placement target again: the next arrival
  // must land there (it is idle, the survivor holds three jobs).
  exp.exec().RecoverServer(ServerId(0));
  const JobId late = exp.SubmitAt(exp.sim().Now() + Minutes(1), alice, "DCGAN", 1,
                                  Hours(1));
  exp.Run(exp.sim().Now() + Minutes(2));
  EXPECT_EQ(exp.jobs().Get(late).server, ServerId(0));
}

TEST(FailoverTest, MigrationRetriesBackOffThenGiveUp) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(2, 4);
  config.exec.migrate_failure_prob = 1.0;  // every transfer flakes
  Experiment exp(config);
  const UserId alice = exp.users().Create("alice").id;

  GandivaFairConfig sched;
  sched.enable_load_balancing = false;  // no periodic re-drain: isolate retries
  sched.enable_trading = false;
  sched.enable_work_stealing = false;
  sched.migration_max_retries = 3;
  sched.migration_retry_backoff = Seconds(30);
  exp.UseGandivaFair(sched);

  const JobId id = exp.SubmitAt(kTimeZero, alice, "DCGAN", 1, Hours(12));
  exp.Run(Minutes(15));
  const ServerId source = exp.jobs().Get(id).server;
  ASSERT_TRUE(source.valid());

  // Observe every transfer failure, then forward to the scheduler as the
  // normal wiring would.
  std::vector<SimTime> failures;
  exp.exec().set_on_migration_failed([&](JobId job, ServerId dest) {
    failures.push_back(exp.sim().Now());
    exp.gandiva()->OnMigrationFailed(job, dest);
  });

  exp.gandiva()->DrainServer(source);  // forces one migration attempt
  exp.Run(Minutes(45));

  // Initial attempt + 3 retries, then the terminal fallback keeps the job at
  // its source — never wedged in kMigrating.
  ASSERT_EQ(failures.size(), 4u);
  EXPECT_EQ(exp.jobs().Get(id).num_migration_failures, 4);
  EXPECT_EQ(exp.gandiva()->migration_retries_started(), 3);
  EXPECT_EQ(exp.jobs().Get(id).server, source);
  EXPECT_NE(exp.jobs().Get(id).state, JobState::kMigrating);

  // Exponential ladder: each retry waits at least twice the previous backoff
  // (30s, 60s, 120s) plus the transfer latency itself.
  const SimDuration gap1 = failures[1] - failures[0];
  const SimDuration gap2 = failures[2] - failures[1];
  const SimDuration gap3 = failures[3] - failures[2];
  EXPECT_GE(gap1, Seconds(30));
  EXPECT_GE(gap2, Seconds(60));
  EXPECT_GE(gap3, Seconds(120));

  exp.Run(Hours(6));
  EXPECT_TRUE(exp.jobs().Get(id).finished());
}

TEST(FailoverTest, FairnessSurvivesSingleServerLoss) {
  // Two equal-ticket users saturating a 4-server pool; one server dies
  // mid-run. Delivered GPU time must stay near-equal between the users.
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(4, 4);
  Experiment exp(config);
  const UserId alice = exp.users().Create("alice").id;
  const UserId bob = exp.users().Create("bob").id;
  exp.UseGandivaFair({});
  for (int i = 0; i < 8; ++i) {
    exp.SubmitAt(Minutes(i), i % 2 == 0 ? alice : bob, "DCGAN", 2, Hours(8));
  }
  exp.Run(Hours(1));
  exp.exec().FailServer(ServerId(2));
  exp.Run(Hours(3));

  const auto& ledger = exp.gandiva()->ledger();
  const double a = ledger.GpuMs(alice, kTimeZero, Hours(3));
  const double b = ledger.GpuMs(bob, kTimeZero, Hours(3));
  ASSERT_GT(a, 0.0);
  ASSERT_GT(b, 0.0);
  EXPECT_NEAR(a / b, 1.0, 0.05);
  EXPECT_EQ(exp.gandiva()->pending_orphan_count(), 0u);
}

}  // namespace
}  // namespace gfair::sched
