// gfair-lint-fixture: src/exec/example.cc
// Seeded violations for the parallel-region-write rule: inside a
// gfair-parallel-apply region (the executor's prepare fan-out) the code runs
// concurrently across slices, so serial-commit state — the running list,
// timer wheel, migration accounting, callbacks, RNG streams — and the
// serial-only entry points that mutate them must stay untouched until the
// commit pass after the join.
namespace gfair::exec {

void Example(size_t s) {
  // Outside any region the same tokens are legal — this models the serial
  // commit pass and the migration machinery.
  running_list_.push_back(id);
  acct_.AddTransfer(wire_gb, common::ReduceToken{});

  // gfair-parallel-apply-begin
  segments_[s].active = true;                 // per-job slot: fine
  jobs_.Get(id).num_resumes += 1;             // per-job state: fine
  cluster_.server(dest).Allocate(id, gang);   // the slice's own server: fine
  running_list_.push_back(id);  // EXPECT-LINT: parallel-region-write
  acct_.CountOrphaned(common::ReduceToken{});  // EXPECT-LINT: parallel-region-write
  ArmTimerAt(id, finish_at);  // EXPECT-LINT: parallel-region-write
  const double draw = rng_.Uniform();  // EXPECT-LINT: parallel-region-write
  on_finished_(id);  // EXPECT-LINT: parallel-region-write
  CommitOp(op, prepared);  // EXPECT-LINT: parallel-region-write
  FinishTimerFor(id);  // gfair-lint: allow(parallel-region-write) -- models a line proven serial (single-slice span)
  // gfair-parallel-apply-end

  // Region closed: the commit below is serial again.
  CommitOp(op, prepared);
}

}  // namespace gfair::exec
