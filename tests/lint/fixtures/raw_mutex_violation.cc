// gfair-lint-fixture: src/exec/example.cc
// Seeded violations for the raw-mutex rule: outside src/common/, the bare
// std:: locking vocabulary is banned — unannotated locks are invisible to
// clang -Wthread-safety, so everything they guard drops out of the
// compile-time proof. Lock through the annotated wrappers instead.
#include <mutex>  // EXPECT-LINT: raw-mutex

#include "common/mutex.h"

namespace gfair::exec {

void Example() {
  // The annotated vocabulary is fine anywhere (case-sensitive match: Mutex,
  // MutexLock and CondVar are different tokens from mutex).
  common::Mutex annotated;
  common::MutexLock hold(annotated);
  common::CondVar cv;

  std::mutex raw;  // EXPECT-LINT: raw-mutex
  std::lock_guard<std::mutex> guard(raw);  // EXPECT-LINT: raw-mutex
  std::unique_lock<std::mutex> lock(raw);  // EXPECT-LINT: raw-mutex
  std::condition_variable raw_cv;  // EXPECT-LINT: raw-mutex
  std::shared_lock<std::shared_mutex> reader(rw);  // EXPECT-LINT: raw-mutex

  // Prose and strings never fire: the stripper blanks "std::mutex" here.
  const char* label = "std::mutex";
  (void)label;

  std::scoped_lock both(raw, raw);  // gfair-lint: allow(raw-mutex) -- models a sanctioned migration shim awaiting its wrapper
}

}  // namespace gfair::exec
