// gfair-lint-fixture: src/exec/lint_dag_consumer.cc
// Downstream half of the transitive module-dag fixture: this file includes
// sched code only via lint_dag_bridge.h. The violation is reported at the
// bridge's own include line, not here — same-module includes are clean.
#include "exec/lint_dag_bridge.h"
