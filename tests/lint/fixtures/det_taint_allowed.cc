// gfair-lint-fixture: src/sched/lint_taint_allowed.cc
// Negative fixture: an inline allow(det-taint) at the reported call site
// suppresses the taint finding, so provably benign paths use the same
// suppression workflow as every other rule. No violation may fire here.
#include <cstdlib>

class PlanDiffer {
 public:
  bool Diff() const;
};

bool EnvProbe() { return std::getenv("GFAIR_LINT_FIXTURE") != nullptr; }

bool PlanDiffer::Diff() const {
  return EnvProbe();  // gfair-lint: allow(det-taint) -- fixture: probe result is logged, never branches the plan
}
