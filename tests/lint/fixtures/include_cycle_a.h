// gfair-lint-fixture: src/common/lint_cycle_a.h
// Half of the seeded include cycle (see include_cycle_b.h). The DFS roots at
// this file first, so the back edge — and the finding — lands in b.
#include "common/lint_cycle_b.h"
