// gfair-lint-fixture: src/sched/example.h
// Seeded violations for the raw-double-in-sched-api rule: a sched header
// declaring a dimensioned quantity (tickets, pass, stride, speedup, rate,
// gpu-time) as a bare double forfeits the compile-time unit checks that
// common/units.h provides.
struct Example {
  double TicketLoad() const;  // EXPECT-LINT: raw-double-in-sched-api
  void SetTickets(double tickets);  // EXPECT-LINT: raw-double-in-sched-api
  double PassOf(int job) const;  // EXPECT-LINT: raw-double-in-sched-api
  void AddSample(double per_gpu_rate);  // EXPECT-LINT: raw-double-in-sched-api
  double NormTicketLoad() const;  // EXPECT-LINT: raw-double-in-sched-api
  double GpuMs() const;  // EXPECT-LINT: raw-double-in-sched-api

  // Segment matching, not substring matching: "migrate" does not hit on the
  // embedded "rate", and "bypass" does not hit on "pass".
  double migrate_fraction = 0.25;
  double bypass_threshold = 0.5;

  // Uses of double (casts, template arguments) are not declarations.
  int Scaled() const { return static_cast<int>(static_cast<double>(pass_ms()) * 2); }
  long pass_ms() const;

  // A genuinely dimensionless value keeps double with a justified allow.
  double speedup_quantization = 0.25;  // gfair-lint: allow(raw-double-in-sched-api) -- step count, not a speedup
};
