// gfair-lint-fixture: src/common/lint_cycle_b.h
// Seeded violation for the include-cycle pass: completing the loop back to
// lint_cycle_a.h is the back edge the tri-color DFS reports, with the full
// cycle printed under --explain.
#include "common/lint_cycle_a.h"  // EXPECT-LINT: include-cycle
