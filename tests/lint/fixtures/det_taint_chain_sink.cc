// gfair-lint-fixture: src/common/lint_taint_sink.cc
// Sink end of the seeded taint chain (see det_taint_chain_root.cc). The
// clock read also trips the per-line wall-clock rule; det-taint is the
// whole-tree consequence reported back at the decision root.
#include <chrono>

long TaintHopThree() {
  return std::chrono::steady_clock::now().time_since_epoch().count();  // EXPECT-LINT: wall-clock
}

long TaintHopTwo() { return TaintHopThree() / 2; }
