// gfair-lint-fixture: src/exec/guard.cc
// Seeded violation for the assert rule: bare assert() vanishes under NDEBUG.
#include <cassert>

void Guard(int n) {
  assert(n > 0);  // EXPECT-LINT: assert
  // static_assert is a different token and stays legal:
  static_assert(sizeof(int) >= 4, "ok");
}
