// gfair-lint-fixture: src/sched/debug_dump.cc
// Seeded violations for the stdio rule: library code must not own a stream.
#include <cstdio>
#include <iostream>

void Dump(int n) {
  std::cout << n << '\n';  // EXPECT-LINT: stdio
  printf("%d\n", n);  // EXPECT-LINT: stdio
  std::fprintf(stderr, "%d\n", n);  // EXPECT-LINT: stdio
  // String formatting (not output) is fine — snprintf is a different token:
  char buf[16];
  (void)std::snprintf(buf, sizeof(buf), "%d", n);
}
