// gfair-lint-fixture: src/sched/entitlement_apply.cc
// Seeded violation for the TradeOutcome::entitlements contract: the map is
// unordered, so decision-affecting consumers (the coordinator's apply loop,
// residency rebalancing, the legacy oracle) must walk it via
// common::SortedItems, never bare range-for.
#include <array>
#include <unordered_map>

struct Outcome {
  // Mirrors TradeOutcome::entitlements: user -> per-generation GPU shares.
  std::unordered_map<int, std::array<double, 4>> entitlements;
};

double ApplyEntitlements(const Outcome& outcome) {
  double applied = 0.0;
  // Bare iteration: apply order follows hash order, so ticket refreshes and
  // migration choices would diverge across platforms.
  for (const auto& [user, row] : outcome.entitlements) {  // EXPECT-LINT: unordered-iter
    applied += row[0];
  }
  // The sanctioned route: SortedItems pins user order before any decision.
  for (const auto& [user, row] : gfair::common::SortedItems(outcome.entitlements)) {
    applied += row[1];
  }
  return applied;
}
