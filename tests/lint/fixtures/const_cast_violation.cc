// gfair-lint-fixture: src/sched/sneaky.cc
// Seeded violation for the const-cast rule: casting away const defeats the
// deep-const ClusterStateView contract.
struct View {
  const int* data;
};

int* Mutable(const View& view) {
  return const_cast<int*>(view.data);  // EXPECT-LINT: const-cast
}
