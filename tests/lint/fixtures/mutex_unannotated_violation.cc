// gfair-lint-fixture: src/exec/example.h
// Seeded violations for the mutex-unannotated rule: a data member declared
// after a mutex member without GFAIR_GUARDED_BY cannot be tied to its lock
// by the thread-safety analysis, so unlocked access compiles silently. The
// layout convention (common/thread_pool.h) puts deliberately unguarded
// members above the mutex and everything the mutex guards below it.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace gfair::exec {

class Example {
 public:
  void Tick();

 private:
  // Above the mutex: deliberately unguarded (written before any thread can
  // observe them, or synchronized externally). The rule does not fire here.
  std::vector<int> workers_;
  std::atomic<bool> in_span_{false};

  common::Mutex mu_;
  size_t guarded_ GFAIR_GUARDED_BY(mu_) = 0;
  std::exception_ptr error_ GFAIR_GUARDED_BY(mu_);
  size_t pending_ = 0;  // EXPECT-LINT: mutex-unannotated
  bool shutdown_;  // EXPECT-LINT: mutex-unannotated
  double snapshot_ = 0.5;  // gfair-lint: allow(mutex-unannotated) -- published only after the workers join
};

}  // namespace gfair::exec
