// gfair-lint-fixture: src/analysis/ratio.cc
// Seeded violations for the float-eq rule: exact comparison against a float
// literal is almost always a rounding bug.
bool Converged(double err) {
  return err == 0.0;  // EXPECT-LINT: float-eq
}

bool Different(double a) {
  return a != 1.5;  // EXPECT-LINT: float-eq
}

bool TinyExp(double x) {
  return x == 1e-6;  // EXPECT-LINT: float-eq
}

// Integer comparison: no float literal, no violation.
bool IsZero(int n) { return n == 0; }

// Iterator comparison with a float literal in the OTHER ternary arm: the
// ':' boundary keeps the window out of the arm, no violation.
double Lookup(bool found, double value) { return found != false ? value : 0.5; }

// Sentinel compare, exact by construction, justified inline: allowed.
bool IsUnset(double sentinel) {
  return sentinel == -1.0;  // gfair-lint: allow(float-eq) -- sentinel, never computed
}
