// gfair-lint-fixture: src/workload/noise.cc
// Seeded violations for the raw-rand rule: unseeded or global generators
// break bit-for-bit reproducibility.
#include <cstdlib>
#include <random>

int Draw() {
  std::random_device entropy;  // EXPECT-LINT: raw-rand
  std::mt19937 gen(entropy());  // EXPECT-LINT: raw-rand
  return static_cast<int>(gen()) + rand();  // EXPECT-LINT: raw-rand
}

// The word "brand" or "operand" must not fire (whole-token matching), and
// neither must rand() inside this comment or the string "rand()" below.
inline const char* kLabel = "rand() is banned";
