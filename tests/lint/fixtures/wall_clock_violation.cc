// gfair-lint-fixture: src/simkit/probe.cc
// Seeded violations for the wall-clock rule: reading real time makes a run a
// function of the machine, not of (trace, seed).
#include <chrono>
#include <ctime>

long NowNanos() {
  return std::chrono::steady_clock::now().time_since_epoch().count();  // EXPECT-LINT: wall-clock
}

long NowSeconds() {
  return time(nullptr);  // EXPECT-LINT: wall-clock
}

// Prose mentions of steady_clock or "time(...)" in comments must not fire.
