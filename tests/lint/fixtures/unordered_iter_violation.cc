// gfair-lint-fixture: src/sched/pool_walk.cc
// Seeded violations for the unordered-iter rule: decision paths must not
// depend on hash-table iteration order.
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct Pools {
  // Element case: an ordered container OF unordered sets — indexing into it
  // yields the unordered object.
  std::vector<std::unordered_set<int>> per_gen;
};

double Sum(const std::unordered_map<int, double>& weights, const Pools& pools) {
  double total = 0.0;
  for (const auto& [id, w] : weights) {  // EXPECT-LINT: unordered-iter
    total += w;
  }
  for (int id : pools.per_gen[0]) {  // EXPECT-LINT: unordered-iter
    total += id;
  }
  // Routed through the sanctioned helpers: order is fixed, no violation.
  for (int id : gfair::common::SortedKeys(weights)) {
    total += id;
  }
  for (int id : gfair::common::SortedKeys(pools.per_gen[1])) {
    total += id;
  }
  // A lookup into the map yields a scalar; iterating something else near it
  // is fine (the container itself is not the range).
  std::vector<double> copies(4, weights.at(0));
  for (double c : copies) {
    total += c;
  }
  // Provably order-independent body, justified inline: allowed.
  double floor = 0.0;
  for (const auto& [id, w] : weights) {  // gfair-lint: allow(unordered-iter)
    floor = w > floor ? w : floor;  // max() commutes
  }
  return total + floor;
}
