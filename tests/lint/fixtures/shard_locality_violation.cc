// gfair-lint-fixture: src/sched/example.cc
// Seeded violations for the shard-locality rule: inside a
// gfair-shard-parallel region (the quantum tick's shard fan-out) the code
// runs concurrently across shards, so cross-shard mutable state — the merged
// plan/delta, the decision log, the trader's profile store, the executor's
// single RNG stream, migration entry points — must stay untouched until the
// serial reduce step.
namespace gfair::sched {

void PlanShardRangeExample(PlanShard& shard, ServerId id) {
  // Outside any region the same tokens are legal — this models ReduceShards,
  // the serial reduce step that owns every cross-shard concern.
  plan_.target_jobs.clear();
  trader_.RecordSample(model, gen, rate);

  // gfair-shard-parallel-begin
  shard.plan.Clear();                   // shard-local twin (no underscore): fine
  shard.pending_samples.push_back(id);  // buffered for the reduce step: fine
  index_.ClearPlanDirty(id);            // per-server byte of the shard's range: fine
  plan_.servers.push_back(target);  // EXPECT-LINT: shard-locality
  delta_.ops.clear();  // EXPECT-LINT: shard-locality
  decisions_.Record(now, DecisionType::kResume, id);  // EXPECT-LINT: shard-locality
  trader_.RecordSample(model, gen, rate);  // EXPECT-LINT: shard-locality
  const double rate = env_.exec.SampleObservedRate(id);  // EXPECT-LINT: shard-locality
  EmitMigration(id, dest, MigrationCause::kBalance);  // EXPECT-LINT: shard-locality
  ReduceShards(common::ReduceToken{});  // EXPECT-LINT: shard-locality
  const size_t n = plan_.migrations.size();  // gfair-lint: allow(shard-locality) -- read-only; nothing appends migrations during the fan-out
  // gfair-shard-parallel-end

  // Region closed: the merge below is serial again.
  delta_.ops.clear();
}

}  // namespace gfair::sched
