// gfair-lint-fixture: src/sched/ledger.h
// Negative fixture: the (src/sched/ledger.h -> simkit/timeseries.h) row in
// kLayeringGateways sanctions this include, so the layering rule stays
// silent; the module DAG is silent too because sched sits above simkit.
#include "simkit/timeseries.h"
