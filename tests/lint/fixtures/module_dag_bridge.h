// gfair-lint-fixture: src/exec/lint_dag_bridge.h
// Seeded violation for the module-dag pass: exec (layer 4) must not depend
// on sched (layer 5). module_dag_consumer.cc reaches sched only transitively
// through this header — the direct upward edge owns the finding, which is
// exactly why checking direct edges is complete.
#include "sched/stride.h"  // EXPECT-LINT: module-dag
