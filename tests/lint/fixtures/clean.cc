// gfair-lint-fixture: src/sched/clean_example.cc
// A file with zero expected violations: banned tokens appear only in prose,
// string literals, or sanctioned forms, and none of them may fire.
//
// Prose mentions: rand(), time(nullptr), std::cout, assert(x), const_cast,
// steady_clock, and iterating an unordered_map — all inert in comments.
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/sorted.h"

inline const char* kBanner = "rand() time() std::cout assert(x) == 0.5";

struct Shares {
  std::unordered_map<int, int> by_user_;
};

inline int SumSorted(const Shares& shares) {
  int total = 0;
  for (int user : gfair::common::SortedKeys(shares.by_user_)) {
    total += user;
  }
  // Lookups (not iteration) into unordered containers are fine:
  total += shares.by_user_.count(0) > 0 ? shares.by_user_.at(0) : 0;
  // Integer equality is fine:
  GFAIR_CHECK(total >= 0);
  return total == 0 ? 1 : total;
}
