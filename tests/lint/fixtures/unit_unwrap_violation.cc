// gfair-lint-fixture: src/sched/example.cc
// Seeded violations for the unit-unwrap-outside-boundary rule: .raw() inside
// scheduler logic strips the unit tag and reintroduces the silent mix-ups
// (tickets into a pass, inverted speedup ratios) that common/units.h exists
// to reject at compile time.
namespace gfair::sched {

double LeakTickets(const Tickets& tickets) {
  return tickets.raw() * 2.0;  // EXPECT-LINT: unit-unwrap-outside-boundary
}

double LeakThroughCall(const LocalStrideScheduler& stride) {
  return stride.TicketLoad().raw();  // EXPECT-LINT: unit-unwrap-outside-boundary
}

// A member that happens to be named raw on a non-unit type still trips the
// token scan — the fix is renaming, not suppressing.
double LeakChained(const Wrapper& w) {
  return w.inner().raw() + 1.0;  // EXPECT-LINT: unit-unwrap-outside-boundary
}

// Serialization/display boundaries carry a justified inline allow.
void Snapshot(const Tickets& tickets, Row* row) {
  row->Cell(tickets.raw());  // gfair-lint: allow(unit-unwrap-outside-boundary) -- report table boundary
}

}  // namespace gfair::sched
