// gfair-lint-fixture: src/common/lint_taint_mid.cc
// Middle of the seeded taint chain (see det_taint_chain_root.cc): this file
// contains no sink itself — it only forwards the taint one hop.
long TaintHopTwo();

long TaintHopOne() { return TaintHopTwo() + 1; }
