// gfair-lint-fixture: src/sched/rogue_subsystem.h
// Seeded violations for the layering rule: sched/ reaches simkit/ only via
// the sanctioned gateways (scheduler_iface.h and ledger.h).
#include "simkit/event_queue.h"  // EXPECT-LINT: layering
#include "simkit/simulator.h"  // EXPECT-LINT: layering

// Non-simkit includes are unconstrained:
#include "common/check.h"

// A comment mentioning #include "simkit/simulator.h" must not fire (the rule
// only parses preprocessor directive lines).
