// gfair-lint-fixture: src/sched/lint_taint_root.cc
// Seeded violation for the det-taint pass: a decision root whose schedule
// depends on a wall-clock read three calls down the graph, spanning
// det_taint_chain_mid.cc and det_taint_chain_sink.cc. The finding lands at
// the root's first call toward the sink; --explain prints the whole chain.
class QuantumPlanner {
 public:
  long Plan() const;
};

long TaintHopOne();

long QuantumPlanner::Plan() const {
  return TaintHopOne();  // EXPECT-LINT: det-taint
}

// A function nobody on the decision path calls may touch tainted helpers
// without implicating the roots.
long UnreachedTaintUser() { return TaintHopOne(); }
