// Negative-compile proof for the unit-type layer: this translation unit MUST
// NOT compile. ctest runs the compiler over it with -fsyntax-only and
// WILL_FAIL — if it ever starts compiling, common/units.h has grown an
// implicit conversion that lets ticket counts flow into the pass/stride
// domain, which is exactly the class of bug the strong types exist to stop.
//
// Keep exactly one violation per function so a future error message points
// at the specific leak. The positive side (every operation that MUST work)
// lives in tests/common/units_test.cc.
#include "common/units.h"

namespace gfair {

Pass TicketsIntoPass() {
  // Tickets converts from double for ergonomic construction, but must never
  // convert onward into Pass: a job's priority currency is not a position on
  // the virtual-time axis.
  Pass p = Tickets(3.0);
  return p;
}

}  // namespace gfair
