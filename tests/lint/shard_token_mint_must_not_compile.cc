// Negative-compile proof for the phase-capability tokens
// (common/phase_tokens.h): only the scheduler facade (a friend) can mint a
// ShardToken, so the PlanShard fan-out APIs — and everything else gated on
// the token — are uncallable from arbitrary code. The positive side
// (emptiness, copyability, non-default-constructibility static_asserts)
// lives in tests/common/phase_token_test.cc.
#include "common/phase_tokens.h"

int main() {
  // The default constructor is private; minting outside the friend list
  // must fail to compile.
  gfair::common::ShardToken token{};
  (void)token;
  return 0;
}
