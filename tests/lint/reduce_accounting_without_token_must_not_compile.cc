// Negative-compile proof for the serial-phase accounting gate
// (exec/executor.h): MigrationAccounting's mutators require a ReduceToken,
// and only the scheduler facade and the executor (friends of the token) can
// mint one — so bumping a global migration accumulator from arbitrary code
// (in particular from inside a parallel apply/plan region) must fail to
// compile. The getters stay open; only mutation is fenced.
#include "common/phase_tokens.h"
#include "exec/executor.h"

int main() {
  gfair::exec::MigrationAccounting acct;
  // The token's constructor is private outside the friend list.
  acct.AddTransfer(1.0, gfair::common::ReduceToken{});
  return 0;
}
