// Negative-compile proof for the unit-type layer: this translation unit MUST
// NOT compile. ctest runs the compiler over it with -fsyntax-only and
// WILL_FAIL — if it ever starts compiling, Speedup has grown an operation
// that silently inverts or cross-breeds the fast/slow rate ratio.
//
// Keep exactly one violation per function so a future error message points
// at the specific leak. The positive side (every operation that MUST work)
// lives in tests/common/units_test.cc.
#include "common/units.h"

namespace gfair {

double InvertSpeedupBare(Speedup s) {
  // 1.0 / speedup flips lender and borrower; the only sanctioned inversions
  // are Speedup::FromRates(slow, fast) and SlowToFast(demand, s).
  return 1.0 / s;
}

Speedup CrossBreedWithStride(Speedup s, Stride st) {
  // A speedup scales GPU *counts* (FastToSlow/SlowToFast), never the stride
  // domain: pass arithmetic is ticket-weighted service, not rate ratios.
  return s * st;
}

}  // namespace gfair
