// Negative-compile proof for the ClusterStateView purity contract: this
// translation unit MUST NOT compile. ctest runs the compiler over it with
// -fsyntax-only and WILL_FAIL — if this file ever starts compiling, the
// deep-const view has grown a mutation path and the build goes red.
//
// Keep exactly one violation per function so a future error message points
// at the specific leak.
#include "sched/cluster_state_view.h"

namespace gfair::sched {

void MutateStrideThroughView(const ClusterStateView& view) {
  // The planner's temptation: "just fix up the stride while planning".
  // stride() returns const LocalStrideScheduler&; AddJob is non-const.
  view.stride(ServerId(0)).AddJob(JobId(1), /*gang_size=*/1, /*tickets=*/1.0);
}

}  // namespace gfair::sched
