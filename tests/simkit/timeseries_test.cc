#include "simkit/timeseries.h"

#include <gtest/gtest.h>

namespace gfair::simkit {
namespace {

TEST(TimeSeriesTest, ValueAtStepsThroughSamples) {
  TimeSeries series;
  series.Record(10, 1.0);
  series.Record(20, 3.0);
  EXPECT_DOUBLE_EQ(series.ValueAt(5, -1.0), -1.0);  // before first sample
  EXPECT_DOUBLE_EQ(series.ValueAt(10), 1.0);
  EXPECT_DOUBLE_EQ(series.ValueAt(15), 1.0);
  EXPECT_DOUBLE_EQ(series.ValueAt(20), 3.0);
  EXPECT_DOUBLE_EQ(series.ValueAt(1000), 3.0);
}

TEST(TimeSeriesTest, SameTimeOverwrites) {
  TimeSeries series;
  series.Record(10, 1.0);
  series.Record(10, 2.0);
  EXPECT_EQ(series.size(), 1u);
  EXPECT_DOUBLE_EQ(series.ValueAt(10), 2.0);
}

TEST(TimeSeriesTest, IntegralPiecewise) {
  TimeSeries series;
  series.Record(0, 2.0);
  series.Record(10, 4.0);
  // [0,10): 2*10 = 20; [10,20): 4*10 = 40.
  EXPECT_DOUBLE_EQ(series.IntegralOver(0, 20), 60.0);
  EXPECT_DOUBLE_EQ(series.IntegralOver(5, 15), 2.0 * 5 + 4.0 * 5);
}

TEST(TimeSeriesTest, IntegralBeforeFirstSampleUsesInitial) {
  TimeSeries series;
  series.Record(10, 5.0);
  EXPECT_DOUBLE_EQ(series.IntegralOver(0, 10, 1.0), 10.0);
}

TEST(TimeSeriesTest, EmptyWindowIntegralIsZero) {
  TimeSeries series;
  series.Record(0, 7.0);
  EXPECT_DOUBLE_EQ(series.IntegralOver(5, 5), 0.0);
}

TEST(TimeSeriesTest, AverageOver) {
  TimeSeries series;
  series.Record(0, 0.0);
  series.Record(10, 10.0);
  EXPECT_DOUBLE_EQ(series.AverageOver(0, 20), 5.0);
}

TEST(CounterSeriesTest, TotalsAndWindows) {
  CounterSeries counter;
  counter.Add(kSecond, 2.0);
  counter.Add(3 * kSecond, 4.0);
  EXPECT_DOUBLE_EQ(counter.Total(), 6.0);
  EXPECT_DOUBLE_EQ(counter.TotalUpTo(kSecond), 2.0);
  EXPECT_DOUBLE_EQ(counter.TotalUpTo(2 * kSecond), 2.0);
  EXPECT_DOUBLE_EQ(counter.TotalUpTo(10 * kSecond), 6.0);
  EXPECT_DOUBLE_EQ(counter.TotalUpTo(0), 0.0);
}

TEST(CounterSeriesTest, RatePerSecond) {
  CounterSeries counter;
  counter.Add(kSecond, 10.0);
  counter.Add(2 * kSecond, 10.0);
  EXPECT_DOUBLE_EQ(counter.Rate(0, 4 * kSecond), 5.0);
}

TEST(CounterSeriesTest, SameTimeAccumulates) {
  CounterSeries counter;
  counter.Add(5, 1.0);
  counter.Add(5, 2.0);
  EXPECT_DOUBLE_EQ(counter.TotalUpTo(5), 3.0);
}

TEST(TimeSeriesDeathTest, OutOfOrderRecordAborts) {
  TimeSeries series;
  series.Record(10, 1.0);
  EXPECT_DEATH(series.Record(5, 2.0), "ordered");
}

}  // namespace
}  // namespace gfair::simkit
