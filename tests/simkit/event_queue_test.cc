#include "simkit/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace gfair::simkit {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.Push(30, [&] { order.push_back(3); });
  queue.Push(10, [&] { order.push_back(1); });
  queue.Push(20, [&] { order.push_back(2); });
  while (!queue.empty()) {
    queue.Pop().callback();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTimeFiresInSchedulingOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.Push(42, [&order, i] { order.push_back(i); });
  }
  while (!queue.empty()) {
    queue.Pop().callback();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, NextTimeTracksEarliestLive) {
  EventQueue queue;
  EXPECT_EQ(queue.NextTime(), kTimeNever);
  const EventId early = queue.Push(5, [] {});
  queue.Push(9, [] {});
  EXPECT_EQ(queue.NextTime(), 5);
  queue.Cancel(early);
  EXPECT_EQ(queue.NextTime(), 9);
}

TEST(EventQueueTest, CancelRemovesEvent) {
  EventQueue queue;
  bool fired = false;
  const EventId id = queue.Push(1, [&] { fired = true; });
  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelTwiceFails) {
  EventQueue queue;
  const EventId id = queue.Push(1, [] {});
  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_FALSE(queue.Cancel(id));
}

TEST(EventQueueTest, CancelAfterPopFails) {
  EventQueue queue;
  const EventId id = queue.Push(1, [] {});
  queue.Pop();
  EXPECT_FALSE(queue.Cancel(id));
}

TEST(EventQueueTest, SizeCountsLiveOnly) {
  EventQueue queue;
  const EventId a = queue.Push(1, [] {});
  queue.Push(2, [] {});
  EXPECT_EQ(queue.size(), 2u);
  queue.Cancel(a);
  EXPECT_EQ(queue.size(), 1u);
}

TEST(EventQueueTimerTest, ArmFireRearm) {
  EventQueue queue;
  int fired = 0;
  const TimerId timer = queue.CreateTimer([&] { ++fired; });
  EXPECT_FALSE(queue.TimerArmed(timer));
  queue.ArmTimer(timer, 10);
  EXPECT_TRUE(queue.TimerArmed(timer));
  auto event = queue.Pop();
  event.callback();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(queue.TimerArmed(timer));  // firing consumed the arm
  queue.ArmTimer(timer, 20);
  queue.Pop().callback();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTimerTest, DisarmCancelsPendingArm) {
  EventQueue queue;
  int fired = 0;
  const TimerId timer = queue.CreateTimer([&] { ++fired; });
  queue.ArmTimer(timer, 10);
  EXPECT_TRUE(queue.DisarmTimer(timer));
  EXPECT_FALSE(queue.DisarmTimer(timer));  // already disarmed
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(fired, 0);
}

// One simulated hour — entries at or beyond this much past the last fired
// event take the far-band path (see EventQueue's file comment).
constexpr SimTime kHourMs = 60 * 60 * 1000;

TEST(EventQueueFarBandTest, FarAndNearEventsPopInGlobalTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  // Interleave near heap entries with far-band entries (≥ 1h out) in
  // shuffled time order; the pop stream must still be globally sorted.
  queue.Push(2 * kHourMs, [&] { order.push_back(4); });
  queue.Push(10, [&] { order.push_back(1); });
  queue.Push(3 * kHourMs, [&] { order.push_back(5); });
  queue.Push(20, [&] { order.push_back(2); });
  queue.Push(kHourMs + 1, [&] { order.push_back(3); });
  while (!queue.empty()) {
    queue.Pop().callback();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(EventQueueFarBandTest, NextTimeSeesFarEntriesWhenHeapEmpties) {
  EventQueue queue;
  queue.Push(5 * kHourMs, [] {});
  EXPECT_EQ(queue.NextTime(), 5 * kHourMs);
  EXPECT_EQ(queue.size(), 1u);
}

TEST(EventQueueFarBandTest, CancelledFarEventNeverFires) {
  EventQueue queue;
  bool fired = false;
  const EventId id = queue.Push(2 * kHourMs, [&] { fired = true; });
  queue.Push(3 * kHourMs, [] {});
  EXPECT_TRUE(queue.Cancel(id));
  int pops = 0;
  while (!queue.empty()) {
    queue.Pop();
    ++pops;
  }
  EXPECT_EQ(pops, 1);
  EXPECT_FALSE(fired);
}

TEST(EventQueueFarBandTest, DisarmedFarTimersAreSplicedOutAndRearmable) {
  // The executor's steady-state pattern: many timers armed far ahead, most
  // disarmed before the horizon nears (suspend cancels the completion
  // event), some re-armed at new times. Disarm splices the far entry out via
  // the slot back-pointer; this shuffled disarm order exercises the
  // swap-remove patching.
  EventQueue queue;
  std::vector<int> fired;
  std::vector<TimerId> timers;
  for (int i = 0; i < 16; ++i) {
    timers.push_back(queue.CreateTimer([&fired, i] { fired.push_back(i); }));
    queue.ArmTimer(timers.back(), (2 + i) * kHourMs);
  }
  for (int i : {0, 15, 7, 3, 11, 4, 12, 8}) {
    EXPECT_TRUE(queue.DisarmTimer(timers[static_cast<size_t>(i)]));
  }
  // Re-arm two of the disarmed timers at times that re-sort them.
  queue.ArmTimer(timers[7], 30 * kHourMs);
  queue.ArmTimer(timers[0], kHourMs + 5);
  while (!queue.empty()) {
    queue.Pop().callback();
  }
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 5, 6, 9, 10, 13, 14, 7}));
}

TEST(EventQueueFarBandTest, HeavyCancelChurnCompactsWithoutReordering) {
  // Arm/cancel churn deep enough to trip compaction with a populated far
  // band; survivors must still fire in (time, id) order.
  EventQueue queue;
  std::vector<SimTime> fire_times;
  std::vector<EventId> cancelable;
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 16; ++i) {
      const SimTime when = 2 * kHourMs + round * 1000 + i;
      if (i % 4 == 0) {
        queue.Push(when, [&fire_times, when] { fire_times.push_back(when); });
      } else {
        cancelable.push_back(queue.Push(when, [] {}));
      }
    }
    for (EventId id : cancelable) {
      queue.Cancel(id);
    }
    cancelable.clear();
  }
  while (!queue.empty()) {
    queue.Pop().callback();
  }
  EXPECT_EQ(fire_times.size(), 40u * 4u);
  EXPECT_TRUE(std::is_sorted(fire_times.begin(), fire_times.end()));
}

TEST(EventQueueDeathTest, PopEmptyAborts) {
  EventQueue queue;
  EXPECT_DEATH(queue.Pop(), "empty");
}

}  // namespace
}  // namespace gfair::simkit
