#include "simkit/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace gfair::simkit {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.Push(30, [&] { order.push_back(3); });
  queue.Push(10, [&] { order.push_back(1); });
  queue.Push(20, [&] { order.push_back(2); });
  while (!queue.empty()) {
    queue.Pop().callback();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTimeFiresInSchedulingOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    queue.Push(42, [&order, i] { order.push_back(i); });
  }
  while (!queue.empty()) {
    queue.Pop().callback();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, NextTimeTracksEarliestLive) {
  EventQueue queue;
  EXPECT_EQ(queue.NextTime(), kTimeNever);
  const EventId early = queue.Push(5, [] {});
  queue.Push(9, [] {});
  EXPECT_EQ(queue.NextTime(), 5);
  queue.Cancel(early);
  EXPECT_EQ(queue.NextTime(), 9);
}

TEST(EventQueueTest, CancelRemovesEvent) {
  EventQueue queue;
  bool fired = false;
  const EventId id = queue.Push(1, [&] { fired = true; });
  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelTwiceFails) {
  EventQueue queue;
  const EventId id = queue.Push(1, [] {});
  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_FALSE(queue.Cancel(id));
}

TEST(EventQueueTest, CancelAfterPopFails) {
  EventQueue queue;
  const EventId id = queue.Push(1, [] {});
  queue.Pop();
  EXPECT_FALSE(queue.Cancel(id));
}

TEST(EventQueueTest, SizeCountsLiveOnly) {
  EventQueue queue;
  const EventId a = queue.Push(1, [] {});
  queue.Push(2, [] {});
  EXPECT_EQ(queue.size(), 2u);
  queue.Cancel(a);
  EXPECT_EQ(queue.size(), 1u);
}

TEST(EventQueueDeathTest, PopEmptyAborts) {
  EventQueue queue;
  EXPECT_DEATH(queue.Pop(), "empty");
}

}  // namespace
}  // namespace gfair::simkit
