#include "simkit/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace gfair::simkit {
namespace {

TEST(SimulatorTest, ClockAdvancesWithEvents) {
  Simulator sim;
  SimTime observed = -1;
  sim.At(100, [&] { observed = sim.Now(); });
  sim.Run();
  EXPECT_EQ(observed, 100);
  EXPECT_EQ(sim.Now(), 100);
}

TEST(SimulatorTest, AfterIsRelative) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.At(50, [&] {
    sim.After(25, [&] { times.push_back(sim.Now()); });
  });
  sim.Run();
  EXPECT_EQ(times, (std::vector<SimTime>{75}));
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.At(10, [&] { ++fired; });
  sim.At(1000, [&] { ++fired; });
  sim.RunUntil(500);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 500);  // clock parks at the deadline
  sim.RunUntil(2000);
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) {
      sim.After(1, recurse);
    }
  };
  sim.At(0, recurse);
  sim.Run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.Now(), 9);
}

TEST(SimulatorTest, EveryFiresPeriodically) {
  Simulator sim;
  std::vector<SimTime> fires;
  sim.Every(10, [&] { fires.push_back(sim.Now()); });
  sim.RunUntil(35);
  EXPECT_EQ(fires, (std::vector<SimTime>{10, 20, 30}));
}

TEST(SimulatorTest, CancelRepeatingStopsChain) {
  Simulator sim;
  int fires = 0;
  const EventId id = sim.Every(10, [&] { ++fires; });
  sim.RunUntil(25);
  EXPECT_EQ(fires, 2);
  sim.Cancel(id);
  sim.RunUntil(100);
  EXPECT_EQ(fires, 2);
}

TEST(SimulatorTest, CancelAfterFiringRemovesPendingEvent) {
  // A repeating chain re-pushes itself under fresh event ids; cancelling by
  // the original handle after firings must remove the chain's live pending
  // event from the queue, not just tombstone it — otherwise every cancelled
  // chain leaves a dead event behind and Run() never drains.
  Simulator sim;
  int fires = 0;
  const EventId id = sim.Every(10, [&] { ++fires; });
  sim.RunUntil(25);
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(sim.pending_events(), 1u);  // the chain's next firing at t=30
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.Run();  // drains immediately: no stale callback left
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(sim.Now(), 25);
}

TEST(SimulatorTest, CancelRepeatingFromInsideCallback) {
  Simulator sim;
  int fires = 0;
  EventId id{};
  id = sim.Every(10, [&] {
    ++fires;
    if (fires == 3) {
      EXPECT_TRUE(sim.Cancel(id));
    }
  });
  sim.RunUntil(200);
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorTest, CancelOneShot) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.At(10, [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, StopHaltsProcessing) {
  Simulator sim;
  int fired = 0;
  sim.At(1, [&] {
    ++fired;
    sim.Stop();
  });
  sim.At(2, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  // A further run resumes where we stopped.
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, CountsProcessedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) {
    sim.At(i, [] {});
  }
  EXPECT_EQ(sim.Run(), 7u);
  EXPECT_EQ(sim.total_events_processed(), 7u);
}

TEST(SimulatorDeathTest, SchedulingInThePastAborts) {
  Simulator sim;
  sim.At(10, [] {});
  sim.Run();
  EXPECT_DEATH(sim.At(5, [] {}), "past");
}

}  // namespace
}  // namespace gfair::simkit
