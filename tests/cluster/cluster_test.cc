#include "cluster/cluster.h"

#include <gtest/gtest.h>

namespace gfair::cluster {
namespace {

TEST(GpuTest, GenerationNamesRoundTrip) {
  for (GpuGeneration gen : kAllGenerations) {
    GpuGeneration parsed;
    ASSERT_TRUE(ParseGeneration(GenerationName(gen), &parsed));
    EXPECT_EQ(parsed, gen);
  }
}

TEST(GpuTest, ParseIsCaseInsensitive) {
  GpuGeneration gen;
  ASSERT_TRUE(ParseGeneration("v100", &gen));
  EXPECT_EQ(gen, GpuGeneration::kV100);
  EXPECT_FALSE(ParseGeneration("H100", &gen));
}

TEST(GpuTest, SpecsArePlausible) {
  for (GpuGeneration gen : kAllGenerations) {
    const GpuSpec& spec = SpecFor(gen);
    EXPECT_EQ(spec.generation, gen);
    EXPECT_GT(spec.memory_gb, 0.0);
    EXPECT_GT(spec.nominal_tflops, 0.0);
  }
}

TEST(ServerTest, AllocateAndRelease) {
  Server server(ServerId(0), GpuGeneration::kV100, 8);
  EXPECT_EQ(server.num_free(), 8);
  EXPECT_EQ(server.Allocate(JobId(1), 3), 3);
  EXPECT_EQ(server.num_free(), 5);
  EXPECT_EQ(server.CountHeldBy(JobId(1)), 3);
  EXPECT_EQ(server.Release(JobId(1)), 3);
  EXPECT_EQ(server.num_free(), 8);
}

TEST(ServerTest, AllocationsDoNotOverlap) {
  Server server(ServerId(0), GpuGeneration::kK80, 4);
  server.Allocate(JobId(1), 2);
  server.Allocate(JobId(2), 2);
  int owned_by_1 = 0;
  int owned_by_2 = 0;
  for (int i = 0; i < 4; ++i) {
    owned_by_1 += server.occupant(i) == JobId(1) ? 1 : 0;
    owned_by_2 += server.occupant(i) == JobId(2) ? 1 : 0;
  }
  EXPECT_EQ(owned_by_1, 2);
  EXPECT_EQ(owned_by_2, 2);
  EXPECT_FALSE(server.CanFit(1));
}

TEST(ServerTest, ReleaseUnknownJobIsZero) {
  Server server(ServerId(0), GpuGeneration::kK80, 2);
  EXPECT_EQ(server.Release(JobId(9)), 0);
}

TEST(ServerDeathTest, OverAllocateAborts) {
  Server server(ServerId(0), GpuGeneration::kP40, 2);
  server.Allocate(JobId(1), 2);
  EXPECT_DEATH(server.Allocate(JobId(2), 1), "room");
}

TEST(ServerDeathTest, DoubleAllocateSameJobAborts) {
  Server server(ServerId(0), GpuGeneration::kP40, 4);
  server.Allocate(JobId(1), 1);
  EXPECT_DEATH(server.Allocate(JobId(1), 1), "already holds");
}

TEST(TopologyTest, CountsGpus) {
  const Topology topo = PaperScaleTopology();
  EXPECT_EQ(topo.TotalGpus(), 200);
  EXPECT_EQ(topo.TotalGpus(GpuGeneration::kK80), 48);
  EXPECT_EQ(topo.TotalGpus(GpuGeneration::kP40), 40);
  EXPECT_EQ(topo.TotalGpus(GpuGeneration::kP100), 48);
  EXPECT_EQ(topo.TotalGpus(GpuGeneration::kV100), 64);
  EXPECT_NE(topo.Describe().find("200 GPUs"), std::string::npos);
}

TEST(ClusterTest, BuildsServersByGeneration) {
  Cluster cluster(PaperScaleTopology());
  EXPECT_EQ(cluster.num_servers(), 25);
  EXPECT_EQ(cluster.total_gpus(), 200);
  EXPECT_TRUE(cluster.heterogeneous());
  EXPECT_EQ(cluster.servers_of(GpuGeneration::kV100).size(), 8u);
  for (ServerId id : cluster.servers_of(GpuGeneration::kK80)) {
    EXPECT_EQ(cluster.server(id).generation(), GpuGeneration::kK80);
  }
}

TEST(ClusterTest, HomogeneousIsNotHeterogeneous) {
  Cluster cluster(HomogeneousTopology(2, 4));
  EXPECT_FALSE(cluster.heterogeneous());
  EXPECT_EQ(cluster.total_gpus(), 8);
  EXPECT_EQ(cluster.total_gpus(GpuGeneration::kK80), 0);
}

TEST(ClusterTest, FreeGpusTracksAllocations) {
  Cluster cluster(HomogeneousTopology(2, 4, GpuGeneration::kP100));
  EXPECT_EQ(cluster.FreeGpus(GpuGeneration::kP100), 8);
  cluster.server(ServerId(0)).Allocate(JobId(1), 3);
  EXPECT_EQ(cluster.FreeGpus(GpuGeneration::kP100), 5);
}

TEST(ClusterTest, ServerIdsAreDense) {
  Cluster cluster(PaperScaleTopology());
  for (int i = 0; i < cluster.num_servers(); ++i) {
    EXPECT_EQ(cluster.server(ServerId(i)).id(), ServerId(i));
  }
}

}  // namespace
}  // namespace gfair::cluster
