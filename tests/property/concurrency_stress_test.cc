// Concurrency stress: every parallel subsystem at once. Sharded planning
// (plan_shards=4 over 4 servers, 3 plan threads), parallel delta apply
// (3 apply threads), pre-copy migrations (claims spanning ticks and shard
// merges), flaky transfers and sustained server churn all run concurrently
// for simulated hours; the registered cluster invariants must stay clean at
// every step and every job must drain once the cluster heals.
//
// This is the TSan CI job's main target for the phase-token contracts: the
// shard fan-out, the prepare fan-out and the serial reduce/commit phases all
// interleave here, so a mis-phased write (anything the ShardToken /
// ReduceToken gates or the parallel-region lint fences exist to prevent)
// surfaces as a race report or an invariant violation.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/harness.h"
#include "exec/fault_injector.h"

namespace gfair {
namespace {

using workload::JobState;

std::string Joined(const std::vector<std::string>& violations) {
  std::string all;
  for (const auto& v : violations) {
    all += v;
    all += "; ";
  }
  return all;
}

class ConcurrencyStress : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConcurrencyStress, AllParallelSubsystemsTogetherStayConsistent) {
  analysis::ExperimentConfig config;
  config.topology = cluster::Topology{{
      {cluster::GpuGeneration::kK80, 2, 4},
      {cluster::GpuGeneration::kV100, 2, 4},
  }};
  config.exec.migrate_failure_prob = 0.3;
  config.exec.precopy = true;
  config.exec.overlap_warmup = true;
  config.seed = GetParam();
  analysis::Experiment exp(config);
  const UserId alice = exp.users().Create("alice").id;
  const UserId bob = exp.users().Create("bob").id;
  sched::GandivaFairConfig gf;
  gf.plan_shards = 4;  // one server per shard: every migration crosses shards
  gf.plan_threads = 3; // deliberately != shards: uneven chunking in the pool
  gf.apply_threads = 3;
  exp.UseGandivaFair(gf);

  Rng rng(GetParam());
  const char* models[] = {"DCGAN", "VAE", "ResNet-50", "Transformer"};
  for (int i = 0; i < 14; ++i) {
    exp.SubmitAt(Minutes(rng.UniformInt(0, 120)), i % 2 == 0 ? alice : bob,
                 models[i % 4], static_cast<int>(1 << rng.UniformInt(0, 2)),
                 Minutes(rng.UniformInt(30, 90)));
  }
  exp.Run(Seconds(1));

  exec::FaultInjectorConfig faults;
  faults.server_mtbf = Hours(2);
  faults.server_mttr = Minutes(20);
  faults.seed = GetParam() * 31 + 7;
  exec::FaultInjector injector(exp.sim(), exp.cluster(), exp.exec(), faults);
  injector.Start();

  for (SimTime t = Minutes(10); t <= Hours(6); t += Minutes(10)) {
    exp.Run(t);
    const auto violations = exp.gandiva()->CheckInvariants();
    EXPECT_TRUE(violations.empty()) << "at t=" << t << " (seed " << GetParam()
                                    << "): " << Joined(violations);
    for (const auto* job : exp.jobs().All()) {
      ASSERT_GE(job->completed_minibatches, job->checkpointed_minibatches - 1e-6);
      if (job->state == JobState::kRunning || job->state == JobState::kSuspended) {
        ASSERT_TRUE(job->server.valid());
        ASSERT_TRUE(exp.cluster().server(job->server).up());
      }
    }
  }
  ASSERT_GT(injector.failures_injected(), 0) << "churn never fired; test is vacuous";

  injector.Stop();
  exp.Run(Hours(16));

  EXPECT_EQ(exp.cluster().num_up_servers(), 4);
  EXPECT_EQ(exp.gandiva()->pending_orphan_count(), 0u);
  const auto healed = exp.gandiva()->CheckInvariants();
  EXPECT_TRUE(healed.empty()) << Joined(healed);
  for (const auto* job : exp.jobs().All()) {
    EXPECT_EQ(job->state, JobState::kFinished)
        << "job " << job->id << " stuck after the cluster healed (seed "
        << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConcurrencyStress, ::testing::Values(13, 29));

}  // namespace
}  // namespace gfair
