// Property-style parameterized suites over the core invariants:
//  * stride: GPU time tracks tickets for arbitrary ticket ratios & gangs;
//  * trading: no user worse off / pools conserved for arbitrary speedups;
//  * scheduler: fairness and capacity conservation across cluster shapes;
//  * executor: progress accounting exact under random suspend patterns.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "analysis/harness.h"
#include "common/rng.h"
#include "common/stats.h"
#include "sched/stride.h"
#include "sched/policy/greedy_trade_policy.h"

namespace gfair {
namespace {

// ---------------------------------------------------------------------------
// Stride proportionality sweep.
// ---------------------------------------------------------------------------

struct StrideCase {
  double tickets_a;
  double tickets_b;
  int gang_a;
  int gang_b;
};

class StrideProportionality : public ::testing::TestWithParam<StrideCase> {};

TEST_P(StrideProportionality, GpuTimeMatchesTicketRatio) {
  const StrideCase param = GetParam();
  sched::LocalStrideScheduler stride(8);
  stride.AddJob(JobId(0), param.gang_a, param.tickets_a);
  stride.AddJob(JobId(1), param.gang_b, param.tickets_b);
  std::map<JobId, double> gpu_time;
  for (int tick = 0; tick < 20'000; ++tick) {
    for (JobId id : stride.SelectForQuantum()) {
      gpu_time[id] += stride.GangOf(id);
      stride.Charge(id, 1);
    }
  }
  // Both jobs always fit together (gangs sum <= 8), so each is capped by its
  // own gang size; stride must deliver min(demand, ticket share) — with both
  // demands below capacity, both run continuously.
  if (param.gang_a + param.gang_b <= 8) {
    EXPECT_NEAR(gpu_time[JobId(0)], 20'000.0 * param.gang_a, 1.0);
    EXPECT_NEAR(gpu_time[JobId(1)], 20'000.0 * param.gang_b, 1.0);
  } else {
    // Contended: GPU time ratio must track the ticket ratio.
    const double ratio = gpu_time[JobId(0)] / gpu_time[JobId(1)];
    EXPECT_NEAR(ratio, param.tickets_a / param.tickets_b,
                0.08 * param.tickets_a / param.tickets_b);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ratios, StrideProportionality,
    ::testing::Values(StrideCase{1.0, 1.0, 4, 4}, StrideCase{1.0, 1.0, 8, 8},
                      StrideCase{2.0, 1.0, 8, 8}, StrideCase{5.0, 1.0, 8, 8},
                      StrideCase{1.0, 3.0, 8, 4}, StrideCase{1.0, 1.0, 2, 4},
                      StrideCase{0.5, 2.0, 8, 8}, StrideCase{10.0, 1.0, 4, 8}));

// ---------------------------------------------------------------------------
// Trading invariants sweep.
// ---------------------------------------------------------------------------

struct TradeCase {
  double speedup_a;
  double speedup_b;
  double demand_a;
  double demand_b;
  sched::TradeConfig::RateRule rule;
};

class TradeInvariants : public ::testing::TestWithParam<TradeCase> {};

TEST_P(TradeInvariants, NoUserWorseOffAndPoolsConserved) {
  const TradeCase param = GetParam();
  constexpr size_t kK80 = 0;
  constexpr size_t kV100 = 3;

  sched::TradeInputs inputs;
  inputs.active_users = {UserId(0), UserId(1)};
  inputs.base_tickets[UserId(0)] = 1.0;
  inputs.base_tickets[UserId(1)] = 1.0;
  inputs.total_demand_gpus[UserId(0)] = param.demand_a;
  inputs.total_demand_gpus[UserId(1)] = param.demand_b;
  inputs.pool_sizes[kK80] = 24;
  inputs.pool_sizes[kV100] = 24;
  inputs.user_speedup = [&param](UserId user, cluster::GpuGeneration fast,
                                 cluster::GpuGeneration slow, Speedup* out) {
    if (fast != cluster::GpuGeneration::kV100 || slow != cluster::GpuGeneration::kK80) {
      return false;
    }
    *out = Speedup::FromRatio(user == UserId(0) ? param.speedup_a : param.speedup_b);
    return true;
  };

  sched::TradeConfig config;
  config.rate_rule = param.rule;
  sched::GreedyTradePolicy engine(config);
  const auto outcome = engine.Allocate(inputs);

  // Pools conserved, no negative entitlements.
  for (size_t g : {kK80, kV100}) {
    double total = 0.0;
    for (const auto& [user, ent] : outcome.entitlements) {
      EXPECT_GE(ent[g], -1e-9);
      total += ent[g];
    }
    EXPECT_NEAR(total, 24.0, 1e-6);
  }
  // No user worse off, valued at its own speedup.
  const double speedups[] = {param.speedup_a, param.speedup_b};
  for (UserId user : inputs.active_users) {
    const auto& ent = outcome.entitlements.at(user);
    const double before = 12.0 + speedups[user.value()] * 12.0;
    const double after = ent[kK80] + speedups[user.value()] * ent[kV100];
    EXPECT_GE(after, before - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Speedups, TradeInvariants,
    ::testing::Values(
        TradeCase{1.1, 6.0, 48, 48, sched::TradeConfig::RateRule::kBorrowerSpeedup},
        TradeCase{1.5, 2.0, 48, 48, sched::TradeConfig::RateRule::kBorrowerSpeedup},
        TradeCase{2.0, 2.0, 48, 48, sched::TradeConfig::RateRule::kBorrowerSpeedup},
        TradeCase{1.1, 6.0, 48, 48, sched::TradeConfig::RateRule::kGeometricMean},
        TradeCase{1.0, 4.0, 30, 60, sched::TradeConfig::RateRule::kGeometricMean},
        TradeCase{1.2, 5.9, 100, 10, sched::TradeConfig::RateRule::kBorrowerSpeedup},
        TradeCase{3.0, 1.2, 48, 48, sched::TradeConfig::RateRule::kBorrowerSpeedup}));

// ---------------------------------------------------------------------------
// Scheduler-level fairness & conservation across cluster shapes and seeds.
// ---------------------------------------------------------------------------

struct FairnessCase {
  int num_users;
  int num_servers;
  int gpus_per_server;
  uint64_t seed;
};

class SchedulerFairness : public ::testing::TestWithParam<FairnessCase> {};

TEST_P(SchedulerFairness, SaturatedEqualUsersGetEqualShares) {
  const FairnessCase param = GetParam();
  analysis::ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(param.num_servers, param.gpus_per_server);
  config.seed = param.seed;
  analysis::Experiment exp(config);
  std::vector<UserId> users;
  for (int u = 0; u < param.num_users; ++u) {
    users.push_back(exp.users().Create("u" + std::to_string(u)).id);
  }
  exp.UseGandivaFair({});
  // Every user saturates the cluster with 1- and 2-GPU jobs.
  Rng rng(param.seed);
  const int total_gpus = param.num_servers * param.gpus_per_server;
  for (UserId user : users) {
    int demand = 0;
    while (demand < total_gpus) {
      const int gang = rng.Bernoulli(0.3) ? 2 : 1;
      exp.SubmitAt(Minutes(rng.UniformInt(0, 10)), user, "DCGAN", gang, Hours(500));
      demand += gang;
    }
  }
  const SimTime horizon = Hours(4);
  exp.Run(horizon);

  std::vector<double> shares;
  double total_ms = 0.0;
  for (UserId user : users) {
    const double ms = exp.ledger().GpuMs(user, Hours(1), horizon);
    shares.push_back(ms);
    total_ms += exp.ledger().GpuMs(user, kTimeZero, horizon);
  }
  EXPECT_GT(JainIndex(shares), 0.98);
  // Conservation: never more than capacity; near-full when oversubscribed.
  const double capacity_ms = static_cast<double>(total_gpus) * horizon;
  EXPECT_LE(total_ms, capacity_ms * 1.0001);
  EXPECT_GT(total_ms, capacity_ms * 0.90);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SchedulerFairness,
    ::testing::Values(FairnessCase{2, 1, 8, 1}, FairnessCase{3, 2, 4, 2},
                      FairnessCase{4, 2, 8, 3}, FairnessCase{6, 4, 4, 4},
                      FairnessCase{2, 1, 8, 5}, FairnessCase{4, 2, 8, 7}));

// ---------------------------------------------------------------------------
// Executor progress-accounting exactness under random preemption.
// ---------------------------------------------------------------------------

class ExecutorAccounting : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutorAccounting, ProgressEqualsProductiveTimeTimesRate) {
  simkit::Simulator sim;
  cluster::Cluster cluster(cluster::HomogeneousTopology(1, 2, cluster::GpuGeneration::kP40));
  workload::JobTable jobs;
  exec::Executor exec(sim, cluster, workload::ModelZoo::Default(), jobs,
                      exec::ExecutorConfig{}, GetParam());
  const auto& model = workload::ModelZoo::Default().GetByName("LSTM-LM");
  workload::Job& job = jobs.Create(UserId(0), model.id, 2, 1e12, 0);
  exec.MakeResident(job.id, ServerId(0));

  Rng rng(GetParam());
  int resumes = 0;
  for (int i = 0; i < 50; ++i) {
    sim.RunUntil(sim.Now() + Seconds(rng.UniformInt(1, 600)));
    if (job.state == workload::JobState::kSuspended) {
      exec.Resume(job.id);
      ++resumes;
    } else {
      exec.Suspend(job.id);
    }
  }
  if (job.state == workload::JobState::kRunning) {
    exec.Suspend(job.id);
  }
  // Invariant: completed = rate * (gpu_time/gang - resumes*warmup), within
  // clamping slack for segments shorter than the warm-up.
  const double rate = model.GangThroughput(cluster::GpuGeneration::kP40, 2);
  const double wall_ms = job.TotalGpuMs() / 2.0;
  const double warmup_ms =
      static_cast<double>(exec.ResumeLatency(model.id) * resumes);
  const double expected = rate * (wall_ms - warmup_ms) / kSecond;
  EXPECT_GE(job.completed_minibatches + 1e-6, expected);
  EXPECT_LE(job.completed_minibatches, rate * wall_ms / kSecond + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorAccounting,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace gfair
