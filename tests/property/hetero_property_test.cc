// Property sweeps over heterogeneous clusters and failure injection:
//  * trading never leaves a user below its no-trade useful work (beyond a
//    noise band) across workload skews and topologies;
//  * fairness holds on heterogeneous clusters without trading;
//  * crash storms never corrupt accounting invariants.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/harness.h"
#include "analysis/metrics.h"
#include "common/rng.h"
#include "common/stats.h"

namespace gfair {
namespace {

using analysis::Experiment;
using analysis::ExperimentConfig;
using cluster::GpuGeneration;

// ---------------------------------------------------------------------------
// Heterogeneous fairness without trading: per-pool proportional shares
// compose into ticket-proportional cluster GPU time when both users demand
// everything.
// ---------------------------------------------------------------------------

struct HeteroCase {
  int k80_servers;
  int v100_servers;
  double tickets_b;
  uint64_t seed;
};

class HeteroFairness : public ::testing::TestWithParam<HeteroCase> {};

TEST_P(HeteroFairness, GpuTimeTracksTicketsAcrossPools) {
  const HeteroCase param = GetParam();
  ExperimentConfig config;
  config.topology = cluster::Topology{{
      {GpuGeneration::kK80, param.k80_servers, 4},
      {GpuGeneration::kV100, param.v100_servers, 4},
  }};
  config.seed = param.seed;
  Experiment exp(config);
  auto& a = exp.users().Create("a", 1.0);
  auto& b = exp.users().Create("b", param.tickets_b);
  sched::GandivaFairConfig sched_config;
  sched_config.enable_trading = false;  // isolate the fairness mechanism
  exp.UseGandivaFair(sched_config);

  const int total = exp.cluster().total_gpus();
  for (int i = 0; i < total; ++i) {
    exp.SubmitAt(kTimeZero, a.id, "DCGAN", 1, Hours(4000));
    exp.SubmitAt(kTimeZero, b.id, "LSTM-LM", 1, Hours(4000));
  }
  exp.Run(Hours(5));
  const double a_ms = exp.ledger().GpuMs(a.id, Hours(1), Hours(5));
  const double b_ms = exp.ledger().GpuMs(b.id, Hours(1), Hours(5));
  EXPECT_NEAR(b_ms / a_ms, param.tickets_b, 0.12 * param.tickets_b);
  // The per-job and per-user accountings must agree exactly.
  EXPECT_LT(analysis::LedgerJobConsistencyGap(exp.jobs(), exp.users(), exp.ledger()),
            1.0);
}

INSTANTIATE_TEST_SUITE_P(Topologies, HeteroFairness,
                         ::testing::Values(HeteroCase{1, 1, 1.0, 1},
                                           HeteroCase{2, 2, 1.0, 2},
                                           HeteroCase{2, 1, 2.0, 3},
                                           HeteroCase{1, 3, 3.0, 4},
                                           HeteroCase{3, 1, 1.0, 5}));

// ---------------------------------------------------------------------------
// Trading safety sweep: across workload skews, the lender gains and nobody
// collapses.
// ---------------------------------------------------------------------------

struct TradeSweepCase {
  const char* low_model;
  const char* high_model;
  int jobs_per_user;
  uint64_t seed;
};

class TradingSafety : public ::testing::TestWithParam<TradeSweepCase> {};

TEST_P(TradingSafety, LenderGainsBorrowerHolds) {
  const TradeSweepCase param = GetParam();
  auto run = [&](bool trading) {
    ExperimentConfig config;
    config.topology = cluster::Topology{{
        {GpuGeneration::kK80, 2, 8},
        {GpuGeneration::kV100, 2, 8},
    }};
    config.seed = param.seed;
    auto exp = std::make_unique<Experiment>(config);
    auto& low = exp->users().Create("low", 1.0);
    auto& high = exp->users().Create("high", 1.0);
    sched::GandivaFairConfig sched_config;
    sched_config.enable_trading = trading;
    exp->UseGandivaFair(sched_config);
    for (int i = 0; i < param.jobs_per_user; ++i) {
      exp->SubmitAt(Minutes(i), low.id, param.low_model, 1, Hours(100));
      exp->SubmitAt(Minutes(i), high.id, param.high_model, 1, Hours(100));
    }
    exp->Run(Hours(8));
    const auto summaries = analysis::SummarizeUsers(
        exp->jobs(), exp->users(), exp->ledger(), exp->zoo(), Hours(2), Hours(8));
    return std::pair<double, double>(summaries[0].useful_k80_gpu_hours,
                                     summaries[1].useful_k80_gpu_hours);
  };
  const auto [low_off, high_off] = run(false);
  const auto [low_on, high_on] = run(true);
  EXPECT_GT(low_on, low_off * 1.05) << "lender must gain";
  EXPECT_GT(high_on, high_off * 0.88) << "borrower must hold (noise band)";
  EXPECT_GT(low_on + high_on, (low_off + high_off) * 1.0) << "aggregate must not drop";
}

INSTANTIATE_TEST_SUITE_P(
    Skews, TradingSafety,
    ::testing::Values(TradeSweepCase{"VAE", "ResNeXt-50", 24, 11},
                      TradeSweepCase{"VAE", "Transformer", 24, 13},
                      TradeSweepCase{"SuperResolution", "ResNeXt-50", 30, 17},
                      TradeSweepCase{"VAE", "ResNet-50", 24, 19}));

// ---------------------------------------------------------------------------
// Crash-storm invariants.
// ---------------------------------------------------------------------------

class CrashStorm : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrashStorm, AccountingInvariantsSurvive) {
  ExperimentConfig config;
  config.topology = cluster::HomogeneousTopology(2, 4);
  config.seed = GetParam();
  Experiment exp(config);
  auto& a = exp.users().Create("a");
  exp.UseGandivaFair({});
  std::vector<JobId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(exp.SubmitAt(Minutes(i), a.id, "DCGAN", 1 + (i % 2), Hours(3)));
  }
  Rng chaos(GetParam());
  for (int step = 5; step <= 600; step += 5) {
    exp.Run(Minutes(step));
    std::vector<JobId> live;
    for (JobId id : ids) {
      const auto& job = exp.jobs().Get(id);
      if (!job.finished() && (job.state == workload::JobState::kRunning ||
                              job.state == workload::JobState::kSuspended)) {
        live.push_back(id);
      }
    }
    if (!live.empty() && chaos.Bernoulli(0.5)) {
      exp.exec().InjectCrash(live[static_cast<size_t>(
          chaos.UniformInt(0, static_cast<int64_t>(live.size()) - 1))]);
    }
    // Invariants at every step: progress within bounds, GPU occupancy
    // consistent, no job both finished and resident.
    for (JobId id : ids) {
      const auto& job = exp.jobs().Get(id);
      EXPECT_GE(job.completed_minibatches, job.checkpointed_minibatches - 1e-6);
      EXPECT_LE(job.completed_minibatches, job.total_minibatches + 1e-6);
      if (job.finished()) {
        EXPECT_FALSE(job.resident());
      }
    }
    int held = 0;
    for (const auto& server : exp.cluster().servers()) {
      held += server.num_busy();
    }
    int running_gangs = 0;
    for (JobId id : ids) {
      if (exp.exec().IsRunning(id)) {
        running_gangs += exp.jobs().Get(id).gang_size;
      }
    }
    EXPECT_EQ(held, running_gangs);
  }
  exp.Run(Hours(40));
  for (JobId id : ids) {
    EXPECT_TRUE(exp.jobs().Get(id).finished()) << "job " << id.value();
  }
  EXPECT_LT(analysis::LedgerJobConsistencyGap(exp.jobs(), exp.users(), exp.ledger()),
            1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashStorm, ::testing::Values(1, 7, 23, 99));

}  // namespace
}  // namespace gfair
