// Fault-plane property test: GandivaFair under sustained server churn AND
// flaky checkpoint transfers must never lose or wedge a job. Once the churn
// stops and the cluster heals, every submitted job finishes.
#include <gtest/gtest.h>

#include "analysis/harness.h"
#include "exec/fault_injector.h"

namespace gfair {
namespace {

using workload::JobState;

std::string Joined(const std::vector<std::string>& violations) {
  std::string all;
  for (const auto& v : violations) {
    all += v;
    all += "; ";
  }
  return all;
}

class FaultChurnProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FaultChurnProperty, NoJobLostOrWedgedUnderChurn) {
  analysis::ExperimentConfig config;
  config.topology = cluster::Topology{{
      {cluster::GpuGeneration::kK80, 2, 4},
      {cluster::GpuGeneration::kV100, 2, 4},
  }};
  config.exec.migrate_failure_prob = 0.3;  // one in three transfers flakes
  config.seed = GetParam();
  analysis::Experiment exp(config);
  const UserId alice = exp.users().Create("alice").id;
  const UserId bob = exp.users().Create("bob").id;
  exp.UseGandivaFair({});

  Rng rng(GetParam());
  const char* models[] = {"DCGAN", "VAE", "ResNet-50"};
  for (int i = 0; i < 10; ++i) {
    exp.SubmitAt(Minutes(rng.UniformInt(0, 120)), i % 2 == 0 ? alice : bob,
                 models[i % 3], static_cast<int>(1 << rng.UniformInt(0, 2)),
                 Minutes(rng.UniformInt(30, 90)));
  }
  exp.Run(Seconds(1));

  exec::FaultInjectorConfig faults;
  faults.server_mtbf = Hours(2);  // aggressive: ~2 failures/hour across 4 servers
  faults.server_mttr = Minutes(20);
  faults.seed = GetParam() * 31 + 7;
  exec::FaultInjector injector(exp.sim(), exp.cluster(), exp.exec(), faults);
  injector.Start();

  // Step through six hours of churn, checking liveness invariants at every
  // step: valid job states, no resurrecting progress, down servers hold no
  // GPUs, and capacity accounting stays exact.
  for (SimTime t = Minutes(10); t <= Hours(6); t += Minutes(10)) {
    exp.Run(t);
    // The registered cluster-wide invariants (gang residency, entitlement
    // conservation, pass monotonicity, delta ordering, down-holds-nothing)
    // must hold at every churn step, not just quantum boundaries.
    const auto violations = exp.gandiva()->CheckInvariants();
    EXPECT_TRUE(violations.empty()) << "at t=" << t << " (seed " << GetParam()
                                    << "): " << Joined(violations);
    int up_gpus = 0;
    for (const auto& server : exp.cluster().servers()) {
      if (!server.up()) {
        ASSERT_EQ(server.num_busy(), 0) << "down server still holds GPUs";
      } else {
        up_gpus += server.num_gpus();
      }
    }
    ASSERT_EQ(up_gpus, exp.cluster().up_gpus());
    for (const auto* job : exp.jobs().All()) {
      ASSERT_GE(job->completed_minibatches, job->checkpointed_minibatches - 1e-6);
      if (job->state == JobState::kRunning || job->state == JobState::kSuspended) {
        ASSERT_TRUE(job->server.valid());
        ASSERT_TRUE(exp.cluster().server(job->server).up());
      }
    }
  }
  ASSERT_GT(injector.failures_injected(), 0) << "churn never fired; test is vacuous";

  // Stop injecting; pending repairs still complete, so the cluster heals and
  // everything parked or retried must drain.
  injector.Stop();
  exp.Run(Hours(16));

  EXPECT_EQ(exp.cluster().num_up_servers(), 4);
  EXPECT_EQ(exp.gandiva()->pending_orphan_count(), 0u);
  const auto healed = exp.gandiva()->CheckInvariants();
  EXPECT_TRUE(healed.empty()) << Joined(healed);
  int64_t orphanings = 0;
  for (const auto* job : exp.jobs().All()) {
    EXPECT_EQ(job->state, JobState::kFinished)
        << "job " << job->id << " stuck after the cluster healed (seed "
        << GetParam() << ")";
    orphanings += job->num_orphanings;
  }
  EXPECT_EQ(orphanings, exp.exec().jobs_orphaned());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultChurnProperty, ::testing::Values(1, 2, 3, 4));

// Sharded-planning variant: with plan_shards covering one server each, every
// balance/trade/steal migration, orphan re-placement and pre-copy claim
// crosses a shard boundary by construction. Those flows run between ticks or
// in the serial reduce — never inside the shard fan-out — so the invariant
// sweep must stay exactly as clean as the serial planner's under the same
// churn, flaky transfers and pre-copy cutovers included.
class ShardedFaultChurnProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShardedFaultChurnProperty, CrossShardTrafficKeepsInvariantsClean) {
  analysis::ExperimentConfig config;
  config.topology = cluster::Topology{{
      {cluster::GpuGeneration::kK80, 2, 4},
      {cluster::GpuGeneration::kV100, 2, 4},
  }};
  config.exec.migrate_failure_prob = 0.3;
  config.exec.precopy = true;  // claims span ticks, so they span shard merges
  config.seed = GetParam();
  analysis::Experiment exp(config);
  const UserId alice = exp.users().Create("alice").id;
  const UserId bob = exp.users().Create("bob").id;
  sched::GandivaFairConfig gf;
  gf.plan_shards = 4;  // one server per shard: all migrations cross shards
  gf.plan_threads = 4;
  exp.UseGandivaFair(gf);

  Rng rng(GetParam());
  const char* models[] = {"DCGAN", "VAE", "ResNet-50"};
  for (int i = 0; i < 10; ++i) {
    exp.SubmitAt(Minutes(rng.UniformInt(0, 120)), i % 2 == 0 ? alice : bob,
                 models[i % 3], static_cast<int>(1 << rng.UniformInt(0, 2)),
                 Minutes(rng.UniformInt(30, 90)));
  }
  exp.Run(Seconds(1));

  exec::FaultInjectorConfig faults;
  faults.server_mtbf = Hours(2);
  faults.server_mttr = Minutes(20);
  faults.seed = GetParam() * 31 + 7;
  exec::FaultInjector injector(exp.sim(), exp.cluster(), exp.exec(), faults);
  injector.Start();

  for (SimTime t = Minutes(10); t <= Hours(6); t += Minutes(10)) {
    exp.Run(t);
    const auto violations = exp.gandiva()->CheckInvariants();
    EXPECT_TRUE(violations.empty()) << "at t=" << t << " (seed " << GetParam()
                                    << "): " << Joined(violations);
    for (const auto* job : exp.jobs().All()) {
      ASSERT_GE(job->completed_minibatches, job->checkpointed_minibatches - 1e-6);
      if (job->state == JobState::kRunning || job->state == JobState::kSuspended) {
        ASSERT_TRUE(job->server.valid());
        ASSERT_TRUE(exp.cluster().server(job->server).up());
      }
    }
  }
  ASSERT_GT(injector.failures_injected(), 0) << "churn never fired; test is vacuous";

  injector.Stop();
  exp.Run(Hours(16));

  EXPECT_EQ(exp.cluster().num_up_servers(), 4);
  EXPECT_EQ(exp.gandiva()->pending_orphan_count(), 0u);
  const auto healed = exp.gandiva()->CheckInvariants();
  EXPECT_TRUE(healed.empty()) << Joined(healed);
  for (const auto* job : exp.jobs().All()) {
    EXPECT_EQ(job->state, JobState::kFinished)
        << "job " << job->id << " stuck after the cluster healed (seed "
        << GetParam() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedFaultChurnProperty, ::testing::Values(7, 11));

}  // namespace
}  // namespace gfair
