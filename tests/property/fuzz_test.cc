// Randomized-operation fuzz suites with invariant checking:
//  * GreedyTradePolicy over random user populations — conservation, no negative
//    entitlements, no user worse off, rate bounds;
//  * LocalStrideScheduler under random add/remove/retarget churn — selection
//    feasibility, pass monotonicity, load accounting;
//  * Executor under random verb sequences interleaved with server
//    failures/recoveries — state machine legality and occupancy consistency.
#include <gtest/gtest.h>

#include <cmath>

#include <unordered_map>
#include <vector>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "exec/executor.h"
#include "sched/stride.h"
#include "sched/policy/greedy_trade_policy.h"
#include "simkit/simulator.h"
#include "workload/model_zoo.h"

namespace gfair {
namespace {

// ---------------------------------------------------------------------------
// GreedyTradePolicy fuzz.
// ---------------------------------------------------------------------------

class TradeFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TradeFuzz, InvariantsHoldForRandomPopulations) {
  Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    const int num_users = static_cast<int>(rng.UniformInt(2, 12));
    sched::TradeInputs inputs;
    std::vector<double> speedups;
    for (int u = 0; u < num_users; ++u) {
      inputs.active_users.push_back(UserId(static_cast<uint32_t>(u)));
      inputs.base_tickets[UserId(u)] = rng.Uniform(0.5, 4.0);
      inputs.total_demand_gpus[UserId(u)] = rng.Uniform(1.0, 120.0);
      speedups.push_back(rng.Uniform(1.0, 6.5));
    }
    for (size_t g = 0; g < cluster::kNumGenerations; ++g) {
      inputs.pool_sizes[g] = static_cast<int>(rng.UniformInt(0, 64));
    }
    // Pairwise speedups must be multiplicatively consistent (they are ratios
    // of per-generation rates, exactly as ProfileStore derives them):
    // rate(g) interpolates 1 .. base geometrically across generations.
    auto rate_of = [&speedups](UserId user, cluster::GpuGeneration gen) {
      const double base = speedups[user.value()];
      return std::pow(base, static_cast<double>(cluster::GenerationIndex(gen)) / 3.0);
    };
    inputs.user_speedup = [&rate_of](UserId user, cluster::GpuGeneration fast,
                                     cluster::GpuGeneration slow, Speedup* out) {
      *out = Speedup::FromRatio(rate_of(user, fast) / rate_of(user, slow));
      return true;
    };

    sched::TradeConfig config;
    config.rate_rule = rng.Bernoulli(0.5) ? sched::TradeConfig::RateRule::kBorrowerSpeedup
                                          : sched::TradeConfig::RateRule::kGeometricMean;
    sched::GreedyTradePolicy engine(config);
    const auto outcome = engine.Allocate(inputs);

    // Pool conservation and non-negativity.
    for (size_t g = 0; g < cluster::kNumGenerations; ++g) {
      double total = 0.0;
      for (const auto& [user, ent] : outcome.entitlements) {
        ASSERT_GE(ent[g], -1e-6);
        total += ent[g];
      }
      ASSERT_NEAR(total, static_cast<double>(inputs.pool_sizes[g]), 1e-6);
    }
    // No user's entitlement value (own-speedup weighted) drops below base.
    double total_tickets = 0.0;
    for (UserId user : inputs.active_users) {
      total_tickets += inputs.base_tickets[user].raw();
    }
    for (UserId user : inputs.active_users) {
      const double fraction = inputs.base_tickets[user].raw() / total_tickets;
      double base_value = 0.0;
      double post_value = 0.0;
      const auto& ent = outcome.entitlements.at(user);
      for (size_t g = 0; g < cluster::kNumGenerations; ++g) {
        Speedup speedup_vs_k80 = Speedup::Unit();
        inputs.user_speedup(user, cluster::kAllGenerations[g], cluster::GpuGeneration::kK80,
                            &speedup_vs_k80);
        base_value += fraction * inputs.pool_sizes[g] * speedup_vs_k80.raw();
        post_value += ent[g] * speedup_vs_k80.raw();
      }
      ASSERT_GE(post_value, base_value - 1e-6)
          << "user " << user << " lost entitlement value (seed " << GetParam()
          << ", round " << round << ")";
    }
    // Rates bounded by the participants' speedups.
    for (const auto& trade : outcome.trades) {
      ASSERT_GE(trade.rate.raw(), 1.0);
      ASSERT_LE(trade.rate.raw(), trade.borrower_speedup.raw() + 1e-9);
      ASSERT_GT(trade.fast_gpus, 0.0);
      ASSERT_NEAR(trade.slow_gpus, trade.fast_gpus * trade.rate.raw(), 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TradeFuzz, ::testing::Values(101, 202, 303, 404));

// ---------------------------------------------------------------------------
// Stride fuzz.
// ---------------------------------------------------------------------------

class StrideFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StrideFuzz, SelectionAlwaysFeasibleAndPassesMonotone) {
  Rng rng(GetParam());
  sched::LocalStrideScheduler stride(8);
  std::unordered_map<uint32_t, double> last_pass;
  uint32_t next_id = 0;
  std::vector<JobId> resident;

  for (int step = 0; step < 5'000; ++step) {
    const int op = static_cast<int>(rng.UniformInt(0, 9));
    if (op <= 2 || resident.empty()) {  // add
      const int gang = static_cast<int>(1 << rng.UniformInt(0, 3));
      const JobId id(next_id++);
      stride.AddJob(id, gang, rng.Uniform(0.01, 4.0));
      resident.push_back(id);
      last_pass[id.value()] = stride.PassOf(id).raw();
      // Newcomers never enter below the virtual time.
      ASSERT_GE(stride.PassOf(id), stride.VirtualTime() - Stride(1e-9));
    } else if (op == 3 && resident.size() > 1) {  // remove random
      const size_t victim =
          static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(resident.size()) - 1));
      stride.RemoveJob(resident[victim]);
      last_pass.erase(resident[victim].value());
      resident.erase(resident.begin() + static_cast<long>(victim));
    } else if (op == 4) {  // retarget tickets
      const JobId id = resident[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(resident.size()) - 1))];
      stride.SetTickets(id, rng.Uniform(0.01, 4.0));
    } else if (op == 5) {  // toggle runnable
      const JobId id = resident[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(resident.size()) - 1))];
      stride.SetRunnable(id, rng.Bernoulli(0.8));
    } else {  // run a quantum
      const auto selected = stride.SelectForQuantum();
      int used = 0;
      for (JobId id : selected) {
        used += stride.GangOf(id);
        stride.Charge(id, 60'000);
      }
      ASSERT_LE(used, 8) << "selection oversubscribed the server";
    }
    // Pass monotonicity: charges never decrease a job's pass.
    for (JobId id : resident) {
      const double pass = stride.PassOf(id).raw();
      auto it = last_pass.find(id.value());
      if (it != last_pass.end()) {
        ASSERT_GE(pass, it->second - 1e-9);
      }
      last_pass[id.value()] = pass;
    }
    ASSERT_EQ(stride.num_jobs(), resident.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrideFuzz, ::testing::Values(11, 22, 33, 44));

// ---------------------------------------------------------------------------
// Executor fuzz: random legal verb sequences on a small cluster.
// ---------------------------------------------------------------------------

class ExecutorFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutorFuzz, StateMachineAndOccupancyStayConsistent) {
  Rng rng(GetParam());
  simkit::Simulator sim;
  cluster::Cluster cluster(cluster::Topology{{
      {cluster::GpuGeneration::kK80, 2, 4},
      {cluster::GpuGeneration::kV100, 2, 4},
  }});
  workload::JobTable jobs;
  exec::Executor exec(sim, cluster, workload::ModelZoo::Default(), jobs,
                      exec::ExecutorConfig{}, GetParam());
  const auto& zoo = workload::ModelZoo::Default();

  std::vector<JobId> ids;
  for (int i = 0; i < 8; ++i) {
    const auto& model = zoo.models()[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(zoo.size()) - 1))];
    auto& job =
        jobs.Create(UserId(0), model.id, static_cast<int>(1 << rng.UniformInt(0, 2)),
                    1e9, sim.Now());
    ids.push_back(job.id);
  }

  for (int step = 0; step < 3'000; ++step) {
    sim.RunUntil(sim.Now() + Seconds(rng.UniformInt(1, 120)));

    // Occasionally flip a server's availability: failure evacuates its jobs,
    // recovery makes it a target again. Both must preserve every invariant
    // below, whatever verbs the rest of the walk interleaves.
    if (rng.Bernoulli(0.02)) {
      const auto& servers = cluster.servers();
      const auto& victim = servers[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(servers.size()) - 1))];
      if (victim.up()) {
        exec.FailServer(victim.id());
      } else {
        exec.RecoverServer(victim.id());
      }
    }

    const JobId id = ids[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(ids.size()) - 1))];
    auto& job = jobs.Get(id);
    switch (job.state) {
      case workload::JobState::kQueued: {
        const auto& servers = cluster.servers();
        const auto& target = servers[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(servers.size()) - 1))];
        if (target.up() && target.num_gpus() >= job.gang_size &&
            zoo.Get(job.model).FitsGeneration(target.generation())) {
          exec.MakeResident(id, target.id());
        }
        break;
      }
      case workload::JobState::kSuspended:
        if (rng.Bernoulli(0.2)) {
          // Migrate to a random other up server that can host the gang.
          for (const auto& server : cluster.servers()) {
            if (server.up() && server.id() != job.server &&
                server.num_gpus() >= job.gang_size &&
                zoo.Get(job.model).FitsGeneration(server.generation())) {
              exec.Migrate(id, server.id());
              break;
            }
          }
        } else if (cluster.server(job.server).CanFit(job.gang_size)) {
          exec.Resume(id);
        } else if (rng.Bernoulli(0.1)) {
          exec.InjectCrash(id);
        }
        break;
      case workload::JobState::kRunning:
        if (rng.Bernoulli(0.15)) {
          exec.InjectCrash(id);
        } else {
          exec.Suspend(id);
        }
        break;
      case workload::JobState::kMigrating:
      case workload::JobState::kFinished:
        break;
    }

    // Occupancy invariant: every server's busy GPUs equal the gangs of the
    // jobs running there; progress bounded.
    int busy_total = 0;
    for (const auto& server : cluster.servers()) {
      if (!server.up()) {
        ASSERT_EQ(server.num_busy(), 0) << "down server still holds GPUs";
      }
      busy_total += server.num_busy();
    }
    int running_total = 0;
    for (JobId jid : ids) {
      const auto& observed = jobs.Get(jid);
      if (exec.IsRunning(jid)) {
        ASSERT_EQ(observed.state, workload::JobState::kRunning);
        running_total += observed.gang_size;
      }
      ASSERT_GE(observed.completed_minibatches, observed.checkpointed_minibatches - 1e-6);
    }
    ASSERT_EQ(busy_total, running_total);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorFuzz, ::testing::Values(5, 55, 555));

}  // namespace
}  // namespace gfair
