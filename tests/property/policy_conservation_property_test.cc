// Allocation-policy property test: every registered backend, fed epoch
// snapshots taken from a cluster under sustained server churn, must conserve
// entitlement mass exactly — per-generation totals equal the UP capacity of
// that pool — never hand out negative shares, and never place entitlement on
// a generation whose servers are all down (or absent from the topology).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/harness.h"
#include "exec/fault_injector.h"
#include "sched/policy/allocation_policy.h"

namespace gfair::sched {
namespace {

using cluster::GenerationIndex;
using cluster::GpuGeneration;
using cluster::kAllGenerations;

// Builds the epoch snapshot the coordinator would hand a backend: pool sizes
// from live up-capacity, tickets/demand/profiles jittered by the seed so the
// property is exercised across lopsided as well as symmetric inputs.
TradeInputs ChurnedInputs(analysis::Experiment& exp,
                          const std::vector<UserId>& users, Rng* rng) {
  TradeInputs inputs;
  inputs.active_users = users;
  for (size_t i = 0; i < users.size(); ++i) {
    inputs.base_tickets[users[i]] = 0.5 + rng->NextDouble() * 4.0;
    inputs.total_demand_gpus[users[i]] = 1.0 + rng->NextDouble() * 40.0;
  }
  for (const GpuGeneration gen : kAllGenerations) {
    inputs.pool_sizes[GenerationIndex(gen)] = exp.cluster().up_gpus(gen);
  }
  // Roughly half the user/pair combinations are profiled; speedups span the
  // profitable and unprofitable range so greedy sometimes trades and
  // sometimes declines.
  const double profiled_prob = 0.3 + rng->NextDouble() * 0.5;
  const uint64_t salt = rng->UniformInt(0, 1 << 20);
  inputs.user_speedup = [profiled_prob, salt](UserId user, GpuGeneration fast,
                                              GpuGeneration slow, Speedup* out) {
    Rng local(salt + user.value() * 131 + GenerationIndex(fast) * 17 +
              GenerationIndex(slow));
    if (local.NextDouble() > profiled_prob) {
      return false;
    }
    *out = Speedup::FromRatio(1.0 + local.NextDouble() * 7.0);
    return true;
  };
  return inputs;
}

class PolicyConservationProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PolicyConservationProperty, AllBackendsConserveUpCapacityUnderChurn) {
  analysis::ExperimentConfig config;
  config.topology = cluster::Topology{{
      {GpuGeneration::kK80, 2, 4},
      {GpuGeneration::kV100, 2, 4},
  }};
  config.seed = GetParam();
  analysis::Experiment exp(config);
  std::vector<UserId> users;
  users.push_back(exp.users().Create("alice").id);
  users.push_back(exp.users().Create("bob").id);
  users.push_back(exp.users().Create("carol").id);
  exp.UseGandivaFair({});
  // Keep the executor busy so churn has work to disrupt (the scheduler's own
  // liveness under churn is fault_property_test's job; here it just drives a
  // realistic up-capacity trajectory).
  for (int i = 0; i < 6; ++i) {
    exp.SubmitAt(Minutes(5 * i), users[i % users.size()], "DCGAN", 1, Hours(12));
  }
  exp.Run(Seconds(1));

  exec::FaultInjectorConfig faults;
  faults.server_mtbf = Hours(2);
  faults.server_mttr = Minutes(20);
  faults.seed = GetParam() * 31 + 7;
  exec::FaultInjector injector(exp.sim(), exp.cluster(), exp.exec(), faults);
  injector.Start();

  auto& registry = AllocationPolicyRegistry::Instance();
  const TradeConfig trade_config;
  std::vector<std::unique_ptr<IAllocationPolicy>> backends;
  for (const std::string& name : registry.Names()) {
    backends.push_back(registry.Create(name, trade_config));
    ASSERT_NE(backends.back(), nullptr) << name;
  }

  Rng rng(GetParam() * 101 + 13);
  int churned_steps = 0;  // steps observed with at least one pool degraded
  for (SimTime t = Minutes(10); t <= Hours(6); t += Minutes(10)) {
    exp.Run(t);
    if (exp.cluster().up_gpus() < exp.cluster().total_gpus()) {
      ++churned_steps;
    }
    const TradeInputs inputs = ChurnedInputs(exp, users, &rng);
    for (const auto& backend : backends) {
      const TradeOutcome outcome = backend->Allocate(inputs);
      ASSERT_EQ(outcome.entitlements.size(), users.size())
          << backend->name() << " at t=" << t;
      cluster::PerGeneration<double> totals{};
      for (const UserId user : users) {
        const auto it = outcome.entitlements.find(user);
        ASSERT_NE(it, outcome.entitlements.end())
            << backend->name() << " dropped a user at t=" << t;
        for (const GpuGeneration gen : kAllGenerations) {
          const double share = it->second[GenerationIndex(gen)];
          // Non-negative up to fp dust: a greedy trade that drains a lender's
          // pool exactly can leave -1e-16-scale residue.
          ASSERT_GE(share, -1e-9) << backend->name() << " negative share at t="
                                  << t << " (seed " << GetParam() << ")";
          totals[GenerationIndex(gen)] += share;
        }
      }
      for (const GpuGeneration gen : kAllGenerations) {
        const int capacity = inputs.pool_sizes[GenerationIndex(gen)];
        if (capacity == 0) {
          // Down (or absent) pools must carry zero entitlement mass: a
          // backend must never allocate on down servers.
          ASSERT_EQ(totals[GenerationIndex(gen)], 0.0)
              << backend->name() << " allocated on a down pool at t=" << t
              << " (seed " << GetParam() << ")";
        } else {
          ASSERT_NEAR(totals[GenerationIndex(gen)], capacity, 1e-6)
              << backend->name() << " leaked capacity at t=" << t << " (seed "
              << GetParam() << ")";
        }
      }
    }
  }
  ASSERT_GT(injector.failures_injected(), 0) << "churn never fired; test is vacuous";
  ASSERT_GT(churned_steps, 0) << "no step saw degraded capacity; test is vacuous";
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyConservationProperty,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace gfair::sched
