#include "cluster/gpu.h"

#include <algorithm>
#include <cctype>

#include "common/check.h"

namespace gfair::cluster {

const char* GenerationName(GpuGeneration gen) {
  switch (gen) {
    case GpuGeneration::kK80:
      return "K80";
    case GpuGeneration::kP40:
      return "P40";
    case GpuGeneration::kP100:
      return "P100";
    case GpuGeneration::kV100:
      return "V100";
  }
  return "?";
}

bool ParseGeneration(const std::string& name, GpuGeneration* out) {
  GFAIR_CHECK(out != nullptr);
  std::string upper = name;
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char ch) { return static_cast<char>(std::toupper(ch)); });
  for (GpuGeneration gen : kAllGenerations) {
    if (upper == GenerationName(gen)) {
      *out = gen;
      return true;
    }
  }
  return false;
}

const GpuSpec& SpecFor(GpuGeneration gen) {
  static const PerGeneration<GpuSpec> kSpecs = {{
      {GpuGeneration::kK80, 12.0, 4.1},
      {GpuGeneration::kP40, 24.0, 11.8},
      {GpuGeneration::kP100, 16.0, 9.3},
      {GpuGeneration::kV100, 16.0, 14.1},
  }};
  return kSpecs[GenerationIndex(gen)];
}

}  // namespace gfair::cluster
