#include "cluster/cluster.h"

#include <sstream>

#include "common/check.h"

namespace gfair::cluster {

int Topology::TotalGpus() const {
  int total = 0;
  for (const auto& group : groups) {
    total += group.num_servers * group.gpus_per_server;
  }
  return total;
}

int Topology::TotalGpus(GpuGeneration gen) const {
  int total = 0;
  for (const auto& group : groups) {
    if (group.generation == gen) {
      total += group.num_servers * group.gpus_per_server;
    }
  }
  return total;
}

std::string Topology::Describe() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& group : groups) {
    if (!first) {
      os << " + ";
    }
    first = false;
    os << group.num_servers << "x" << group.gpus_per_server << " "
       << GenerationName(group.generation);
  }
  os << " (" << TotalGpus() << " GPUs)";
  return os.str();
}

Topology HomogeneousTopology(int num_servers, int gpus_per_server, GpuGeneration gen) {
  return Topology{{ServerGroup{gen, num_servers, gpus_per_server}}};
}

Topology PaperScaleTopology() {
  return Topology{{
      ServerGroup{GpuGeneration::kK80, 6, 8},    // 48
      ServerGroup{GpuGeneration::kP40, 5, 8},    // 40
      ServerGroup{GpuGeneration::kP100, 6, 8},   // 48
      ServerGroup{GpuGeneration::kV100, 8, 8},   // 64
  }};
}

Cluster::Cluster(const Topology& topology) {
  GFAIR_CHECK(!topology.groups.empty());
  uint32_t next_id = 0;
  for (const auto& group : topology.groups) {
    GFAIR_CHECK(group.num_servers > 0 && group.gpus_per_server > 0);
    for (int i = 0; i < group.num_servers; ++i) {
      const ServerId id(next_id++);
      servers_.emplace_back(id, group.generation, group.gpus_per_server);
      servers_by_gen_[GenerationIndex(group.generation)].push_back(id);
      gpus_per_gen_[GenerationIndex(group.generation)] += group.gpus_per_server;
      total_gpus_ += group.gpus_per_server;
    }
  }
  up_gpus_per_gen_ = gpus_per_gen_;
  up_gpus_ = total_gpus_;
  num_up_servers_ = num_servers();
}

void Cluster::SetServerUp(ServerId id, bool up) {
  Server& target = server(id);
  target.set_up(up);  // CHECKs against redundant transitions
  const int delta = up ? target.num_gpus() : -target.num_gpus();
  up_gpus_per_gen_[GenerationIndex(target.generation())] += delta;
  up_gpus_ += delta;
  num_up_servers_ += up ? 1 : -1;
}

bool Cluster::heterogeneous() const {
  int generations_present = 0;
  for (int count : gpus_per_gen_) {
    if (count > 0) {
      ++generations_present;
    }
  }
  return generations_present > 1;
}

int Cluster::FreeGpus(GpuGeneration gen) const {
  int free = 0;
  for (ServerId id : servers_of(gen)) {
    free += servers_[id.value()].num_free();
  }
  return free;
}

}  // namespace gfair::cluster
