// GPU generations and device specifications.
//
// The paper's clusters mix four NVIDIA generations (K80, P40, P100, V100).
// Scheduler logic treats generations opaquely — only the workload model's
// throughput matrix distinguishes them — but specs here carry nominal
// memory/compute figures used for sanity checks and reporting.
#ifndef GFAIR_CLUSTER_GPU_H_
#define GFAIR_CLUSTER_GPU_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/types.h"

namespace gfair::cluster {

enum class GpuGeneration : uint8_t { kK80 = 0, kP40 = 1, kP100 = 2, kV100 = 3 };

inline constexpr size_t kNumGenerations = 4;

inline constexpr std::array<GpuGeneration, kNumGenerations> kAllGenerations = {
    GpuGeneration::kK80, GpuGeneration::kP40, GpuGeneration::kP100, GpuGeneration::kV100};

constexpr size_t GenerationIndex(GpuGeneration gen) { return static_cast<size_t>(gen); }

const char* GenerationName(GpuGeneration gen);

// Parses "K80"/"P40"/"P100"/"V100" (case-insensitive); returns false on
// unknown names.
bool ParseGeneration(const std::string& name, GpuGeneration* out);

struct GpuSpec {
  GpuGeneration generation;
  double memory_gb;        // device memory
  double nominal_tflops;   // rough fp32 peak, reporting only
};

const GpuSpec& SpecFor(GpuGeneration gen);

// Per-generation array keyed by GenerationIndex(); used for shares, counts,
// and speedup rows throughout the scheduler.
template <typename T>
using PerGeneration = std::array<T, kNumGenerations>;

}  // namespace gfair::cluster

#endif  // GFAIR_CLUSTER_GPU_H_
