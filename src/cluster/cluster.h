// Cluster — the full set of servers, grouped by GPU generation.
//
// Built once from a topology description; the server *set* is stable for the
// life of the run, but individual servers can go down and come back
// (SetServerUp), modeling whole-node failures on the paper's 200-GPU
// testbed. The cluster keeps O(1) per-generation up-capacity counters so
// entitlement math can shrink pools to surviving capacity without scanning.
#ifndef GFAIR_CLUSTER_CLUSTER_H_
#define GFAIR_CLUSTER_CLUSTER_H_

#include <string>
#include <vector>

#include "cluster/gpu.h"
#include "cluster/server.h"
#include "common/types.h"

namespace gfair::cluster {

// One homogeneous group of servers in a topology description.
struct ServerGroup {
  GpuGeneration generation;
  int num_servers;
  int gpus_per_server;
};

struct Topology {
  std::vector<ServerGroup> groups;

  int TotalGpus() const;
  int TotalGpus(GpuGeneration gen) const;
  std::string Describe() const;
};

// Convenience topologies used by examples, tests and benches.

// `num_servers` x `gpus_per_server` of one generation.
Topology HomogeneousTopology(int num_servers, int gpus_per_server,
                             GpuGeneration gen = GpuGeneration::kV100);

// The default heterogeneous ~200-GPU topology standing in for the paper's
// testbed: 48 K80 + 40 P40 + 48 P100 + 64 V100 = 200 GPUs.
Topology PaperScaleTopology();

class Cluster {
 public:
  explicit Cluster(const Topology& topology);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int num_servers() const { return static_cast<int>(servers_.size()); }
  int total_gpus() const { return total_gpus_; }
  int total_gpus(GpuGeneration gen) const { return gpus_per_gen_[GenerationIndex(gen)]; }

  // --- availability ---
  // Flips a server's up/down flag, maintaining the up-capacity counters.
  // Only the Executor's FailServer/RecoverServer should call this: taking a
  // server down has evacuation mechanics that live there.
  void SetServerUp(ServerId id, bool up);
  int num_up_servers() const { return num_up_servers_; }
  // GPUs on up servers (== total_gpus when nothing is down). O(1).
  int up_gpus() const { return up_gpus_; }
  int up_gpus(GpuGeneration gen) const { return up_gpus_per_gen_[GenerationIndex(gen)]; }
  // True when the cluster hosts more than one generation.
  bool heterogeneous() const;

  // Defined inline: server lookups run hundreds of times per quantum tick.
  Server& server(ServerId id) {
    GFAIR_CHECK(id.valid() && id.value() < servers_.size());
    return servers_[id.value()];
  }
  const Server& server(ServerId id) const {
    GFAIR_CHECK(id.valid() && id.value() < servers_.size());
    return servers_[id.value()];
  }

  std::vector<Server>& servers() { return servers_; }
  const std::vector<Server>& servers() const { return servers_; }

  // Ids of all servers of a generation (stable order).
  const std::vector<ServerId>& servers_of(GpuGeneration gen) const {
    return servers_by_gen_[GenerationIndex(gen)];
  }

  // Total free GPUs of a generation right now.
  int FreeGpus(GpuGeneration gen) const;

 private:
  std::vector<Server> servers_;
  PerGeneration<std::vector<ServerId>> servers_by_gen_;
  PerGeneration<int> gpus_per_gen_{};
  PerGeneration<int> up_gpus_per_gen_{};
  int total_gpus_ = 0;
  int up_gpus_ = 0;
  int num_up_servers_ = 0;
};

}  // namespace gfair::cluster

#endif  // GFAIR_CLUSTER_CLUSTER_H_
