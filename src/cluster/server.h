// Server — one machine holding a homogeneous set of GPUs.
//
// Servers track which job occupies each GPU slot. A gang must fit entirely on
// one server (the paper's jobs are single-server gangs; multi-server jobs are
// out of scope, as in Gandiva_fair's evaluation workloads).
//
// A server is also the unit of failure: the up/down flag models whole-node
// loss (power, NIC, host OS). The flag itself carries no mechanics — the
// Executor evacuates jobs when it takes a server down, and the scheduler's
// ClusterStateIndex mirrors the flag so placement never targets a down
// server. Allocation on a down server is a programming error.
#ifndef GFAIR_CLUSTER_SERVER_H_
#define GFAIR_CLUSTER_SERVER_H_

#include <vector>

#include "cluster/gpu.h"
#include "common/check.h"
#include "common/types.h"

namespace gfair::cluster {

class Server {
 public:
  Server(ServerId id, GpuGeneration generation, int num_gpus);

  ServerId id() const { return id_; }
  GpuGeneration generation() const { return generation_; }
  int num_gpus() const { return static_cast<int>(occupants_.size()); }
  int num_free() const { return num_free_; }
  int num_busy() const { return num_gpus() - num_free_; }
  bool up() const { return up_; }

  // Occupant of local GPU slot `index`; JobId::Invalid() when free.
  JobId occupant(int index) const {
    GFAIR_CHECK(index >= 0 && index < num_gpus());
    return occupants_[static_cast<size_t>(index)];
  }

  // True when `count` GPUs are free.
  bool CanFit(int count) const { return count <= num_free_; }

  // Claims `count` free GPU slots for `job` (lowest free indices first);
  // returns how many were claimed, always `count`. Inspect `occupant()` for
  // the slot assignment. Precondition: CanFit(count) and the job holds no
  // slots here yet. Allocation runs on the per-quantum resume path, so it
  // must not allocate heap memory.
  int Allocate(JobId job, int count);

  // Releases every slot held by `job`; returns how many were released.
  int Release(JobId job);

  // Number of slots currently held by `job`.
  int CountHeldBy(JobId job) const;

  // Flips the availability flag. Go through Cluster::SetServerUp (which keeps
  // the per-generation up-capacity counters in sync) rather than calling this
  // directly. Going down does not release slots — the Executor marks the
  // server down first and then evacuates, so lost gangs are accounted while
  // the machine is already unplaceable.
  void set_up(bool up);

 private:
  ServerId id_;
  GpuGeneration generation_;
  std::vector<JobId> occupants_;
  int num_free_;
  bool up_ = true;
};

}  // namespace gfair::cluster

#endif  // GFAIR_CLUSTER_SERVER_H_
