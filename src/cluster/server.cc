#include "cluster/server.h"

namespace gfair::cluster {

Server::Server(ServerId id, GpuGeneration generation, int num_gpus)
    : id_(id), generation_(generation), occupants_(static_cast<size_t>(num_gpus)),
      num_free_(num_gpus) {
  GFAIR_CHECK(num_gpus > 0);
}

std::vector<int> Server::Allocate(JobId job, int count) {
  GFAIR_CHECK(job.valid());
  GFAIR_CHECK(count > 0);
  GFAIR_CHECK_MSG(CanFit(count), "Allocate() without room");
  GFAIR_CHECK_MSG(CountHeldBy(job) == 0, "job already holds GPUs on this server");
  std::vector<int> indices;
  indices.reserve(static_cast<size_t>(count));
  for (int i = 0; i < num_gpus() && static_cast<int>(indices.size()) < count; ++i) {
    if (!occupants_[static_cast<size_t>(i)].valid()) {
      occupants_[static_cast<size_t>(i)] = job;
      indices.push_back(i);
    }
  }
  num_free_ -= count;
  return indices;
}

int Server::Release(JobId job) {
  GFAIR_CHECK(job.valid());
  int released = 0;
  for (auto& slot : occupants_) {
    if (slot == job) {
      slot = JobId::Invalid();
      ++released;
    }
  }
  num_free_ += released;
  return released;
}

int Server::CountHeldBy(JobId job) const {
  int held = 0;
  for (JobId slot : occupants_) {
    if (slot == job) {
      ++held;
    }
  }
  return held;
}

}  // namespace gfair::cluster
