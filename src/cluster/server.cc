#include "cluster/server.h"

namespace gfair::cluster {

Server::Server(ServerId id, GpuGeneration generation, int num_gpus)
    : id_(id), generation_(generation), occupants_(static_cast<size_t>(num_gpus)),
      num_free_(num_gpus) {
  GFAIR_CHECK(num_gpus > 0);
}

int Server::Allocate(JobId job, int count) {
  GFAIR_CHECK(job.valid());
  GFAIR_CHECK(count > 0);
  GFAIR_CHECK_MSG(up_, "Allocate() on a down server");
  GFAIR_CHECK_MSG(CanFit(count), "Allocate() without room");
  // Single walk claims free slots and checks the job holds none (CountHeldBy
  // up front would walk the slots a second time on the per-quantum path).
  int claimed = 0;
  int already_held = 0;
  for (JobId& slot : occupants_) {
    if (slot == job) {
      ++already_held;
    } else if (!slot.valid() && claimed < count) {
      slot = job;
      ++claimed;
    }
  }
  GFAIR_CHECK_MSG(already_held == 0, "job already holds GPUs on this server");
  num_free_ -= count;
  return claimed;
}

int Server::Release(JobId job) {
  GFAIR_CHECK(job.valid());
  int released = 0;
  for (auto& slot : occupants_) {
    if (slot == job) {
      slot = JobId::Invalid();
      ++released;
    }
  }
  num_free_ += released;
  return released;
}

int Server::CountHeldBy(JobId job) const {
  int held = 0;
  for (JobId slot : occupants_) {
    if (slot == job) {
      ++held;
    }
  }
  return held;
}

void Server::set_up(bool up) {
  GFAIR_CHECK_MSG(up_ != up, "server already in the requested state");
  up_ = up;
}

}  // namespace gfair::cluster
