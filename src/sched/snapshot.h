// ClusterSnapshot — a structured point-in-time view of the scheduler state.
//
// Operators (and tests) use it to answer "what is the cluster doing right
// now": per-server occupancy and loads, per-user entitlement vs resident
// demand per pool. Produced by GandivaFairScheduler::Snapshot().
#ifndef GFAIR_SCHED_SNAPSHOT_H_
#define GFAIR_SCHED_SNAPSHOT_H_

#include <ostream>
#include <string>
#include <vector>

#include "cluster/gpu.h"
#include "common/sim_time.h"
#include "common/types.h"

namespace gfair::sched {

struct ServerSnapshot {
  ServerId id;
  cluster::GpuGeneration generation;
  int num_gpus = 0;
  int busy_gpus = 0;
  int resident_jobs = 0;
  double demand_load = 0.0;  // demanded GPUs per physical GPU
  double ticket_load = 0.0;  // display-only tickets per physical GPU  // gfair-lint: allow(raw-double-in-sched-api)
  bool draining = false;
  bool down = false;  // failed server (see Cluster::SetServerUp)
};

struct UserSnapshot {
  UserId id;
  std::string name;
  int unfinished_jobs = 0;
  cluster::PerGeneration<double> entitlement_gpus{};
  cluster::PerGeneration<double> resident_demand{};
};

struct ClusterSnapshot {
  SimTime time = kTimeZero;
  std::vector<ServerSnapshot> servers;
  std::vector<UserSnapshot> users;

  int TotalBusyGpus() const;
  int TotalGpus() const;

  // Aligned, human-readable rendering of both tables.
  void Print(std::ostream& os) const;
};

}  // namespace gfair::sched

#endif  // GFAIR_SCHED_SNAPSHOT_H_
