#include "sched/profiler.h"

#include "common/check.h"

namespace gfair::sched {

using cluster::GenerationIndex;
using cluster::GpuGeneration;
using workload::ModelId;

void ProfileStore::AddSample(ModelId model, GpuGeneration gen, double per_gpu_rate) {
  GFAIR_CHECK(model.valid());
  GFAIR_CHECK(per_gpu_rate > 0.0);
  if (model.value() >= profiles_.size()) {
    profiles_.resize(model.value() + 1);
  }
  profiles_[model.value()][GenerationIndex(gen)].Add(per_gpu_rate);
}

const RunningStats* ProfileStore::Find(ModelId model, GpuGeneration gen) const {
  if (!model.valid() || model.value() >= profiles_.size()) {
    return nullptr;
  }
  return &profiles_[model.value()][GenerationIndex(gen)];
}

bool ProfileStore::HasEstimate(ModelId model, GpuGeneration gen) const {
  const RunningStats* stats = Find(model, gen);
  return stats != nullptr && stats->count() >= min_samples_;
}

double ProfileStore::EstimatedRate(ModelId model, GpuGeneration gen) const {
  GFAIR_CHECK_MSG(HasEstimate(model, gen), "no usable estimate");
  return Find(model, gen)->mean();
}

size_t ProfileStore::SampleCount(ModelId model, GpuGeneration gen) const {
  const RunningStats* stats = Find(model, gen);
  return stats != nullptr ? stats->count() : 0;
}

bool ProfileStore::Speedup(ModelId model, GpuGeneration fast, GpuGeneration slow,
                           double* out) const {
  GFAIR_CHECK(out != nullptr);
  if (!HasEstimate(model, fast) || !HasEstimate(model, slow)) {
    return false;
  }
  const double slow_rate = EstimatedRate(model, slow);
  GFAIR_CHECK(slow_rate > 0.0);
  *out = EstimatedRate(model, fast) / slow_rate;
  return true;
}

}  // namespace gfair::sched
