#include "sched/profiler.h"

#include "common/check.h"

namespace gfair::sched {

using cluster::GenerationIndex;
using cluster::GpuGeneration;
using workload::ModelId;

void ProfileStore::AddSample(ModelId model, GpuGeneration gen, PerGpuRate per_gpu_rate) {
  GFAIR_CHECK(model.valid());
  GFAIR_CHECK(per_gpu_rate.raw() > 0.0);  // gfair-lint: allow(unit-unwrap-outside-boundary)
  if (model.value() >= profiles_.size()) {
    profiles_.resize(model.value() + 1);
  }
  // RunningStats accumulates dimensionless doubles; this is the stats
  // boundary for rate samples.
  profiles_[model.value()][GenerationIndex(gen)].Add(per_gpu_rate.raw());  // gfair-lint: allow(unit-unwrap-outside-boundary)
}

const RunningStats* ProfileStore::Find(ModelId model, GpuGeneration gen) const {
  if (!model.valid() || model.value() >= profiles_.size()) {
    return nullptr;
  }
  return &profiles_[model.value()][GenerationIndex(gen)];
}

bool ProfileStore::HasEstimate(ModelId model, GpuGeneration gen) const {
  const RunningStats* stats = Find(model, gen);
  return stats != nullptr && stats->count() >= min_samples_;
}

PerGpuRate ProfileStore::EstimatedRate(ModelId model, GpuGeneration gen) const {
  GFAIR_CHECK_MSG(HasEstimate(model, gen), "no usable estimate");
  return PerGpuRate(Find(model, gen)->mean());
}

size_t ProfileStore::SampleCount(ModelId model, GpuGeneration gen) const {
  const RunningStats* stats = Find(model, gen);
  return stats != nullptr ? stats->count() : 0;
}

bool ProfileStore::Speedup(ModelId model, GpuGeneration fast, GpuGeneration slow,
                           gfair::Speedup* out) const {
  GFAIR_CHECK(out != nullptr);
  if (!HasEstimate(model, fast) || !HasEstimate(model, slow)) {
    return false;
  }
  const PerGpuRate slow_rate = EstimatedRate(model, slow);
  GFAIR_CHECK(slow_rate.raw() > 0.0);  // gfair-lint: allow(unit-unwrap-outside-boundary)
  *out = gfair::Speedup::FromRates(EstimatedRate(model, fast), slow_rate);
  return true;
}

}  // namespace gfair::sched
