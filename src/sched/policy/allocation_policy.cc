#include "sched/policy/allocation_policy.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "sched/policy/gavel_waterfill_policy.h"
#include "sched/policy/greedy_trade_policy.h"
#include "sched/policy/policy_internal.h"
#include "sched/policy/themis_ftf_policy.h"

namespace gfair::sched {

using cluster::GenerationIndex;
using cluster::GpuGeneration;
using cluster::kAllGenerations;
using cluster::kNumGenerations;
using policy_internal::kEps;
using policy_internal::MapGet;

AllocationPolicyRegistry& AllocationPolicyRegistry::Instance() {
  static AllocationPolicyRegistry registry;
  return registry;
}

AllocationPolicyRegistry::AllocationPolicyRegistry() {
  // Explicit built-in registration: a static-initializer scheme would let
  // the linker drop unreferenced backend objects from the static library.
  Register("greedy", [](const TradeConfig& config) -> std::unique_ptr<IAllocationPolicy> {
    return std::make_unique<GreedyTradePolicy>(config);
  });
  Register("themis", [](const TradeConfig& config) -> std::unique_ptr<IAllocationPolicy> {
    return std::make_unique<ThemisFtfPolicy>(config);
  });
  Register("gavel", [](const TradeConfig& config) -> std::unique_ptr<IAllocationPolicy> {
    return std::make_unique<GavelWaterFillPolicy>(config);
  });
}

void AllocationPolicyRegistry::Register(const std::string& name, Factory factory) {
  GFAIR_CHECK(factory != nullptr);
  GFAIR_CHECK_MSG(!name.empty(), "allocation policy name must be non-empty");
  factories_[name] = factory;
}

bool AllocationPolicyRegistry::Known(const std::string& name) const {
  return factories_.find(name) != factories_.end();
}

std::vector<std::string> AllocationPolicyRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) {  // std::map: lexicographic
    names.push_back(name);
  }
  return names;
}

std::unique_ptr<IAllocationPolicy> AllocationPolicyRegistry::Create(
    const std::string& name, const TradeConfig& config) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    return nullptr;
  }
  return it->second(config);
}

std::string AllocationPolicyRegistry::UnknownPolicyMessage(const std::string& name) const {
  std::string message = "unknown allocation policy '" + name + "' (registered: ";
  bool first = true;
  for (const auto& registered : Names()) {
    if (!first) {
      message += ", ";
    }
    message += registered;
    first = false;
  }
  message += ")";
  return message;
}

bool ValidateAllocationPolicyName(const std::string& name, std::string* error) {
  const auto& registry = AllocationPolicyRegistry::Instance();
  if (registry.Known(name)) {
    return true;
  }
  if (error != nullptr) {
    *error = registry.UnknownPolicyMessage(name);
  }
  return false;
}

void TicketProportionalEntitlements(const TradeInputs& inputs, TradeOutcome* outcome) {
  GFAIR_CHECK(outcome != nullptr);
  Tickets total_tickets = 0.0;
  for (UserId user : inputs.active_users) {
    total_tickets += MapGet(inputs.base_tickets, user);
  }
  GFAIR_CHECK(total_tickets > 0.0);
  for (UserId user : inputs.active_users) {
    const double fraction = MapGet(inputs.base_tickets, user) / total_tickets;
    cluster::PerGeneration<double> row{};
    for (GpuGeneration gen : kAllGenerations) {
      row[GenerationIndex(gen)] = fraction * inputs.pool_sizes[GenerationIndex(gen)];
    }
    outcome->entitlements.emplace(user, row);
  }
}

void SynthesizeReallocationTrades(const TradeInputs& inputs, const TradeConfig& config,
                                  TradeOutcome* outcome) {
  GFAIR_CHECK(outcome != nullptr);
  if (inputs.active_users.empty()) {
    return;
  }
  TradeOutcome base;
  TicketProportionalEntitlements(inputs, &base);

  // The "slow" leg of every record: the slowest pool that exists. Auction
  // backends reallocate rather than barter, so the leg is nominal.
  size_t slowest = kNumGenerations;
  for (size_t g = 0; g < kNumGenerations; ++g) {
    if (inputs.pool_sizes[g] > 0) {
      slowest = g;
      break;
    }
  }
  if (slowest == kNumGenerations) {
    return;  // no capacity anywhere: nothing can have moved
  }

  for (size_t f = kNumGenerations; f-- > 0;) {
    if (inputs.pool_sizes[f] <= 0) {
      continue;
    }
    // Net winners and losers of this pool, in active_users order (the
    // coordinator's deterministic ordering — never hash order).
    std::vector<std::pair<UserId, double>> gainers;
    std::vector<std::pair<UserId, double>> losers;
    for (UserId user : inputs.active_users) {
      const double delta =
          outcome->entitlements.at(user)[f] - base.entitlements.at(user)[f];
      if (delta > kEps) {
        gainers.emplace_back(user, delta);
      } else if (delta < -kEps) {
        losers.emplace_back(user, -delta);
      }
    }
    size_t gi = 0;
    size_t li = 0;
    while (gi < gainers.size() && li < losers.size()) {
      const double volume = std::min(gainers[gi].second, losers[li].second);
      if (volume >= config.min_trade_gpus) {
        outcome->trades.push_back(Trade{losers[li].first, gainers[gi].first,
                                        kAllGenerations[f], kAllGenerations[slowest],
                                        volume, 0.0, Speedup::Unit(), Speedup::Unit(),
                                        Speedup::Unit()});
      }
      gainers[gi].second -= volume;
      losers[li].second -= volume;
      if (gainers[gi].second <= kEps) {
        ++gi;
      }
      if (losers[li].second <= kEps) {
        ++li;
      }
    }
  }
}

}  // namespace gfair::sched
