// IAllocationPolicy — the pluggable allocation seam behind resource trading.
//
// Every trade epoch the TradeCoordinator snapshots the same typed inputs —
// per-user tickets, outstanding demand, the per-generation up capacity, and
// the profiled speedup matrix (TradeInputs) — and asks one backend to produce
// a TradeOutcome: a per-user, per-generation entitlement allocation plus the
// Trade records that explain how it differs from the ticket-proportional
// base. The paper's greedy highest-vs-lowest exchange (GreedyTradePolicy) is
// one backend; a Themis-style finish-time-fairness auction and a Gavel-style
// water-filling max-min consume the identical inputs, so alternative
// formulations compete on the same scenarios without forking the scheduler.
//
// Contract every backend must honour (pinned by the conservation property
// suite and the lint/equivalence gates):
//   * Allocate is pure: no state carries across epochs, so every
//     reallocation is implicitly revocable when demand or profiles change.
//   * entitlements cover exactly the active users in the inputs; rows are
//     non-negative up to floating-point rounding (a trade that drains a
//     lender's pool exactly may leave ~1e-16-scale residue).
//   * Per-generation entitlement totals equal the pool's up capacity
//     (inputs.pool_sizes): GPUs on down servers are not anyone's to
//     allocate, and pools with zero up capacity receive zero mass.
//   * trades is non-empty iff the allocation moved away from the
//     ticket-proportional base — the coordinator applies entitlements only
//     when trades exist, keeping no-op epochs identical to a plain
//     ResetToBase.
//   * Determinism: outputs are a function of the inputs alone; iteration
//     follows inputs.active_users order or common::Sorted* helpers, never
//     hash order.
#ifndef GFAIR_SCHED_POLICY_ALLOCATION_POLICY_H_
#define GFAIR_SCHED_POLICY_ALLOCATION_POLICY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sched/trade.h"

namespace gfair::sched {

class IAllocationPolicy {
 public:
  virtual ~IAllocationPolicy() = default;

  // Registry key and display name of the backend.
  virtual const char* name() const = 0;

  // Computes one epoch's entitlement allocation from scratch.
  [[nodiscard]] virtual TradeOutcome Allocate(const TradeInputs& inputs) const = 0;
};

// String-keyed backend registry. Built-ins (greedy, themis, gavel) are
// registered explicitly inside Instance() — not via static initializers,
// which a static library would dead-strip for unreferenced objects.
class AllocationPolicyRegistry {
 public:
  using Factory = std::unique_ptr<IAllocationPolicy> (*)(const TradeConfig&);

  static AllocationPolicyRegistry& Instance();

  // Later registrations under an existing name win (tests may shadow).
  void Register(const std::string& name, Factory factory);
  bool Known(const std::string& name) const;
  std::vector<std::string> Names() const;  // lexicographic

  // nullptr when `name` is not registered.
  [[nodiscard]] std::unique_ptr<IAllocationPolicy> Create(const std::string& name,
                                                          const TradeConfig& config) const;

  // "unknown allocation policy 'x' (registered: gavel, greedy, themis)" —
  // the message surfaced by every flag boundary.
  std::string UnknownPolicyMessage(const std::string& name) const;

 private:
  AllocationPolicyRegistry();

  std::map<std::string, Factory> factories_;
};

// Flag-boundary helper shared by gfairsim and the benches: validates a
// --policy / --alloc-policy value against the registry. Returns false and
// fills *error with the registered-backend listing when unknown.
bool ValidateAllocationPolicyName(const std::string& name, std::string* error);

// --- shared backend arithmetic ---

// Fills outcome->entitlements with the ticket-proportional base: every
// active user holds tickets/total_tickets of every pool. The common starting
// point of all backends and the "no reallocation" reference for trade
// synthesis. Checks that total tickets are positive.
void TicketProportionalEntitlements(const TradeInputs& inputs, TradeOutcome* outcome);

// Rewrites the net entitlement movement of `outcome` relative to the
// ticket-proportional base as Trade records (lender = net loser of a pool,
// borrower = net gainer, matched in active_users order). Auction-style
// backends reallocate rather than barter, so the records carry a unit rate
// and no slow-GPU payment; movements below config.min_trade_gpus are
// suppressed as dust. Leaves trades empty when the allocation equals base.
void SynthesizeReallocationTrades(const TradeInputs& inputs, const TradeConfig& config,
                                  TradeOutcome* outcome);

}  // namespace gfair::sched

#endif  // GFAIR_SCHED_POLICY_ALLOCATION_POLICY_H_
