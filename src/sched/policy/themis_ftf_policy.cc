#include "sched/policy/themis_ftf_policy.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "sched/policy/policy_internal.h"
#include "sched/policy/water_fill.h"

namespace gfair::sched {

using cluster::kNumGenerations;
using policy_internal::kEps;

TradeOutcome ThemisFtfPolicy::Allocate(const TradeInputs& inputs) const {
  TradeOutcome outcome;
  if (inputs.active_users.empty()) {
    return outcome;
  }
  GFAIR_CHECK(inputs.user_speedup != nullptr);
  TicketProportionalEntitlements(inputs, &outcome);

  const ValueMatrix matrix = ComputeValueMatrix(inputs);
  if (!matrix.has_pool || !matrix.any_profile) {
    // No capacity or no speedup information: stay at the base split (no
    // trades -> the coordinator keeps plain proportional tickets).
    return outcome;
  }

  // rho denominator: the value of the user's own ticket-proportional slice —
  // what a dedicated proportional share would deliver this epoch.
  const size_t n = inputs.active_users.size();
  std::vector<double> ideal(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const auto& base = outcome.entitlements.at(inputs.active_users[i]);
    for (size_t g = 0; g < kNumGenerations; ++g) {
      ideal[i] += FastToSlow(base[g], matrix.value[i][g]);
    }
    // Zero-ticket users have a zero ideal; clamping keeps their rho finite
    // (and effectively infinite relative to funded users, so the auction
    // never prefers them).
    ideal[i] = std::max(ideal[i], kEps);
  }

  const auto alloc = DiscreteMaxMinFill(inputs, matrix, ideal);
  for (size_t i = 0; i < n; ++i) {
    outcome.entitlements.at(inputs.active_users[i]) = alloc[i];
  }
  SynthesizeReallocationTrades(inputs, config_, &outcome);
  return outcome;
}

}  // namespace gfair::sched
