// Shared internals of the allocation-policy backends. Not part of the
// policy API — include only from src/sched/policy/*.cc and tests.
#ifndef GFAIR_SCHED_POLICY_POLICY_INTERNAL_H_
#define GFAIR_SCHED_POLICY_POLICY_INTERNAL_H_

#include <unordered_map>

#include "common/check.h"
#include "common/types.h"

namespace gfair::sched::policy_internal {

inline constexpr double kEps = 1e-9;

template <typename T>
T MapGet(const std::unordered_map<UserId, T>& map, UserId user) {
  auto it = map.find(user);
  GFAIR_CHECK_MSG(it != map.end(), "missing per-user input");
  return it->second;
}

}  // namespace gfair::sched::policy_internal

#endif  // GFAIR_SCHED_POLICY_POLICY_INTERNAL_H_
