// Discrete water-filling machinery shared by the auction-style allocation
// backends (ThemisFtfPolicy, GavelWaterFillPolicy). Both are max-min
// programs over the same speedup matrix; they differ only in how a user's
// delivered service is normalized (finish-time fairness vs ticket weight),
// so the value matrix and the filling loop live here.
#ifndef GFAIR_SCHED_POLICY_WATER_FILL_H_
#define GFAIR_SCHED_POLICY_WATER_FILL_H_

#include <vector>

#include "sched/trade.h"

namespace gfair::sched {

// Worth of one GPU of each generation to each active user, in slowest-pool
// GPU equivalents, derived from TradeInputs::user_speedup against the
// slowest non-empty pool. Unprofiled (user, generation) pairs fall back to
// Unit — no information means no claimed benefit, mirroring the greedy
// backend's "no profile, no trade" stance.
struct ValueMatrix {
  bool has_pool = false;     // some generation has up capacity
  bool any_profile = false;  // at least one usable cross-pool profile
  size_t slowest = 0;        // index of the slowest non-empty pool
  std::vector<cluster::PerGeneration<Speedup>> value;  // by active_users index
};

ValueMatrix ComputeValueMatrix(const TradeInputs& inputs);

// Max-min water-filling over the value matrix: repeatedly grant one GPU (or
// the remaining fraction) of the recipient's most valuable remaining
// generation to the eligible user with the lowest normalized service
// service(u) / denominators[u]. Eligibility = outstanding demand; ties break
// to the earlier active_users index, and on equal per-GPU value the slower
// generation is granted first (an indifferent user should not soak up fast
// GPUs). Capacity left over once all demand is met is
// spread ticket-proportionally, so per-generation totals equal
// inputs.pool_sizes exactly (the conservation contract).
//
// denominators must be positive (callers clamp to an epsilon) and indexed
// like inputs.active_users.
std::vector<cluster::PerGeneration<double>> DiscreteMaxMinFill(
    const TradeInputs& inputs, const ValueMatrix& matrix,
    const std::vector<double>& denominators);

}  // namespace gfair::sched

#endif  // GFAIR_SCHED_POLICY_WATER_FILL_H_
