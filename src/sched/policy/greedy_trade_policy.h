// GreedyTradePolicy — the paper's highest-vs-lowest entitlement exchange.
//
// Each epoch the backend recomputes, from scratch, how users' fair-share
// entitlements should be reshaped so that fast GPUs flow to the jobs that
// benefit most from them — without any user ending up worse off:
//
//   * Every active user starts with a ticket-proportional entitlement to
//     EVERY generation pool.
//   * For each (fast, slow) pool pair, the user with the LOWEST profiled
//     speedup that can still use more GPUs lends fast-GPU entitlement to the
//     user with the HIGHEST speedup, receiving λ slow GPUs per fast GPU.
//   * With the paper's rate rule λ = (borrower's speedup), the borrower is
//     exactly compensated (1 fast GPU does the work of λ slow ones for its
//     jobs) and the lender strictly gains (λ exceeds the lender's own
//     speedup, so λ slow GPUs beat 1 fast GPU for its jobs). A geometric-mean
//     rule that splits the surplus between both parties is available for the
//     ablation study (E12).
//
// This is the default backend; the decision-log equivalence suite pins its
// output bit-exactly against the frozen legacy oracle.
#ifndef GFAIR_SCHED_POLICY_GREEDY_TRADE_POLICY_H_
#define GFAIR_SCHED_POLICY_GREEDY_TRADE_POLICY_H_

#include "sched/policy/allocation_policy.h"
#include "sched/trade.h"

namespace gfair::sched {

class GreedyTradePolicy : public IAllocationPolicy {
 public:
  explicit GreedyTradePolicy(TradeConfig config) : config_(config) {}

  const char* name() const override { return "greedy"; }

  [[nodiscard]] TradeOutcome Allocate(const TradeInputs& inputs) const override;

  const TradeConfig& config() const { return config_; }

 private:
  Speedup RateFor(Speedup lender_speedup, Speedup borrower_speedup) const;

  TradeConfig config_;
};

}  // namespace gfair::sched

#endif  // GFAIR_SCHED_POLICY_GREEDY_TRADE_POLICY_H_
