#include "sched/policy/gavel_waterfill_policy.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "sched/policy/policy_internal.h"
#include "sched/policy/water_fill.h"

namespace gfair::sched {

using policy_internal::kEps;
using policy_internal::MapGet;

TradeOutcome GavelWaterFillPolicy::Allocate(const TradeInputs& inputs) const {
  TradeOutcome outcome;
  if (inputs.active_users.empty()) {
    return outcome;
  }
  GFAIR_CHECK(inputs.user_speedup != nullptr);
  TicketProportionalEntitlements(inputs, &outcome);

  const ValueMatrix matrix = ComputeValueMatrix(inputs);
  if (!matrix.has_pool || !matrix.any_profile) {
    // No capacity or no speedup information: stay at the base split (no
    // trades -> the coordinator keeps plain proportional tickets).
    return outcome;
  }

  // Weighted max-min: normalize delivered value by the user's ticket
  // fraction. Zero-ticket users are clamped to an epsilon weight, which
  // makes their normalized service effectively infinite — never topped up
  // ahead of funded users.
  const size_t n = inputs.active_users.size();
  Tickets total_tickets = 0.0;
  for (UserId user : inputs.active_users) {
    total_tickets += MapGet(inputs.base_tickets, user);
  }
  GFAIR_CHECK(total_tickets > 0.0);
  std::vector<double> weight(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    weight[i] = std::max(
        MapGet(inputs.base_tickets, inputs.active_users[i]) / total_tickets, kEps);
  }

  const auto alloc = DiscreteMaxMinFill(inputs, matrix, weight);
  for (size_t i = 0; i < n; ++i) {
    outcome.entitlements.at(inputs.active_users[i]) = alloc[i];
  }
  SynthesizeReallocationTrades(inputs, config_, &outcome);
  return outcome;
}

}  // namespace gfair::sched
