#include "sched/policy/greedy_trade_policy.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/log.h"
#include "sched/policy/policy_internal.h"

namespace gfair::sched {

using cluster::GenerationIndex;
using cluster::GpuGeneration;
using cluster::kAllGenerations;
using cluster::kNumGenerations;
using policy_internal::kEps;
using policy_internal::MapGet;

Speedup GreedyTradePolicy::RateFor(Speedup lender_speedup, Speedup borrower_speedup) const {
  switch (config_.rate_rule) {
    case TradeConfig::RateRule::kBorrowerSpeedup: {
      // Never discount below the lender's own speedup (both sides must gain).
      const Speedup discounted = borrower_speedup * (1.0 - config_.borrower_margin);
      return std::max(discounted, std::min(borrower_speedup, lender_speedup * 1.01));
    }
    case TradeConfig::RateRule::kGeometricMean:
      return GeometricMean(lender_speedup, borrower_speedup);
  }
  return borrower_speedup;
}

TradeOutcome GreedyTradePolicy::Allocate(const TradeInputs& inputs) const {
  TradeOutcome outcome;
  const auto& users = inputs.active_users;
  if (users.empty()) {
    return outcome;
  }
  GFAIR_CHECK(inputs.user_speedup != nullptr);

  // 1. Base entitlements: ticket-proportional slice of every pool.
  TicketProportionalEntitlements(inputs, &outcome);

  auto entitlement_sum = [&](UserId user) {
    double total = 0.0;
    for (double e : outcome.entitlements.at(user)) {
      total += e;
    }
    return total;
  };

  // 2. Greedy matching per (fast, slow) pool pair, fastest-vs-slowest first.
  for (size_t f = kNumGenerations; f-- > 0;) {
    const GpuGeneration fast = kAllGenerations[f];
    if (inputs.pool_sizes[f] <= 0) {
      continue;
    }
    for (size_t s = 0; s < f; ++s) {
      const GpuGeneration slow = kAllGenerations[s];
      if (inputs.pool_sizes[s] <= 0) {
        continue;
      }

      // Iterate until no win-win trade remains on this pair.
      for (int round = 0; round < 64; ++round) {
        UserId best_lender = UserId::Invalid();
        UserId best_borrower = UserId::Invalid();
        Speedup lender_speedup;
        Speedup borrower_speedup;

        for (UserId user : users) {
          Speedup speedup;
          if (!inputs.user_speedup(user, fast, slow, &speedup)) {
            continue;
          }
          const auto& ent = outcome.entitlements.at(user);
          const double demand = MapGet(inputs.total_demand_gpus, user);
          // Lender: holds fast entitlement and has spare demand to absorb
          // slow GPUs beyond its current total entitlement.
          const double spare_demand = demand - entitlement_sum(user);
          if (ent[f] > kEps && spare_demand > kEps) {
            if (!best_lender.valid() || speedup < lender_speedup) {
              best_lender = user;
              lender_speedup = speedup;
            }
          }
          // Borrower: wants more fast GPUs than entitled and holds slow
          // entitlement to pay with.
          const double fast_unmet = std::min(demand, double(inputs.pool_sizes[f])) - ent[f];
          if (ent[s] > kEps && fast_unmet > kEps) {
            if (!best_borrower.valid() || speedup > borrower_speedup) {
              best_borrower = user;
              borrower_speedup = speedup;
            }
          }
        }

        if (!best_lender.valid() || !best_borrower.valid() || best_lender == best_borrower) {
          break;
        }
        // Both sides must gain: the rate the borrower pays is at least
        // lender_speedup (the lender's breakeven), so a pairing where the
        // borrower's own speedup does not exceed it cannot leave the
        // borrower better off — RateFor would clamp the rate to the
        // borrower's entire speedup (or past it, at/below lender breakeven),
        // making the trade pointless for one side. This can happen even with
        // the min_speedup_gap check when the gap is configured permissively
        // (< 1), because lenders and borrowers are picked from different
        // eligibility sets.
        if (borrower_speedup <= lender_speedup ||
            borrower_speedup < lender_speedup * config_.min_speedup_gap) {
          break;
        }
        const Speedup rate = RateFor(lender_speedup, borrower_speedup);
        GFAIR_CHECK(rate >= Speedup::Unit());

        auto& lender_ent = outcome.entitlements.at(best_lender);
        auto& borrower_ent = outcome.entitlements.at(best_borrower);
        const double lender_spare =
            MapGet(inputs.total_demand_gpus, best_lender) - entitlement_sum(best_lender);
        const double borrower_unmet =
            std::min(MapGet(inputs.total_demand_gpus, best_borrower),
                     double(inputs.pool_sizes[f])) -
            borrower_ent[f];

        // Volume limited by: lender's fast holdings, borrower's unmet fast
        // demand, borrower's slow holdings (it pays rate x volume), and the
        // lender's capacity to actually use the slow GPUs it receives.
        double volume = lender_ent[f];
        volume = std::min(volume, borrower_unmet);
        volume = std::min(volume, SlowToFast(borrower_ent[s], rate));
        // Lending one fast GPU frees one unit of entitlement, receiving
        // `rate` slow GPUs consumes `rate` units of spare demand; net spare
        // consumed per fast GPU is (rate - 1), a dimensionless surplus.
        if (rate > Speedup::FromRatio(1.0 + kEps)) {
          volume = std::min(volume, lender_spare / (rate.raw() - 1.0));  // gfair-lint: allow(unit-unwrap-outside-boundary)
        }
        if (volume < config_.min_trade_gpus) {
          break;
        }

        lender_ent[f] -= volume;
        borrower_ent[f] += volume;
        borrower_ent[s] -= FastToSlow(volume, rate);
        lender_ent[s] += FastToSlow(volume, rate);

        outcome.trades.push_back(Trade{best_lender, best_borrower, fast, slow, volume,
                                       FastToSlow(volume, rate), rate, lender_speedup,
                                       borrower_speedup});
        GFAIR_ILOG << "trade: user " << best_lender << " lends " << volume << " "
                   << cluster::GenerationName(fast) << " to user " << best_borrower
                   << " for " << FastToSlow(volume, rate) << " " << cluster::GenerationName(slow)
                   << " (rate " << rate << ")";
      }
    }
  }
  return outcome;
}

}  // namespace gfair::sched
