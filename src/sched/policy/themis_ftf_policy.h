// ThemisFtfPolicy — finish-time-fairness auction (Themis, arxiv 1907.01484).
//
// Themis allocates so as to equalize each user's finish-time fairness
// rho = T_shared / T_ideal: the service a user receives relative to what its
// own dedicated proportional share would deliver. Translated to this
// codebase's epoch snapshot, a user's ideal is the VALUE of its
// ticket-proportional base entitlement (entitlement GPUs weighted by the
// user's profiled speedups), and the auction water-fills capacity toward the
// user whose delivered-value/ideal ratio is currently worst — a discrete
// lexicographic max-min over rho.
//
// High-speedup users have a proportionally larger ideal (their base V100
// slice is worth more to them), so equalizing rho sends fast GPUs where the
// speedup matrix says they matter while anchoring every user to its
// fair-share baseline — the same guarantee the greedy exchange provides via
// explicit barter, reached through a global optimization instead.
#ifndef GFAIR_SCHED_POLICY_THEMIS_FTF_POLICY_H_
#define GFAIR_SCHED_POLICY_THEMIS_FTF_POLICY_H_

#include "sched/policy/allocation_policy.h"
#include "sched/trade.h"

namespace gfair::sched {

class ThemisFtfPolicy : public IAllocationPolicy {
 public:
  explicit ThemisFtfPolicy(TradeConfig config) : config_(config) {}

  const char* name() const override { return "themis"; }

  [[nodiscard]] TradeOutcome Allocate(const TradeInputs& inputs) const override;

 private:
  TradeConfig config_;
};

}  // namespace gfair::sched

#endif  // GFAIR_SCHED_POLICY_THEMIS_FTF_POLICY_H_
