// GavelWaterFillPolicy — heterogeneity-aware weighted max-min (Gavel,
// arxiv 2008.09213).
//
// Gavel expresses fairness policies as optimization problems over the
// effective-throughput matrix: max-min over each user's delivered
// throughput normalized by its weight. Translated to this codebase's epoch
// snapshot, a user's service is the value of its allocated entitlement
// (GPUs weighted by the user's profiled speedups, in slowest-pool
// equivalents) and the weight is its ticket fraction; the discrete
// water-fill repeatedly tops up the user with the lowest service-per-ticket.
//
// Difference from ThemisFtfPolicy in one line: Gavel normalizes by ticket
// WEIGHT, Themis by the ticket-proportional base's VALUE — so Themis folds a
// user's own speedup profile into its fairness target while Gavel equalizes
// value-per-ticket across heterogeneous users directly.
#ifndef GFAIR_SCHED_POLICY_GAVEL_WATERFILL_POLICY_H_
#define GFAIR_SCHED_POLICY_GAVEL_WATERFILL_POLICY_H_

#include "sched/policy/allocation_policy.h"
#include "sched/trade.h"

namespace gfair::sched {

class GavelWaterFillPolicy : public IAllocationPolicy {
 public:
  explicit GavelWaterFillPolicy(TradeConfig config) : config_(config) {}

  const char* name() const override { return "gavel"; }

  [[nodiscard]] TradeOutcome Allocate(const TradeInputs& inputs) const override;

 private:
  TradeConfig config_;
};

}  // namespace gfair::sched

#endif  // GFAIR_SCHED_POLICY_GAVEL_WATERFILL_POLICY_H_
