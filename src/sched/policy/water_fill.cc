#include "sched/policy/water_fill.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "sched/policy/policy_internal.h"

namespace gfair::sched {

using cluster::kAllGenerations;
using cluster::kNumGenerations;
using policy_internal::kEps;
using policy_internal::MapGet;

ValueMatrix ComputeValueMatrix(const TradeInputs& inputs) {
  ValueMatrix matrix;
  const size_t n = inputs.active_users.size();
  matrix.value.assign(n, {});
  for (auto& row : matrix.value) {
    row.fill(Speedup::Unit());
  }

  size_t slowest = kNumGenerations;
  for (size_t g = 0; g < kNumGenerations; ++g) {
    if (inputs.pool_sizes[g] > 0) {
      slowest = g;
      break;
    }
  }
  if (slowest == kNumGenerations) {
    return matrix;  // no capacity anywhere
  }
  matrix.has_pool = true;
  matrix.slowest = slowest;

  GFAIR_CHECK(inputs.user_speedup != nullptr);
  for (size_t i = 0; i < n; ++i) {
    for (size_t g = slowest + 1; g < kNumGenerations; ++g) {
      if (inputs.pool_sizes[g] <= 0) {
        continue;
      }
      Speedup speedup;
      if (inputs.user_speedup(inputs.active_users[i], kAllGenerations[g],
                              kAllGenerations[slowest], &speedup)) {
        // A "fast" pool profiled below 1x stays at Unit: the matrix feeds a
        // max-min, and pricing a pool below the numeraire would make the
        // fill actively avoid otherwise-usable capacity.
        matrix.value[i][g] = std::max(speedup, Speedup::Unit());
        matrix.any_profile = true;
      }
    }
  }
  return matrix;
}

std::vector<cluster::PerGeneration<double>> DiscreteMaxMinFill(
    const TradeInputs& inputs, const ValueMatrix& matrix,
    const std::vector<double>& denominators) {
  const size_t n = inputs.active_users.size();
  GFAIR_CHECK(denominators.size() == n);
  std::vector<cluster::PerGeneration<double>> alloc(n);
  for (auto& row : alloc) {
    row.fill(0.0);
  }
  if (!matrix.has_pool) {
    return alloc;
  }

  cluster::PerGeneration<double> remaining{};
  for (size_t g = 0; g < kNumGenerations; ++g) {
    remaining[g] = double(inputs.pool_sizes[g]);
  }
  std::vector<double> granted(n, 0.0);  // GPUs held, across all pools
  std::vector<double> service(n, 0.0);  // value delivered, slowest-equivalents
  std::vector<double> demand(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    GFAIR_CHECK(denominators[i] > 0.0);
    demand[i] = MapGet(inputs.total_demand_gpus, inputs.active_users[i]);
  }

  while (true) {
    // Worst-off eligible user; strict < breaks ties to the earlier index.
    size_t user = n;
    double user_key = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n; ++i) {
      if (granted[i] >= demand[i] - kEps) {
        continue;
      }
      const double key = service[i] / denominators[i];
      if (key < user_key) {
        user = i;
        user_key = key;
      }
    }
    if (user == n) {
      break;  // all demand met
    }
    // Its most valuable remaining pool; the slowest-first scan with strict >
    // leaves fast GPUs for users that actually value them when the user is
    // indifferent (equal value, e.g. unprofiled).
    size_t gen = kNumGenerations;
    for (size_t g = 0; g < kNumGenerations; ++g) {
      if (remaining[g] <= kEps) {
        continue;
      }
      if (gen == kNumGenerations || matrix.value[user][g] > matrix.value[user][gen]) {
        gen = g;
      }
    }
    if (gen == kNumGenerations) {
      break;  // capacity exhausted
    }
    const double grant = std::min({1.0, demand[user] - granted[user], remaining[gen]});
    if (grant <= kEps) {
      break;
    }
    alloc[user][gen] += grant;
    granted[user] += grant;
    remaining[gen] -= grant;
    service[user] += FastToSlow(grant, matrix.value[user][gen]);
  }

  // Leftover capacity (total demand below the pool): ticket-proportional,
  // so per-generation totals land exactly on pool_sizes.
  Tickets total_tickets = 0.0;
  for (UserId id : inputs.active_users) {
    total_tickets += MapGet(inputs.base_tickets, id);
  }
  GFAIR_CHECK(total_tickets > 0.0);
  for (size_t g = 0; g < kNumGenerations; ++g) {
    if (remaining[g] <= 0.0) {
      continue;
    }
    for (size_t i = 0; i < n; ++i) {
      const double fraction =
          MapGet(inputs.base_tickets, inputs.active_users[i]) / total_tickets;
      alloc[i][g] += fraction * remaining[g];
    }
  }
  return alloc;
}

}  // namespace gfair::sched
