// PlacementEngine — central placement and event-driven work stealing.
//
// Chooses the pool and server for arriving jobs (entitlement-proportional
// pool choice, occupancy-then-ticket-load server choice) and pulls suspended
// work onto idle GPUs from oversubscribed peers. Reads server loads and
// draining state from the ClusterStateIndex and per-user demand from the
// ResidencyIndex; migrations go through the host.
#ifndef GFAIR_SCHED_PLACEMENT_ENGINE_H_
#define GFAIR_SCHED_PLACEMENT_ENGINE_H_

#include <cstdint>
#include <vector>

#include "sched/cluster_state_index.h"
#include "sched/residency_index.h"
#include "sched/scheduler_host.h"
#include "sched/scheduler_iface.h"

namespace gfair::sched {

struct GandivaFairConfig;

class PlacementEngine {
 public:
  PlacementEngine(const SchedulerEnv& env, const GandivaFairConfig& config,
                  ClusterStateIndex& index, ResidencyIndex& residency,
                  ISchedulerHost& host);

  // Server for an arriving job; Invalid when no server can host the gang.
  ServerId ChoosePlacement(const workload::Job& job) const;

  // Work stealing: fill `server`'s idle GPUs with a suspended job migrated
  // from an oversubscribed server of the same pool (at most one steal per
  // server per quantum).
  void TrySteal(ServerId server);

  int64_t steals_started() const { return steals_started_; }

 private:
  const SchedulerEnv& env_;
  const GandivaFairConfig& config_;
  ClusterStateIndex& index_;
  ResidencyIndex& residency_;
  ISchedulerHost& host_;

  int64_t steals_started_ = 0;
  // Per-server rate limit for stealing (indexed by ServerId value).
  std::vector<SimTime> last_steal_;
};

}  // namespace gfair::sched

#endif  // GFAIR_SCHED_PLACEMENT_ENGINE_H_
