// TradeCoordinator — profiling, probe migrations and the trading epoch.
//
// Owns the ProfileStore (fed transparently from running jobs every quantum),
// the configured IAllocationPolicy backend, and the executed-trade history.
// Every trade period it covers missing profiles with bounded probe
// migrations, asks the backend for the epoch's entitlement allocation (built
// from demand-weighted user speedups), reshapes the ticket matrix to the
// allocated entitlements, and rebalances residency so jobs follow their
// user's entitlements. Server loads come from the ClusterStateIndex,
// residency and demand from the ResidencyIndex; migrations and the ticket
// refresh go through the host.
#ifndef GFAIR_SCHED_TRADE_COORDINATOR_H_
#define GFAIR_SCHED_TRADE_COORDINATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/phase_tokens.h"
#include "sched/cluster_state_index.h"
#include "sched/decision_log.h"
#include "sched/policy/allocation_policy.h"
#include "sched/profiler.h"
#include "sched/residency_index.h"
#include "sched/scheduler_host.h"
#include "sched/scheduler_iface.h"
#include "sched/ticket_matrix.h"
#include "sched/trade.h"

namespace gfair::sched {

struct GandivaFairConfig;

class TradeCoordinator {
 public:
  TradeCoordinator(const SchedulerEnv& env, const GandivaFairConfig& config,
                   ClusterStateIndex& index, ResidencyIndex& residency,
                   TicketMatrix& tickets, DecisionLog& decisions,
                   ISchedulerHost& host);

  // Profiling: one observed-rate sample for a running job (the facade's
  // fused charge+sample loop feeds this every quantum, normalizing the
  // whole-gang rate with PerGpuRate::FromGangRate at the executor boundary).
  // The sample draw consumes the executor's single RNG stream, so feeding
  // the profiler is a serial-phase operation: the ReduceToken (mintable
  // only at the tick's serial points — see common/phase_tokens.h) makes
  // calling this from the shard fan-out a compile error.
  void RecordSample(workload::ModelId model, cluster::GpuGeneration gen,
                    PerGpuRate per_gpu_rate, common::ReduceToken) {
    profiles_.AddSample(model, gen, per_gpu_rate);
  }

  // One trading epoch (probes, trade computation, ticket reshape, residency
  // rebalancing).
  void TradeEpoch();

  const ProfileStore& profiles() const { return profiles_; }
  ProfileStore& mutable_profiles() { return profiles_; }
  const std::vector<Trade>& executed_trades() const { return executed_trades_; }
  int64_t probes_started() const { return probes_started_; }
  const IAllocationPolicy& policy() const { return *policy_; }

 private:
  // Demand-weighted mean speedup of the user's profiled resident jobs.
  bool UserSpeedup(UserId user, cluster::GpuGeneration fast,
                   cluster::GpuGeneration slow, Speedup* out) const;
  // Bounded probe migrations to cover generations with no profile estimate.
  void RunProbes();
  // Moves jobs toward their users' traded entitlements.
  void RebalanceResidency(const TradeOutcome& outcome);

  const SchedulerEnv& env_;
  const GandivaFairConfig& config_;
  ClusterStateIndex& index_;
  ResidencyIndex& residency_;
  TicketMatrix& ticket_matrix_;
  DecisionLog& decisions_;
  ISchedulerHost& host_;

  ProfileStore profiles_;
  // Resolved from GandivaFairConfig::allocation_policy via the registry at
  // construction (unknown names CHECK-fail with the registered listing).
  std::unique_ptr<IAllocationPolicy> policy_;
  std::vector<Trade> executed_trades_;
  int64_t probes_started_ = 0;
};

}  // namespace gfair::sched

#endif  // GFAIR_SCHED_TRADE_COORDINATOR_H_
