// ISchedulerHost — the facade services shared by the GandivaFair subsystems.
//
// PlacementEngine, LoadBalancer and TradeCoordinator all need a small set of
// cross-cutting operations that belong to the facade because they touch
// several subsystems at once: emitting a migration (schedule plan + decision
// log + residency + executor + work conservation at the source), the
// entitlement computation (ticket matrix x active users), and the per-job
// ticket refresh. Depending on this narrow interface instead of the facade
// keeps the subsystems acyclic and unit-testable against a stub.
#ifndef GFAIR_SCHED_SCHEDULER_HOST_H_
#define GFAIR_SCHED_SCHEDULER_HOST_H_

#include "cluster/gpu.h"
#include "common/types.h"
#include "sched/decision_log.h"

namespace gfair::sched {

class ISchedulerHost {
 public:
  virtual ~ISchedulerHost() = default;

  // Emits a migration directive (job `id` to `dest` under `cause`) into the
  // facade's current SchedulePlan, which applies it through the shared
  // migration path: record the decision, suspend if running, detach, ship.
  // Applied eagerly — later decisions in the same balancing/trading pass
  // read the post-migration residency. Precondition: not already migrating,
  // dest valid and different from the current home.
  virtual void EmitMigration(JobId id, ServerId dest, MigrationCause cause) = 0;

  // User's current entitlement (in GPUs) on a pool, given active users.
  virtual double EntitlementGpus(UserId user, cluster::GpuGeneration gen) const = 0;

  // Recomputes every resident job's stride tickets from the ticket matrix
  // (after a trading epoch reshaped pool tickets).
  virtual void RefreshAllTickets() = 0;

  // Re-places a job that lost its server (state kQueued, no server). If no
  // up server can take the gang right now, the host parks the job and keeps
  // retrying — an orphan is never dropped.
  virtual void ReplaceOrphan(JobId id) = 0;
};

}  // namespace gfair::sched

#endif  // GFAIR_SCHED_SCHEDULER_HOST_H_
