// DecisionLog — bounded structured trace of scheduler decisions.
//
// Every consequential action (placement, suspend/resume at quantum edges,
// migrations with their cause, trades) is recorded into a ring buffer with
// per-type counters. Used for debugging ("why did job 17 move?"), for
// migration-cause breakdowns in experiment reports, and by tests asserting
// that a mechanism actually fired.
#ifndef GFAIR_SCHED_DECISION_LOG_H_
#define GFAIR_SCHED_DECISION_LOG_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <ostream>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/types.h"

namespace gfair::sched {

enum class DecisionType : uint8_t {
  kPlace = 0,          // arriving job made resident
  kResume = 1,         // gang given GPUs
  kSuspend = 2,        // gang preempted at a quantum edge
  kMigrateBalance = 3,  // ticket-load balancing move
  kMigrateConserve = 4,  // work-conservation move (balancer pass 1)
  kMigrateSteal = 5,   // event-driven work stealing
  kMigrateProbe = 6,   // profiling probe to an uncovered generation
  kMigrateTrade = 7,   // residency following traded entitlements
  kTrade = 8,          // one executed trade
};
inline constexpr size_t kNumDecisionTypes = 9;

const char* DecisionTypeName(DecisionType type);

// Causes passed to StartMigration; map 1:1 onto the kMigrate* decisions.
enum class MigrationCause : uint8_t {
  kBalance = 0,
  kConserve = 1,
  kSteal = 2,
  kProbe = 3,
  kTrade = 4,
};

DecisionType DecisionFor(MigrationCause cause);

struct Decision {
  SimTime time;
  DecisionType type;
  JobId job;            // invalid for kTrade
  ServerId from;        // invalid where not applicable
  ServerId to;
  Speedup rate;         // executed rate λ for kTrade; default elsewhere
};

class DecisionLog {
 public:
  explicit DecisionLog(size_t capacity = 8192) : capacity_(capacity) {}

  // Record runs on every suspend/resume at every quantum edge — hot path.
  // The ring slot write replaces an earlier std::deque whose block churn
  // showed up in cluster-scale tick profiles.
  void Record(SimTime time, DecisionType type, JobId job,
              ServerId from = ServerId::Invalid(), ServerId to = ServerId::Invalid()) {
    Push(Decision{time, type, job, from, to, Speedup()});
  }

  // One executed trade, carrying its rate (λ) as a typed field.
  void RecordTrade(SimTime time, Speedup rate) {
    Push(Decision{time, DecisionType::kTrade, JobId::Invalid(), ServerId::Invalid(),
                  ServerId::Invalid(), rate});
  }

  // Lifetime count per decision type (not limited by the ring capacity).
  int64_t Count(DecisionType type) const {
    return counts_[static_cast<size_t>(type)];
  }
  int64_t TotalMigrations() const;

  // Ring-buffer cap and overflow accounting. `capacity() == 0` keeps only
  // the counters (count-only mode for long E13/E14 runs); otherwise the
  // oldest entry is overwritten once the ring is full, and every such
  // eviction is counted — a non-zero dropped_entries() tells a consumer the
  // retained tail is not the whole stream.
  size_t capacity() const { return capacity_; }
  int64_t dropped_entries() const { return dropped_; }

  // Read-only view of the retained tail of the decision stream, oldest
  // first (index 0) to most recent last. Iterable, sized, and indexable like
  // a container; invalidated by the next Record().
  class EntriesView {
   public:
    class const_iterator {
     public:
      using iterator_category = std::forward_iterator_tag;
      using value_type = Decision;
      using difference_type = std::ptrdiff_t;
      using pointer = const Decision*;
      using reference = const Decision&;

      const_iterator(const DecisionLog* log, size_t pos) : log_(log), pos_(pos) {}
      reference operator*() const { return log_->EntryAt(pos_); }
      pointer operator->() const { return &log_->EntryAt(pos_); }
      const_iterator& operator++() {
        ++pos_;
        return *this;
      }
      const_iterator operator++(int) {
        const_iterator old = *this;
        ++pos_;
        return old;
      }
      bool operator==(const const_iterator& other) const { return pos_ == other.pos_; }
      bool operator!=(const const_iterator& other) const { return pos_ != other.pos_; }

     private:
      const DecisionLog* log_;
      size_t pos_;
    };

    explicit EntriesView(const DecisionLog* log) : log_(log) {}
    size_t size() const { return log_->ring_.size(); }
    bool empty() const { return log_->ring_.empty(); }
    const Decision& operator[](size_t i) const { return log_->EntryAt(i); }
    const Decision& front() const { return log_->EntryAt(0); }
    const Decision& back() const { return log_->EntryAt(size() - 1); }
    const_iterator begin() const { return const_iterator(log_, 0); }
    const_iterator end() const { return const_iterator(log_, size()); }

   private:
    const DecisionLog* log_;
  };

  EntriesView entries() const { return EntriesView(this); }

  // Human-readable dump of the retained tail (most recent last).
  void Dump(std::ostream& os, size_t max_entries = 64) const;

 private:
  void Push(const Decision& decision) {
    counts_[static_cast<size_t>(decision.type)] += 1;
    if (capacity_ == 0) {
      dropped_ += 1;  // count-only mode retains nothing
      return;
    }
    if (ring_.size() < capacity_) {
      ring_.push_back(decision);
    } else {
      ring_[head_] = decision;
      head_ = head_ + 1 == capacity_ ? 0 : head_ + 1;
      dropped_ += 1;
    }
  }

  // `i`-th oldest retained decision.
  const Decision& EntryAt(size_t i) const {
    const size_t pos = head_ + i;
    return ring_[pos < ring_.size() ? pos : pos - ring_.size()];
  }

  size_t capacity_;
  std::vector<Decision> ring_;  // grows to capacity_, then wraps
  size_t head_ = 0;             // index of the oldest entry once wrapped
  int64_t dropped_ = 0;         // entries overwritten after the ring filled
  std::array<int64_t, kNumDecisionTypes> counts_{};
};

}  // namespace gfair::sched

#endif  // GFAIR_SCHED_DECISION_LOG_H_
