// DecisionLog — bounded structured trace of scheduler decisions.
//
// Every consequential action (placement, suspend/resume at quantum edges,
// migrations with their cause, trades) is recorded into a ring buffer with
// per-type counters. Used for debugging ("why did job 17 move?"), for
// migration-cause breakdowns in experiment reports, and by tests asserting
// that a mechanism actually fired.
#ifndef GFAIR_SCHED_DECISION_LOG_H_
#define GFAIR_SCHED_DECISION_LOG_H_

#include <array>
#include <cstdint>
#include <deque>
#include <ostream>
#include <string>

#include "common/sim_time.h"
#include "common/types.h"

namespace gfair::sched {

enum class DecisionType : uint8_t {
  kPlace = 0,          // arriving job made resident
  kResume = 1,         // gang given GPUs
  kSuspend = 2,        // gang preempted at a quantum edge
  kMigrateBalance = 3,  // ticket-load balancing move
  kMigrateConserve = 4,  // work-conservation move (balancer pass 1)
  kMigrateSteal = 5,   // event-driven work stealing
  kMigrateProbe = 6,   // profiling probe to an uncovered generation
  kMigrateTrade = 7,   // residency following traded entitlements
  kTrade = 8,          // one executed trade
};
inline constexpr size_t kNumDecisionTypes = 9;

const char* DecisionTypeName(DecisionType type);

// Causes passed to StartMigration; map 1:1 onto the kMigrate* decisions.
enum class MigrationCause : uint8_t {
  kBalance = 0,
  kConserve = 1,
  kSteal = 2,
  kProbe = 3,
  kTrade = 4,
};

DecisionType DecisionFor(MigrationCause cause);

struct Decision {
  SimTime time;
  DecisionType type;
  JobId job;            // invalid for kTrade
  ServerId from;        // invalid where not applicable
  ServerId to;
};

class DecisionLog {
 public:
  explicit DecisionLog(size_t capacity = 8192) : capacity_(capacity) {}

  void Record(SimTime time, DecisionType type, JobId job,
              ServerId from = ServerId::Invalid(), ServerId to = ServerId::Invalid());

  // Lifetime count per decision type (not limited by the ring capacity).
  int64_t Count(DecisionType type) const {
    return counts_[static_cast<size_t>(type)];
  }
  int64_t TotalMigrations() const;

  // The retained tail of the decision stream (most recent last).
  const std::deque<Decision>& entries() const { return entries_; }

  // Human-readable dump of the retained tail (most recent last).
  void Dump(std::ostream& os, size_t max_entries = 64) const;

 private:
  size_t capacity_;
  std::deque<Decision> entries_;
  std::array<int64_t, kNumDecisionTypes> counts_{};
};

}  // namespace gfair::sched

#endif  // GFAIR_SCHED_DECISION_LOG_H_
