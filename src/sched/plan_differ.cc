#include "sched/plan_differ.h"

namespace gfair::sched {

void PlanDiffer::DiffServer(const SchedulePlan& plan,
                            const SchedulePlan::ServerTarget& target,
                            ScheduleDelta* delta) {
  ++target_epoch_;
  if (jobs_.size() > target_stamp_.size()) {
    target_stamp_.resize(jobs_.size(), 0);
  }
  for (uint32_t i = target.target_begin; i < target.target_end; ++i) {
    target_stamp_[plan.target_jobs[i].value()] = target_epoch_;
  }

  // Suspends first so the incoming gang's GPUs are free.
  const ServerId server = target.server;
  for (JobId id : view_.stride(server).ResidentJobs()) {
    if (exec_.IsRunning(id) && target_stamp_[id.value()] != target_epoch_) {
      delta->ops.push_back(exec::ScheduleOp{id, server, /*resume=*/false});
    }
  }
  for (uint32_t i = target.target_begin; i < target.target_end; ++i) {
    const JobId id = plan.target_jobs[i];
    if (!exec_.IsRunning(id)) {
      delta->ops.push_back(exec::ScheduleOp{id, server, /*resume=*/true});
    }
  }
}

void PlanDiffer::Diff(const SchedulePlan& plan, ScheduleDelta* delta) {
  for (const SchedulePlan::ServerTarget& target : plan.servers) {
    DiffServer(plan, target, delta);
  }
}

}  // namespace gfair::sched
