// GandivaFairScheduler — the paper's scheduler, end to end.
//
// A facade over the subsystems that share two incrementally-maintained
// indices:
//
//   ClusterStateIndex   per-server stride schedulers + cached ticket/demand
//                       loads + per-pool servers ordered by normalized load
//                       + the per-server plan-dirty set
//   ResidencyIndex      per-job bookkeeping + per-user per-pool resident
//                       job sets and demand aggregates
//   QuantumPlanner      pure per-quantum planning (state -> SchedulePlan)
//   PlanDiffer          plan -> minimal ScheduleDelta of executor verbs
//   PlacementEngine     central placement of arrivals + work stealing
//   LoadBalancer        periodic balancing passes + drain batches
//   TradeCoordinator    profiling, probe migrations, trading epochs
//
// The facade implements the event-driven core (submit/finish/migration
// callbacks) and the cross-cutting services the subsystems consume via
// ISchedulerHost (EmitMigration, entitlements, ticket refresh). The quantum
// tick itself is a pipeline over the planner/differ value types, fused into
// one pass per server for cache locality (servers are independent, so the
// fused loop emits exactly the phase-at-a-time plan and delta):
//
//   per server: charge + sample  ->  plan or skip  ->  commit (vt, dirty)
//               ->  diff  ->  Executor::ApplyDelta (the server's batch)
//               ->  record decisions
//
// With plan_shards > 1 the same pipeline runs per contiguous server shard
// on ThreadPool threads (sample draws deferred), a serial reduce step
// replays the samples and merges the shard plans/deltas in ascending server
// order, and the apply consumes the merged slices — bit-identical decisions
// for any shard count (see DESIGN.md "Sharded planning").
//
// (see docs/ARCHITECTURE.md "The quantum tick" for the full walk-through).
// Combines, on top of the Executor substrate:
//   * per-server gang-aware stride schedulers driven by a global quantum tick
//     (split stride design: central placement, local time slicing);
//   * ticket-load-aware central placement of arriving jobs;
//   * migration-based load balancing within each generation pool;
//   * transparent throughput profiling of running jobs (plus bounded probe
//     migrations to cover missing generations);
//   * epoch-based automatic resource trading across generation pools, with
//     residency rebalancing so jobs follow their user's traded entitlements;
//   * a FairnessLedger recording per-user GPU time and demand for evaluation.
#ifndef GFAIR_SCHED_GANDIVA_FAIR_H_
#define GFAIR_SCHED_GANDIVA_FAIR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/phase_tokens.h"
#include "common/thread_pool.h"
#include "sched/cluster_state_index.h"
#include "sched/decision_log.h"
#include "sched/invariant_checker.h"
#include "sched/ledger.h"
#include "sched/placement_engine.h"
#include "sched/plan_differ.h"
#include "sched/plan_shard.h"
#include "sched/load_balancer.h"
#include "sched/profiler.h"
#include "sched/quantum_planner.h"
#include "sched/residency_index.h"
#include "sched/schedule_plan.h"
#include "sched/scheduler_host.h"
#include "sched/scheduler_iface.h"
#include "sched/snapshot.h"
#include "sched/stride.h"
#include "sched/ticket_matrix.h"
#include "sched/trade.h"
#include "sched/trade_coordinator.h"

namespace gfair::sched {

struct GandivaFairConfig {
  // --- local stride scheduling ---
  StrideConfig stride;                  // gang-awareness knobs (both on by default)
  SimDuration quantum = Minutes(1);

  // --- migration-based load balancing ---
  bool enable_load_balancing = true;
  SimDuration balance_period = Minutes(5);
  // Rebalance when (max - min) per-server ticket load exceeds this fraction
  // of the pool's mean load.
  double balance_threshold = 0.15;
  int max_migrations_per_round = 16;
  // A job is not migrated again within this interval (amortizes cost).
  SimDuration min_migration_interval = Minutes(10);

  // --- resource trading ---
  bool enable_trading = true;
  SimDuration trade_period = Minutes(10);
  TradeConfig trade;
  // Allocation backend computing each epoch's entitlements, resolved against
  // the AllocationPolicyRegistry ("greedy" = the paper's trade loop;
  // "themis" and "gavel" are the auction-style alternatives). Unknown names
  // CHECK-fail at scheduler construction with the registered listing.
  std::string allocation_policy = "greedy";
  // Residency-rebalancing migrations allowed per trade epoch.
  int max_trade_migrations = 32;

  // --- profiling ---
  size_t profile_min_samples = 3;
  // Probe migrations (to cover missing generations) allowed per trade epoch.
  int max_probes_per_epoch = 2;

  // --- hierarchical sharing ---
  // When users carry group labels (User::group), split cluster tickets
  // group-first: a group's weight (sum of member base tickets) is divided
  // among its ACTIVE members, so team shares are headcount-independent.
  // No-op when no user is grouped.
  bool enable_hierarchical_sharing = true;

  // --- work stealing ---
  // When a server has idle GPUs and no resident job fits them, pull a
  // fitting suspended job from an oversubscribed server of the same pool
  // (event-driven work conservation; at most once per server per quantum).
  bool enable_work_stealing = true;

  // --- fault tolerance ---
  // Bounded retry for failed checkpoint transfers: attempt k waits
  // migration_retry_backoff * 2^(k-1), then re-targets the least-loaded up
  // server of the original destination pool. After migration_max_retries
  // failed attempts the job simply stays at its source (the next balance
  // pass or trade epoch may move it again) — it is never left migrating.
  int migration_max_retries = 3;
  SimDuration migration_retry_backoff = Seconds(30);

  // --- quantum-tick actuation ---
  // Threads (counting the caller) batching the per-server ApplyDelta slices
  // at each quantum tick. 1 = fully serial fused pipeline (the default).
  // >1 = two-pass tick: charge/plan/diff every server first, then fan the
  // per-server slices across a ThreadPool via Executor::ApplyDeltaParallel.
  // Slices target disjoint servers/jobs/GPUs by construction and everything
  // order-sensitive is committed serially in op order, so the decision log,
  // event-id stream, RNG draws and accounting are bit-identical to the
  // serial path (the decision-log cross-check test pins this).
  int apply_threads = 1;

  // --- sharded parallel planning ---
  // Shards the tick's plan phase: servers are partitioned into plan_shards
  // fixed contiguous id ranges and each shard runs charge + plan + commit +
  // diff into its own planner/differ/plan/delta (the per-server dirty-set
  // skip keeps each shard's work proportional to its churn). A serial
  // reduce step then owns every cross-shard concern: the profiler sample
  // draws (the executor RNG stays one serial stream), the plan/delta merge,
  // and the apply-slice bookkeeping. Balancer / steal / trade
  // MigrationDirectives never run inside the shard fan-out — they are
  // emitted between ticks or after the apply, straight into the merged
  // plan. Because shards are contiguous ascending id ranges merged in shard
  // order, the merged streams are exactly the serial planner's
  // ascending-server-order streams — bit-identical for ANY shard count
  // (the equivalence suite and the shard-count-invariance test pin this).
  // 1 = the unsharded pipeline (the default). Counts above the server count
  // are clamped.
  int plan_shards = 1;
  // Threads (counting the caller) fanning the shards across the tick's
  // ThreadPool. 1 plans the shards inline on the caller (still exercising
  // the shard/reduce seam); >1 shares one pool with the parallel apply,
  // sized max(plan_threads, apply_threads). Thread count never affects
  // decisions — only shard state is touched in the fan-out, and the merge
  // reads it in shard order.
  int plan_threads = 1;
};

// Exponential migration-retry backoff for 1-based attempt k:
// base * 2^(k-1), saturating at one simulated day. A plain shift overflows
// SimDuration once k nears 63 (and goes negative well before that for large
// bases), which a high migration_max_retries config can reach; saturation
// keeps every attempt's delay finite and monotone instead.
SimDuration RetryBackoff(SimDuration base, int attempt);

class GandivaFairScheduler : public IScheduler, private ISchedulerHost {
 public:
  GandivaFairScheduler(const SchedulerEnv& env, GandivaFairConfig config);

  void Start() override;
  void Submit(JobId id) override;
  void OnJobFinished(JobId id) override;
  void OnMigrationDone(JobId id) override;
  void OnJobOrphaned(JobId id) override;
  void OnMigrationFailed(JobId id, ServerId dest) override;
  void OnServerDown(ServerId id) override;
  void OnServerUp(ServerId id) override;
  std::string name() const override { return "GandivaFair"; }
  FairnessLedger& policy_ledger() override { return ledger_; }

  // --- introspection (tests, benches, examples) ---
  FairnessLedger& ledger() { return ledger_; }
  const FairnessLedger& ledger() const { return ledger_; }
  const ProfileStore& profiles() const { return trader_.profiles(); }
  ProfileStore& mutable_profiles() { return trader_.mutable_profiles(); }
  const TicketMatrix& tickets() const { return ticket_matrix_; }
  const std::vector<Trade>& executed_trades() const { return trader_.executed_trades(); }
  int64_t migrations_started() const { return migrations_started_; }
  int64_t steals_started() const { return placement_.steals_started(); }
  int64_t orphans_replaced() const { return orphans_replaced_; }
  int64_t migration_retries_started() const { return migration_retries_started_; }
  // Orphans currently waiting for an up server (retried every quantum tick
  // and on each recovery).
  size_t pending_orphan_count() const { return pending_orphans_.size(); }
  // Structured trace of scheduler decisions (placements, suspends/resumes,
  // migrations by cause, trades).
  const DecisionLog& decisions() const { return decisions_; }
  const LocalStrideScheduler& stride_for(ServerId server) const {
    return index_.stride(server);
  }
  // User's current entitlement (in GPUs) on a pool, given active users.
  double EntitlementGpus(UserId user, cluster::GpuGeneration gen) const override;
  // User's resident GPU demand on a pool.
  double ResidentDemand(UserId user, cluster::GpuGeneration gen) const {
    return residency_.ResidentDemand(user, gen);
  }
  const GandivaFairConfig& config() const { return config_; }
  const ClusterStateIndex& cluster_index() const { return index_; }
  const ResidencyIndex& residency() const { return residency_; }

  // Runs every registered cluster-wide invariant (see invariant_checker.h)
  // and returns the violations — empty when the state is consistent. Called
  // automatically after every quantum in Debug builds; exposed so property
  // and fault tests can sweep at arbitrary points.
  std::vector<std::string> CheckInvariants() { return checker_.Check(); }

  // Structured point-in-time view of servers and users (for operators,
  // tools and tests).
  ClusterSnapshot Snapshot() const;

  // --- maintenance ---
  // Marks a server as draining: no new placements or inbound migrations;
  // resident jobs are migrated off (a bounded batch per balance tick, plus
  // an immediate batch now). Safe to call repeatedly.
  void DrainServer(ServerId server);
  // Returns a drained server to service.
  void UndrainServer(ServerId server);
  bool IsDraining(ServerId server) const { return index_.draining(server); }

 private:
  // --- ISchedulerHost (services the subsystems call back into) ---
  void EmitMigration(JobId id, ServerId dest, MigrationCause cause) override;
  void RefreshAllTickets() override;
  void ReplaceOrphan(JobId id) override;

  cluster::GpuGeneration GenOf(ServerId server) const;

  // Periodic events.
  void QuantumTick();

  // Quantum pipeline stages (see class comment). The fork-join phases carry
  // phase-capability tokens (common/phase_tokens.h): a ShardToken is minted
  // per shard inside the fan-out and unlocks only that shard's PlanShard
  // state; a ReduceToken is minted only at serial points and unlocks the
  // cross-shard merge, the deferred profiler-sample replay and the
  // executor's global accounting. Only this facade (and the executor, for
  // ReduceToken) can mint them, so phase violations are compile errors.
  // Stride pass charging + profiler feeding for one up server, fused into a
  // single resident walk (both touch exactly the running jobs). Serial by
  // construction — hence the ReduceToken for the profiler feed.
  void ChargeAndSample(ServerId server, common::ReduceToken token);
  // The shard-parallel half of ChargeAndSample: charges one up server's
  // stride passes and buffers its running jobs for the reduce step's serial
  // sample replay (the draw itself consumes the executor's single RNG
  // stream, so it cannot run here).
  void ChargeServer(ServerId server, std::vector<PendingSample>* pending_samples,
                    common::ShardToken token);
  // The per-shard parallel phase: charge / plan-or-skip / commit / diff
  // every up server of the shard's range into the shard's own plan + delta
  // (sched/plan_shard.h). Runs concurrently across shards — touches only
  // per-server and per-job state owned by the shard's range, unlocked by
  // the shard's token (gfair_lint's shard-locality rule additionally
  // enforces a cross-shard denylist over the region).
  void PlanShardRange(PlanShard& shard, common::ShardToken token);
  // The serial reduce step — the only stage that may touch cross-shard
  // state (it holds the tick's ReduceToken). Replays the buffered profiler
  // samples in ascending server order (one RNG stream, serial draw order),
  // then merges the per-shard plans and deltas into
  // plan_/delta_/slice_begins_; shard order is ascending server order, so
  // the merged streams equal the serial planner's for any shard count.
  void ReduceShards(common::ReduceToken token);
  // Applies the merged delta_ slice by slice: per-server serial ApplyDelta
  // when apply_threads == 1, one ApplyDeltaParallel batch otherwise. Also
  // the apply tail of the unsharded two-pass path.
  void ApplyMergedSlices();
  // Applies delta_.ops[ops_begin..end) — one diffed server's batch — then
  // records the decisions and resets resumed jobs' charge clocks.
  void ApplyDeltaSlice(size_t ops_begin);
  // The decision/charge-clock bookkeeping shared by both apply paths: one
  // DecisionLog record per op (in op order) and a last_charge reset per
  // resume.
  void RecordAppliedOps(size_t ops_begin, size_t ops_end);

  // Mid-quantum work conservation (arrivals/finishes/landed migrations).
  void FillIdleGpus(ServerId server);

  // The shared migration path EmitMigration funnels into.
  void ExecuteMigration(JobId id, ServerId dest, MigrationCause cause);

  // Residency transitions (stride + residency + ledger, in lockstep).
  void AttachResident(JobId id, ServerId server);
  void DetachResident(JobId id);  // inverse (before migrate/finish)

  // Fault handling.
  // Per-job migration-retry bookkeeping, indexed by (dense) job id.
  struct RetryState {
    int attempts = 0;          // consecutive failed transfer attempts
    bool scheduled = false;    // a backoff timer is pending for this job
    MigrationCause cause = MigrationCause::kBalance;  // cause of the attempt
  };
  RetryState& RetryOf(JobId id);
  // The shared tail of a failed transfer: bump the attempt counter and either
  // schedule a backed-off retry (saturating — see RetryBackoff) or give up
  // and leave the job at its source.
  void ScheduleRetryOrGiveUp(JobId id, ServerId dest);
  // Fires when a backoff timer expires: re-target the least-loaded up server
  // of `gen` and re-start the migration, unless the world moved on (job
  // finished, migrating again, or orphaned meanwhile).
  void RetryMigration(JobId id, cluster::GpuGeneration gen);
  // Executor pre-copy cutover callback: the bulk checkpoint landed at `dest`.
  // Returns true after suspending/detaching the job and starting the
  // stop-and-copy tail; false to abandon (the claim was dropped or the
  // destination became ineligible scheduler-side).
  bool OnPrecopyCutover(JobId id, ServerId dest);
  // Re-attempts placement of every parked orphan.
  void RetryPendingOrphans();

  // Tickets.
  // Recomputes effective base tickets from the group hierarchy after the
  // active-user set changes.
  void ApplyHierarchy();
  Tickets PerJobTickets(UserId user, cluster::GpuGeneration gen,
                        const workload::Job& job) const;
  void RefreshPoolTickets(UserId user, cluster::GpuGeneration gen);

  SchedulerEnv env_;
  GandivaFairConfig config_;

  FairnessLedger ledger_;
  TicketMatrix ticket_matrix_;
  DecisionLog decisions_;
  int64_t migrations_started_ = 0;
  int64_t orphans_replaced_ = 0;
  int64_t migration_retries_started_ = 0;

  // Orphans (and arrivals during an outage) with no up server to take them;
  // never dropped — retried every quantum and on each server recovery.
  std::vector<JobId> pending_orphans_;
  std::vector<RetryState> retry_;  // indexed by job id, lazily grown

  // Shared state indices (declared before the subsystems that reference them).
  ClusterStateIndex index_;
  ResidencyIndex residency_;

  // Subsystems.
  PlacementEngine placement_;
  LoadBalancer balancer_;
  TradeCoordinator trader_;

  // Quantum pipeline stages + their value-type scratch (plan_/delta_ are
  // cleared and refilled in place each quantum; steady-state ticks allocate
  // nothing). plan_.migrations additionally collects the directives emitted
  // by balancer/trader/stealing since the last tick.
  QuantumPlanner planner_;
  PlanDiffer differ_;
  SchedulePlan plan_;
  ScheduleDelta delta_;

  // The tick's fork-join pool, shared by the two fan-outs — the shard plan
  // phase (plan_threads) and the parallel apply (apply_threads) — sized
  // max(plan_threads, apply_threads); null when both are 1.
  // slice_begins_ records each diffed server's offset into delta_.ops
  // during the plan pass (or the reduce merge); slice_scratch_ materializes
  // the ApplySlice pointers only after the pass, since delta_.ops may
  // reallocate while growing.
  std::unique_ptr<common::ThreadPool> tick_pool_;
  std::vector<size_t> slice_begins_;
  std::vector<exec::Executor::ApplySlice> slice_scratch_;
  // Plan shards (empty when plan_shards <= 1): fixed contiguous partition
  // of the server ids, sized once at construction.
  std::vector<PlanShard> shards_;

  // Post-quantum cluster-wide invariant sweep (declared last: reads the
  // subsystems above through `*this` but never mutates them).
  InvariantChecker checker_;

 public:
  // The last quantum's plan and delta (introspection for tests/tools; valid
  // until the next tick).
  const SchedulePlan& last_plan() const { return plan_; }
  const ScheduleDelta& last_delta() const { return delta_; }
};

}  // namespace gfair::sched

#endif  // GFAIR_SCHED_GANDIVA_FAIR_H_
