// GandivaFairScheduler — the paper's scheduler, end to end.
//
// Combines, on top of the Executor substrate:
//   * per-server gang-aware stride schedulers driven by a global quantum tick
//     (split stride design: central placement, local time slicing);
//   * ticket-load-aware central placement of arriving jobs;
//   * migration-based load balancing within each generation pool;
//   * transparent throughput profiling of running jobs (plus bounded probe
//     migrations to cover missing generations);
//   * epoch-based automatic resource trading across generation pools, with
//     residency rebalancing so jobs follow their user's traded entitlements;
//   * a FairnessLedger recording per-user GPU time and demand for evaluation.
#ifndef GFAIR_SCHED_GANDIVA_FAIR_H_
#define GFAIR_SCHED_GANDIVA_FAIR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sched/decision_log.h"
#include "sched/ledger.h"
#include "sched/profiler.h"
#include "sched/scheduler_iface.h"
#include "sched/snapshot.h"
#include "sched/stride.h"
#include "sched/ticket_matrix.h"
#include "sched/trade.h"

namespace gfair::sched {

struct GandivaFairConfig {
  // --- local stride scheduling ---
  StrideConfig stride;                  // gang-awareness knobs (both on by default)
  SimDuration quantum = Minutes(1);

  // --- migration-based load balancing ---
  bool enable_load_balancing = true;
  SimDuration balance_period = Minutes(5);
  // Rebalance when (max - min) per-server ticket load exceeds this fraction
  // of the pool's mean load.
  double balance_threshold = 0.15;
  int max_migrations_per_round = 16;
  // A job is not migrated again within this interval (amortizes cost).
  SimDuration min_migration_interval = Minutes(10);

  // --- resource trading ---
  bool enable_trading = true;
  SimDuration trade_period = Minutes(10);
  TradeConfig trade;
  // Residency-rebalancing migrations allowed per trade epoch.
  int max_trade_migrations = 32;

  // --- profiling ---
  size_t profile_min_samples = 3;
  // Probe migrations (to cover missing generations) allowed per trade epoch.
  int max_probes_per_epoch = 2;

  // --- hierarchical sharing ---
  // When users carry group labels (User::group), split cluster tickets
  // group-first: a group's weight (sum of member base tickets) is divided
  // among its ACTIVE members, so team shares are headcount-independent.
  // No-op when no user is grouped.
  bool enable_hierarchical_sharing = true;

  // --- work stealing ---
  // When a server has idle GPUs and no resident job fits them, pull a
  // fitting suspended job from an oversubscribed server of the same pool
  // (event-driven work conservation; at most once per server per quantum).
  bool enable_work_stealing = true;
};

class GandivaFairScheduler : public IScheduler {
 public:
  GandivaFairScheduler(const SchedulerEnv& env, GandivaFairConfig config);

  void Start() override;
  void Submit(JobId id) override;
  void OnJobFinished(JobId id) override;
  void OnMigrationDone(JobId id) override;
  std::string name() const override { return "GandivaFair"; }
  FairnessLedger& policy_ledger() override { return ledger_; }

  // --- introspection (tests, benches, examples) ---
  FairnessLedger& ledger() { return ledger_; }
  const FairnessLedger& ledger() const { return ledger_; }
  const ProfileStore& profiles() const { return profiles_; }
  ProfileStore& mutable_profiles() { return profiles_; }
  const TicketMatrix& tickets() const { return ticket_matrix_; }
  const std::vector<Trade>& executed_trades() const { return executed_trades_; }
  int64_t migrations_started() const { return migrations_started_; }
  int64_t steals_started() const { return steals_started_; }
  // Structured trace of scheduler decisions (placements, suspends/resumes,
  // migrations by cause, trades).
  const DecisionLog& decisions() const { return decisions_; }
  const LocalStrideScheduler& stride_for(ServerId server) const;
  // User's current entitlement (in GPUs) on a pool, given active users.
  double EntitlementGpus(UserId user, cluster::GpuGeneration gen) const;
  // User's resident GPU demand on a pool.
  double ResidentDemand(UserId user, cluster::GpuGeneration gen) const;
  const GandivaFairConfig& config() const { return config_; }

  // Structured point-in-time view of servers and users (for operators,
  // tools and tests).
  ClusterSnapshot Snapshot() const;

  // --- maintenance ---
  // Marks a server as draining: no new placements or inbound migrations;
  // resident jobs are migrated off (a bounded batch per balance tick, plus
  // an immediate batch now). Safe to call repeatedly.
  void DrainServer(ServerId server);
  // Returns a drained server to service.
  void UndrainServer(ServerId server);
  bool IsDraining(ServerId server) const;

 private:
  struct JobInfo {
    ServerId home = ServerId::Invalid();  // resident/destination server
    SimTime last_charge = kTimeZero;
    SimTime last_migration;  // initialized to "long ago"
    bool migrating = false;
  };

  LocalStrideScheduler& StrideFor(ServerId server);
  cluster::GpuGeneration GenOf(ServerId server) const;
  JobInfo& InfoFor(JobId id);

  // Periodic events.
  void QuantumTick();
  void BalanceTick();
  void TradeTick();

  // Quantum mechanics.
  void ChargeRunningOn(ServerId server);
  void ApplyTargetSet(ServerId server);
  void FillIdleGpus(ServerId server);
  void CollectSamples(ServerId server);

  // Placement & migration.
  ServerId ChoosePlacement(const workload::Job& job) const;
  void StartMigration(JobId id, ServerId dest, MigrationCause cause);
  // Work stealing: fill `server`'s idle GPUs with a suspended job migrated
  // from an oversubscribed server of the same pool.
  void TrySteal(ServerId server);
  void AttachResident(JobId id, ServerId server);  // stride + counters + ledger
  void DetachResident(JobId id);                   // inverse (before migrate/finish)

  // Tickets.
  // Recomputes effective base tickets from the group hierarchy after the
  // active-user set changes.
  void ApplyHierarchy();
  double PerJobTickets(UserId user, cluster::GpuGeneration gen,
                       const workload::Job& job) const;
  double WeightedResidentDemand(UserId user, cluster::GpuGeneration gen) const;
  void RefreshPoolTickets(UserId user, cluster::GpuGeneration gen);
  void RefreshAllTickets();

  // Drains one bounded batch of jobs off every draining server.
  void DrainTick();

  // Trading helpers.
  std::vector<UserId> ActiveUsers() const;
  bool UserSpeedup(UserId user, cluster::GpuGeneration fast, cluster::GpuGeneration slow,
                   double* out) const;
  void RunProbes();
  void RebalanceResidency(const TradeOutcome& outcome);

  SchedulerEnv env_;
  GandivaFairConfig config_;

  std::vector<LocalStrideScheduler> strides_;  // one per server, same indexing
  FairnessLedger ledger_;
  ProfileStore profiles_;
  TicketMatrix ticket_matrix_;
  TradingEngine trading_;
  std::vector<Trade> executed_trades_;

  std::unordered_map<JobId, JobInfo> job_info_;
  // Unfinished jobs per user per pool (drives per-job ticket splits).
  std::unordered_map<UserId, cluster::PerGeneration<std::unordered_set<JobId>>>
      user_pool_jobs_;
  std::unordered_map<UserId, int> user_unfinished_jobs_;
  // Total outstanding GPU demand per user (includes in-flight migrations,
  // which are resident in no pool set).
  std::unordered_map<UserId, double> user_total_demand_;

  int64_t migrations_started_ = 0;
  int64_t probes_started_ = 0;
  int64_t steals_started_ = 0;
  DecisionLog decisions_;
  // Per-server rate limit for stealing (indexed like strides_).
  std::vector<SimTime> last_steal_;
  // Servers being drained for maintenance (indexed like strides_).
  std::vector<bool> draining_;
};

}  // namespace gfair::sched

#endif  // GFAIR_SCHED_GANDIVA_FAIR_H_
