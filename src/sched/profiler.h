// ProfileStore — online throughput profiles across GPU generations.
//
// The scheduler transparently times mini-batches of running jobs (noisy
// samples from the executor) and accumulates per-(model, generation) rate
// estimates. Speedup ratios derived from these estimates drive the trading
// engine.
//
// Substitution note (see DESIGN.md): the paper profiles each *job*; jobs in
// production recur (same model/script resubmitted), so we key profiles by
// model. Samples are normalized to per-GPU rates (observed gang rate divided
// by gang size) so multi-GPU samples mix with 1-GPU samples; the residual
// scaling-efficiency bias cancels in cross-generation ratios when a model's
// gang mix is similar across pools, and shows up as part of the profiler
// error measured in experiment E7.
#ifndef GFAIR_SCHED_PROFILER_H_
#define GFAIR_SCHED_PROFILER_H_

#include <cstddef>
#include <vector>

#include "cluster/gpu.h"
#include "common/stats.h"
#include "common/types.h"
#include "workload/model_zoo.h"

namespace gfair::sched {

class ProfileStore {
 public:
  // An estimate is usable once it has at least `min_samples` samples.
  explicit ProfileStore(size_t min_samples = 3) : min_samples_(min_samples) {}

  // Records one observed per-GPU rate (mini-batches/s) of `model` on `gen`.
  void AddSample(workload::ModelId model, cluster::GpuGeneration gen, PerGpuRate per_gpu_rate);

  bool HasEstimate(workload::ModelId model, cluster::GpuGeneration gen) const;
  // Mean per-GPU rate. Precondition: HasEstimate().
  PerGpuRate EstimatedRate(workload::ModelId model, cluster::GpuGeneration gen) const;
  size_t SampleCount(workload::ModelId model, cluster::GpuGeneration gen) const;

  // Speedup of `model` on `fast` relative to `slow`. Returns false when
  // either side lacks an estimate. (The type is qualified because the member
  // function name shadows gfair::Speedup inside the class scope.)
  bool Speedup(workload::ModelId model, cluster::GpuGeneration fast,
               cluster::GpuGeneration slow, gfair::Speedup* out) const;

  size_t min_samples() const { return min_samples_; }

 private:
  const RunningStats* Find(workload::ModelId model, cluster::GpuGeneration gen) const;

  size_t min_samples_;
  // Indexed by model id (model ids are dense, assigned by ModelZoo). A
  // default-constructed RunningStats (zero samples) is indistinguishable from
  // an absent profile, so no separate presence flag is needed. AddSample runs
  // once per collected throughput sample every quantum — hot path.
  std::vector<cluster::PerGeneration<RunningStats>> profiles_;
};

}  // namespace gfair::sched

#endif  // GFAIR_SCHED_PROFILER_H_
