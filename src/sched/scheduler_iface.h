// IScheduler — the policy interface shared by Gandiva_fair and all baselines.
//
// A scheduler policy receives job lifecycle notifications and drives the
// Executor (place / resume / suspend / migrate). Harnesses construct the
// environment, wire executor callbacks to the policy, replay a trace, and
// read results from the jobs table and the fairness ledger.
#ifndef GFAIR_SCHED_SCHEDULER_IFACE_H_
#define GFAIR_SCHED_SCHEDULER_IFACE_H_

#include <string>

#include "cluster/cluster.h"
#include "common/types.h"
#include "exec/executor.h"
#include "sched/ledger.h"
#include "simkit/simulator.h"
#include "workload/job.h"
#include "workload/model_zoo.h"
#include "workload/user.h"

namespace gfair::sched {

// Everything a policy needs, owned by the harness.
struct SchedulerEnv {
  simkit::Simulator& sim;
  cluster::Cluster& cluster;
  const workload::ModelZoo& zoo;
  workload::JobTable& jobs;
  workload::UserTable& users;
  exec::Executor& exec;
};

class IScheduler {
 public:
  virtual ~IScheduler() = default;

  // Installs periodic events (quantum ticks, trading epochs, ...). Called
  // once before the simulation runs.
  virtual void Start() = 0;

  // A new job arrived (already created in the JobTable, state kQueued).
  virtual void Submit(JobId id) = 0;

  // Executor notifications (wired by the harness).
  virtual void OnJobFinished(JobId id) = 0;
  virtual void OnMigrationDone(JobId id) = 0;

  // Fault-plane notifications. Default no-ops: baselines that predate the
  // fault plane (and the frozen legacy monolith) ignore failures — harnesses
  // simply never inject faults against them.
  virtual void OnJobOrphaned(JobId /*id*/) {}
  virtual void OnMigrationFailed(JobId /*id*/, ServerId /*dest*/) {}
  virtual void OnServerDown(ServerId /*id*/) {}
  virtual void OnServerUp(ServerId /*id*/) {}

  virtual std::string name() const = 0;

  // Every policy carries a ledger so experiments can compare per-user GPU
  // time uniformly across policies.
  virtual FairnessLedger& policy_ledger() = 0;
};

// Connects executor completion/migration/accounting callbacks to the policy.
inline void WireCallbacks(exec::Executor& exec, IScheduler& policy) {
  exec.set_on_job_finished([&policy](JobId id) { policy.OnJobFinished(id); });
  exec.set_on_migration_done([&policy](JobId id) { policy.OnMigrationDone(id); });
  exec.set_on_job_orphaned([&policy](JobId id) { policy.OnJobOrphaned(id); });
  exec.set_on_migration_failed(
      [&policy](JobId id, ServerId dest) { policy.OnMigrationFailed(id, dest); });
  exec.set_on_server_down([&policy](ServerId id) { policy.OnServerDown(id); });
  exec.set_on_server_up([&policy](ServerId id) { policy.OnServerUp(id); });
  exec.set_on_gpu_time([&policy](UserId user, cluster::GpuGeneration gen, SimTime start,
                                 SimTime end, int gpus) {
    policy.policy_ledger().RecordGpuTime(user, gen, start, end, gpus);
  });
}

}  // namespace gfair::sched

#endif  // GFAIR_SCHED_SCHEDULER_IFACE_H_
