#include "sched/ledger.h"

#include <algorithm>

#include "common/check.h"

namespace gfair::sched {

using cluster::GenerationIndex;
using cluster::GpuGeneration;

FairnessLedger::PerUser& FairnessLedger::GetOrCreate(UserId user) {
  GFAIR_CHECK(user.valid());
  return per_user_[user];
}

void FairnessLedger::RecordGpuTime(UserId user, GpuGeneration gen, SimTime start,
                                   SimTime end, int gpus) {
  GFAIR_CHECK(start <= end && gpus > 0);
  if (start == end) {
    return;
  }
  auto& record = GetOrCreate(user);
  record.gpu_ms[GenerationIndex(gen)].Add(end, static_cast<double>(end - start) * gpus);
}

void FairnessLedger::RecordDemandChange(UserId user, GpuGeneration gen, SimTime time,
                                        int delta) {
  auto& record = GetOrCreate(user);
  double& current = record.current_demand[GenerationIndex(gen)];
  current += delta;
  GFAIR_CHECK_MSG(current >= -1e-9, "demand went negative");
  current = std::max(current, 0.0);
  record.demand[GenerationIndex(gen)].Record(time, current);
}

double FairnessLedger::GpuMs(UserId user, GpuGeneration gen, SimTime from,
                             SimTime to) const {
  auto it = per_user_.find(user);
  if (it == per_user_.end()) {
    return 0.0;
  }
  const auto& series = it->second.gpu_ms[GenerationIndex(gen)];
  return series.TotalUpTo(to) - series.TotalUpTo(from);
}

double FairnessLedger::GpuMs(UserId user, SimTime from, SimTime to) const {
  double total = 0.0;
  for (GpuGeneration gen : cluster::kAllGenerations) {
    total += GpuMs(user, gen, from, to);
  }
  return total;
}

const simkit::TimeSeries& FairnessLedger::DemandSeries(UserId user,
                                                       GpuGeneration gen) const {
  static const simkit::TimeSeries kEmpty;
  auto it = per_user_.find(user);
  if (it == per_user_.end()) {
    return kEmpty;
  }
  return it->second.demand[GenerationIndex(gen)];
}

double FairnessLedger::DemandAt(UserId user, GpuGeneration gen, SimTime time) const {
  return DemandSeries(user, gen).ValueAt(time, 0.0);
}

double FairnessLedger::TotalDemandAt(UserId user, SimTime time) const {
  double total = 0.0;
  for (GpuGeneration gen : cluster::kAllGenerations) {
    total += DemandAt(user, gen, time);
  }
  return total;
}

std::vector<UserId> FairnessLedger::KnownUsers() const {
  std::vector<UserId> users;
  users.reserve(per_user_.size());
  for (const auto& [id, record] : per_user_) {
    users.push_back(id);
  }
  std::sort(users.begin(), users.end());
  return users;
}

}  // namespace gfair::sched
