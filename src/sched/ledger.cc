#include "sched/ledger.h"

#include <algorithm>

#include "common/check.h"

namespace gfair::sched {

using cluster::GenerationIndex;
using cluster::GpuGeneration;

FairnessLedger::PerUser& FairnessLedger::GetOrCreate(UserId user) {
  GFAIR_CHECK(user.valid());
  if (user.value() >= per_user_.size()) {
    per_user_.resize(user.value() + 1);
    known_.resize(user.value() + 1, false);
  }
  known_[user.value()] = true;
  return per_user_[user.value()];
}

const FairnessLedger::PerUser* FairnessLedger::Find(UserId user) const {
  if (!user.valid() || user.value() >= per_user_.size() || !known_[user.value()]) {
    return nullptr;
  }
  return &per_user_[user.value()];
}

void FairnessLedger::RecordGpuTime(UserId user, GpuGeneration gen, SimTime start,
                                   SimTime end, int gpus) {
  GFAIR_CHECK(start <= end && gpus > 0);
  if (start == end) {
    return;
  }
  auto& record = GetOrCreate(user);
  record.gpu_ms[GenerationIndex(gen)].Add(end, static_cast<double>(end - start) * gpus);
}

void FairnessLedger::RecordDemandChange(UserId user, GpuGeneration gen, SimTime time,
                                        int delta) {
  auto& record = GetOrCreate(user);
  double& current = record.current_demand[GenerationIndex(gen)];
  current += delta;
  GFAIR_CHECK_MSG(current >= -1e-9, "demand went negative");
  current = std::max(current, 0.0);
  record.demand[GenerationIndex(gen)].Record(time, current);
}

double FairnessLedger::GpuMs(UserId user, GpuGeneration gen, SimTime from,
                             SimTime to) const {
  const PerUser* record = Find(user);
  if (record == nullptr) {
    return 0.0;
  }
  const auto& series = record->gpu_ms[GenerationIndex(gen)];
  return series.TotalUpTo(to) - series.TotalUpTo(from);
}

double FairnessLedger::GpuMs(UserId user, SimTime from, SimTime to) const {
  double total = 0.0;
  for (GpuGeneration gen : cluster::kAllGenerations) {
    total += GpuMs(user, gen, from, to);
  }
  return total;
}

GpuSeconds FairnessLedger::GpuTime(UserId user, GpuGeneration gen, SimTime from,
                                   SimTime to) const {
  return GpuSeconds::FromMillis(GpuMs(user, gen, from, to));
}

GpuSeconds FairnessLedger::GpuTime(UserId user, SimTime from, SimTime to) const {
  return GpuSeconds::FromMillis(GpuMs(user, from, to));
}

const simkit::TimeSeries& FairnessLedger::DemandSeries(UserId user,
                                                       GpuGeneration gen) const {
  static const simkit::TimeSeries kEmpty;
  const PerUser* record = Find(user);
  if (record == nullptr) {
    return kEmpty;
  }
  return record->demand[GenerationIndex(gen)];
}

double FairnessLedger::DemandAt(UserId user, GpuGeneration gen, SimTime time) const {
  return DemandSeries(user, gen).ValueAt(time, 0.0);
}

double FairnessLedger::TotalDemandAt(UserId user, SimTime time) const {
  double total = 0.0;
  for (GpuGeneration gen : cluster::kAllGenerations) {
    total += DemandAt(user, gen, time);
  }
  return total;
}

std::vector<UserId> FairnessLedger::KnownUsers() const {
  std::vector<UserId> users;
  users.reserve(per_user_.size());
  for (uint32_t u = 0; u < per_user_.size(); ++u) {
    if (known_[u]) {
      users.push_back(UserId(u));
    }
  }
  return users;
}

}  // namespace gfair::sched
