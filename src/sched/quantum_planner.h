// QuantumPlanner — the pure planning layer of the quantum pipeline.
//
// Maps a read-only view of cluster + stride state to a SchedulePlan: for
// each up server, the jobs that should hold its GPUs for the coming quantum
// (the per-server stride selection). No side effects — the planner mutates
// neither the executor, the residency, nor the strides; committing the plan
// (virtual-time advance, dirty-flag clear, suspend/resume) is the facade's
// job. That purity is what allows diffing against a live cluster, replanning
// in tests without perturbing a run, and — later — sharding the per-server
// loop across threads.
//
// Dirty-set skip. A server is planned only when its schedule can have
// changed; otherwise it is skipped outright and per-quantum planning cost
// becomes proportional to churn, not cluster size. Skipping is sound when
// BOTH hold:
//
//   (a) !index.plan_dirty(server) — no arrival/completion/migration, ticket
//       change, runnable toggle, or up/down transition since the facade last
//       committed a plan for this server (ClusterStateIndex maintains the
//       flag); and
//   (b) server.num_busy() == stride.DemandLoad() — the GPUs held by running
//       jobs exactly cover the runnable residents' demand.
//
// Why that implies an empty diff: running jobs are always runnable residents
// of their server's stride (the facade suspends before any detach), so each
// running job contributes its whole gang to both sides of (b); equality
// therefore forces the running set to BE the runnable set. And since total
// runnable demand equals busy ≤ capacity, a selection walk admits every
// candidate — the target is exactly the runnable set, i.e. exactly what is
// already running. Nothing to suspend, nothing to resume. Condition (a)
// guards the cancel-out hole (b) alone would leave: simultaneous offsetting
// changes (e.g. a job finishing while an equal-gang job arrives suspended)
// keep busy == demand while the target genuinely changed.
//
// A skipped server still owes its virtual-time advance (the floor at the
// minimum runnable pass that selection used to apply); the planner reports
// it in SchedulePlan::skipped_vt from a heap peek without planning.
#ifndef GFAIR_SCHED_QUANTUM_PLANNER_H_
#define GFAIR_SCHED_QUANTUM_PLANNER_H_

#include <vector>

#include "common/types.h"
#include "sched/cluster_state_view.h"
#include "sched/schedule_plan.h"

namespace gfair::sched {

class QuantumPlanner {
 public:
  // The planner sees cluster + stride state only through the deep-const
  // ClusterStateView: a mutation from planning code is a compile error, not
  // a convention (the old comment-only contract).
  explicit QuantumPlanner(ClusterStateView view) : view_(view) {}

  // Plans every up server (ascending id), skipping provably-unchanged ones.
  // Overwrites `plan`.
  void PlanTick(SchedulePlan* plan) const;

  // The per-server step PlanTick composes: appends either a ServerTarget
  // (planned) or a skipped_vt entry (skip conditions hold) for `server`.
  // Returns true when the server was planned. Exposed so the facade can fuse
  // planning into its per-server tick loop while the server's stride state
  // is cache-hot; servers are planned independently, so per-server calls in
  // ascending id order build exactly PlanTick's plan. Precondition: up.
  // [[nodiscard]]: the caller owes the commit step (virtual-time advance +
  // dirty clear) only for planned servers, so the planned/skipped outcome
  // must not be dropped.
  [[nodiscard]] bool PlanServerOrSkip(ServerId server, SchedulePlan* plan) const;

  // Plans one server into `plan` (no skip check). Precondition: up.
  void PlanServer(ServerId server, SchedulePlan* plan) const;

 private:
  const ClusterStateView view_;
  mutable std::vector<JobId> select_scratch_;
};

}  // namespace gfair::sched

#endif  // GFAIR_SCHED_QUANTUM_PLANNER_H_
