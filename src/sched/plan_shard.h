// PlanShard — one shard's private pipeline state for the sharded quantum
// tick (plan_shards > 1), with phase-capability access control.
//
// Each shard owns a planner/differ pair (both carry per-call scratch), its
// own plan and delta, the per-diffed-server offsets into that delta, and
// the running jobs whose profiler samples the reduce step replays serially.
//
// The tick's fork-join discipline is enforced in the type system
// (common/phase_tokens.h): every mutating stage accessor requires a
// ShardToken — mintable only by the scheduler facade, granted per shard
// inside the plan fan-out — and the cross-shard merge requires a
// ReduceToken, mintable only at the tick's serial points. Parallel code
// reaching for another phase's state is therefore a compile error (pinned
// by the WILL_FAIL negative-compile ctests), complementing the
// comment-fenced `shard-locality` lint region in gandiva_fair.cc.
#ifndef GFAIR_SCHED_PLAN_SHARD_H_
#define GFAIR_SCHED_PLAN_SHARD_H_

#include <cstddef>
#include <vector>

#include "common/phase_tokens.h"
#include "sched/plan_differ.h"
#include "sched/quantum_planner.h"
#include "sched/schedule_plan.h"

namespace gfair::sched {

// A deferred profiler sample: everything RecordSample needs except the
// observed rate itself, captured while the job's info is cache-hot in the
// shard's charge walk. The reduce step's serial replay then touches only
// the executor's segment state per job.
struct PendingSample {
  JobId job;
  workload::ModelId model;
  cluster::GpuGeneration gen;  // the home server's pool
  int gang_size;
};

class PlanShard {
 public:
  // A shard covers the fixed contiguous server id range [begin, end).
  PlanShard(QuantumPlanner planner, PlanDiffer differ, size_t server_begin,
            size_t server_end);

  size_t server_begin() const { return server_begin_; }
  size_t server_end() const { return server_end_; }

  // --- fan-out phase (requires the shard's ShardToken) ---

  // Resets the per-tick value state; called at the top of the shard's
  // charge/plan/diff pass.
  void BeginTick(common::ShardToken);

  QuantumPlanner& planner(common::ShardToken) { return planner_; }
  PlanDiffer& differ(common::ShardToken) { return differ_; }
  SchedulePlan& plan(common::ShardToken) { return plan_; }
  ScheduleDelta& delta(common::ShardToken) { return delta_; }
  // Per diffed server, offsets into delta().ops.
  std::vector<size_t>& slice_begins(common::ShardToken) {
    return slice_begins_;
  }
  // Running jobs buffered in charge order for the reduce's sample replay.
  std::vector<PendingSample>& pending_samples(common::ShardToken) {
    return pending_samples_;
  }

  // --- reduce phase (requires the tick's serial ReduceToken) ---

  const std::vector<PendingSample>& pending_samples(common::ReduceToken) const {
    return pending_samples_;
  }

  // Appends this shard's plan and delta onto the merged streams, re-basing
  // target-job spans and slice offsets. Shards are merged in ascending
  // shard (= server) order by the caller, so the merged streams equal the
  // serial planner's for any shard count.
  void MergeInto(SchedulePlan* plan, ScheduleDelta* delta,
                 std::vector<size_t>* slice_begins, common::ReduceToken) const;

 private:
  QuantumPlanner planner_;
  PlanDiffer differ_;
  SchedulePlan plan_;
  ScheduleDelta delta_;
  std::vector<size_t> slice_begins_;
  std::vector<PendingSample> pending_samples_;
  size_t server_begin_ = 0;
  size_t server_end_ = 0;
};

}  // namespace gfair::sched

#endif  // GFAIR_SCHED_PLAN_SHARD_H_
