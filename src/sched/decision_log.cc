#include "sched/decision_log.h"

#include "common/check.h"

namespace gfair::sched {

const char* DecisionTypeName(DecisionType type) {
  switch (type) {
    case DecisionType::kPlace:
      return "place";
    case DecisionType::kResume:
      return "resume";
    case DecisionType::kSuspend:
      return "suspend";
    case DecisionType::kMigrateBalance:
      return "migrate/balance";
    case DecisionType::kMigrateConserve:
      return "migrate/conserve";
    case DecisionType::kMigrateSteal:
      return "migrate/steal";
    case DecisionType::kMigrateProbe:
      return "migrate/probe";
    case DecisionType::kMigrateTrade:
      return "migrate/trade";
    case DecisionType::kTrade:
      return "trade";
  }
  return "?";
}

DecisionType DecisionFor(MigrationCause cause) {
  switch (cause) {
    case MigrationCause::kBalance:
      return DecisionType::kMigrateBalance;
    case MigrationCause::kConserve:
      return DecisionType::kMigrateConserve;
    case MigrationCause::kSteal:
      return DecisionType::kMigrateSteal;
    case MigrationCause::kProbe:
      return DecisionType::kMigrateProbe;
    case MigrationCause::kTrade:
      return DecisionType::kMigrateTrade;
  }
  return DecisionType::kMigrateBalance;
}

int64_t DecisionLog::TotalMigrations() const {
  return Count(DecisionType::kMigrateBalance) + Count(DecisionType::kMigrateConserve) +
         Count(DecisionType::kMigrateSteal) + Count(DecisionType::kMigrateProbe) +
         Count(DecisionType::kMigrateTrade);
}

void DecisionLog::Dump(std::ostream& os, size_t max_entries) const {
  const size_t start = ring_.size() > max_entries ? ring_.size() - max_entries : 0;
  for (size_t i = start; i < ring_.size(); ++i) {
    const Decision& d = EntryAt(i);
    os << FormatDuration(d.time) << "  " << DecisionTypeName(d.type);
    if (d.job.valid()) {
      os << "  job " << d.job;
    }
    if (d.from.valid()) {
      os << "  " << d.from << " -> " << d.to;
    } else if (d.to.valid()) {
      os << "  -> " << d.to;
    }
    os << '\n';
  }
}

}  // namespace gfair::sched
