// ClusterStateView — the deep-const read surface of the scheduler state.
//
// The quantum pipeline's planning stages (QuantumPlanner, PlanDiffer) are
// pure: they map cluster + stride state to value types and mutate nothing.
// Before this wrapper that purity was a comment-level contract — the planner
// held a `const ClusterStateIndex&`, but one `const_cast`, one mutable
// member, or one future accessor returning a non-const reference away from
// silently breaking reproducibility. The view makes the contract structural:
//
//  * it exposes ONLY the read-side queries (stride() const, loads, flags,
//    pool orderings) — the index's mutators (AddJob, SetTickets,
//    ClearPlanDirty, ...) simply do not exist on this type, so a mutation
//    from planning code is a compile error, not a convention;
//  * every accessor is const and returns by value or by const reference, so
//    const-ness propagates through to LocalStrideScheduler and Server
//    (deep const, not C++'s default shallow const);
//  * it is two pointers, passed by value — cheap enough to hand to every
//    planning helper without lifetime questions.
//
// tests/lint/const_view_must_not_compile.cc is the negative-compile proof;
// tests/sched/const_view_static_test.cc pins the read-only member surface
// with static_asserts that fail the build if a mutator ever leaks in.
#ifndef GFAIR_SCHED_CLUSTER_STATE_VIEW_H_
#define GFAIR_SCHED_CLUSTER_STATE_VIEW_H_

#include <cstddef>

#include "cluster/cluster.h"
#include "common/types.h"
#include "sched/cluster_state_index.h"
#include "sched/stride.h"

namespace gfair::sched {

class ClusterStateView {
 public:
  ClusterStateView(const cluster::Cluster& cluster, const ClusterStateIndex& index)
      : cluster_(&cluster), index_(&index) {}

  // --- cluster topology / occupancy (read-only) ---
  const cluster::Server& server(ServerId id) const { return cluster_->server(id); }
  const std::vector<cluster::Server>& servers() const { return cluster_->servers(); }
  const std::vector<ServerId>& servers_of(cluster::GpuGeneration gen) const {
    return cluster_->servers_of(gen);
  }
  size_t num_servers() const { return index_->num_servers(); }

  // --- per-server stride state (deep const: mutators are inaccessible) ---
  const LocalStrideScheduler& stride(ServerId server) const {
    return index_->stride(server);
  }

  // --- scheduler flags ---
  bool plan_dirty(ServerId server) const { return index_->plan_dirty(server); }
  bool draining(ServerId server) const { return index_->draining(server); }
  bool down(ServerId server) const { return index_->down(server); }

  // --- load queries ---
  // Dimensionless ordering key (see ClusterStateIndex::NormTicketLoad).
  double NormTicketLoad(ServerId server) const {  // gfair-lint: allow(raw-double-in-sched-api)
    return index_->NormTicketLoad(server);
  }
  ServerId LeastLoadedServer(cluster::GpuGeneration gen, int min_gpus,
                             ServerId exclude = ServerId::Invalid()) const {
    return index_->LeastLoadedServer(gen, min_gpus, exclude);
  }

 private:
  const cluster::Cluster* cluster_;
  const ClusterStateIndex* index_;
};

}  // namespace gfair::sched

#endif  // GFAIR_SCHED_CLUSTER_STATE_VIEW_H_
