#include "sched/snapshot.h"

#include "common/table.h"

namespace gfair::sched {

int ClusterSnapshot::TotalBusyGpus() const {
  int busy = 0;
  for (const auto& server : servers) {
    busy += server.busy_gpus;
  }
  return busy;
}

int ClusterSnapshot::TotalGpus() const {
  int total = 0;
  for (const auto& server : servers) {
    total += server.num_gpus;
  }
  return total;
}

void ClusterSnapshot::Print(std::ostream& os) const {
  os << "cluster snapshot at " << FormatDuration(time) << ": " << TotalBusyGpus() << "/"
     << TotalGpus() << " GPUs busy\n";

  Table server_table({"server", "gen", "busy/gpus", "jobs", "demand load",
                      "ticket load", "state"});
  for (const auto& server : servers) {
    server_table.BeginRow()
        .Cell(std::to_string(server.id.value()))
        .Cell(cluster::GenerationName(server.generation))
        .Cell(std::to_string(server.busy_gpus) + "/" + std::to_string(server.num_gpus))
        .Cell(static_cast<int64_t>(server.resident_jobs))
        .Cell(server.demand_load, 2)
        .Cell(server.ticket_load, 3)
        .Cell(server.draining ? "draining" : "up");
  }
  server_table.Print(os, "servers");

  Table user_table({"user", "jobs", "entitlement K80/P40/P100/V100",
                    "resident K80/P40/P100/V100"});
  for (const auto& user : users) {
    auto quad = [](const cluster::PerGeneration<double>& values) {
      return FormatDouble(values[0], 1) + "/" + FormatDouble(values[1], 1) + "/" +
             FormatDouble(values[2], 1) + "/" + FormatDouble(values[3], 1);
    };
    user_table.BeginRow()
        .Cell(user.name)
        .Cell(static_cast<int64_t>(user.unfinished_jobs))
        .Cell(quad(user.entitlement_gpus))
        .Cell(quad(user.resident_demand));
  }
  user_table.Print(os, "users");
}

}  // namespace gfair::sched
