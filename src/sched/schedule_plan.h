// SchedulePlan / ScheduleDelta — the value types of the quantum pipeline.
//
// The quantum tick is split into three layers (see docs/ARCHITECTURE.md):
//
//   QuantumPlanner:  ClusterStateIndex snapshot  →  SchedulePlan   (pure)
//   PlanDiffer:      SchedulePlan × running set  →  ScheduleDelta  (pure)
//   Executor:        ApplyDelta(ScheduleDelta)                     (mutates)
//
// A SchedulePlan is the *desired* occupancy: for each planned server, the
// ordered set of jobs that should hold its GPUs for the coming quantum.
// Per-server target lists are spans into one flat job pool, so planning a
// 2000-GPU cluster allocates nothing after the first tick — both vectors are
// cleared and refilled in place.
//
// Migration decisions made between quanta (balancer passes, trades, steals,
// probes) are emitted into the same plan as MigrationDirectives, so every
// placement-changing intent flows through one type on its way to the
// executor and the decision log.
//
// A ScheduleDelta is the minimal set of executor verbs that moves the
// cluster from its current occupancy to the plan: per server, suspends
// strictly before resumes (a resume may need the GPUs a suspend frees),
// servers in plan (ascending id) order.
#ifndef GFAIR_SCHED_SCHEDULE_PLAN_H_
#define GFAIR_SCHED_SCHEDULE_PLAN_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.h"
#include "exec/schedule_op.h"
#include "sched/decision_log.h"

namespace gfair::sched {

// One cross-server move decided by a subsystem (balancer / trader /
// placement stealing), tagged with its cause for the decision log.
struct MigrationDirective {
  JobId job;
  ServerId dest;
  MigrationCause cause;
};

struct SchedulePlan {
  // Desired occupancy of one server, as [target_begin, target_end) into
  // `target_jobs`, in stride-selection order.
  struct ServerTarget {
    ServerId server;
    uint32_t target_begin = 0;
    uint32_t target_end = 0;
    // Minimum pass over the server's runnable residents (+inf when none):
    // the virtual-time floor the facade commits when it accepts the plan.
    Pass min_runnable_pass;
  };

  std::vector<JobId> target_jobs;       // flat pool backing all spans
  std::vector<ServerTarget> servers;    // planned servers, ascending id
  // Servers the planner skipped because their schedule provably cannot have
  // changed (see QuantumPlanner); they still owe a virtual-time advance,
  // carried here as (server, min runnable pass).
  std::vector<std::pair<ServerId, Pass>> skipped_vt;
  std::vector<MigrationDirective> migrations;

  void Clear() {
    target_jobs.clear();
    servers.clear();
    skipped_vt.clear();
    migrations.clear();
  }
};

struct ScheduleDelta {
  // Executor verbs in application order (exec::ScheduleOp: suspends carry
  // the server the job runs on; resumes the server whose GPUs it takes).
  std::vector<exec::ScheduleOp> ops;

  void Clear() { ops.clear(); }
  bool empty() const { return ops.empty(); }
};

}  // namespace gfair::sched

#endif  // GFAIR_SCHED_SCHEDULE_PLAN_H_
