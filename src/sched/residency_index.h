// ResidencyIndex — who lives where, and what each user demands.
//
// Owns the per-job scheduler bookkeeping (home server, charge/migration
// timestamps) and the per-user aggregates the monolith used to recompute by
// walking job sets on every read:
//  * per-user per-pool resident job sets (the ground truth),
//  * per-user per-pool resident GPU demand (sum of gang sizes — incremental,
//    exact because it is a sum of small integers),
//  * per-user per-pool weighted resident demand (sum of gang x weight —
//    cached with a dirty flag and recomputed in set-iteration order, so the
//    value is bit-identical to the recompute-on-read the monolith did, while
//    RefreshPoolTickets drops from O(jobs²) to O(jobs)),
//  * per-user unfinished-job counts, total outstanding demand, and the
//    sorted active-user set.
//
// In debug builds every cached aggregate is asserted against a full
// recompute at read time.
#ifndef GFAIR_SCHED_RESIDENCY_INDEX_H_
#define GFAIR_SCHED_RESIDENCY_INDEX_H_

#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cluster/gpu.h"
#include "common/sim_time.h"
#include "common/types.h"
#include "workload/job.h"

namespace gfair::sched {

class ResidencyIndex {
 public:
  struct JobInfo {
    ServerId home = ServerId::Invalid();  // resident/destination server
    // Immutable copies of the job's model and gang size (set at
    // registration). The quantum's charge-and-sample walk needs both for
    // every running job; carrying them here — in the info line the walk
    // already touches for last_charge — spares it a JobTable load per job.
    workload::ModelId model = workload::ModelId::Invalid();
    SimTime last_charge = kTimeZero;
    SimTime last_migration;  // initialized to "long ago"
    int gang_size = 0;
    bool migrating = false;
    // An outstanding pre-copy claim: the bulk checkpoint transfer is in
    // flight while the job stays resident (and schedulable) at `home`.
    // Cleared at cutover, at abandonment (finish/orphan/failure), or when
    // the scheduler drops the claim. A precopying job is never picked as a
    // migration candidate and never carries `migrating` at the same time.
    bool precopying = false;
  };

  explicit ResidencyIndex(const workload::JobTable& jobs) : jobs_(jobs) {}

  // --- job lifecycle ---
  // Registers an arriving job (unfinished count, total demand, JobInfo with
  // last_migration = long ago). Returns true when the user just became
  // active (its first unfinished job).
  bool RegisterJob(JobId id, UserId user, int gang_size);
  // The inverse, at job completion. Returns true when the user just became
  // inactive.
  bool DeregisterJob(JobId id, UserId user, int gang_size);

  // Defined inline: read per resident job per quantum.
  JobInfo& Info(JobId id) {
    GFAIR_CHECK_MSG(id.value() < job_info_.size() && job_registered_[id.value()],
                    "unknown job");
    return job_info_[id.value()];
  }
  const JobInfo& Info(JobId id) const {
    GFAIR_CHECK_MSG(id.value() < job_info_.size() && job_registered_[id.value()],
                    "unknown job");
    return job_info_[id.value()];
  }

  // Cache hint for an upcoming Info() call in a walk over scattered job ids.
  // No effect on behavior.
  void PrefetchInfo(JobId id) const {
    if (id.value() < job_info_.size()) {
      __builtin_prefetch(&job_info_[id.value()]);
    }
  }

  // --- pool residency (ground truth for demand aggregates) ---
  void Attach(UserId user, cluster::GpuGeneration gen, JobId id);
  void Detach(UserId user, cluster::GpuGeneration gen, JobId id);
  // The user's resident jobs on a pool; empty set when the user is unknown.
  const std::unordered_set<JobId>& PoolJobs(UserId user, cluster::GpuGeneration gen) const;

  // --- aggregates ---
  // Resident GPU demand of `user` on `gen` (sum of gang sizes). O(1).
  double ResidentDemand(UserId user, cluster::GpuGeneration gen) const;
  // Resident demand weighted by job weight (sum of gang x weight). O(1)
  // amortized (cached; recomputed once per residency change).
  double WeightedResidentDemand(UserId user, cluster::GpuGeneration gen) const;
  // Total outstanding GPU demand (includes in-flight migrations, which are
  // resident in no pool set). O(1).
  double TotalDemand(UserId user) const;
  int UnfinishedJobs(UserId user) const;

  // Users with at least one unfinished job, ascending. The set itself is
  // maintained incrementally; ActiveUsers() materializes the sorted vector
  // the monolith rebuilt per call.
  const std::set<UserId>& active_users() const { return active_users_; }
  std::vector<UserId> ActiveUsers() const {
    return std::vector<UserId>(active_users_.begin(), active_users_.end());
  }

 private:
  struct UserPools {
    cluster::PerGeneration<std::unordered_set<JobId>> jobs;
    cluster::PerGeneration<double> resident_demand{};
    mutable cluster::PerGeneration<double> weighted_demand{};
    mutable cluster::PerGeneration<bool> weighted_dirty{};
  };

  const workload::JobTable& jobs_;
  // Dense, indexed by job id; slots are created by RegisterJob and never
  // erased (the monolith kept every job's info alive too, and references
  // from Info() must stay valid across detach/deregister). Info() is called
  // for every resident job every quantum — a hash probe per call dominates.
  std::vector<JobInfo> job_info_;
  std::vector<bool> job_registered_;
  std::unordered_map<UserId, UserPools> user_pools_;
  std::unordered_map<UserId, int> user_unfinished_jobs_;
  std::unordered_map<UserId, double> user_total_demand_;
  std::set<UserId> active_users_;
};

}  // namespace gfair::sched

#endif  // GFAIR_SCHED_RESIDENCY_INDEX_H_
