#include "sched/invariant_checker.h"

#include <cmath>
#include <sstream>

#include "cluster/cluster.h"
#include "exec/executor.h"
#include "sched/cluster_state_index.h"
#include "sched/gandiva_fair.h"
#include "sched/residency_index.h"
#include "workload/job.h"

namespace gfair::sched {

namespace {
// Entitlements are ratios of sums of doubles; conservation holds to rounding.
constexpr double kEntitlementEps = 1e-6;
// Passes are monotone by construction; allow only representation noise.
constexpr Stride kPassEps(1e-9);

std::string Describe(const char* what, JobId job, ServerId server) {
  std::ostringstream os;
  os << what << " (job " << job << ", server " << server << ")";
  return os.str();
}
}  // namespace

const std::vector<InvariantChecker::Registration>& InvariantChecker::Registry() {
  static const std::vector<Registration> kRegistry = {
      {"gang-residency", &InvariantChecker::CheckGangResidency},
      {"entitlement-conservation", &InvariantChecker::CheckEntitlementConservation},
      {"pass-monotonicity", &InvariantChecker::CheckPassMonotonicity},
      {"delta-ordering", &InvariantChecker::CheckDeltaOrdering},
      {"down-holds-nothing", &InvariantChecker::CheckDownServersHoldNothing},
      {"gpu-time-conservation", &InvariantChecker::CheckGpuTimeConservation},
  };
  return kRegistry;
}

std::vector<std::string> InvariantChecker::RegisteredNames() {
  std::vector<std::string> names;
  for (const Registration& reg : Registry()) {
    names.emplace_back(reg.name);
  }
  return names;
}

std::vector<std::string> InvariantChecker::Check() {
  std::vector<std::string> violations;
  for (const Registration& reg : Registry()) {
    std::vector<std::string> found;
    (this->*reg.fn)(&found);
    for (std::string& v : found) {
      violations.push_back(std::string(reg.name) + ": " + v);
    }
  }

  // Advance the pass-monotonicity baseline to the current state.
  const ClusterStateIndex& index = sched_.cluster_index();
  if (last_pass_.size() < env_.jobs.size()) {
    last_pass_.resize(env_.jobs.size());
  }
  last_vt_.resize(index.num_servers());
  for (const auto& server : env_.cluster.servers()) {
    const LocalStrideScheduler& stride = index.stride(server.id());
    last_vt_[server.id().value()] = stride.VirtualTime();
    for (JobId id : stride.ResidentJobs()) {
      last_pass_[id.value()] = JobBaseline{server.id(), stride.PassOf(id)};
    }
  }
  // Jobs no longer resident anywhere lose their baseline.
  for (size_t i = 0; i < env_.jobs.size(); ++i) {
    const workload::Job& job = env_.jobs.Get(JobId(static_cast<uint32_t>(i)));
    if (!job.resident() || job.state == workload::JobState::kMigrating) {
      last_pass_[i] = JobBaseline{};
    }
  }
  last_check_ = env_.sim.Now();
  has_baseline_ = true;
  return violations;
}

// A resident job holds its whole gang (running) or nothing (suspended), only
// on its home server; every occupied slot belongs to a running stride
// resident.
void InvariantChecker::CheckGangResidency(std::vector<std::string>* out) const {
  const ClusterStateIndex& index = sched_.cluster_index();
  for (const auto& server : env_.cluster.servers()) {
    const ServerId sid = server.id();
    const LocalStrideScheduler& stride = index.stride(sid);
    int held_total = 0;
    for (JobId id : stride.ResidentJobs()) {
      const workload::Job& job = env_.jobs.Get(id);
      const int held = server.CountHeldBy(id);
      held_total += held;
      if (job.server != sid) {
        out->push_back(Describe("stride resident whose home is elsewhere", id, sid));
      }
      if (env_.exec.IsRunning(id)) {
        if (held != job.gang_size) {
          out->push_back(Describe("running job holding a partial gang", id, sid));
        }
      } else if (held != 0) {
        out->push_back(Describe("non-running job holding GPUs", id, sid));
      }
    }
    // All occupied slots are accounted for by stride residents: a foreign
    // occupant would make held_total (over residents) fall short of busy.
    if (held_total != server.num_busy()) {
      out->push_back(Describe("occupied slots not owned by stride residents",
                              JobId::Invalid(), sid));
    }
  }
}

// Per pool: entitlements of active users are non-negative, finite, and sum
// to the pool's UP capacity — trading redistributes GPUs, never mints them.
void InvariantChecker::CheckEntitlementConservation(
    std::vector<std::string>* out) const {
  const auto& active = sched_.residency().active_users();
  if (active.empty()) {
    return;
  }
  for (cluster::GpuGeneration gen : cluster::kAllGenerations) {
    const int pool = env_.cluster.up_gpus(gen);
    if (pool == 0) {
      continue;
    }
    double total = 0.0;
    for (UserId user : active) {
      const double e = sched_.EntitlementGpus(user, gen);
      if (!std::isfinite(e) || e < 0.0) {
        std::ostringstream os;
        os << "non-finite or negative entitlement for user " << user << " on "
           << cluster::GenerationName(gen) << " (" << e << ")";
        out->push_back(os.str());
      }
      total += e;
    }
    if (std::abs(total - pool) > kEntitlementEps * std::max(1, pool)) {
      std::ostringstream os;
      os << "entitlements sum to " << total << " but up capacity is " << pool
         << " on " << cluster::GenerationName(gen);
      out->push_back(os.str());
    }
  }
}

// Stride passes and per-server virtual times never move backwards. A job's
// pass is compared only while it stays resident on the same server with no
// migration since the previous check (migration legitimately re-floors it).
void InvariantChecker::CheckPassMonotonicity(std::vector<std::string>* out) const {
  if (!has_baseline_) {
    return;
  }
  const ClusterStateIndex& index = sched_.cluster_index();
  const ResidencyIndex& residency = sched_.residency();
  for (const auto& server : env_.cluster.servers()) {
    const ServerId sid = server.id();
    const LocalStrideScheduler& stride = index.stride(sid);
    if (sid.value() < last_vt_.size() &&
        stride.VirtualTime() < last_vt_[sid.value()] - kPassEps) {
      out->push_back(Describe("virtual time moved backwards", JobId::Invalid(), sid));
    }
    for (JobId id : stride.ResidentJobs()) {
      if (id.value() >= last_pass_.size()) {
        continue;  // arrived since the previous check
      }
      const JobBaseline& prev = last_pass_[id.value()];
      if (prev.server != sid) {
        continue;  // migrated (or first seen) — new floor is legitimate
      }
      if (residency.Info(id).last_migration >= last_check_) {
        continue;  // round-trip migration within the window
      }
      if (stride.PassOf(id) < prev.pass - kPassEps) {
        out->push_back(Describe("stride pass moved backwards", id, sid));
      }
    }
  }
}

// Within each server's contiguous slice of the last delta, suspends precede
// resumes: the GPUs a resumed gang takes were freed in the same slice.
void InvariantChecker::CheckDeltaOrdering(std::vector<std::string>* out) const {
  ServerId current = ServerId::Invalid();
  bool seen_resume = false;
  for (const exec::ScheduleOp& op : sched_.last_delta().ops) {
    if (op.server != current) {
      current = op.server;
      seen_resume = false;
    }
    if (op.resume) {
      seen_resume = true;
    } else if (seen_resume) {
      out->push_back(
          Describe("suspend after resume in a server slice", op.job, op.server));
    }
  }
}

// The ledger never credits more GPU time than physically exists: summed over
// users, delivered GPU time in the window since the previous check is at
// most (total physical GPUs) x (elapsed wall time). Runs entirely in
// GpuSeconds — the unit layer's runtime enforcement companion to the
// compile-time checks in common/units.h.
void InvariantChecker::CheckGpuTimeConservation(std::vector<std::string>* out) const {
  if (!has_baseline_) {
    return;
  }
  const SimTime now = env_.sim.Now();
  if (now <= last_check_) {
    return;
  }
  const FairnessLedger& ledger = sched_.ledger();
  GpuSeconds delivered;
  for (UserId user : ledger.KnownUsers()) {
    delivered += ledger.GpuTime(user, last_check_, now);
  }
  const GpuSeconds capacity = GpuSeconds::FromMillis(
      static_cast<double>(env_.cluster.total_gpus()) *
      static_cast<double>(now - last_check_));
  // Per-segment accounting is exact integer-ms arithmetic widened to double;
  // leave only representation noise, scaled to the window.
  const GpuSeconds tolerance = GpuSeconds(1e-9) + capacity * 1e-12;
  if (delivered > capacity + tolerance) {
    std::ostringstream os;
    os << "ledger credited " << delivered << " GPU-seconds but capacity over the window is "
       << capacity;
    out->push_back(os.str());
  }
}

// A down server holds no GPUs, hosts no stride residents, and is no
// non-migrating job's home (orphan handling detached everything).
void InvariantChecker::CheckDownServersHoldNothing(
    std::vector<std::string>* out) const {
  const ClusterStateIndex& index = sched_.cluster_index();
  for (const auto& server : env_.cluster.servers()) {
    if (server.up()) {
      continue;
    }
    const ServerId sid = server.id();
    if (server.num_busy() != 0) {
      out->push_back(Describe("down server holds GPUs", JobId::Invalid(), sid));
    }
    if (index.stride(sid).num_jobs() != 0) {
      out->push_back(
          Describe("down server has stride residents", JobId::Invalid(), sid));
    }
  }
  for (size_t i = 0; i < env_.jobs.size(); ++i) {
    const workload::Job& job = env_.jobs.Get(JobId(static_cast<uint32_t>(i)));
    if (job.finished() || !job.resident() ||
        job.state == workload::JobState::kMigrating) {
      continue;  // a migration target that died mid-flight bounces on landing
    }
    if (!env_.cluster.server(job.server).up()) {
      out->push_back(Describe("job resident on a down server", job.id, job.server));
    }
  }
}

}  // namespace gfair::sched
