#include "sched/plan_shard.h"

#include <cstdint>
#include <utility>

namespace gfair::sched {

PlanShard::PlanShard(QuantumPlanner planner, PlanDiffer differ,
                     size_t server_begin, size_t server_end)
    : planner_(std::move(planner)),
      differ_(std::move(differ)),
      server_begin_(server_begin),
      server_end_(server_end) {}

void PlanShard::BeginTick(common::ShardToken) {
  plan_.Clear();
  delta_.Clear();
  slice_begins_.clear();
  pending_samples_.clear();
}

void PlanShard::MergeInto(SchedulePlan* plan, ScheduleDelta* delta,
                          std::vector<size_t>* slice_begins,
                          common::ReduceToken) const {
  // Plan merge: re-base each server target's span into the merged
  // target-job pool. (Shard plans carry no migrations — directives are
  // emitted between ticks or after the apply, straight into the merged
  // plan.)
  const uint32_t job_base = static_cast<uint32_t>(plan->target_jobs.size());
  plan->target_jobs.insert(plan->target_jobs.end(), plan_.target_jobs.begin(),
                           plan_.target_jobs.end());
  for (const SchedulePlan::ServerTarget& target : plan_.servers) {
    plan->servers.push_back(SchedulePlan::ServerTarget{
        target.server, target.target_begin + job_base,
        target.target_end + job_base, target.min_runnable_pass});
  }
  plan->skipped_vt.insert(plan->skipped_vt.end(), plan_.skipped_vt.begin(),
                          plan_.skipped_vt.end());
  // Delta merge, re-basing each diffed server's slice offset.
  const size_t ops_base = delta->ops.size();
  for (const size_t begin : slice_begins_) {
    slice_begins->push_back(ops_base + begin);
  }
  delta->ops.insert(delta->ops.end(), delta_.ops.begin(), delta_.ops.end());
}

}  // namespace gfair::sched
