#include "sched/residency_index.h"

#include <cmath>

#include "common/check.h"
#include "common/sorted.h"

namespace gfair::sched {

namespace {
// "Long ago" sentinel for last_migration so fresh jobs pass interval checks.
constexpr SimTime kLongAgo = -(int64_t{1} << 60);
}  // namespace

bool ResidencyIndex::RegisterJob(JobId id, UserId user, int gang_size) {
  if (id.value() >= job_info_.size()) {
    job_info_.resize(id.value() + 1);
    job_registered_.resize(id.value() + 1, false);
  }
  GFAIR_CHECK_MSG(!job_registered_[id.value()], "job already registered");
  JobInfo info;
  info.model = jobs_.Get(id).model;
  info.gang_size = gang_size;
  info.last_migration = kLongAgo;
  job_info_[id.value()] = info;
  job_registered_[id.value()] = true;

  const int count = (user_unfinished_jobs_[user] += 1);
  user_total_demand_[user] += gang_size;
  if (count == 1) {
    active_users_.insert(user);
    return true;
  }
  return false;
}

bool ResidencyIndex::DeregisterJob(JobId id, UserId user, int gang_size) {
  Info(id).home = ServerId::Invalid();

  auto it = user_unfinished_jobs_.find(user);
  GFAIR_CHECK(it != user_unfinished_jobs_.end() && it->second > 0);
  it->second -= 1;
  user_total_demand_[user] -= gang_size;
  if (it->second == 0) {
    active_users_.erase(user);
    return true;
  }
  return false;
}

void ResidencyIndex::Attach(UserId user, cluster::GpuGeneration gen, JobId id) {
  const size_t g = cluster::GenerationIndex(gen);
  UserPools& pools = user_pools_[user];
  GFAIR_CHECK(pools.jobs[g].insert(id).second);
  pools.resident_demand[g] += jobs_.Get(id).gang_size;
  pools.weighted_dirty[g] = true;
}

void ResidencyIndex::Detach(UserId user, cluster::GpuGeneration gen, JobId id) {
  const size_t g = cluster::GenerationIndex(gen);
  auto it = user_pools_.find(user);
  GFAIR_CHECK_MSG(it != user_pools_.end(), "detach for unknown user");
  GFAIR_CHECK(it->second.jobs[g].erase(id) == 1);
  it->second.resident_demand[g] -= jobs_.Get(id).gang_size;
  it->second.weighted_dirty[g] = true;
}

const std::unordered_set<JobId>& ResidencyIndex::PoolJobs(UserId user,
                                                          cluster::GpuGeneration gen) const {
  static const std::unordered_set<JobId> kEmpty;
  auto it = user_pools_.find(user);
  if (it == user_pools_.end()) {
    return kEmpty;
  }
  return it->second.jobs[cluster::GenerationIndex(gen)];
}

double ResidencyIndex::ResidentDemand(UserId user, cluster::GpuGeneration gen) const {
  auto it = user_pools_.find(user);
  if (it == user_pools_.end()) {
    return 0.0;
  }
  const size_t g = cluster::GenerationIndex(gen);
#ifndef NDEBUG
  // Debug cross-check summing small ints (exact in double, so the order of
  // the unordered walk and the == compare are both sound here).
  double recompute = 0.0;
  for (JobId id : it->second.jobs[g]) {  // gfair-lint: allow(unordered-iter)
    recompute += jobs_.Get(id).gang_size;
  }
  GFAIR_DCHECK_MSG(recompute == it->second.resident_demand[g],  // gfair-lint: allow(float-eq)
                   "incremental resident demand drifted from full recompute");
#endif
  return it->second.resident_demand[g];
}

double ResidencyIndex::WeightedResidentDemand(UserId user,
                                              cluster::GpuGeneration gen) const {
  auto it = user_pools_.find(user);
  if (it == user_pools_.end()) {
    return 0.0;
  }
  const size_t g = cluster::GenerationIndex(gen);
  const UserPools& pools = it->second;
  if (pools.weighted_dirty[g]) {
    // Recomputed in SORTED job-id order: this is a float accumulation that
    // feeds per-job tickets, so its summation order must not depend on the
    // hash set's platform-specific iteration order. (Any fixed order works;
    // sorted makes cached reads bit-identical to uncached ones AND across
    // platforms. The frozen legacy oracle sums in the same order.)
    double total = 0.0;
    for (JobId id : common::SortedKeys(pools.jobs[g])) {
      const workload::Job& job = jobs_.Get(id);
      total += job.gang_size * job.weight;
    }
    pools.weighted_demand[g] = total;
    pools.weighted_dirty[g] = false;
  }
  return pools.weighted_demand[g];
}

double ResidencyIndex::TotalDemand(UserId user) const {
  auto it = user_total_demand_.find(user);
  return it != user_total_demand_.end() ? it->second : 0.0;
}

int ResidencyIndex::UnfinishedJobs(UserId user) const {
  auto it = user_unfinished_jobs_.find(user);
  return it != user_unfinished_jobs_.end() ? it->second : 0;
}

}  // namespace gfair::sched
