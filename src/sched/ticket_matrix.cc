#include "sched/ticket_matrix.h"

namespace gfair::sched {

void TicketMatrix::RegisterUser(UserId user, Tickets base) {
  GFAIR_CHECK(user.valid());
  GFAIR_CHECK(base > 0.0);
  Row row;
  row.base = base;
  row.per_gen.fill(base);
  rows_[user] = row;
}

Tickets TicketMatrix::base(UserId user) const {
  auto it = rows_.find(user);
  GFAIR_CHECK_MSG(it != rows_.end(), "unknown user");
  return it->second.base;
}

Tickets TicketMatrix::Get(UserId user, cluster::GpuGeneration gen) const {
  auto it = rows_.find(user);
  GFAIR_CHECK_MSG(it != rows_.end(), "unknown user");
  return it->second.per_gen[cluster::GenerationIndex(gen)];
}

void TicketMatrix::Set(UserId user, cluster::GpuGeneration gen, Tickets tickets) {
  GFAIR_CHECK_MSG(tickets >= 0.0, "tickets cannot go negative");
  auto it = rows_.find(user);
  GFAIR_CHECK_MSG(it != rows_.end(), "unknown user");
  it->second.per_gen[cluster::GenerationIndex(gen)] = tickets;
}

void TicketMatrix::ResetToBase() {
  // Per-row reset on distinct keys: order-independent by construction.
  for (auto& [user, row] : rows_) {  // gfair-lint: allow(unordered-iter)
    row.per_gen.fill(row.base);
  }
}

}  // namespace gfair::sched
