// The trading layer's data contract: the typed epoch snapshot every
// allocation backend consumes (TradeInputs), the entitlement allocation it
// produces (TradeOutcome), and the knobs shared across backends
// (TradeConfig).
//
// The algorithms themselves live behind the IAllocationPolicy seam in
// sched/policy/ — the paper's greedy highest-vs-lowest exchange
// (GreedyTradePolicy, the default), a Themis-style finish-time-fairness
// auction, and a Gavel-style water-filling max-min. All of them are pure
// entitlement arithmetic; recomputing from base entitlements every epoch
// makes every reallocation implicitly revocable when demand or profiles
// change (a user's guaranteed share is never mortgaged beyond one epoch).
#ifndef GFAIR_SCHED_TRADE_H_
#define GFAIR_SCHED_TRADE_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "cluster/gpu.h"
#include "common/types.h"

namespace gfair::sched {

struct TradeConfig {
  // Trade only when borrower speedup exceeds lender speedup by this factor
  // (guards against profile noise producing churny, near-worthless trades).
  // Dimensionless multiplier on the lender's speedup, not itself a speedup.
  double min_speedup_gap = 1.4;  // gfair-lint: allow(raw-double-in-sched-api)

  enum class RateRule {
    kBorrowerSpeedup,  // paper's rule: lender takes the whole surplus
    kGeometricMean,    // surplus split: λ = sqrt(σ_lender · σ_borrower)
  };
  RateRule rate_rule = RateRule::kBorrowerSpeedup;

  // Under kBorrowerSpeedup the borrower trades at exact indifference, so any
  // friction (profile error, migration latency while jobs follow their
  // entitlements) turns into a small systematic loss. This margin discounts
  // the rate — λ = σ_borrower × (1 − margin) — leaving the borrower a buffer
  // while the lender still gains (the min_speedup_gap check keeps
  // λ above the lender's own speedup).
  double borrower_margin = 0.05;

  // Ignore trades moving less than this many fast GPUs.
  double min_trade_gpus = 0.5;
};

struct Trade {
  UserId lender;
  UserId borrower;
  cluster::GpuGeneration fast;
  cluster::GpuGeneration slow;
  double fast_gpus;   // moved lender -> borrower
  double slow_gpus;   // moved borrower -> lender (= rate * fast_gpus)
  Speedup rate;       // λ
  Speedup lender_speedup;
  Speedup borrower_speedup;
};

struct TradeInputs {
  // Users with outstanding demand; entitlements are computed over these.
  std::vector<UserId> active_users;
  // Base fair-share tickets per active user.
  std::unordered_map<UserId, Tickets> base_tickets;
  // Total outstanding GPU demand per active user (sum of unfinished gangs).
  std::unordered_map<UserId, double> total_demand_gpus;
  // GPUs per generation pool.
  cluster::PerGeneration<int> pool_sizes{};
  // Profiled speedup of the user's job mix between two pools; returns false
  // when profiles are insufficient (no trade involving that user/pair).
  std::function<bool(UserId, cluster::GpuGeneration fast, cluster::GpuGeneration slow,
                     Speedup* speedup)>
      user_speedup;
};

struct TradeOutcome {
  std::vector<Trade> trades;
  // Post-trade entitlement, in GPUs, per active user and pool. Unordered:
  // decision-affecting consumers must walk it via common::SortedItems (the
  // unordered-iter lint rule pins this).
  std::unordered_map<UserId, cluster::PerGeneration<double>> entitlements;
};

}  // namespace gfair::sched

#endif  // GFAIR_SCHED_TRADE_H_
