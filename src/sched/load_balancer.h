// LoadBalancer — periodic migration-based load balancing and drain batches.
//
// Every balance period, per generation pool: first a work-conservation pass
// (move waiting gangs from oversubscribed servers onto idle GPUs), then a
// fairness pass (even out per-server ticket load so every resident job's
// stride share is realizable). Also evacuates draining servers in bounded
// batches. Reads loads from the ClusterStateIndex; migrations go through
// the host.
#ifndef GFAIR_SCHED_LOAD_BALANCER_H_
#define GFAIR_SCHED_LOAD_BALANCER_H_

#include "sched/cluster_state_index.h"
#include "sched/residency_index.h"
#include "sched/scheduler_host.h"
#include "sched/scheduler_iface.h"

namespace gfair::sched {

struct GandivaFairConfig;

class LoadBalancer {
 public:
  LoadBalancer(const SchedulerEnv& env, const GandivaFairConfig& config,
               ClusterStateIndex& index, ResidencyIndex& residency,
               ISchedulerHost& host);

  // One balance tick: drain batches first, then both passes per pool.
  void Balance();

  // Drains one bounded batch of jobs off every draining server.
  void DrainBatch();

 private:
  const SchedulerEnv& env_;
  const GandivaFairConfig& config_;
  ClusterStateIndex& index_;
  ResidencyIndex& residency_;
  ISchedulerHost& host_;
};

}  // namespace gfair::sched

#endif  // GFAIR_SCHED_LOAD_BALANCER_H_
