#include "sched/trade_coordinator.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/log.h"
#include "common/sorted.h"
#include "sched/gandiva_fair.h"

namespace gfair::sched {

using cluster::GenerationIndex;
using cluster::GpuGeneration;
using cluster::kAllGenerations;
using workload::Job;

TradeCoordinator::TradeCoordinator(const SchedulerEnv& env,
                                   const GandivaFairConfig& config,
                                   ClusterStateIndex& index, ResidencyIndex& residency,
                                   TicketMatrix& tickets, DecisionLog& decisions,
                                   ISchedulerHost& host)
    : env_(env),
      config_(config),
      index_(index),
      residency_(residency),
      ticket_matrix_(tickets),
      decisions_(decisions),
      host_(host),
      policy_(AllocationPolicyRegistry::Instance().Create(config.allocation_policy,
                                                          config.trade)) {
  GFAIR_CHECK_MSG(policy_ != nullptr,
                  AllocationPolicyRegistry::Instance()
                      .UnknownPolicyMessage(config.allocation_policy)
                      .c_str());
  profiles_ = ProfileStore(config_.profile_min_samples);
}

bool TradeCoordinator::UserSpeedup(UserId user, GpuGeneration fast,
                                   GpuGeneration slow, Speedup* out) const {
  GFAIR_CHECK(out != nullptr);
  // Demand-weighted mean over the user's resident jobs with usable profiles.
  // Sorted order: the accumulation is floating-point, so summation order
  // reaches the quantized speedup — hash-set order would make the
  // lender/borrower matching platform-dependent.
  double weight_sum = 0.0;
  Speedup weighted;
  for (GpuGeneration gen : kAllGenerations) {
    for (JobId id : common::SortedKeys(residency_.PoolJobs(user, gen))) {
      const Job& job = env_.jobs.Get(id);
      const auto& model = env_.zoo.Get(job.model);
      if (!model.FitsGeneration(fast) || !model.FitsGeneration(slow)) {
        continue;  // this job could not move between these pools
      }
      Speedup speedup;
      if (profiles_.Speedup(job.model, fast, slow, &speedup)) {
        weighted += speedup * job.gang_size;
        weight_sum += job.gang_size;
      }
    }
  }
  if (weight_sum <= 0.0) {
    return false;
  }
  // Quantize to 0.25 steps: profile noise on the raw mean flips the
  // lender/borrower matching between epochs, and every flip costs a round of
  // residency migrations before the new entitlements are realized. Floor
  // rather than round — the trade rate is the borrower's speedup, so any
  // upward bias makes borrowers systematically overpay.
  *out = std::max(Speedup::Unit(), FloorQuantize(weighted / weight_sum, 4.0));
  return true;
}

void TradeCoordinator::RunProbes() {
  int budget = config_.max_probes_per_epoch;
  const SimTime now = env_.sim.Now();

  for (UserId user : residency_.active_users()) {
    if (budget <= 0) {
      break;
    }
    // Snapshot: EmitMigration mutates the residency sets. Sorted within each
    // pool so WHICH job gets the probe migration does not depend on hash
    // order.
    std::vector<JobId> resident;
    for (GpuGeneration gen : kAllGenerations) {
      for (JobId id : common::SortedKeys(residency_.PoolJobs(user, gen))) {
        resident.push_back(id);
      }
    }
    bool probed = false;
    for (JobId id : resident) {
      if (probed) {
        break;
      }
      const Job& job = env_.jobs.Get(id);
      const ResidencyIndex::JobInfo& info = residency_.Info(id);
      if (info.precopying ||
          now - info.last_migration < config_.min_migration_interval) {
        continue;
      }
      const GpuGeneration current = env_.cluster.server(info.home).generation();
      for (GpuGeneration missing : kAllGenerations) {
        if (missing == current || env_.cluster.total_gpus(missing) == 0) {
          continue;
        }
        if (!env_.zoo.Get(job.model).FitsGeneration(missing)) {
          continue;  // cannot even load there — nothing to profile
        }
        if (profiles_.HasEstimate(job.model, missing)) {
          continue;
        }
        // Cheapest server of the missing generation that can host the gang.
        const ServerId dest = index_.LeastLoadedServer(missing, job.gang_size);
        if (dest.valid()) {
          GFAIR_DLOG << "probe: job " << id << " -> " << cluster::GenerationName(missing);
          host_.EmitMigration(id, dest, MigrationCause::kProbe);
          ++probes_started_;
          --budget;
          probed = true;  // one probe per user per epoch
          break;
        }
      }
    }
  }
}

void TradeCoordinator::TradeEpoch() {
  if (!config_.enable_trading || !env_.cluster.heterogeneous()) {
    return;
  }
  const std::vector<UserId> active = residency_.ActiveUsers();
  if (active.size() < 2) {
    // Nobody to trade with: no probes either (a probe strands the lone
    // user's job on a slower pool with no trade flow to bring it back).
    ticket_matrix_.ResetToBase();
    host_.RefreshAllTickets();
    return;
  }
  RunProbes();

  TradeInputs inputs;
  inputs.active_users = active;
  for (UserId user : active) {
    // Matrix base = hierarchy-adjusted effective tickets (== the user's own
    // tickets when hierarchical sharing is off or the user is ungrouped).
    inputs.base_tickets[user] = ticket_matrix_.base(user);
    inputs.total_demand_gpus[user] = residency_.TotalDemand(user);
  }
  for (GpuGeneration gen : kAllGenerations) {
    // Trade over surviving capacity only: GPUs on down servers are not
    // anyone's to lend (identical to total_gpus when nothing is down).
    inputs.pool_sizes[GenerationIndex(gen)] = env_.cluster.up_gpus(gen);
  }
  inputs.user_speedup = [this](UserId user, GpuGeneration fast, GpuGeneration slow,
                               Speedup* out) {
    return UserSpeedup(user, fast, slow, out);
  };

  const TradeOutcome outcome = policy_->Allocate(inputs);

  ticket_matrix_.ResetToBase();
  if (!outcome.trades.empty()) {
    // Pool tickets become the traded entitlements (stride normalizes within
    // each pool, so entitlement GPUs double as tickets). Sets on distinct
    // users commute, but sorted order keeps the loop lint-clean and any
    // future logging deterministic.
    for (const auto& [user, entitlement] : common::SortedItems(outcome.entitlements)) {
      for (GpuGeneration gen : kAllGenerations) {
        ticket_matrix_.Set(user, gen,
                           std::max(entitlement[GenerationIndex(gen)], 0.0));
      }
    }
    executed_trades_.insert(executed_trades_.end(), outcome.trades.begin(),
                            outcome.trades.end());
    for (size_t i = 0; i < outcome.trades.size(); ++i) {
      decisions_.RecordTrade(env_.sim.Now(), outcome.trades[i].rate);
    }
  }
  host_.RefreshAllTickets();
  if (!outcome.trades.empty()) {
    RebalanceResidency(outcome);
  }
}

void TradeCoordinator::RebalanceResidency(const TradeOutcome& outcome) {
  int budget = config_.max_trade_migrations;
  const SimTime now = env_.sim.Now();

  // Sorted by user: the migration budget is consumed in user order, so WHICH
  // user's rebalance gets cut off when the budget runs out must not depend
  // on hash order.
  for (const auto& [user, entitlement] : common::SortedItems(outcome.entitlements)) {
    while (budget > 0) {
      cluster::PerGeneration<double> surplus{};
      for (GpuGeneration gen : kAllGenerations) {
        surplus[GenerationIndex(gen)] =
            entitlement[GenerationIndex(gen)] - residency_.ResidentDemand(user, gen);
      }
      // Most over-resident pool and most under-used entitlement.
      size_t over = 0;
      size_t under = 0;
      for (size_t g = 1; g < cluster::kNumGenerations; ++g) {
        if (surplus[g] < surplus[over]) {
          over = g;
        }
        if (surplus[g] > surplus[under]) {
          under = g;
        }
      }
      // Deadband: entitlements are fractional while residency moves in whole
      // gangs, so small mismatches are permanent — chasing them would
      // migrate the same jobs back and forth every epoch.
      if (surplus[over] > -1.0 || surplus[under] < 1.0) {
        break;
      }

      // Smallest gang that the destination surplus still covers. Sorted:
      // the smallest-gang tie now breaks to the lowest job id instead of
      // whichever the hash order visited first.
      JobId candidate = JobId::Invalid();
      int candidate_gang = INT32_MAX;
      for (JobId id : common::SortedKeys(residency_.PoolJobs(user, kAllGenerations[over]))) {
        const Job& job = env_.jobs.Get(id);
        const ResidencyIndex::JobInfo& info = residency_.Info(id);
        if (info.precopying ||
            now - info.last_migration < config_.min_migration_interval) {
          continue;
        }
        if (!env_.zoo.Get(job.model).FitsGeneration(kAllGenerations[under])) {
          continue;
        }
        if (job.gang_size <= surplus[under] && job.gang_size < candidate_gang) {
          candidate = id;
          candidate_gang = job.gang_size;
        }
      }
      if (!candidate.valid()) {
        break;
      }
      const GpuGeneration dest_gen = kAllGenerations[under];
      const ServerId dest = index_.LeastLoadedServer(dest_gen, candidate_gang);
      if (!dest.valid()) {
        break;
      }
      host_.EmitMigration(candidate, dest, MigrationCause::kTrade);
      --budget;
    }
    if (budget <= 0) {
      break;
    }
  }
}

}  // namespace gfair::sched
