// PlanDiffer — compiles a SchedulePlan into a minimal ScheduleDelta.
//
// Pure with respect to cluster state: reads the executor's running set and
// the strides' resident lists, writes only the output delta (and its own
// membership-stamp scratch). For each planned server it emits
//
//   1. suspends — resident, running, not in the target (resident-id order);
//   2. resumes  — in the target, not running (target/selection order);
//
// in that order, so a resumed gang's GPUs are freed by the suspends that
// precede it on the same server; servers appear in plan (ascending id)
// order. Jobs both running and targeted produce no op — the delta is the
// difference, not the schedule.
//
// Target membership is tested with an epoch-stamped per-job array: target
// sets are rebuilt for every planned server every quantum, and at that rate
// hash sets or sorted scratch cost more than an O(1) stamp per job.
#ifndef GFAIR_SCHED_PLAN_DIFFER_H_
#define GFAIR_SCHED_PLAN_DIFFER_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "exec/executor.h"
#include "sched/cluster_state_view.h"
#include "sched/schedule_plan.h"

namespace gfair::sched {

class PlanDiffer {
 public:
  // Like the planner, the differ reads stride state only through the
  // deep-const ClusterStateView — diffing can never mutate the index.
  PlanDiffer(const workload::JobTable& jobs, const exec::Executor& exec,
             ClusterStateView view)
      : jobs_(jobs), exec_(exec), view_(view) {}

  // Appends ops for every planned server of `plan` to `delta` (which the
  // caller clears between quanta).
  void Diff(const SchedulePlan& plan, ScheduleDelta* delta);

  // Diffs one server's target span (exposed for the mid-quantum paths).
  void DiffServer(const SchedulePlan& plan,
                  const SchedulePlan::ServerTarget& target, ScheduleDelta* delta);

 private:
  const workload::JobTable& jobs_;
  const exec::Executor& exec_;
  const ClusterStateView view_;

  // Per-job membership stamps: a job is in the current target iff its stamp
  // equals target_epoch_ (job ids are dense; the table is sized once per
  // diff, keeping the resize branch out of the per-job loops).
  std::vector<uint64_t> target_stamp_;
  uint64_t target_epoch_ = 0;
};

}  // namespace gfair::sched

#endif  // GFAIR_SCHED_PLAN_DIFFER_H_
