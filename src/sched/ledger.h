// FairnessLedger — cluster-wide GPU-time accounting per user.
//
// The ledger is the measurement half of the fairness guarantee: it records
// which user held how many GPUs of which generation over which interval
// (fed by the executor's accounting callback), plus each user's outstanding
// GPU demand over time (fed by the scheduler on submit/finish). Experiments
// compare achieved GPU time against the ideal fair share computed from the
// demand series (see analysis/fairshare.h).
#ifndef GFAIR_SCHED_LEDGER_H_
#define GFAIR_SCHED_LEDGER_H_

#include <vector>

#include "cluster/gpu.h"
#include "common/sim_time.h"
#include "common/types.h"
#include "simkit/timeseries.h"

namespace gfair::sched {

class FairnessLedger {
 public:
  // --- recording ---

  // `user` held `gpus` GPUs of `gen` over [start, end).
  void RecordGpuTime(UserId user, cluster::GpuGeneration gen, SimTime start, SimTime end,
                     int gpus);

  // `user`'s outstanding demand on pool `gen` changed by `delta` GPUs at
  // `time` (+gang on becoming resident in the pool, -gang on finish/leave).
  void RecordDemandChange(UserId user, cluster::GpuGeneration gen, SimTime time, int delta);

  // --- queries ---

  // GPU-milliseconds `user` consumed on `gen` within [from, to). Raw double
  // on purpose: the ms-based series feed analysis/bench table math directly.
  double GpuMs(UserId user, cluster::GpuGeneration gen, SimTime from, SimTime to) const;  // gfair-lint: allow(raw-double-in-sched-api)
  // Across all generations.
  double GpuMs(UserId user, SimTime from, SimTime to) const;  // gfair-lint: allow(raw-double-in-sched-api)

  // Typed equivalents of the GpuMs queries, minted at the unit boundary —
  // what unit-space consumers (invariant checks) should use.
  GpuSeconds GpuTime(UserId user, cluster::GpuGeneration gen, SimTime from, SimTime to) const;
  GpuSeconds GpuTime(UserId user, SimTime from, SimTime to) const;

  // Piecewise-constant demand (in GPUs) of `user` on pool `gen`.
  const simkit::TimeSeries& DemandSeries(UserId user, cluster::GpuGeneration gen) const;
  // Current demand at `time`.
  double DemandAt(UserId user, cluster::GpuGeneration gen, SimTime time) const;
  // Summed over generations.
  double TotalDemandAt(UserId user, SimTime time) const;

  std::vector<UserId> KnownUsers() const;

 private:
  struct PerUser {
    cluster::PerGeneration<simkit::CounterSeries> gpu_ms;
    cluster::PerGeneration<simkit::TimeSeries> demand;
    cluster::PerGeneration<double> current_demand{};
  };

  PerUser& GetOrCreate(UserId user);
  const PerUser* Find(UserId user) const;

  // Indexed by user id (user ids are dense). `known_[u]` marks slots a
  // record was ever written to; RecordGpuTime runs once per charged gang
  // every quantum — hot path, so lookups must not hash. Do not hold the
  // GetOrCreate() reference across another GetOrCreate (it may resize).
  std::vector<PerUser> per_user_;
  std::vector<bool> known_;
};

}  // namespace gfair::sched

#endif  // GFAIR_SCHED_LEDGER_H_
