#include "sched/cluster_state_index.h"

#include <limits>

#include "common/check.h"

namespace gfair::sched {

ClusterStateIndex::ClusterStateIndex(const cluster::Cluster& cluster,
                                     const StrideConfig& stride_config)
    : cluster_(cluster) {
  const size_t n = static_cast<size_t>(cluster.num_servers());
  strides_.reserve(n);
  load_key_.assign(n, 0.0);
  pos_dirty_.assign(n, false);
  dirty_list_.reserve(n);
  draining_.assign(n, false);
  down_.assign(n, false);
  plan_dirty_.assign(n, 1);  // every server must be planned on the first tick
  for (const auto& server : cluster.servers()) {
    strides_.emplace_back(server.num_gpus(), stride_config);
    pools_by_load_[cluster::GenerationIndex(server.generation())].emplace(0.0,
                                                                          server.id());
  }
}

double ClusterStateIndex::NormTicketLoad(ServerId server) const {
  // Unwrap at the ordering-key boundary: the pool sets are keyed by double.
  return (stride(server).TicketLoad() /
          static_cast<double>(cluster_.server(server).num_gpus())).raw();  // gfair-lint: allow(unit-unwrap-outside-boundary)
}

void ClusterStateIndex::MarkDirty(ServerId server) {
  const size_t s = server.value();
  if (!pos_dirty_[s]) {
    pos_dirty_[s] = true;
    dirty_list_.push_back(server);
  }
}

void ClusterStateIndex::Flush() const {
  for (ServerId server : dirty_list_) {
    Reposition(server);
    pos_dirty_[server.value()] = false;
  }
  dirty_list_.clear();
}

void ClusterStateIndex::Reposition(ServerId server) const {
  const size_t s = server.value();
  const double key = NormTicketLoad(server);
  if (key == load_key_[s]) {
    return;
  }
  auto& pool = pools_by_load_[cluster::GenerationIndex(cluster_.server(server).generation())];
  const size_t erased = pool.erase({load_key_[s], server});
  GFAIR_CHECK_MSG(erased == 1, "server missing from its pool ordering");
  load_key_[s] = key;
  pool.emplace(key, server);
}

void ClusterStateIndex::AddJob(ServerId server, JobId id, int gang_size, Tickets tickets) {
  stride(server).AddJob(id, gang_size, tickets);
  MarkDirty(server);
  MarkPlanDirty(server);
}

void ClusterStateIndex::RemoveJob(ServerId server, JobId id) {
  stride(server).RemoveJob(id);
  MarkDirty(server);
  MarkPlanDirty(server);
}

void ClusterStateIndex::SetTickets(ServerId server, JobId id, Tickets tickets) {
  stride(server).SetTickets(id, tickets);
  MarkDirty(server);
  MarkPlanDirty(server);
}

void ClusterStateIndex::SetRunnable(ServerId server, JobId id, bool runnable) {
  stride(server).SetRunnable(id, runnable);
  MarkDirty(server);
  MarkPlanDirty(server);
}

void ClusterStateIndex::SetDraining(ServerId server, bool draining) {
  GFAIR_CHECK(server.valid() && server.value() < draining_.size());
  if (draining_[server.value()] != draining) {
    num_draining_ += draining ? 1 : -1;
  }
  draining_[server.value()] = draining;
}

void ClusterStateIndex::SetDown(ServerId server, bool down) {
  GFAIR_CHECK(server.valid() && server.value() < down_.size());
  if (down_[server.value()] != down) {
    num_down_ += down ? 1 : -1;
    MarkPlanDirty(server);
  }
  down_[server.value()] = down;
}

ServerId ClusterStateIndex::LeastLoadedServer(cluster::GpuGeneration gen, int min_gpus,
                                              ServerId exclude) const {
  Flush();
#ifndef NDEBUG
  // The ordered set must agree with a from-scratch linear scan ("first
  // strictly smaller load wins", the pre-index selection rule).
  ServerId scan_best = ServerId::Invalid();
  double scan_load = std::numeric_limits<double>::infinity();
  for (ServerId sid : cluster_.servers_of(gen)) {
    if (sid == exclude || draining_[sid.value()] || down_[sid.value()] ||
        cluster_.server(sid).num_gpus() < min_gpus) {
      continue;
    }
    const double load = NormTicketLoad(sid);
    if (load < scan_load) {
      scan_load = load;
      scan_best = sid;
    }
  }
#endif
  ServerId best = ServerId::Invalid();
  for (const auto& [load, sid] : pools_by_load_[cluster::GenerationIndex(gen)]) {
    if (sid == exclude || draining_[sid.value()] || down_[sid.value()] ||
        cluster_.server(sid).num_gpus() < min_gpus) {
      continue;
    }
    best = sid;
    break;
  }
  GFAIR_DCHECK_MSG(best == scan_best,
                   "pool ordering disagrees with linear least-loaded scan");
  return best;
}

}  // namespace gfair::sched
