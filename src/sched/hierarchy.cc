#include "sched/hierarchy.h"

#include <string>

#include "common/check.h"

namespace gfair::sched {

std::unordered_map<UserId, Tickets> ComputeHierarchicalTickets(
    const workload::UserTable& users, const std::vector<UserId>& active) {
  // Group weight = sum of ALL member base tickets (active or not).
  std::unordered_map<std::string, Tickets> group_weight;
  for (const auto& user : users.users()) {
    if (!user.group.empty()) {
      group_weight[user.group] += user.tickets;
    }
  }
  // Active base tickets per group.
  std::unordered_map<std::string, Tickets> group_active_tickets;
  for (UserId id : active) {
    const auto& user = users.Get(id);
    if (!user.group.empty()) {
      group_active_tickets[user.group] += user.tickets;
    }
  }

  std::unordered_map<UserId, Tickets> effective;
  for (UserId id : active) {
    const auto& user = users.Get(id);
    if (user.group.empty()) {
      effective[id] = user.tickets;
      continue;
    }
    const Tickets active_tickets = group_active_tickets.at(user.group);
    GFAIR_CHECK(active_tickets > 0.0);
    effective[id] = MulDiv(group_weight.at(user.group), user.tickets, active_tickets);
  }
  return effective;
}

}  // namespace gfair::sched
