#include "sched/stride.h"

#include <algorithm>
#include <limits>

namespace gfair::sched {

LocalStrideScheduler::LocalStrideScheduler(int num_gpus, StrideConfig config)
    : num_gpus_(num_gpus), config_(config) {
  GFAIR_CHECK(num_gpus_ > 0);
}

void LocalStrideScheduler::AddJob(JobId id, int gang_size, double tickets) {
  GFAIR_CHECK(id.valid());
  GFAIR_CHECK_MSG(gang_size >= 1 && gang_size <= num_gpus_, "gang cannot fit this server");
  GFAIR_CHECK(tickets > 0.0);
  GFAIR_CHECK_MSG(entries_.count(id) == 0, "job already resident");
  entries_.emplace(id, Entry{gang_size, tickets, virtual_time_, true});
}

void LocalStrideScheduler::RemoveJob(JobId id) {
  const size_t erased = entries_.erase(id);
  GFAIR_CHECK_MSG(erased == 1, "RemoveJob on unknown job");
  UpdateVirtualTime();
}

void LocalStrideScheduler::SetTickets(JobId id, double tickets) {
  GFAIR_CHECK(tickets > 0.0);
  auto it = entries_.find(id);
  GFAIR_CHECK(it != entries_.end());
  it->second.tickets = tickets;
}

void LocalStrideScheduler::SetRunnable(JobId id, bool runnable) {
  auto it = entries_.find(id);
  GFAIR_CHECK(it != entries_.end());
  it->second.runnable = runnable;
  if (runnable) {
    // Re-entering jobs (e.g. back from a probe) must not have fallen behind
    // the pack — that would give them a monopolizing credit.
    it->second.pass = std::max(it->second.pass, virtual_time_);
  }
}

const LocalStrideScheduler::Entry& LocalStrideScheduler::GetEntry(JobId id) const {
  auto it = entries_.find(id);
  GFAIR_CHECK_MSG(it != entries_.end(), "unknown job");
  return it->second;
}

double LocalStrideScheduler::PassOf(JobId id) const { return GetEntry(id).pass; }
int LocalStrideScheduler::GangOf(JobId id) const { return GetEntry(id).gang_size; }
double LocalStrideScheduler::TicketsOf(JobId id) const { return GetEntry(id).tickets; }

double LocalStrideScheduler::TicketLoad() const {
  double total = 0.0;
  for (const auto& [id, entry] : entries_) {
    if (entry.runnable) {
      total += entry.tickets;
    }
  }
  return total;
}

int LocalStrideScheduler::DemandLoad() const {
  int total = 0;
  for (const auto& [id, entry] : entries_) {
    if (entry.runnable) {
      total += entry.gang_size;
    }
  }
  return total;
}

std::vector<JobId> LocalStrideScheduler::ResidentJobs() const {
  std::vector<JobId> jobs;
  jobs.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    jobs.push_back(id);
  }
  std::sort(jobs.begin(), jobs.end());
  return jobs;
}

void LocalStrideScheduler::UpdateVirtualTime() {
  double min_pass = std::numeric_limits<double>::infinity();
  for (const auto& [id, entry] : entries_) {
    if (entry.runnable) {
      min_pass = std::min(min_pass, entry.pass);
    }
  }
  if (min_pass != std::numeric_limits<double>::infinity()) {
    virtual_time_ = std::max(virtual_time_, min_pass);
  }
}

std::vector<JobId> LocalStrideScheduler::SelectForQuantum() {
  UpdateVirtualTime();

  struct Candidate {
    JobId id;
    double pass;
    int gang;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    if (entry.runnable) {
      candidates.push_back(Candidate{id, entry.pass, entry.gang_size});
    }
  }

  const bool big_first = config_.big_job_first;
  std::sort(candidates.begin(), candidates.end(),
            [big_first](const Candidate& a, const Candidate& b) {
              if (a.pass != b.pass) {
                return a.pass < b.pass;
              }
              if (a.gang != b.gang) {
                return big_first ? a.gang > b.gang : a.gang < b.gang;
              }
              return a.id < b.id;
            });

  std::vector<JobId> selected;
  int free = num_gpus_;
  for (const Candidate& candidate : candidates) {
    if (candidate.gang <= free) {
      selected.push_back(candidate.id);
      free -= candidate.gang;
      if (free == 0) {
        break;
      }
    }
    // Jobs that do not fit the remaining capacity are skipped (backfill);
    // their frozen pass keeps them at the head until they fit.
  }
  return selected;
}

void LocalStrideScheduler::Charge(JobId id, SimDuration ms) {
  GFAIR_CHECK(ms >= 0);
  auto it = entries_.find(id);
  GFAIR_CHECK_MSG(it != entries_.end(), "Charge on unknown job");
  Entry& entry = it->second;
  entry.pass += static_cast<double>(ms) * entry.gang_size / entry.tickets;
  // Virtual time advances with delivered service per runnable ticket. This —
  // not the min-pass floor — is what keeps newcomers from perpetually
  // entering below a waiting job's frozen pass under high churn: short jobs
  // arriving and finishing every quantum would otherwise pin the virtual
  // time while an already-served long job waits forever.
  const double load = TicketLoad();
  if (load > 0.0) {
    virtual_time_ += static_cast<double>(ms) * entry.gang_size / load;
  }
}

}  // namespace gfair::sched
