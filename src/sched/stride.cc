#include "sched/stride.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gfair::sched {

namespace {
constexpr Pass kInf = Pass::Infinity();
}  // namespace

LocalStrideScheduler::LocalStrideScheduler(int num_gpus, StrideConfig config)
    : num_gpus_(num_gpus), config_(config) {
  GFAIR_CHECK(num_gpus_ > 0);
}

void LocalStrideScheduler::InvalidateAggregates(bool membership_changed) {
  ticket_load_dirty_ = true;
  if (membership_changed) {
    resident_dirty_ = true;
  }
}

void LocalStrideScheduler::AddJob(JobId id, int gang_size, Tickets tickets) {
  GFAIR_CHECK(id.valid());
  GFAIR_CHECK_MSG(gang_size >= 1 && gang_size <= num_gpus_, "gang cannot fit this server");
  GFAIR_CHECK(tickets > 0.0);
  GFAIR_CHECK_MSG(FindEntry(id) == entries_.end(), "job already resident");
  entries_.emplace_back(id, Entry{gang_size, tickets, virtual_time_, true});
  if (id.value() >= index_of_.size()) {
    index_of_.resize(id.value() + 1, 0);
    heap_gen_.resize(id.value() + 1, 0);
  }
  index_of_[id.value()] = static_cast<uint32_t>(entries_.size());
  ticket_load_shadow_ += tickets;
  demand_load_ += gang_size;
  InvalidateAggregates(/*membership_changed=*/true);
  // No generation bump needed: a previous residency's items (if any) died at
  // its RemoveJob, so no live item carries the current generation.
  HeapPushJob(id, entries_.back().second);
}

void LocalStrideScheduler::RemoveJob(JobId id) {
  auto it = FindEntry(id);
  GFAIR_CHECK_MSG(it != entries_.end(), "RemoveJob on unknown job");
  if (it->second.runnable) {
    ticket_load_shadow_ -= it->second.tickets;
    demand_load_ -= it->second.gang_size;
  }
  const size_t pos = static_cast<size_t>(it - entries_.begin());
  entries_.erase(it);
  index_of_[id.value()] = 0;
  for (size_t i = pos; i < entries_.size(); ++i) {
    index_of_[entries_[i].first.value()] = static_cast<uint32_t>(i + 1);
  }
  InvalidateAggregates(/*membership_changed=*/true);
  HeapInvalidate(id);
  UpdateVirtualTime();
}

void LocalStrideScheduler::SetTickets(JobId id, Tickets tickets) {
  GFAIR_CHECK(tickets > 0.0);
  auto it = FindEntry(id);
  GFAIR_CHECK(it != entries_.end());
  if (it->second.runnable) {
    ticket_load_shadow_ += tickets - it->second.tickets;
  }
  it->second.tickets = tickets;
  InvalidateAggregates(/*membership_changed=*/false);
}

void LocalStrideScheduler::SetRunnable(JobId id, bool runnable) {
  auto it = FindEntry(id);
  GFAIR_CHECK(it != entries_.end());
  const bool was_runnable = it->second.runnable;
  if (was_runnable != runnable) {
    const double sign = runnable ? 1.0 : -1.0;
    ticket_load_shadow_ += sign * it->second.tickets;
    demand_load_ += (runnable ? 1 : -1) * it->second.gang_size;
    InvalidateAggregates(/*membership_changed=*/false);
  }
  it->second.runnable = runnable;
  if (runnable) {
    // Re-entering jobs (e.g. back from a probe) must not have fallen behind
    // the pack — that would give them a monopolizing credit. (Raising the
    // pass of an already-runnable job leaves its heap item stale-low, which
    // the lazy re-key repairs at the next selection.)
    it->second.pass = std::max(it->second.pass, virtual_time_);
    if (!was_runnable) {
      // The runnable→false transition bumped the generation, so no live item
      // carries the current one — push without another bump.
      HeapPushJob(id, it->second);
    }
  } else if (was_runnable) {
    HeapInvalidate(id);
  }
}

const LocalStrideScheduler::Entry& LocalStrideScheduler::GetEntry(JobId id) const {
  auto it = FindEntry(id);
  GFAIR_CHECK_MSG(it != entries_.end(), "unknown job");
  return it->second;
}

Pass LocalStrideScheduler::PassOf(JobId id) const { return GetEntry(id).pass; }
int LocalStrideScheduler::GangOf(JobId id) const { return GetEntry(id).gang_size; }
Tickets LocalStrideScheduler::TicketsOf(JobId id) const { return GetEntry(id).tickets; }
bool LocalStrideScheduler::RunnableOf(JobId id) const { return GetEntry(id).runnable; }

void LocalStrideScheduler::RecomputeTicketLoad() const {
  Tickets total = 0.0;
  for (const auto& [id, entry] : entries_) {
    if (entry.runnable) {
      total += entry.tickets;
    }
  }
  // The incremental shadow accumulates rounding error the recompute does
  // not; it must still track the true sum to within float noise.
  GFAIR_DCHECK_MSG(
      Abs(total - ticket_load_shadow_) <= 1e-6 * std::max(Tickets(1.0), Abs(total)),
      "incremental ticket-load sum drifted from full recompute");
  ticket_load_cache_ = total;
  ticket_load_dirty_ = false;
}

int LocalStrideScheduler::DemandLoad() const {
#ifndef NDEBUG
  int total = 0;
  for (const auto& [id, entry] : entries_) {
    if (entry.runnable) {
      total += entry.gang_size;
    }
  }
  GFAIR_DCHECK_MSG(total == demand_load_,
                   "incremental demand-load sum drifted from full recompute");
#endif
  return demand_load_;
}

const std::vector<JobId>& LocalStrideScheduler::ResidentJobs() const {
  if (resident_dirty_) {
    resident_cache_.clear();
    resident_cache_.reserve(entries_.size());
    for (const auto& [id, entry] : entries_) {
      resident_cache_.push_back(id);
    }
    std::sort(resident_cache_.begin(), resident_cache_.end());
    resident_dirty_ = false;
  }
  return resident_cache_;
}

void LocalStrideScheduler::HeapSiftUp(size_t pos) const {
  const HeapItem item = heap_[pos];
  const HeapItemAfter after;
  while (pos > 0) {
    const size_t parent = (pos - 1) / 2;
    if (!after(heap_[parent], item)) {
      break;
    }
    heap_[pos] = heap_[parent];
    pos = parent;
  }
  heap_[pos] = item;
}

void LocalStrideScheduler::HeapSiftDown(size_t pos) const {
  const size_t n = heap_.size();
  const HeapItem item = heap_[pos];
  const HeapItemAfter after;
  for (;;) {
    size_t child = 2 * pos + 1;
    if (child >= n) {
      break;
    }
    if (child + 1 < n && after(heap_[child], heap_[child + 1])) {
      child += 1;
    }
    if (!after(item, heap_[child])) {
      break;
    }
    heap_[pos] = heap_[child];
    pos = child;
  }
  heap_[pos] = item;
}

void LocalStrideScheduler::HeapPopTop() const {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    HeapSiftDown(0);
  }
}

void LocalStrideScheduler::HeapPushJob(JobId id, const Entry& entry) const {
  heap_.push_back(
      HeapItem{entry.pass, TieOf(id, entry.gang_size), heap_gen_[id.value()]});
  HeapSiftUp(heap_.size() - 1);
}

void LocalStrideScheduler::FixHeapTop() const {
  while (!heap_.empty()) {
    const HeapItem& top = heap_.front();
    const uint32_t raw_id = static_cast<uint32_t>(top.tie);
    const uint32_t pos = raw_id < index_of_.size() ? index_of_[raw_id] : 0;
    // A matching generation implies the entry exists and is runnable: both
    // removal and the runnable→false transition bump the generation.
    if (pos != 0 && heap_gen_[raw_id] == top.gen) {
      const Entry& entry = entries_[pos - 1].second;
      if (entry.pass == top.pass) {
        return;  // live and current → the true minimum (keys only increase)
      }
      // Stale key: the job was charged (or pass-floored) since the push.
      // Stored keys lower-bound true keys, so re-keying the top in place and
      // sifting down keeps extraction order identical to a full sort.
      GFAIR_DCHECK(entry.pass > top.pass);
      heap_.front().pass = entry.pass;
      HeapSiftDown(0);
      continue;
    }
    // Tombstone (removed or made non-runnable since the push).
    HeapPopTop();
  }
}

void LocalStrideScheduler::MaybeCompactHeap() const {
  // Tombstones accumulate one per removal/runnable-toggle; rebuild when they
  // clearly dominate so heap operations stay O(log live).
  if (heap_.size() > 2 * entries_.size() + 64) {
    RebuildHeap();
  }
}

void LocalStrideScheduler::RebuildHeap() const {
  heap_.clear();
  heap_.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    if (entry.runnable) {
      heap_.push_back(
          HeapItem{entry.pass, TieOf(id, entry.gang_size), heap_gen_[id.value()]});
    }
  }
  std::make_heap(heap_.begin(), heap_.end(), HeapItemAfter{});
}

Pass LocalStrideScheduler::MinRunnablePass() const {
  FixHeapTop();
  return heap_.empty() ? kInf : heap_.front().pass;
}

void LocalStrideScheduler::UpdateVirtualTime() {
  const Pass min_pass = MinRunnablePass();
#ifndef NDEBUG
  Pass check = kInf;
  for (const auto& [id, entry] : entries_) {
    if (entry.runnable) {
      check = std::min(check, entry.pass);
    }
  }
  GFAIR_DCHECK_MSG(check == min_pass, "heap min-pass drifted from entry scan");
#endif
  if (min_pass != kInf) {
    virtual_time_ = std::max(virtual_time_, min_pass);
  }
}

namespace {
// Below this many resident jobs, one contiguous sort of the runnable entries
// beats the heap walk's pop / re-key / re-push cycle — under total churn
// every selected candidate costs several scattered sifts, while sorting a
// few cache lines is nearly free. The heap takes over where the sort's
// O(n log n) on mostly-unchanged keys starts to dominate (it walks only the
// candidates selection actually examines).
constexpr size_t kSortSelectMaxJobs = 64;
}  // namespace

void LocalStrideScheduler::SelectBySort(std::vector<JobId>* out,
                                        Pass* min_runnable_pass) const {
  popped_scratch_.clear();
  for (const auto& [id, entry] : entries_) {
    if (entry.runnable) {
      popped_scratch_.push_back(
          HeapItem{entry.pass, TieOf(id, entry.gang_size), 0});
    }
  }
  std::sort(popped_scratch_.begin(), popped_scratch_.end(),
            [](const HeapItem& a, const HeapItem& b) {
              if (a.pass != b.pass) {
                return a.pass < b.pass;
              }
              return a.tie < b.tie;
            });
  *min_runnable_pass =
      popped_scratch_.empty() ? kInf : popped_scratch_.front().pass;
  int free = num_gpus_;
  for (const HeapItem& c : popped_scratch_) {
    if (free == 0) {
      break;
    }
    const uint32_t gang_bits = static_cast<uint32_t>(c.tie >> 32);
    const int gang =
        static_cast<int>(config_.big_job_first ? ~gang_bits : gang_bits);
    if (gang <= free) {
      out->push_back(JobId(static_cast<uint32_t>(c.tie)));
      free -= gang;
    }
  }
}

void LocalStrideScheduler::PlanQuantum(std::vector<JobId>* out,
                                       Pass* min_runnable_pass) const {
  out->clear();
  // Adaptive selection: tiny candidate sets sort, larger ones walk the
  // incremental heap. The sort path never touches the heap — that is legal
  // because stored heap keys only ever lower-bound true passes, so leaving
  // them stale cannot reorder a later heap-driven extraction.
  if (entries_.size() <= kSortSelectMaxJobs) {
    SelectBySort(out, min_runnable_pass);
    return;
  }
  popped_scratch_.clear();
  Pass min_pass = kInf;
  int free = num_gpus_;
  // Pop live candidates in (pass, tie) order, packing each one that fits the
  // remaining capacity and backfilling past those that do not — identical to
  // walking a fully sorted candidate list. Stop once the server is packed:
  // items left in the heap are exactly the candidates a sort-based walk
  // would never have examined. The FixHeapTop logic is inlined into the loop
  // (this is the innermost per-quantum loop cluster-wide).
  while (free > 0 && !heap_.empty()) {
    HeapItem& top = heap_.front();
    const uint32_t raw_id = static_cast<uint32_t>(top.tie);
    const uint32_t pos = raw_id < index_of_.size() ? index_of_[raw_id] : 0;
    // A matching generation implies the entry exists and is runnable: both
    // removal and the runnable→false transition bump the generation.
    if (pos == 0 || heap_gen_[raw_id] != top.gen) {
      HeapPopTop();  // tombstone
      continue;
    }
    const Pass true_pass = entries_[pos - 1].second.pass;
    if (true_pass != top.pass) {
      // Stale key (charged or pass-floored since the push). Stored keys
      // lower-bound true keys, so re-keying the top in place and sifting
      // down keeps extraction order identical to a full sort.
      GFAIR_DCHECK(true_pass > top.pass);
      top.pass = true_pass;
      HeapSiftDown(0);
      continue;
    }
    const HeapItem item = top;
    if (min_pass == kInf) {
      min_pass = item.pass;  // first live top = min pass over runnable jobs
    }
    HeapPopTop();
    popped_scratch_.push_back(item);
    // The gang rides in the tie key's high half (inverted when
    // big_job_first) — recovering it there spares the entries_ load.
    const uint32_t gang_bits = static_cast<uint32_t>(item.tie >> 32);
    const int gang =
        static_cast<int>(config_.big_job_first ? ~gang_bits : gang_bits);
    GFAIR_DCHECK(gang == entries_[pos - 1].second.gang_size);
    if (gang <= free) {
      out->push_back(JobId(raw_id));
      free -= gang;
    }
    // Jobs that do not fit the remaining capacity are skipped (backfill);
    // their frozen pass keeps them at the head until they fit.
  }
  if (min_pass == kInf) {
    // Packed instantly (free hit 0 before any pop) or only tombstones seen so
    // far: the min may still be sitting in the heap.
    min_pass = MinRunnablePass();
  }
  // Examined candidates (selected or backfilled past) stay scheduled — put
  // their items back; they carry current passes, so they re-enter live. When
  // most of the heap was popped (total churn), one Floyd rebuild beats
  // per-item sift-ups, which all climb to the root (the popped items are
  // exactly the minimum keys).
  if (!popped_scratch_.empty()) {
    if (popped_scratch_.size() >= heap_.size()) {
      heap_.insert(heap_.end(), popped_scratch_.begin(), popped_scratch_.end());
      std::make_heap(heap_.begin(), heap_.end(), HeapItemAfter{});
    } else {
      for (const HeapItem& item : popped_scratch_) {
        heap_.push_back(item);
        HeapSiftUp(heap_.size() - 1);
      }
    }
  }
  *min_runnable_pass = min_pass;

#ifndef NDEBUG
  // Debug cross-check: the heap-driven walk must match a from-scratch sort of
  // the runnable entries (the pre-heap implementation).
  {
    struct Candidate {
      Pass pass;
      uint64_t tie;
      int gang;
    };
    std::vector<Candidate> candidates;
    Pass check_min = kInf;
    for (const auto& [id, entry] : entries_) {
      if (entry.runnable) {
        check_min = std::min(check_min, entry.pass);
        candidates.push_back(
            Candidate{entry.pass, TieOf(id, entry.gang_size), entry.gang_size});
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.pass != b.pass) {
                  return a.pass < b.pass;
                }
                return a.tie < b.tie;
              });
    std::vector<JobId> check_out;
    int check_free = num_gpus_;
    for (const Candidate& candidate : candidates) {
      if (candidate.gang <= check_free) {
        check_out.push_back(JobId(static_cast<uint32_t>(candidate.tie)));
        check_free -= candidate.gang;
        if (check_free == 0) {
          break;
        }
      }
    }
    GFAIR_DCHECK_MSG(check_min == min_pass,
                     "heap min-pass drifted from sorted recompute");
    GFAIR_DCHECK_MSG(check_out == *out,
                     "heap selection drifted from sorted recompute");
  }
#endif
}

void LocalStrideScheduler::AdvanceVirtualTime(Pass min_runnable_pass) {
  if (min_runnable_pass != kInf) {
    virtual_time_ = std::max(virtual_time_, min_runnable_pass);
  }
}

const std::vector<JobId>& LocalStrideScheduler::SelectForQuantum() {
  Pass min_pass = kInf;
  PlanQuantum(&selected_scratch_, &min_pass);
  AdvanceVirtualTime(min_pass);
  return selected_scratch_;
}

}  // namespace gfair::sched
