#include "sched/stride.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gfair::sched {

LocalStrideScheduler::LocalStrideScheduler(int num_gpus, StrideConfig config)
    : num_gpus_(num_gpus), config_(config) {
  GFAIR_CHECK(num_gpus_ > 0);
}

void LocalStrideScheduler::InvalidateAggregates(bool membership_changed) {
  ticket_load_dirty_ = true;
  if (membership_changed) {
    resident_dirty_ = true;
  }
}

void LocalStrideScheduler::AddJob(JobId id, int gang_size, double tickets) {
  GFAIR_CHECK(id.valid());
  GFAIR_CHECK_MSG(gang_size >= 1 && gang_size <= num_gpus_, "gang cannot fit this server");
  GFAIR_CHECK(tickets > 0.0);
  GFAIR_CHECK_MSG(FindEntry(id) == entries_.end(), "job already resident");
  entries_.emplace_back(id, Entry{gang_size, tickets, virtual_time_, true});
  if (id.value() >= index_of_.size()) {
    index_of_.resize(id.value() + 1, 0);
  }
  index_of_[id.value()] = static_cast<uint32_t>(entries_.size());
  ticket_load_shadow_ += tickets;
  demand_load_ += gang_size;
  InvalidateAggregates(/*membership_changed=*/true);
}

void LocalStrideScheduler::RemoveJob(JobId id) {
  auto it = FindEntry(id);
  GFAIR_CHECK_MSG(it != entries_.end(), "RemoveJob on unknown job");
  if (it->second.runnable) {
    ticket_load_shadow_ -= it->second.tickets;
    demand_load_ -= it->second.gang_size;
  }
  const size_t pos = static_cast<size_t>(it - entries_.begin());
  entries_.erase(it);
  index_of_[id.value()] = 0;
  for (size_t i = pos; i < entries_.size(); ++i) {
    index_of_[entries_[i].first.value()] = static_cast<uint32_t>(i + 1);
  }
  InvalidateAggregates(/*membership_changed=*/true);
  UpdateVirtualTime();
}

void LocalStrideScheduler::SetTickets(JobId id, double tickets) {
  GFAIR_CHECK(tickets > 0.0);
  auto it = FindEntry(id);
  GFAIR_CHECK(it != entries_.end());
  if (it->second.runnable) {
    ticket_load_shadow_ += tickets - it->second.tickets;
  }
  it->second.tickets = tickets;
  InvalidateAggregates(/*membership_changed=*/false);
}

void LocalStrideScheduler::SetRunnable(JobId id, bool runnable) {
  auto it = FindEntry(id);
  GFAIR_CHECK(it != entries_.end());
  if (it->second.runnable != runnable) {
    const double sign = runnable ? 1.0 : -1.0;
    ticket_load_shadow_ += sign * it->second.tickets;
    demand_load_ += (runnable ? 1 : -1) * it->second.gang_size;
    InvalidateAggregates(/*membership_changed=*/false);
  }
  it->second.runnable = runnable;
  if (runnable) {
    // Re-entering jobs (e.g. back from a probe) must not have fallen behind
    // the pack — that would give them a monopolizing credit.
    it->second.pass = std::max(it->second.pass, virtual_time_);
  }
}

const LocalStrideScheduler::Entry& LocalStrideScheduler::GetEntry(JobId id) const {
  auto it = FindEntry(id);
  GFAIR_CHECK_MSG(it != entries_.end(), "unknown job");
  return it->second;
}

double LocalStrideScheduler::PassOf(JobId id) const { return GetEntry(id).pass; }
int LocalStrideScheduler::GangOf(JobId id) const { return GetEntry(id).gang_size; }
double LocalStrideScheduler::TicketsOf(JobId id) const { return GetEntry(id).tickets; }

double LocalStrideScheduler::TicketLoad() const {
  if (ticket_load_dirty_) {
    double total = 0.0;
    for (const auto& [id, entry] : entries_) {
      if (entry.runnable) {
        total += entry.tickets;
      }
    }
    // The incremental shadow accumulates rounding error the recompute does
    // not; it must still track the true sum to within float noise.
    GFAIR_DCHECK_MSG(
        std::abs(total - ticket_load_shadow_) <= 1e-6 * std::max(1.0, std::abs(total)),
        "incremental ticket-load sum drifted from full recompute");
    ticket_load_cache_ = total;
    ticket_load_dirty_ = false;
  }
  return ticket_load_cache_;
}

int LocalStrideScheduler::DemandLoad() const {
#ifndef NDEBUG
  int total = 0;
  for (const auto& [id, entry] : entries_) {
    if (entry.runnable) {
      total += entry.gang_size;
    }
  }
  GFAIR_DCHECK_MSG(total == demand_load_,
                   "incremental demand-load sum drifted from full recompute");
#endif
  return demand_load_;
}

const std::vector<JobId>& LocalStrideScheduler::ResidentJobs() const {
  if (resident_dirty_) {
    resident_cache_.clear();
    resident_cache_.reserve(entries_.size());
    for (const auto& [id, entry] : entries_) {
      resident_cache_.push_back(id);
    }
    std::sort(resident_cache_.begin(), resident_cache_.end());
    resident_dirty_ = false;
  }
  return resident_cache_;
}

void LocalStrideScheduler::UpdateVirtualTime() {
  double min_pass = std::numeric_limits<double>::infinity();
  for (const auto& [id, entry] : entries_) {
    if (entry.runnable) {
      min_pass = std::min(min_pass, entry.pass);
    }
  }
  if (min_pass != std::numeric_limits<double>::infinity()) {
    virtual_time_ = std::max(virtual_time_, min_pass);
  }
}

const std::vector<JobId>& LocalStrideScheduler::SelectForQuantum() {
  // Single walk: advance the virtual time (same update UpdateVirtualTime
  // performs) and collect runnable candidates. Selection reads entry.pass,
  // not virtual_time_, so folding the two walks together is behavior-neutral.
  candidate_scratch_.clear();
  candidate_scratch_.reserve(entries_.size());
  const bool big_first = config_.big_job_first;
  double min_pass = std::numeric_limits<double>::infinity();
  for (const auto& [id, entry] : entries_) {
    if (entry.runnable) {
      min_pass = std::min(min_pass, entry.pass);
      const uint64_t gang_key =
          big_first ? ~static_cast<uint64_t>(static_cast<uint32_t>(entry.gang_size))
                    : static_cast<uint64_t>(static_cast<uint32_t>(entry.gang_size));
      candidate_scratch_.push_back(
          Candidate{entry.pass, (gang_key << 32) | id.value(), entry.gang_size});
    }
  }
  if (min_pass != std::numeric_limits<double>::infinity()) {
    virtual_time_ = std::max(virtual_time_, min_pass);
  }

  // Orders by (pass, gang big/small-first, id) — the tie-break lives in the
  // packed `tie` key.
  std::sort(candidate_scratch_.begin(), candidate_scratch_.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.pass != b.pass) {
                return a.pass < b.pass;
              }
              return a.tie < b.tie;
            });

  selected_scratch_.clear();
  int free = num_gpus_;
  for (const Candidate& candidate : candidate_scratch_) {
    if (candidate.gang <= free) {
      selected_scratch_.push_back(JobId(static_cast<uint32_t>(candidate.tie)));
      free -= candidate.gang;
      if (free == 0) {
        break;
      }
    }
    // Jobs that do not fit the remaining capacity are skipped (backfill);
    // their frozen pass keeps them at the head until they fit.
  }
  return selected_scratch_;
}

void LocalStrideScheduler::Charge(JobId id, SimDuration ms) {
  GFAIR_CHECK(ms >= 0);
  auto it = FindEntry(id);
  GFAIR_CHECK_MSG(it != entries_.end(), "Charge on unknown job");
  Entry& entry = it->second;
  entry.pass += static_cast<double>(ms) * entry.gang_size / entry.tickets;
  // Virtual time advances with delivered service per runnable ticket. This —
  // not the min-pass floor — is what keeps newcomers from perpetually
  // entering below a waiting job's frozen pass under high churn: short jobs
  // arriving and finishing every quantum would otherwise pin the virtual
  // time while an already-served long job waits forever.
  const double load = TicketLoad();
  if (load > 0.0) {
    virtual_time_ += static_cast<double>(ms) * entry.gang_size / load;
  }
}

}  // namespace gfair::sched
