// Load-balancing and trading epochs of GandivaFairScheduler.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/log.h"
#include "sched/gandiva_fair.h"

namespace gfair::sched {

using cluster::GenerationIndex;
using cluster::GpuGeneration;
using cluster::kAllGenerations;
using workload::Job;

// ---------------------------------------------------------------------------
// Load balancing: keep per-server ticket load even within each pool.
// ---------------------------------------------------------------------------

void GandivaFairScheduler::BalanceTick() {
  const SimTime now = env_.sim.Now();
  DrainTick();  // evacuate draining servers first
  for (GpuGeneration gen : kAllGenerations) {
    const auto& servers = env_.cluster.servers_of(gen);
    if (servers.size() < 2) {
      continue;
    }

    // Pass 1 — work conservation: a server whose residents demand more GPUs
    // than it has, next to a server with spare GPUs, wastes capacity that no
    // amount of local time-slicing can recover. Move waiting (suspended)
    // jobs from oversubscribed servers onto idle GPUs.
    std::unordered_map<ServerId, double> pending_demand;  // in-flight arrivals
    for (int round = 0; round < config_.max_migrations_per_round; ++round) {
      ServerId src = ServerId::Invalid();
      ServerId dst = ServerId::Invalid();
      double worst_overflow = 0.5;  // demand beyond capacity, in GPUs
      double best_spare = 0.999;    // idle GPUs worth of headroom
      for (ServerId id : servers) {
        if (IsDraining(id)) {
          continue;
        }
        const auto& server = env_.cluster.server(id);
        const double demand = stride_for(id).DemandLoad() + pending_demand[id];
        const double overflow = demand - server.num_gpus();
        const double spare = server.num_gpus() - demand;
        if (overflow > worst_overflow) {
          worst_overflow = overflow;
          src = id;
        }
        if (spare > best_spare) {
          best_spare = spare;
          dst = id;
        }
      }
      if (!src.valid() || !dst.valid()) {
        break;
      }
      // Largest suspended gang that fits the destination's headroom.
      JobId candidate = JobId::Invalid();
      int candidate_gang = 0;
      for (JobId id : StrideFor(src).ResidentJobs()) {
        if (env_.exec.IsRunning(id)) {
          continue;
        }
        const Job& job = env_.jobs.Get(id);
        const JobInfo& info = job_info_.at(id);
        if (now - info.last_migration < config_.min_migration_interval) {
          continue;
        }
        if (job.gang_size <= best_spare + 1e-9 && job.gang_size > candidate_gang) {
          candidate = id;
          candidate_gang = job.gang_size;
        }
      }
      if (!candidate.valid()) {
        break;
      }
      pending_demand[dst] += candidate_gang;
      StartMigration(candidate, dst, MigrationCause::kConserve);
    }

    // Pass 2 — fairness: even out per-server ticket load so every resident
    // job's stride share is realizable. Tickets already in flight toward a
    // destination this round:
    std::unordered_map<ServerId, double> pending;

    for (int round = 0; round < config_.max_migrations_per_round; ++round) {
      ServerId max_server = ServerId::Invalid();
      ServerId min_server = ServerId::Invalid();
      double max_load = -std::numeric_limits<double>::infinity();
      double min_load = std::numeric_limits<double>::infinity();
      double sum_load = 0.0;
      for (ServerId id : servers) {
        if (IsDraining(id)) {
          continue;
        }
        const double gpus = env_.cluster.server(id).num_gpus();
        const double load = (stride_for(id).TicketLoad() + pending[id]) / gpus;
        sum_load += load;
        if (load > max_load) {
          max_load = load;
          max_server = id;
        }
        if (load < min_load) {
          min_load = load;
          min_server = id;
        }
      }
      const double avg_load = sum_load / static_cast<double>(servers.size());
      if (max_load - min_load <= config_.balance_threshold * std::max(avg_load, 1e-9)) {
        break;
      }

      // Candidate = resident job on the hottest server whose move shrinks the
      // gap the most and still leaves the destination cooler than the source
      // was.
      const double src_gpus = env_.cluster.server(max_server).num_gpus();
      const double dst_gpus = env_.cluster.server(min_server).num_gpus();
      JobId best = JobId::Invalid();
      double best_gap = max_load - min_load;
      for (JobId id : StrideFor(max_server).ResidentJobs()) {
        const Job& job = env_.jobs.Get(id);
        const JobInfo& info = job_info_.at(id);
        if (now - info.last_migration < config_.min_migration_interval) {
          continue;
        }
        if (env_.cluster.server(min_server).num_gpus() < job.gang_size) {
          continue;
        }
        const double tickets = stride_for(max_server).TicketsOf(id);
        const double new_src = max_load - tickets / src_gpus;
        const double new_dst = min_load + tickets / dst_gpus;
        if (new_dst >= max_load) {
          continue;  // would just swap the hot spot
        }
        const double gap = std::abs(new_src - new_dst);
        if (gap < best_gap) {
          best_gap = gap;
          best = id;
        }
      }
      if (!best.valid()) {
        break;
      }
      pending[min_server] += stride_for(max_server).TicketsOf(best);
      StartMigration(best, min_server, MigrationCause::kBalance);
    }
  }
}

// ---------------------------------------------------------------------------
// Trading epoch: probe coverage, recompute trades, reshape tickets, move jobs
// toward their users' traded entitlements.
// ---------------------------------------------------------------------------

bool GandivaFairScheduler::UserSpeedup(UserId user, GpuGeneration fast,
                                       GpuGeneration slow, double* out) const {
  GFAIR_CHECK(out != nullptr);
  auto it = user_pool_jobs_.find(user);
  if (it == user_pool_jobs_.end()) {
    return false;
  }
  // Demand-weighted mean over the user's resident jobs with usable profiles.
  double weight_sum = 0.0;
  double weighted = 0.0;
  for (GpuGeneration gen : kAllGenerations) {
    for (JobId id : it->second[GenerationIndex(gen)]) {
      const Job& job = env_.jobs.Get(id);
      const auto& model = env_.zoo.Get(job.model);
      if (!model.FitsGeneration(fast) || !model.FitsGeneration(slow)) {
        continue;  // this job could not move between these pools
      }
      double speedup = 0.0;
      if (profiles_.Speedup(job.model, fast, slow, &speedup)) {
        weighted += speedup * job.gang_size;
        weight_sum += job.gang_size;
      }
    }
  }
  if (weight_sum <= 0.0) {
    return false;
  }
  // Quantize to 0.25 steps: profile noise on the raw mean flips the
  // lender/borrower matching between epochs, and every flip costs a round of
  // residency migrations before the new entitlements are realized. Floor
  // rather than round — the trade rate is the borrower's speedup, so any
  // upward bias makes borrowers systematically overpay.
  *out = std::max(1.0, std::floor(weighted / weight_sum * 4.0) / 4.0);
  return true;
}

void GandivaFairScheduler::RunProbes() {
  int budget = config_.max_probes_per_epoch;
  const SimTime now = env_.sim.Now();

  for (UserId user : ActiveUsers()) {
    if (budget <= 0) {
      break;
    }
    auto it = user_pool_jobs_.find(user);
    if (it == user_pool_jobs_.end()) {
      continue;
    }
    // Snapshot: StartMigration mutates the residency sets.
    std::vector<JobId> resident;
    for (GpuGeneration gen : kAllGenerations) {
      for (JobId id : it->second[GenerationIndex(gen)]) {
        resident.push_back(id);
      }
    }
    bool probed = false;
    for (JobId id : resident) {
      if (probed) {
        break;
      }
      const Job& job = env_.jobs.Get(id);
      const JobInfo& info = job_info_.at(id);
      if (now - info.last_migration < config_.min_migration_interval) {
        continue;
      }
      const GpuGeneration current = GenOf(info.home);
      for (GpuGeneration missing : kAllGenerations) {
        if (missing == current || env_.cluster.total_gpus(missing) == 0) {
          continue;
        }
        if (!env_.zoo.Get(job.model).FitsGeneration(missing)) {
          continue;  // cannot even load there — nothing to profile
        }
        if (profiles_.HasEstimate(job.model, missing)) {
          continue;
        }
        // Cheapest server of the missing generation that can host the gang.
        ServerId dest = ServerId::Invalid();
        double dest_load = std::numeric_limits<double>::infinity();
        for (ServerId sid : env_.cluster.servers_of(missing)) {
          const auto& server = env_.cluster.server(sid);
          if (server.num_gpus() < job.gang_size || IsDraining(sid)) {
            continue;
          }
          const double load = stride_for(sid).TicketLoad() / server.num_gpus();
          if (load < dest_load) {
            dest_load = load;
            dest = sid;
          }
        }
        if (dest.valid()) {
          GFAIR_DLOG << "probe: job " << id << " -> " << cluster::GenerationName(missing);
          StartMigration(id, dest, MigrationCause::kProbe);
          ++probes_started_;
          --budget;
          probed = true;  // one probe per user per epoch
          break;
        }
      }
    }
  }
}

void GandivaFairScheduler::TradeTick() {
  if (!config_.enable_trading || !env_.cluster.heterogeneous()) {
    return;
  }
  const std::vector<UserId> active = ActiveUsers();
  if (active.size() < 2) {
    // Nobody to trade with: no probes either (a probe strands the lone
    // user's job on a slower pool with no trade flow to bring it back).
    ticket_matrix_.ResetToBase();
    RefreshAllTickets();
    return;
  }
  RunProbes();

  TradeInputs inputs;
  inputs.active_users = active;
  for (UserId user : active) {
    // Matrix base = hierarchy-adjusted effective tickets (== the user's own
    // tickets when hierarchical sharing is off or the user is ungrouped).
    inputs.base_tickets[user] = ticket_matrix_.base(user);
    inputs.total_demand_gpus[user] = user_total_demand_.at(user);
  }
  for (GpuGeneration gen : kAllGenerations) {
    inputs.pool_sizes[GenerationIndex(gen)] = env_.cluster.total_gpus(gen);
  }
  inputs.user_speedup = [this](UserId user, GpuGeneration fast, GpuGeneration slow,
                               double* out) {
    return UserSpeedup(user, fast, slow, out);
  };

  const TradeOutcome outcome = trading_.ComputeEpoch(inputs);

  ticket_matrix_.ResetToBase();
  if (!outcome.trades.empty()) {
    // Pool tickets become the traded entitlements (stride normalizes within
    // each pool, so entitlement GPUs double as tickets).
    for (const auto& [user, entitlement] : outcome.entitlements) {
      for (GpuGeneration gen : kAllGenerations) {
        ticket_matrix_.Set(user, gen,
                           std::max(entitlement[GenerationIndex(gen)], 0.0));
      }
    }
    executed_trades_.insert(executed_trades_.end(), outcome.trades.begin(),
                            outcome.trades.end());
    for (size_t i = 0; i < outcome.trades.size(); ++i) {
      decisions_.Record(env_.sim.Now(), DecisionType::kTrade, JobId::Invalid());
    }
  }
  RefreshAllTickets();
  if (!outcome.trades.empty()) {
    RebalanceResidency(outcome);
  }
}

void GandivaFairScheduler::RebalanceResidency(const TradeOutcome& outcome) {
  int budget = config_.max_trade_migrations;
  const SimTime now = env_.sim.Now();

  for (const auto& [user, entitlement] : outcome.entitlements) {
    while (budget > 0) {
      cluster::PerGeneration<double> surplus{};
      for (GpuGeneration gen : kAllGenerations) {
        surplus[GenerationIndex(gen)] =
            entitlement[GenerationIndex(gen)] - ResidentDemand(user, gen);
      }
      // Most over-resident pool and most under-used entitlement.
      size_t over = 0;
      size_t under = 0;
      for (size_t g = 1; g < cluster::kNumGenerations; ++g) {
        if (surplus[g] < surplus[over]) {
          over = g;
        }
        if (surplus[g] > surplus[under]) {
          under = g;
        }
      }
      // Deadband: entitlements are fractional while residency moves in whole
      // gangs, so small mismatches are permanent — chasing them would
      // migrate the same jobs back and forth every epoch.
      if (surplus[over] > -1.0 || surplus[under] < 1.0) {
        break;
      }
      auto it = user_pool_jobs_.find(user);
      if (it == user_pool_jobs_.end()) {
        break;
      }

      // Smallest gang that the destination surplus still covers.
      JobId candidate = JobId::Invalid();
      int candidate_gang = INT32_MAX;
      for (JobId id : it->second[over]) {
        const Job& job = env_.jobs.Get(id);
        const JobInfo& info = job_info_.at(id);
        if (now - info.last_migration < config_.min_migration_interval) {
          continue;
        }
        if (!env_.zoo.Get(job.model).FitsGeneration(kAllGenerations[under])) {
          continue;
        }
        if (job.gang_size <= surplus[under] && job.gang_size < candidate_gang) {
          candidate = id;
          candidate_gang = job.gang_size;
        }
      }
      if (!candidate.valid()) {
        break;
      }
      const GpuGeneration dest_gen = kAllGenerations[under];
      ServerId dest = ServerId::Invalid();
      double dest_load = std::numeric_limits<double>::infinity();
      for (ServerId sid : env_.cluster.servers_of(dest_gen)) {
        const auto& server = env_.cluster.server(sid);
        if (server.num_gpus() < candidate_gang || IsDraining(sid)) {
          continue;
        }
        const double load = stride_for(sid).TicketLoad() / server.num_gpus();
        if (load < dest_load) {
          dest_load = load;
          dest = sid;
        }
      }
      if (!dest.valid()) {
        break;
      }
      StartMigration(candidate, dest, MigrationCause::kTrade);
      --budget;
    }
    if (budget <= 0) {
      break;
    }
  }
}

}  // namespace gfair::sched
