// InvariantChecker — cluster-wide invariants of the GandivaFair scheduler,
// checked as a unit after every quantum (Debug/sanitizer builds) and from
// the property/fuzz suites.
//
// The spot GFAIR_DCHECKs scattered through the subsystems each guard one
// local bookkeeping step; this checker asserts the END-TO-END properties the
// paper's claims rest on, across subsystem boundaries:
//
//   gang-residency      a resident job holds either its whole gang or
//                       nothing, on exactly its home server; every occupied
//                       GPU slot belongs to a running resident (all-or-
//                       nothing gang semantics, §time-slicing)
//   entitlement-conservation
//                       per pool, active users' entitlements are
//                       non-negative and sum to exactly the pool's UP
//                       capacity — trades redistribute GPUs, never mint or
//                       destroy them (§trading)
//   pass-monotonicity   stride passes and per-server virtual time never move
//                       backwards (re-entry/migration floors jump forward,
//                       never back) — the fairness accounting is monotone
//   delta-ordering      within each server's slice of a ScheduleDelta,
//                       suspends precede resumes, so a resumed gang's GPUs
//                       were freed in the same slice (§quantum pipeline)
//   down-holds-nothing  a down server holds no GPUs, hosts no stride
//                       residents, and is nobody's (non-migrating) home
//                       (§failure model)
//
// Invariants are REGISTERED in a static name → method table (Registry());
// Check() runs them all and returns human-readable violations instead of
// aborting, so property tests can assert emptiness and print the full list,
// while the facade's post-quantum debug hook turns any violation into a
// GFAIR_CHECK failure. The checker is stateful (pass-monotonicity compares
// against the previous check) but never mutates scheduler state — it reads
// through const references only.
#ifndef GFAIR_SCHED_INVARIANT_CHECKER_H_
#define GFAIR_SCHED_INVARIANT_CHECKER_H_

#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/types.h"
#include "sched/scheduler_iface.h"

namespace gfair::sched {

class GandivaFairScheduler;

class InvariantChecker {
 public:
  InvariantChecker(const SchedulerEnv& env, const GandivaFairScheduler& sched)
      : env_(env), sched_(sched) {}

  // Runs every registered invariant; returns one "name: detail" line per
  // violation (empty = all invariants hold). Also advances the
  // pass-monotonicity baseline to the current state.
  std::vector<std::string> Check();

  // Names of the registered invariants, in registration (check) order.
  static std::vector<std::string> RegisteredNames();

 private:
  using CheckFn = void (InvariantChecker::*)(std::vector<std::string>* out) const;
  struct Registration {
    const char* name;
    CheckFn fn;
  };
  static const std::vector<Registration>& Registry();

  void CheckGangResidency(std::vector<std::string>* out) const;
  void CheckEntitlementConservation(std::vector<std::string>* out) const;
  void CheckPassMonotonicity(std::vector<std::string>* out) const;
  void CheckDeltaOrdering(std::vector<std::string>* out) const;
  void CheckDownServersHoldNothing(std::vector<std::string>* out) const;
  void CheckGpuTimeConservation(std::vector<std::string>* out) const;

  const SchedulerEnv& env_;
  const GandivaFairScheduler& sched_;

  // --- pass-monotonicity baseline (previous Check() call) ---
  struct JobBaseline {
    ServerId server = ServerId::Invalid();
    Pass pass;
  };
  std::vector<JobBaseline> last_pass_;  // indexed by job id
  std::vector<Pass> last_vt_;           // indexed by server id
  SimTime last_check_ = kTimeZero;
  bool has_baseline_ = false;
};

}  // namespace gfair::sched

#endif  // GFAIR_SCHED_INVARIANT_CHECKER_H_
