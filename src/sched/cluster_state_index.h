// ClusterStateIndex — incrementally-maintained per-server scheduler state.
//
// The shared state layer every GandivaFair subsystem operates on. It owns the
// per-server LocalStrideScheduler instances (whose ticket/demand loads are
// themselves cached, see stride.h), the per-server draining flags, and — the
// piece that makes cluster-wide queries cheap — one ordered set per GPU
// generation of that pool's servers keyed by normalized ticket load
// (tickets per physical GPU), plus ServerId as the tie-breaker.
//
// Invariants:
//  * By the time any ordered-set query runs, a server's position in its
//    pool's set reflects stride(s).TicketLoad() / num_gpus(s). Mutations that
//    can change a ticket load go through AddJob/RemoveJob/SetTickets here,
//    which mark the server's position dirty; queries flush dirty positions
//    first. Deferring the reposition keeps ticket refreshes O(1) per job —
//    an eager reposition would recompute the server's whole ticket load on
//    every SetTickets, re-creating the quadratic refresh this index removes.
//    stride() gives raw access only for operations that cannot change loads
//    (Charge, SelectForQuantum, reads).
//  * Ties in the ordered set resolve to the lower ServerId. Because
//    Cluster::servers_of() lists ids in ascending order, a "first strictly
//    smaller wins" linear scan and a walk of this set agree on the winner —
//    which keeps index-backed least-loaded queries decision-identical to the
//    pre-index linear scans.
#ifndef GFAIR_SCHED_CLUSTER_STATE_INDEX_H_
#define GFAIR_SCHED_CLUSTER_STATE_INDEX_H_

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "common/check.h"
#include "common/types.h"
#include "sched/stride.h"

namespace gfair::sched {

class ClusterStateIndex {
 public:
  ClusterStateIndex(const cluster::Cluster& cluster, const StrideConfig& stride_config);

  // --- per-server stride access ---
  // Raw access for load-neutral operations (Charge, PlanQuantum, reads).
  // Inline: these run once or more per job per quantum.
  LocalStrideScheduler& stride(ServerId server) {
    GFAIR_CHECK(server.valid() && server.value() < strides_.size());
    return strides_[server.value()];
  }
  const LocalStrideScheduler& stride(ServerId server) const {
    GFAIR_CHECK(server.valid() && server.value() < strides_.size());
    return strides_[server.value()];
  }

  // --- load-changing mutations (keep the pool ordering fresh) ---
  void AddJob(ServerId server, JobId id, int gang_size, Tickets tickets);
  void RemoveJob(ServerId server, JobId id);
  void SetTickets(ServerId server, JobId id, Tickets tickets);
  // Runnable toggles change ticket/demand loads and the selectable set, so
  // they go through the index too (pool reposition + plan dirty).
  void SetRunnable(ServerId server, JobId id, bool runnable);

  // --- draining ---
  void SetDraining(ServerId server, bool draining);
  bool draining(ServerId server) const {
    GFAIR_CHECK(server.valid() && server.value() < draining_.size());
    return draining_[server.value()];
  }
  // True when any server is currently draining (lets periodic drain batches
  // short-circuit).
  bool AnyDraining() const { return num_draining_ > 0; }

  // --- availability ---
  // Mirror of the cluster's up/down flag, set by the facade's server-down/up
  // handlers. A down server is invisible to LeastLoadedServer; its stride
  // state stays intact only transiently (the orphan callbacks that follow a
  // failure detach every resident job).
  void SetDown(ServerId server, bool down);
  bool down(ServerId server) const {
    GFAIR_CHECK(server.valid() && server.value() < down_.size());
    return down_[server.value()];
  }
  bool AnyDown() const { return num_down_ > 0; }

  // --- plan dirty-set (consumed by QuantumPlanner) ---
  // A server is plan-dirty when its selectable set may have changed since the
  // facade last accepted a plan for it: job arrival/completion/migration
  // (AddJob/RemoveJob), ticket changes, runnable toggles, and up/down
  // transitions all mark it. The flag is one half of the planner's skip
  // condition — see QuantumPlanner for the invariant and the other half.
  bool plan_dirty(ServerId server) const {
    GFAIR_CHECK(server.valid() && server.value() < plan_dirty_.size());
    return plan_dirty_[server.value()] != 0;
  }
  // The facade clears the flag when it commits a plan for the server (the
  // planner itself is pure and touches nothing).
  void ClearPlanDirty(ServerId server) {
    GFAIR_CHECK(server.valid() && server.value() < plan_dirty_.size());
    plan_dirty_[server.value()] = 0;
  }

  // --- queries ---
  // Normalized ticket load (tickets per physical GPU) — O(1) amortized. A
  // bare double on purpose: it is the pool ordering key (PoolByLoad below),
  // not a fairness quantity.
  double NormTicketLoad(ServerId server) const;  // gfair-lint: allow(raw-double-in-sched-api)

  // Least-normalized-ticket-load server of `gen` with at least `min_gpus`
  // GPUs, not draining, and not `exclude`. O(log n) plus filtered prefix.
  // Invalid when no server qualifies.
  ServerId LeastLoadedServer(cluster::GpuGeneration gen, int min_gpus,
                             ServerId exclude = ServerId::Invalid()) const;

  // The pool's (normalized load, server) pairs in ascending order.
  using PoolByLoad = std::set<std::pair<double, ServerId>>;
  const PoolByLoad& pool_by_load(cluster::GpuGeneration gen) const {
    Flush();
    return pools_by_load_[cluster::GenerationIndex(gen)];
  }

  size_t num_servers() const { return strides_.size(); }

 private:
  void MarkDirty(ServerId server);
  void MarkPlanDirty(ServerId server) { plan_dirty_[server.value()] = 1; }
  // Repositions every dirty server in its pool's ordered set.
  void Flush() const;
  void Reposition(ServerId server) const;

  const cluster::Cluster& cluster_;
  std::vector<LocalStrideScheduler> strides_;  // indexed by ServerId value
  std::vector<bool> draining_;
  int num_draining_ = 0;
  std::vector<bool> down_;
  int num_down_ = 0;
  // uint8_t, not vector<bool>: read once per server per quantum.
  std::vector<uint8_t> plan_dirty_;

  // Lazily-maintained pool orderings (see header comment).
  mutable std::vector<double> load_key_;  // key currently in the pool set
  mutable std::vector<bool> pos_dirty_;
  mutable std::vector<ServerId> dirty_list_;
  mutable cluster::PerGeneration<PoolByLoad> pools_by_load_;
};

}  // namespace gfair::sched

#endif  // GFAIR_SCHED_CLUSTER_STATE_INDEX_H_
