// ClusterStateIndex — incrementally-maintained per-server scheduler state.
//
// The shared state layer every GandivaFair subsystem operates on. It owns the
// per-server LocalStrideScheduler instances (whose ticket/demand loads are
// themselves cached, see stride.h), the per-server draining flags, and — the
// piece that makes cluster-wide queries cheap — one ordered set per GPU
// generation of that pool's servers keyed by normalized ticket load
// (tickets per physical GPU), plus ServerId as the tie-breaker.
//
// Invariants:
//  * By the time any ordered-set query runs, a server's position in its
//    pool's set reflects stride(s).TicketLoad() / num_gpus(s). Mutations that
//    can change a ticket load go through AddJob/RemoveJob/SetTickets here,
//    which mark the server's position dirty; queries flush dirty positions
//    first. Deferring the reposition keeps ticket refreshes O(1) per job —
//    an eager reposition would recompute the server's whole ticket load on
//    every SetTickets, re-creating the quadratic refresh this index removes.
//    stride() gives raw access only for operations that cannot change loads
//    (Charge, SelectForQuantum, reads).
//  * Ties in the ordered set resolve to the lower ServerId. Because
//    Cluster::servers_of() lists ids in ascending order, a "first strictly
//    smaller wins" linear scan and a walk of this set agree on the winner —
//    which keeps index-backed least-loaded queries decision-identical to the
//    pre-index linear scans.
#ifndef GFAIR_SCHED_CLUSTER_STATE_INDEX_H_
#define GFAIR_SCHED_CLUSTER_STATE_INDEX_H_

#include <set>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "common/types.h"
#include "sched/stride.h"

namespace gfair::sched {

class ClusterStateIndex {
 public:
  ClusterStateIndex(const cluster::Cluster& cluster, const StrideConfig& stride_config);

  // --- per-server stride access ---
  // Raw access for load-neutral operations (Charge, SelectForQuantum, reads).
  LocalStrideScheduler& stride(ServerId server);
  const LocalStrideScheduler& stride(ServerId server) const;

  // --- load-changing mutations (keep the pool ordering fresh) ---
  void AddJob(ServerId server, JobId id, int gang_size, double tickets);
  void RemoveJob(ServerId server, JobId id);
  void SetTickets(ServerId server, JobId id, double tickets);

  // --- draining ---
  void SetDraining(ServerId server, bool draining);
  bool draining(ServerId server) const;
  // True when any server is currently draining (lets periodic drain batches
  // short-circuit).
  bool AnyDraining() const { return num_draining_ > 0; }

  // --- availability ---
  // Mirror of the cluster's up/down flag, set by the facade's server-down/up
  // handlers. A down server is invisible to LeastLoadedServer; its stride
  // state stays intact only transiently (the orphan callbacks that follow a
  // failure detach every resident job).
  void SetDown(ServerId server, bool down);
  bool down(ServerId server) const;
  bool AnyDown() const { return num_down_ > 0; }

  // --- queries ---
  // Normalized ticket load (tickets per physical GPU) — O(1) amortized.
  double NormTicketLoad(ServerId server) const;

  // Least-normalized-ticket-load server of `gen` with at least `min_gpus`
  // GPUs, not draining, and not `exclude`. O(log n) plus filtered prefix.
  // Invalid when no server qualifies.
  ServerId LeastLoadedServer(cluster::GpuGeneration gen, int min_gpus,
                             ServerId exclude = ServerId::Invalid()) const;

  // The pool's (normalized load, server) pairs in ascending order.
  using PoolByLoad = std::set<std::pair<double, ServerId>>;
  const PoolByLoad& pool_by_load(cluster::GpuGeneration gen) const {
    Flush();
    return pools_by_load_[cluster::GenerationIndex(gen)];
  }

  size_t num_servers() const { return strides_.size(); }

 private:
  void MarkDirty(ServerId server);
  // Repositions every dirty server in its pool's ordered set.
  void Flush() const;
  void Reposition(ServerId server) const;

  const cluster::Cluster& cluster_;
  std::vector<LocalStrideScheduler> strides_;  // indexed by ServerId value
  std::vector<bool> draining_;
  int num_draining_ = 0;
  std::vector<bool> down_;
  int num_down_ = 0;

  // Lazily-maintained pool orderings (see header comment).
  mutable std::vector<double> load_key_;  // key currently in the pool set
  mutable std::vector<bool> pos_dirty_;
  mutable std::vector<ServerId> dirty_list_;
  mutable cluster::PerGeneration<PoolByLoad> pools_by_load_;
};

}  // namespace gfair::sched

#endif  // GFAIR_SCHED_CLUSTER_STATE_INDEX_H_
