// Hierarchical (two-level) fair sharing: group -> user.
//
// A group's weight is the sum of ALL its members' base tickets (a static
// provisioning decision); at any instant that weight is split among the
// group's ACTIVE members proportional to their base tickets. Consequences:
//   * a group's share of the cluster does not change as members come and go
//     (an active member inherits its idle teammates' share);
//   * between groups, shares stay proportional to provisioned weights.
// Ungrouped users participate with their own base tickets, unchanged.
//
// The paper evaluates per-user fairness; this is the natural extension for
// organizations with team-level quotas, and it composes with trading because
// it only redefines the base tickets the trading engine starts from.
#ifndef GFAIR_SCHED_HIERARCHY_H_
#define GFAIR_SCHED_HIERARCHY_H_

#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "workload/user.h"

namespace gfair::sched {

// Effective tickets for each user in `active` (all must exist in `users`).
std::unordered_map<UserId, Tickets> ComputeHierarchicalTickets(
    const workload::UserTable& users, const std::vector<UserId>& active);

}  // namespace gfair::sched

#endif  // GFAIR_SCHED_HIERARCHY_H_
