// TicketMatrix — per-user, per-generation ticket allocations.
//
// Fair share starts from each user's base tickets applied uniformly to every
// GPU-generation pool; the trading engine then reshapes the matrix each epoch
// (lend fast-pool tickets, receive slow-pool tickets). Local stride
// schedulers normalize tickets within a pool, so only ratios matter.
#ifndef GFAIR_SCHED_TICKET_MATRIX_H_
#define GFAIR_SCHED_TICKET_MATRIX_H_

#include <unordered_map>

#include "cluster/gpu.h"
#include "common/check.h"
#include "common/types.h"

namespace gfair::sched {

class TicketMatrix {
 public:
  // Registers a user with its base tickets (idempotent; re-registering
  // updates the base and resets that user's row to it).
  void RegisterUser(UserId user, Tickets base);

  bool HasUser(UserId user) const { return rows_.count(user) > 0; }

  Tickets base(UserId user) const;

  // Tickets of `user` on pool `gen`; CHECK-fails for unknown users.
  Tickets Get(UserId user, cluster::GpuGeneration gen) const;
  void Set(UserId user, cluster::GpuGeneration gen, Tickets tickets);

  // Resets every row to its base (start of a trading epoch).
  void ResetToBase();

  // Sum of tickets on pool `gen` over the given users.
  template <typename UserRange>
  Tickets PoolTotal(cluster::GpuGeneration gen, const UserRange& users) const {
    Tickets total = 0.0;
    for (UserId user : users) {
      total += Get(user, gen);
    }
    return total;
  }

 private:
  struct Row {
    Tickets base;
    cluster::PerGeneration<Tickets> per_gen;
  };
  std::unordered_map<UserId, Row> rows_;
};

}  // namespace gfair::sched

#endif  // GFAIR_SCHED_TICKET_MATRIX_H_
