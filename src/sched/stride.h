// LocalStrideScheduler — gang-aware stride scheduling for one server.
//
// Classic stride scheduling generalized to GPU gangs, following the paper's
// split-stride design: the central scheduler decides which jobs are resident
// on a server; this local scheduler decides, each quantum, which resident
// jobs hold the server's GPUs.
//
//  * Each job has `tickets`; its pass advances by gang_size * Δt / tickets
//    while it runs, so a k-GPU gang is charged k times faster — GPU-time (not
//    wall-time) ends up proportional to tickets.
//  * Selection each quantum walks jobs in increasing pass order and packs
//    them onto the GPUs, skipping (backfilling past) jobs that do not fit
//    the remaining capacity. Because every GPU is reassignable at a quantum
//    boundary, a waiting gang whose pass is strictly minimal always fits and
//    runs — the fairness guarantee needs no reservation here.
//  * Two gang-awareness knobs (both on for Gandiva_fair, both off for the
//    "plain stride" baseline):
//      - big_job_first: at equal pass, larger gangs are placed first. New
//        jobs enter at the virtual time, i.e. exactly tied with the
//        longest-waiting job — under a stream of small arrivals, small-first
//        tie-breaking starves a big gang forever (experiment E3);
//      - reserve_blocked_gang: consumed by the facade's mid-quantum
//        work-conservation path, where GPUs free up incrementally as jobs
//        finish: stop backfilling behind a blocked head gang so its GPUs can
//        accumulate instead of being nibbled away by later jobs.
//  * New jobs start at the scheduler's virtual time (the minimum pass of
//    resident jobs) so they neither owe history nor get free credit.
//
// Aggregates (ticket load, demand load, the sorted resident set) are cached:
// they are invalidated by the membership/ticket mutations and recomputed at
// most once per mutation instead of on every read. Charging a quantum —
// which reads TicketLoad() once per charged job — is therefore O(jobs) per
// server instead of O(jobs²). The recompute walks `entries_` in container
// order — insertion order, stable across platforms — so cached reads are
// bit-identical to uncached ones; an incrementally maintained shadow sum is
// asserted against the recompute in debug builds.
//
// Entries live in a flat insertion-ordered vector rather than a hash map:
// per-server job counts are small (tens), so a linear scan over contiguous
// memory beats hashing on every lookup, and iteration (selection, the
// aggregate recomputes) is a cache-line walk. This container is on the
// cluster-wide per-quantum hot path.
#ifndef GFAIR_SCHED_STRIDE_H_
#define GFAIR_SCHED_STRIDE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/sim_time.h"
#include "common/types.h"

namespace gfair::sched {

struct StrideConfig {
  bool big_job_first = true;
  bool reserve_blocked_gang = true;
};

class LocalStrideScheduler {
 public:
  explicit LocalStrideScheduler(int num_gpus, StrideConfig config = {});

  // Registers a resident job. Its pass starts at the current virtual time.
  void AddJob(JobId id, int gang_size, double tickets);

  // Unregisters a job (finished or migrated away).
  void RemoveJob(JobId id);

  // Updates a job's tickets (trading epochs, per-job splits changing).
  void SetTickets(JobId id, double tickets);

  // Marks a job (not) selectable without unregistering it.
  void SetRunnable(JobId id, bool runnable);

  bool Contains(JobId id) const { return FindEntry(id) != entries_.end(); }
  size_t num_jobs() const { return entries_.size(); }
  int num_gpus() const { return num_gpus_; }

  // Sum of tickets over resident runnable jobs — the server's "ticket load"
  // used by placement and the load balancer. O(1) amortized (cached; see
  // file comment).
  double TicketLoad() const;

  // Total GPUs demanded by resident runnable jobs. O(1) (maintained
  // incrementally; integer arithmetic, so exact).
  int DemandLoad() const;

  // The set of jobs that should hold GPUs for the next quantum. Returns a
  // reference to an internal buffer that the next SelectForQuantum() call on
  // this instance overwrites — copy it to hold across calls.
  const std::vector<JobId>& SelectForQuantum();

  // Charges `ms` of wall time on the job's whole gang.
  void Charge(JobId id, SimDuration ms);

  double PassOf(JobId id) const;
  int GangOf(JobId id) const;
  double TicketsOf(JobId id) const;
  double VirtualTime() const { return virtual_time_; }

  // Resident jobs sorted by id. Returns a reference to a cached vector that
  // is invalidated by AddJob/RemoveJob — callers that migrate or remove jobs
  // while iterating must take a copy first.
  const std::vector<JobId>& ResidentJobs() const;

 private:
  struct Entry {
    int gang_size;
    double tickets;
    double pass;
    bool runnable;
  };
  using EntryList = std::vector<std::pair<JobId, Entry>>;

  // O(1) via index_of_; Charge/SetRunnable/SetTickets run per job per
  // quantum, so lookups must not scan.
  EntryList::iterator FindEntry(JobId id) {
    if (id.valid() && id.value() < index_of_.size() && index_of_[id.value()] != 0) {
      return entries_.begin() + (index_of_[id.value()] - 1);
    }
    return entries_.end();
  }
  EntryList::const_iterator FindEntry(JobId id) const {
    if (id.valid() && id.value() < index_of_.size() && index_of_[id.value()] != 0) {
      return entries_.begin() + (index_of_[id.value()] - 1);
    }
    return entries_.end();
  }

  const Entry& GetEntry(JobId id) const;
  void UpdateVirtualTime();
  // A membership or ticket mutation changed the aggregates.
  void InvalidateAggregates(bool membership_changed);

  int num_gpus_;
  StrideConfig config_;
  EntryList entries_;
  // Dense job-id → position+1 in entries_ (0 = absent); sized by the largest
  // job id ever resident here. Kept in sync by AddJob/RemoveJob.
  std::vector<uint32_t> index_of_;
  // Monotone floor for newcomer passes; tracks min runnable pass.
  double virtual_time_ = 0.0;

  // --- cached aggregates ---
  // Authoritative ticket load: lazily recomputed in entries_ order so the
  // value matches an uncached recompute bit-for-bit.
  mutable double ticket_load_cache_ = 0.0;
  mutable bool ticket_load_dirty_ = false;  // empty scheduler sums to 0
  // Shadow incremental sum, asserted against the recompute in debug builds.
  double ticket_load_shadow_ = 0.0;
  // Runnable demand is a sum of small ints — incremental updates are exact.
  int demand_load_ = 0;
  mutable std::vector<JobId> resident_cache_;
  mutable bool resident_dirty_ = false;

  // --- selection scratch (reused across SelectForQuantum calls) ---
  // `tie` packs the (gang, id) tie-break into one integer — gang key in the
  // high half (inverted when big_job_first so bigger gangs order first), id
  // in the low half — so the sort comparator is two flat compares instead of
  // a three-level branch chain.
  struct Candidate {
    double pass;
    uint64_t tie;
    int gang;
  };
  std::vector<Candidate> candidate_scratch_;
  std::vector<JobId> selected_scratch_;
};

}  // namespace gfair::sched

#endif  // GFAIR_SCHED_STRIDE_H_
