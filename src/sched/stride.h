// LocalStrideScheduler — gang-aware stride scheduling for one server.
//
// Classic stride scheduling generalized to GPU gangs, following the paper's
// split-stride design: the central scheduler decides which jobs are resident
// on a server; this local scheduler decides, each quantum, which resident
// jobs hold the server's GPUs.
//
//  * Each job has `tickets`; its pass advances by gang_size * Δt / tickets
//    while it runs, so a k-GPU gang is charged k times faster — GPU-time (not
//    wall-time) ends up proportional to tickets.
//  * Selection each quantum walks jobs in increasing pass order and packs
//    them onto the GPUs, skipping (backfilling past) jobs that do not fit
//    the remaining capacity. Because every GPU is reassignable at a quantum
//    boundary, a waiting gang whose pass is strictly minimal always fits and
//    runs — the fairness guarantee needs no reservation here.
//  * Two gang-awareness knobs (both on for Gandiva_fair, both off for the
//    "plain stride" baseline):
//      - big_job_first: at equal pass, larger gangs are placed first. New
//        jobs enter at the virtual time, i.e. exactly tied with the
//        longest-waiting job — under a stream of small arrivals, small-first
//        tie-breaking starves a big gang forever (experiment E3);
//      - reserve_blocked_gang: consumed by the facade's mid-quantum
//        work-conservation path, where GPUs free up incrementally as jobs
//        finish: stop backfilling behind a blocked head gang so its GPUs can
//        accumulate instead of being nibbled away by later jobs.
//  * New jobs start at the scheduler's virtual time (the minimum pass of
//    resident jobs) so they neither owe history nor get free credit.
#ifndef GFAIR_SCHED_STRIDE_H_
#define GFAIR_SCHED_STRIDE_H_

#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/sim_time.h"
#include "common/types.h"

namespace gfair::sched {

struct StrideConfig {
  bool big_job_first = true;
  bool reserve_blocked_gang = true;
};

class LocalStrideScheduler {
 public:
  explicit LocalStrideScheduler(int num_gpus, StrideConfig config = {});

  // Registers a resident job. Its pass starts at the current virtual time.
  void AddJob(JobId id, int gang_size, double tickets);

  // Unregisters a job (finished or migrated away).
  void RemoveJob(JobId id);

  // Updates a job's tickets (trading epochs, per-job splits changing).
  void SetTickets(JobId id, double tickets);

  // Marks a job (not) selectable without unregistering it.
  void SetRunnable(JobId id, bool runnable);

  bool Contains(JobId id) const { return entries_.count(id) > 0; }
  size_t num_jobs() const { return entries_.size(); }
  int num_gpus() const { return num_gpus_; }

  // Sum of tickets over resident runnable jobs — the server's "ticket load"
  // used by placement and the load balancer.
  double TicketLoad() const;

  // Total GPUs demanded by resident runnable jobs.
  int DemandLoad() const;

  // The set of jobs that should hold GPUs for the next quantum.
  std::vector<JobId> SelectForQuantum();

  // Charges `ms` of wall time on the job's whole gang.
  void Charge(JobId id, SimDuration ms);

  double PassOf(JobId id) const;
  int GangOf(JobId id) const;
  double TicketsOf(JobId id) const;
  double VirtualTime() const { return virtual_time_; }
  std::vector<JobId> ResidentJobs() const;

 private:
  struct Entry {
    int gang_size;
    double tickets;
    double pass;
    bool runnable;
  };

  const Entry& GetEntry(JobId id) const;
  void UpdateVirtualTime();

  int num_gpus_;
  StrideConfig config_;
  std::unordered_map<JobId, Entry> entries_;
  // Monotone floor for newcomer passes; tracks min runnable pass.
  double virtual_time_ = 0.0;
};

}  // namespace gfair::sched

#endif  // GFAIR_SCHED_STRIDE_H_
