// LocalStrideScheduler — gang-aware stride scheduling for one server.
//
// Classic stride scheduling generalized to GPU gangs, following the paper's
// split-stride design: the central scheduler decides which jobs are resident
// on a server; this local scheduler decides, each quantum, which resident
// jobs hold the server's GPUs.
//
//  * Each job has `tickets`; its pass advances by gang_size * Δt / tickets
//    while it runs, so a k-GPU gang is charged k times faster — GPU-time (not
//    wall-time) ends up proportional to tickets.
//  * Selection each quantum walks jobs in increasing pass order and packs
//    them onto the GPUs, skipping (backfilling past) jobs that do not fit
//    the remaining capacity. Because every GPU is reassignable at a quantum
//    boundary, a waiting gang whose pass is strictly minimal always fits and
//    runs — the fairness guarantee needs no reservation here.
//  * Two gang-awareness knobs (both on for Gandiva_fair, both off for the
//    "plain stride" baseline):
//      - big_job_first: at equal pass, larger gangs are placed first. New
//        jobs enter at the virtual time, i.e. exactly tied with the
//        longest-waiting job — under a stream of small arrivals, small-first
//        tie-breaking starves a big gang forever (experiment E3);
//      - reserve_blocked_gang: consumed by the facade's mid-quantum
//        work-conservation path, where GPUs free up incrementally as jobs
//        finish: stop backfilling behind a blocked head gang so its GPUs can
//        accumulate instead of being nibbled away by later jobs.
//  * New jobs start at the scheduler's virtual time (the minimum pass of
//    resident jobs) so they neither owe history nor get free credit.
//
// Selection order comes from an incrementally maintained min-heap keyed on
// (pass, gang tie-break, id) instead of a per-quantum sort of every resident
// job. The heap uses lazy re-keying: Charge only bumps the entry's pass (the
// hot path touches no heap memory); a heap item whose stored pass no longer
// matches is re-pushed with the current pass when it surfaces at the top.
// Because passes only ever increase, a stored key is always a lower bound on
// the true key, so the first top whose stored pass is current is the true
// minimum — extraction order is bit-identical to sorting by the same
// (pass, tie) total order, which is strict (ids are unique). Removal and
// runnable toggles invalidate items by bumping a per-job generation stamp;
// tombstones are dropped at pop time and the heap is rebuilt when they
// outnumber live entries. Cost per quantum is O(k log n) for k charged +
// selected jobs rather than O(n log n) for n residents.
//
// Aggregates (ticket load, demand load, the sorted resident set) are cached:
// they are invalidated by the membership/ticket mutations and recomputed at
// most once per mutation instead of on every read. Charging a quantum —
// which reads TicketLoad() once per charged job — is therefore O(jobs) per
// server instead of O(jobs²). The recompute walks `entries_` in container
// order — insertion order, stable across platforms — so cached reads are
// bit-identical to uncached ones; an incrementally maintained shadow sum is
// asserted against the recompute in debug builds.
//
// Entries live in a flat insertion-ordered vector rather than a hash map:
// per-server job counts are small (tens), so a linear scan over contiguous
// memory beats hashing on every lookup, and iteration (selection, the
// aggregate recomputes) is a cache-line walk. This container is on the
// cluster-wide per-quantum hot path.
#ifndef GFAIR_SCHED_STRIDE_H_
#define GFAIR_SCHED_STRIDE_H_

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/sim_time.h"
#include "common/types.h"

namespace gfair::sched {

struct StrideConfig {
  bool big_job_first = true;
  bool reserve_blocked_gang = true;
};

class LocalStrideScheduler {
 public:
  explicit LocalStrideScheduler(int num_gpus, StrideConfig config = {});

  // Registers a resident job. Its pass starts at the current virtual time.
  void AddJob(JobId id, int gang_size, Tickets tickets);

  // Unregisters a job (finished or migrated away).
  void RemoveJob(JobId id);

  // Updates a job's tickets (trading epochs, per-job splits changing).
  // Tickets do not enter the selection key, so the heap needs no rebuild.
  void SetTickets(JobId id, Tickets tickets);

  // Marks a job (not) selectable without unregistering it.
  void SetRunnable(JobId id, bool runnable);

  bool Contains(JobId id) const { return FindEntry(id) != entries_.end(); }
  size_t num_jobs() const { return entries_.size(); }
  int num_gpus() const { return num_gpus_; }

  // Sum of tickets over resident runnable jobs — the server's "ticket load"
  // used by placement and the load balancer. O(1) amortized (cached; see
  // file comment). Inline: read once per charged job per quantum.
  Tickets TicketLoad() const {
    if (ticket_load_dirty_) {
      RecomputeTicketLoad();
    }
    return ticket_load_cache_;
  }

  // Total GPUs demanded by resident runnable jobs. O(1) (maintained
  // incrementally; integer arithmetic, so exact).
  int DemandLoad() const;

  // --- quantum planning (pure) vs commit (state change) ---
  //
  // PlanQuantum computes the set of jobs that should hold GPUs for the next
  // quantum without changing scheduler state: logically const (the lazy heap
  // re-keying it performs is cache maintenance, not behavior). It also
  // reports the minimum pass over runnable jobs (+inf when none), which the
  // caller feeds back through AdvanceVirtualTime — the same virtual-time
  // floor update the legacy combined call performed. Splitting the two is
  // what lets a pure planner run over a read-only snapshot and commit later.
  //
  // `out` is overwritten, in selection order.
  void PlanQuantum(std::vector<JobId>* out, Pass* min_runnable_pass) const;
  // Floors the virtual time at `min_runnable_pass` (no-op for +inf).
  void AdvanceVirtualTime(Pass min_runnable_pass);
  // Minimum pass over runnable residents, +inf when none. O(stale heap tops).
  [[nodiscard]] Pass MinRunnablePass() const;
  // Same value via one contiguous scan of the entries, leaving the heap
  // alone. Cheaper than the heap peek exactly when most keys are stale —
  // e.g. on a dirty-skip'd server, where every resident was just charged and
  // the entry array is still cache-hot from the charge walk.
  [[nodiscard]] Pass MinRunnablePassScan() const {
    Pass min_pass = Pass::Infinity();
    for (const auto& [id, entry] : entries_) {
      if (entry.runnable && entry.pass < min_pass) {
        min_pass = entry.pass;
      }
    }
    return min_pass;
  }

  // The set of jobs that should hold GPUs for the next quantum; advances the
  // virtual time as a side effect (PlanQuantum + AdvanceVirtualTime).
  // Returns a reference to an internal buffer that the next call on this
  // instance overwrites — copy it to hold across calls.
  [[nodiscard]] const std::vector<JobId>& SelectForQuantum();

  // Charges `ms` of wall time on the job's whole gang. Touches no heap
  // memory — the stale key is lazily re-pushed at the next selection.
  void Charge(JobId id, SimDuration ms) {
    GFAIR_CHECK(ms >= 0);
    auto it = FindEntry(id);
    GFAIR_CHECK_MSG(it != entries_.end(), "Charge on unknown job");
    Entry& entry = it->second;
    entry.pass += Stride::FromService(static_cast<double>(ms), entry.gang_size, entry.tickets);
    // Virtual time advances with delivered service per runnable ticket. This —
    // not the min-pass floor — is what keeps newcomers from perpetually
    // entering below a waiting job's frozen pass under high churn: short jobs
    // arriving and finishing every quantum would otherwise pin the virtual
    // time while an already-served long job waits forever.
    const Tickets load = TicketLoad();
    if (load > 0.0) {
      virtual_time_ += Stride::FromService(static_cast<double>(ms), entry.gang_size, load);
    }
  }

  Pass PassOf(JobId id) const;
  int GangOf(JobId id) const;
  Tickets TicketsOf(JobId id) const;
  // Whether the job is currently selectable (see SetRunnable). Precondition:
  // resident here.
  bool RunnableOf(JobId id) const;
  Pass VirtualTime() const { return virtual_time_; }

  // Resident jobs sorted by id. Returns a reference to a cached vector that
  // is invalidated by AddJob/RemoveJob — callers that migrate or remove jobs
  // while iterating must take a copy first.
  [[nodiscard]] const std::vector<JobId>& ResidentJobs() const;

 private:
  struct Entry {
    int gang_size;
    Tickets tickets;
    Pass pass;
    bool runnable;
  };
  using EntryList = std::vector<std::pair<JobId, Entry>>;

  // One selection-heap item. `tie` packs the (gang, id) tie-break into one
  // integer — gang key in the high half (inverted when big_job_first so
  // bigger gangs order first), id in the low half — so the heap comparator
  // is two flat compares instead of a three-level branch chain. `gen` stamps
  // the item against heap_gen_: a mismatch marks a tombstone (job removed or
  // runnable-toggled since the push).
  struct HeapItem {
    Pass pass;
    uint64_t tie;
    uint32_t gen;
  };
  // "a comes after b" in the min-(pass, tie) order. A functor, not a free
  // function: the sift loops run a few million times per simulated hour and a
  // function-pointer comparator would block inlining the two compares.
  struct HeapItemAfter {
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      if (a.pass != b.pass) {
        return a.pass > b.pass;
      }
      return a.tie > b.tie;
    }
  };

  // O(1) via index_of_; Charge/SetRunnable/SetTickets run per job per
  // quantum, so lookups must not scan.
  EntryList::iterator FindEntry(JobId id) {
    if (id.valid() && id.value() < index_of_.size() && index_of_[id.value()] != 0) {
      return entries_.begin() + (index_of_[id.value()] - 1);
    }
    return entries_.end();
  }
  EntryList::const_iterator FindEntry(JobId id) const {
    if (id.valid() && id.value() < index_of_.size() && index_of_[id.value()] != 0) {
      return entries_.begin() + (index_of_[id.value()] - 1);
    }
    return entries_.end();
  }

  const Entry& GetEntry(JobId id) const;
  void UpdateVirtualTime();
  // A membership or ticket mutation changed the aggregates.
  void InvalidateAggregates(bool membership_changed);
  void RecomputeTicketLoad() const;

  // --- selection heap (see file comment) ---
  uint64_t TieOf(JobId id, int gang_size) const {
    const uint64_t gang_key =
        config_.big_job_first
            ? ~static_cast<uint64_t>(static_cast<uint32_t>(gang_size))
            : static_cast<uint64_t>(static_cast<uint32_t>(gang_size));
    return (gang_key << 32) | id.value();
  }
  // Hand-rolled sift primitives (std::push_heap/pop_heap cannot express the
  // one-sided re-key FixHeapTop needs: a grown root key only ever sifts down).
  void HeapSiftUp(size_t pos) const;
  void HeapSiftDown(size_t pos) const;
  // Removes the top item (replace with last, sift down).
  void HeapPopTop() const;
  // Pushes a live heap item for `id` with its current pass. The caller must
  // have bumped heap_gen_[id] if the previous item has to die.
  void HeapPushJob(JobId id, const Entry& entry) const;
  // Invalidates any live heap item for `id` (tombstone).
  void HeapInvalidate(JobId id) {
    heap_gen_[id.value()] += 1;
    MaybeCompactHeap();
  }
  // Drops tombstones and re-keys stale items until the top is live and
  // current (the true minimum), or the heap is empty. Logically const.
  void FixHeapTop() const;
  // Small-n selection: sort the runnable entries outright (see
  // kSortSelectMaxJobs in stride.cc); leaves the heap untouched.
  void SelectBySort(std::vector<JobId>* out, Pass* min_runnable_pass) const;
  void MaybeCompactHeap() const;
  void RebuildHeap() const;

  int num_gpus_;
  StrideConfig config_;
  EntryList entries_;
  // Dense job-id → position+1 in entries_ (0 = absent); sized by the largest
  // job id ever resident here. Kept in sync by AddJob/RemoveJob.
  std::vector<uint32_t> index_of_;
  // Dense job-id → generation stamp for heap items (see HeapItem::gen).
  std::vector<uint32_t> heap_gen_;
  // Monotone floor for newcomer passes; tracks min runnable pass.
  Pass virtual_time_;

  // Min-heap over live runnable entries, ordered by (pass, tie). Invariant:
  // every runnable entry has exactly one live item (gen matches); its stored
  // pass is a lower bound on the entry's current pass. Mutable: re-keying
  // and tombstone removal are cache maintenance performed inside const
  // planning.
  mutable std::vector<HeapItem> heap_;
  mutable std::vector<HeapItem> popped_scratch_;  // PlanQuantum re-push buffer

  // --- cached aggregates ---
  // Authoritative ticket load: lazily recomputed in entries_ order so the
  // value matches an uncached recompute bit-for-bit.
  mutable Tickets ticket_load_cache_;
  mutable bool ticket_load_dirty_ = false;  // empty scheduler sums to 0
  // Shadow incremental sum, asserted against the recompute in debug builds.
  Tickets ticket_load_shadow_;
  // Runnable demand is a sum of small ints — incremental updates are exact.
  int demand_load_ = 0;
  mutable std::vector<JobId> resident_cache_;
  mutable bool resident_dirty_ = false;

  // Selection scratch (reused across SelectForQuantum calls).
  std::vector<JobId> selected_scratch_;
};

}  // namespace gfair::sched

#endif  // GFAIR_SCHED_STRIDE_H_
