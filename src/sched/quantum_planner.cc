#include "sched/quantum_planner.h"

namespace gfair::sched {

void QuantumPlanner::PlanServer(ServerId server, SchedulePlan* plan) const {
  const LocalStrideScheduler& stride = view_.stride(server);
  SchedulePlan::ServerTarget target;
  target.server = server;
  target.target_begin = static_cast<uint32_t>(plan->target_jobs.size());
  stride.PlanQuantum(&select_scratch_, &target.min_runnable_pass);
  plan->target_jobs.insert(plan->target_jobs.end(), select_scratch_.begin(),
                           select_scratch_.end());
  target.target_end = static_cast<uint32_t>(plan->target_jobs.size());
  plan->servers.push_back(target);
}

bool QuantumPlanner::PlanServerOrSkip(ServerId id, SchedulePlan* plan) const {
  const LocalStrideScheduler& stride = view_.stride(id);
  if (!view_.plan_dirty(id) &&
      view_.server(id).num_busy() == stride.DemandLoad()) {
    // Provably unchanged (see header); only the virtual-time floor is due.
    // Scan, not heap peek: after the quantum's charge every resident's heap
    // key is stale, so fixing the heap costs a re-key per job while the
    // entry array is one hot contiguous read.
    plan->skipped_vt.emplace_back(id, stride.MinRunnablePassScan());
    return false;
  }
  PlanServer(id, plan);
  return true;
}

void QuantumPlanner::PlanTick(SchedulePlan* plan) const {
  plan->Clear();
  for (const auto& server : view_.servers()) {
    if (server.up()) {
      (void)PlanServerOrSkip(server.id(), plan);
    }
  }
}

}  // namespace gfair::sched
