// Core lifecycle and quantum mechanics of GandivaFairScheduler.
// Placement/migration live in gandiva_fair_placement.cc; the load-balancing
// and trading epochs live in gandiva_fair_epochs.cc.
#include "sched/gandiva_fair.h"

#include "sched/hierarchy.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "common/log.h"

namespace gfair::sched {

using cluster::GenerationIndex;
using cluster::GpuGeneration;
using workload::Job;
using workload::JobState;

namespace internal_gfair {
// "Long ago" sentinel for last_migration so fresh jobs pass the interval check.
constexpr SimTime kLongAgo = -(int64_t{1} << 60);
// Floor for stride tickets (a user whose pool entitlement was traded away
// still needs a positive ticket count; residency rebalancing then moves its
// jobs out of the pool).
constexpr double kMinTickets = 1e-6;
}  // namespace internal_gfair

using internal_gfair::kLongAgo;
using internal_gfair::kMinTickets;

GandivaFairScheduler::GandivaFairScheduler(const SchedulerEnv& env,
                                           GandivaFairConfig config)
    : env_(env), config_(config), trading_(config.trade) {
  profiles_ = ProfileStore(config_.profile_min_samples);
  strides_.reserve(static_cast<size_t>(env_.cluster.num_servers()));
  for (const auto& server : env_.cluster.servers()) {
    strides_.emplace_back(server.num_gpus(), config_.stride);
  }
  last_steal_.assign(static_cast<size_t>(env_.cluster.num_servers()),
                     -(int64_t{1} << 60));
  draining_.assign(static_cast<size_t>(env_.cluster.num_servers()), false);
}

LocalStrideScheduler& GandivaFairScheduler::StrideFor(ServerId server) {
  GFAIR_CHECK(server.valid() && server.value() < strides_.size());
  return strides_[server.value()];
}

const LocalStrideScheduler& GandivaFairScheduler::stride_for(ServerId server) const {
  GFAIR_CHECK(server.valid() && server.value() < strides_.size());
  return strides_[server.value()];
}

GpuGeneration GandivaFairScheduler::GenOf(ServerId server) const {
  return env_.cluster.server(server).generation();
}

GandivaFairScheduler::JobInfo& GandivaFairScheduler::InfoFor(JobId id) {
  auto it = job_info_.find(id);
  GFAIR_CHECK_MSG(it != job_info_.end(), "unknown job");
  return it->second;
}

void GandivaFairScheduler::Start() {
  env_.sim.Every(config_.quantum, [this]() { QuantumTick(); });
  if (config_.enable_load_balancing && env_.cluster.num_servers() > 1) {
    env_.sim.Every(config_.balance_period, [this]() { BalanceTick(); });
  }
  if (config_.enable_trading && env_.cluster.heterogeneous()) {
    env_.sim.Every(config_.trade_period, [this]() { TradeTick(); });
  }
}

void GandivaFairScheduler::Submit(JobId id) {
  Job& job = env_.jobs.Get(id);
  GFAIR_CHECK(job.state == JobState::kQueued);
  if (!ticket_matrix_.HasUser(job.user)) {
    ticket_matrix_.RegisterUser(job.user, env_.users.Get(job.user).tickets);
  }
  user_unfinished_jobs_[job.user] += 1;
  user_total_demand_[job.user] += job.gang_size;
  if (user_unfinished_jobs_[job.user] == 1) {
    ApplyHierarchy();  // active set grew
  }

  JobInfo info;
  info.last_migration = kLongAgo;
  job_info_[id] = info;

  const ServerId dest = ChoosePlacement(job);
  GFAIR_CHECK_MSG(dest.valid(), "no server can host this gang");
  decisions_.Record(env_.sim.Now(), DecisionType::kPlace, id, ServerId::Invalid(), dest);
  env_.exec.MakeResident(id, dest);
  AttachResident(id, dest);
  FillIdleGpus(dest);
}

void GandivaFairScheduler::OnJobFinished(JobId id) {
  const Job& job = env_.jobs.Get(id);
  JobInfo& info = InfoFor(id);
  const ServerId server = info.home;
  GFAIR_CHECK(server.valid());

  // Account the final partial quantum to the stride pass before removal.
  LocalStrideScheduler& stride = StrideFor(server);
  if (stride.Contains(id)) {
    stride.Charge(id, env_.sim.Now() - info.last_charge);
  }
  DetachResident(id);

  auto it = user_unfinished_jobs_.find(job.user);
  GFAIR_CHECK(it != user_unfinished_jobs_.end() && it->second > 0);
  it->second -= 1;
  user_total_demand_[job.user] -= job.gang_size;
  if (it->second == 0) {
    ApplyHierarchy();  // active set shrank
  }

  info.home = ServerId::Invalid();
  FillIdleGpus(server);
}

void GandivaFairScheduler::OnMigrationDone(JobId id) {
  JobInfo& info = InfoFor(id);
  GFAIR_CHECK(info.migrating);
  info.migrating = false;
  AttachResident(id, info.home);
  FillIdleGpus(info.home);
}

void GandivaFairScheduler::QuantumTick() {
  // Flush open run segments first so ledger windows attribute GPU time to
  // the quantum it was actually consumed in (long uninterrupted runs would
  // otherwise credit hours of GPU time at their eventual close).
  env_.exec.SyncAll();
  for (const auto& server : env_.cluster.servers()) {
    ChargeRunningOn(server.id());
    CollectSamples(server.id());
    ApplyTargetSet(server.id());
  }
  if (config_.enable_work_stealing) {
    for (const auto& server : env_.cluster.servers()) {
      if (server.num_free() > 0) {
        TrySteal(server.id());
      }
    }
  }
}

void GandivaFairScheduler::ChargeRunningOn(ServerId server) {
  LocalStrideScheduler& stride = StrideFor(server);
  const SimTime now = env_.sim.Now();
  for (JobId id : stride.ResidentJobs()) {
    if (env_.exec.IsRunning(id)) {
      JobInfo& info = InfoFor(id);
      stride.Charge(id, now - info.last_charge);
      info.last_charge = now;
    }
  }
}

void GandivaFairScheduler::CollectSamples(ServerId server) {
  LocalStrideScheduler& stride = StrideFor(server);
  const GpuGeneration gen = GenOf(server);
  for (JobId id : stride.ResidentJobs()) {
    if (env_.exec.IsRunning(id)) {
      const Job& job = env_.jobs.Get(id);
      const double observed = env_.exec.SampleObservedRate(id);
      profiles_.AddSample(job.model, gen, observed / job.gang_size);
    }
  }
}

void GandivaFairScheduler::ApplyTargetSet(ServerId server) {
  LocalStrideScheduler& stride = StrideFor(server);
  const std::vector<JobId> target = stride.SelectForQuantum();
  const std::unordered_set<JobId> target_set(target.begin(), target.end());

  // Suspend first so the incoming gang's GPUs are free.
  for (JobId id : stride.ResidentJobs()) {
    if (env_.exec.IsRunning(id) && target_set.count(id) == 0) {
      env_.exec.Suspend(id);
      decisions_.Record(env_.sim.Now(), DecisionType::kSuspend, id, server);
    }
  }
  const SimTime now = env_.sim.Now();
  for (JobId id : target) {
    if (!env_.exec.IsRunning(id)) {
      env_.exec.Resume(id);
      decisions_.Record(now, DecisionType::kResume, id, ServerId::Invalid(), server);
      InfoFor(id).last_charge = now;
    }
  }
}

void GandivaFairScheduler::FillIdleGpus(ServerId server) {
  cluster::Server& host = env_.cluster.server(server);
  if (host.num_free() == 0) {
    return;
  }
  // Work conservation between quantum ticks: start the best waiting jobs
  // that fit the currently idle GPUs, without preempting anyone. Unlike the
  // quantum boundary, GPUs here free up incrementally, so with
  // reserve_blocked_gang we stop at the first waiting gang that does not fit:
  // its GPUs accumulate instead of being nibbled away by jobs behind it.
  LocalStrideScheduler& stride = StrideFor(server);
  const SimTime now = env_.sim.Now();
  for (JobId id : stride.SelectForQuantum()) {
    if (env_.exec.IsRunning(id)) {
      continue;
    }
    const Job& job = env_.jobs.Get(id);
    if (host.CanFit(job.gang_size)) {
      env_.exec.Resume(id);
      decisions_.Record(now, DecisionType::kResume, id, ServerId::Invalid(), server);
      InfoFor(id).last_charge = now;
    } else if (config_.stride.reserve_blocked_gang) {
      break;
    }
  }
  if (host.num_free() > 0 && config_.enable_work_stealing) {
    TrySteal(server);
  }
}

void GandivaFairScheduler::AttachResident(JobId id, ServerId server) {
  Job& job = env_.jobs.Get(id);
  JobInfo& info = InfoFor(id);
  info.home = server;
  const GpuGeneration gen = GenOf(server);
  auto& pool_jobs = user_pool_jobs_[job.user][GenerationIndex(gen)];
  GFAIR_CHECK(pool_jobs.insert(id).second);
  StrideFor(server).AddJob(id, job.gang_size,
                           PerJobTickets(job.user, gen, job));
  RefreshPoolTickets(job.user, gen);
  ledger_.RecordDemandChange(job.user, gen, env_.sim.Now(), job.gang_size);
}

void GandivaFairScheduler::DetachResident(JobId id) {
  Job& job = env_.jobs.Get(id);
  JobInfo& info = InfoFor(id);
  GFAIR_CHECK(info.home.valid());
  const GpuGeneration gen = GenOf(info.home);
  auto& pool_jobs = user_pool_jobs_[job.user][GenerationIndex(gen)];
  GFAIR_CHECK(pool_jobs.erase(id) == 1);
  StrideFor(info.home).RemoveJob(id);
  RefreshPoolTickets(job.user, gen);
  ledger_.RecordDemandChange(job.user, gen, env_.sim.Now(), -job.gang_size);
}

double GandivaFairScheduler::WeightedResidentDemand(UserId user,
                                                    GpuGeneration gen) const {
  auto it = user_pool_jobs_.find(user);
  if (it == user_pool_jobs_.end()) {
    return 0.0;
  }
  double total = 0.0;
  for (JobId id : it->second[GenerationIndex(gen)]) {
    const Job& job = env_.jobs.Get(id);
    total += job.gang_size * job.weight;
  }
  return total;
}

double GandivaFairScheduler::PerJobTickets(UserId user, GpuGeneration gen,
                                           const Job& job) const {
  // A user's pool tickets are split across its resident jobs proportional to
  // weight x gang size (equal weighted GPU-time per demanded GPU). An equal
  // per-job split would let the user's 1-GPU jobs run continuously while its
  // 8-GPU gang — one job, one share — starved at an eighth of its demand.
  const double pool_tickets = std::max(ticket_matrix_.Get(user, gen), kMinTickets);
  const double share = job.gang_size * job.weight;
  const double demand = std::max(WeightedResidentDemand(user, gen), share);
  return pool_tickets * share / demand;
}

void GandivaFairScheduler::RefreshPoolTickets(UserId user, GpuGeneration gen) {
  auto it = user_pool_jobs_.find(user);
  if (it == user_pool_jobs_.end()) {
    return;
  }
  const auto& pool_jobs = it->second[GenerationIndex(gen)];
  if (pool_jobs.empty()) {
    return;
  }
  for (JobId id : pool_jobs) {
    const Job& job = env_.jobs.Get(id);
    StrideFor(job_info_.at(id).home)
        .SetTickets(id, PerJobTickets(user, gen, job));
  }
}

void GandivaFairScheduler::RefreshAllTickets() {
  for (const auto& [user, pools] : user_pool_jobs_) {
    for (GpuGeneration gen : cluster::kAllGenerations) {
      RefreshPoolTickets(user, gen);
    }
  }
}

ClusterSnapshot GandivaFairScheduler::Snapshot() const {
  ClusterSnapshot snapshot;
  snapshot.time = env_.sim.Now();
  for (const auto& server : env_.cluster.servers()) {
    ServerSnapshot view;
    view.id = server.id();
    view.generation = server.generation();
    view.num_gpus = server.num_gpus();
    view.busy_gpus = server.num_busy();
    const auto& stride = stride_for(server.id());
    view.resident_jobs = static_cast<int>(stride.num_jobs());
    view.demand_load = stride.DemandLoad() / static_cast<double>(server.num_gpus());
    view.ticket_load = stride.TicketLoad() / static_cast<double>(server.num_gpus());
    view.draining = draining_[server.id().value()];
    snapshot.servers.push_back(view);
  }
  for (const auto& user : env_.users.users()) {
    UserSnapshot view;
    view.id = user.id;
    view.name = user.name;
    auto it = user_unfinished_jobs_.find(user.id);
    view.unfinished_jobs = it != user_unfinished_jobs_.end() ? it->second : 0;
    for (GpuGeneration gen : cluster::kAllGenerations) {
      const size_t g = GenerationIndex(gen);
      view.entitlement_gpus[g] =
          ticket_matrix_.HasUser(user.id) ? EntitlementGpus(user.id, gen) : 0.0;
      view.resident_demand[g] = ResidentDemand(user.id, gen);
    }
    snapshot.users.push_back(view);
  }
  return snapshot;
}

bool GandivaFairScheduler::IsDraining(ServerId server) const {
  GFAIR_CHECK(server.valid() && server.value() < draining_.size());
  return draining_[server.value()];
}

void GandivaFairScheduler::DrainServer(ServerId server) {
  GFAIR_CHECK(server.valid() && server.value() < draining_.size());
  if (draining_[server.value()]) {
    return;
  }
  draining_[server.value()] = true;
  GFAIR_ILOG << "draining server " << server;
  DrainTick();
}

void GandivaFairScheduler::UndrainServer(ServerId server) {
  GFAIR_CHECK(server.valid() && server.value() < draining_.size());
  draining_[server.value()] = false;
}

void GandivaFairScheduler::DrainTick() {
  const SimTime now = env_.sim.Now();
  for (size_t s = 0; s < draining_.size(); ++s) {
    if (!draining_[s]) {
      continue;
    }
    const ServerId source(static_cast<uint32_t>(s));
    const cluster::GpuGeneration gen = GenOf(source);
    // Bounded batch: residents leave over successive balance ticks so the
    // migration network is not swamped.
    int budget = config_.max_migrations_per_round;
    for (JobId id : StrideFor(source).ResidentJobs()) {
      if (budget <= 0) {
        break;
      }
      const Job& job = env_.jobs.Get(id);
      // Least-loaded non-draining server of the pool that fits the gang.
      ServerId dest = ServerId::Invalid();
      double dest_load = std::numeric_limits<double>::infinity();
      for (ServerId sid : env_.cluster.servers_of(gen)) {
        if (sid == source || draining_[sid.value()]) {
          continue;
        }
        const auto& peer = env_.cluster.server(sid);
        if (peer.num_gpus() < job.gang_size) {
          continue;
        }
        const double load = stride_for(sid).TicketLoad() / peer.num_gpus();
        if (load < dest_load) {
          dest_load = load;
          dest = sid;
        }
      }
      if (!dest.valid()) {
        GFAIR_WLOG << "drain: no destination for job " << id << " at "
                   << FormatDuration(now) << "; leaving it in place";
        continue;
      }
      StartMigration(id, dest, MigrationCause::kBalance);
      --budget;
    }
  }
}

void GandivaFairScheduler::ApplyHierarchy() {
  if (!config_.enable_hierarchical_sharing) {
    return;
  }
  bool any_grouped = false;
  for (const auto& user : env_.users.users()) {
    if (!user.group.empty()) {
      any_grouped = true;
      break;
    }
  }
  if (!any_grouped) {
    return;
  }
  const std::vector<UserId> active = ActiveUsers();
  if (active.empty()) {
    return;
  }
  for (const auto& [user, tickets] : ComputeHierarchicalTickets(env_.users, active)) {
    // Resets the user's pool row to the new base; the next trading epoch
    // rebuilds trades on top (activity changes invalidate them anyway).
    ticket_matrix_.RegisterUser(user, tickets);
  }
  RefreshAllTickets();
}

std::vector<UserId> GandivaFairScheduler::ActiveUsers() const {
  std::vector<UserId> active;
  for (const auto& [user, count] : user_unfinished_jobs_) {
    if (count > 0) {
      active.push_back(user);
    }
  }
  std::sort(active.begin(), active.end());
  return active;
}

double GandivaFairScheduler::EntitlementGpus(UserId user, GpuGeneration gen) const {
  const int pool = env_.cluster.total_gpus(gen);
  if (pool == 0) {
    return 0.0;
  }
  const std::vector<UserId> active = ActiveUsers();
  if (active.empty()) {
    return static_cast<double>(pool);
  }
  double total = 0.0;
  double mine = 0.0;
  for (UserId v : active) {
    const double tickets = ticket_matrix_.Get(v, gen);
    total += tickets;
    if (v == user) {
      mine = tickets;
    }
  }
  if (total <= 0.0) {
    return static_cast<double>(pool) / static_cast<double>(active.size());
  }
  return mine / total * static_cast<double>(pool);
}

double GandivaFairScheduler::ResidentDemand(UserId user, GpuGeneration gen) const {
  auto it = user_pool_jobs_.find(user);
  if (it == user_pool_jobs_.end()) {
    return 0.0;
  }
  double demand = 0.0;
  for (JobId id : it->second[GenerationIndex(gen)]) {
    demand += env_.jobs.Get(id).gang_size;
  }
  return demand;
}

}  // namespace gfair::sched
