// GandivaFairScheduler facade: event-driven core (submit/finish/migration
// callbacks, quantum tick) plus the ISchedulerHost services. Placement and
// stealing live in PlacementEngine, balancing/drains in LoadBalancer, and
// profiling/trading in TradeCoordinator; all of them operate on the shared
// ClusterStateIndex and ResidencyIndex.
#include "sched/gandiva_fair.h"

#include <algorithm>

#include "common/check.h"
#include "common/log.h"
#include "common/sorted.h"
#include "sched/cluster_state_view.h"
#include "sched/hierarchy.h"

namespace gfair::sched {

using cluster::GenerationIndex;
using cluster::GpuGeneration;
using workload::Job;
using workload::JobState;

namespace internal_gfair {
// Floor for stride tickets (a user whose pool entitlement was traded away
// still needs a positive ticket count; residency rebalancing then moves its
// jobs out of the pool).
constexpr Tickets kMinTickets = 1e-6;
}  // namespace internal_gfair

using internal_gfair::kMinTickets;

SimDuration RetryBackoff(SimDuration base, int attempt) {
  GFAIR_CHECK(attempt >= 1);
  constexpr SimDuration kMaxBackoff = kDay;
  if (base <= 0) {
    return 0;
  }
  if (base >= kMaxBackoff) {
    return kMaxBackoff;
  }
  const int shift = attempt - 1;
  // base < kMaxBackoff here, so the shift fits iff base <= kMaxBackoff >> shift
  // (and any shift past the cap's bit width saturates outright).
  if (shift >= 63 || base > (kMaxBackoff >> shift)) {
    return kMaxBackoff;
  }
  return base << shift;
}

GandivaFairScheduler::GandivaFairScheduler(const SchedulerEnv& env,
                                           GandivaFairConfig config)
    : env_(env),
      config_(config),
      index_(env_.cluster, config_.stride),
      residency_(env_.jobs),
      placement_(env_, config_, index_, residency_, *this),
      balancer_(env_, config_, index_, residency_, *this),
      trader_(env_, config_, index_, residency_, ticket_matrix_, decisions_, *this),
      planner_(ClusterStateView(env_.cluster, index_)),
      differ_(env_.jobs, env_.exec, ClusterStateView(env_.cluster, index_)),
      tick_pool_(std::max(config_.plan_threads, config_.apply_threads) > 1
                     ? std::make_unique<common::ThreadPool>(
                           std::max(config_.plan_threads, config_.apply_threads))
                     : nullptr),
      checker_(env_, *this) {
  GFAIR_CHECK(config_.plan_shards >= 1);
  GFAIR_CHECK(config_.plan_threads >= 1);
  GFAIR_CHECK(config_.apply_threads >= 1);
  if (config_.plan_shards > 1) {
    // Fixed contiguous ceil-division partition of the server ids: shard s
    // owns [s * span, (s + 1) * span). The partition depends only on
    // (num_servers, plan_shards), never on runtime state, which is half of
    // the determinism argument (the other half is the shard-order merge).
    const size_t num_servers = static_cast<size_t>(env_.cluster.num_servers());
    const size_t shards =
        std::min<size_t>(static_cast<size_t>(config_.plan_shards),
                         std::max<size_t>(num_servers, 1));
    const size_t span = (num_servers + shards - 1) / shards;
    const ClusterStateView view(env_.cluster, index_);
    shards_.reserve(shards);
    for (size_t s = 0; s < shards; ++s) {
      shards_.emplace_back(QuantumPlanner(view),
                           PlanDiffer(env_.jobs, env_.exec, view),
                           std::min(s * span, num_servers),
                           std::min((s + 1) * span, num_servers));
    }
  }
}

GpuGeneration GandivaFairScheduler::GenOf(ServerId server) const {
  return env_.cluster.server(server).generation();
}

void GandivaFairScheduler::Start() {
  if (env_.exec.config().precopy) {
    env_.exec.set_on_precopy_cutover(
        [this](JobId id, ServerId dest) { return OnPrecopyCutover(id, dest); });
  }
  env_.sim.Every(config_.quantum, [this]() { QuantumTick(); });
  if (config_.enable_load_balancing && env_.cluster.num_servers() > 1) {
    env_.sim.Every(config_.balance_period, [this]() { balancer_.Balance(); });
  }
  if (config_.enable_trading && env_.cluster.heterogeneous()) {
    env_.sim.Every(config_.trade_period, [this]() { trader_.TradeEpoch(); });
  }
}

void GandivaFairScheduler::Submit(JobId id) {
  Job& job = env_.jobs.Get(id);
  GFAIR_CHECK(job.state == JobState::kQueued);
  if (!ticket_matrix_.HasUser(job.user)) {
    ticket_matrix_.RegisterUser(job.user, env_.users.Get(job.user).tickets);
  }
  if (residency_.RegisterJob(id, job.user, job.gang_size)) {
    ApplyHierarchy();  // active set grew
  }

  const ServerId dest = placement_.ChoosePlacement(job);
  if (!dest.valid()) {
    // An outage can leave every server that fits this gang down; park the
    // job with the orphans and retry as servers recover. With all servers
    // up, an unplaceable gang is a configuration error, as before.
    GFAIR_CHECK_MSG(index_.AnyDown(), "no server can host this gang");
    GFAIR_WLOG << "submit: no up server for job " << id << "; parked";
    pending_orphans_.push_back(id);
    return;
  }
  decisions_.Record(env_.sim.Now(), DecisionType::kPlace, id, ServerId::Invalid(), dest);
  env_.exec.MakeResident(id, dest);
  AttachResident(id, dest);
  FillIdleGpus(dest);
}

void GandivaFairScheduler::OnJobFinished(JobId id) {
  const Job& job = env_.jobs.Get(id);
  ResidencyIndex::JobInfo& info = residency_.Info(id);
  const ServerId server = info.home;
  GFAIR_CHECK(server.valid());
  info.precopying = false;  // any in-flight pre-copy bulk is now stale

  // Account the final partial quantum to the stride pass before removal.
  LocalStrideScheduler& stride = index_.stride(server);
  if (stride.Contains(id)) {
    stride.Charge(id, env_.sim.Now() - info.last_charge);
  }
  DetachResident(id);

  if (residency_.DeregisterJob(id, job.user, job.gang_size)) {
    ApplyHierarchy();  // active set shrank
  }
  FillIdleGpus(server);
}

void GandivaFairScheduler::OnMigrationDone(JobId id) {
  ResidencyIndex::JobInfo& info = residency_.Info(id);
  GFAIR_CHECK(info.migrating);
  info.migrating = false;
  RetryOf(id).attempts = 0;  // a landed transfer ends the retry sequence
  AttachResident(id, info.home);
  FillIdleGpus(info.home);
}

void GandivaFairScheduler::OnMigrationFailed(JobId id, ServerId dest) {
  ResidencyIndex::JobInfo& info = residency_.Info(id);
  if (info.precopying) {
    // A pre-copy bulk lost its destination mid-flight. Cheap failure: the
    // job never stopped running at its source and is still attached there —
    // only the claim needs clearing before the retry ladder.
    GFAIR_CHECK(!info.migrating);
    info.precopying = false;
    ScheduleRetryOrGiveUp(id, dest);
    return;
  }
  GFAIR_CHECK(info.migrating);
  info.migrating = false;
  // The executor bounced the job back, suspended, to its source server
  // (which is still `job.server` — migration never updated it). Re-attach
  // there; the detach already happened at ExecuteMigration.
  const Job& job = env_.jobs.Get(id);
  GFAIR_CHECK(job.server.valid());
  AttachResident(id, job.server);
  FillIdleGpus(job.server);
  ScheduleRetryOrGiveUp(id, dest);
}

void GandivaFairScheduler::ScheduleRetryOrGiveUp(JobId id, ServerId dest) {
  RetryState& retry = RetryOf(id);
  retry.attempts += 1;
  if (retry.attempts > config_.migration_max_retries) {
    // Terminal fallback: the job stays at its source. Reset the counter so
    // a later, unrelated migration starts a fresh retry budget.
    GFAIR_WLOG << "migration of job " << id << " failed "
               << retry.attempts << " times; staying on server "
               << env_.jobs.Get(id).server;
    retry.attempts = 0;
    return;
  }
  const SimDuration backoff =
      RetryBackoff(config_.migration_retry_backoff, retry.attempts);
  retry.scheduled = true;
  const GpuGeneration gen = GenOf(dest);
  ++migration_retries_started_;
  env_.sim.After(backoff, [this, id, gen]() { RetryMigration(id, gen); });
}

void GandivaFairScheduler::RetryMigration(JobId id, GpuGeneration gen) {
  RetryState& retry = RetryOf(id);
  retry.scheduled = false;
  const Job& job = env_.jobs.Get(id);
  // The world may have moved on during the backoff: the job can have
  // finished, been orphaned (kQueued), or been sent migrating again by a
  // balance pass. In all those cases the retry sequence is over.
  if (job.state != JobState::kSuspended && job.state != JobState::kRunning) {
    retry.attempts = 0;
    return;
  }
  ResidencyIndex::JobInfo& info = residency_.Info(id);
  GFAIR_CHECK(!info.migrating);
  if (info.precopying) {
    // A newer pre-copy claim (balance/trade picked the job again during the
    // backoff) supersedes this retry.
    retry.attempts = 0;
    return;
  }
  // Re-target: the original destination may still be down, so pick the
  // least-loaded up server of the same pool.
  const ServerId dest = index_.LeastLoadedServer(gen, job.gang_size, info.home);
  if (!dest.valid() || !env_.zoo.Get(job.model).FitsGeneration(gen)) {
    retry.attempts = 0;  // no viable destination; stay at the source
    return;
  }
  EmitMigration(id, dest, retry.cause);
}

void GandivaFairScheduler::OnJobOrphaned(JobId id) {
  ResidencyIndex::JobInfo& info = residency_.Info(id);
  if (info.migrating) {
    // Orphaned at a failed landing with the source dead too: the job was
    // already detached at ExecuteMigration, so only the in-flight marker (and
    // any retry budget) needs clearing before re-placement.
    info.migrating = false;
  } else {
    // Resident victim of a server failure. Parallel to OnJobFinished:
    // account the final partial quantum, then detach from the dead server.
    const ServerId server = info.home;
    GFAIR_CHECK(server.valid());
    LocalStrideScheduler& stride = index_.stride(server);
    if (stride.Contains(id)) {
      stride.Charge(id, env_.sim.Now() - info.last_charge);
    }
    DetachResident(id);
  }
  info.precopying = false;  // any in-flight pre-copy bulk is now stale
  RetryOf(id).attempts = 0;  // orphaning voids any in-progress retry budget
  ReplaceOrphan(id);
}

void GandivaFairScheduler::ReplaceOrphan(JobId id) {
  const Job& job = env_.jobs.Get(id);
  GFAIR_CHECK(job.state == JobState::kQueued);
  const ServerId dest = placement_.ChoosePlacement(job);
  if (!dest.valid()) {
    GFAIR_WLOG << "orphan " << id << " has no up server; parked";
    pending_orphans_.push_back(id);
    return;
  }
  decisions_.Record(env_.sim.Now(), DecisionType::kPlace, id, ServerId::Invalid(), dest);
  env_.exec.MakeResident(id, dest);
  AttachResident(id, dest);
  ++orphans_replaced_;
  FillIdleGpus(dest);
}

void GandivaFairScheduler::RetryPendingOrphans() {
  if (pending_orphans_.empty()) {
    return;
  }
  std::vector<JobId> parked;
  parked.swap(pending_orphans_);  // ReplaceOrphan re-parks what still fails
  for (JobId id : parked) {
    ReplaceOrphan(id);
  }
}

void GandivaFairScheduler::OnServerDown(ServerId id) {
  index_.SetDown(id, true);
  GFAIR_ILOG << "server " << id << " down ("
             << env_.cluster.num_up_servers() << " up)";
}

void GandivaFairScheduler::OnServerUp(ServerId id) {
  index_.SetDown(id, false);
  GFAIR_ILOG << "server " << id << " back up ("
             << env_.cluster.num_up_servers() << " up)";
  RetryPendingOrphans();
}

GandivaFairScheduler::RetryState& GandivaFairScheduler::RetryOf(JobId id) {
  if (id.value() >= retry_.size()) {
    retry_.resize(id.value() + 1);
  }
  return retry_[id.value()];
}


void GandivaFairScheduler::QuantumTick() {
  // Flush open run segments first so ledger windows attribute GPU time to
  // the quantum it was actually consumed in (long uninterrupted runs would
  // otherwise credit hours of GPU time at their eventual close).
  env_.exec.SyncAll();

  // One pass over the servers, fusing the pipeline's per-server stages —
  // charge + sample, plan (or skip), commit (virtual-time floor + dirty
  // clear), diff, apply — while that server's entries, heap and run
  // segments are cache-hot (the sample walk just touched the very job and
  // segment state the apply slice mutates). Charge + sample is obligatory
  // on every up server, skipped or not: stride passes must account the
  // elapsed quantum and the profiler sees one sample per running job either
  // way. Servers' job sets are disjoint and suspend/resume draw no RNG, so
  // the fused loop emits exactly the plan and delta of the phase-at-a-time
  // composition (planner_.PlanTick → commit → differ_.Diff →
  // exec.ApplyDelta, which tests still exercise) — stream-for-stream the
  // decisions, RNG draws and profiler updates are identical. The executor
  // sees one batched ApplyDelta per diffed server; delta_ accumulates the
  // whole quantum's ops for introspection.
  plan_.Clear();
  delta_.Clear();
  if (!shards_.empty()) {
    // Sharded tick (plan_shards > 1): fan the per-shard charge/plan/diff
    // across the tick pool (or run the shards inline when plan_threads is
    // 1 — same seam, no threads). Every cell the fan-out touches — a
    // stride's passes and heap, a job's info and charge clock, a server's
    // plan-dirty byte — belongs to exactly one shard's servers, so the
    // shards commute; the serial reduce then replays the deferred RNG
    // draws and merges the shard streams in ascending server order, making
    // the tick bit-identical to the serial path for any shard count.
    slice_begins_.clear();
    if (tick_pool_ && config_.plan_threads > 1) {
      tick_pool_->ParallelFor(shards_.size(), [this](size_t begin, size_t end) {
        for (size_t s = begin; s < end; ++s) {
          // One ShardToken per shard, minted inside the fan-out: it unlocks
          // exactly the shard's own PlanShard state (phase_tokens.h).
          PlanShardRange(shards_[s], common::ShardToken{});
        }
      });
    } else {
      for (PlanShard& shard : shards_) {
        PlanShardRange(shard, common::ShardToken{});
      }
    }
    // The fan-out has joined — this thread is the tick's serial reduce and
    // may mint the ReduceToken unlocking cross-shard state.
    ReduceShards(common::ReduceToken{});
    ApplyMergedSlices();
  } else if (tick_pool_ && config_.apply_threads > 1) {
    // Two-pass tick (apply_threads > 1): charge/plan/diff every server
    // first, then batch the per-server slices across the pool. Nothing in
    // the first pass consumes event ids or RNG beyond what the fused loop
    // does at the same point in server order, and slices touch disjoint
    // servers/jobs, so the streams match the serial path bit for bit.
    slice_begins_.clear();
    for (const auto& server : env_.cluster.servers()) {
      if (!server.up()) {
        continue;
      }
      const ServerId id = server.id();
      ChargeAndSample(id, common::ReduceToken{});
      LocalStrideScheduler& stride = index_.stride(id);
      if (planner_.PlanServerOrSkip(id, &plan_)) {
        const SchedulePlan::ServerTarget& target = plan_.servers.back();
        stride.AdvanceVirtualTime(target.min_runnable_pass);
        index_.ClearPlanDirty(id);
        slice_begins_.push_back(delta_.ops.size());
        differ_.DiffServer(plan_, target, &delta_);
      } else {
        stride.AdvanceVirtualTime(plan_.skipped_vt.back().second);
      }
    }
    ApplyMergedSlices();
  } else {
    for (const auto& server : env_.cluster.servers()) {
      if (!server.up()) {
        continue;
      }
      const ServerId id = server.id();
      ChargeAndSample(id, common::ReduceToken{});
      LocalStrideScheduler& stride = index_.stride(id);
      if (planner_.PlanServerOrSkip(id, &plan_)) {
        const SchedulePlan::ServerTarget& target = plan_.servers.back();
        stride.AdvanceVirtualTime(target.min_runnable_pass);
        index_.ClearPlanDirty(id);
        const size_t ops_begin = delta_.ops.size();
        differ_.DiffServer(plan_, target, &delta_);
        ApplyDeltaSlice(ops_begin);
      } else {
        stride.AdvanceVirtualTime(plan_.skipped_vt.back().second);
      }
    }
  }

  if (config_.enable_work_stealing) {
    for (const auto& server : env_.cluster.servers()) {
      if (server.up() && server.num_free() > 0) {
        placement_.TrySteal(server.id());
      }
    }
  }
  RetryPendingOrphans();

#ifndef NDEBUG
  // Post-quantum invariant sweep (Debug/sanitizer builds): the cluster must
  // be in a consistent state at every quantum boundary, not just at the end
  // of a run. Release builds skip it — the sweep walks every server and job.
  for (const std::string& violation : checker_.Check()) {
    GFAIR_CHECK_MSG(false, violation.c_str());
  }
#endif
}

void GandivaFairScheduler::ChargeAndSample(ServerId server,
                                           common::ReduceToken token) {
  LocalStrideScheduler& stride = index_.stride(server);
  const GpuGeneration gen = GenOf(server);
  const SimTime now = env_.sim.Now();
  const std::vector<JobId>& resident = stride.ResidentJobs();
  for (size_t i = 0; i < resident.size(); ++i) {
    // The walk's per-job state (segment, info, stride entry) is scattered by
    // job id; hint the next job's lines while this one's sample is computed.
    if (i + 1 < resident.size()) {
      env_.exec.PrefetchJobState(resident[i + 1]);
      residency_.PrefetchInfo(resident[i + 1]);
    }
    const JobId id = resident[i];
    if (env_.exec.IsRunning(id)) {
      ResidencyIndex::JobInfo& info = residency_.Info(id);
      stride.Charge(id, now - info.last_charge);
      info.last_charge = now;
      trader_.RecordSample(info.model, gen,
                           PerGpuRate::FromGangRate(env_.exec.SampleObservedRate(id),
                                                    info.gang_size),
                           token);
    }
  }
}

// gfair-shard-parallel-begin — ChargeServer and PlanShardRange run
// concurrently across shards. Only per-server / per-job state of the
// shard's own contiguous id range may be touched here; every cross-shard
// concern (RNG draws, the merged plan_/delta_, decisions, migrations)
// belongs to ReduceShards and later. gfair_lint's shard-locality rule
// enforces the denylist over this region.
void GandivaFairScheduler::ChargeServer(
    ServerId server, std::vector<PendingSample>* pending_samples,
    common::ShardToken) {
  LocalStrideScheduler& stride = index_.stride(server);
  const GpuGeneration gen = GenOf(server);
  const SimTime now = env_.sim.Now();
  const std::vector<JobId>& resident = stride.ResidentJobs();
  for (size_t i = 0; i < resident.size(); ++i) {
    if (i + 1 < resident.size()) {
      env_.exec.PrefetchJobState(resident[i + 1]);
      residency_.PrefetchInfo(resident[i + 1]);
    }
    const JobId id = resident[i];
    if (env_.exec.IsRunning(id)) {
      ResidencyIndex::JobInfo& info = residency_.Info(id);
      stride.Charge(id, now - info.last_charge);
      info.last_charge = now;
      // The profiler sample draws from the executor's single RNG stream, so
      // it is deferred: the reduce step replays the buffered jobs in
      // ascending server order, reproducing the serial tick's draw order
      // exactly. Everything but the rate is captured here, while info is
      // hot, so the replay touches only executor segment state per job.
      pending_samples->push_back(PendingSample{id, info.model, gen, info.gang_size});
    }
  }
}

void GandivaFairScheduler::PlanShardRange(PlanShard& shard,
                                          common::ShardToken token) {
  shard.BeginTick(token);
  const std::vector<cluster::Server>& servers = env_.cluster.servers();
  for (size_t s = shard.server_begin(); s < shard.server_end(); ++s) {
    const cluster::Server& server = servers[s];
    if (!server.up()) {
      continue;
    }
    const ServerId id = server.id();
    ChargeServer(id, &shard.pending_samples(token), token);
    LocalStrideScheduler& stride = index_.stride(id);
    if (shard.planner(token).PlanServerOrSkip(id, &shard.plan(token))) {
      const SchedulePlan::ServerTarget& target = shard.plan(token).servers.back();
      stride.AdvanceVirtualTime(target.min_runnable_pass);
      index_.ClearPlanDirty(id);
      shard.slice_begins(token).push_back(shard.delta(token).ops.size());
      shard.differ(token).DiffServer(shard.plan(token), target,
                                     &shard.delta(token));
    } else {
      stride.AdvanceVirtualTime(shard.plan(token).skipped_vt.back().second);
    }
  }
}
// gfair-shard-parallel-end

void GandivaFairScheduler::ReduceShards(common::ReduceToken token) {
  // Serial reduce: the only stage allowed to touch cross-shard state (its
  // ReduceToken unlocks the shard merge and the profiler feed). Shards
  // partition the ids in ascending contiguous ranges and are merged in
  // shard order, so every stream below — sample draws, plan entries, delta
  // ops, slice offsets — comes out in exactly the serial planner's
  // ascending-server-order, independent of shard and thread count.
  for (const PlanShard& shard : shards_) {
    // Profiler samples: one RNG draw per running job, in charge order. The
    // jobs' segment state is scattered by id, so pipeline the next lookup
    // behind the current draw (as the charge walks do).
    const std::vector<PendingSample>& samples = shard.pending_samples(token);
    for (size_t i = 0; i < samples.size(); ++i) {
      if (i + 1 < samples.size()) {
        env_.exec.PrefetchJobState(samples[i + 1].job);
      }
      const PendingSample& sample = samples[i];
      trader_.RecordSample(
          sample.model, sample.gen,
          PerGpuRate::FromGangRate(env_.exec.SampleObservedRate(sample.job),
                                   sample.gang_size),
          token);
    }
    shard.MergeInto(&plan_, &delta_, &slice_begins_, token);
  }
}

void GandivaFairScheduler::ApplyMergedSlices() {
  if (tick_pool_ && config_.apply_threads > 1) {
    // slice_scratch_ materializes the ApplySlice pointers only now —
    // delta_.ops can no longer reallocate.
    slice_scratch_.clear();
    for (size_t s = 0; s < slice_begins_.size(); ++s) {
      const size_t begin = slice_begins_[s];
      const size_t end =
          s + 1 < slice_begins_.size() ? slice_begins_[s + 1] : delta_.ops.size();
      if (begin < end) {
        slice_scratch_.push_back(
            exec::Executor::ApplySlice{delta_.ops.data() + begin, end - begin});
      }
    }
    if (!slice_scratch_.empty()) {
      env_.exec.ApplyDeltaParallel(slice_scratch_.data(), slice_scratch_.size(),
                                   *tick_pool_);
      RecordAppliedOps(0, delta_.ops.size());
    }
  } else {
    for (size_t s = 0; s < slice_begins_.size(); ++s) {
      const size_t begin = slice_begins_[s];
      const size_t end =
          s + 1 < slice_begins_.size() ? slice_begins_[s + 1] : delta_.ops.size();
      if (begin < end) {
        env_.exec.ApplyDelta(delta_.ops.data() + begin, end - begin);
        RecordAppliedOps(begin, end);
      }
    }
  }
}

void GandivaFairScheduler::ApplyDeltaSlice(size_t ops_begin) {
  const size_t ops_end = delta_.ops.size();
  if (ops_begin == ops_end) {
    return;
  }
  env_.exec.ApplyDelta(delta_.ops.data() + ops_begin, ops_end - ops_begin);
  RecordAppliedOps(ops_begin, ops_end);
}

void GandivaFairScheduler::RecordAppliedOps(size_t ops_begin, size_t ops_end) {
  const SimTime now = env_.sim.Now();
  for (size_t i = ops_begin; i < ops_end; ++i) {
    const exec::ScheduleOp& op = delta_.ops[i];
    if (op.resume) {
      decisions_.Record(now, DecisionType::kResume, op.job, ServerId::Invalid(),
                        op.server);
      residency_.Info(op.job).last_charge = now;
    } else {
      decisions_.Record(now, DecisionType::kSuspend, op.job, op.server);
    }
  }
}

void GandivaFairScheduler::FillIdleGpus(ServerId server) {
  cluster::Server& host = env_.cluster.server(server);
  if (!host.up() || host.num_free() == 0) {
    return;
  }
  // Work conservation between quantum ticks: start the best waiting jobs
  // that fit the currently idle GPUs, without preempting anyone. Unlike the
  // quantum boundary, GPUs here free up incrementally, so with
  // reserve_blocked_gang we stop at the first waiting gang that does not fit:
  // its GPUs accumulate instead of being nibbled away by jobs behind it.
  LocalStrideScheduler& stride = index_.stride(server);
  const SimTime now = env_.sim.Now();
  for (JobId id : stride.SelectForQuantum()) {
    if (env_.exec.IsRunning(id)) {
      continue;
    }
    const Job& job = env_.jobs.Get(id);
    if (host.CanFit(job.gang_size)) {
      env_.exec.Resume(id);
      decisions_.Record(now, DecisionType::kResume, id, ServerId::Invalid(), server);
      residency_.Info(id).last_charge = now;
    } else if (config_.stride.reserve_blocked_gang) {
      break;
    }
  }
  if (host.num_free() > 0 && config_.enable_work_stealing) {
    placement_.TrySteal(server);
  }
}

void GandivaFairScheduler::AttachResident(JobId id, ServerId server) {
  Job& job = env_.jobs.Get(id);
  residency_.Info(id).home = server;
  const GpuGeneration gen = GenOf(server);
  residency_.Attach(job.user, gen, id);
  index_.AddJob(server, id, job.gang_size, PerJobTickets(job.user, gen, job));
  RefreshPoolTickets(job.user, gen);
  ledger_.RecordDemandChange(job.user, gen, env_.sim.Now(), job.gang_size);
}

void GandivaFairScheduler::DetachResident(JobId id) {
  Job& job = env_.jobs.Get(id);
  ResidencyIndex::JobInfo& info = residency_.Info(id);
  GFAIR_CHECK(info.home.valid());
  const GpuGeneration gen = GenOf(info.home);
  residency_.Detach(job.user, gen, id);
  index_.RemoveJob(info.home, id);
  RefreshPoolTickets(job.user, gen);
  ledger_.RecordDemandChange(job.user, gen, env_.sim.Now(), -job.gang_size);
}

void GandivaFairScheduler::EmitMigration(JobId id, ServerId dest,
                                         MigrationCause cause) {
  // Every placement-changing intent funnels through the SchedulePlan before
  // reaching the executor (one record of what was decided this quantum), but
  // is executed eagerly: balancing/trading rounds later in the same pass
  // must read the post-migration residency.
  plan_.migrations.push_back(MigrationDirective{id, dest, cause});
  ExecuteMigration(id, dest, cause);
}

void GandivaFairScheduler::ExecuteMigration(JobId id, ServerId dest,
                                            MigrationCause cause) {
  ResidencyIndex::JobInfo& info = residency_.Info(id);
  GFAIR_CHECK(!info.migrating);
  GFAIR_CHECK(!info.precopying);  // candidate walks skip claimed jobs
  GFAIR_CHECK(dest.valid() && dest != info.home);
  const ServerId source = info.home;
  decisions_.Record(env_.sim.Now(), DecisionFor(cause), id, source, dest);
  RetryOf(id).cause = cause;  // a failed landing retries under the same cause
  ++migrations_started_;

  if (env_.exec.config().precopy) {
    // Pre-copy: the bulk checkpoint ships while the job keeps running (or
    // sits schedulable) at the source; residency is untouched until the
    // cutover callback runs the stop-and-copy tail.
    info.precopying = true;
    env_.exec.StartPreCopy(id, dest);
    GFAIR_DLOG << "pre-copying job " << id << " from server " << source
               << " to " << dest;
    return;
  }

  if (env_.exec.IsRunning(id)) {
    index_.stride(source).Charge(id, env_.sim.Now() - info.last_charge);
    env_.exec.Suspend(id);
  }
  DetachResident(id);
  info.migrating = true;
  info.last_migration = env_.sim.Now();
  info.home = dest;  // AttachResident uses this when the migration lands
  env_.exec.Migrate(id, dest);
  GFAIR_DLOG << "migrating job " << id << " from server " << source << " to " << dest;
  FillIdleGpus(source);
}

bool GandivaFairScheduler::OnPrecopyCutover(JobId id, ServerId dest) {
  ResidencyIndex::JobInfo& info = residency_.Info(id);
  if (!info.precopying) {
    // The claim was dropped (the job was orphaned or finished and possibly
    // re-placed back onto the same server) — the shipped bulk is stale.
    return false;
  }
  GFAIR_CHECK(!info.migrating);
  info.precopying = false;
  if (index_.draining(dest) || index_.down(dest)) {
    return false;  // destination became ineligible scheduler-side
  }
  const ServerId source = info.home;
  if (env_.exec.IsRunning(id)) {
    index_.stride(source).Charge(id, env_.sim.Now() - info.last_charge);
    env_.exec.Suspend(id);
  }
  DetachResident(id);
  info.migrating = true;
  info.last_migration = env_.sim.Now();
  info.home = dest;  // AttachResident uses this when the tail lands
  env_.exec.MigrateTail(id, dest);
  GFAIR_DLOG << "pre-copy cutover: job " << id << " from server " << source
             << " to " << dest;
  FillIdleGpus(source);
  return true;
}

Tickets GandivaFairScheduler::PerJobTickets(UserId user, GpuGeneration gen,
                                            const Job& job) const {
  // A user's pool tickets are split across its resident jobs proportional to
  // weight x gang size (equal weighted GPU-time per demanded GPU). An equal
  // per-job split would let the user's 1-GPU jobs run continuously while its
  // 8-GPU gang — one job, one share — starved at an eighth of its demand.
  const Tickets pool_tickets = std::max(ticket_matrix_.Get(user, gen), kMinTickets);
  const double share = job.gang_size * job.weight;
  const double demand = std::max(residency_.WeightedResidentDemand(user, gen), share);
  return pool_tickets * share / demand;
}

void GandivaFairScheduler::RefreshPoolTickets(UserId user, GpuGeneration gen) {
  const auto& pool_jobs = residency_.PoolJobs(user, gen);
  if (pool_jobs.empty()) {
    return;
  }
  // The matrix lookup and the pool demand are loop-invariant — hoisted out
  // of the per-job formula, which otherwise dominates attach/detach cost for
  // users with many resident jobs. The per-job expression stays bit-identical
  // to PerJobTickets.
  const Tickets pool_tickets = std::max(ticket_matrix_.Get(user, gen), kMinTickets);
  const double pool_demand = residency_.WeightedResidentDemand(user, gen);
  // Sorted: SetTickets on distinct jobs commute, so this is for lint
  // uniformity (every PoolJobs walk is sorted), not correctness.
  for (JobId id : common::SortedKeys(pool_jobs)) {
    const Job& job = env_.jobs.Get(id);
    const double share = job.gang_size * job.weight;
    index_.SetTickets(residency_.Info(id).home, id,
                      pool_tickets * share / std::max(pool_demand, share));
  }
}

void GandivaFairScheduler::RefreshAllTickets() {
  for (UserId user : residency_.active_users()) {
    for (GpuGeneration gen : cluster::kAllGenerations) {
      RefreshPoolTickets(user, gen);
    }
  }
}

ClusterSnapshot GandivaFairScheduler::Snapshot() const {
  ClusterSnapshot snapshot;
  snapshot.time = env_.sim.Now();
  for (const auto& server : env_.cluster.servers()) {
    ServerSnapshot view;
    view.id = server.id();
    view.generation = server.generation();
    view.num_gpus = server.num_gpus();
    view.busy_gpus = server.num_busy();
    const auto& stride = index_.stride(server.id());
    view.resident_jobs = static_cast<int>(stride.num_jobs());
    view.demand_load = stride.DemandLoad() / static_cast<double>(server.num_gpus());
    // Snapshot rows are display values; unwrap at the serialization boundary.
    view.ticket_load = (stride.TicketLoad() / static_cast<double>(server.num_gpus())).raw();  // gfair-lint: allow(unit-unwrap-outside-boundary)
    view.draining = index_.draining(server.id());
    view.down = index_.down(server.id());
    snapshot.servers.push_back(view);
  }
  for (const auto& user : env_.users.users()) {
    UserSnapshot view;
    view.id = user.id;
    view.name = user.name;
    view.unfinished_jobs = residency_.UnfinishedJobs(user.id);
    for (GpuGeneration gen : cluster::kAllGenerations) {
      const size_t g = GenerationIndex(gen);
      view.entitlement_gpus[g] =
          ticket_matrix_.HasUser(user.id) ? EntitlementGpus(user.id, gen) : 0.0;
      view.resident_demand[g] = ResidentDemand(user.id, gen);
    }
    snapshot.users.push_back(view);
  }
  return snapshot;
}

void GandivaFairScheduler::DrainServer(ServerId server) {
  if (index_.draining(server)) {
    return;
  }
  index_.SetDraining(server, true);
  GFAIR_ILOG << "draining server " << server;
  balancer_.DrainBatch();
}

void GandivaFairScheduler::UndrainServer(ServerId server) {
  index_.SetDraining(server, false);
}

void GandivaFairScheduler::ApplyHierarchy() {
  if (!config_.enable_hierarchical_sharing) {
    return;
  }
  bool any_grouped = false;
  for (const auto& user : env_.users.users()) {
    if (!user.group.empty()) {
      any_grouped = true;
      break;
    }
  }
  if (!any_grouped) {
    return;
  }
  const std::vector<UserId> active = residency_.ActiveUsers();
  if (active.empty()) {
    return;
  }
  // Sorted for determinism (the result is an unordered_map); RegisterUser on
  // distinct users commutes, but a fixed order keeps row insertion identical
  // across platforms.
  for (const auto& [user, tickets] :
       common::SortedItems(ComputeHierarchicalTickets(env_.users, active))) {
    // Resets the user's pool row to the new base; the next trading epoch
    // rebuilds trades on top (activity changes invalidate them anyway).
    ticket_matrix_.RegisterUser(user, tickets);
  }
  RefreshAllTickets();
}

double GandivaFairScheduler::EntitlementGpus(UserId user, GpuGeneration gen) const {
  // Entitlements divide SURVIVING capacity: a down server's GPUs cannot be
  // promised to anyone (identical to total_gpus when nothing is down).
  const int pool = env_.cluster.up_gpus(gen);
  if (pool == 0) {
    return 0.0;
  }
  const std::set<UserId>& active = residency_.active_users();
  if (active.empty()) {
    return static_cast<double>(pool);
  }
  Tickets total = 0.0;
  Tickets mine = 0.0;
  for (UserId v : active) {
    const Tickets tickets = ticket_matrix_.Get(v, gen);
    total += tickets;
    if (v == user) {
      mine = tickets;
    }
  }
  if (total <= 0.0) {
    return static_cast<double>(pool) / static_cast<double>(active.size());
  }
  // Share ratio (Tickets / Tickets) scales the pool's physical GPU count.
  return mine / total * static_cast<double>(pool);
}

}  // namespace gfair::sched
