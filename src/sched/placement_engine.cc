#include "sched/placement_engine.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/log.h"
#include "sched/gandiva_fair.h"

namespace gfair::sched {

using cluster::GpuGeneration;
using workload::Job;

namespace {
// Entitlement floor when scoring pools so that fully-traded-away pools score
// astronomically bad instead of dividing by zero.
constexpr double kEntitlementFloor = 0.01;
}  // namespace

PlacementEngine::PlacementEngine(const SchedulerEnv& env, const GandivaFairConfig& config,
                                 ClusterStateIndex& index, ResidencyIndex& residency,
                                 ISchedulerHost& host)
    : env_(env), config_(config), index_(index), residency_(residency), host_(host) {
  last_steal_.assign(static_cast<size_t>(env_.cluster.num_servers()),
                     -(int64_t{1} << 60));
}

ServerId PlacementEngine::ChoosePlacement(const Job& job) const {
  // Pool choice: keep the user's per-pool resident demand proportional to its
  // per-pool entitlement, preferring faster generations on ties (we iterate
  // fastest-first and only accept strictly better scores).
  ServerId best_server = ServerId::Invalid();
  double best_score = std::numeric_limits<double>::infinity();

  const auto& model = env_.zoo.Get(job.model);
  for (size_t g = cluster::kNumGenerations; g-- > 0;) {
    const GpuGeneration gen = cluster::kAllGenerations[g];
    if (env_.cluster.total_gpus(gen) == 0 || !model.FitsGeneration(gen)) {
      continue;
    }
    // Cheapest server of the pool that can ever host the gang; residency is
    // oversubscribed (time slicing), so "fits" means physical GPU count.
    // While the pool has idle capacity, occupancy (resident demand per GPU)
    // is the signal — idle GPUs must attract work. Once every server is
    // saturated, ticket load is the signal: a new job's realized share is
    // its tickets relative to its server's ticket density, so packing by
    // "fewest jobs" would herd heavy-ticket users together and dilute them.
    // The scan stays linear in the pool size (the two-key epsilon comparison
    // has no total order to index on), but each load read is O(1) now.
    ServerId candidate = ServerId::Invalid();
    double candidate_demand = std::numeric_limits<double>::infinity();
    Tickets candidate_tickets = std::numeric_limits<double>::infinity();
    for (ServerId id : env_.cluster.servers_of(gen)) {
      const auto& server = env_.cluster.server(id);
      if (server.num_gpus() < job.gang_size || index_.draining(id) ||
          index_.down(id)) {
        continue;
      }
      const double gpus = server.num_gpus();
      // Saturated servers compare equal on occupancy; below saturation the
      // emptier server wins.
      const double demand_load =
          std::min(1.0, index_.stride(id).DemandLoad() / gpus);
      const Tickets ticket_load = index_.stride(id).TicketLoad() / gpus;
      if (demand_load < candidate_demand - 1e-9 ||
          (demand_load < candidate_demand + 1e-9 && ticket_load < candidate_tickets)) {
        candidate_demand = demand_load;
        candidate_tickets = ticket_load;
        candidate = id;
      }
    }
    if (!candidate.valid()) {
      continue;
    }
    const double entitlement =
        std::max(host_.EntitlementGpus(job.user, gen), kEntitlementFloor);
    const double demand = residency_.ResidentDemand(job.user, gen) + job.gang_size;
    const double score = demand / entitlement;
    if (score < best_score - 1e-12) {
      best_score = score;
      best_server = candidate;
    }
  }
  return best_server;
}

void PlacementEngine::TrySteal(ServerId server) {
  const SimTime now = env_.sim.Now();
  GFAIR_CHECK(server.value() < last_steal_.size());
  if (now - last_steal_[server.value()] < config_.quantum) {
    return;  // at most one steal per server per quantum
  }
  if (index_.draining(server) || index_.down(server)) {
    return;  // draining and down servers must not attract work
  }
  const cluster::Server& host_server = env_.cluster.server(server);
  const int free = host_server.num_free();
  if (free <= 0) {
    return;
  }
  const GpuGeneration gen = host_server.generation();

  // Most oversubscribed peer holding a suspended job that fits our idle
  // GPUs. Same-pool peers first; if none, pull queued work up from SLOWER
  // pools (an upgrade is always throughput-positive given the zoo's
  // monotone rates), respecting memory feasibility.
  JobId best = JobId::Invalid();
  double best_overflow = 0.25;  // require genuine oversubscription
  auto scan_pool = [&](GpuGeneration pool) {
    for (ServerId sid : env_.cluster.servers_of(pool)) {
      // Down peers are skipped not just because their load is stale: between
      // the server-down callback and the per-victim orphan callbacks, a dead
      // server's stride still lists jobs that the executor already queued —
      // stealing one would Migrate a non-suspended job.
      if (sid == server || index_.down(sid)) {
        continue;
      }
      const auto& peer = env_.cluster.server(sid);
      const double overflow =
          index_.stride(sid).DemandLoad() - static_cast<double>(peer.num_gpus());
      if (overflow <= best_overflow) {
        continue;
      }
      JobId candidate = JobId::Invalid();
      int candidate_gang = 0;
      for (JobId id : index_.stride(sid).ResidentJobs()) {
        if (env_.exec.IsRunning(id)) {
          continue;
        }
        const Job& job = env_.jobs.Get(id);
        if (job.gang_size > free || job.gang_size <= candidate_gang) {
          continue;
        }
        if (!env_.zoo.Get(job.model).FitsGeneration(gen)) {
          continue;
        }
        const ResidencyIndex::JobInfo& info = residency_.Info(id);
        if (info.precopying ||
            now - info.last_migration < config_.min_migration_interval) {
          continue;
        }
        candidate = id;
        candidate_gang = job.gang_size;
      }
      if (candidate.valid()) {
        best = candidate;
        best_overflow = overflow;
      }
    }
  };
  scan_pool(gen);
  if (!best.valid() && residency_.active_users().size() <= 1) {
    // Cross-pool upgrades are only a pure work-conservation move when a
    // single user is active; with multiple users, cross-pool allocation
    // belongs to the trading engine (stealing here would fight its
    // entitlements and skew shares).
    for (size_t g = 0; g < cluster::GenerationIndex(gen); ++g) {
      scan_pool(cluster::kAllGenerations[g]);
    }
  }
  if (!best.valid()) {
    return;
  }
  last_steal_[server.value()] = now;
  ++steals_started_;
  GFAIR_DLOG << "steal: job " << best << " -> server " << server;
  host_.EmitMigration(best, server, MigrationCause::kSteal);
}

}  // namespace gfair::sched
