#include "sched/load_balancer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/log.h"
#include "sched/gandiva_fair.h"

namespace gfair::sched {

using cluster::GpuGeneration;
using cluster::kAllGenerations;
using workload::Job;

LoadBalancer::LoadBalancer(const SchedulerEnv& env, const GandivaFairConfig& config,
                           ClusterStateIndex& index, ResidencyIndex& residency,
                           ISchedulerHost& host)
    : env_(env), config_(config), index_(index), residency_(residency), host_(host) {}

void LoadBalancer::Balance() {
  const SimTime now = env_.sim.Now();
  DrainBatch();  // evacuate draining servers first
  for (GpuGeneration gen : kAllGenerations) {
    const auto& servers = env_.cluster.servers_of(gen);
    if (servers.size() < 2) {
      continue;
    }

    // Pass 1 — work conservation: a server whose residents demand more GPUs
    // than it has, next to a server with spare GPUs, wastes capacity that no
    // amount of local time-slicing can recover. Move waiting (suspended)
    // jobs from oversubscribed servers onto idle GPUs. The scan stays linear
    // (pending demand from this round's in-flight moves has no home in the
    // load index) but every load read is O(1) cached.
    std::unordered_map<ServerId, double> pending_demand;  // in-flight arrivals
    for (int round = 0; round < config_.max_migrations_per_round; ++round) {
      ServerId src = ServerId::Invalid();
      ServerId dst = ServerId::Invalid();
      double worst_overflow = 0.5;  // demand beyond capacity, in GPUs
      double best_spare = 0.999;    // idle GPUs worth of headroom
      for (ServerId id : servers) {
        if (index_.draining(id) || index_.down(id)) {
          continue;
        }
        const auto& server = env_.cluster.server(id);
        const double demand = index_.stride(id).DemandLoad() + pending_demand[id];
        const double overflow = demand - server.num_gpus();
        const double spare = server.num_gpus() - demand;
        if (overflow > worst_overflow) {
          worst_overflow = overflow;
          src = id;
        }
        if (spare > best_spare) {
          best_spare = spare;
          dst = id;
        }
      }
      if (!src.valid() || !dst.valid()) {
        break;
      }
      // Largest suspended gang that fits the destination's headroom.
      JobId candidate = JobId::Invalid();
      int candidate_gang = 0;
      for (JobId id : index_.stride(src).ResidentJobs()) {
        if (env_.exec.IsRunning(id)) {
          continue;
        }
        const Job& job = env_.jobs.Get(id);
        const ResidencyIndex::JobInfo& info = residency_.Info(id);
        if (info.precopying ||
            now - info.last_migration < config_.min_migration_interval) {
          continue;
        }
        if (job.gang_size <= best_spare + 1e-9 && job.gang_size > candidate_gang) {
          candidate = id;
          candidate_gang = job.gang_size;
        }
      }
      if (!candidate.valid()) {
        break;
      }
      pending_demand[dst] += candidate_gang;
      host_.EmitMigration(candidate, dst, MigrationCause::kConserve);
    }

    // Pass 2 — fairness: even out per-server ticket load so every resident
    // job's stride share is realizable. Tickets already in flight toward a
    // destination this round. Loads stay in ticket space (per-GPU normalized
    // by a dimensionless GPU count), so the whole pass is unit-typed.
    std::unordered_map<ServerId, Tickets> pending;

    for (int round = 0; round < config_.max_migrations_per_round; ++round) {
      ServerId max_server = ServerId::Invalid();
      ServerId min_server = ServerId::Invalid();
      Tickets max_load = -std::numeric_limits<double>::infinity();
      Tickets min_load = std::numeric_limits<double>::infinity();
      Tickets sum_load = 0.0;
      for (ServerId id : servers) {
        if (index_.draining(id) || index_.down(id)) {
          continue;
        }
        const double gpus = env_.cluster.server(id).num_gpus();
        const Tickets load = (index_.stride(id).TicketLoad() + pending[id]) / gpus;
        sum_load += load;
        if (load > max_load) {
          max_load = load;
          max_server = id;
        }
        if (load < min_load) {
          min_load = load;
          min_server = id;
        }
      }
      const Tickets avg_load = sum_load / static_cast<double>(servers.size());
      if (max_load - min_load <= config_.balance_threshold * std::max(avg_load, Tickets(1e-9))) {
        break;
      }

      // Candidate = resident job on the hottest server whose move shrinks the
      // gap the most and still leaves the destination cooler than the source
      // was.
      const double src_gpus = env_.cluster.server(max_server).num_gpus();
      const double dst_gpus = env_.cluster.server(min_server).num_gpus();
      JobId best = JobId::Invalid();
      Tickets best_gap = max_load - min_load;
      for (JobId id : index_.stride(max_server).ResidentJobs()) {
        const Job& job = env_.jobs.Get(id);
        const ResidencyIndex::JobInfo& info = residency_.Info(id);
        if (info.precopying ||
            now - info.last_migration < config_.min_migration_interval) {
          continue;
        }
        if (env_.cluster.server(min_server).num_gpus() < job.gang_size) {
          continue;
        }
        const Tickets tickets = index_.stride(max_server).TicketsOf(id);
        const Tickets new_src = max_load - tickets / src_gpus;
        const Tickets new_dst = min_load + tickets / dst_gpus;
        if (new_dst >= max_load) {
          continue;  // would just swap the hot spot
        }
        const Tickets gap = Abs(new_src - new_dst);
        if (gap < best_gap) {
          best_gap = gap;
          best = id;
        }
      }
      if (!best.valid()) {
        break;
      }
      pending[min_server] += index_.stride(max_server).TicketsOf(best);
      host_.EmitMigration(best, min_server, MigrationCause::kBalance);
    }
  }
}

void LoadBalancer::DrainBatch() {
  if (!index_.AnyDraining()) {
    return;
  }
  const SimTime now = env_.sim.Now();
  for (size_t s = 0; s < index_.num_servers(); ++s) {
    const ServerId source(static_cast<uint32_t>(s));
    if (!index_.draining(source)) {
      continue;
    }
    const cluster::GpuGeneration gen = env_.cluster.server(source).generation();
    // Bounded batch: residents leave over successive balance ticks so the
    // migration network is not swamped.
    int budget = config_.max_migrations_per_round;
    // Copy: EmitMigration below removes jobs from this stride scheduler,
    // invalidating its cached resident vector.
    const std::vector<JobId> resident = index_.stride(source).ResidentJobs();
    for (JobId id : resident) {
      if (budget <= 0) {
        break;
      }
      const Job& job = env_.jobs.Get(id);
      if (residency_.Info(id).precopying) {
        continue;  // an in-flight pre-copy will move (or release) it shortly
      }
      // Least-loaded non-draining server of the pool that fits the gang —
      // one ordered-set walk instead of a full pool scan.
      const ServerId dest = index_.LeastLoadedServer(gen, job.gang_size, source);
      if (!dest.valid()) {
        GFAIR_WLOG << "drain: no destination for job " << id << " at "
                   << FormatDuration(now) << "; leaving it in place";
        continue;
      }
      host_.EmitMigration(id, dest, MigrationCause::kBalance);
      --budget;
    }
  }
}

}  // namespace gfair::sched
