// Executor — simulated DLT job runtime.
//
// Stands in for the Gandiva-style per-server runtime the paper relies on:
// suspend/resume of framework processes and checkpoint-based migration
// between servers. The scheduler calls the five verbs below; the executor
// charges simulated time, tracks job progress at the model's per-generation
// throughput, fires completion callbacks, and accounts GPU time to users.
//
// Cost model (documented in DESIGN.md):
//  * Resume: the first `resume_latency(model)` of a run segment produces no
//    progress (process restore + GPU warm-up) but occupies the gang — so each
//    suspend/resume cycle costs real GPU time, which is why the scheduling
//    quantum must be much larger than the latency.
//  * Suspend: the checkpoint happens asynchronously to the releasing GPUs
//    (device state is small relative to host state); modeled as instantaneous
//    release plus `suspend_latency(model)` charged to the job's overhead.
//  * Migration: suspend + checkpoint transfer at `migrate_bw_gbps` + resume,
//    during which the job is unavailable for scheduling. A transfer can fail
//    at landing (flaky network, destination died mid-flight); the job then
//    falls back, suspended, to its source server — retry policy is the
//    scheduler's business, not the executor's.
//
// Failure model (documented in DESIGN.md): FailServer models whole-node
// loss. Checkpoints live in durable (remote) storage, so a dead server costs
// each resident job only the progress since its last checkpoint; the jobs
// become orphans (kQueued, no server) and the scheduler is told through the
// orphan/server-down callbacks so it can re-place them.
#ifndef GFAIR_EXEC_EXECUTOR_H_
#define GFAIR_EXEC_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/cluster.h"
#include "common/phase_tokens.h"
#include "common/rng.h"
#include "exec/schedule_op.h"
#include "common/sim_time.h"
#include "common/types.h"
#include "simkit/simulator.h"
#include "workload/job.h"
#include "workload/model_zoo.h"

namespace gfair::common {
class ThreadPool;
}

namespace gfair::exec {

struct ExecutorConfig {
  // Suspend/resume latency = base + checkpoint_gb * per_gb (seconds).
  double suspend_base_s = 0.5;
  double suspend_per_gb_s = 0.2;
  double resume_base_s = 1.0;
  double resume_per_gb_s = 0.3;
  // Checkpoint network transfer bandwidth for migration.
  double migrate_bw_gbps = 1.0;
  // Migration network contention: a transfer starting while K others are in
  // flight takes (1 + K * migrate_contention) times as long — a snapshot
  // approximation of bandwidth sharing (exact processor sharing would
  // require re-timing in-flight transfers). 0 disables.
  double migrate_contention = 0.5;
  // Multiplicative noise (stddev, fraction of true rate) on observed
  // throughput samples — what the online profiler has to cope with.
  double rate_noise = 0.05;
  // Probability that a checkpoint transfer fails at landing (the job bounces
  // back to its source server, suspended). Drawn from a dedicated fault RNG
  // so enabling failures does not perturb the profiler noise stream. 0
  // disables — and skips the draw entirely, keeping failure-free runs
  // bit-identical to builds without the fault plane.
  double migrate_failure_prob = 0.0;
  // --- checkpoint compression (see DESIGN.md, "Migration cost model") ---
  // Checkpoints are compressed before hitting the migration network: the
  // transfer moves checkpoint_gb / compress_ratio GB, and compressing costs
  // compress_seconds_per_gb * checkpoint_gb of CPU time added to the
  // transfer phase (the trade: CPU seconds for network bytes). The defaults
  // model compression off and keep migration timing bit-identical to the
  // pre-compression executor.
  double compress_ratio = 1.0;
  double compress_seconds_per_gb = 0.0;
  // --- pre-copy migration (live-migration style) ---
  // When true, a migration of a resident job ships the bulk of the
  // checkpoint while the job keeps executing at its source; only the
  // stop-and-copy tail — suspend, re-send of the pages dirtied during the
  // bulk transfer, resume — makes the job unavailable. The scheduler drives
  // this through StartPreCopy + the cutover callback; plain Migrate remains
  // the full stop-and-copy path (and the only path for orphan re-placement,
  // where there is no live source to pre-copy from).
  bool precopy = false;
  // Fraction of the (compressed) checkpoint re-sent in the stop-and-copy
  // tail: the write working set dirtied while the bulk transfer ran.
  double precopy_dirty_fraction = 0.1;
  // --- warm-up overlap (Tally-style GPU sharing at quantum edges) ---
  // When true, a job resumed by an ApplyDelta slice warms up while the jobs
  // suspended earlier in the same slice drain their last mini-batch: its
  // no-progress warm-up prefix shrinks by up to the largest suspend latency
  // among those departures, hiding the quantum-boundary bubble. Off keeps
  // resume timing bit-identical to the non-overlapped executor.
  bool overlap_warmup = false;
};

// Global migration / fault accounting: lifetime counters plus the
// byte/bubble accumulators the E10/E14 benches report. These are exactly
// the cross-slice cells ApplyDeltaParallel's prepare fan-out must NOT touch
// (a `+=` from two slices is a lost-update race, and a double accumulation
// order change breaks bit-identity), so every mutator requires a
// common::ReduceToken — mintable only by the Executor (and the scheduler
// facade) at points that are serial by construction: event handlers,
// migration landings, and the serial commit pass of the parallel apply.
// Parallel code reaching for an accumulator is a compile error (pinned by a
// WILL_FAIL negative-compile ctest); reads are unrestricted.
class MigrationAccounting {
 public:
  // --- mutators (serial phase only; see common/phase_tokens.h) ---
  void AddTransfer(double wire_gb, common::ReduceToken) { bytes_gb_ += wire_gb; }
  void AddBubble(SimDuration latency, common::ReduceToken) {
    bubble_ms_ += latency;
  }
  void AddWarmupBubble(SimDuration warmup, common::ReduceToken) {
    warmup_bubble_ms_ += warmup;
  }
  void AddOverlapSaved(SimDuration hidden, common::ReduceToken) {
    overlap_saved_ms_ += hidden;
  }
  void CountServerFailure(common::ReduceToken) { server_failures_ += 1; }
  void CountServerRecovery(common::ReduceToken) { server_recoveries_ += 1; }
  void CountFailureDestDown(common::ReduceToken) { failures_dest_down_ += 1; }
  void CountFailureFlake(common::ReduceToken) { failures_flake_ += 1; }
  void CountOrphaned(common::ReduceToken) { jobs_orphaned_ += 1; }
  void CountPrecopyStarted(common::ReduceToken) { precopies_started_ += 1; }
  void CountPrecopyAborted(common::ReduceToken) { precopies_aborted_ += 1; }

  // --- getters (any phase) ---
  double bytes_gb() const { return bytes_gb_; }
  SimDuration bubble_ms() const { return bubble_ms_; }
  SimDuration warmup_bubble_ms() const { return warmup_bubble_ms_; }
  SimDuration overlap_saved_ms() const { return overlap_saved_ms_; }
  int64_t server_failures() const { return server_failures_; }
  int64_t server_recoveries() const { return server_recoveries_; }
  int64_t failures_dest_down() const { return failures_dest_down_; }
  int64_t failures_flake() const { return failures_flake_; }
  int64_t jobs_orphaned() const { return jobs_orphaned_; }
  int64_t precopies_started() const { return precopies_started_; }
  int64_t precopies_aborted() const { return precopies_aborted_; }

 private:
  int64_t server_failures_ = 0;
  int64_t server_recoveries_ = 0;
  int64_t failures_dest_down_ = 0;
  int64_t failures_flake_ = 0;
  int64_t jobs_orphaned_ = 0;
  int64_t precopies_started_ = 0;
  int64_t precopies_aborted_ = 0;
  double bytes_gb_ = 0.0;
  SimDuration bubble_ms_ = 0;
  SimDuration warmup_bubble_ms_ = 0;
  SimDuration overlap_saved_ms_ = 0;
};

class Executor {
 public:
  // Fired when a running job completes its work. The job's GPUs are already
  // released when this runs.
  using JobFinishedCallback = std::function<void(JobId)>;
  // Fired when a migration lands; the job is suspended on its new server.
  using MigrationDoneCallback = std::function<void(JobId)>;
  // Fired when a checkpoint transfer fails; the job is back, suspended, on
  // its source server. `dest` is the destination that was not reached.
  using MigrationFailedCallback = std::function<void(JobId, ServerId dest)>;
  // Fired when a job loses its server (node failure): progress is rolled
  // back to the last checkpoint and the job is kQueued with no server.
  using JobOrphanedCallback = std::function<void(JobId)>;
  // Server availability transitions (FailServer/RecoverServer).
  using ServerEventCallback = std::function<void(ServerId)>;
  // GPU-time accounting hook: `user` held `gpus` GPUs of `gen` over
  // [start, end). Fired at the end of every run segment.
  using AccountingCallback = std::function<void(
      UserId user, cluster::GpuGeneration gen, SimTime start, SimTime end, int gpus)>;
  // Fired when a pre-copy bulk transfer completes and the job is still a
  // valid candidate on the executor side (alive, still at its source). The
  // scheduler returns true to proceed — it must suspend/detach the job and
  // call MigrateTail(job, dest) — or false to abort the migration (e.g. it
  // already dropped its own pre-copy claim on the job).
  using PrecopyCutoverCallback = std::function<bool(JobId, ServerId dest)>;

  Executor(simkit::Simulator& sim, cluster::Cluster& cluster,
           const workload::ModelZoo& zoo, workload::JobTable& jobs,
           ExecutorConfig config, uint64_t seed);

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  void set_on_job_finished(JobFinishedCallback cb) { on_finished_ = std::move(cb); }
  void set_on_migration_done(MigrationDoneCallback cb) { on_migrated_ = std::move(cb); }
  void set_on_migration_failed(MigrationFailedCallback cb) {
    on_migration_failed_ = std::move(cb);
  }
  void set_on_job_orphaned(JobOrphanedCallback cb) { on_orphaned_ = std::move(cb); }
  void set_on_server_down(ServerEventCallback cb) { on_server_down_ = std::move(cb); }
  void set_on_server_up(ServerEventCallback cb) { on_server_up_ = std::move(cb); }
  void set_on_gpu_time(AccountingCallback cb) { on_gpu_time_ = std::move(cb); }
  void set_on_precopy_cutover(PrecopyCutoverCallback cb) {
    on_precopy_cutover_ = std::move(cb);
  }

  // queued -> suspended: the job becomes resident on `server` (no cost; the
  // container/image is assumed pre-staged, as in the paper's clusters).
  void MakeResident(JobId id, ServerId server);

  // suspended -> queued: detach a never-started or suspended job from its
  // server without migration cost is NOT allowed once it has progress; use
  // Migrate. Eviction is only for jobs with zero progress (placement undo).
  void EvictResident(JobId id);

  // suspended -> running: allocates the gang and starts progress after the
  // resume latency. Precondition: the server has gang_size free GPUs.
  void Resume(JobId id);

  // running -> suspended: stops progress, releases the gang immediately and
  // charges suspend latency to the job's overhead account.
  void Suspend(JobId id);

  // Applies a batched schedule change: each op is a Suspend (resume=false)
  // or Resume (resume=true), executed strictly in list order — the producer
  // (sched::PlanDiffer) orders suspends before the resumes that need their
  // GPUs. Batched calls at quantum edges (the scheduler applies one slice
  // per diffed server) replace the per-job call storm.
  void ApplyDelta(const ScheduleOp* ops, size_t count);
  void ApplyDelta(const std::vector<ScheduleOp>& ops) {
    ApplyDelta(ops.data(), ops.size());
  }

  // One per-server run of consecutive ops inside a ScheduleDelta.
  struct ApplySlice {
    const ScheduleOp* ops;
    size_t count;
  };

  // Applies many per-server slices with the per-job/per-server work fanned
  // out across `pool` and a serial commit pass in slice order. Slices must
  // target pairwise-distinct servers (disjoint jobs and GPUs by
  // construction); under that precondition the result — state, decision
  // order, event ids, accounting stream — is bit-identical to calling
  // ApplyDelta on each slice in order, because everything order-sensitive
  // (running-list maintenance, finish-timer arms, accounting flushes) is
  // replayed serially in op order by the commit pass. Suspend/resume draw no
  // RNG, so the fan-out cannot perturb streams.
  void ApplyDeltaParallel(const ApplySlice* slices, size_t num_slices,
                          common::ThreadPool& pool);

  // suspended -> migrating -> suspended on `dest` after the migration
  // latency. The migration-done callback then fires.
  void Migrate(JobId id, ServerId dest);

  // Starts a pre-copy migration: the (compressed) checkpoint bulk-transfers
  // while the job keeps running (or sits suspended) at its source; the job
  // stays schedulable there throughout. When the bulk lands, the cutover
  // callback asks the scheduler to suspend/detach the job and call
  // MigrateTail — or the transfer is abandoned if the job finished, moved,
  // was orphaned, or the destination died mid-flight (a cheap failure: the
  // job never stopped running). Precondition: job running or suspended on an
  // up server, destination up and fitting, config().precopy enabled.
  void StartPreCopy(JobId id, ServerId dest);

  // The stop-and-copy tail of a pre-copy migration: like Migrate but the
  // transfer re-sends only precopy_dirty_fraction of the compressed
  // checkpoint. Call from the cutover callback after suspending the job.
  void MigrateTail(JobId id, ServerId dest);

  // Failure injection: the job's process dies (OOM, spot preemption, node
  // fault). Progress rolls back to the last checkpoint — checkpoints are
  // taken on every suspend/migration, so the exposure is the current run
  // segment. A running job releases its GPUs (the GPU time burned since the
  // checkpoint is still charged — that's the cost of the crash) and becomes
  // suspended on its server, ready to restart from the checkpoint. No-op
  // state change for already-suspended jobs. Precondition: not finished, not
  // migrating.
  void InjectCrash(JobId id);

  // Whole-node failure: marks the server down (placement must stop targeting
  // it), then evacuates every resident job — running segments are closed
  // (their burned GPU time stays charged), progress rolls back to the last
  // checkpoint, and the victims become orphans (kQueued, no server). Fires
  // the server-down callback first, then one orphan callback per victim, so
  // a scheduler re-places orphans against a world that already excludes the
  // dead server. Jobs mid-migration are NOT orphaned here: the checkpoint is
  // already in durable storage, so an outbound transfer still lands at its
  // destination, and an inbound transfer fails at landing (see Migrate).
  // Precondition: the server is up.
  void FailServer(ServerId id);

  // Brings a failed server back, empty; fires the server-up callback.
  // Precondition: the server is down.
  void RecoverServer(ServerId id);

  bool IsRunning(JobId id) const {
    return id.value() < segments_.size() && segments_[id.value()].active;
  }

  // Cache hint for an upcoming IsRunning/SampleObservedRate on `id` in a
  // walk over scattered job ids. No effect on behavior.
  void PrefetchJobState(JobId id) const {
    if (id.value() < segments_.size()) {
      __builtin_prefetch(&segments_[id.value()]);
    }
  }

  // Ground-truth gang throughput (mini-batches/s) of the job on `gen`.
  double TrueRate(JobId id, cluster::GpuGeneration gen) const;

  // Noisy observation of the job's current throughput. Precondition: running.
  // This is what the profiler sees (mini-batch timing jitter).
  double SampleObservedRate(JobId id);

  // Folds elapsed progress of a running job into completed_minibatches (e.g.
  // before reading job stats mid-segment). No-op for non-running jobs.
  // Also flushes the pending GPU-time interval to the accounting callback.
  void SyncProgress(JobId id);

  // SyncProgress for every running job. Call before reading jobs/ledgers
  // mid-run — open run segments are otherwise invisible to accounting.
  void SyncAll();

  // Per-model operation latencies (exposed for benches/tests).
  // MigrateLatency is the uncontended figure; the actual charge grows with
  // the number of migrations already in flight (see migrate_contention).
  SimDuration SuspendLatency(workload::ModelId model) const;
  SimDuration ResumeLatency(workload::ModelId model) const;
  SimDuration MigrateLatency(workload::ModelId model) const;

  int migrations_in_flight() const { return migrations_in_flight_; }

  // Lifetime fault counters (benches and tests).
  int64_t server_failures() const { return acct_.server_failures(); }
  int64_t server_recoveries() const { return acct_.server_recoveries(); }
  // Failed landings, split by cause: the destination died while the
  // checkpoint was in flight vs the transfer itself flaked. The total is
  // their sum (kept as a getter so E10/E14 attribution can't drift).
  int64_t migration_failures() const {
    return acct_.failures_dest_down() + acct_.failures_flake();
  }
  int64_t migration_failures_dest_down() const { return acct_.failures_dest_down(); }
  int64_t migration_failures_flake() const { return acct_.failures_flake(); }
  int64_t jobs_orphaned() const { return acct_.jobs_orphaned(); }

  // Pre-copy lifecycle counters.
  int64_t precopies_started() const { return acct_.precopies_started(); }
  int64_t precopies_aborted() const { return acct_.precopies_aborted(); }

  // Migration byte/bubble accounting (benches report these, not just
  // counts). Bytes are post-compression GB put on the migration network
  // (bulk + tail for pre-copies). Bubble is the time jobs were unavailable
  // to the scheduler due to migration (the full latency for stop-and-copy,
  // only the tail for pre-copies). Warm-up bubble is the total no-progress
  // warm-up prefix charged at resumes; overlap_saved is the portion of it
  // hidden by overlap_warmup.
  double migration_bytes_gb() const { return acct_.bytes_gb(); }
  SimDuration migration_bubble_ms() const { return acct_.bubble_ms(); }
  SimDuration warmup_bubble_ms() const { return acct_.warmup_bubble_ms(); }
  SimDuration overlap_saved_ms() const { return acct_.overlap_saved_ms(); }

  // The full accounting block (token-gated mutators live on the class
  // itself; see MigrationAccounting above).
  const MigrationAccounting& accounting() const { return acct_; }

  const ExecutorConfig& config() const { return config_; }

 private:
  // State of one running gang. Slots live in a dense vector indexed by job
  // id — IsRunning and segment lookup are on the scheduler's per-quantum hot
  // path for every resident job, where a hash probe per call dominates.
  struct RunSegment {
    SimTime start;       // segment start (resume instant)
    SimDuration warmup;  // no-progress prefix (resume latency)
    double rate;         // mini-batches/s once warmed up
    cluster::GpuGeneration gen;
    bool active = false;      // this job currently holds GPUs
    uint32_t running_pos = 0;  // index into running_list_ while active
  };

  RunSegment& SegmentOf(JobId id);

  // Progress accumulated in a segment after `elapsed` of wall time.
  static double SegmentProgress(const RunSegment& seg, SimDuration elapsed);

  // Ends a run segment: sync progress, charge GPU time, release GPUs.
  void CloseSegment(workload::Job& job, bool cancel_finish_event);

  void OnFinishEvent(JobId id);

  // Per-model costs, resolved once per model instead of recomputing the
  // latency formula (and its Seconds() rounding) on every suspend/resume.
  struct ModelCosts {
    SimDuration suspend = 0;
    SimDuration resume = 0;
    bool init = false;
  };
  const ModelCosts& CostsFor(workload::ModelId model);

  // The job's finish timer slot (created at first resume; see
  // EventQueue timers — arming/disarming replaces the push/cancel pair).
  simkit::TimerId FinishTimerFor(JobId id);

  // Shared resume body: `overlap_allowance` is the largest suspend latency
  // earlier in the same apply slice (0 outside overlap mode).
  void ResumeWithOverlap(JobId id, SimDuration overlap_allowance);

  // Shared Migrate/MigrateTail body; `dirty_fraction` scales the transfer.
  void DoMigrate(JobId id, ServerId dest, double transfer_fraction);

  // A checkpoint transfer reached its scheduled landing time: success, or
  // fall back to the source, or orphan when both ends are gone.
  void FinishMigration(JobId id, ServerId dest);

  // A pre-copy bulk transfer reached its landing time: validate, ask the
  // scheduler to cut over, or abandon the transfer.
  void PrecopyCutover(JobId id, ServerId source, ServerId dest);

  // Post-compression GB on the wire for a full checkpoint of `model`.
  double CompressedGb(workload::ModelId model) const;
  // Transfer seconds (compression CPU + wire time) for `gb` compressed GB,
  // stretched by current contention.
  SimDuration TransferTime(double compressed_gb, double compress_cpu_s) const;

  // Shared orphan mechanics for FailServer and FinishMigration: close the
  // segment if running, roll back to the checkpoint, queue the job. Does NOT
  // fire the orphan callback — callers sequence that themselves.
  void OrphanJob(workload::Job& job);

  simkit::Simulator& sim_;
  cluster::Cluster& cluster_;
  const workload::ModelZoo& zoo_;
  workload::JobTable& jobs_;
  ExecutorConfig config_;
  Rng rng_;
  // Separate stream for transfer-failure draws: seeded independently of
  // rng_ so enabling migrate_failure_prob leaves profiler noise unchanged.
  Rng fault_rng_;

  std::vector<RunSegment> segments_;  // indexed by job id; see RunSegment
  std::vector<JobId> running_list_;   // ids of active segments (swap-erase)
  std::vector<JobId> sync_scratch_;   // reused snapshot buffer for SyncAll
  std::vector<ModelCosts> model_costs_;       // indexed by model id
  std::vector<simkit::TimerId> finish_timer_;  // indexed by job id
  int migrations_in_flight_ = 0;

  // An in-flight pre-copy bulk transfer. The record is validated at cutover
  // (the job may have finished, moved, or been orphaned mid-flight), so no
  // eager invalidation is needed anywhere.
  struct PendingPrecopy {
    JobId job;
    ServerId source;
    ServerId dest;
  };
  std::vector<PendingPrecopy> pending_precopies_;

  // Deferred per-op commit state for ApplyDeltaParallel: everything the
  // parallel prepare pass computed but must apply serially in op order.
  struct PreparedOp {
    SimTime finish_at = 0;             // resumes: when the finish timer fires
    SimDuration overlap_hidden = 0;    // resumes: warm-up hidden by overlap
    UserId user;                       // suspends: deferred accounting args
    cluster::GpuGeneration gen{};
    SimTime acct_start = 0;
    int gpus = 0;
    bool flush_accounting = false;  // suspends: elapsed > 0, ledger owed
  };
  std::vector<PreparedOp> prepared_scratch_;

  // ApplyDeltaParallel's three passes (see the public method for the
  // contract): prepare runs concurrently across slices and touches only
  // per-job/per-server state; commit replays the order-sensitive remainder
  // serially in op order.
  PreparedOp PrepareResume(JobId id, SimDuration overlap_allowance);
  PreparedOp PrepareSuspend(JobId id);
  void CommitOp(const ScheduleOp& op, const PreparedOp& prepared);

  // Committed only at serial points, through the ReduceToken-gated
  // mutators (an audit of every site is in the class comment above).
  MigrationAccounting acct_;

  JobFinishedCallback on_finished_;
  MigrationDoneCallback on_migrated_;
  MigrationFailedCallback on_migration_failed_;
  JobOrphanedCallback on_orphaned_;
  ServerEventCallback on_server_down_;
  ServerEventCallback on_server_up_;
  AccountingCallback on_gpu_time_;
  PrecopyCutoverCallback on_precopy_cutover_;
};

}  // namespace gfair::exec

#endif  // GFAIR_EXEC_EXECUTOR_H_
