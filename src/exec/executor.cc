#include "exec/executor.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/log.h"

namespace gfair::exec {

using cluster::GpuGeneration;
using workload::Job;
using workload::JobState;

Executor::Executor(simkit::Simulator& sim, cluster::Cluster& cluster,
                   const workload::ModelZoo& zoo, workload::JobTable& jobs,
                   ExecutorConfig config, uint64_t seed)
    : sim_(sim),
      cluster_(cluster),
      zoo_(zoo),
      jobs_(jobs),
      config_(config),
      rng_(seed),
      fault_rng_(seed ^ 0x9E3779B97F4A7C15ULL) {}

SimDuration Executor::SuspendLatency(workload::ModelId model) const {
  const auto& profile = zoo_.Get(model);
  return Seconds(config_.suspend_base_s + config_.suspend_per_gb_s * profile.checkpoint_gb);
}

SimDuration Executor::ResumeLatency(workload::ModelId model) const {
  const auto& profile = zoo_.Get(model);
  return Seconds(config_.resume_base_s + config_.resume_per_gb_s * profile.checkpoint_gb);
}

SimDuration Executor::MigrateLatency(workload::ModelId model) const {
  const auto& profile = zoo_.Get(model);
  const double transfer_s = profile.checkpoint_gb / config_.migrate_bw_gbps;
  return SuspendLatency(model) + Seconds(transfer_s) + ResumeLatency(model);
}

void Executor::MakeResident(JobId id, ServerId server) {
  Job& job = jobs_.Get(id);
  GFAIR_CHECK_MSG(job.state == JobState::kQueued, "MakeResident requires a queued job");
  const auto& target = cluster_.server(server);
  GFAIR_CHECK_MSG(target.up(), "MakeResident on a down server");
  GFAIR_CHECK_MSG(job.gang_size <= target.num_gpus(),
                  "gang cannot ever fit on this server");
  GFAIR_CHECK_MSG(zoo_.Get(job.model).FitsGeneration(target.generation()),
                  "model does not fit this generation's GPU memory");
  job.server = server;
  job.state = JobState::kSuspended;
}

void Executor::EvictResident(JobId id) {
  Job& job = jobs_.Get(id);
  GFAIR_CHECK(job.state == JobState::kSuspended);
  // Exact by construction: a never-run job's progress is the literal 0.0 it
  // was initialized with (no accumulation has happened yet).
  GFAIR_CHECK_MSG(job.completed_minibatches == 0.0,  // gfair-lint: allow(float-eq)
                  "cannot evict a job with progress; use Migrate");
  job.server = ServerId::Invalid();
  job.state = JobState::kQueued;
}

double Executor::TrueRate(JobId id, GpuGeneration gen) const {
  const Job& job = jobs_.Get(id);
  return zoo_.Get(job.model).GangThroughput(gen, job.gang_size);
}

void Executor::Resume(JobId id) {
  Job& job = jobs_.Get(id);
  GFAIR_CHECK_MSG(job.state == JobState::kSuspended, "Resume requires a suspended job");
  cluster::Server& server = cluster_.server(job.server);
  GFAIR_CHECK_MSG(server.up(), "Resume on a down server");
  GFAIR_CHECK_MSG(server.CanFit(job.gang_size), "Resume without free GPUs");
  server.Allocate(id, job.gang_size);

  // One profile lookup serves both the warm-up latency and the true rate
  // (ResumeLatency + TrueRate would fetch it twice on the per-quantum path).
  const auto& profile = zoo_.Get(job.model);
  RunSegment seg;
  seg.start = sim_.Now();
  seg.warmup =
      Seconds(config_.resume_base_s + config_.resume_per_gb_s * profile.checkpoint_gb);
  seg.gen = server.generation();
  seg.rate = profile.GangThroughput(seg.gen, job.gang_size);
  GFAIR_CHECK(seg.rate > 0.0);

  const double remaining = job.remaining_minibatches();
  GFAIR_CHECK(remaining > 0.0);
  const SimDuration work_time =
      static_cast<SimDuration>(std::ceil(remaining / seg.rate * kSecond));
  seg.finish_event = sim_.At(seg.start + seg.warmup + work_time,
                             [this, id]() { OnFinishEvent(id); });

  if (id.value() >= segments_.size()) {
    segments_.resize(id.value() + 1);
  }
  seg.active = true;
  seg.running_pos = static_cast<uint32_t>(running_list_.size());
  running_list_.push_back(id);
  segments_[id.value()] = seg;
  job.state = JobState::kRunning;
  job.num_resumes += 1;
  job.overhead_ms += seg.warmup;
}

double Executor::SegmentProgress(const RunSegment& seg, SimDuration elapsed) {
  const SimDuration productive = std::max<SimDuration>(0, elapsed - seg.warmup);
  return seg.rate * ToSeconds(productive);
}

Executor::RunSegment& Executor::SegmentOf(JobId id) {
  GFAIR_CHECK_MSG(IsRunning(id), "job has no active run segment");
  return segments_[id.value()];
}

void Executor::CloseSegment(Job& job, bool cancel_finish_event) {
  RunSegment& seg = SegmentOf(job.id);
  const SimTime now = sim_.Now();
  const SimDuration elapsed = now - seg.start;

  job.completed_minibatches = std::min(
      job.total_minibatches, job.completed_minibatches + SegmentProgress(seg, elapsed));
  job.gpu_ms_by_gen[cluster::GenerationIndex(seg.gen)] +=
      static_cast<double>(elapsed) * job.gang_size;

  if (cancel_finish_event) {
    sim_.Cancel(seg.finish_event);
  }
  if (on_gpu_time_ && elapsed > 0) {
    on_gpu_time_(job.user, seg.gen, seg.start, now, job.gang_size);
  }

  cluster_.server(job.server).Release(job.id);
  const JobId moved = running_list_.back();
  running_list_[seg.running_pos] = moved;
  segments_[moved.value()].running_pos = seg.running_pos;
  running_list_.pop_back();
  seg.active = false;
}

void Executor::Suspend(JobId id) {
  Job& job = jobs_.Get(id);
  GFAIR_CHECK_MSG(job.state == JobState::kRunning, "Suspend requires a running job");
  CloseSegment(job, /*cancel_finish_event=*/true);
  job.state = JobState::kSuspended;
  job.num_suspends += 1;
  job.overhead_ms += SuspendLatency(job.model);
  job.checkpointed_minibatches = job.completed_minibatches;
}

void Executor::ApplyDelta(const ScheduleOp* ops, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    const ScheduleOp& op = ops[i];
    if (op.resume) {
      Resume(op.job);
    } else {
      Suspend(op.job);
    }
  }
}

void Executor::InjectCrash(JobId id) {
  Job& job = jobs_.Get(id);
  GFAIR_CHECK_MSG(job.state == JobState::kRunning || job.state == JobState::kSuspended,
                  "InjectCrash requires a running or suspended job");
  if (job.state == JobState::kRunning) {
    // Close the segment normally (GPU time since the checkpoint was really
    // burned and stays charged), then roll progress back.
    CloseSegment(job, /*cancel_finish_event=*/true);
    job.state = JobState::kSuspended;
  }
  const double lost = job.completed_minibatches - job.checkpointed_minibatches;
  GFAIR_CHECK(lost >= -1e-9);
  job.completed_minibatches = job.checkpointed_minibatches;
  job.num_crashes += 1;
  GFAIR_DLOG << "crash: job " << id << " lost " << lost << " mini-batches";
}

void Executor::OnFinishEvent(JobId id) {
  Job& job = jobs_.Get(id);
  GFAIR_CHECK(job.state == JobState::kRunning);
  CloseSegment(job, /*cancel_finish_event=*/false);
  // Guard against floating-point shortfall: the event fires at ceil() time.
  job.completed_minibatches = job.total_minibatches;
  job.state = JobState::kFinished;
  job.finish_time = sim_.Now();
  job.server = ServerId::Invalid();
  GFAIR_DLOG << "job " << id << " finished at " << FormatDuration(sim_.Now());
  if (on_finished_) {
    on_finished_(id);
  }
}

void Executor::Migrate(JobId id, ServerId dest) {
  Job& job = jobs_.Get(id);
  GFAIR_CHECK_MSG(job.state == JobState::kSuspended,
                  "Migrate requires a suspended job (suspend first)");
  GFAIR_CHECK(dest.valid() && dest != job.server);
  const cluster::Server& target = cluster_.server(dest);
  GFAIR_CHECK_MSG(target.up(), "Migrate to a down server");
  GFAIR_CHECK_MSG(job.gang_size <= target.num_gpus(), "gang cannot fit on destination");
  GFAIR_CHECK_MSG(zoo_.Get(job.model).FitsGeneration(target.generation()),
                  "model does not fit destination generation's GPU memory");

  job.state = JobState::kMigrating;
  // Concurrent checkpoint transfers share the migration network: stretch the
  // transfer by the contention factor for each migration already in flight.
  const double stretch =
      1.0 + config_.migrate_contention * static_cast<double>(migrations_in_flight_);
  const SimDuration base_latency = MigrateLatency(job.model);
  const SimDuration fixed = SuspendLatency(job.model) + ResumeLatency(job.model);
  const SimDuration latency =
      fixed + static_cast<SimDuration>(static_cast<double>(base_latency - fixed) * stretch);
  job.overhead_ms += latency;
  job.num_migrations += 1;
  job.checkpointed_minibatches = job.completed_minibatches;
  migrations_in_flight_ += 1;
  sim_.After(latency, [this, id, dest]() { FinishMigration(id, dest); });
}

void Executor::FinishMigration(JobId id, ServerId dest) {
  Job& moved = jobs_.Get(id);
  GFAIR_CHECK(moved.state == JobState::kMigrating);
  migrations_in_flight_ -= 1;
  GFAIR_CHECK(migrations_in_flight_ >= 0);

  // A transfer can fail at landing: the destination died while the
  // checkpoint was in flight, or the transfer itself flaked. The prob-zero
  // short-circuit also skips the RNG draw, keeping failure-free runs
  // bit-identical to the pre-fault-plane executor.
  const bool dest_down = !cluster_.server(dest).up();
  const bool flaked = config_.migrate_failure_prob > 0.0 &&
                      fault_rng_.Bernoulli(config_.migrate_failure_prob);
  if (!dest_down && !flaked) {
    moved.server = dest;
    moved.state = JobState::kSuspended;
    if (on_migrated_) {
      on_migrated_(id);
    }
    return;
  }

  moved.num_migration_failures += 1;
  migration_failures_ += 1;
  // The checkpoint is durable, so the job falls back to its source — unless
  // the source died too while the transfer was in flight, which orphans it.
  if (moved.server.valid() && cluster_.server(moved.server).up()) {
    moved.state = JobState::kSuspended;
    GFAIR_DLOG << "migration of job " << id << " to server " << dest
               << " failed; back on server " << moved.server;
    if (on_migration_failed_) {
      on_migration_failed_(id, dest);
    }
  } else {
    GFAIR_DLOG << "migration of job " << id << " to server " << dest
               << " failed with the source down too; orphaned";
    moved.state = JobState::kSuspended;  // OrphanJob's expected entry state
    OrphanJob(moved);
    if (on_orphaned_) {
      on_orphaned_(id);
    }
  }
}

void Executor::OrphanJob(Job& job) {
  const bool was_running = job.state == JobState::kRunning;
  if (was_running) {
    // Close the segment normally: the GPU time burned since the last
    // checkpoint was really consumed and stays charged.
    CloseSegment(job, /*cancel_finish_event=*/true);
    // The process died with the node — that is a crash, on top of the
    // orphaning.
    job.num_crashes += 1;
  }
  job.completed_minibatches = job.checkpointed_minibatches;
  job.state = JobState::kQueued;
  job.server = ServerId::Invalid();
  job.num_orphanings += 1;
  jobs_orphaned_ += 1;
}

void Executor::FailServer(ServerId id) {
  cluster::Server& server = cluster_.server(id);
  GFAIR_CHECK_MSG(server.up(), "FailServer on a server that is already down");
  cluster_.SetServerUp(id, false);
  server_failures_ += 1;
  GFAIR_DLOG << "server " << id << " failed at " << FormatDuration(sim_.Now());

  // Evacuate executor state for every resident job BEFORE any scheduler
  // callback runs: the callbacks then observe a consistent world (server
  // down, victims queued). Jobs mid-migration keep flying — their checkpoint
  // is already in durable storage (see FinishMigration for inbound ones).
  std::vector<JobId> victims;
  for (Job* job : jobs_.All()) {
    if (job->server == id && (job->state == JobState::kRunning ||
                              job->state == JobState::kSuspended)) {
      OrphanJob(*job);
      victims.push_back(job->id);
    }
  }
  GFAIR_CHECK_MSG(server.num_busy() == 0, "down server still holds GPUs");

  if (on_server_down_) {
    on_server_down_(id);
  }
  for (JobId victim : victims) {
    if (on_orphaned_) {
      on_orphaned_(victim);
    }
  }
}

void Executor::RecoverServer(ServerId id) {
  GFAIR_CHECK_MSG(!cluster_.server(id).up(), "RecoverServer on an up server");
  cluster_.SetServerUp(id, true);
  server_recoveries_ += 1;
  GFAIR_DLOG << "server " << id << " recovered at " << FormatDuration(sim_.Now());
  if (on_server_up_) {
    on_server_up_(id);
  }
}

double Executor::SampleObservedRate(JobId id) {
  GFAIR_CHECK_MSG(IsRunning(id), "SampleObservedRate requires a running job");
  const double noise = std::max(0.1, rng_.Normal(1.0, config_.rate_noise));
  return segments_[id.value()].rate * noise;
}

void Executor::SyncAll() {
  // Snapshot first: an accounting callback could in principle suspend a job
  // and mutate running_list_ under the iteration.
  sync_scratch_.assign(running_list_.begin(), running_list_.end());
  for (JobId id : sync_scratch_) {
    SyncProgress(id);
  }
}

void Executor::SyncProgress(JobId id) {
  if (!IsRunning(id)) {
    return;
  }
  Job& job = jobs_.Get(id);
  RunSegment& seg = segments_[id.value()];
  const SimTime now = sim_.Now();
  const SimDuration elapsed = now - seg.start;
  if (elapsed <= 0) {
    return;
  }
  const double progressed = SegmentProgress(seg, elapsed);
  job.completed_minibatches =
      std::min(job.total_minibatches, job.completed_minibatches + progressed);
  job.gpu_ms_by_gen[cluster::GenerationIndex(seg.gen)] +=
      static_cast<double>(elapsed) * job.gang_size;
  if (on_gpu_time_) {
    on_gpu_time_(job.user, seg.gen, seg.start, now, job.gang_size);
  }
  // Restart the segment "now", carrying any unfinished warm-up.
  seg.warmup = std::max<SimDuration>(0, seg.warmup - elapsed);
  seg.start = now;
}

}  // namespace gfair::exec
