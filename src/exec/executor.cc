#include "exec/executor.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/log.h"
#include "common/thread_pool.h"

namespace gfair::exec {

using cluster::GpuGeneration;
using workload::Job;
using workload::JobState;

Executor::Executor(simkit::Simulator& sim, cluster::Cluster& cluster,
                   const workload::ModelZoo& zoo, workload::JobTable& jobs,
                   ExecutorConfig config, uint64_t seed)
    : sim_(sim),
      cluster_(cluster),
      zoo_(zoo),
      jobs_(jobs),
      config_(config),
      rng_(seed),
      fault_rng_(seed ^ 0x9E3779B97F4A7C15ULL) {}

SimDuration Executor::SuspendLatency(workload::ModelId model) const {
  const auto& profile = zoo_.Get(model);
  return Seconds(config_.suspend_base_s + config_.suspend_per_gb_s * profile.checkpoint_gb);
}

SimDuration Executor::ResumeLatency(workload::ModelId model) const {
  const auto& profile = zoo_.Get(model);
  return Seconds(config_.resume_base_s + config_.resume_per_gb_s * profile.checkpoint_gb);
}

double Executor::CompressedGb(workload::ModelId model) const {
  return zoo_.Get(model).checkpoint_gb / config_.compress_ratio;
}

SimDuration Executor::TransferTime(double compressed_gb, double compress_cpu_s) const {
  return Seconds(compressed_gb / config_.migrate_bw_gbps + compress_cpu_s);
}

SimDuration Executor::MigrateLatency(workload::ModelId model) const {
  const double cpu_s =
      config_.compress_seconds_per_gb * zoo_.Get(model).checkpoint_gb;
  return SuspendLatency(model) + TransferTime(CompressedGb(model), cpu_s) +
         ResumeLatency(model);
}

const Executor::ModelCosts& Executor::CostsFor(workload::ModelId model) {
  const size_t idx = model.value();
  if (idx >= model_costs_.size()) {
    model_costs_.resize(idx + 1);
  }
  ModelCosts& costs = model_costs_[idx];
  if (!costs.init) {
    costs.suspend = SuspendLatency(model);
    costs.resume = ResumeLatency(model);
    costs.init = true;
  }
  return costs;
}

simkit::TimerId Executor::FinishTimerFor(JobId id) {
  const size_t idx = id.value();
  if (idx >= finish_timer_.size()) {
    finish_timer_.resize(idx + 1, simkit::kInvalidTimer);
  }
  if (finish_timer_[idx] == simkit::kInvalidTimer) {
    finish_timer_[idx] = sim_.CreateTimer([this, id]() { OnFinishEvent(id); });
  }
  return finish_timer_[idx];
}

void Executor::MakeResident(JobId id, ServerId server) {
  Job& job = jobs_.Get(id);
  GFAIR_CHECK_MSG(job.state == JobState::kQueued, "MakeResident requires a queued job");
  const auto& target = cluster_.server(server);
  GFAIR_CHECK_MSG(target.up(), "MakeResident on a down server");
  GFAIR_CHECK_MSG(job.gang_size <= target.num_gpus(),
                  "gang cannot ever fit on this server");
  GFAIR_CHECK_MSG(zoo_.Get(job.model).FitsGeneration(target.generation()),
                  "model does not fit this generation's GPU memory");
  job.server = server;
  job.state = JobState::kSuspended;
}

void Executor::EvictResident(JobId id) {
  Job& job = jobs_.Get(id);
  GFAIR_CHECK(job.state == JobState::kSuspended);
  // Exact by construction: a never-run job's progress is the literal 0.0 it
  // was initialized with (no accumulation has happened yet).
  GFAIR_CHECK_MSG(job.completed_minibatches == 0.0,  // gfair-lint: allow(float-eq)
                  "cannot evict a job with progress; use Migrate");
  job.server = ServerId::Invalid();
  job.state = JobState::kQueued;
}

double Executor::TrueRate(JobId id, GpuGeneration gen) const {
  const Job& job = jobs_.Get(id);
  return zoo_.Get(job.model).GangThroughput(gen, job.gang_size);
}

void Executor::Resume(JobId id) { ResumeWithOverlap(id, 0); }

void Executor::ResumeWithOverlap(JobId id, SimDuration overlap_allowance) {
  Job& job = jobs_.Get(id);
  GFAIR_CHECK_MSG(job.state == JobState::kSuspended, "Resume requires a suspended job");
  cluster::Server& server = cluster_.server(job.server);
  GFAIR_CHECK_MSG(server.up(), "Resume on a down server");
  GFAIR_CHECK_MSG(server.CanFit(job.gang_size), "Resume without free GPUs");
  server.Allocate(id, job.gang_size);

  // One profile lookup serves both the warm-up latency and the true rate
  // (ResumeLatency + TrueRate would fetch it twice on the per-quantum path).
  const auto& profile = zoo_.Get(job.model);
  RunSegment seg;
  seg.start = sim_.Now();
  seg.warmup = CostsFor(job.model).resume;
  if (overlap_allowance > 0) {
    // Overlap mode: the warm-up hides behind the drain of the jobs suspended
    // earlier in the same apply slice (see ExecutorConfig::overlap_warmup);
    // only the un-hidden prefix bubbles.
    const SimDuration hidden = std::min(seg.warmup, overlap_allowance);
    seg.warmup -= hidden;
    acct_.AddOverlapSaved(hidden, common::ReduceToken{});
  }
  seg.gen = server.generation();
  seg.rate = profile.GangThroughput(seg.gen, job.gang_size);
  GFAIR_CHECK(seg.rate > 0.0);

  const double remaining = job.remaining_minibatches();
  GFAIR_CHECK(remaining > 0.0);
  const SimDuration work_time =
      static_cast<SimDuration>(std::ceil(remaining / seg.rate * kSecond));
  sim_.ArmTimerAt(FinishTimerFor(id), seg.start + seg.warmup + work_time);

  if (id.value() >= segments_.size()) {
    segments_.resize(id.value() + 1);
  }
  seg.active = true;
  seg.running_pos = static_cast<uint32_t>(running_list_.size());
  running_list_.push_back(id);
  segments_[id.value()] = seg;
  job.state = JobState::kRunning;
  job.num_resumes += 1;
  job.overhead_ms += seg.warmup;
  acct_.AddWarmupBubble(seg.warmup, common::ReduceToken{});
}

double Executor::SegmentProgress(const RunSegment& seg, SimDuration elapsed) {
  const SimDuration productive = std::max<SimDuration>(0, elapsed - seg.warmup);
  return seg.rate * ToSeconds(productive);
}

Executor::RunSegment& Executor::SegmentOf(JobId id) {
  GFAIR_CHECK_MSG(IsRunning(id), "job has no active run segment");
  return segments_[id.value()];
}

void Executor::CloseSegment(Job& job, bool cancel_finish_event) {
  RunSegment& seg = SegmentOf(job.id);
  const SimTime now = sim_.Now();
  const SimDuration elapsed = now - seg.start;

  // elapsed == 0 contributes exactly 0.0 to both accumulators, so skipping
  // the arithmetic is bit-identical — and it is the common case at quantum
  // edges, where SyncAll has just restarted every segment at `now`.
  if (elapsed > 0) {
    job.completed_minibatches = std::min(
        job.total_minibatches, job.completed_minibatches + SegmentProgress(seg, elapsed));
    job.gpu_ms_by_gen[cluster::GenerationIndex(seg.gen)] +=
        static_cast<double>(elapsed) * job.gang_size;
    if (on_gpu_time_) {
      on_gpu_time_(job.user, seg.gen, seg.start, now, job.gang_size);
    }
  }

  if (cancel_finish_event) {
    sim_.DisarmTimer(finish_timer_[job.id.value()]);
  }

  cluster_.server(job.server).Release(job.id);
  const JobId moved = running_list_.back();
  running_list_[seg.running_pos] = moved;
  segments_[moved.value()].running_pos = seg.running_pos;
  running_list_.pop_back();
  seg.active = false;
}

void Executor::Suspend(JobId id) {
  Job& job = jobs_.Get(id);
  GFAIR_CHECK_MSG(job.state == JobState::kRunning, "Suspend requires a running job");
  CloseSegment(job, /*cancel_finish_event=*/true);
  job.state = JobState::kSuspended;
  job.num_suspends += 1;
  job.overhead_ms += CostsFor(job.model).suspend;
  job.checkpointed_minibatches = job.completed_minibatches;
}

void Executor::ApplyDelta(const ScheduleOp* ops, size_t count) {
  // A slice's suspends (PlanDiffer orders them first) bound how much of a
  // subsequent resume's warm-up can hide behind the outgoing jobs' drains.
  SimDuration overlap_allowance = 0;
  for (size_t i = 0; i < count; ++i) {
    // Each op's job record and segment are scattered by id; hint the next
    // op's lines while this one applies.
    if (i + 1 < count) {
      jobs_.Prefetch(ops[i + 1].job);
      PrefetchJobState(ops[i + 1].job);
    }
    const ScheduleOp& op = ops[i];
    if (op.resume) {
      ResumeWithOverlap(op.job, overlap_allowance);
    } else {
      Suspend(op.job);
      if (config_.overlap_warmup) {
        overlap_allowance =
            std::max(overlap_allowance, CostsFor(jobs_.Get(op.job).model).suspend);
      }
    }
  }
}

void Executor::ApplyDeltaParallel(const ApplySlice* slices, size_t num_slices,
                                  common::ThreadPool& pool) {
  // Serial prologue: pre-size every shared dense array and warm the lazy
  // per-model cost cache, so the parallel phase performs no allocation and
  // no first-touch initialization (either would race).
  size_t total_ops = 0;
  size_t max_job = 0;
  for (size_t s = 0; s < num_slices; ++s) {
    total_ops += slices[s].count;
    for (size_t i = 0; i < slices[s].count; ++i) {
      max_job = std::max(max_job, static_cast<size_t>(slices[s].ops[i].job.value()));
      CostsFor(jobs_.Get(slices[s].ops[i].job).model);
    }
  }
  if (total_ops == 0) {
    return;
  }
  if (max_job >= segments_.size()) {
    segments_.resize(max_job + 1);
  }
  prepared_scratch_.assign(total_ops, PreparedOp{});
  std::vector<size_t> offsets(num_slices, 0);
  for (size_t s = 1; s < num_slices; ++s) {
    offsets[s] = offsets[s - 1] + slices[s - 1].count;
  }

  // gfair-parallel-apply-begin — the prepare fan-out. Only per-job /
  // per-server state of the slice's own server may be touched here; every
  // order-sensitive or global concern (running-list edits, timer
  // arms/disarms, the acct_ accumulators, callbacks, RNG) belongs to the
  // serial commit pass. gfair_lint's parallel-region-write rule enforces
  // the denylist over this region.
  // Parallel prepare: per-job and per-server state only. Slices target
  // pairwise-distinct servers (caller contract), so two chunks never touch
  // the same job, segment slot, or server occupancy.
  pool.ParallelFor(num_slices, [&](size_t begin, size_t end) {
    for (size_t s = begin; s < end; ++s) {
      PreparedOp* prepared = prepared_scratch_.data() + offsets[s];
      SimDuration overlap_allowance = 0;
      for (size_t i = 0; i < slices[s].count; ++i) {
        const ScheduleOp& op = slices[s].ops[i];
        if (op.resume) {
          prepared[i] = PrepareResume(op.job, overlap_allowance);
        } else {
          prepared[i] = PrepareSuspend(op.job);
          if (config_.overlap_warmup) {
            overlap_allowance = std::max(
                overlap_allowance, model_costs_[jobs_.Get(op.job).model.value()].suspend);
          }
        }
      }
    }
  });
  // gfair-parallel-apply-end

  // Serial commit, in op order: exactly the sequence of running-list edits,
  // timer arms/disarms, counter bumps and accounting flushes the serial
  // ApplyDelta performs — same event ids, same ledger stream.
  for (size_t s = 0; s < num_slices; ++s) {
    const PreparedOp* prepared = prepared_scratch_.data() + offsets[s];
    for (size_t i = 0; i < slices[s].count; ++i) {
      CommitOp(slices[s].ops[i], prepared[i]);
    }
  }
}

// gfair-parallel-apply-begin — PrepareResume/PrepareSuspend bodies run
// concurrently across slices (same contract as the fan-out lambda above).
Executor::PreparedOp Executor::PrepareResume(JobId id, SimDuration overlap_allowance) {
  Job& job = jobs_.Get(id);
  GFAIR_CHECK_MSG(job.state == JobState::kSuspended, "Resume requires a suspended job");
  cluster::Server& server = cluster_.server(job.server);
  GFAIR_CHECK_MSG(server.up(), "Resume on a down server");
  GFAIR_CHECK_MSG(server.CanFit(job.gang_size), "Resume without free GPUs");
  server.Allocate(id, job.gang_size);

  const auto& profile = zoo_.Get(job.model);
  RunSegment seg;
  seg.start = sim_.Now();
  seg.warmup = model_costs_[job.model.value()].resume;
  SimDuration hidden = 0;
  if (overlap_allowance > 0) {
    hidden = std::min(seg.warmup, overlap_allowance);
    seg.warmup -= hidden;
  }
  seg.gen = server.generation();
  seg.rate = profile.GangThroughput(seg.gen, job.gang_size);
  GFAIR_CHECK(seg.rate > 0.0);

  const double remaining = job.remaining_minibatches();
  GFAIR_CHECK(remaining > 0.0);
  const SimDuration work_time =
      static_cast<SimDuration>(std::ceil(remaining / seg.rate * kSecond));

  seg.active = true;  // running_pos is assigned at commit
  segments_[id.value()] = seg;
  job.state = JobState::kRunning;
  job.num_resumes += 1;
  job.overhead_ms += seg.warmup;

  PreparedOp out;
  out.finish_at = seg.start + seg.warmup + work_time;
  out.overlap_hidden = hidden;
  return out;
}

Executor::PreparedOp Executor::PrepareSuspend(JobId id) {
  Job& job = jobs_.Get(id);
  GFAIR_CHECK_MSG(job.state == JobState::kRunning, "Suspend requires a running job");
  RunSegment& seg = segments_[id.value()];
  GFAIR_CHECK_MSG(seg.active, "job has no active run segment");
  const SimTime now = sim_.Now();
  const SimDuration elapsed = now - seg.start;

  if (elapsed > 0) {
    job.completed_minibatches = std::min(
        job.total_minibatches, job.completed_minibatches + SegmentProgress(seg, elapsed));
    job.gpu_ms_by_gen[cluster::GenerationIndex(seg.gen)] +=
        static_cast<double>(elapsed) * job.gang_size;
  }
  cluster_.server(job.server).Release(job.id);
  // seg.active flips at commit, together with the running-list edit it guards.

  job.state = JobState::kSuspended;
  job.num_suspends += 1;
  job.overhead_ms += model_costs_[job.model.value()].suspend;
  job.checkpointed_minibatches = job.completed_minibatches;

  PreparedOp out;
  out.user = job.user;
  out.gen = seg.gen;
  out.acct_start = seg.start;
  out.gpus = job.gang_size;
  out.flush_accounting = elapsed > 0;
  return out;
}
// gfair-parallel-apply-end

void Executor::CommitOp(const ScheduleOp& op, const PreparedOp& prepared) {
  RunSegment& seg = segments_[op.job.value()];
  if (op.resume) {
    seg.running_pos = static_cast<uint32_t>(running_list_.size());
    running_list_.push_back(op.job);
    sim_.ArmTimerAt(FinishTimerFor(op.job), prepared.finish_at);
    acct_.AddWarmupBubble(seg.warmup, common::ReduceToken{});
    acct_.AddOverlapSaved(prepared.overlap_hidden, common::ReduceToken{});
  } else {
    sim_.DisarmTimer(finish_timer_[op.job.value()]);
    if (prepared.flush_accounting && on_gpu_time_) {
      on_gpu_time_(prepared.user, prepared.gen, prepared.acct_start, sim_.Now(),
                   prepared.gpus);
    }
    const JobId moved = running_list_.back();
    running_list_[seg.running_pos] = moved;
    segments_[moved.value()].running_pos = seg.running_pos;
    running_list_.pop_back();
    seg.active = false;
  }
}

void Executor::InjectCrash(JobId id) {
  Job& job = jobs_.Get(id);
  GFAIR_CHECK_MSG(job.state == JobState::kRunning || job.state == JobState::kSuspended,
                  "InjectCrash requires a running or suspended job");
  if (job.state == JobState::kRunning) {
    // Close the segment normally (GPU time since the checkpoint was really
    // burned and stays charged), then roll progress back.
    CloseSegment(job, /*cancel_finish_event=*/true);
    job.state = JobState::kSuspended;
  }
  const double lost = job.completed_minibatches - job.checkpointed_minibatches;
  GFAIR_CHECK(lost >= -1e-9);
  job.completed_minibatches = job.checkpointed_minibatches;
  job.num_crashes += 1;
  GFAIR_DLOG << "crash: job " << id << " lost " << lost << " mini-batches";
}

void Executor::OnFinishEvent(JobId id) {
  Job& job = jobs_.Get(id);
  GFAIR_CHECK(job.state == JobState::kRunning);
  CloseSegment(job, /*cancel_finish_event=*/false);
  // Guard against floating-point shortfall: the event fires at ceil() time.
  job.completed_minibatches = job.total_minibatches;
  job.state = JobState::kFinished;
  job.finish_time = sim_.Now();
  job.server = ServerId::Invalid();
  GFAIR_DLOG << "job " << id << " finished at " << FormatDuration(sim_.Now());
  if (on_finished_) {
    on_finished_(id);
  }
}

void Executor::Migrate(JobId id, ServerId dest) {
  DoMigrate(id, dest, /*transfer_fraction=*/1.0);
}

void Executor::MigrateTail(JobId id, ServerId dest) {
  GFAIR_CHECK_MSG(config_.precopy, "MigrateTail without precopy enabled");
  DoMigrate(id, dest, config_.precopy_dirty_fraction);
}

void Executor::DoMigrate(JobId id, ServerId dest, double transfer_fraction) {
  Job& job = jobs_.Get(id);
  GFAIR_CHECK_MSG(job.state == JobState::kSuspended,
                  "Migrate requires a suspended job (suspend first)");
  GFAIR_CHECK(dest.valid() && dest != job.server);
  const cluster::Server& target = cluster_.server(dest);
  GFAIR_CHECK_MSG(target.up(), "Migrate to a down server");
  GFAIR_CHECK_MSG(job.gang_size <= target.num_gpus(), "gang cannot fit on destination");
  GFAIR_CHECK_MSG(zoo_.Get(job.model).FitsGeneration(target.generation()),
                  "model does not fit destination generation's GPU memory");
  GFAIR_CHECK(transfer_fraction >= 0.0 && transfer_fraction <= 1.0);

  job.state = JobState::kMigrating;
  // Concurrent checkpoint transfers share the migration network: stretch the
  // transfer by the contention factor for each migration already in flight.
  const double stretch =
      1.0 + config_.migrate_contention * static_cast<double>(migrations_in_flight_);
  const double wire_gb = CompressedGb(job.model) * transfer_fraction;
  const double compress_cpu_s = config_.compress_seconds_per_gb *
                                zoo_.Get(job.model).checkpoint_gb * transfer_fraction;
  const SimDuration fixed = SuspendLatency(job.model) + ResumeLatency(job.model);
  const SimDuration transfer = TransferTime(wire_gb, compress_cpu_s);
  const SimDuration latency =
      fixed + static_cast<SimDuration>(static_cast<double>(transfer) * stretch);
  job.overhead_ms += latency;
  job.num_migrations += 1;
  job.checkpointed_minibatches = job.completed_minibatches;
  migrations_in_flight_ += 1;
  acct_.AddTransfer(wire_gb, common::ReduceToken{});
  acct_.AddBubble(latency, common::ReduceToken{});
  sim_.After(latency, [this, id, dest]() { FinishMigration(id, dest); });
}

void Executor::StartPreCopy(JobId id, ServerId dest) {
  GFAIR_CHECK_MSG(config_.precopy, "StartPreCopy without precopy enabled");
  Job& job = jobs_.Get(id);
  GFAIR_CHECK_MSG(job.state == JobState::kRunning || job.state == JobState::kSuspended,
                  "StartPreCopy requires a resident job");
  GFAIR_CHECK(dest.valid() && dest != job.server);
  const cluster::Server& target = cluster_.server(dest);
  GFAIR_CHECK_MSG(target.up(), "StartPreCopy to a down server");
  GFAIR_CHECK_MSG(job.gang_size <= target.num_gpus(), "gang cannot fit on destination");
  GFAIR_CHECK_MSG(zoo_.Get(job.model).FitsGeneration(target.generation()),
                  "model does not fit destination generation's GPU memory");

  // The bulk ships the whole compressed checkpoint while the job keeps its
  // source state (running or suspended — it stays schedulable either way, so
  // none of this is bubble time and no overhead is charged to the job).
  const double stretch =
      1.0 + config_.migrate_contention * static_cast<double>(migrations_in_flight_);
  const double wire_gb = CompressedGb(job.model);
  const double compress_cpu_s =
      config_.compress_seconds_per_gb * zoo_.Get(job.model).checkpoint_gb;
  const SimDuration transfer = TransferTime(wire_gb, compress_cpu_s);
  const SimDuration bulk =
      static_cast<SimDuration>(static_cast<double>(transfer) * stretch);
  migrations_in_flight_ += 1;
  acct_.AddTransfer(wire_gb, common::ReduceToken{});
  acct_.CountPrecopyStarted(common::ReduceToken{});
  pending_precopies_.push_back(PendingPrecopy{id, job.server, dest});
  const ServerId source = job.server;
  sim_.After(bulk, [this, id, source, dest]() { PrecopyCutover(id, source, dest); });
}

void Executor::PrecopyCutover(JobId id, ServerId source, ServerId dest) {
  migrations_in_flight_ -= 1;
  GFAIR_CHECK(migrations_in_flight_ >= 0);
  for (size_t i = 0; i < pending_precopies_.size(); ++i) {
    const PendingPrecopy& p = pending_precopies_[i];
    if (p.job == id && p.source == source && p.dest == dest) {
      pending_precopies_[i] = pending_precopies_.back();
      pending_precopies_.pop_back();
      break;
    }
  }

  // The world may have moved on during the bulk transfer. A job that
  // finished, was orphaned, or otherwise left its source makes the shipped
  // checkpoint useless — the transfer is abandoned (wasted bytes, but no
  // failure: the job never stopped running anywhere).
  Job& job = jobs_.Get(id);
  const bool still_at_source =
      (job.state == JobState::kRunning || job.state == JobState::kSuspended) &&
      job.server == source;
  if (!still_at_source) {
    acct_.CountPrecopyAborted(common::ReduceToken{});
    GFAIR_DLOG << "pre-copy of job " << id << " abandoned (job left server "
               << source << ")";
    return;
  }
  if (!cluster_.server(dest).up()) {
    // The destination died mid-flight. Unlike a stop-and-copy landing
    // failure this is cheap — the job kept running at its source — but it
    // is still an attributed failure for E10/E14.
    acct_.CountFailureDestDown(common::ReduceToken{});
    job.num_migration_failures += 1;
    acct_.CountPrecopyAborted(common::ReduceToken{});
    GFAIR_DLOG << "pre-copy of job " << id << " to server " << dest
               << " failed: destination down";
    if (on_migration_failed_) {
      on_migration_failed_(id, dest);
    }
    return;
  }
  // Ask the scheduler to cut over: suspend/detach the job and start the
  // stop-and-copy tail (MigrateTail). It may decline — e.g. it dropped its
  // pre-copy claim when the job was orphaned and re-placed back onto the
  // same server — which abandons the transfer like any other stale bulk.
  const bool proceeded = on_precopy_cutover_ && on_precopy_cutover_(id, dest);
  if (!proceeded) {
    acct_.CountPrecopyAborted(common::ReduceToken{});
  }
}

void Executor::FinishMigration(JobId id, ServerId dest) {
  Job& moved = jobs_.Get(id);
  GFAIR_CHECK(moved.state == JobState::kMigrating);
  migrations_in_flight_ -= 1;
  GFAIR_CHECK(migrations_in_flight_ >= 0);

  // A transfer can fail at landing: the destination died while the
  // checkpoint was in flight, or the transfer itself flaked. The prob-zero
  // short-circuit also skips the RNG draw, keeping failure-free runs
  // bit-identical to the pre-fault-plane executor. Given prob > 0 the flake
  // draw stays unconditional — even when the destination is down — so the
  // fault stream does not depend on cluster state; a down destination takes
  // attribution priority over a simultaneous flake.
  const bool dest_down = !cluster_.server(dest).up();
  const bool flaked = config_.migrate_failure_prob > 0.0 &&
                      fault_rng_.Bernoulli(config_.migrate_failure_prob);
  if (!dest_down && !flaked) {
    moved.server = dest;
    moved.state = JobState::kSuspended;
    if (on_migrated_) {
      on_migrated_(id);
    }
    return;
  }

  moved.num_migration_failures += 1;
  if (dest_down) {
    acct_.CountFailureDestDown(common::ReduceToken{});
  } else {
    acct_.CountFailureFlake(common::ReduceToken{});
  }
  // The checkpoint is durable, so the job falls back to its source — unless
  // the source died too while the transfer was in flight, which orphans it.
  if (moved.server.valid() && cluster_.server(moved.server).up()) {
    moved.state = JobState::kSuspended;
    GFAIR_DLOG << "migration of job " << id << " to server " << dest
               << " failed; back on server " << moved.server;
    if (on_migration_failed_) {
      on_migration_failed_(id, dest);
    }
  } else {
    GFAIR_DLOG << "migration of job " << id << " to server " << dest
               << " failed with the source down too; orphaned";
    moved.state = JobState::kSuspended;  // OrphanJob's expected entry state
    OrphanJob(moved);
    if (on_orphaned_) {
      on_orphaned_(id);
    }
  }
}

void Executor::OrphanJob(Job& job) {
  const bool was_running = job.state == JobState::kRunning;
  if (was_running) {
    // Close the segment normally: the GPU time burned since the last
    // checkpoint was really consumed and stays charged.
    CloseSegment(job, /*cancel_finish_event=*/true);
    // The process died with the node — that is a crash, on top of the
    // orphaning.
    job.num_crashes += 1;
  }
  job.completed_minibatches = job.checkpointed_minibatches;
  job.state = JobState::kQueued;
  job.server = ServerId::Invalid();
  job.num_orphanings += 1;
  acct_.CountOrphaned(common::ReduceToken{});
}

void Executor::FailServer(ServerId id) {
  cluster::Server& server = cluster_.server(id);
  GFAIR_CHECK_MSG(server.up(), "FailServer on a server that is already down");
  cluster_.SetServerUp(id, false);
  acct_.CountServerFailure(common::ReduceToken{});
  GFAIR_DLOG << "server " << id << " failed at " << FormatDuration(sim_.Now());

  // Evacuate executor state for every resident job BEFORE any scheduler
  // callback runs: the callbacks then observe a consistent world (server
  // down, victims queued). Jobs mid-migration keep flying — their checkpoint
  // is already in durable storage (see FinishMigration for inbound ones).
  // Pending pre-copy bulks out of this server keep flying too: the cutover
  // re-validates that the job is still at its source, which an orphaned
  // victim no longer is, so the stale transfer is abandoned there.
  std::vector<JobId> victims;
  for (Job* job : jobs_.All()) {
    if (job->server == id && (job->state == JobState::kRunning ||
                              job->state == JobState::kSuspended)) {
      OrphanJob(*job);
      victims.push_back(job->id);
    }
  }
  GFAIR_CHECK_MSG(server.num_busy() == 0, "down server still holds GPUs");

  if (on_server_down_) {
    on_server_down_(id);
  }
  for (JobId victim : victims) {
    if (on_orphaned_) {
      on_orphaned_(victim);
    }
  }
}

void Executor::RecoverServer(ServerId id) {
  GFAIR_CHECK_MSG(!cluster_.server(id).up(), "RecoverServer on an up server");
  cluster_.SetServerUp(id, true);
  acct_.CountServerRecovery(common::ReduceToken{});
  GFAIR_DLOG << "server " << id << " recovered at " << FormatDuration(sim_.Now());
  if (on_server_up_) {
    on_server_up_(id);
  }
}

double Executor::SampleObservedRate(JobId id) {
  GFAIR_CHECK_MSG(IsRunning(id), "SampleObservedRate requires a running job");
  const double noise = std::max(0.1, rng_.Normal(1.0, config_.rate_noise));
  return segments_[id.value()].rate * noise;
}

void Executor::SyncAll() {
  // Snapshot first: an accounting callback could in principle suspend a job
  // and mutate running_list_ under the iteration.
  sync_scratch_.assign(running_list_.begin(), running_list_.end());
  for (size_t i = 0; i < sync_scratch_.size(); ++i) {
    if (i + 1 < sync_scratch_.size()) {
      jobs_.Prefetch(sync_scratch_[i + 1]);
      PrefetchJobState(sync_scratch_[i + 1]);
    }
    SyncProgress(sync_scratch_[i]);
  }
}

void Executor::SyncProgress(JobId id) {
  if (!IsRunning(id)) {
    return;
  }
  Job& job = jobs_.Get(id);
  RunSegment& seg = segments_[id.value()];
  const SimTime now = sim_.Now();
  const SimDuration elapsed = now - seg.start;
  if (elapsed <= 0) {
    return;
  }
  const double progressed = SegmentProgress(seg, elapsed);
  job.completed_minibatches =
      std::min(job.total_minibatches, job.completed_minibatches + progressed);
  job.gpu_ms_by_gen[cluster::GenerationIndex(seg.gen)] +=
      static_cast<double>(elapsed) * job.gang_size;
  if (on_gpu_time_) {
    on_gpu_time_(job.user, seg.gen, seg.start, now, job.gang_size);
  }
  // Restart the segment "now", carrying any unfinished warm-up.
  seg.warmup = std::max<SimDuration>(0, seg.warmup - elapsed);
  seg.start = now;
}

}  // namespace gfair::exec
