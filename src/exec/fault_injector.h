// FaultInjector — drives server down/up events against the Executor.
//
// Two modes, freely mixable:
//  * Scripted: FailAt/RecoverAt schedule exact transitions — what tests use
//    to pin failure semantics at known instants.
//  * Random churn: Start() gives every server an independent
//    fail-after-Exp(MTBF) / recover-after-Exp(MTTR) renewal cycle — what the
//    availability experiment (E14) uses to model node-level faults on the
//    paper's testbed.
//
// The injector only *decides* when servers fail; the mechanics (evacuating
// jobs, firing scheduler callbacks) live in Executor::FailServer /
// RecoverServer. It also records the cluster's up-GPU capacity as a
// TimeSeries after every transition, so experiments can compare delivered
// GPU time against the time-averaged surviving capacity.
#ifndef GFAIR_EXEC_FAULT_INJECTOR_H_
#define GFAIR_EXEC_FAULT_INJECTOR_H_

#include <cstdint>

#include "cluster/cluster.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "exec/executor.h"
#include "simkit/simulator.h"
#include "simkit/timeseries.h"

namespace gfair::exec {

struct FaultInjectorConfig {
  // Mean time between failures of ONE server (exponential). 0 disables
  // random churn; scripted FailAt/RecoverAt still work.
  SimDuration server_mtbf = 0;
  // Mean time to repair a failed server (exponential).
  SimDuration server_mttr = Minutes(20);
  // Seed for the fault process (independent of workload/executor streams).
  uint64_t seed = 2020;
  // Never take down the last up server of a generation pool: a gang that
  // only fits that generation would otherwise be unplaceable for the whole
  // repair window, which models operator behavior (staggered maintenance),
  // not a fault process worth studying. A suppressed failure is re-armed
  // with a fresh MTBF draw.
  bool spare_last_in_pool = true;
};

class FaultInjector {
 public:
  FaultInjector(simkit::Simulator& sim, cluster::Cluster& cluster, Executor& exec,
                FaultInjectorConfig config);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Scripted transitions at absolute times. A scripted failure on an
  // already-down server (or recovery of an up one) is skipped with a log
  // line rather than CHECK-failing — scripts and churn may race.
  void FailAt(SimTime when, ServerId id);
  void RecoverAt(SimTime when, ServerId id);

  // Arms the random churn cycle on every server. Requires server_mtbf > 0.
  void Start();
  // Stops injecting new failures. Servers already down still recover —
  // draining to a fully-up cluster, which is what end-of-run assertions
  // ("every job eventually finishes") need.
  void Stop();

  // Piecewise-constant count of GPUs on up servers over time (first sample
  // at construction). AverageOver on this divided by total_gpus() is the
  // surviving-capacity ratio for a window.
  const simkit::TimeSeries& up_gpu_series() const { return up_gpus_; }

  int64_t failures_injected() const { return failures_injected_; }
  int64_t recoveries_injected() const { return recoveries_injected_; }
  int64_t failures_suppressed() const { return failures_suppressed_; }

 private:
  // True when taking `id` down would leave its generation pool without any
  // up server.
  bool WouldEmptyPool(ServerId id) const;

  void Fail(ServerId id, bool scripted);
  void Recover(ServerId id, bool scripted);
  void ArmFailure(ServerId id);
  void ArmRecovery(ServerId id);

  simkit::Simulator& sim_;
  cluster::Cluster& cluster_;
  Executor& exec_;
  FaultInjectorConfig config_;
  Rng rng_;
  simkit::TimeSeries up_gpus_;
  bool churning_ = false;

  int64_t failures_injected_ = 0;
  int64_t recoveries_injected_ = 0;
  int64_t failures_suppressed_ = 0;
};

}  // namespace gfair::exec

#endif  // GFAIR_EXEC_FAULT_INJECTOR_H_
