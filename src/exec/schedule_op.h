// ScheduleOp — one verb of a batched schedule change.
//
// The quantum pipeline (sched::PlanDiffer) compiles a SchedulePlan down to a
// flat list of these; Executor::ApplyDelta consumes the list in order. Kept
// in exec (below sched in the layering) so both the differ that produces
// deltas and the executor that applies them can name the type.
#ifndef GFAIR_EXEC_SCHEDULE_OP_H_
#define GFAIR_EXEC_SCHEDULE_OP_H_

#include "common/types.h"

namespace gfair::exec {

struct ScheduleOp {
  JobId job;
  // Suspends: the server the job runs on. Resumes: the server whose GPUs it
  // takes (its home). Informational for the executor (which tracks homes
  // itself) but load-bearing for decision recording and delta validation.
  ServerId server;
  bool resume;
};

}  // namespace gfair::exec

#endif  // GFAIR_EXEC_SCHEDULE_OP_H_
