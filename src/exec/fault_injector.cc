#include "exec/fault_injector.h"

#include "common/check.h"
#include "common/log.h"

namespace gfair::exec {

FaultInjector::FaultInjector(simkit::Simulator& sim, cluster::Cluster& cluster,
                             Executor& exec, FaultInjectorConfig config)
    : sim_(sim), cluster_(cluster), exec_(exec), config_(config), rng_(config.seed) {
  GFAIR_CHECK(config_.server_mttr > 0);
  up_gpus_.Record(sim_.Now(), cluster_.up_gpus());
}

bool FaultInjector::WouldEmptyPool(ServerId id) const {
  const auto gen = cluster_.server(id).generation();
  return cluster_.up_gpus(gen) <= cluster_.server(id).num_gpus();
}

void FaultInjector::Fail(ServerId id, bool scripted) {
  if (!cluster_.server(id).up()) {
    GFAIR_DLOG << "fault injector: server " << id << " already down; skipping";
    return;
  }
  if (config_.spare_last_in_pool && WouldEmptyPool(id)) {
    failures_suppressed_ += 1;
    GFAIR_DLOG << "fault injector: sparing server " << id
               << " (last up server of its pool)";
    if (!scripted && churning_) {
      ArmFailure(id);  // re-arm with a fresh draw; the pool may refill
    }
    return;
  }
  exec_.FailServer(id);
  failures_injected_ += 1;
  up_gpus_.Record(sim_.Now(), cluster_.up_gpus());
  if (!scripted && churning_) {
    ArmRecovery(id);
  }
}

void FaultInjector::Recover(ServerId id, bool scripted) {
  if (cluster_.server(id).up()) {
    GFAIR_DLOG << "fault injector: server " << id << " already up; skipping";
    return;
  }
  exec_.RecoverServer(id);
  recoveries_injected_ += 1;
  up_gpus_.Record(sim_.Now(), cluster_.up_gpus());
  if (!scripted && churning_) {
    ArmFailure(id);
  }
}

void FaultInjector::FailAt(SimTime when, ServerId id) {
  sim_.At(when, [this, id]() { Fail(id, /*scripted=*/true); });
}

void FaultInjector::RecoverAt(SimTime when, ServerId id) {
  sim_.At(when, [this, id]() { Recover(id, /*scripted=*/true); });
}

void FaultInjector::ArmFailure(ServerId id) {
  const SimDuration wait =
      Seconds(rng_.Exponential(ToSeconds(config_.server_mtbf)));
  sim_.After(wait, [this, id]() {
    if (churning_) {
      Fail(id, /*scripted=*/false);
    }
  });
}

void FaultInjector::ArmRecovery(ServerId id) {
  const SimDuration wait =
      Seconds(rng_.Exponential(ToSeconds(config_.server_mttr)));
  // Recovery fires even after Stop(): a stopped injector drains the cluster
  // back to fully up instead of stranding down servers.
  sim_.After(wait, [this, id]() {
    Recover(id, /*scripted=*/false);
    // Recover() only re-arms the failure cycle while churning; after Stop()
    // the chain ends here.
  });
}

void FaultInjector::Start() {
  GFAIR_CHECK_MSG(config_.server_mtbf > 0, "Start() needs server_mtbf > 0");
  GFAIR_CHECK_MSG(!churning_, "fault injector already started");
  churning_ = true;
  for (const auto& server : cluster_.servers()) {
    ArmFailure(server.id());
  }
}

void FaultInjector::Stop() { churning_ = false; }

}  // namespace gfair::exec
