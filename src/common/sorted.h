// Sorted snapshots of unordered containers — the sanctioned route for
// iterating a hash container on a decision path.
//
// std::unordered_map / unordered_set iteration order is a function of the
// hash seed, bucket count, and insertion history — it varies across stdlibs,
// platforms, and even runs. Any scheduler decision derived from a loop over
// a hash container (which job to probe, which user rebalances first, the
// summation order of a float accumulator) is therefore nondeterministic: the
// #1 reproducibility hazard for the experiment suite. gfair_lint bans raw
// range-for over unordered containers in src/sched/ decision paths; these
// helpers are the escape hatch it recognizes.
//
// The cost is one O(n log n) snapshot per loop, on paths that run per trade
// epoch / ticket refresh (minutes of simulated time), not per quantum — the
// per-quantum hot paths iterate flat vectors already.
#ifndef GFAIR_COMMON_SORTED_H_
#define GFAIR_COMMON_SORTED_H_

#include <algorithm>
#include <type_traits>
#include <utility>
#include <vector>

namespace gfair::common {

// Keys of an unordered set/map, ascending. Requires operator< on the key
// (StrongId types qualify).
template <typename Container>
std::vector<typename Container::key_type> SortedKeys(const Container& container) {
  std::vector<typename Container::key_type> keys;
  keys.reserve(container.size());
  for (const auto& item : container) {  // gfair-lint: allow(unordered-iter) -- this IS the order-erasing snapshot; keys are sorted below
    if constexpr (std::is_same_v<typename Container::key_type,
                                 typename Container::value_type>) {
      keys.push_back(item);  // set: the element is the key
    } else {
      keys.push_back(item.first);  // map: take the key
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

// (key, mapped) pairs of an unordered map, ascending by key. Values are
// copied — intended for the small maps on trade/refresh paths.
template <typename Map>
std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>>
SortedItems(const Map& map) {
  std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>> items;
  items.reserve(map.size());
  for (const auto& [key, value] : map) {  // gfair-lint: allow(unordered-iter) -- this IS the order-erasing snapshot; items are sorted below
    items.emplace_back(key, value);
  }
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return items;
}

}  // namespace gfair::common

#endif  // GFAIR_COMMON_SORTED_H_
