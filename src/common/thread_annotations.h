// Clang Thread Safety Analysis macros (GFAIR_GUARDED_BY, GFAIR_REQUIRES,
// ...). Under clang the `-Wthread-safety` pass proves lock discipline at
// compile time from these annotations; under any other compiler they expand
// to nothing, so the annotated code stays portable. See
// docs/STATIC_ANALYSIS.md "Concurrency contracts" for the full design and
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html for semantics.
//
// Annotate with the GFAIR_* spellings only — bare __attribute__((...)) use
// would silently diverge between compilers.
#ifndef GFAIR_COMMON_THREAD_ANNOTATIONS_H_
#define GFAIR_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define GFAIR_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define GFAIR_THREAD_ANNOTATION_ATTRIBUTE__(x)
#endif

// A type that is a lock (common::Mutex). The string names the capability in
// diagnostics.
#define GFAIR_CAPABILITY(x) \
  GFAIR_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

// An RAII type whose lifetime equals a critical section (common::MutexLock).
#define GFAIR_SCOPED_CAPABILITY \
  GFAIR_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

// Data member readable/writable only while the named mutex is held.
#define GFAIR_GUARDED_BY(x) \
  GFAIR_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

// Pointer member whose *pointee* is guarded by the named mutex.
#define GFAIR_PT_GUARDED_BY(x) \
  GFAIR_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

// Function that may only be called with the listed mutexes already held.
#define GFAIR_REQUIRES(...) \
  GFAIR_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

// Function that acquires / releases the listed mutexes (empty list = `this`,
// for the members of a capability type itself).
#define GFAIR_ACQUIRE(...) \
  GFAIR_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define GFAIR_RELEASE(...) \
  GFAIR_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define GFAIR_TRY_ACQUIRE(...) \
  GFAIR_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

// Function that must be called with the listed mutexes NOT held (deadlock
// documentation for self-locking public APIs).
#define GFAIR_EXCLUDES(...) \
  GFAIR_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

// Runtime assertion that the capability is held (for code the analysis
// cannot follow, e.g. after an external callback contract).
#define GFAIR_ASSERT_CAPABILITY(x) \
  GFAIR_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

// Function returning a reference to the named mutex.
#define GFAIR_RETURN_CAPABILITY(x) \
  GFAIR_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

// Escape hatch: function excluded from analysis entirely. Allowed only
// inside src/common/ (the wrapper internals); anywhere else it defeats the
// contract and review must reject it.
#define GFAIR_NO_THREAD_SAFETY_ANALYSIS \
  GFAIR_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // GFAIR_COMMON_THREAD_ANNOTATIONS_H_
