// Deterministic pseudo-random number generation.
//
// Every stochastic component (workload generator, profiler noise, tie
// breaking) draws from an explicitly seeded Rng so that experiments are
// reproducible bit-for-bit. The generator is xoshiro256**, seeded through
// SplitMix64 as its authors recommend.
#ifndef GFAIR_COMMON_RNG_H_
#define GFAIR_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace gfair {

// SplitMix64 — used for seeding and for cheap stateless hashing.
constexpr uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// xoshiro256** 1.0 with distribution helpers.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) {
      word = SplitMix64(sm);
    }
  }

  // Raw 64 random bits.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Uniform integer in [lo, hi] inclusive. Uses rejection to avoid modulo bias.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    GFAIR_CHECK(lo <= hi);
    const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    if (range == 0) {  // full 64-bit range
      return static_cast<int64_t>(Next());
    }
    const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
    uint64_t draw;
    do {
      draw = Next();
    } while (draw >= limit);
    return lo + static_cast<int64_t>(draw % range);
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

  // Exponential with the given mean (not rate).
  double Exponential(double mean);

  // Standard normal via Box–Muller (cached second variate).
  double Normal(double mean, double stddev);

  // Log-normal parameterized by the underlying normal's mu/sigma.
  double LogNormal(double mu, double sigma);

  // Index in [0, weights.size()) drawn proportional to weights.
  size_t WeightedIndex(const std::vector<double>& weights);

  // Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  // Derives an independent child generator (for per-component streams).
  Rng Fork() { return Rng(Next()); }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace gfair

#endif  // GFAIR_COMMON_RNG_H_
