// Minimal leveled logger.
//
// The simulator is single-threaded by design, so the logger keeps no locks.
// Severity is filtered globally; scheduler components log at Debug for
// per-quantum decisions and Info for structural events (trades, migrations).
#ifndef GFAIR_COMMON_LOG_H_
#define GFAIR_COMMON_LOG_H_

#include <sstream>
#include <string>

namespace gfair {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

// Global minimum severity; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

void EmitLog(LogLevel level, const std::string& message);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { EmitLog(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace gfair

#define GFAIR_LOG(level)                                        \
  if (static_cast<int>(::gfair::LogLevel::level) <              \
      static_cast<int>(::gfair::GetLogLevel())) {               \
  } else                                                        \
    ::gfair::internal::LogMessage(::gfair::LogLevel::level).stream()

#define GFAIR_DLOG GFAIR_LOG(kDebug)
#define GFAIR_ILOG GFAIR_LOG(kInfo)
#define GFAIR_WLOG GFAIR_LOG(kWarning)
#define GFAIR_ELOG GFAIR_LOG(kError)

#endif  // GFAIR_COMMON_LOG_H_
