#include "common/flags.h"

#include <cctype>
#include <cstdlib>

#include "common/check.h"

namespace gfair {

namespace {

std::string Trim(const std::string& text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool LooksLikeFlag(const std::string& arg) {
  return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}

}  // namespace

std::vector<std::string> SplitAndTrim(const std::string& text, char delimiter) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(delimiter, start);
    if (pos == std::string::npos) {
      pieces.push_back(Trim(text.substr(start)));
      break;
    }
    pieces.push_back(Trim(text.substr(start, pos - start)));
    start = pos + 1;
  }
  return pieces;
}

ArgParser::ArgParser(int argc, const char* const argv[]) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!LooksLikeFlag(arg)) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_.emplace(body.substr(0, eq), body.substr(eq + 1));
      continue;
    }
    // `--name value` unless the next token is another flag (then boolean).
    if (i + 1 < argc && !LooksLikeFlag(argv[i + 1])) {
      values_.emplace(body, argv[i + 1]);
      ++i;
    } else {
      values_.emplace(body, "");
    }
  }
}

bool ArgParser::Has(const std::string& name) const {
  consumed_[name] = true;
  return values_.count(name) > 0;
}

std::string ArgParser::GetString(const std::string& name,
                                 const std::string& fallback) const {
  consumed_[name] = true;
  auto it = values_.find(name);
  return it != values_.end() ? it->second : fallback;
}

bool ArgParser::TryGetDouble(const std::string& name, double* out) const {
  consumed_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) {
    return false;
  }
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    return false;
  }
  *out = value;
  return true;
}

bool ArgParser::TryGetInt(const std::string& name, int64_t* out) const {
  consumed_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) {
    return false;
  }
  char* end = nullptr;
  const long long value = std::strtoll(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return false;
  }
  *out = value;
  return true;
}

double ArgParser::GetDouble(const std::string& name, double fallback) const {
  if (!Has(name)) {
    return fallback;
  }
  double value = 0.0;
  GFAIR_CHECK_MSG(TryGetDouble(name, &value), "flag is not a number");
  return value;
}

int64_t ArgParser::GetInt(const std::string& name, int64_t fallback) const {
  if (!Has(name)) {
    return fallback;
  }
  int64_t value = 0;
  GFAIR_CHECK_MSG(TryGetInt(name, &value), "flag is not an integer");
  return value;
}

bool ArgParser::GetBool(const std::string& name, bool fallback) const {
  if (!Has(name)) {
    return fallback;
  }
  const std::string value = GetString(name);
  return value.empty() || value == "1" || value == "true" || value == "yes";
}

std::vector<std::string> ArgParser::GetAll(const std::string& name) const {
  consumed_[name] = true;
  std::vector<std::string> all;
  auto [begin, end] = values_.equal_range(name);
  for (auto it = begin; it != end; ++it) {
    all.push_back(it->second);
  }
  return all;
}

std::vector<std::string> ArgParser::UnconsumedFlags() const {
  std::vector<std::string> unconsumed;
  for (const auto& [name, value] : values_) {
    if (consumed_.find(name) == consumed_.end()) {
      if (unconsumed.empty() || unconsumed.back() != name) {
        unconsumed.push_back(name);
      }
    }
  }
  return unconsumed;
}

}  // namespace gfair
