// Phase-capability tokens for the tick's lock-free fork-join discipline.
//
// The sharded quantum tick has two phases with different access rights:
// the parallel fan-out (each worker may mutate only its own PlanShard) and
// the serial reduce (the single thread that merges shards, replays deferred
// profiler RNG draws, and commits global migration accounting). Mutexes and
// thread-safety annotations cannot express "this state is unlocked but only
// one phase may touch it" — these zero-size passkey tokens can:
//
//   * ShardToken  — minted per shard inside the plan fan-out; required by
//     PlanShard's mutating stage APIs. Holding one says "I am the worker
//     that owns this shard, in the fan-out phase".
//   * ReduceToken — constructible only at the tick's serial points;
//     required by the cross-shard merge (PlanShard::MergeInto), deferred
//     profiler-sample replay (TradeCoordinator::RecordSample) and the
//     executor's global MigrationAccounting mutators.
//
// Only the friend classes below can mint a token (private constructor), so
// "parallel code committed cross-shard state" is a compile error, not a
// review finding — proven by the WILL_FAIL negative-compile ctests in
// tests/CMakeLists.txt. Tokens are empty and passed by value: they exist
// only in the type system and cost nothing at runtime. This extends the
// PR-5 strong-type ethos from units to phases; see docs/STATIC_ANALYSIS.md
// "Concurrency contracts".
#ifndef GFAIR_COMMON_PHASE_TOKENS_H_
#define GFAIR_COMMON_PHASE_TOKENS_H_

namespace gfair::sched {
class GandivaFairScheduler;
}  // namespace gfair::sched

namespace gfair::exec {
class Executor;
}  // namespace gfair::exec

namespace gfair::common {

// Capability: "fan-out phase, owner of the shard this was granted for".
class ShardToken {
 public:
  ShardToken(const ShardToken&) = default;
  ShardToken& operator=(const ShardToken&) = delete;

 private:
  friend class ::gfair::sched::GandivaFairScheduler;
  constexpr ShardToken() = default;
};

// Capability: "serial phase of the tick" — the sharded tick's reduce step,
// or any point that is serial by construction (the fused serial tick, the
// executor's event handlers).
class ReduceToken {
 public:
  ReduceToken(const ReduceToken&) = default;
  ReduceToken& operator=(const ReduceToken&) = delete;

 private:
  friend class ::gfair::sched::GandivaFairScheduler;
  friend class ::gfair::exec::Executor;
  constexpr ReduceToken() = default;
};

}  // namespace gfair::common

#endif  // GFAIR_COMMON_PHASE_TOKENS_H_
