// Lightweight always-on invariant checks.
//
// GFAIR_CHECK is enabled in all build types: scheduler invariants guard
// fairness accounting, and silent corruption there is worse than an abort.
#ifndef GFAIR_COMMON_CHECK_H_
#define GFAIR_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace gfair::internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "GFAIR_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

}  // namespace gfair::internal

#define GFAIR_CHECK(expr)                                              \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::gfair::internal::CheckFailed(#expr, __FILE__, __LINE__, "");   \
    }                                                                  \
  } while (false)

#define GFAIR_CHECK_MSG(expr, msg)                                     \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::gfair::internal::CheckFailed(#expr, __FILE__, __LINE__, msg);  \
    }                                                                  \
  } while (false)

#endif  // GFAIR_COMMON_CHECK_H_
