// Lightweight always-on invariant checks.
//
// GFAIR_CHECK is enabled in all build types: scheduler invariants guard
// fairness accounting, and silent corruption there is worse than an abort.
#ifndef GFAIR_COMMON_CHECK_H_
#define GFAIR_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace gfair::internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "GFAIR_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

}  // namespace gfair::internal

#define GFAIR_CHECK(expr)                                              \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::gfair::internal::CheckFailed(#expr, __FILE__, __LINE__, "");   \
    }                                                                  \
  } while (false)

#define GFAIR_CHECK_MSG(expr, msg)                                     \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::gfair::internal::CheckFailed(#expr, __FILE__, __LINE__, msg);  \
    }                                                                  \
  } while (false)

// Debug-only invariant checks (compiled out under NDEBUG). Used where the
// check itself is too expensive for release builds — e.g. verifying an
// incrementally-maintained aggregate against a full recompute.
#ifndef NDEBUG
#define GFAIR_DCHECK(expr) GFAIR_CHECK(expr)
#define GFAIR_DCHECK_MSG(expr, msg) GFAIR_CHECK_MSG(expr, msg)
#else
#define GFAIR_DCHECK(expr) \
  do {                     \
  } while (false)
#define GFAIR_DCHECK_MSG(expr, msg) \
  do {                              \
  } while (false)
#endif

#endif  // GFAIR_COMMON_CHECK_H_
