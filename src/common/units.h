// Strong unit types for the fairness math.
//
// The scheduler's core claims (ticket-proportional GPU time, stride pass
// monotonicity, trade pricing via speedup ratios) are arithmetic over five
// distinct physical quantities that were all spelled `double`:
//
//   Tickets    — fair-share weight (fractional via splitting and trading)
//   Pass       — a job's stride-scheduler position in virtual time
//   Stride     — a pass increment (charged GPU-ms, per gang GPU, per ticket)
//   Speedup    — dimensionless throughput ratio between two GPU generations
//   PerGpuRate — profiled per-GPU throughput (mini-batches per second)
//   GpuSeconds — delivered GPU time (GPU-count x wall seconds)
//
// Each wrapper is a constexpr, trivially-copyable tag over the same double
// representation (zero ABI / codegen change) exposing only the physically
// meaningful operators: Pass + Stride -> Pass, Tickets / Tickets -> share
// ratio, Speedup minted only from a rate ratio. Cross-tag assignment,
// construction and comparison do not compile — proven by the static_assert
// harness in tests/common/units_test.cc and the WILL_FAIL negative-compile
// ctests under tests/lint/.
//
// Tickets alone converts implicitly from double: ticket counts are
// user-facing configuration (`users.Create("a", 2.0)`) and appear as
// literals throughout traces, benches and tests. The conversion is one-way —
// no unit type converts back to double except through an explicit `.raw()`,
// which the `unit-unwrap-outside-boundary` lint rule confines to
// serialization/display boundaries inside src/sched/.
#ifndef GFAIR_COMMON_UNITS_H_
#define GFAIR_COMMON_UNITS_H_

#include <cmath>
#include <limits>
#include <ostream>

namespace gfair {

// Fair-share tickets. Fractional tickets arise from splitting a user's
// tickets across jobs and from trading. Implicitly constructible from double
// (see header comment); never implicitly converts back.
class Tickets {
 public:
  constexpr Tickets() = default;
  constexpr Tickets(double count) : v_(count) {}  // NOLINT(google-explicit-constructor)

  constexpr double raw() const { return v_; }

  constexpr Tickets& operator+=(Tickets o) {
    v_ += o.v_;
    return *this;
  }
  constexpr Tickets& operator-=(Tickets o) {
    v_ -= o.v_;
    return *this;
  }
  friend constexpr Tickets operator+(Tickets a, Tickets b) { return Tickets(a.v_ + b.v_); }
  friend constexpr Tickets operator-(Tickets a, Tickets b) { return Tickets(a.v_ - b.v_); }
  friend constexpr Tickets operator-(Tickets t) { return Tickets(-t.v_); }
  // Scaling by a dimensionless factor (demand weighting, thresholds).
  friend constexpr Tickets operator*(Tickets t, double s) { return Tickets(t.v_ * s); }
  friend constexpr Tickets operator*(double s, Tickets t) { return Tickets(s * t.v_); }
  friend constexpr Tickets operator/(Tickets t, double s) { return Tickets(t.v_ / s); }
  // Share ratio: the only way two ticket quantities produce a bare double.
  friend constexpr double operator/(Tickets a, Tickets b) { return a.v_ / b.v_; }

  friend constexpr bool operator==(Tickets a, Tickets b) { return a.v_ == b.v_; }
  friend constexpr bool operator!=(Tickets a, Tickets b) { return a.v_ != b.v_; }
  friend constexpr bool operator<(Tickets a, Tickets b) { return a.v_ < b.v_; }
  friend constexpr bool operator>(Tickets a, Tickets b) { return a.v_ > b.v_; }
  friend constexpr bool operator<=(Tickets a, Tickets b) { return a.v_ <= b.v_; }
  friend constexpr bool operator>=(Tickets a, Tickets b) { return a.v_ >= b.v_; }

  friend constexpr Tickets Abs(Tickets t) { return Tickets(t.v_ < 0.0 ? -t.v_ : t.v_); }

  // The share-reweighting primitive: (a * b) / c evaluated in exactly that
  // order. Spelled as one named operation because a * (b / c) rounds
  // differently, and decision-path arithmetic must stay bit-stable across
  // refactors (the frozen-oracle equivalence suite compares decisions).
  friend constexpr Tickets MulDiv(Tickets a, Tickets b, Tickets c) {
    return Tickets(a.v_ * b.v_ / c.v_);
  }

  friend std::ostream& operator<<(std::ostream& os, Tickets t) { return os << t.v_; }

 private:
  double v_ = 0.0;
};

class Pass;

// A pass increment: charged GPU-milliseconds per gang GPU per ticket. Only
// a Pass can absorb one.
class Stride {
 public:
  constexpr Stride() = default;
  constexpr explicit Stride(double v) : v_(v) {}

  // The advance produced by charging `charged_ms` of GPU time to a gang of
  // `gang_size` GPUs holding `tickets` — the one place stride-scheduler
  // arithmetic crosses from (time, tickets) into pass space. Keeps the
  // historical evaluation order (ms * gang, then / tickets) bit-exactly.
  static constexpr Stride FromService(double charged_ms, double gang_size, Tickets tickets) {
    return Stride(charged_ms * gang_size / tickets.raw());
  }

  constexpr double raw() const { return v_; }

  friend constexpr bool operator==(Stride a, Stride b) { return a.v_ == b.v_; }
  friend constexpr bool operator!=(Stride a, Stride b) { return a.v_ != b.v_; }
  friend constexpr bool operator<(Stride a, Stride b) { return a.v_ < b.v_; }
  friend constexpr bool operator>(Stride a, Stride b) { return a.v_ > b.v_; }
  friend constexpr bool operator<=(Stride a, Stride b) { return a.v_ <= b.v_; }
  friend constexpr bool operator>=(Stride a, Stride b) { return a.v_ >= b.v_; }

  friend std::ostream& operator<<(std::ostream& os, Stride s) { return os << s.v_; }

 private:
  double v_ = 0.0;
};

// A job's stride-scheduler position in virtual time. Advances only by
// Stride increments; ordered against other passes (and nothing else).
class Pass {
 public:
  constexpr Pass() = default;
  constexpr explicit Pass(double v) : v_(v) {}

  // Sentinel for "no runnable job" (min over an empty set).
  static constexpr Pass Infinity() { return Pass(std::numeric_limits<double>::infinity()); }

  constexpr double raw() const { return v_; }

  constexpr Pass& operator+=(Stride s) {
    v_ += s.raw();
    return *this;
  }
  friend constexpr Pass operator+(Pass p, Stride s) { return Pass(p.v_ + s.raw()); }
  // Tolerance arithmetic (monotonicity checks against an epsilon stride).
  friend constexpr Pass operator-(Pass p, Stride s) { return Pass(p.v_ - s.raw()); }
  // Pass difference is a stride (how far one job ran ahead of another).
  friend constexpr Stride operator-(Pass a, Pass b) { return Stride(a.v_ - b.v_); }

  friend constexpr bool operator==(Pass a, Pass b) { return a.v_ == b.v_; }
  friend constexpr bool operator!=(Pass a, Pass b) { return a.v_ != b.v_; }
  friend constexpr bool operator<(Pass a, Pass b) { return a.v_ < b.v_; }
  friend constexpr bool operator>(Pass a, Pass b) { return a.v_ > b.v_; }
  friend constexpr bool operator<=(Pass a, Pass b) { return a.v_ <= b.v_; }
  friend constexpr bool operator>=(Pass a, Pass b) { return a.v_ >= b.v_; }

  friend std::ostream& operator<<(std::ostream& os, Pass p) { return os << p.v_; }

 private:
  double v_ = 0.0;
};

// Profiled per-GPU throughput of a model on a generation (mini-batches/s).
class PerGpuRate {
 public:
  constexpr PerGpuRate() = default;
  constexpr explicit PerGpuRate(double v) : v_(v) {}

  // Normalizes an observed whole-gang rate to per-GPU.
  static constexpr PerGpuRate FromGangRate(double observed_rate, double gang_size) {
    return PerGpuRate(observed_rate / gang_size);
  }

  constexpr double raw() const { return v_; }

  friend constexpr bool operator==(PerGpuRate a, PerGpuRate b) { return a.v_ == b.v_; }
  friend constexpr bool operator!=(PerGpuRate a, PerGpuRate b) { return a.v_ != b.v_; }
  friend constexpr bool operator<(PerGpuRate a, PerGpuRate b) { return a.v_ < b.v_; }
  friend constexpr bool operator>(PerGpuRate a, PerGpuRate b) { return a.v_ > b.v_; }
  friend constexpr bool operator<=(PerGpuRate a, PerGpuRate b) { return a.v_ <= b.v_; }
  friend constexpr bool operator>=(PerGpuRate a, PerGpuRate b) { return a.v_ >= b.v_; }

  friend std::ostream& operator<<(std::ostream& os, PerGpuRate r) { return os << r.v_; }

 private:
  double v_ = 0.0;
};

// Throughput ratio between two GPU generations for some job mix. Mintable
// only from a rate ratio (FromRates) or an explicitly named ratio boundary
// (FromRatio) — there is no constructor from double, so a raw share or
// tickets value cannot silently become a trade price, and 1/speedup
// inversions do not compile (no double-by-Speedup division). Conversions of
// GPU quantities across a trade use the named FastToSlow / SlowToFast
// helpers below, which keep the direction visible at the call site.
class Speedup {
 public:
  constexpr Speedup() = default;

  static constexpr Speedup FromRates(PerGpuRate fast, PerGpuRate slow) {
    return Speedup(fast.raw() / slow.raw());
  }
  // Named escape hatch for ratios computed outside rate space (quantized
  // means, test fixtures). Greppable on purpose.
  static constexpr Speedup FromRatio(double ratio) { return Speedup(ratio); }
  static constexpr Speedup Unit() { return Speedup(1.0); }

  constexpr double raw() const { return v_; }

  // Weighted accumulation (demand-weighted user speedups) and dimensionless
  // scaling (borrower margin, breakeven slack).
  constexpr Speedup& operator+=(Speedup o) {
    v_ += o.v_;
    return *this;
  }
  friend constexpr Speedup operator+(Speedup a, Speedup b) { return Speedup(a.v_ + b.v_); }
  friend constexpr Speedup operator*(Speedup s, double k) { return Speedup(s.v_ * k); }
  friend constexpr Speedup operator/(Speedup s, double k) { return Speedup(s.v_ / k); }

  friend constexpr bool operator==(Speedup a, Speedup b) { return a.v_ == b.v_; }
  friend constexpr bool operator!=(Speedup a, Speedup b) { return a.v_ != b.v_; }
  friend constexpr bool operator<(Speedup a, Speedup b) { return a.v_ < b.v_; }
  friend constexpr bool operator>(Speedup a, Speedup b) { return a.v_ > b.v_; }
  friend constexpr bool operator<=(Speedup a, Speedup b) { return a.v_ <= b.v_; }
  friend constexpr bool operator>=(Speedup a, Speedup b) { return a.v_ >= b.v_; }

  friend std::ostream& operator<<(std::ostream& os, Speedup s) { return os << s.v_; }

 private:
  constexpr explicit Speedup(double v) : v_(v) {}
  double v_ = 0.0;
};

// Converting GPU quantities across a trade priced at rate lambda: one fast
// GPU is worth lambda slow GPUs.
constexpr double FastToSlow(double fast_gpus, Speedup rate) { return fast_gpus * rate.raw(); }
constexpr double SlowToFast(double slow_gpus, Speedup rate) { return slow_gpus / rate.raw(); }

// Geometric-mean pricing (the even-surplus-split rate rule).
inline Speedup GeometricMean(Speedup a, Speedup b) {
  return Speedup::FromRatio(std::sqrt(a.raw() * b.raw()));
}

// Floors a speedup to a grid of `steps` per unit (profiling-noise clamp:
// flooring can only under-price the borrower, never over-charge the lender).
inline Speedup FloorQuantize(Speedup s, double steps) {
  return Speedup::FromRatio(std::floor(s.raw() * steps) / steps);
}

// Delivered GPU time: GPU-count x seconds. Minted from the ledger's
// millisecond series at the query boundary.
class GpuSeconds {
 public:
  constexpr GpuSeconds() = default;
  constexpr explicit GpuSeconds(double seconds) : v_(seconds) {}

  static constexpr GpuSeconds FromMillis(double gpu_ms) { return GpuSeconds(gpu_ms / 1000.0); }

  constexpr double raw() const { return v_; }

  constexpr GpuSeconds& operator+=(GpuSeconds o) {
    v_ += o.v_;
    return *this;
  }
  friend constexpr GpuSeconds operator+(GpuSeconds a, GpuSeconds b) {
    return GpuSeconds(a.v_ + b.v_);
  }
  friend constexpr GpuSeconds operator-(GpuSeconds a, GpuSeconds b) {
    return GpuSeconds(a.v_ - b.v_);
  }
  friend constexpr GpuSeconds operator*(GpuSeconds t, double s) { return GpuSeconds(t.v_ * s); }
  friend constexpr GpuSeconds operator*(double s, GpuSeconds t) { return GpuSeconds(s * t.v_); }
  // Delivery ratio (achieved / ideal): the only double-producing division.
  friend constexpr double operator/(GpuSeconds a, GpuSeconds b) { return a.v_ / b.v_; }

  friend constexpr bool operator==(GpuSeconds a, GpuSeconds b) { return a.v_ == b.v_; }
  friend constexpr bool operator!=(GpuSeconds a, GpuSeconds b) { return a.v_ != b.v_; }
  friend constexpr bool operator<(GpuSeconds a, GpuSeconds b) { return a.v_ < b.v_; }
  friend constexpr bool operator>(GpuSeconds a, GpuSeconds b) { return a.v_ > b.v_; }
  friend constexpr bool operator<=(GpuSeconds a, GpuSeconds b) { return a.v_ <= b.v_; }
  friend constexpr bool operator>=(GpuSeconds a, GpuSeconds b) { return a.v_ >= b.v_; }

  friend std::ostream& operator<<(std::ostream& os, GpuSeconds t) { return os << t.v_; }

 private:
  double v_ = 0.0;
};

}  // namespace gfair

#endif  // GFAIR_COMMON_UNITS_H_
