#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace gfair {

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double PercentileSampler::Percentile(double p) const {
  if (samples_.empty()) {
    return 0.0;
  }
  GFAIR_CHECK(p >= 0.0 && p <= 100.0);
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double PercentileSampler::Mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (double s : samples_) {
    total += s;
  }
  return total / static_cast<double>(samples_.size());
}

double JainIndex(const std::vector<double>& values) {
  if (values.empty()) {
    return 1.0;
  }
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : values) {
    sum += v;
    sum_sq += v * v;
  }
  // Exact-zero guard against 0/0, not a tolerance check: sum_sq is a sum of
  // squares and is 0.0 iff every input is exactly 0.0.
  if (sum_sq == 0.0) {  // gfair-lint: allow(float-eq)
    return 1.0;
  }
  return sum * sum / (static_cast<double>(values.size()) * sum_sq);
}

double MaxRelativeDeviation(const std::vector<double>& actual,
                            const std::vector<double>& ideal) {
  GFAIR_CHECK(actual.size() == ideal.size());
  double worst = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) {
    if (ideal[i] <= 0.0) {
      continue;
    }
    worst = std::max(worst, std::abs(actual[i] - ideal[i]) / ideal[i]);
  }
  return worst;
}

}  // namespace gfair
