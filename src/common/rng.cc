#include "common/rng.h"

#include <cmath>

namespace gfair {

double Rng::Exponential(double mean) {
  GFAIR_CHECK(mean > 0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);  // avoid log(0)
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * radius * std::cos(theta);
}

double Rng::LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  GFAIR_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    GFAIR_CHECK(w >= 0.0);
    total += w;
  }
  GFAIR_CHECK(total > 0.0);
  double draw = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    draw -= weights[i];
    if (draw < 0.0) {
      return i;
    }
  }
  return weights.size() - 1;  // floating-point edge: fall into last bucket
}

}  // namespace gfair
