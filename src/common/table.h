// Table — aligned ASCII table rendering plus CSV export.
//
// Every bench binary reports its results through this class so output is
// uniform and machine-readable (set GFAIR_BENCH_CSV=1 to also write CSV).
#ifndef GFAIR_COMMON_TABLE_H_
#define GFAIR_COMMON_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace gfair {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Row-building helpers; a row is complete after headers.size() cells.
  Table& AddRow(std::vector<std::string> cells);
  // Starts a new row and appends cells one at a time.
  Table& BeginRow();
  Table& Cell(const std::string& value);
  Table& Cell(double value, int precision = 3);
  Table& Cell(int64_t value);

  size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  // Renders an aligned ASCII table with a separator under the header.
  void Print(std::ostream& os, const std::string& title = "") const;

  std::string ToCsv() const;
  // Writes CSV to `path`; returns false on I/O failure.
  bool WriteCsv(const std::string& path) const;

  // Convenience used by bench binaries: print to stdout and, when the
  // GFAIR_BENCH_CSV environment variable is set, also write `<name>.csv` in
  // the current directory.
  void Report(const std::string& title, const std::string& csv_name) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with the given precision (no trailing-zero trimming).
std::string FormatDouble(double value, int precision = 3);

}  // namespace gfair

#endif  // GFAIR_COMMON_TABLE_H_
