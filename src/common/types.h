// Strong identifier types used across the GandivaFair codebase.
//
// All entities (users, jobs, servers, GPUs) are identified by small integers,
// wrapped in distinct types so that a JobId cannot be passed where a UserId is
// expected. The wrappers are trivially copyable, hashable and totally ordered.
#ifndef GFAIR_COMMON_TYPES_H_
#define GFAIR_COMMON_TYPES_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

#include "common/units.h"

namespace gfair {

// CRTP-free strong typedef over an integral value. `Tag` makes each
// instantiation a distinct type.
template <typename Tag, typename Rep = uint32_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  constexpr Rep value() const { return value_; }
  constexpr bool valid() const { return value_ != kInvalidValue; }

  static constexpr StrongId Invalid() { return StrongId(kInvalidValue); }

  friend constexpr bool operator==(StrongId a, StrongId b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(StrongId a, StrongId b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(StrongId a, StrongId b) { return a.value_ < b.value_; }
  friend constexpr bool operator>(StrongId a, StrongId b) { return a.value_ > b.value_; }
  friend constexpr bool operator<=(StrongId a, StrongId b) { return a.value_ <= b.value_; }
  friend constexpr bool operator>=(StrongId a, StrongId b) { return a.value_ >= b.value_; }

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    if (!id.valid()) {
      return os << "<invalid>";
    }
    return os << id.value_;
  }

 private:
  static constexpr Rep kInvalidValue = std::numeric_limits<Rep>::max();
  Rep value_ = kInvalidValue;
};

struct UserIdTag {};
struct JobIdTag {};
struct ServerIdTag {};
struct GpuIdTag {};

using UserId = StrongId<UserIdTag>;
using JobId = StrongId<JobIdTag>;
using ServerId = StrongId<ServerIdTag>;
// Globally unique GPU identifier (server-local index is a plain int).
using GpuId = StrongId<GpuIdTag>;

// Fair-share `Tickets` (historically a bare double alias here) now lives in
// common/units.h with the rest of the strong unit types.

}  // namespace gfair

namespace std {
template <typename Tag, typename Rep>
struct hash<gfair::StrongId<Tag, Rep>> {
  size_t operator()(gfair::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
}  // namespace std

#endif  // GFAIR_COMMON_TYPES_H_
