#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace gfair::common {

ThreadPool::ThreadPool(int num_threads) {
  GFAIR_CHECK(num_threads >= 1);
  const size_t spawned = static_cast<size_t>(num_threads - 1);
  workers_.reserve(spawned);
  for (size_t i = 0; i < spawned; ++i) {
    workers_.emplace_back([this, i]() { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::ParallelFor(size_t n, const RangeFn& fn) {
  GFAIR_CHECK(fn != nullptr);
  if (workers_.empty() || n <= 1) {
    if (n > 0) {
      fn(0, n);
    }
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    GFAIR_CHECK_MSG(pending_ == 0 && fn_ == nullptr, "ParallelFor is not re-entrant");
    fn_ = &fn;
    n_ = n;
    pending_ = workers_.size();
    ++epoch_;
  }
  work_cv_.notify_all();
  // The caller takes chunk 0 (worker i takes chunk i + 1).
  const size_t parts = static_cast<size_t>(size());
  fn(ChunkBegin(n, parts, 0), ChunkBegin(n, parts, 1));
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this]() { return pending_ == 0; });
  fn_ = nullptr;
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  uint64_t seen_epoch = 0;
  for (;;) {
    const RangeFn* fn = nullptr;
    size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&]() { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) {
        return;
      }
      seen_epoch = epoch_;
      fn = fn_;
      n = n_;
    }
    const size_t parts = static_cast<size_t>(size());
    const size_t begin = ChunkBegin(n, parts, worker_index + 1);
    const size_t end = ChunkBegin(n, parts, worker_index + 2);
    if (begin < end) {
      (*fn)(begin, end);
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) {
        done_cv_.notify_one();
      }
    }
  }
}

}  // namespace gfair::common
