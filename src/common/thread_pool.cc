#include "common/thread_pool.h"

#include <algorithm>

#include "common/check.h"

namespace gfair::common {

ThreadPool::ThreadPool(int num_threads) {
  GFAIR_CHECK(num_threads >= 1);
  const size_t spawned = static_cast<size_t>(num_threads - 1);
  workers_.reserve(spawned);
  for (size_t i = 0; i < spawned; ++i) {
    workers_.emplace_back([this, i]() { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::ParallelFor(size_t n, const RangeFn& fn) {
  GFAIR_CHECK(fn != nullptr);
  // Re-entrancy tripwire: a nested span from inside a chunk would deadlock
  // (the outer span's caller waits on the inner's participants) or corrupt
  // the epoch protocol. Fail loudly in Debug on every path — including the
  // inline one, where the nesting would "work" locally and then deadlock
  // the first time the pool has workers.
  GFAIR_DCHECK_MSG(!in_span_.load(std::memory_order_relaxed),
                   "ParallelFor is not re-entrant (nested span)");
  if (workers_.empty() || n <= 1) {
    if (n > 0) {
      in_span_.store(true, std::memory_order_relaxed);
      try {
        fn(0, n);  // inline: an exception propagates directly
      } catch (...) {
        in_span_.store(false, std::memory_order_relaxed);
        throw;
      }
      in_span_.store(false, std::memory_order_relaxed);
    }
    return;
  }
  const size_t parts = static_cast<size_t>(size());
  const size_t chunk = (n + parts - 1) / parts;
  // Only workers with a non-empty chunk participate in the epoch: the wait
  // predicate below gates on the participant count, so the rest sleep
  // through the span instead of waking to find nothing to do. The chunk map
  // itself is unchanged — worker i still owns [ChunkBegin(i+1),
  // ChunkBegin(i+2)) — so which indices run where is identical either way.
  const size_t used_chunks = (n + chunk - 1) / chunk;
  const size_t active_workers = used_chunks - 1;  // the caller takes chunk 0
  in_span_.store(true, std::memory_order_relaxed);
  {
    const MutexLock lock(mu_);
    GFAIR_CHECK_MSG(pending_ == 0 && fn_ == nullptr, "ParallelFor is not re-entrant");
    fn_ = &fn;
    n_ = n;
    pending_ = active_workers;
    participants_ = active_workers;
    error_ = nullptr;
    ++epoch_;
  }
  work_cv_.NotifyAll();
  // The caller takes chunk 0 (worker i takes chunk i + 1).
  try {
    fn(ChunkBegin(n, parts, 0), ChunkBegin(n, parts, 1));
  } catch (...) {
    const MutexLock lock(mu_);
    RecordChunkErrorLocked(std::current_exception(), 0);
  }
  std::exception_ptr error = nullptr;
  {
    MutexLock lock(mu_);
    while (pending_ != 0) {
      done_cv_.Wait(lock);
    }
    fn_ = nullptr;
    participants_ = 0;
    std::swap(error, error_);
  }
  in_span_.store(false, std::memory_order_relaxed);
  if (error != nullptr) {
    std::rethrow_exception(error);
  }
}

void ThreadPool::RecordChunkErrorLocked(std::exception_ptr error, size_t chunk) {
  if (error_ == nullptr || chunk < error_chunk_) {
    error_ = std::move(error);
    error_chunk_ = chunk;
  }
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  uint64_t seen_epoch = 0;
  for (;;) {
    const RangeFn* fn = nullptr;
    size_t n = 0;
    {
      MutexLock lock(mu_);
      // A worker past the participant cut has an empty chunk this epoch: it
      // neither wakes nor touches pending_, and catches up on epoch_ the
      // next time it does participate (the comparison is !=, not <). The
      // wait is an explicit loop so clang's thread-safety analysis can see
      // the lock is held around every predicate read (a predicate lambda
      // would be analyzed without the caller's lock context).
      while (!(shutdown_ ||
               (epoch_ != seen_epoch && worker_index < participants_))) {
        work_cv_.Wait(lock);
      }
      if (shutdown_) {
        return;
      }
      seen_epoch = epoch_;
      fn = fn_;
      n = n_;
    }
    const size_t parts = static_cast<size_t>(size());
    const size_t begin = ChunkBegin(n, parts, worker_index + 1);
    const size_t end = ChunkBegin(n, parts, worker_index + 2);
    if (begin < end) {
      try {
        (*fn)(begin, end);
      } catch (...) {
        const MutexLock lock(mu_);
        RecordChunkErrorLocked(std::current_exception(), worker_index + 1);
      }
    }
    {
      const MutexLock lock(mu_);
      if (--pending_ == 0) {
        done_cv_.NotifyOne();
      }
    }
  }
}

}  // namespace gfair::common
