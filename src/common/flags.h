// ArgParser — minimal command-line flag parsing for tools and benches.
//
// Supports `--name value`, `--name=value` and boolean `--name` forms.
// Unknown positional arguments are collected separately. No global state.
#ifndef GFAIR_COMMON_FLAGS_H_
#define GFAIR_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

namespace gfair {

class ArgParser {
 public:
  // Parses argv; returns false (with a message in error()) on malformed
  // input such as a dangling `--name` that expects a value elsewhere.
  ArgParser(int argc, const char* const argv[]);

  bool Has(const std::string& name) const;

  // Typed getters with defaults. GetDouble/GetInt CHECK-fail on values that
  // do not parse — tools should validate with TryGet* when input is hostile.
  std::string GetString(const std::string& name, const std::string& fallback = "") const;
  double GetDouble(const std::string& name, double fallback) const;
  int64_t GetInt(const std::string& name, int64_t fallback) const;
  bool GetBool(const std::string& name, bool fallback = false) const;

  bool TryGetDouble(const std::string& name, double* out) const;
  bool TryGetInt(const std::string& name, int64_t* out) const;

  // All occurrences of a repeatable flag, in order.
  std::vector<std::string> GetAll(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  // Names that were parsed but never queried — typo detection for tools.
  std::vector<std::string> UnconsumedFlags() const;

 private:
  std::multimap<std::string, std::string> values_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> consumed_;
};

// Splits `text` on `delimiter`, trimming ASCII whitespace from each piece.
// Empty pieces are preserved ("a,,b" -> {"a", "", "b"}).
std::vector<std::string> SplitAndTrim(const std::string& text, char delimiter);

}  // namespace gfair

#endif  // GFAIR_COMMON_FLAGS_H_
