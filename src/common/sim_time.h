// Simulated time.
//
// All simulation time is an integral count of milliseconds since simulation
// start. Using integers keeps event ordering exact and runs reproducible.
#ifndef GFAIR_COMMON_SIM_TIME_H_
#define GFAIR_COMMON_SIM_TIME_H_

#include <cstdint>
#include <ostream>
#include <string>

namespace gfair {

// A point in simulated time, in milliseconds. Durations use the same
// representation; arithmetic between them is the usual affine algebra.
using SimTime = int64_t;
using SimDuration = int64_t;

constexpr SimDuration kMillisecond = 1;
constexpr SimDuration kSecond = 1000 * kMillisecond;
constexpr SimDuration kMinute = 60 * kSecond;
constexpr SimDuration kHour = 60 * kMinute;
constexpr SimDuration kDay = 24 * kHour;

constexpr SimTime kTimeZero = 0;
constexpr SimTime kTimeNever = INT64_MAX;

constexpr double ToSeconds(SimDuration d) { return static_cast<double>(d) / kSecond; }
constexpr double ToMinutes(SimDuration d) { return static_cast<double>(d) / kMinute; }
constexpr double ToHours(SimDuration d) { return static_cast<double>(d) / kHour; }

namespace internal_time {
// Round half away from zero (llround semantics; std::llround itself is not
// constexpr until C++23). The old truncation silently shaved a millisecond
// off any product that lands just below an integer — Seconds(0.9999) was
// 999ms where the caller almost certainly meant 1000.
constexpr SimDuration RoundToDuration(double v) {
  return static_cast<SimDuration>(v < 0.0 ? v - 0.5 : v + 0.5);
}
}  // namespace internal_time

constexpr SimDuration Seconds(double s) { return internal_time::RoundToDuration(s * kSecond); }
constexpr SimDuration Minutes(double m) { return internal_time::RoundToDuration(m * kMinute); }
constexpr SimDuration Hours(double h) { return internal_time::RoundToDuration(h * kHour); }

// Renders a duration as "1h02m03s" / "4m05s" / "6.5s" for logs and tables.
std::string FormatDuration(SimDuration d);

}  // namespace gfair

#endif  // GFAIR_COMMON_SIM_TIME_H_
