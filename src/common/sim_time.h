// Simulated time.
//
// All simulation time is an integral count of milliseconds since simulation
// start. Using integers keeps event ordering exact and runs reproducible.
#ifndef GFAIR_COMMON_SIM_TIME_H_
#define GFAIR_COMMON_SIM_TIME_H_

#include <cstdint>
#include <ostream>
#include <string>

namespace gfair {

// A point in simulated time, in milliseconds. Durations use the same
// representation; arithmetic between them is the usual affine algebra.
using SimTime = int64_t;
using SimDuration = int64_t;

constexpr SimDuration kMillisecond = 1;
constexpr SimDuration kSecond = 1000 * kMillisecond;
constexpr SimDuration kMinute = 60 * kSecond;
constexpr SimDuration kHour = 60 * kMinute;
constexpr SimDuration kDay = 24 * kHour;

constexpr SimTime kTimeZero = 0;
constexpr SimTime kTimeNever = INT64_MAX;

constexpr double ToSeconds(SimDuration d) { return static_cast<double>(d) / kSecond; }
constexpr double ToMinutes(SimDuration d) { return static_cast<double>(d) / kMinute; }
constexpr double ToHours(SimDuration d) { return static_cast<double>(d) / kHour; }

constexpr SimDuration Seconds(double s) { return static_cast<SimDuration>(s * kSecond); }
constexpr SimDuration Minutes(double m) { return static_cast<SimDuration>(m * kMinute); }
constexpr SimDuration Hours(double h) { return static_cast<SimDuration>(h * kHour); }

// Renders a duration as "1h02m03s" / "4m05s" / "6.5s" for logs and tables.
std::string FormatDuration(SimDuration d);

}  // namespace gfair

#endif  // GFAIR_COMMON_SIM_TIME_H_
