// Streaming statistics: Welford accumulator and a percentile sampler.
#ifndef GFAIR_COMMON_STATS_H_
#define GFAIR_COMMON_STATS_H_

#include <algorithm>
#include <cstddef>
#include <vector>

namespace gfair {

// Numerically stable running mean/variance (Welford's algorithm).
class RunningStats {
 public:
  // Inline: the profiler calls this once per running job per quantum.
  void Add(double x) {
    if (count_ == 0) {
      min_ = max_ = x;
    } else {
      min_ = std::min(min_, x);
      max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

  void Reset() { *this = RunningStats(); }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Stores all samples; answers exact percentiles. Fine for experiment-scale
// sample counts (<= millions).
class PercentileSampler {
 public:
  void Add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  size_t count() const { return samples_.size(); }

  // p in [0, 100]. Linear interpolation between closest ranks. Returns 0 when
  // empty.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }
  double Mean() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

// Fairness metric helpers over a vector of per-entity allocations.

// Jain's fairness index: (Σx)^2 / (n Σx^2). 1.0 is perfectly fair; 1/n is
// maximally unfair. Returns 1.0 for empty or all-zero input.
double JainIndex(const std::vector<double>& values);

// max_i |x_i - fair_i| / fair_i given an ideal per-entity share vector.
double MaxRelativeDeviation(const std::vector<double>& actual,
                            const std::vector<double>& ideal);

}  // namespace gfair

#endif  // GFAIR_COMMON_STATS_H_
