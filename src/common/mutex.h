// Annotated mutex wrappers: the only sanctioned lock vocabulary outside
// src/common/ (the `raw-mutex` lint rule fences bare std::mutex /
// std::lock_guard / std::condition_variable elsewhere). The wrappers carry
// Clang Thread Safety Analysis attributes, so under clang every
// GFAIR_GUARDED_BY member access is proven to hold the right lock at
// compile time; under gcc they are zero-cost pass-throughs.
#ifndef GFAIR_COMMON_MUTEX_H_
#define GFAIR_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace gfair::common {

class CondVar;
class MutexLock;

// A standard mutex, declared as a thread-safety capability. Prefer the
// scoped MutexLock; Lock()/Unlock() exist for the rare hand-over-hand case.
class GFAIR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() GFAIR_ACQUIRE() { mu_.lock(); }
  void Unlock() GFAIR_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

// RAII critical section over a Mutex (scoped capability: the analysis
// treats the mutex as held for exactly the lock object's lifetime).
class GFAIR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GFAIR_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() GFAIR_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

// Condition variable bound to MutexLock. Wait() atomically releases the
// mutex and reacquires it before returning, so from the analysis's point of
// view the capability is held across the call — which is why waits must be
// written as explicit `while (!cond) cv.Wait(lock);` loops in the annotated
// caller rather than as predicate lambdas (the analysis cannot carry lock
// context into a lambda body).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace gfair::common

#endif  // GFAIR_COMMON_MUTEX_H_
