#include "common/sim_time.h"

#include <cstdio>

namespace gfair {

std::string FormatDuration(SimDuration d) {
  char buf[64];
  const bool negative = d < 0;
  if (negative) {
    d = -d;
  }
  const int64_t total_ms = d;
  const int64_t hours = total_ms / kHour;
  const int64_t minutes = (total_ms % kHour) / kMinute;
  const double seconds = static_cast<double>(total_ms % kMinute) / kSecond;
  if (hours > 0) {
    std::snprintf(buf, sizeof(buf), "%s%ldh%02ldm%02.0fs", negative ? "-" : "",
                  static_cast<long>(hours), static_cast<long>(minutes), seconds);
  } else if (minutes > 0) {
    std::snprintf(buf, sizeof(buf), "%s%ldm%02.0fs", negative ? "-" : "",
                  static_cast<long>(minutes), seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%s%.1fs", negative ? "-" : "", seconds);
  }
  return buf;
}

}  // namespace gfair
