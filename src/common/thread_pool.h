// ThreadPool — fixed-size fork-join pool for data-parallel spans.
//
// ParallelFor splits [0, n) into one contiguous chunk per participant (the
// workers plus the calling thread) and blocks until every chunk ran. The
// split is static and deterministic: chunk boundaries depend only on n and
// the pool size, never on timing, so a ParallelFor over disjoint work
// produces the same state no matter how the OS schedules the threads. The
// caller is responsible for handing it only disjoint work — the executor's
// per-server apply slices and the scheduler's plan shards are the intended
// loads.
//
// The pool serves one caller at a time and is not re-entrant (no nested
// ParallelFor from inside a chunk): nesting trips a Debug CHECK via
// in_span_ instead of deadlocking.
//
// All epoch/participant/error state is GFAIR_GUARDED_BY(mu_); under clang
// `-Wthread-safety` proves every access holds the lock.
#ifndef GFAIR_COMMON_THREAD_POOL_H_
#define GFAIR_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace gfair::common {

class ThreadPool {
 public:
  // `num_threads` counts the caller: a pool of 1 spawns no workers and runs
  // every span inline.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total participants (spawned workers + the calling thread).
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  using RangeFn = std::function<void(size_t begin, size_t end)>;

  // Runs fn over [0, n) split into size() contiguous chunks; returns after
  // all chunks completed. fn must be safe to call concurrently on disjoint
  // ranges.
  //
  // Workers whose static chunk would be empty (n < size(), or a tail chunk
  // past n) are never woken: they are excluded from the epoch's participant
  // set, so a small span costs only the wakeups it can actually use.
  //
  // An exception escaping a chunk does not tear the span down: the other
  // chunks still run to completion (disjoint work stays consistent), and
  // once every participant finished, the failure from the lowest-numbered
  // chunk is rethrown on the calling thread. The pool stays usable after.
  void ParallelFor(size_t n, const RangeFn& fn) GFAIR_EXCLUDES(mu_);

 private:
  void WorkerLoop(size_t worker_index);
  // Records `error` as the span's failure unless a lower-numbered chunk
  // already failed (ties on chunk index are impossible — one error per
  // chunk).
  void RecordChunkErrorLocked(std::exception_ptr error, size_t chunk)
      GFAIR_REQUIRES(mu_);
  static size_t ChunkBegin(size_t n, size_t parts, size_t part) {
    const size_t chunk = (n + parts - 1) / parts;
    return part * chunk < n ? part * chunk : n;
  }

  // Unguarded state first: workers_ is written only in the constructor
  // (before any worker can observe it) and joined in the destructor;
  // in_span_ is an atomic tripwire read outside the lock on purpose — it
  // detects the erroneous nested-span call, which by definition happens
  // while another thread may be mid-span.
  std::vector<std::thread> workers_;
  std::atomic<bool> in_span_{false};
  CondVar work_cv_;
  CondVar done_cv_;

  // Everything below the mutex is guarded by it (the layout convention the
  // `mutex-unannotated` lint rule assumes: guarded members follow their
  // mutex).
  Mutex mu_;
  const RangeFn* fn_ GFAIR_GUARDED_BY(mu_) =
      nullptr;  // current span's body (valid while pending)
  size_t n_ GFAIR_GUARDED_BY(mu_) = 0;
  // epoch_: bumped once per ParallelFor; wakes the workers.
  uint64_t epoch_ GFAIR_GUARDED_BY(mu_) = 0;
  // pending_: participating workers not yet done this epoch.
  size_t pending_ GFAIR_GUARDED_BY(mu_) = 0;
  // participants_: workers with a non-empty chunk this epoch.
  size_t participants_ GFAIR_GUARDED_BY(mu_) = 0;
  // error_: lowest-chunk failure of the current span.
  std::exception_ptr error_ GFAIR_GUARDED_BY(mu_);
  size_t error_chunk_ GFAIR_GUARDED_BY(mu_) = 0;
  bool shutdown_ GFAIR_GUARDED_BY(mu_) = false;
};

}  // namespace gfair::common

#endif  // GFAIR_COMMON_THREAD_POOL_H_
