// ThreadPool — fixed-size fork-join pool for data-parallel spans.
//
// ParallelFor splits [0, n) into one contiguous chunk per participant (the
// workers plus the calling thread) and blocks until every chunk ran. The
// split is static and deterministic: chunk boundaries depend only on n and
// the pool size, never on timing, so a ParallelFor over disjoint work
// produces the same state no matter how the OS schedules the threads. The
// caller is responsible for handing it only disjoint work — the executor's
// per-server apply slices and the scheduler's plan shards are the intended
// loads.
//
// The pool serves one caller at a time and is not re-entrant (no nested
// ParallelFor from inside a chunk).
#ifndef GFAIR_COMMON_THREAD_POOL_H_
#define GFAIR_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gfair::common {

class ThreadPool {
 public:
  // `num_threads` counts the caller: a pool of 1 spawns no workers and runs
  // every span inline.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total participants (spawned workers + the calling thread).
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  using RangeFn = std::function<void(size_t begin, size_t end)>;

  // Runs fn over [0, n) split into size() contiguous chunks; returns after
  // all chunks completed. fn must be safe to call concurrently on disjoint
  // ranges.
  //
  // Workers whose static chunk would be empty (n < size(), or a tail chunk
  // past n) are never woken: they are excluded from the epoch's participant
  // set, so a small span costs only the wakeups it can actually use.
  //
  // An exception escaping a chunk does not tear the span down: the other
  // chunks still run to completion (disjoint work stays consistent), and
  // once every participant finished, the failure from the lowest-numbered
  // chunk is rethrown on the calling thread. The pool stays usable after.
  void ParallelFor(size_t n, const RangeFn& fn);

 private:
  void WorkerLoop(size_t worker_index);
  // Records `error` as the span's failure unless a lower-numbered chunk
  // already failed (ties on chunk index are impossible — one error per
  // chunk). Caller holds mu_.
  void RecordChunkErrorLocked(std::exception_ptr error, size_t chunk);
  static size_t ChunkBegin(size_t n, size_t parts, size_t part) {
    const size_t chunk = (n + parts - 1) / parts;
    return part * chunk < n ? part * chunk : n;
  }

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const RangeFn* fn_ = nullptr;  // current span's body (valid while pending)
  size_t n_ = 0;
  uint64_t epoch_ = 0;  // bumped once per ParallelFor; wakes the workers
  size_t pending_ = 0;       // participating workers not yet done this epoch
  size_t participants_ = 0;  // workers with a non-empty chunk this epoch
  std::exception_ptr error_;  // lowest-chunk failure of the current span
  size_t error_chunk_ = 0;
  bool shutdown_ = false;
};

}  // namespace gfair::common

#endif  // GFAIR_COMMON_THREAD_POOL_H_
