#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "common/check.h"

namespace gfair {

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  GFAIR_CHECK(!headers_.empty());
}

Table& Table::AddRow(std::vector<std::string> cells) {
  GFAIR_CHECK_MSG(cells.size() == headers_.size(), "row width must match header width");
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::BeginRow() {
  if (!rows_.empty()) {
    GFAIR_CHECK_MSG(rows_.back().size() == headers_.size(),
                    "previous row incomplete before BeginRow");
  }
  rows_.emplace_back();
  return *this;
}

Table& Table::Cell(const std::string& value) {
  GFAIR_CHECK_MSG(!rows_.empty() && rows_.back().size() < headers_.size(),
                  "Cell() without room in current row");
  rows_.back().push_back(value);
  return *this;
}

Table& Table::Cell(double value, int precision) { return Cell(FormatDouble(value, precision)); }

Table& Table::Cell(int64_t value) { return Cell(std::to_string(value)); }

void Table::Print(std::ostream& os, const std::string& title) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  if (!title.empty()) {
    os << "== " << title << " ==\n";
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << '\n';
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

namespace {

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) {
    return field;
  }
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') {
      out += "\"\"";
    } else {
      out += ch;
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::ToCsv() const {
  std::string out;
  for (size_t c = 0; c < headers_.size(); ++c) {
    out += (c == 0 ? "" : ",");
    out += CsvEscape(headers_[c]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += (c == 0 ? "" : ",");
      out += CsvEscape(row[c]);
    }
    out += '\n';
  }
  return out;
}

bool Table::WriteCsv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    return false;
  }
  file << ToCsv();
  return static_cast<bool>(file);
}

void Table::Report(const std::string& title, const std::string& csv_name) const {
  Print(std::cout, title);
  std::cout << '\n';
  const char* want_csv = std::getenv("GFAIR_BENCH_CSV");
  if (want_csv != nullptr && want_csv[0] != '\0' && want_csv[0] != '0') {
    const std::string path = csv_name + ".csv";
    if (!WriteCsv(path)) {
      std::cerr << "warning: failed to write " << path << '\n';
    }
  }
}

}  // namespace gfair
