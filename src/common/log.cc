#include "common/log.h"

#include <cstdio>

namespace gfair {

namespace {
LogLevel g_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal {

void EmitLog(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

}  // namespace internal
}  // namespace gfair
