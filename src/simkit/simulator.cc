#include "simkit/simulator.h"

#include <memory>
#include <utility>

namespace gfair::simkit {

EventId Simulator::At(SimTime when, EventCallback callback) {
  GFAIR_CHECK_MSG(when >= now_, "cannot schedule events in the past");
  return queue_.Push(when, std::move(callback));
}

EventId Simulator::After(SimDuration delay, EventCallback callback) {
  GFAIR_CHECK(delay >= 0);
  return At(now_ + delay, std::move(callback));
}

EventId Simulator::Every(SimDuration period, std::function<void()> callback) {
  GFAIR_CHECK(period > 0);
  // The repeating chain is identified by the id of its *currently pending*
  // event. A shared cell tracks that id so Cancel() always hits the live one;
  // callers hold a stable handle via the cell's first id.
  //
  // Simpler approach used here: each firing reschedules itself; cancellation
  // works because the chain shares a "cancelled" flag checked before running.
  auto cancelled = std::make_shared<bool>(false);
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, period, callback = std::move(callback), cancelled, tick]() {
    if (*cancelled) {
      return;
    }
    callback();
    if (!*cancelled) {
      queue_.Push(now_ + period, *tick);
    }
  };
  const EventId id = queue_.Push(now_ + period, *tick);
  repeating_flags_.emplace(id, cancelled);
  return id;
}

bool Simulator::Cancel(EventId id) {
  auto it = repeating_flags_.find(id);
  if (it != repeating_flags_.end()) {
    *it->second = true;
    repeating_flags_.erase(it);
    queue_.Cancel(id);  // may already have fired; flag handles the rest
    return true;
  }
  return queue_.Cancel(id);
}

size_t Simulator::RunUntil(SimTime deadline) {
  stop_requested_ = false;
  size_t processed = 0;
  while (!queue_.empty() && !stop_requested_) {
    const SimTime next = queue_.NextTime();
    if (next > deadline) {
      break;
    }
    auto event = queue_.Pop();
    GFAIR_CHECK(event.time >= now_);
    now_ = event.time;
    event.callback();
    ++processed;
    ++events_processed_;
  }
  if (queue_.empty() || queue_.NextTime() > deadline) {
    if (deadline != kTimeNever && deadline > now_) {
      now_ = deadline;
    }
  }
  return processed;
}

}  // namespace gfair::simkit
