#include "simkit/simulator.h"

#include <memory>
#include <utility>

namespace gfair::simkit {

EventId Simulator::At(SimTime when, EventCallback callback) {
  GFAIR_CHECK_MSG(when >= now_, "cannot schedule events in the past");
  return queue_.Push(when, std::move(callback));
}

EventId Simulator::After(SimDuration delay, EventCallback callback) {
  GFAIR_CHECK(delay >= 0);
  return At(now_ + delay, std::move(callback));
}

EventId Simulator::Every(SimDuration period, std::function<void()> callback) {
  GFAIR_CHECK(period > 0);
  // Each firing reschedules itself under a fresh event id; the shared chain
  // cell records that live id on every re-push so Cancel() — keyed by the
  // first id, the caller's stable handle — can remove the pending event from
  // the queue. The cancelled flag additionally guards the (re-entrant) case
  // where the chain is cancelled from inside its own callback.
  auto chain = std::make_shared<RepeatingChain>();
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, period, callback = std::move(callback), chain, tick]() {
    if (chain->cancelled) {
      return;
    }
    callback();
    if (!chain->cancelled) {
      chain->live = queue_.Push(now_ + period, *tick);
    }
  };
  chain->live = queue_.Push(now_ + period, *tick);
  repeating_chains_.emplace_back(chain->live, chain);
  return chain->live;
}

bool Simulator::Cancel(EventId id) {
  for (auto it = repeating_chains_.begin(); it != repeating_chains_.end(); ++it) {
    if (it->first == id) {
      it->second->cancelled = true;
      // The live id is the chain's current pending event — the original
      // handle only until the first firing, a fresh id afterwards.
      queue_.Cancel(it->second->live);
      repeating_chains_.erase(it);
      return true;
    }
  }
  return queue_.Cancel(id);
}

size_t Simulator::RunUntil(SimTime deadline) {
  stop_requested_ = false;
  size_t processed = 0;
  while (!queue_.empty() && !stop_requested_) {
    const SimTime next = queue_.NextTime();
    if (next > deadline) {
      break;
    }
    auto event = queue_.Pop();
    GFAIR_CHECK(event.time >= now_);
    now_ = event.time;
    event.callback();
    ++processed;
    ++events_processed_;
  }
  if (queue_.empty() || queue_.NextTime() > deadline) {
    if (deadline != kTimeNever && deadline > now_) {
      now_ = deadline;
    }
  }
  return processed;
}

}  // namespace gfair::simkit
