#include "simkit/event_queue.h"

#include <algorithm>
#include <utility>

namespace gfair::simkit {

void EventQueue::CallbackTable::Insert(EventId id, EventCallback callback) {
  size_t mask;
  if (slots_.empty() || (size_ + 1) * 2 > slots_.size()) {
    mask = Grow();
  } else {
    mask = slots_.size() - 1;
  }
  size_t pos = Home(id, mask);
  while (slots_[pos].id != 0) {
    pos = (pos + 1) & mask;
  }
  slots_[pos].id = id;
  slots_[pos].callback = std::move(callback);
  ++size_;
}

size_t EventQueue::CallbackTable::Grow() {
  const size_t new_cap = slots_.empty() ? 64 : slots_.size() * 2;
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(new_cap, Slot{});
  const size_t mask = new_cap - 1;
  for (Slot& slot : old) {
    if (slot.id != 0) {
      size_t pos = Home(slot.id, mask);
      while (slots_[pos].id != 0) {
        pos = (pos + 1) & mask;
      }
      slots_[pos].id = slot.id;
      slots_[pos].callback = std::move(slot.callback);
    }
  }
  return mask;
}

size_t EventQueue::CallbackTable::FindSlot(EventId id) const {
  if (slots_.empty()) {
    return kNpos;
  }
  const size_t mask = slots_.size() - 1;
  size_t pos = Home(id, mask);
  while (slots_[pos].id != 0) {
    if (slots_[pos].id == id) {
      return pos;
    }
    pos = (pos + 1) & mask;
  }
  return kNpos;
}

void EventQueue::CallbackTable::EraseSlot(size_t pos) {
  const size_t mask = slots_.size() - 1;
  size_t hole = pos;
  size_t next = (hole + 1) & mask;
  // Backward-shift: pull each following cluster member whose probe path
  // crosses the hole, so lookups stay tombstone-free.
  while (slots_[next].id != 0) {
    const size_t home = Home(slots_[next].id, mask);
    if (((next - home) & mask) >= ((next - hole) & mask)) {
      slots_[hole].id = slots_[next].id;
      slots_[hole].callback = std::move(slots_[next].callback);
      hole = next;
    }
    next = (next + 1) & mask;
  }
  slots_[hole].id = 0;
  slots_[hole].callback = nullptr;
  --size_;
}

EventCallback EventQueue::CallbackTable::Take(EventId id) {
  const size_t pos = FindSlot(id);
  GFAIR_CHECK_MSG(pos != kNpos, "Take() of absent event");
  EventCallback callback = std::move(slots_[pos].callback);
  EraseSlot(pos);
  return callback;
}

bool EventQueue::CallbackTable::Erase(EventId id) {
  const size_t pos = FindSlot(id);
  if (pos == kNpos) {
    return false;
  }
  EraseSlot(pos);
  return true;
}

bool EventQueue::CallbackTable::Contains(EventId id) const {
  return FindSlot(id) != kNpos;
}

EventId EventQueue::Push(SimTime when, EventCallback callback) {
  GFAIR_CHECK(callback != nullptr);
  const EventId id = next_id_++;
  Enqueue(Entry{when, id, kInvalidTimer});
  callbacks_.Insert(id, std::move(callback));
  ++live_count_;
  return id;
}


TimerId EventQueue::CreateTimer(EventCallback callback) {
  GFAIR_CHECK(callback != nullptr);
  const TimerId timer = static_cast<TimerId>(timers_.size());
  timers_.push_back(TimerSlot{std::move(callback), 0});
  return timer;
}

bool EventQueue::Cancel(EventId id) {
  if (!callbacks_.Erase(id)) {
    return false;
  }
  --live_count_;
  // ~5:1 tombstone slack: a lower ratio (e.g. 1:1) makes steady cancel
  // workloads recompact every couple of quanta, and the O(n) passes start
  // to show up in tick profiles; memory stays bounded by the live count.
  if (heap_.size() + far_.size() > 6 * live_count_ + 64) {
    Compact();
  }
  return true;
}

void EventQueue::Compact() {
  std::erase_if(heap_, [this](const Entry& entry) { return !IsLive(entry); });
  std::make_heap(heap_.begin(), heap_.end(), std::greater<Entry>());
  // The far band filters without heap repair — the cheapness of compacting
  // an unsorted band is most of its point. Timer entries are always live
  // here (disarm splices them out immediately), so filtering only drops
  // cancelled one-shot events; surviving timer entries get their slots'
  // far_index re-pointed at their new positions.
  std::erase_if(far_, [this](const Entry& entry) { return !IsLive(entry); });
  far_min_ = kTimeNever;
  for (size_t i = 0; i < far_.size(); ++i) {
    if (far_[i].timer != kInvalidTimer) {
      timers_[far_[i].timer].far_index = static_cast<uint32_t>(i);
    }
    if (far_[i].time < far_min_) {
      far_min_ = far_[i].time;
    }
  }
}

void EventQueue::MaybeDrainFar() const {
  if (far_.empty()) {
    return;
  }
  if (!heap_.empty() && heap_.front().time < far_min_) {
    return;
  }
  for (const Entry& entry : far_) {
    if (entry.timer != kInvalidTimer) {
      timers_[entry.timer].far_index = kNoFarIndex;
    }
    if (IsLive(entry)) {
      heap_.push_back(entry);
      std::push_heap(heap_.begin(), heap_.end(), std::greater<Entry>());
    }
  }
  far_.clear();
  far_min_ = kTimeNever;
}

void EventQueue::DropCancelledHead() const {
  while (!heap_.empty() && !IsLive(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<Entry>());
    heap_.pop_back();
  }
}

SimTime EventQueue::NextTime() const {
  DropCancelledHead();
  MaybeDrainFar();
  if (heap_.empty()) {
    return kTimeNever;
  }
  return heap_.front().time;
}

EventQueue::PoppedEvent EventQueue::Pop() {
  DropCancelledHead();
  MaybeDrainFar();
  GFAIR_CHECK_MSG(!heap_.empty(), "Pop() on empty EventQueue");
  const Entry entry = heap_.front();
  last_fired_ = entry.time;
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<Entry>());
  heap_.pop_back();
  --live_count_;
  if (entry.timer != kInvalidTimer) {
    // Firing consumes the arm (the slot is free to re-arm, even from inside
    // the callback); the slot keeps the callback, so hand out a copy.
    TimerSlot& slot = timers_[entry.timer];
    slot.armed_id = 0;
    return PoppedEvent{entry.time, entry.id, slot.callback};
  }
  return PoppedEvent{entry.time, entry.id, callbacks_.Take(entry.id)};
}

}  // namespace gfair::simkit
