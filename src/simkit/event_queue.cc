#include "simkit/event_queue.h"

#include <utility>

namespace gfair::simkit {

EventId EventQueue::Push(SimTime when, EventCallback callback) {
  GFAIR_CHECK(callback != nullptr);
  const EventId id = next_id_++;
  heap_.push(Entry{when, id});
  callbacks_.emplace(id, std::move(callback));
  ++live_count_;
  return id;
}

bool EventQueue::Cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) {
    return false;
  }
  callbacks_.erase(it);
  --live_count_;
  return true;
}

void EventQueue::DropCancelledHead() const {
  while (!heap_.empty() &&
         const_cast<EventQueue*>(this)->callbacks_.find(heap_.top().id) ==
             const_cast<EventQueue*>(this)->callbacks_.end()) {
    heap_.pop();
  }
}

SimTime EventQueue::NextTime() const {
  DropCancelledHead();
  if (heap_.empty()) {
    return kTimeNever;
  }
  return heap_.top().time;
}

EventQueue::PoppedEvent EventQueue::Pop() {
  DropCancelledHead();
  GFAIR_CHECK_MSG(!heap_.empty(), "Pop() on empty EventQueue");
  const Entry entry = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(entry.id);
  GFAIR_CHECK(it != callbacks_.end());
  PoppedEvent popped{entry.time, entry.id, std::move(it->second)};
  callbacks_.erase(it);
  --live_count_;
  return popped;
}

}  // namespace gfair::simkit
