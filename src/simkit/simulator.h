// Simulator — single-threaded discrete-event simulation driver.
//
// Components schedule callbacks at absolute or relative simulated times; the
// driver pops events in order, advancing the virtual clock. Time never moves
// backwards, and within one instant events fire in scheduling order.
#ifndef GFAIR_SIMKIT_SIMULATOR_H_
#define GFAIR_SIMKIT_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "common/sim_time.h"
#include "simkit/event_queue.h"

namespace gfair::simkit {

class Simulator {
 public:
  SimTime Now() const { return now_; }

  // Schedules `callback` at absolute time `when` (>= Now()).
  EventId At(SimTime when, EventCallback callback);

  // Schedules `callback` `delay` from now (delay >= 0).
  EventId After(SimDuration delay, EventCallback callback);

  // Schedules `callback` every `period`, first firing at Now() + period.
  // Returns a handle; CancelRepeating stops future firings.
  EventId Every(SimDuration period, std::function<void()> callback);
  bool Cancel(EventId id);

  // Runs until the queue drains or the clock would pass `deadline`; the clock
  // ends at min(deadline, last event time). Returns the number of events
  // processed.
  size_t RunUntil(SimTime deadline);

  // Runs until the queue drains completely.
  size_t Run() { return RunUntil(kTimeNever); }

  // Requests that the run loop stop after the current event.
  void Stop() { stop_requested_ = true; }

  size_t pending_events() const { return queue_.size(); }
  uint64_t total_events_processed() const { return events_processed_; }

 private:
  // Repeating chains share a cancellation flag; see Every() in the .cc file.
  std::unordered_map<EventId, std::shared_ptr<bool>> repeating_flags_;
  EventQueue queue_;
  SimTime now_ = kTimeZero;
  bool stop_requested_ = false;
  uint64_t events_processed_ = 0;
};

}  // namespace gfair::simkit

#endif  // GFAIR_SIMKIT_SIMULATOR_H_
