// Simulator — single-threaded discrete-event simulation driver.
//
// Components schedule callbacks at absolute or relative simulated times; the
// driver pops events in order, advancing the virtual clock. Time never moves
// backwards, and within one instant events fire in scheduling order.
#ifndef GFAIR_SIMKIT_SIMULATOR_H_
#define GFAIR_SIMKIT_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/sim_time.h"
#include "simkit/event_queue.h"

namespace gfair::simkit {

class Simulator {
 public:
  SimTime Now() const { return now_; }

  // Schedules `callback` at absolute time `when` (>= Now()).
  EventId At(SimTime when, EventCallback callback);

  // Schedules `callback` `delay` from now (delay >= 0).
  EventId After(SimDuration delay, EventCallback callback);

  // Schedules `callback` every `period`, first firing at Now() + period.
  // Returns a stable handle for the whole repeating chain; Cancel(handle)
  // stops future firings no matter how many times the chain already fired.
  EventId Every(SimDuration period, std::function<void()> callback);
  bool Cancel(EventId id);

  // Reusable timers (see EventQueue): create once, then arm/disarm per
  // cycle. The cheap path for high-churn recurring events — the executor's
  // per-job completion events are the intended user.
  TimerId CreateTimer(EventCallback callback) {
    return queue_.CreateTimer(std::move(callback));
  }
  EventId ArmTimerAt(TimerId timer, SimTime when) {
    GFAIR_CHECK_MSG(when >= now_, "cannot schedule events in the past");
    return queue_.ArmTimer(timer, when);
  }
  bool DisarmTimer(TimerId timer) { return queue_.DisarmTimer(timer); }
  bool TimerArmed(TimerId timer) const { return queue_.TimerArmed(timer); }

  // Runs until the queue drains or the clock would pass `deadline`; the clock
  // ends at min(deadline, last event time). Returns the number of events
  // processed.
  size_t RunUntil(SimTime deadline);

  // Runs until the queue drains completely.
  size_t Run() { return RunUntil(kTimeNever); }

  // Requests that the run loop stop after the current event.
  void Stop() { stop_requested_ = true; }

  size_t pending_events() const { return queue_.size(); }
  uint64_t total_events_processed() const { return events_processed_; }

 private:
  // A repeating chain re-pushes itself under a fresh event id on every
  // firing. The shared cell tracks the chain's currently pending event id so
  // Cancel() — keyed by the chain's first id — can remove the live event from
  // the queue instead of leaving a stale callback behind.
  struct RepeatingChain {
    bool cancelled = false;
    EventId live;
  };
  // A handful of chains exist at a time (periodic scheduler timers), but
  // one-shot cancels consult this on the per-quantum path first — a linear
  // scan beats hashing at this size.
  std::vector<std::pair<EventId, std::shared_ptr<RepeatingChain>>> repeating_chains_;
  EventQueue queue_;
  SimTime now_ = kTimeZero;
  bool stop_requested_ = false;
  uint64_t events_processed_ = 0;
};

}  // namespace gfair::simkit

#endif  // GFAIR_SIMKIT_SIMULATOR_H_
