// EventQueue — the ordered heart of the discrete-event simulator.
//
// Events are (time, sequence, callback). Sequence numbers break ties so that
// two events scheduled for the same instant fire in scheduling order, which
// keeps runs deterministic. Cancellation is lazy: a cancelled event stays in
// the heap and is skipped on pop — but when tombstones outnumber live events
// ~5:1 the heap is compacted in one O(n) pass, so workloads that cancel far-future
// events at a steady rate (every suspend cancels the job's completion event)
// keep the heap proportional to the live event count instead of growing
// without bound. Compaction never changes pop order: the heap's (time, id)
// key is a strict total order.
//
// Timers are the cheap path for the arm/disarm churn above: a timer is a
// permanent slot holding its callback, created once, then re-armed with a
// fresh (time, id) heap entry each cycle. Arming draws ids from the same
// counter as Push, so the relative fire order of timers and one-shot events
// is exactly what the equivalent Push sequence would produce — swapping one
// for the other is invisible to the simulation. What changes is the cost:
// arm is a heap push plus one slot store, disarm is one slot store, and the
// liveness probe (pop, compaction) is an array compare instead of a hash
// lookup. The executor's per-job completion events — pushed and cancelled
// once per suspend/resume cycle, thousands per full-churn quantum — are the
// workload this exists for.
//
// Far band: entries scheduled more than an hour of simulated time ahead of
// the last fired event bypass the heap into an unsorted overflow vector.
// They only matter once the clock approaches the earliest of them, so the
// band is drained into the heap when the live heap front reaches (or the
// heap runs out before) that minimum — pop order is unchanged because the
// (time, id) key is a strict total order regardless of which container an
// entry waited in. The win is the steady state: a long job's completion
// event is armed thousands of quanta before it fires, and without the band
// every arm is a heap push and every compaction walks and re-heapifies all
// of them; with it they cost a vector append and compaction filters them
// without heap repair.
#ifndef GFAIR_SIMKIT_EVENT_QUEUE_H_
#define GFAIR_SIMKIT_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/check.h"
#include "common/sim_time.h"

namespace gfair::simkit {

using EventCallback = std::function<void()>;
using EventId = uint64_t;
using TimerId = uint32_t;
inline constexpr TimerId kInvalidTimer = static_cast<TimerId>(-1);

class EventQueue {
 public:
  // Enqueues `callback` to fire at `when`. Returns a handle usable with
  // Cancel().
  EventId Push(SimTime when, EventCallback callback);

  // Cancels a pending event. Returns false if the event already fired or was
  // already cancelled. Timer arms are not cancellable through this — use
  // DisarmTimer.
  bool Cancel(EventId id);

  // --- timers (see file comment) ---
  //
  // Allocates a permanent timer slot owning `callback`. Slots are never
  // freed; create one per long-lived recurring purpose (e.g. per job), not
  // per firing.
  TimerId CreateTimer(EventCallback callback);
  // Schedules the timer's callback at `when`. Precondition: not armed.
  // Returns the heap entry's event id (introspection; disarm by TimerId).
  // Defined inline below: arm/disarm run thousands of times per full-churn
  // quantum and the bodies are a handful of stores.
  EventId ArmTimer(TimerId timer, SimTime when);
  // Cancels a pending arm. Returns false if the timer was not armed (never
  // armed, already fired, or already disarmed). O(1), no heap access.
  bool DisarmTimer(TimerId timer);
  bool TimerArmed(TimerId timer) const {
    return timers_[timer].armed_id != 0;
  }

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

  // Timestamp of the earliest live event; kTimeNever when empty.
  SimTime NextTime() const;

  // Removes and returns the earliest live event. Precondition: !empty().
  struct PoppedEvent {
    SimTime time;
    EventId id;
    EventCallback callback;
  };
  PoppedEvent Pop();

 private:
  struct Entry {
    SimTime time;
    EventId id;
    // Owning timer slot, or kInvalidTimer for a one-shot Push event. Decides
    // where the entry's callback and liveness live: the timer slot (armed_id
    // must still equal `id`) or the callback table.
    TimerId timer = kInvalidTimer;
    // Min-heap on (time, id): earlier time first, then earlier scheduling.
    bool operator>(const Entry& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return id > other.id;
    }
  };

  static constexpr uint32_t kNoFarIndex = static_cast<uint32_t>(-1);

  struct TimerSlot {
    EventCallback callback;
    EventId armed_id = 0;  // 0 = not armed
    // Position of the armed entry inside far_, or kNoFarIndex when the arm
    // went to the heap (or the timer is not armed). Far entries only move on
    // swap-remove, drain, and compaction — all of which patch this — so a
    // disarm can splice its far entry out in O(1) instead of leaving a
    // tombstone. The common cycle (arm far, disarm before the horizon nears)
    // then never grows the far band or triggers compaction.
    uint32_t far_index = kNoFarIndex;
  };

  // Whether a heap entry will still fire (not cancelled/disarmed/superseded).
  bool IsLive(const Entry& entry) const {
    if (entry.timer != kInvalidTimer) {
      return timers_[entry.timer].armed_id == entry.id;
    }
    return callbacks_.Contains(entry.id);
  }

  // Open-addressing hash table from live EventId to its callback. Push and
  // Cancel run once per executor resume/suspend every quantum, so the table
  // avoids the per-event node allocation of std::unordered_map: slots live
  // in one flat array (id 0 = empty; real ids start at 1), probing is
  // linear, and erase backward-shifts the following cluster so lookups never
  // need tombstones. Ids are sequential, so the home slot multiplies by an
  // odd 64-bit constant first — mapping ids directly would lay a burst of
  // pushes out contiguously, and backward-shift erase walks to the end of a
  // cluster, turning each cancel O(cluster length).
  class CallbackTable {
   public:
    void Insert(EventId id, EventCallback callback);
    // Moves the callback out and erases the slot. Precondition: Contains(id).
    EventCallback Take(EventId id);
    bool Erase(EventId id);  // false when absent
    bool Contains(EventId id) const;
    size_t size() const { return size_; }

   private:
    struct Slot {
      EventId id = 0;
      EventCallback callback;
    };

    size_t Grow();  // doubles capacity, rehashes; returns new mask
    size_t FindSlot(EventId id) const;  // index of id's slot, or npos
    void EraseSlot(size_t pos);
    static size_t Home(EventId id, size_t mask) {
      return static_cast<size_t>(id * 0x9E3779B97F4A7C15ULL) & mask;
    }

    static constexpr size_t kNpos = static_cast<size_t>(-1);
    std::vector<Slot> slots_;  // power-of-two size (lazily initialized)
    size_t size_ = 0;
  };

  // Routes a fresh entry to the heap or, when it lies past the far horizon,
  // the far band. Shared by Push and ArmTimer; inline below.
  void Enqueue(const Entry& entry);

  void DropCancelledHead() const;
  // Rebuilds heap and far band keeping only live entries. O(total entries);
  // amortized O(1) per cancel since it only runs once tombstones exceed live
  // entries.
  void Compact();

  // Entries at or beyond this much simulated time past the last fired event
  // go to the far band instead of the heap. Must comfortably exceed every
  // recurring period in the system (quantum, balance, trade — minutes), so
  // steady-state recurring events never cycle through the band.
  static constexpr SimDuration kFarHorizon = 60 * 60 * 1000;  // 1 sim-hour

  // Moves the far band into the heap once the heap front (or heap
  // exhaustion) reaches the band's earliest entry. Mutates only the mutable
  // containers — logically const like DropCancelledHead.
  void MaybeDrainFar() const;

  // Min-heap over a flat vector (std::push_heap/pop_heap with greater<>) so
  // it can be compacted in place; callbacks live in a side table so cancelled
  // callbacks release their captures promptly.
  mutable std::vector<Entry> heap_;
  // Far band (see file comment): unsorted; `far_min_` tracks the minimum
  // entry time ever inserted since the last drain. Cancelled entries can
  // leave it lower than any live entry — that only costs a premature drain.
  mutable std::vector<Entry> far_;
  mutable SimTime far_min_ = kTimeNever;
  SimTime last_fired_ = 0;
  CallbackTable callbacks_;
  // Mutable for MaybeDrainFar: draining clears the drained entries'
  // far_index back-pointers — cache maintenance, not behavior.
  mutable std::vector<TimerSlot> timers_;
  EventId next_id_ = 1;
  size_t live_count_ = 0;
};

inline void EventQueue::Enqueue(const Entry& entry) {
  if (entry.time - last_fired_ >= kFarHorizon) {
    if (entry.timer != kInvalidTimer) {
      timers_[entry.timer].far_index = static_cast<uint32_t>(far_.size());
    }
    far_.push_back(entry);
    if (entry.time < far_min_) {
      far_min_ = entry.time;
    }
    return;
  }
  heap_.push_back(entry);
  std::push_heap(heap_.begin(), heap_.end(), std::greater<Entry>());
}

inline EventId EventQueue::ArmTimer(TimerId timer, SimTime when) {
  GFAIR_CHECK(timer < timers_.size());
  TimerSlot& slot = timers_[timer];
  GFAIR_CHECK_MSG(slot.armed_id == 0, "ArmTimer on an armed timer");
  const EventId id = next_id_++;
  Enqueue(Entry{when, id, timer});
  slot.armed_id = id;
  ++live_count_;
  return id;
}

inline bool EventQueue::DisarmTimer(TimerId timer) {
  GFAIR_CHECK(timer < timers_.size());
  TimerSlot& slot = timers_[timer];
  if (slot.armed_id == 0) {
    return false;
  }
  slot.armed_id = 0;
  --live_count_;
  if (slot.far_index != kNoFarIndex) {
    // Splice the far entry out (see TimerSlot::far_index); no tombstone.
    const uint32_t idx = slot.far_index;
    slot.far_index = kNoFarIndex;
    far_[idx] = far_.back();
    far_.pop_back();
    if (idx < far_.size() && far_[idx].timer != kInvalidTimer) {
      timers_[far_[idx].timer].far_index = idx;
    }
    // far_min_ may now under-estimate the surviving minimum; that only costs
    // a premature (harmless) drain.
    return true;
  }
  // Heap-resident arm: tombstone, same slack policy as Cancel (see
  // event_queue.cc).
  if (heap_.size() + far_.size() > 6 * live_count_ + 64) {
    Compact();
  }
  return true;
}

}  // namespace gfair::simkit

#endif  // GFAIR_SIMKIT_EVENT_QUEUE_H_
