// EventQueue — the ordered heart of the discrete-event simulator.
//
// Events are (time, sequence, callback). Sequence numbers break ties so that
// two events scheduled for the same instant fire in scheduling order, which
// keeps runs deterministic. Cancellation is lazy: a cancelled event stays in
// the heap but is skipped on pop.
#ifndef GFAIR_SIMKIT_EVENT_QUEUE_H_
#define GFAIR_SIMKIT_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/sim_time.h"

namespace gfair::simkit {

using EventCallback = std::function<void()>;
using EventId = uint64_t;

class EventQueue {
 public:
  // Enqueues `callback` to fire at `when`. Returns a handle usable with
  // Cancel().
  EventId Push(SimTime when, EventCallback callback);

  // Cancels a pending event. Returns false if the event already fired or was
  // already cancelled.
  bool Cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

  // Timestamp of the earliest live event; kTimeNever when empty.
  SimTime NextTime() const;

  // Removes and returns the earliest live event. Precondition: !empty().
  struct PoppedEvent {
    SimTime time;
    EventId id;
    EventCallback callback;
  };
  PoppedEvent Pop();

 private:
  struct Entry {
    SimTime time;
    EventId id;
    // Min-heap on (time, id): earlier time first, then earlier scheduling.
    bool operator>(const Entry& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return id > other.id;
    }
  };

  void DropCancelledHead() const;

  // Heap holds light entries; callbacks live in a side map so cancelled
  // callbacks release their captures promptly.
  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::unordered_map<EventId, EventCallback> callbacks_;
  EventId next_id_ = 1;
  size_t live_count_ = 0;
};

}  // namespace gfair::simkit

#endif  // GFAIR_SIMKIT_EVENT_QUEUE_H_
