// EventQueue — the ordered heart of the discrete-event simulator.
//
// Events are (time, sequence, callback). Sequence numbers break ties so that
// two events scheduled for the same instant fire in scheduling order, which
// keeps runs deterministic. Cancellation is lazy: a cancelled event stays in
// the heap and is skipped on pop — but when tombstones outnumber live events
// ~5:1 the heap is compacted in one O(n) pass, so workloads that cancel far-future
// events at a steady rate (every suspend cancels the job's completion event)
// keep the heap proportional to the live event count instead of growing
// without bound. Compaction never changes pop order: the heap's (time, id)
// key is a strict total order.
#ifndef GFAIR_SIMKIT_EVENT_QUEUE_H_
#define GFAIR_SIMKIT_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/check.h"
#include "common/sim_time.h"

namespace gfair::simkit {

using EventCallback = std::function<void()>;
using EventId = uint64_t;

class EventQueue {
 public:
  // Enqueues `callback` to fire at `when`. Returns a handle usable with
  // Cancel().
  EventId Push(SimTime when, EventCallback callback);

  // Cancels a pending event. Returns false if the event already fired or was
  // already cancelled.
  bool Cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

  // Timestamp of the earliest live event; kTimeNever when empty.
  SimTime NextTime() const;

  // Removes and returns the earliest live event. Precondition: !empty().
  struct PoppedEvent {
    SimTime time;
    EventId id;
    EventCallback callback;
  };
  PoppedEvent Pop();

 private:
  struct Entry {
    SimTime time;
    EventId id;
    // Min-heap on (time, id): earlier time first, then earlier scheduling.
    bool operator>(const Entry& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return id > other.id;
    }
  };

  // Open-addressing hash table from live EventId to its callback. Push and
  // Cancel run once per executor resume/suspend every quantum, so the table
  // avoids the per-event node allocation of std::unordered_map: slots live
  // in one flat array (id 0 = empty; real ids start at 1), probing is
  // linear, and erase backward-shifts the following cluster so lookups never
  // need tombstones. Ids are sequential, so the home slot multiplies by an
  // odd 64-bit constant first — mapping ids directly would lay a burst of
  // pushes out contiguously, and backward-shift erase walks to the end of a
  // cluster, turning each cancel O(cluster length).
  class CallbackTable {
   public:
    void Insert(EventId id, EventCallback callback);
    // Moves the callback out and erases the slot. Precondition: Contains(id).
    EventCallback Take(EventId id);
    bool Erase(EventId id);  // false when absent
    bool Contains(EventId id) const;
    size_t size() const { return size_; }

   private:
    struct Slot {
      EventId id = 0;
      EventCallback callback;
    };

    size_t Grow();  // doubles capacity, rehashes; returns new mask
    size_t FindSlot(EventId id) const;  // index of id's slot, or npos
    void EraseSlot(size_t pos);
    static size_t Home(EventId id, size_t mask) {
      return static_cast<size_t>(id * 0x9E3779B97F4A7C15ULL) & mask;
    }

    static constexpr size_t kNpos = static_cast<size_t>(-1);
    std::vector<Slot> slots_;  // power-of-two size (lazily initialized)
    size_t size_ = 0;
  };

  void DropCancelledHead() const;
  // Rebuilds the heap keeping only live entries. O(heap size); amortized
  // O(1) per cancel since it only runs once tombstones exceed live entries.
  void Compact();

  // Min-heap over a flat vector (std::push_heap/pop_heap with greater<>) so
  // it can be compacted in place; callbacks live in a side table so cancelled
  // callbacks release their captures promptly.
  mutable std::vector<Entry> heap_;
  CallbackTable callbacks_;
  EventId next_id_ = 1;
  size_t live_count_ = 0;
};

}  // namespace gfair::simkit

#endif  // GFAIR_SIMKIT_EVENT_QUEUE_H_
