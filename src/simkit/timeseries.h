// TimeSeries — piecewise-constant metric recording over simulated time.
//
// A TimeSeries records (time, value) samples where each value holds until the
// next sample. It answers time-weighted integrals and averages over windows,
// which is exactly what GPU-time accounting needs ("how many GPU-seconds did
// user U hold between t0 and t1?").
#ifndef GFAIR_SIMKIT_TIMESERIES_H_
#define GFAIR_SIMKIT_TIMESERIES_H_

#include <vector>

#include "common/sim_time.h"

namespace gfair::simkit {

class TimeSeries {
 public:
  // Records that the metric takes `value` from `time` onward. Times must be
  // non-decreasing; a sample at the same time overwrites the previous one.
  void Record(SimTime time, double value);

  bool empty() const { return points_.empty(); }
  size_t size() const { return points_.size(); }

  // Value in effect at `time` (last sample at or before it); `initial` if
  // before the first sample.
  double ValueAt(SimTime time, double initial = 0.0) const;

  // ∫ value dt over [from, to), in value·milliseconds.
  double IntegralOver(SimTime from, SimTime to, double initial = 0.0) const;

  // Time-weighted mean over [from, to).
  double AverageOver(SimTime from, SimTime to, double initial = 0.0) const;

  struct Point {
    SimTime time;
    double value;
  };
  const std::vector<Point>& points() const { return points_; }

 private:
  std::vector<Point> points_;
};

// Monotone counter sampled against simulated time; Rate() gives the average
// increments-per-second over a window.
class CounterSeries {
 public:
  void Add(SimTime time, double delta = 1.0);
  double TotalUpTo(SimTime time) const;
  double Total() const { return total_; }
  // Average rate (per simulated second) over [from, to).
  double Rate(SimTime from, SimTime to) const;

 private:
  struct Point {
    SimTime time;
    double cumulative;
  };
  std::vector<Point> points_;
  double total_ = 0.0;
};

}  // namespace gfair::simkit

#endif  // GFAIR_SIMKIT_TIMESERIES_H_
