#include "simkit/timeseries.h"

#include <algorithm>

#include "common/check.h"

namespace gfair::simkit {

void TimeSeries::Record(SimTime time, double value) {
  if (!points_.empty()) {
    GFAIR_CHECK_MSG(time >= points_.back().time, "TimeSeries samples must be ordered");
    if (points_.back().time == time) {
      points_.back().value = value;
      return;
    }
  }
  points_.push_back(Point{time, value});
}

double TimeSeries::ValueAt(SimTime time, double initial) const {
  // First point strictly after `time`, then step back one.
  auto it = std::upper_bound(points_.begin(), points_.end(), time,
                             [](SimTime t, const Point& p) { return t < p.time; });
  if (it == points_.begin()) {
    return initial;
  }
  return std::prev(it)->value;
}

double TimeSeries::IntegralOver(SimTime from, SimTime to, double initial) const {
  GFAIR_CHECK(from <= to);
  if (from == to) {
    return 0.0;
  }
  double integral = 0.0;
  SimTime cursor = from;
  double current = ValueAt(from, initial);
  auto it = std::upper_bound(points_.begin(), points_.end(), from,
                             [](SimTime t, const Point& p) { return t < p.time; });
  for (; it != points_.end() && it->time < to; ++it) {
    integral += current * static_cast<double>(it->time - cursor);
    cursor = it->time;
    current = it->value;
  }
  integral += current * static_cast<double>(to - cursor);
  return integral;
}

double TimeSeries::AverageOver(SimTime from, SimTime to, double initial) const {
  GFAIR_CHECK(from < to);
  return IntegralOver(from, to, initial) / static_cast<double>(to - from);
}

void CounterSeries::Add(SimTime time, double delta) {
  GFAIR_CHECK(points_.empty() || time >= points_.back().time);
  total_ += delta;
  if (!points_.empty() && points_.back().time == time) {
    points_.back().cumulative = total_;
  } else {
    points_.push_back(Point{time, total_});
  }
}

double CounterSeries::TotalUpTo(SimTime time) const {
  auto it = std::upper_bound(points_.begin(), points_.end(), time,
                             [](SimTime t, const Point& p) { return t < p.time; });
  if (it == points_.begin()) {
    return 0.0;
  }
  return std::prev(it)->cumulative;
}

double CounterSeries::Rate(SimTime from, SimTime to) const {
  GFAIR_CHECK(from < to);
  const double delta = TotalUpTo(to) - TotalUpTo(from);
  return delta / ToSeconds(to - from);
}

}  // namespace gfair::simkit
