#include "workload/trace_gen.h"

#include <algorithm>
#include <cmath>

#include "cluster/gpu.h"
#include "common/check.h"

namespace gfair::workload {

double TraceGenerator::MinibatchesFor(const ModelProfile& model, int gang_size,
                                      SimDuration duration_on_k80) {
  GFAIR_CHECK(duration_on_k80 > 0);
  const double rate = model.GangThroughput(cluster::GpuGeneration::kK80, gang_size);
  return rate * ToSeconds(duration_on_k80);
}

std::vector<TraceEntry> TraceGenerator::Generate(
    const std::vector<UserWorkloadSpec>& specs, const std::vector<UserId>& user_ids) {
  GFAIR_CHECK(specs.size() == user_ids.size());
  std::vector<TraceEntry> trace;

  for (size_t u = 0; u < specs.size(); ++u) {
    const UserWorkloadSpec& spec = specs[u];
    GFAIR_CHECK(spec.mean_interarrival > 0);
    GFAIR_CHECK(spec.mean_duration_k80 > 0);
    GFAIR_CHECK(spec.start <= spec.stop);
    // Per-user stream so adding a user does not perturb others' draws.
    Rng user_rng = rng_.Fork();

    // Resolve the model mix into (ModelId, weight).
    std::vector<ModelId> models;
    std::vector<double> weights;
    if (spec.model_mix.empty()) {
      for (const auto& model : zoo_.models()) {
        models.push_back(model.id);
        weights.push_back(1.0);
      }
    } else {
      for (const auto& [name, weight] : spec.model_mix) {
        models.push_back(zoo_.GetByName(name).id);
        weights.push_back(weight);
      }
    }
    GFAIR_CHECK(!models.empty());

    std::vector<double> gang_weights;
    for (const auto& [size, weight] : spec.gang_sizes.entries) {
      GFAIR_CHECK(size >= 1);
      gang_weights.push_back(weight);
    }
    GFAIR_CHECK(!gang_weights.empty());

    // The log-normal is parameterized so that its mean equals
    // spec.mean_duration_k80: mean = exp(mu + sigma^2/2).
    const double sigma = spec.duration_sigma;
    const double mu =
        std::log(static_cast<double>(spec.mean_duration_k80)) - sigma * sigma / 2.0;

    GFAIR_CHECK(spec.diurnal_amplitude >= 0.0 && spec.diurnal_amplitude < 1.0);
    GFAIR_CHECK(spec.diurnal_period > 0);
    SimTime t = spec.start;
    int generated = 0;
    while (spec.max_jobs < 0 || generated < spec.max_jobs) {
      t += static_cast<SimDuration>(
          user_rng.Exponential(static_cast<double>(spec.mean_interarrival)));
      if (t >= spec.stop) {
        break;
      }
      if (spec.diurnal_amplitude > 0.0) {
        // Thinning: keep the arrival with probability proportional to the
        // instantaneous rate (max rate = 1 + amplitude).
        const double phase = 2.0 * M_PI * static_cast<double>(t % spec.diurnal_period) /
                             static_cast<double>(spec.diurnal_period);
        const double relative_rate =
            (1.0 + spec.diurnal_amplitude * std::sin(phase)) /
            (1.0 + spec.diurnal_amplitude);
        if (!user_rng.Bernoulli(relative_rate)) {
          continue;
        }
      }
      const ModelId model_id = models[user_rng.WeightedIndex(weights)];
      const int gang_size =
          spec.gang_sizes.entries[user_rng.WeightedIndex(gang_weights)].first;
      // Clamp durations into [1 minute, 10x mean] to keep the tail heavy but
      // finite within experiment horizons.
      double duration_ms = user_rng.LogNormal(mu, sigma);
      duration_ms = std::clamp(duration_ms, static_cast<double>(kMinute),
                               10.0 * static_cast<double>(spec.mean_duration_k80));
      const double work = MinibatchesFor(zoo_.Get(model_id), gang_size,
                                         static_cast<SimDuration>(duration_ms));
      trace.push_back(TraceEntry{user_ids[u], model_id, gang_size, work, t});
      ++generated;
    }
  }

  std::stable_sort(trace.begin(), trace.end(),
                   [](const TraceEntry& a, const TraceEntry& b) {
                     return a.arrival < b.arrival;
                   });
  return trace;
}

}  // namespace gfair::workload
