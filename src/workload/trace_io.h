// Trace serialization — CSV import/export of job traces.
//
// Format (header required, one job per line):
//   arrival_ms,user,model,gang_size,minibatches[,weight]
// `user` is the user's NAME; ParseTrace resolves (or creates) users in the
// given table so traces are portable across runs and tools.
#ifndef GFAIR_WORKLOAD_TRACE_IO_H_
#define GFAIR_WORKLOAD_TRACE_IO_H_

#include <string>
#include <vector>

#include "workload/model_zoo.h"
#include "workload/trace_gen.h"
#include "workload/user.h"

namespace gfair::workload {

// A TraceEntry plus the per-job weight (TraceEntry itself predates weights;
// generated traces default to 1.0).
struct TraceFileEntry {
  TraceEntry entry;
  double weight = 1.0;
};

// Renders entries as CSV. User names come from `users`; model names from
// `zoo`. Entries are emitted in the given order.
std::string SerializeTrace(const std::vector<TraceFileEntry>& entries,
                           const UserTable& users, const ModelZoo& zoo);

// Convenience overload for generator output.
std::string SerializeTrace(const std::vector<TraceEntry>& entries,
                           const UserTable& users, const ModelZoo& zoo);

// Parses CSV produced by SerializeTrace (or hand-written). Unknown user
// names are created in `users` with 1.0 tickets (adjust afterwards if
// needed); unknown models are an error. On failure returns false and sets
// `error` to a message including the 1-based line number.
bool ParseTrace(const std::string& csv, const ModelZoo& zoo, UserTable* users,
                std::vector<TraceFileEntry>* out, std::string* error);

// File wrappers; return false on I/O failure (ParseTraceFile also surfaces
// parse errors through `error`).
bool WriteTraceFile(const std::string& path, const std::vector<TraceFileEntry>& entries,
                    const UserTable& users, const ModelZoo& zoo);
bool ReadTraceFile(const std::string& path, const ModelZoo& zoo, UserTable* users,
                   std::vector<TraceFileEntry>* out, std::string* error);

}  // namespace gfair::workload

#endif  // GFAIR_WORKLOAD_TRACE_IO_H_
