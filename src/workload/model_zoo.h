// ModelZoo — deep-learning training models and their per-generation
// throughput profiles.
//
// This is the calibration table standing in for the paper's measured jobs.
// Throughputs are mini-batches per second on ONE GPU of each generation; the
// V100/K80 speedup column spans ~1.2x (VAE) to ~5.9x (ResNeXt-50), matching
// the "variable marginal utility" spread that motivates resource trading.
// Absolute rates are representative, not measured; only ratios drive
// scheduler behaviour.
#ifndef GFAIR_WORKLOAD_MODEL_ZOO_H_
#define GFAIR_WORKLOAD_MODEL_ZOO_H_

#include <array>
#include <string>
#include <vector>

#include "cluster/gpu.h"
#include "common/check.h"
#include "common/types.h"

namespace gfair::workload {

struct ModelIdTag {};
using ModelId = StrongId<ModelIdTag>;

struct ModelProfile {
  ModelId id;
  std::string name;
  // Mini-batches/second on a single GPU of each generation.
  cluster::PerGeneration<double> throughput;
  // Checkpoint size in GB — drives suspend/resume/migration latency.
  double checkpoint_gb;
  // Device memory demand per GPU in GB (placement feasibility check).
  double memory_per_gpu_gb;
  // Multi-GPU scaling: total throughput of a k-GPU gang is
  //   k * throughput[gen] * scaling_efficiency^(log2 k).
  double scaling_efficiency;

  // Whether this model's per-GPU working set fits a generation's device
  // memory. Jobs of a model that does not fit a generation can never be
  // placed, probed, or traded onto that pool.
  bool FitsGeneration(cluster::GpuGeneration gen) const;

  double SpeedupOver(cluster::GpuGeneration fast, cluster::GpuGeneration slow) const {
    return throughput[cluster::GenerationIndex(fast)] /
           throughput[cluster::GenerationIndex(slow)];
  }

  // Total gang throughput (mini-batches/s) on `gang_size` GPUs of `gen`.
  double GangThroughput(cluster::GpuGeneration gen, int gang_size) const;

  // Precomputed scaling_efficiency^(log2 k) for k in [1, kMaxCachedGang]
  // (index k-1). GangThroughput sits on the executor's per-resume hot path,
  // where the pow/log2 pair dominated the call; the table reproduces the
  // formula bit-exactly. Filled by ModelZoo::Register — directly
  // brace-constructed profiles (tests) leave eff_cached_upto at 0 and take
  // the pow() fallback.
  void PrecomputeGangEfficiency();
  static constexpr int kMaxCachedGang = 32;
  std::array<double, kMaxCachedGang> gang_efficiency{};
  int eff_cached_upto = 0;
};

class ModelZoo {
 public:
  // The default calibrated zoo (11 models, speedups 1.2x–5.9x V100/K80).
  static const ModelZoo& Default();

  // Empty zoo for tests that register synthetic models.
  ModelZoo() = default;

  // Registers a model; `throughput` must be positive and non-decreasing in
  // generation order (newer GPUs are never slower). Returns its id.
  ModelId Register(std::string name, cluster::PerGeneration<double> throughput,
                   double checkpoint_gb, double memory_per_gpu_gb,
                   double scaling_efficiency = 0.92);

  // Defined inline: latency/rate lookups run on every suspend/resume.
  const ModelProfile& Get(ModelId id) const {
    GFAIR_CHECK(id.valid() && id.value() < models_.size());
    return models_[id.value()];
  }
  // Looks a model up by name; CHECK-fails when absent.
  const ModelProfile& GetByName(const std::string& name) const;
  bool Contains(const std::string& name) const;

  size_t size() const { return models_.size(); }
  const std::vector<ModelProfile>& models() const { return models_; }

 private:
  std::vector<ModelProfile> models_;
};

}  // namespace gfair::workload

#endif  // GFAIR_WORKLOAD_MODEL_ZOO_H_
