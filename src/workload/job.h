// Job — a deep-learning training job (a gang of GPUs training one model).
//
// A job is submitted by a user, demands `gang_size` GPUs on a single server
// (all-or-nothing gang semantics), and finishes after completing
// `total_minibatches` of work. Work progresses at the model's per-generation
// throughput; the executor charges progress, the scheduler decides placement
// and time slicing.
#ifndef GFAIR_WORKLOAD_JOB_H_
#define GFAIR_WORKLOAD_JOB_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/gpu.h"
#include "common/check.h"
#include "common/sim_time.h"
#include "common/types.h"
#include "workload/model_zoo.h"

namespace gfair::workload {

enum class JobState : uint8_t {
  kQueued = 0,     // submitted, not yet resident on any server
  kSuspended = 1,  // resident on a server, not holding GPUs
  kRunning = 2,    // holding its gang of GPUs
  kMigrating = 3,  // checkpoint in flight between servers
  kFinished = 4,
};

const char* JobStateName(JobState state);

struct Job {
  JobId id;
  UserId user;
  ModelId model;
  int gang_size = 1;
  double total_minibatches = 0.0;
  SimTime submit_time = kTimeZero;
  // Intra-user priority: the user's pool tickets are split across its jobs
  // proportional to weight x gang_size. Does not affect other users' shares.
  double weight = 1.0;

  // --- runtime state (owned by the executor / scheduler) ---
  JobState state = JobState::kQueued;
  // Server the job is resident on (valid in kSuspended/kRunning/kMigrating).
  ServerId server = ServerId::Invalid();
  double completed_minibatches = 0.0;
  SimTime finish_time = kTimeNever;

  // Progress durably captured by the last checkpoint (taken on every
  // suspend/migration); a crash rolls completed_minibatches back to this.
  double checkpointed_minibatches = 0.0;

  // --- accounting ---
  cluster::PerGeneration<double> gpu_ms_by_gen{};  // GPU-milliseconds consumed
  int num_suspends = 0;
  int num_resumes = 0;
  int num_migrations = 0;
  int num_crashes = 0;
  // Checkpoint transfers that failed to land (flaky network or destination
  // died mid-flight); each one bounces the job back to its source server.
  int num_migration_failures = 0;
  // Times the job lost its server (node failure) and went back to kQueued.
  int num_orphanings = 0;
  SimDuration overhead_ms = 0;  // time lost to suspend/resume/migration

  bool finished() const { return state == JobState::kFinished; }
  bool resident() const { return server.valid(); }
  double remaining_minibatches() const {
    return total_minibatches - completed_minibatches;
  }
  // Total GPU-milliseconds across generations.
  double TotalGpuMs() const {
    double total = 0.0;
    for (double v : gpu_ms_by_gen) {
      total += v;
    }
    return total;
  }
};

// Owning table of all jobs in a run. Jobs are created through the table so
// ids are dense and lookups are O(1). Pointers remain valid for the table's
// lifetime.
class JobTable {
 public:
  Job& Create(UserId user, ModelId model, int gang_size, double total_minibatches,
              SimTime submit_time);

  // Defined inline: the executor and scheduler look jobs up on every
  // suspend/resume/charge each quantum.
  Job& Get(JobId id) {
    GFAIR_CHECK(Contains(id));
    return *jobs_[id.value()];
  }
  const Job& Get(JobId id) const {
    GFAIR_CHECK(Contains(id));
    return *jobs_[id.value()];
  }
  bool Contains(JobId id) const { return id.valid() && id.value() < jobs_.size(); }

  // Cache hint for an upcoming Get(id) in a walk over scattered job ids (the
  // record lives behind a pointer, so a miss costs a dependent-load chain).
  // No effect on behavior.
  void Prefetch(JobId id) const {
    if (Contains(id)) {
      __builtin_prefetch(jobs_[id.value()].get());
    }
  }

  size_t size() const { return jobs_.size(); }

  // Iterates over all jobs (finished included).
  std::vector<Job*> All();
  std::vector<const Job*> All() const;

 private:
  std::vector<std::unique_ptr<Job>> jobs_;
};

}  // namespace gfair::workload

#endif  // GFAIR_WORKLOAD_JOB_H_
