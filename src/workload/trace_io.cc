#include "workload/trace_io.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/check.h"
#include "common/flags.h"

namespace gfair::workload {

namespace {
constexpr char kHeader[] = "arrival_ms,user,model,gang_size,minibatches,weight";

bool ParsePositiveDouble(const std::string& text, double* out) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  // strtod accepts "nan" and "inf" spellings; "nan" even passes a `<= 0`
  // test (all comparisons are false), and inf minibatches would make a job
  // that never finishes. Require a finite positive value.
  if (end == nullptr || *end != '\0' || !std::isfinite(value) || value <= 0.0) {
    return false;
  }
  *out = value;
  return true;
}

// Names are CSV fields without quoting support, so a delimiter or line break
// inside one would silently shift every later column at parse time.
bool NameIsSerializable(const std::string& name) {
  return name.find_first_of(",\r\n") == std::string::npos;
}
}  // namespace

std::string SerializeTrace(const std::vector<TraceFileEntry>& entries,
                           const UserTable& users, const ModelZoo& zoo) {
  std::ostringstream out;
  out << kHeader << '\n';
  for (const auto& file_entry : entries) {
    const TraceEntry& entry = file_entry.entry;
    const std::string& user_name = users.Get(entry.user).name;
    const std::string& model_name = zoo.Get(entry.model).name;
    GFAIR_CHECK_MSG(NameIsSerializable(user_name),
                    "user name contains a CSV delimiter or line break");
    GFAIR_CHECK_MSG(NameIsSerializable(model_name),
                    "model name contains a CSV delimiter or line break");
    char line[256];
    const int written =
        std::snprintf(line, sizeof(line), "%lld,%s,%s,%d,%.6f,%.4f",
                      static_cast<long long>(entry.arrival), user_name.c_str(),
                      model_name.c_str(), entry.gang_size, entry.total_minibatches,
                      file_entry.weight);
    GFAIR_CHECK(written >= 0);
    if (static_cast<size_t>(written) < sizeof(line)) {
      out << line << '\n';
    } else {
      // Row longer than the stack buffer (very long names): redo into a
      // right-sized heap buffer instead of silently truncating the row.
      std::vector<char> big(static_cast<size_t>(written) + 1);
      std::snprintf(big.data(), big.size(), "%lld,%s,%s,%d,%.6f,%.4f",
                    static_cast<long long>(entry.arrival), user_name.c_str(),
                    model_name.c_str(), entry.gang_size, entry.total_minibatches,
                    file_entry.weight);
      out << big.data() << '\n';
    }
  }
  return out.str();
}

std::string SerializeTrace(const std::vector<TraceEntry>& entries,
                           const UserTable& users, const ModelZoo& zoo) {
  std::vector<TraceFileEntry> file_entries;
  file_entries.reserve(entries.size());
  for (const auto& entry : entries) {
    file_entries.push_back(TraceFileEntry{entry, 1.0});
  }
  return SerializeTrace(file_entries, users, zoo);
}

bool ParseTrace(const std::string& csv, const ModelZoo& zoo, UserTable* users,
                std::vector<TraceFileEntry>* out, std::string* error) {
  GFAIR_CHECK(users != nullptr && out != nullptr && error != nullptr);
  out->clear();
  error->clear();

  std::istringstream in(csv);
  std::string line;
  size_t line_number = 0;
  bool saw_header = false;

  auto fail = [&](const std::string& message) {
    *error = "line " + std::to_string(line_number) + ": " + message;
    return false;
  };

  while (std::getline(in, line)) {
    ++line_number;
    // Strip trailing CR for files written on Windows.
    if (!line.empty() && line.back() == '\r') {
      line.pop_back();
    }
    const std::string trimmed_probe = line;
    if (trimmed_probe.empty() || trimmed_probe[0] == '#') {
      continue;
    }
    if (!saw_header) {
      const auto headers = SplitAndTrim(line, ',');
      if (headers.size() < 5 || headers[0] != "arrival_ms" || headers[1] != "user") {
        return fail("expected header '" + std::string(kHeader) + "'");
      }
      saw_header = true;
      continue;
    }

    const auto fields = SplitAndTrim(line, ',');
    if (fields.size() != 5 && fields.size() != 6) {
      return fail("expected 5 or 6 fields, got " + std::to_string(fields.size()));
    }

    TraceFileEntry file_entry;
    TraceEntry& entry = file_entry.entry;

    char* end = nullptr;
    const long long arrival = std::strtoll(fields[0].c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || arrival < 0) {
      return fail("bad arrival_ms '" + fields[0] + "'");
    }
    entry.arrival = arrival;

    if (fields[1].empty()) {
      return fail("empty user name");
    }
    UserId user = UserId::Invalid();
    for (const auto& existing : users->users()) {
      if (existing.name == fields[1]) {
        user = existing.id;
        break;
      }
    }
    if (!user.valid()) {
      user = users->Create(fields[1]).id;
    }
    entry.user = user;

    if (!zoo.Contains(fields[2])) {
      return fail("unknown model '" + fields[2] + "'");
    }
    entry.model = zoo.GetByName(fields[2]).id;

    const long long gang = std::strtoll(fields[3].c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || gang < 1 || gang > 1024) {
      return fail("bad gang_size '" + fields[3] + "'");
    }
    entry.gang_size = static_cast<int>(gang);

    if (!ParsePositiveDouble(fields[4], &entry.total_minibatches)) {
      return fail("bad minibatches '" + fields[4] + "'");
    }
    if (fields.size() == 6 && !ParsePositiveDouble(fields[5], &file_entry.weight)) {
      return fail("bad weight '" + fields[5] + "'");
    }
    out->push_back(file_entry);
  }
  if (!saw_header) {
    line_number = 1;
    return fail("empty trace (no header)");
  }
  return true;
}

bool WriteTraceFile(const std::string& path, const std::vector<TraceFileEntry>& entries,
                    const UserTable& users, const ModelZoo& zoo) {
  std::ofstream file(path);
  if (!file) {
    return false;
  }
  file << SerializeTrace(entries, users, zoo);
  return static_cast<bool>(file);
}

bool ReadTraceFile(const std::string& path, const ModelZoo& zoo, UserTable* users,
                   std::vector<TraceFileEntry>* out, std::string* error) {
  GFAIR_CHECK(error != nullptr);
  std::ifstream file(path);
  if (!file) {
    *error = "cannot open '" + path + "'";
    return false;
  }
  std::ostringstream content;
  content << file.rdbuf();
  return ParseTrace(content.str(), zoo, users, out, error);
}

}  // namespace gfair::workload
