// User — a tenant of the cluster holding fair-share tickets.
#ifndef GFAIR_WORKLOAD_USER_H_
#define GFAIR_WORKLOAD_USER_H_

#include <string>
#include <deque>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace gfair::workload {

struct User {
  UserId id;
  std::string name;
  Tickets tickets = 1.0;
  // Optional accounting group (team / org). Empty = ungrouped. With
  // hierarchical sharing enabled, cluster tickets are first split across
  // groups, then within each group across its ACTIVE users — so one group's
  // share does not grow with its headcount.
  std::string group;
};

class UserTable {
 public:
  User& Create(std::string name, Tickets tickets = 1.0);
  // Creates a user belonging to `group` (see User::group).
  User& CreateInGroup(std::string name, std::string group, Tickets tickets = 1.0);

  User& Get(UserId id);
  const User& Get(UserId id) const;
  bool Contains(UserId id) const { return id.valid() && id.value() < users_.size(); }

  size_t size() const { return users_.size(); }
  const std::deque<User>& users() const { return users_; }

  Tickets TotalTickets() const;

 private:
  std::deque<User> users_;
};

}  // namespace gfair::workload

#endif  // GFAIR_WORKLOAD_USER_H_
