#include "workload/user.h"

namespace gfair::workload {

User& UserTable::Create(std::string name, Tickets tickets) {
  GFAIR_CHECK(!name.empty());
  GFAIR_CHECK(tickets > 0.0);
  User user;
  user.id = UserId(static_cast<uint32_t>(users_.size()));
  user.name = std::move(name);
  user.tickets = tickets;
  users_.push_back(std::move(user));
  return users_.back();
}

User& UserTable::CreateInGroup(std::string name, std::string group, Tickets tickets) {
  User& user = Create(std::move(name), tickets);
  user.group = std::move(group);
  return user;
}

User& UserTable::Get(UserId id) {
  GFAIR_CHECK(Contains(id));
  return users_[id.value()];
}

const User& UserTable::Get(UserId id) const {
  GFAIR_CHECK(Contains(id));
  return users_[id.value()];
}

Tickets UserTable::TotalTickets() const {
  Tickets total = 0.0;
  for (const auto& user : users_) {
    total += user.tickets;
  }
  return total;
}

}  // namespace gfair::workload
