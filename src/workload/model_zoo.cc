#include "workload/model_zoo.h"

#include <cmath>

#include "common/check.h"

namespace gfair::workload {

bool ModelProfile::FitsGeneration(cluster::GpuGeneration gen) const {
  return memory_per_gpu_gb <= cluster::SpecFor(gen).memory_gb;
}

double ModelProfile::GangThroughput(cluster::GpuGeneration gen, int gang_size) const {
  GFAIR_CHECK(gang_size >= 1);
  const double per_gpu = throughput[cluster::GenerationIndex(gen)];
  const double efficiency =
      gang_size <= eff_cached_upto
          ? gang_efficiency[static_cast<size_t>(gang_size - 1)]
          : std::pow(scaling_efficiency, std::log2(gang_size));
  return static_cast<double>(gang_size) * per_gpu * efficiency;
}

void ModelProfile::PrecomputeGangEfficiency() {
  for (int k = 1; k <= kMaxCachedGang; ++k) {
    gang_efficiency[static_cast<size_t>(k - 1)] =
        std::pow(scaling_efficiency, std::log2(k));
  }
  eff_cached_upto = kMaxCachedGang;
}

ModelId ModelZoo::Register(std::string name, cluster::PerGeneration<double> throughput,
                           double checkpoint_gb, double memory_per_gpu_gb,
                           double scaling_efficiency) {
  GFAIR_CHECK(!name.empty());
  GFAIR_CHECK(checkpoint_gb >= 0.0 && memory_per_gpu_gb > 0.0);
  GFAIR_CHECK(scaling_efficiency > 0.0 && scaling_efficiency <= 1.0);
  for (size_t g = 0; g < cluster::kNumGenerations; ++g) {
    GFAIR_CHECK_MSG(throughput[g] > 0.0, "throughput must be positive");
    if (g > 0) {
      GFAIR_CHECK_MSG(throughput[g] >= throughput[g - 1],
                      "newer generations must not be slower");
    }
  }
  GFAIR_CHECK_MSG(!Contains(name), "duplicate model name");
  const ModelId id(static_cast<uint32_t>(models_.size()));
  models_.push_back(ModelProfile{id, std::move(name), throughput, checkpoint_gb,
                                 memory_per_gpu_gb, scaling_efficiency});
  models_.back().PrecomputeGangEfficiency();
  return id;
}

const ModelProfile& ModelZoo::GetByName(const std::string& name) const {
  for (const auto& model : models_) {
    if (model.name == name) {
      return model;
    }
  }
  GFAIR_CHECK_MSG(false, "unknown model name");
  __builtin_unreachable();
}

bool ModelZoo::Contains(const std::string& name) const {
  for (const auto& model : models_) {
    if (model.name == name) {
      return true;
    }
  }
  return false;
}

const ModelZoo& ModelZoo::Default() {
  static const ModelZoo zoo = [] {
    ModelZoo z;
    // name                 {K80,   P40,   P100,  V100}  ckptGB memGB eff
    z.Register("VAE", {{55.0, 58.0, 61.0, 66.0}}, 0.2, 1.0, 0.85);
    z.Register("SuperResolution", {{22.0, 30.0, 37.0, 48.0}}, 0.4, 2.0, 0.88);
    z.Register("GRU-LM", {{10.0, 15.0, 19.0, 25.0}}, 1.2, 4.0, 0.90);
    z.Register("LSTM-LM", {{8.0, 13.0, 17.0, 22.4}}, 1.5, 5.0, 0.90);
    z.Register("DCGAN", {{16.0, 28.0, 38.0, 50.0}}, 0.6, 3.0, 0.90);
    z.Register("DeepSpeech2", {{4.0, 8.0, 10.5, 13.6}}, 2.0, 7.0, 0.92);
    z.Register("ResNet-18", {{6.0, 13.0, 17.0, 23.0}}, 0.5, 4.0, 0.94);
    z.Register("InceptionV3", {{2.4, 5.5, 7.2, 10.1}}, 1.0, 8.0, 0.94);
    z.Register("ResNet-50", {{2.0, 5.0, 6.4, 9.2}}, 1.0, 9.0, 0.94);
    z.Register("Transformer", {{1.5, 3.9, 5.3, 7.8}}, 2.5, 10.0, 0.93);
    z.Register("ResNeXt-50", {{1.2, 3.4, 4.6, 7.1}}, 1.1, 10.0, 0.94);
    // A large language model whose 14 GB working set exceeds the K80's 12 GB:
    // it can only ever run on P40/P100/V100 (memory-feasibility constraint).
    z.Register("MegaLM", {{0.8, 2.0, 2.6, 3.6}}, 8.0, 14.0, 0.92);
    return z;
  }();
  return zoo;
}

}  // namespace gfair::workload
