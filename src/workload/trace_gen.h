// TraceGenerator — synthetic multi-user DLT workload traces.
//
// Stands in for the production traces the paper replays: per-user Poisson
// arrivals, a heavy-tailed (log-normal) job-duration distribution, a gang
// size mix dominated by 1-GPU jobs with a tail of 2/4/8-GPU gangs, and a
// per-user model mix (which is what makes trading interesting — users whose
// jobs barely speed up on V100s vs users whose jobs speed up a lot).
#ifndef GFAIR_WORKLOAD_TRACE_GEN_H_
#define GFAIR_WORKLOAD_TRACE_GEN_H_

#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"
#include "common/types.h"
#include "workload/job.h"
#include "workload/model_zoo.h"

namespace gfair::workload {

// Discrete distribution over gang sizes.
struct GangSizeDist {
  // (gang size, weight) pairs; weights need not be normalized.
  std::vector<std::pair<int, double>> entries;

  // The mix used by the paper-scale experiments: mostly 1-GPU jobs with a
  // tail of multi-GPU gangs.
  static GangSizeDist Typical() {
    return GangSizeDist{{{1, 0.60}, {2, 0.20}, {4, 0.12}, {8, 0.08}}};
  }
  static GangSizeDist SingleGpuOnly() { return GangSizeDist{{{1, 1.0}}}; }
  // Approximates the public Microsoft Philly trace's gang-size distribution
  // (dominated by 1-GPU jobs, with 4/8-GPU spikes at framework defaults).
  static GangSizeDist PhillyLike() {
    return GangSizeDist{{{1, 0.70}, {2, 0.09}, {4, 0.12}, {8, 0.09}}};
  }
};

// Everything needed to synthesize one user's job stream.
struct UserWorkloadSpec {
  std::string name;
  Tickets tickets = 1.0;
  // (model name, weight); empty means uniform over the whole zoo.
  std::vector<std::pair<std::string, double>> model_mix;
  // Mean job inter-arrival time. Arrivals are Poisson within [start, stop).
  SimDuration mean_interarrival = Minutes(20);
  // Standalone job duration when run uninterrupted on K80 GPUs; log-normal
  // with this mean and sigma (of the underlying normal).
  SimDuration mean_duration_k80 = Hours(2);
  double duration_sigma = 0.8;
  GangSizeDist gang_sizes = GangSizeDist::Typical();
  SimTime start = kTimeZero;
  SimTime stop = Hours(12);
  // Diurnal load modulation: instantaneous arrival rate is scaled by
  //   1 + diurnal_amplitude * sin(2*pi * t / diurnal_period)
  // (0 = flat Poisson). Mimics the day/night cycle of production traces.
  double diurnal_amplitude = 0.0;
  SimDuration diurnal_period = Hours(24);
  // Caps the number of jobs generated for this user; -1 = unlimited.
  int max_jobs = -1;
};

// A job to submit at `arrival` (ids are assigned at submission time).
struct TraceEntry {
  UserId user;
  ModelId model;
  int gang_size;
  double total_minibatches;
  SimTime arrival;
};

class TraceGenerator {
 public:
  TraceGenerator(const ModelZoo& zoo, uint64_t seed) : zoo_(zoo), rng_(seed) {}

  // Generates the merged, arrival-ordered trace for all users. `user_ids`
  // parallels `specs` (ids come from the caller's UserTable).
  std::vector<TraceEntry> Generate(const std::vector<UserWorkloadSpec>& specs,
                                   const std::vector<UserId>& user_ids);

  // Converts a standalone K80 duration into mini-batches of work for a gang.
  static double MinibatchesFor(const ModelProfile& model, int gang_size,
                               SimDuration duration_on_k80);

 private:
  const ModelZoo& zoo_;
  Rng rng_;
};

}  // namespace gfair::workload

#endif  // GFAIR_WORKLOAD_TRACE_GEN_H_
