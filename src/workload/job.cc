#include "workload/job.h"

namespace gfair::workload {

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kSuspended:
      return "suspended";
    case JobState::kRunning:
      return "running";
    case JobState::kMigrating:
      return "migrating";
    case JobState::kFinished:
      return "finished";
  }
  return "?";
}

Job& JobTable::Create(UserId user, ModelId model, int gang_size, double total_minibatches,
                      SimTime submit_time) {
  GFAIR_CHECK(user.valid() && model.valid());
  GFAIR_CHECK(gang_size >= 1);
  GFAIR_CHECK(total_minibatches > 0.0);
  auto job = std::make_unique<Job>();
  job->id = JobId(static_cast<uint32_t>(jobs_.size()));
  job->user = user;
  job->model = model;
  job->gang_size = gang_size;
  job->total_minibatches = total_minibatches;
  job->submit_time = submit_time;
  jobs_.push_back(std::move(job));
  return *jobs_.back();
}

std::vector<Job*> JobTable::All() {
  std::vector<Job*> out;
  out.reserve(jobs_.size());
  for (auto& job : jobs_) {
    out.push_back(job.get());
  }
  return out;
}

std::vector<const Job*> JobTable::All() const {
  std::vector<const Job*> out;
  out.reserve(jobs_.size());
  for (const auto& job : jobs_) {
    out.push_back(job.get());
  }
  return out;
}

}  // namespace gfair::workload
