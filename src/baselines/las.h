// LeastAttainedServiceScheduler — Tiresias-style preemptive LAS baseline.
//
// Time-slices each server's GPUs among resident jobs, always preferring the
// job that has received the LEAST GPU service so far (approximating SRPT
// without job-size knowledge, as Tiresias does). Excellent JCT for short
// jobs, no inter-user fairness: attained service is compared per job,
// regardless of owner.
#ifndef GFAIR_BASELINES_LAS_H_
#define GFAIR_BASELINES_LAS_H_

#include <string>
#include <unordered_set>
#include <vector>

#include "common/sim_time.h"
#include "sched/scheduler_iface.h"

namespace gfair::baselines {

struct LasConfig {
  SimDuration quantum = Minutes(1);
};

class LeastAttainedServiceScheduler : public sched::IScheduler {
 public:
  LeastAttainedServiceScheduler(const sched::SchedulerEnv& env, LasConfig config = {})
      : env_(env), config_(config),
        resident_(static_cast<size_t>(env.cluster.num_servers())) {}

  void Start() override;
  void Submit(JobId id) override;
  void OnJobFinished(JobId id) override;
  void OnMigrationDone(JobId) override {}  // LAS never migrates
  std::string name() const override { return "LAS"; }
  sched::FairnessLedger& policy_ledger() override { return ledger_; }

 private:
  void Tick();
  void ApplyServer(ServerId server, bool allow_preempt);
  // Resident jobs of `server` in ascending attained-GPU-service order.
  std::vector<JobId> RankedResidents(ServerId server) const;
  ServerId ChooseServer(const workload::Job& job) const;

  sched::SchedulerEnv env_;
  LasConfig config_;
  sched::FairnessLedger ledger_;
  std::vector<std::unordered_set<JobId>> resident_;
};

}  // namespace gfair::baselines

#endif  // GFAIR_BASELINES_LAS_H_
