#include "baselines/las.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "common/check.h"

namespace gfair::baselines {

using workload::Job;

void LeastAttainedServiceScheduler::Start() {
  env_.sim.Every(config_.quantum, [this]() { Tick(); });
}

ServerId LeastAttainedServiceScheduler::ChooseServer(const Job& job) const {
  // Least resident demand per GPU, fastest generation first.
  ServerId best = ServerId::Invalid();
  double best_load = std::numeric_limits<double>::infinity();
  const auto& model = env_.zoo.Get(job.model);
  for (size_t g = cluster::kNumGenerations; g-- > 0;) {
    if (!model.FitsGeneration(cluster::kAllGenerations[g])) {
      continue;
    }
    for (ServerId id : env_.cluster.servers_of(cluster::kAllGenerations[g])) {
      const auto& server = env_.cluster.server(id);
      if (server.num_gpus() < job.gang_size) {
        continue;
      }
      double demand = 0.0;
      for (JobId resident : resident_[id.value()]) {
        demand += env_.jobs.Get(resident).gang_size;
      }
      const double load = demand / server.num_gpus();
      if (load < best_load - 1e-9) {
        best_load = load;
        best = id;
      }
    }
    if (best.valid()) {
      return best;  // stay within the fastest generation that can host it
    }
  }
  return best;
}

void LeastAttainedServiceScheduler::Submit(JobId id) {
  const Job& job = env_.jobs.Get(id);
  const ServerId server = ChooseServer(job);
  GFAIR_CHECK_MSG(server.valid(), "no server can host this gang");
  env_.exec.MakeResident(id, server);
  resident_[server.value()].insert(id);
  ledger_.RecordDemandChange(job.user, env_.cluster.server(server).generation(),
                             env_.sim.Now(), job.gang_size);
  // Opportunistic start on idle GPUs (new jobs have zero attained service,
  // but we do not preempt mid-quantum).
  if (env_.cluster.server(server).CanFit(job.gang_size)) {
    env_.exec.Resume(id);
  }
}

void LeastAttainedServiceScheduler::OnJobFinished(JobId id) {
  const Job& job = env_.jobs.Get(id);
  ServerId home = ServerId::Invalid();
  for (size_t s = 0; s < resident_.size(); ++s) {
    if (resident_[s].erase(id) > 0) {
      home = ServerId(static_cast<uint32_t>(s));
      break;
    }
  }
  GFAIR_CHECK(home.valid());
  ledger_.RecordDemandChange(job.user, env_.cluster.server(home).generation(),
                             env_.sim.Now(), -job.gang_size);
  // Fill the freed GPUs without preempting anyone mid-quantum.
  ApplyServer(home, /*allow_preempt=*/false);
}

std::vector<JobId> LeastAttainedServiceScheduler::RankedResidents(
    ServerId server) const {
  std::vector<JobId> jobs(resident_[server.value()].begin(),
                          resident_[server.value()].end());
  std::sort(jobs.begin(), jobs.end(), [this](JobId a, JobId b) {
    const double service_a = env_.jobs.Get(a).TotalGpuMs();
    const double service_b = env_.jobs.Get(b).TotalGpuMs();
    if (service_a != service_b) {
      return service_a < service_b;
    }
    return a < b;
  });
  return jobs;
}

void LeastAttainedServiceScheduler::ApplyServer(ServerId server, bool allow_preempt) {
  const auto& host = env_.cluster.server(server);
  // Greedy pack in LAS order; skip gangs that do not fit.
  std::vector<JobId> target;
  int free = host.num_gpus();
  for (JobId id : RankedResidents(server)) {
    const Job& job = env_.jobs.Get(id);
    if (job.gang_size <= free) {
      target.push_back(id);
      free -= job.gang_size;
    }
  }
  const std::unordered_set<JobId> target_set(target.begin(), target.end());
  if (allow_preempt) {
    for (JobId id : resident_[server.value()]) {
      if (env_.exec.IsRunning(id) && target_set.count(id) == 0) {
        env_.exec.Suspend(id);
      }
    }
  }
  for (JobId id : target) {
    if (!env_.exec.IsRunning(id) &&
        env_.cluster.server(server).CanFit(env_.jobs.Get(id).gang_size)) {
      env_.exec.Resume(id);
    }
  }
}

void LeastAttainedServiceScheduler::Tick() {
  // Fold open segments so attained service is current for ranking.
  env_.exec.SyncAll();
  for (const auto& server : env_.cluster.servers()) {
    ApplyServer(server.id(), /*allow_preempt=*/true);
  }
}

}  // namespace gfair::baselines
