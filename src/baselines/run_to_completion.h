// RunToCompletionBase — shared machinery for non-preemptive baselines.
//
// FIFO, static-quota and efficiency-greedy all dispatch queued jobs onto free
// GPUs and let them run to completion (no time slicing, no migration). They
// differ only in dispatch order, admission (quota) and server choice, which
// subclasses override.
#ifndef GFAIR_BASELINES_RUN_TO_COMPLETION_H_
#define GFAIR_BASELINES_RUN_TO_COMPLETION_H_

#include <deque>
#include <vector>

#include "sched/scheduler_iface.h"

namespace gfair::baselines {

class RunToCompletionBase : public sched::IScheduler {
 public:
  explicit RunToCompletionBase(const sched::SchedulerEnv& env) : env_(env) {}

  void Start() override {}
  void Submit(JobId id) override;
  void OnJobFinished(JobId id) override;
  void OnMigrationDone(JobId) override {}  // these policies never migrate

  sched::FairnessLedger& policy_ledger() override { return ledger_; }
  const sched::FairnessLedger& ledger() const { return ledger_; }
  size_t queued_jobs() const { return queue_.size(); }

 protected:
  // Queued jobs in the order dispatch should consider them. `stop_at_blocked`
  // (out) tells the dispatcher whether to stop at the first job that cannot
  // start (strict FIFO) or keep backfilling.
  virtual std::vector<JobId> DispatchOrder(bool* stop_at_blocked) = 0;

  // Admission hook (quota policies veto here). Called before server choice.
  virtual bool MayRun(const workload::Job& job) {
    (void)job;
    return true;
  }

  // Picks a server with `gang_size` FREE GPUs; Invalid if none. The default
  // prefers the fastest generation, then the server with most free GPUs.
  virtual ServerId ChooseServer(const workload::Job& job);

  // Bookkeeping hook when a job starts/finishes (quota accounting).
  virtual void OnJobStarted(const workload::Job& job) { (void)job; }
  virtual void OnJobStopped(const workload::Job& job) { (void)job; }

  void TryDispatch();

  sched::SchedulerEnv env_;
  sched::FairnessLedger ledger_;
  std::deque<JobId> queue_;
};

}  // namespace gfair::baselines

#endif  // GFAIR_BASELINES_RUN_TO_COMPLETION_H_
