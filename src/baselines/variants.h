// Config presets turning GandivaFairScheduler into its own ablation
// baselines: "plain stride" (no gang awareness) and "no trading".
#ifndef GFAIR_BASELINES_VARIANTS_H_
#define GFAIR_BASELINES_VARIANTS_H_

#include "sched/gandiva_fair.h"

namespace gfair::baselines {

// Stride scheduling without gang awareness: arrival/backfill order can
// starve large gangs (experiment E3).
inline sched::GandivaFairConfig PlainStrideConfig() {
  sched::GandivaFairConfig config;
  config.stride.big_job_first = false;
  config.stride.reserve_blocked_gang = false;
  config.enable_trading = false;
  return config;
}

// Full Gandiva_fair minus the trading engine (ablation for E8/E9/E12).
inline sched::GandivaFairConfig NoTradingConfig() {
  sched::GandivaFairConfig config;
  config.enable_trading = false;
  return config;
}

}  // namespace gfair::baselines

#endif  // GFAIR_BASELINES_VARIANTS_H_
