#include "baselines/quota.h"

#include <algorithm>

#include "common/check.h"

namespace gfair::baselines {

using cluster::GenerationIndex;
using cluster::GpuGeneration;
using workload::Job;

void StaticQuotaScheduler::Start() {
  const auto& users = env_.users.users();
  GFAIR_CHECK_MSG(!users.empty(), "StaticQuota needs the user table populated");
  const Tickets total_tickets = env_.users.TotalTickets();

  for (GpuGeneration gen : cluster::kAllGenerations) {
    const int pool = env_.cluster.total_gpus(gen);
    if (pool == 0) {
      continue;
    }
    // Floor the proportional share, then hand out the remainder one GPU at a
    // time in ticket order (largest first) — a standard largest-remainder
    // apportionment.
    std::vector<std::pair<double, UserId>> remainders;
    int assigned = 0;
    for (const auto& user : users) {
      const double exact = user.tickets / total_tickets * pool;  // share ratio x pool GPUs
      const int floor_share = static_cast<int>(exact);
      usage_[user.id].quota[GenerationIndex(gen)] = floor_share;
      assigned += floor_share;
      remainders.push_back({exact - floor_share, user.id});
    }
    std::sort(remainders.begin(), remainders.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) {
        return a.first > b.first;
      }
      return a.second < b.second;
    });
    for (size_t i = 0; assigned < pool && i < remainders.size(); ++i, ++assigned) {
      usage_[remainders[i].second].quota[GenerationIndex(gen)] += 1;
    }
  }
}

int StaticQuotaScheduler::QuotaFor(UserId user, GpuGeneration gen) const {
  auto it = usage_.find(user);
  if (it == usage_.end()) {
    return 0;
  }
  return it->second.quota[GenerationIndex(gen)];
}

std::vector<JobId> StaticQuotaScheduler::DispatchOrder(bool* stop_at_blocked) {
  // FIFO per user: a user's blocked job must not be overtaken by that same
  // user's later jobs, but other users proceed — so global order is FIFO with
  // per-user head-of-line filtering.
  *stop_at_blocked = false;
  std::vector<JobId> order;
  std::unordered_map<UserId, bool> seen;
  for (JobId id : queue_) {
    const UserId user = env_.jobs.Get(id).user;
    if (!seen[user]) {
      seen[user] = true;
      order.push_back(id);
    }
  }
  return order;
}

bool StaticQuotaScheduler::MayRun(const Job& job) {
  const auto it = usage_.find(job.user);
  if (it == usage_.end()) {
    return false;
  }
  for (GpuGeneration gen : cluster::kAllGenerations) {
    const size_t g = GenerationIndex(gen);
    if (it->second.in_use[g] + job.gang_size <= it->second.quota[g]) {
      return true;
    }
  }
  return false;
}

ServerId StaticQuotaScheduler::ChooseServer(const Job& job) {
  const auto& usage = usage_.at(job.user);
  const auto& model = env_.zoo.Get(job.model);
  for (size_t g = cluster::kNumGenerations; g-- > 0;) {
    const GpuGeneration gen = cluster::kAllGenerations[g];
    if (!model.FitsGeneration(gen)) {
      continue;
    }
    if (usage.in_use[g] + job.gang_size > usage.quota[g]) {
      continue;
    }
    ServerId best = ServerId::Invalid();
    int best_free = -1;
    for (ServerId id : env_.cluster.servers_of(gen)) {
      const auto& server = env_.cluster.server(id);
      if (server.num_free() >= job.gang_size && server.num_free() > best_free) {
        best_free = server.num_free();
        best = id;
      }
    }
    if (best.valid()) {
      return best;
    }
  }
  return ServerId::Invalid();
}

void StaticQuotaScheduler::OnJobStarted(const Job& job) {
  const GpuGeneration gen = env_.cluster.server(job.server).generation();
  usage_.at(job.user).in_use[GenerationIndex(gen)] += job.gang_size;
}

void StaticQuotaScheduler::OnJobStopped(const Job& job) {
  // The job's server is already cleared at finish; recover the generation
  // from accounted GPU time (exactly one pool is nonzero for quota runs? —
  // not necessarily; instead track via gpu_ms: the generation it ran on is
  // the one whose counter grew). Simpler and robust: scan for the pool with
  // in-use >= gang and the job's recorded gpu time.
  auto& usage = usage_.at(job.user);
  for (GpuGeneration gen : cluster::kAllGenerations) {
    const size_t g = GenerationIndex(gen);
    if (job.gpu_ms_by_gen[g] > 0.0 && usage.in_use[g] >= job.gang_size) {
      usage.in_use[g] -= job.gang_size;
      return;
    }
  }
  GFAIR_CHECK_MSG(false, "finished quota job not found in usage accounting");
}

}  // namespace gfair::baselines
