// FifoScheduler — strict arrival-order, run-to-completion baseline.
//
// The head of the queue blocks everything behind it until enough GPUs free
// up (no backfilling): the classic batch-queue behaviour whose unfairness
// under multi-user load motivates fair-share scheduling.
#ifndef GFAIR_BASELINES_FIFO_H_
#define GFAIR_BASELINES_FIFO_H_

#include <string>
#include <vector>

#include "baselines/run_to_completion.h"

namespace gfair::baselines {

class FifoScheduler : public RunToCompletionBase {
 public:
  explicit FifoScheduler(const sched::SchedulerEnv& env) : RunToCompletionBase(env) {}

  std::string name() const override { return "FIFO"; }

 protected:
  std::vector<JobId> DispatchOrder(bool* stop_at_blocked) override {
    *stop_at_blocked = true;
    return std::vector<JobId>(queue_.begin(), queue_.end());
  }
};

}  // namespace gfair::baselines

#endif  // GFAIR_BASELINES_FIFO_H_
