// EfficiencyGreedyScheduler — utilization-first, fairness-blind baseline.
//
// Models a Gandiva-style efficiency scheduler stripped of fairness: whenever
// GPUs free up, pack as many queued jobs as possible (smallest gangs first,
// FIFO within a size), onto the fastest free GPUs. Utilization is excellent;
// per-user shares are whatever the packing happens to produce.
#ifndef GFAIR_BASELINES_GREEDY_H_
#define GFAIR_BASELINES_GREEDY_H_

#include <algorithm>
#include <string>
#include <vector>

#include "baselines/run_to_completion.h"

namespace gfair::baselines {

class EfficiencyGreedyScheduler : public RunToCompletionBase {
 public:
  explicit EfficiencyGreedyScheduler(const sched::SchedulerEnv& env)
      : RunToCompletionBase(env) {}

  std::string name() const override { return "EfficiencyGreedy"; }

 protected:
  std::vector<JobId> DispatchOrder(bool* stop_at_blocked) override {
    *stop_at_blocked = false;  // backfill past blocked gangs
    std::vector<JobId> order(queue_.begin(), queue_.end());
    std::stable_sort(order.begin(), order.end(), [this](JobId a, JobId b) {
      return env_.jobs.Get(a).gang_size < env_.jobs.Get(b).gang_size;
    });
    return order;
  }
};

}  // namespace gfair::baselines

#endif  // GFAIR_BASELINES_GREEDY_H_
