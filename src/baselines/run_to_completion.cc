#include "baselines/run_to_completion.h"

#include <algorithm>

#include "common/check.h"

namespace gfair::baselines {

using cluster::GpuGeneration;
using workload::Job;

void RunToCompletionBase::Submit(JobId id) {
  const Job& job = env_.jobs.Get(id);
  GFAIR_CHECK(job.state == workload::JobState::kQueued);
  queue_.push_back(id);
  TryDispatch();
}

void RunToCompletionBase::OnJobFinished(JobId id) {
  OnJobStopped(env_.jobs.Get(id));
  TryDispatch();
}

ServerId RunToCompletionBase::ChooseServer(const Job& job) {
  const auto& model = env_.zoo.Get(job.model);
  for (size_t g = cluster::kNumGenerations; g-- > 0;) {
    const GpuGeneration gen = cluster::kAllGenerations[g];
    if (!model.FitsGeneration(gen)) {
      continue;
    }
    ServerId best = ServerId::Invalid();
    int best_free = -1;
    for (ServerId id : env_.cluster.servers_of(gen)) {
      const auto& server = env_.cluster.server(id);
      if (server.num_free() >= job.gang_size && server.num_free() > best_free) {
        best_free = server.num_free();
        best = id;
      }
    }
    if (best.valid()) {
      return best;
    }
  }
  return ServerId::Invalid();
}

void RunToCompletionBase::TryDispatch() {
  bool stop_at_blocked = false;
  const std::vector<JobId> order = DispatchOrder(&stop_at_blocked);
  for (JobId id : order) {
    Job& job = env_.jobs.Get(id);
    GFAIR_CHECK(job.state == workload::JobState::kQueued);
    if (!MayRun(job)) {
      if (stop_at_blocked) {
        break;
      }
      continue;
    }
    const ServerId server = ChooseServer(job);
    if (!server.valid()) {
      if (stop_at_blocked) {
        break;
      }
      continue;
    }
    env_.exec.MakeResident(id, server);
    env_.exec.Resume(id);
    OnJobStarted(job);
    queue_.erase(std::find(queue_.begin(), queue_.end(), id));
  }
}

}  // namespace gfair::baselines
