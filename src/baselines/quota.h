// StaticQuotaScheduler — hard partitioning baseline.
//
// Each user receives a fixed, ticket-proportional quota of every generation
// pool (computed once at Start). A user's jobs run-to-completion within its
// quota; idle quota of other users is never reclaimed. This is the
// "dedicated carve-out" operating model the paper argues wastes capacity:
// fairness holds, work conservation does not.
#ifndef GFAIR_BASELINES_QUOTA_H_
#define GFAIR_BASELINES_QUOTA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/run_to_completion.h"

namespace gfair::baselines {

class StaticQuotaScheduler : public RunToCompletionBase {
 public:
  explicit StaticQuotaScheduler(const sched::SchedulerEnv& env)
      : RunToCompletionBase(env) {}

  std::string name() const override { return "StaticQuota"; }

  // Computes per-user quotas from the user table (call after users exist).
  void Start() override;

  // GPUs of `gen` reserved for `user`.
  int QuotaFor(UserId user, cluster::GpuGeneration gen) const;

 protected:
  std::vector<JobId> DispatchOrder(bool* stop_at_blocked) override;
  bool MayRun(const workload::Job& job) override;
  ServerId ChooseServer(const workload::Job& job) override;
  void OnJobStarted(const workload::Job& job) override;
  void OnJobStopped(const workload::Job& job) override;

 private:
  struct Usage {
    cluster::PerGeneration<int> quota{};
    cluster::PerGeneration<int> in_use{};
  };
  std::unordered_map<UserId, Usage> usage_;
  // Server chosen by ChooseServer for the job being admitted (MayRun decides
  // per-pool; ChooseServer then restricts to allowed pools).
};

}  // namespace gfair::baselines

#endif  // GFAIR_BASELINES_QUOTA_H_
