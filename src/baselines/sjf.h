// SjfScheduler — non-preemptive shortest-job-first (oracle baseline).
//
// Dispatches the queued job with the least remaining standalone work first
// (using ground-truth job sizes — an oracle no production scheduler has).
// Great mean JCT, no fairness: a user with long jobs waits behind everyone
// else's short ones.
#ifndef GFAIR_BASELINES_SJF_H_
#define GFAIR_BASELINES_SJF_H_

#include <algorithm>
#include <string>
#include <vector>

#include "baselines/run_to_completion.h"
#include "cluster/gpu.h"

namespace gfair::baselines {

class SjfScheduler : public RunToCompletionBase {
 public:
  explicit SjfScheduler(const sched::SchedulerEnv& env) : RunToCompletionBase(env) {}

  std::string name() const override { return "SJF"; }

 protected:
  std::vector<JobId> DispatchOrder(bool* stop_at_blocked) override {
    *stop_at_blocked = false;
    std::vector<JobId> order(queue_.begin(), queue_.end());
    std::stable_sort(order.begin(), order.end(), [this](JobId a, JobId b) {
      return StandaloneK80Seconds(a) < StandaloneK80Seconds(b);
    });
    return order;
  }

 private:
  // Remaining standalone runtime on K80 GPUs — the oracle job size.
  double StandaloneK80Seconds(JobId id) const {
    const workload::Job& job = env_.jobs.Get(id);
    const auto& model = env_.zoo.Get(job.model);
    return job.remaining_minibatches() /
           model.GangThroughput(cluster::GpuGeneration::kK80, job.gang_size);
  }
};

}  // namespace gfair::baselines

#endif  // GFAIR_BASELINES_SJF_H_
