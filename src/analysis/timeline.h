// ASCII timelines — quick visual verification of allocation behaviour.
//
// Renders each user's average GPU allocation per time bucket as a bar of
// glyphs, normalized to cluster capacity. Experiments use it to eyeball
// share convergence (E4-style churn) without leaving the terminal:
//
//   user      0h        2h        4h
//   alice     ████████  ████      ████
//   bob       ·         ████      ████
#ifndef GFAIR_ANALYSIS_TIMELINE_H_
#define GFAIR_ANALYSIS_TIMELINE_H_

#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/types.h"
#include "sched/ledger.h"
#include "workload/user.h"

namespace gfair::analysis {

// One row per user: average GPUs held in each bucket of [from, to).
struct TimelineRow {
  UserId user;
  std::string name;
  std::vector<double> gpus;  // one entry per bucket
};

std::vector<TimelineRow> ComputeTimeline(const sched::FairnessLedger& ledger,
                                         const workload::UserTable& users, SimTime from,
                                         SimTime to, int buckets);

// Renders rows as aligned ASCII art (one glyph column per bucket; glyph
// depth encodes the user's share of `capacity`).
std::string RenderTimeline(const std::vector<TimelineRow>& rows, SimTime from,
                           SimTime to, double capacity = 0.0);

}  // namespace gfair::analysis

#endif  // GFAIR_ANALYSIS_TIMELINE_H_
