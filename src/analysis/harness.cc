#include "analysis/harness.h"

#include "analysis/fairshare.h"
#include "baselines/las.h"
#include "baselines/sjf.h"
#include "common/check.h"

namespace gfair::analysis {

const char* PolicyName(Policy policy) {
  switch (policy) {
    case Policy::kGandivaFair:
      return "GandivaFair";
    case Policy::kGandivaFairNoTrade:
      return "GandivaFair-NoTrade";
    case Policy::kPlainStride:
      return "PlainStride";
    case Policy::kFifo:
      return "FIFO";
    case Policy::kStaticQuota:
      return "StaticQuota";
    case Policy::kEfficiencyGreedy:
      return "EfficiencyGreedy";
    case Policy::kSjf:
      return "SJF";
    case Policy::kLas:
      return "LAS";
  }
  return "?";
}

Experiment::Experiment(ExperimentConfig config)
    : config_(std::move(config)),
      zoo_(config_.zoo != nullptr ? config_.zoo : &workload::ModelZoo::Default()),
      cluster_(config_.topology) {
  exec_ = std::make_unique<exec::Executor>(sim_, cluster_, *zoo_, jobs_, config_.exec,
                                           config_.seed);
}

void Experiment::UsePolicy(Policy policy, const sched::GandivaFairConfig* config) {
  sched::SchedulerEnv env{sim_, cluster_, *zoo_, jobs_, users_, *exec_};
  gandiva_ = nullptr;
  switch (policy) {
    case Policy::kGandivaFair: {
      auto cfg = config != nullptr ? *config : sched::GandivaFairConfig{};
      auto sched = std::make_unique<sched::GandivaFairScheduler>(env, cfg);
      gandiva_ = sched.get();
      scheduler_ = std::move(sched);
      break;
    }
    case Policy::kGandivaFairNoTrade: {
      auto cfg = config != nullptr ? *config : baselines::NoTradingConfig();
      cfg.enable_trading = false;
      auto sched = std::make_unique<sched::GandivaFairScheduler>(env, cfg);
      gandiva_ = sched.get();
      scheduler_ = std::move(sched);
      break;
    }
    case Policy::kPlainStride: {
      auto cfg = config != nullptr ? *config : baselines::PlainStrideConfig();
      cfg.stride.big_job_first = false;
      cfg.stride.reserve_blocked_gang = false;
      auto sched = std::make_unique<sched::GandivaFairScheduler>(env, cfg);
      gandiva_ = sched.get();
      scheduler_ = std::move(sched);
      break;
    }
    case Policy::kFifo:
      scheduler_ = std::make_unique<baselines::FifoScheduler>(env);
      break;
    case Policy::kStaticQuota:
      scheduler_ = std::make_unique<baselines::StaticQuotaScheduler>(env);
      break;
    case Policy::kEfficiencyGreedy:
      scheduler_ = std::make_unique<baselines::EfficiencyGreedyScheduler>(env);
      break;
    case Policy::kSjf:
      scheduler_ = std::make_unique<baselines::SjfScheduler>(env);
      break;
    case Policy::kLas:
      scheduler_ = std::make_unique<baselines::LeastAttainedServiceScheduler>(env);
      break;
  }
  sched::WireCallbacks(*exec_, *scheduler_);
  // Interpose on job completion for policy-independent demand accounting,
  // then forward to the policy as WireCallbacks set up.
  exec_->set_on_job_finished([this](JobId id) {
    const workload::Job& job = jobs_.Get(id);
    RecordDemand(job.user, sim_.Now(), -job.gang_size);
    scheduler_->OnJobFinished(id);
  });
}

void Experiment::RecordDemand(UserId user, SimTime time, int delta) {
  DemandRecord& record = demand_[user];
  record.current += delta;
  GFAIR_CHECK(record.current >= -1e-9);
  record.series.Record(time, record.current);
}

const simkit::TimeSeries& Experiment::demand_series(UserId user) const {
  static const simkit::TimeSeries kEmpty;
  auto it = demand_.find(user);
  return it != demand_.end() ? it->second.series : kEmpty;
}

void Experiment::UseGandivaFair(sched::GandivaFairConfig config) {
  UsePolicy(Policy::kGandivaFair, &config);
}

void Experiment::UseCustomScheduler(
    const std::function<std::unique_ptr<sched::IScheduler>(const sched::SchedulerEnv&)>&
        factory) {
  sched::SchedulerEnv env{sim_, cluster_, *zoo_, jobs_, users_, *exec_};
  gandiva_ = nullptr;
  scheduler_ = factory(env);
  GFAIR_CHECK_MSG(scheduler_ != nullptr, "custom scheduler factory returned null");
  gandiva_ = dynamic_cast<sched::GandivaFairScheduler*>(scheduler_.get());
  sched::WireCallbacks(*exec_, *scheduler_);
  exec_->set_on_job_finished([this](JobId id) {
    const workload::Job& job = jobs_.Get(id);
    RecordDemand(job.user, sim_.Now(), -job.gang_size);
    scheduler_->OnJobFinished(id);
  });
}

sched::IScheduler& Experiment::scheduler() {
  GFAIR_CHECK_MSG(scheduler_ != nullptr, "UsePolicy() before scheduler()");
  return *scheduler_;
}

const sched::FairnessLedger& Experiment::ledger() {
  return scheduler().policy_ledger();
}

std::vector<double> Experiment::IdealGpuMs(SimTime from, SimTime to) const {
  std::vector<UserShareInput> inputs;
  inputs.reserve(users_.size());
  for (const auto& user : users_.users()) {
    inputs.push_back(
        UserShareInput{user.id, user.tickets.raw(), &demand_series(user.id)});
  }
  return analysis::IdealGpuMs(cluster_.total_gpus(), from, to, inputs);
}

JobId Experiment::ScheduleSubmission(SimTime when, UserId user, workload::ModelId model,
                                     int gang_size, double minibatches, double weight) {
  GFAIR_CHECK_MSG(scheduler_ != nullptr, "UsePolicy() before submitting jobs");
  GFAIR_CHECK(when >= sim_.Now());
  // Create the job record eagerly (ids are stable and returnable); deliver it
  // to the policy at its arrival time.
  workload::Job& job = jobs_.Create(user, model, gang_size, minibatches, when);
  GFAIR_CHECK(weight > 0.0);
  job.weight = weight;
  const JobId id = job.id;
  sim_.At(when, [this, id]() {
    const workload::Job& arriving = jobs_.Get(id);
    RecordDemand(arriving.user, sim_.Now(), arriving.gang_size);
    scheduler_->Submit(id);
  });
  return id;
}

JobId Experiment::SubmitAt(SimTime when, UserId user, const std::string& model_name,
                           int gang_size, SimDuration standalone_duration_k80,
                           double weight) {
  const auto& model = zoo_->GetByName(model_name);
  const double work =
      workload::TraceGenerator::MinibatchesFor(model, gang_size, standalone_duration_k80);
  return ScheduleSubmission(when, user, model.id, gang_size, work, weight);
}

JobId Experiment::SubmitWorkAt(SimTime when, UserId user, workload::ModelId model,
                               int gang_size, double minibatches, double weight) {
  return ScheduleSubmission(when, user, model, gang_size, minibatches, weight);
}

void Experiment::LoadTrace(const std::vector<workload::TraceEntry>& trace) {
  for (const auto& entry : trace) {
    ScheduleSubmission(entry.arrival, entry.user, entry.model, entry.gang_size,
                       entry.total_minibatches, /*weight=*/1.0);
  }
}

void Experiment::Run(SimTime until) {
  GFAIR_CHECK_MSG(scheduler_ != nullptr, "UsePolicy() before Run()");
  if (!started_) {
    scheduler_->Start();
    started_ = true;
  }
  sim_.RunUntil(until);
  // Fold open run segments into jobs and the ledger so callers can read
  // consistent metrics at this instant.
  exec_->SyncAll();
}

}  // namespace gfair::analysis
