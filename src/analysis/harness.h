// Experiment — one-stop harness assembling simulator, cluster, workload,
// executor and a scheduling policy.
//
// Tests, benches and examples all drive runs through this class:
//
//   analysis::Experiment exp({.topology = cluster::PaperScaleTopology()});
//   auto& alice = exp.users().Create("alice", 1.0);
//   exp.UseGandivaFair({});
//   exp.SubmitAt(kTimeZero, alice.id, "ResNet-50", 4, Hours(2));
//   exp.Run(Hours(8));
//
#ifndef GFAIR_ANALYSIS_HARNESS_H_
#define GFAIR_ANALYSIS_HARNESS_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/fifo.h"
#include "baselines/greedy.h"
#include "baselines/quota.h"
#include "baselines/variants.h"
#include "cluster/cluster.h"
#include "exec/executor.h"
#include "sched/gandiva_fair.h"
#include "sched/scheduler_iface.h"
#include "simkit/simulator.h"
#include "workload/trace_gen.h"

namespace gfair::analysis {

struct ExperimentConfig {
  cluster::Topology topology = cluster::HomogeneousTopology(1, 8);
  exec::ExecutorConfig exec;
  uint64_t seed = 42;
  // Zoo to use; nullptr = ModelZoo::Default().
  const workload::ModelZoo* zoo = nullptr;
};

enum class Policy {
  kGandivaFair,
  kGandivaFairNoTrade,
  kPlainStride,
  kFifo,
  kStaticQuota,
  kEfficiencyGreedy,
  kSjf,   // oracle shortest-job-first (non-preemptive)
  kLas,   // Tiresias-style least-attained-service (preemptive)
};

const char* PolicyName(Policy policy);

class Experiment {
 public:
  explicit Experiment(ExperimentConfig config);

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  // --- setup (before Run) ---
  workload::UserTable& users() { return users_; }
  // Installs a policy. For kGandivaFair-family policies, `config` overrides
  // the preset (pass nullptr for defaults).
  void UsePolicy(Policy policy, const sched::GandivaFairConfig* config = nullptr);
  void UseGandivaFair(sched::GandivaFairConfig config);
  // Installs a caller-built policy (tests comparing scheduler implementations
  // head-to-head). The factory receives the experiment's environment.
  void UseCustomScheduler(
      const std::function<std::unique_ptr<sched::IScheduler>(const sched::SchedulerEnv&)>&
          factory);

  // Schedules one job submission: standalone duration is the uninterrupted
  // K80 runtime; work is derived from the model's K80 gang throughput.
  JobId SubmitAt(SimTime when, UserId user, const std::string& model_name, int gang_size,
                 SimDuration standalone_duration_k80, double weight = 1.0);
  // Same, with explicit mini-batch count.
  JobId SubmitWorkAt(SimTime when, UserId user, workload::ModelId model, int gang_size,
                     double minibatches, double weight = 1.0);
  // Schedules a whole generated trace.
  void LoadTrace(const std::vector<workload::TraceEntry>& trace);

  // --- run ---
  // Runs the simulation until `until` (scheduler Start() happens on the
  // first call). Can be called repeatedly to advance in phases.
  void Run(SimTime until);

  // --- access ---
  simkit::Simulator& sim() { return sim_; }
  cluster::Cluster& cluster() { return cluster_; }
  workload::JobTable& jobs() { return jobs_; }
  exec::Executor& exec() { return *exec_; }
  const workload::ModelZoo& zoo() const { return *zoo_; }
  sched::IScheduler& scheduler();
  // Non-null when the installed policy is GandivaFair (any variant).
  sched::GandivaFairScheduler* gandiva() { return gandiva_; }
  const sched::FairnessLedger& ledger();

  // Policy-independent aggregate GPU demand of a user over time (+gang at
  // submission, -gang at completion, regardless of where the policy put the
  // job). This is the demand the cross-policy ideal-share comparisons use.
  const simkit::TimeSeries& demand_series(UserId user) const;
  // Per-user ideal GPU-ms over [from, to): demand-capped, ticket-weighted
  // water-filling of the whole cluster's GPUs against the aggregate demand
  // series (generations treated as fungible).
  std::vector<double> IdealGpuMs(SimTime from, SimTime to) const;

 private:
  ExperimentConfig config_;
  const workload::ModelZoo* zoo_;
  simkit::Simulator sim_;
  cluster::Cluster cluster_;
  workload::JobTable jobs_;
  workload::UserTable users_;
  std::unique_ptr<exec::Executor> exec_;
  std::unique_ptr<sched::IScheduler> scheduler_;
  sched::GandivaFairScheduler* gandiva_ = nullptr;
  bool started_ = false;

  struct DemandRecord {
    simkit::TimeSeries series;
    double current = 0.0;
  };
  mutable std::unordered_map<UserId, DemandRecord> demand_;
  void RecordDemand(UserId user, SimTime time, int delta);

  // Because pre-submission jobs do not exist yet, SubmitAt returns the JobId
  // reserved for the entry (ids are assigned in scheduling order).
  JobId ScheduleSubmission(SimTime when, UserId user, workload::ModelId model,
                           int gang_size, double minibatches, double weight);
};

}  // namespace gfair::analysis

#endif  // GFAIR_ANALYSIS_HARNESS_H_
