#include "analysis/metrics.h"
#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/stats.h"

namespace gfair::analysis {

using cluster::GenerationIndex;
using cluster::GpuGeneration;

double UsefulK80GpuHours(const workload::Job& job, const workload::ModelZoo& zoo) {
  const auto& model = zoo.Get(job.model);
  const double gang_rate = model.GangThroughput(GpuGeneration::kK80, job.gang_size);
  GFAIR_CHECK(gang_rate > 0.0);
  const double gang_seconds = job.completed_minibatches / gang_rate;
  return gang_seconds * job.gang_size / 3600.0;
}

std::vector<UserSummary> SummarizeUsers(const workload::JobTable& jobs,
                                        const workload::UserTable& users,
                                        const sched::FairnessLedger& ledger,
                                        const workload::ModelZoo& zoo, SimTime from,
                                        SimTime to) {
  std::vector<UserSummary> summaries;
  summaries.reserve(users.size());
  for (const auto& user : users.users()) {
    UserSummary summary;
    summary.id = user.id;
    summary.name = user.name;
    summary.tickets = user.tickets.raw();  // report table boundary
    for (GpuGeneration gen : cluster::kAllGenerations) {
      const double ms = ledger.GpuMs(user.id, gen, from, to);
      summary.gpu_hours_by_gen[GenerationIndex(gen)] = ms / kHour;
      summary.gpu_hours += ms / kHour;
    }
    summaries.push_back(summary);
  }

  for (const workload::Job* job : jobs.All()) {
    GFAIR_CHECK(job->user.value() < summaries.size());
    UserSummary& summary = summaries[job->user.value()];
    summary.jobs_total += 1;
    summary.useful_k80_gpu_hours += UsefulK80GpuHours(*job, zoo);
    if (job->finished()) {
      summary.jobs_finished += 1;
      summary.mean_jct_minutes += ToMinutes(job->finish_time - job->submit_time);
    }
  }
  for (UserSummary& summary : summaries) {
    if (summary.jobs_finished > 0) {
      summary.mean_jct_minutes /= summary.jobs_finished;
    }
  }
  return summaries;
}

FinishTimeFairness ComputeFinishTimeFairness(const workload::JobTable& jobs,
                                             const workload::ModelZoo& zoo,
                                             const cluster::Cluster& cluster,
                                             UserId user) {
  // Fastest generation actually present in the cluster.
  GpuGeneration fastest = GpuGeneration::kK80;
  for (GpuGeneration gen : cluster::kAllGenerations) {
    if (cluster.total_gpus(gen) > 0) {
      fastest = gen;
    }
  }
  FinishTimeFairness result;
  for (const workload::Job* job : jobs.All()) {
    if (!job->finished()) {
      continue;
    }
    if (user.valid() && job->user != user) {
      continue;
    }
    const auto& model = zoo.Get(job->model);
    const double standalone_s =
        job->total_minibatches / model.GangThroughput(fastest, job->gang_size);
    GFAIR_CHECK(standalone_s > 0.0);
    const double rho = ToSeconds(job->finish_time - job->submit_time) / standalone_s;
    result.finished += 1;
    result.mean_rho += rho;
    result.max_rho = std::max(result.max_rho, rho);
  }
  if (result.finished > 0) {
    result.mean_rho /= result.finished;
  }
  return result;
}

JctStats ComputeJct(const workload::JobTable& jobs, UserId user) {
  PercentileSampler sampler;
  for (const workload::Job* job : jobs.All()) {
    if (!job->finished()) {
      continue;
    }
    if (user.valid() && job->user != user) {
      continue;
    }
    sampler.Add(ToMinutes(job->finish_time - job->submit_time));
  }
  JctStats stats;
  stats.finished = static_cast<int>(sampler.count());
  stats.mean = sampler.Mean();
  stats.p50 = sampler.Percentile(50);
  stats.p90 = sampler.Percentile(90);
  stats.p99 = sampler.Percentile(99);
  return stats;
}

double TotalUsefulWork(const workload::JobTable& jobs, const workload::ModelZoo& zoo) {
  double total = 0.0;
  for (const workload::Job* job : jobs.All()) {
    total += UsefulK80GpuHours(*job, zoo);
  }
  return total;
}

double LedgerJobConsistencyGap(const workload::JobTable& jobs,
                               const workload::UserTable& users,
                               const sched::FairnessLedger& ledger) {
  std::vector<double> per_user_job_ms(users.size(), 0.0);
  for (const workload::Job* job : jobs.All()) {
    per_user_job_ms[job->user.value()] += job->TotalGpuMs();
  }
  double worst = 0.0;
  for (const auto& user : users.users()) {
    const double ledger_ms = ledger.GpuMs(user.id, kTimeZero, kTimeNever);
    worst = std::max(worst, std::abs(ledger_ms - per_user_job_ms[user.id.value()]));
  }
  return worst;
}

cluster::PerGeneration<double> PoolUtilization(const sched::FairnessLedger& ledger,
                                               const workload::UserTable& users,
                                               const cluster::Cluster& cluster,
                                               SimTime from, SimTime to) {
  cluster::PerGeneration<double> utilization{};
  GFAIR_CHECK(from < to);
  for (GpuGeneration gen : cluster::kAllGenerations) {
    const int pool = cluster.total_gpus(gen);
    if (pool == 0) {
      continue;
    }
    double held_ms = 0.0;
    for (const auto& user : users.users()) {
      held_ms += ledger.GpuMs(user.id, gen, from, to);
    }
    utilization[GenerationIndex(gen)] =
        held_ms / (static_cast<double>(pool) * static_cast<double>(to - from));
  }
  return utilization;
}

}  // namespace gfair::analysis
