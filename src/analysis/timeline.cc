#include "analysis/timeline.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"
#include "common/table.h"

namespace gfair::analysis {

std::vector<TimelineRow> ComputeTimeline(const sched::FairnessLedger& ledger,
                                         const workload::UserTable& users, SimTime from,
                                         SimTime to, int buckets) {
  GFAIR_CHECK(from < to && buckets > 0);
  std::vector<TimelineRow> rows;
  const double bucket_ms = static_cast<double>(to - from) / buckets;
  for (const auto& user : users.users()) {
    TimelineRow row;
    row.user = user.id;
    row.name = user.name;
    row.gpus.reserve(static_cast<size_t>(buckets));
    for (int b = 0; b < buckets; ++b) {
      const SimTime lo = from + static_cast<SimTime>(b * bucket_ms);
      const SimTime hi = from + static_cast<SimTime>((b + 1) * bucket_ms);
      const double gpu_ms = ledger.GpuMs(user.id, lo, std::max(hi, lo + 1));
      row.gpus.push_back(gpu_ms / static_cast<double>(std::max<SimTime>(hi - lo, 1)));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string RenderTimeline(const std::vector<TimelineRow>& rows, SimTime from,
                           SimTime to, double capacity) {
  if (rows.empty()) {
    return "";
  }
  // Glyph ramp from empty to full.
  static const char* kRamp[] = {"·", "▁", "▂", "▃",
                                "▅", "▆", "▇", "█"};
  constexpr int kRampSize = 8;

  double max_gpus = capacity;
  if (max_gpus <= 0.0) {
    for (const auto& row : rows) {
      for (double value : row.gpus) {
        max_gpus = std::max(max_gpus, value);
      }
    }
  }
  if (max_gpus <= 0.0) {
    max_gpus = 1.0;
  }

  size_t name_width = 4;
  for (const auto& row : rows) {
    name_width = std::max(name_width, row.name.size());
  }

  std::ostringstream os;
  // Header with start/end labels.
  os << std::string(name_width, ' ') << "  " << FormatDuration(from);
  const size_t buckets = rows[0].gpus.size();
  const std::string end_label = FormatDuration(to);
  if (buckets > end_label.size() + FormatDuration(from).size()) {
    os << std::string(buckets - end_label.size() - FormatDuration(from).size(), ' ')
       << end_label;
  }
  os << '\n';
  for (const auto& row : rows) {
    os << row.name << std::string(name_width - row.name.size(), ' ') << "  ";
    for (double value : row.gpus) {
      const double fraction = std::clamp(value / max_gpus, 0.0, 1.0);
      const int level =
          std::min(kRampSize - 1, static_cast<int>(fraction * (kRampSize - 1) + 0.5));
      os << kRamp[level];
    }
    os << "  (peak " << FormatDouble(*std::max_element(row.gpus.begin(), row.gpus.end()), 1)
       << " GPUs)\n";
  }
  return os.str();
}

}  // namespace gfair::analysis
